package cstrace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/trace"
)

func TestQuickReproduction(t *testing.T) {
	res, err := Reproduce(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TableII.TotalPackets == 0 {
		t.Fatal("no traffic")
	}
	// Structural checks from the paper.
	if res.TableII.PacketsIn <= res.TableII.PacketsOut {
		t.Error("in packets should exceed out")
	}
	if res.TableII.MeanBWOut <= res.TableII.MeanBWIn {
		t.Error("out bandwidth should exceed in")
	}
	if res.TableIII.MeanOut <= 2.5*res.TableIII.MeanIn {
		t.Errorf("size ratio: out %.1f vs in %.1f", res.TableIII.MeanOut, res.TableIII.MeanIn)
	}
	if res.Regions.SubTick.H >= 0.5 {
		t.Errorf("sub-tick H = %.2f, want < 0.5", res.Regions.SubTick.H)
	}
	k := res.PerSlotKbs()
	if k < 20 || k > 60 {
		t.Errorf("per-slot kbs = %.1f", k)
	}
	if !strings.Contains(res.String(), "kbs/slot") {
		t.Error("String()")
	}
}

func TestReproduceWithExtraHandler(t *testing.T) {
	cfg := Quick(2)
	cfg.Game.Duration = 5 * time.Minute
	cfg.Game.Warmup = time.Minute
	cfg.Suite.Duration = 0 // exercise the default path
	var n int64
	cfg.Extra = trace.HandlerFunc(func(trace.Record) { n++ })
	res, err := Reproduce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != res.TableII.TotalPackets {
		t.Errorf("extra handler saw %d records, tables say %d", n, res.TableII.TotalPackets)
	}
}

func TestWriteReportContainsEverything(t *testing.T) {
	cfg := Quick(3)
	cfg.Game.Duration = 5 * time.Minute
	cfg.Game.Warmup = time.Minute
	res, err := Reproduce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4a", "Figure 4d",
		"Figure 5", "Figure 6", "Figure 7a", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReproduceNAT(t *testing.T) {
	if testing.Short() {
		t.Skip("30-minute NAT experiment")
	}
	res, err := ReproduceNAT(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.LossIn() <= res.Counts.LossOut() {
		t.Errorf("loss asymmetry violated: in %.4f out %.4f",
			res.Counts.LossIn(), res.Counts.LossOut())
	}
}

func TestReproduceValidatesConfig(t *testing.T) {
	var cfg Config // zero game config is invalid
	if _, err := Reproduce(cfg); err == nil {
		t.Error("want validation error")
	}
}

func TestMicrostructureCollectors(t *testing.T) {
	// End-to-end check of the extension collectors wired into the suite:
	// composition, interarrival burstiness asymmetry, and tick recovery,
	// all from one generated window.
	cfg := Quick(3)
	cfg.Game.Duration = 5 * time.Minute
	cfg.Suite = analysis.DefaultSuiteConfig(cfg.Game.Duration)
	res, err := Reproduce(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if share := res.Suite.Kinds.Share(trace.KindGame); share < 0.99 {
		t.Errorf("game share = %.4f, want > 0.99 (§II: state updates dominate)", share)
	}

	cvIn := res.Suite.Gaps.CV(trace.In)
	cvOut := res.Suite.Gaps.CV(trace.Out)
	if cvOut < 2 {
		t.Errorf("outbound interarrival CV = %.2f, want ≫ 1 (synchronized bursts)", cvOut)
	}
	if cvIn > 1.5 {
		t.Errorf("inbound interarrival CV = %.2f, want Poisson-like (§III-B: not synchronized)", cvIn)
	}
	if cvOut <= cvIn {
		t.Errorf("burstiness asymmetry inverted: out %.2f vs in %.2f", cvOut, cvIn)
	}

	tick, corr := res.Suite.Tick.Tick()
	if tick != cfg.Game.TickInterval {
		t.Errorf("recovered tick = %v, want %v", tick, cfg.Game.TickInterval)
	}
	if corr < 0.5 {
		t.Errorf("tick autocorrelation = %.2f, want strong", corr)
	}

	// The report must include the new sections.
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 13", "Traffic composition", "Interarrival structure", "recovered server tick"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
