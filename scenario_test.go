package cstrace

import (
	"bytes"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/scenario"
)

// scenarioSpec returns a small heterogeneous fleet for tests: mixed sizes,
// staggered launches, a demand surge — every scenario feature on, short
// enough to run in CI.
func scenarioSpec(seed uint64, n int) Scenario {
	return Scenario{
		Seed:          seed,
		Servers:       n,
		Duration:      4 * time.Minute,
		Warmup:        2 * time.Minute,
		SlotMix:       []int{22, 32, 16},
		Stagger:       30 * time.Second,
		DiurnalSpread: 6 * time.Hour,
		SpikeMult:     4,
		SpikeDecay:    2 * time.Minute,
		RateScale:     5,
	}
}

// TestScenarioOneServerGolden is the merge's identity contract: a
// one-server scenario must produce a report byte-identical to plain
// Reproduce of the same server — the k-way merge degenerates to a
// pass-through.
func TestScenarioOneServerGolden(t *testing.T) {
	base := Quick(3)
	base.Game.Duration = 5 * time.Minute
	base.Game.Warmup = 5 * time.Minute
	base.Suite = analysis.DefaultSuiteConfig(base.Game.Duration)

	res, err := Reproduce(base)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteReport(&want); err != nil {
		t.Fatal(err)
	}

	for _, parallel := range []int{0, 3} {
		sres, err := RunScenario(ScenarioConfig{
			Servers:     []scenario.ServerSpec{{Name: "solo", Game: base.Game}},
			Suite:       base.Suite,
			Parallelism: parallel,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallel, err)
		}
		var got bytes.Buffer
		if err := sres.Aggregate.WriteReport(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("parallelism %d: one-server scenario report differs from Reproduce", parallel)
		}
	}
}

// TestScenarioDeterminism checks the fleet contract: an N-server scenario
// renders byte-identical reports across runs and Parallelism settings, even
// though the servers generate concurrently.
func TestScenarioDeterminism(t *testing.T) {
	var want []byte
	for run, parallel := range []int{0, 0, 3} {
		res, err := RunScenario(ScenarioConfig{
			Spec:        scenarioSpec(11, 3),
			Parallelism: parallel,
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		var buf bytes.Buffer
		if err := res.WriteReport(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("run %d (parallelism %d): fleet report not deterministic", run, parallel)
		}
	}
}

// TestScenarioAggregateConservation: every packet a server generates
// reaches the aggregate suite exactly once through the merge.
func TestScenarioAggregateConservation(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{Spec: scenarioSpec(5, 3), PerServer: PerServerFull})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range res.Servers {
		sum += s.Stats.PacketsIn + s.Stats.PacketsOut
		if got := s.Suite.Count.Packets(); got != s.Stats.PacketsIn+s.Stats.PacketsOut {
			t.Errorf("%s: per-server suite saw %d packets, generator emitted %d",
				s.Name, got, s.Stats.PacketsIn+s.Stats.PacketsOut)
		}
	}
	if got := res.Aggregate.Suite.Count.Packets(); got != sum {
		t.Errorf("aggregate suite saw %d packets, fleet generated %d", got, sum)
	}
	if res.Aggregate.TableII.TotalPackets != sum {
		t.Errorf("Table II total %d != generated %d", res.Aggregate.TableII.TotalPackets, sum)
	}
	if res.TotalSlots() != 22+32+16 {
		t.Errorf("TotalSlots = %d", res.TotalSlots())
	}
}

// TestScenarioSlimPerServer: the slim per-box collector set must agree
// exactly with the full per-box suite on the quantities both collect —
// counters and minute series — at a fraction of the collection cost.
func TestScenarioSlimPerServer(t *testing.T) {
	full, err := RunScenario(ScenarioConfig{Spec: scenarioSpec(9, 3), PerServer: PerServerFull})
	if err != nil {
		t.Fatal(err)
	}
	slim, err := RunScenario(ScenarioConfig{Spec: scenarioSpec(9, 3), PerServer: PerServerSlim})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Servers {
		f, s := full.Servers[i], slim.Servers[i]
		if s.Suite != nil || f.Slim != nil {
			t.Fatalf("server %d: wrong collector set for mode", i)
		}
		if s.Slim == nil {
			t.Fatalf("server %d: slim mode collected nothing", i)
		}
		ft2 := f.Suite.Count.TableII(f.Game.Duration)
		st2 := s.Slim.TableII()
		if ft2 != st2 {
			t.Errorf("server %d: slim Table II diverges from full suite:\nfull: %+v\nslim: %+v", i, ft2, st2)
		}
		fk, sk := f.Suite.Minutes.KbsTotal(), s.Slim.Minutes.KbsTotal()
		if len(fk) != len(sk) {
			t.Fatalf("server %d: minute series lengths %d vs %d", i, len(fk), len(sk))
		}
		for m := range fk {
			if fk[m] != sk[m] {
				t.Errorf("server %d: minute %d diverges: %v vs %v", i, m, fk[m], sk[m])
				break
			}
		}
	}
}
