// loadcheck validates a csload -stats JSON summary: the CI load smoke
// runs it after the harness to turn "the run printed numbers" into hard
// assertions — traffic flowed, the fleet reached full strength, and (when
// disturbance injection was on) the kill was recorded and recovered from.
//
// Usage: loadcheck -stats loadstats.json -bots 6 -expect-kill
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cstrace/internal/loadtest"
)

func main() {
	statsPath := flag.String("stats", "", "csload -stats JSON file to validate")
	bots := flag.Int("bots", 0, "expected fleet size (0 = use the file's own bot count)")
	expectKill := flag.Bool("expect-kill", false, "require a recorded and recovered kill event")
	flag.Parse()

	if *statsPath == "" {
		fmt.Fprintln(os.Stderr, "loadcheck: -stats is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*statsPath)
	if err != nil {
		fatalf("%v", err)
	}
	var st loadtest.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		fatalf("parse %s: %v", *statsPath, err)
	}

	want := st.Bots
	if *bots > 0 {
		want = *bots
	}
	if st.Bots != want {
		fatalf("stats report %d bots, want %d", st.Bots, want)
	}
	if st.Final.Connects < int64(want) {
		fatalf("only %d connects for %d bots", st.Final.Connects, want)
	}
	if st.Final.Sent == 0 || st.Final.Recv == 0 {
		fatalf("no traffic: sent=%d recv=%d", st.Final.Sent, st.Final.Recv)
	}
	full := false
	for _, s := range st.Samples {
		full = full || s.Active == int64(want)
	}
	if !full && st.Final.Active != int64(want) {
		fatalf("fleet never reached full strength (%d bots)", want)
	}
	if *expectKill {
		switch {
		case st.Kill == nil:
			fatalf("no kill event recorded (expected one)")
		case st.Kill.RecoveredAt == 0:
			fatalf("kill at %v never recovered", st.Kill.At)
		case st.Kill.RecoveredAt <= st.Kill.At:
			fatalf("recovery at %v precedes kill at %v", st.Kill.RecoveredAt, st.Kill.At)
		case st.Final.Failovers < 1:
			fatalf("kill recorded but no failovers counted")
		default:
			fmt.Printf("loadcheck: kill at %v recovered at %v (%d failovers)\n",
				st.Kill.At, st.Kill.RecoveredAt, st.Final.Failovers)
		}
	}
	fmt.Printf("loadcheck: ok — %d bots, %d connects, %d sent / %d recv over %v\n",
		st.Bots, st.Final.Connects, st.Final.Sent, st.Final.Recv, st.Duration)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadcheck: "+format+"\n", args...)
	os.Exit(1)
}
