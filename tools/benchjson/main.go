// Command benchjson converts `go test -bench` output into a stable JSON
// artifact and gates throughput regressions against a checked-in baseline.
//
// Usage:
//
//	go test -run xxx -bench 'Pipeline|Analyze' -benchtime 1x . | \
//	    go run ./tools/benchjson -out BENCH.json -baseline BENCH_5.json -tolerance 0.25
//
// Parsing keeps the numbers provisioning decisions ride on: ns/op, the
// repo's Mrec/s custom metric, and — where a bench reports it — the on-disk
// B/rec of the trace encoding under test. The regression gate compares
// Mrec/s and B/rec, never wall-clock ns/op — that varies with iteration
// counts and host load, while records-per-second and bytes-per-record of
// the fixed workloads are the contract. It fails (exit 1) when any
// benchmark present in both files lost more than -tolerance of its
// throughput, or (deterministic, so the default tolerance is tight) grew
// its encoding more than -btolerance over the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded result.
type Entry struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	MrecPerS float64 `json:"mrec_per_s,omitempty"`
	// BPerRec is the on-disk bytes/record of the trace format the bench
	// reads (reported by the Analyze benches; storage-side counterpart to
	// the Mrec/s throughput figure).
	BPerRec float64 `json:"b_per_rec,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse extracts entries from `go test -bench` output.
func parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		fields := strings.Fields(m[2])
		// Metrics come in "value unit" pairs after the iteration count.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "Mrec/s":
				e.MrecPerS = v
			case "B/rec":
				e.BPerRec = v
			}
		}
		if e.NsPerOp > 0 {
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func load(path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Entry
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "write parsed results as JSON to this file")
	baseline := flag.String("baseline", "", "compare Mrec/s against this JSON baseline")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional Mrec/s regression vs baseline")
	btolerance := flag.Float64("btolerance", 0.10, "allowed fractional B/rec growth vs baseline")
	match := flag.String("match", "", "gate only benchmarks whose name matches this regexp (default: all)")
	aliases := flag.String("alias", "", "comma-separated New=Baseline pairs: gate benchmark New against the baseline's entry for Baseline (e.g. BenchmarkScenarioAuto=BenchmarkScenario)")
	flag.Parse()

	var gateRe *regexp.Regexp
	if *match != "" {
		var err error
		if gateRe, err = regexp.Compile(*match); err != nil {
			fatal(fmt.Errorf("-match: %w", err))
		}
	}
	alias := map[string]string{}
	if *aliases != "" {
		for _, pair := range strings.Split(*aliases, ",") {
			newName, baseName, ok := strings.Cut(pair, "=")
			if !ok || newName == "" || baseName == "" {
				fatal(fmt.Errorf("-alias: malformed pair %q (want New=Baseline)", pair))
			}
			alias[newName] = baseName
		}
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	entries, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	if *out != "" {
		raw, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), *out)
	}

	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	baseBy := make(map[string]Entry, len(base))
	for _, e := range base {
		baseBy[e.Name] = e
	}
	failed := false
	for _, e := range entries {
		if gateRe != nil && !gateRe.MatchString(e.Name) {
			continue
		}
		baseName := e.Name
		if a, ok := alias[e.Name]; ok {
			baseName = a
		}
		b, ok := baseBy[baseName]
		if !ok || b.MrecPerS == 0 || e.MrecPerS == 0 {
			continue
		}
		label := e.Name
		if baseName != e.Name {
			label = e.Name + " vs " + baseName
		}
		change := e.MrecPerS/b.MrecPerS - 1
		status := "ok"
		if change < -*tolerance {
			status = "REGRESSION"
			failed = true
		}
		size := ""
		if b.BPerRec > 0 && e.BPerRec > 0 {
			growth := e.BPerRec/b.BPerRec - 1
			size = fmt.Sprintf("  %6.3f -> %6.3f B/rec %+6.1f%%", b.BPerRec, e.BPerRec, growth*100)
			if growth > *btolerance {
				status = "SIZE REGRESSION"
				failed = true
			}
		}
		fmt.Printf("%-40s %8.2f -> %8.2f Mrec/s  %+6.1f%%%s  %s\n",
			label, b.MrecPerS, e.MrecPerS, change*100, size, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: regressed beyond tolerance (%.0f%% Mrec/s, %.0f%% B/rec) vs %s\n",
			*tolerance*100, *btolerance*100, *baseline)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
