package cstrace

import (
	"bytes"
	"testing"
	"time"

	"cstrace/internal/analysis"
)

// TestReproduceParallelismByteIdentical is the determinism contract of the
// block/sharded pipeline: for the same seed, the rendered report is
// byte-for-byte identical whether the suite runs single-threaded or sharded
// across workers.
func TestReproduceParallelismByteIdentical(t *testing.T) {
	base := Quick(1)
	base.Game.Duration = 5 * time.Minute
	base.Game.Warmup = 5 * time.Minute
	base.Suite = analysis.DefaultSuiteConfig(base.Game.Duration)

	var want []byte
	for _, parallel := range []int{0, 2, 3} {
		cfg := base
		cfg.Parallelism = parallel
		res, err := Reproduce(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := res.WriteReport(&buf); err != nil {
			t.Fatalf("parallelism %d: report: %v", parallel, err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("report with Parallelism=%d differs from single-threaded report", parallel)
		}
	}
}
