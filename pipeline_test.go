package cstrace

import (
	"bytes"
	"testing"
	"time"

	"cstrace/internal/analysis"
)

// TestReproduceParallelismByteIdentical is the determinism contract of the
// block/sharded pipeline: for the same seed, the rendered report is
// byte-for-byte identical whether the suite runs single-threaded or sharded
// across workers.
func TestReproduceParallelismByteIdentical(t *testing.T) {
	base := Quick(1)
	base.Game.Duration = 5 * time.Minute
	base.Game.Warmup = 5 * time.Minute
	base.Suite = analysis.DefaultSuiteConfig(base.Game.Duration)

	var want []byte
	for _, parallel := range []int{0, 2, 3} {
		cfg := base
		cfg.Parallelism = parallel
		res, err := Reproduce(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := res.WriteReport(&buf); err != nil {
			t.Fatalf("parallelism %d: report: %v", parallel, err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("report with Parallelism=%d differs from single-threaded report", parallel)
		}
	}
}

// TestReproduceGenWorkersByteIdentical extends the determinism contract to
// the generator's fill workers: the rendered report is byte-for-byte
// identical at every (generator workers × collector shards) combination.
// Run with -race to exercise both sets of goroutines together.
func TestReproduceGenWorkersByteIdentical(t *testing.T) {
	base := Quick(1)
	base.Game.Duration = 5 * time.Minute
	base.Game.Warmup = 5 * time.Minute
	base.Suite = analysis.DefaultSuiteConfig(base.Game.Duration)

	var want []byte
	for _, mode := range []struct{ workers, parallel int }{
		{0, 1}, {2, 1}, {4, 1}, {2, 3}, {4, 4}, {8, 5},
	} {
		cfg := base
		cfg.Game.Workers = mode.workers
		cfg.Parallelism = mode.parallel
		res, err := Reproduce(cfg)
		if err != nil {
			t.Fatalf("workers=%d parallel=%d: %v", mode.workers, mode.parallel, err)
		}
		var buf bytes.Buffer
		if err := res.WriteReport(&buf); err != nil {
			t.Fatalf("workers=%d parallel=%d: report: %v", mode.workers, mode.parallel, err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("report with Workers=%d Parallelism=%d differs from serial report",
				mode.workers, mode.parallel)
		}
	}
}
