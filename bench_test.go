package cstrace

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/nat"
	"cstrace/internal/netem"
	"cstrace/internal/population"
	"cstrace/internal/provision"
	"cstrace/internal/routecache"
	"cstrace/internal/trace"
	"cstrace/internal/webtraffic"
)

// The benchmarks regenerate every table and figure of the paper on scaled
// (10-minute) windows of the calibrated workload, reporting the headline
// quantity of each experiment as a custom metric so `go test -bench` output
// doubles as a compact reproduction check. The full-scale numbers live in
// EXPERIMENTS.md and come from `cstrace -mode week`.

const benchWindow = 10 * time.Minute

func benchGame(seed uint64) gamesim.Config {
	cfg := gamesim.PaperConfig(seed)
	cfg.Duration = benchWindow
	cfg.Warmup = 10 * time.Minute
	cfg.Outages = nil
	cfg.AttemptRate *= 5 // keep the short window at busy-server load
	cfg.DiurnalAmp = 0
	return cfg
}

// benchSuiteConfig is the paper suite sized to the bench window, with the
// sorting stage skipped: every bench feeds a time-ordered stream (the
// generator emits sorted windows; trace files store sorted records).
func benchSuiteConfig(d time.Duration) analysis.SuiteConfig {
	sc := analysis.DefaultSuiteConfig(d)
	sc.SortedInput = true
	return sc
}

// run executes the window into a fresh suite.
func runSuite(b *testing.B, seed uint64) (*analysis.Suite, gamesim.Stats) {
	b.Helper()
	suite, err := analysis.NewSuite(benchSuiteConfig(benchWindow))
	if err != nil {
		b.Fatal(err)
	}
	st, err := gamesim.Run(benchGame(seed), suite, suite.Observe)
	if err != nil {
		b.Fatal(err)
	}
	suite.Close()
	return suite, st
}

func BenchmarkTableI_TraceSummary(b *testing.B) {
	// Table I quantities come from the control plane; run the full week
	// per iteration (cheap without traffic).
	var st gamesim.Stats
	var err error
	for i := 0; i < b.N; i++ {
		st, err = gamesim.Run(gamesim.PaperConfig(uint64(i+1)), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Established), "established")
	b.ReportMetric(float64(st.Attempts), "attempted")
	b.ReportMetric(st.MeanPlayers(), "mean-players")
}

func BenchmarkTableII_NetworkUsage(b *testing.B) {
	var t2 analysis.TableII
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		t2 = suite.Count.TableII(benchWindow)
	}
	b.ReportMetric(float64(t2.MeanPPS), "pps")
	b.ReportMetric(t2.MeanBW.Kbs(), "kbs")
}

func BenchmarkTableIII_ApplicationInfo(b *testing.B) {
	var t3 analysis.TableIII
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		t3 = suite.Count.TableIII()
	}
	b.ReportMetric(t3.MeanIn, "mean-in-B")
	b.ReportMetric(t3.MeanOut, "mean-out-B")
}

func BenchmarkFig1_MinuteBandwidth(b *testing.B) {
	var kbs []float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		kbs = suite.Minutes.KbsTotal()
	}
	b.ReportMetric(meanOf(kbs), "mean-kbs")
}

func BenchmarkFig2_MinutePacketLoad(b *testing.B) {
	var pps []float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		pps = suite.Minutes.PPSTotal()
	}
	b.ReportMetric(meanOf(pps), "mean-pps")
}

func BenchmarkFig3_Players(b *testing.B) {
	var players []float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		players = suite.Players.Counts()
	}
	b.ReportMetric(meanOf(players), "mean-players")
}

func BenchmarkFig4_InOutSeries(b *testing.B) {
	var inBW, outBW float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		inBW = meanOf(suite.Minutes.KbsIn())
		outBW = meanOf(suite.Minutes.KbsOut())
	}
	b.ReportMetric(inBW, "in-kbs")
	b.ReportMetric(outBW, "out-kbs")
}

func BenchmarkFig5_VarianceTime(b *testing.B) {
	var re analysis.RegionEstimates
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		re = analysis.Regions(suite.VT.Points(), 10*time.Millisecond,
			50*time.Millisecond, 30*time.Minute)
	}
	b.ReportMetric(re.SubTick.H, "H-subtick")
	b.ReportMetric(re.Plateau.H, "H-plateau")
}

func benchWindowSeries(b *testing.B, interval time.Duration, series func(*analysis.IntervalWindow) []float64, metric string) {
	b.Helper()
	var v []float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		w := suite.Window(interval)
		if w == nil {
			b.Fatalf("missing %v window", interval)
		}
		v = series(w)
	}
	b.ReportMetric(peakOf(v), metric)
}

func BenchmarkFig6_Load10ms(b *testing.B) {
	benchWindowSeries(b, 10*time.Millisecond, (*analysis.IntervalWindow).TotalPPS, "peak-pps")
}

func BenchmarkFig7_InOut10ms(b *testing.B) {
	var inPeak, outPeak float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		w := suite.Window(10 * time.Millisecond)
		inPeak = peakOf(w.InPPS())
		outPeak = peakOf(w.OutPPS())
	}
	b.ReportMetric(inPeak, "in-peak-pps")
	b.ReportMetric(outPeak, "out-peak-pps")
}

func BenchmarkFig8_Load50ms(b *testing.B) {
	benchWindowSeries(b, 50*time.Millisecond, (*analysis.IntervalWindow).TotalPPS, "peak-pps")
}

func BenchmarkFig9_Load1s(b *testing.B) {
	benchWindowSeries(b, time.Second, (*analysis.IntervalWindow).TotalPPS, "peak-pps")
}

func BenchmarkFig10_Load30min(b *testing.B) {
	// The 30-minute figure needs the full week to be meaningful; at bench
	// scale it verifies the collector plumbing.
	benchWindowSeries(b, 30*time.Minute, (*analysis.IntervalWindow).TotalPPS, "peak-pps")
}

func BenchmarkFig11_ClientBandwidthHist(b *testing.B) {
	var below float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		below = suite.Flows.FractionBelow(30*time.Second, 56e3)
	}
	b.ReportMetric(below, "frac-below-56kbs")
}

func BenchmarkFig12_SizePDF(b *testing.B) {
	var inMean, outMean float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		inMean = suite.Sizes.In.Mean()
		outMean = suite.Sizes.Out.Mean()
	}
	b.ReportMetric(inMean, "in-mean-B")
	b.ReportMetric(outMean, "out-mean-B")
}

func BenchmarkFig13_SizeCDF(b *testing.B) {
	var inBelow60 float64
	for i := 0; i < b.N; i++ {
		suite, _ := runSuite(b, uint64(i+1))
		inBelow60 = suite.Sizes.In.FractionBelow(60)
	}
	b.ReportMetric(inBelow60, "in-frac-below-60B")
}

func natWindow(seed uint64) gamesim.Config {
	cfg := gamesim.NATExperimentConfig(seed)
	cfg.Duration = benchWindow
	return cfg
}

func BenchmarkTableIV_NATExperiment(b *testing.B) {
	var res nat.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = nat.RunExperiment(natWindow(uint64(i+1)), nat.DefaultConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Counts.LossIn()*100, "loss-in-%")
	b.ReportMetric(res.Counts.LossOut()*100, "loss-out-%")
}

func BenchmarkFig14_NATIncoming(b *testing.B) {
	var res nat.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = nat.RunExperiment(natWindow(uint64(i+1)), nat.DefaultConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanOf(res.ClientsToNAT), "offered-pps")
	b.ReportMetric(meanOf(res.NATToServer), "delivered-pps")
}

func BenchmarkFig15_NATOutgoing(b *testing.B) {
	var res nat.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = nat.RunExperiment(natWindow(uint64(i+1)), nat.DefaultConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanOf(res.ServerToNAT), "offered-pps")
	b.ReportMetric(meanOf(res.NATToClients), "delivered-pps")
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblation_SyncTicks vs _DesyncTicks: the paper attributes the
// 10 ms-scale burstiness entirely to the synchronized broadcast.
func BenchmarkAblation_SyncTicks(b *testing.B)   { ablationTicks(b, false) }
func BenchmarkAblation_DesyncTicks(b *testing.B) { ablationTicks(b, true) }

func ablationTicks(b *testing.B, desync bool) {
	var peak float64
	for i := 0; i < b.N; i++ {
		cfg := benchGame(uint64(i + 1))
		cfg.DesynchronizeTicks = desync
		w := analysis.NewIntervalWindow(10*time.Millisecond, 200)
		if _, err := gamesim.Run(cfg, w, nil); err != nil {
			b.Fatal(err)
		}
		peak = peakOf(w.OutPPS()) / (meanOf(w.OutPPS()) + 1)
	}
	b.ReportMetric(peak, "out-peak-to-mean")
}

// BenchmarkAblation_NoMapRotation: removing the 30-minute rotation flattens
// the 50ms-30min variance plateau.
func BenchmarkAblation_NoMapRotation(b *testing.B) {
	var re analysis.RegionEstimates
	for i := 0; i < b.N; i++ {
		cfg := benchGame(uint64(i + 1))
		cfg.MapDuration = 1000 * time.Hour // never rotates within the window
		suite, err := analysis.NewSuite(analysis.DefaultSuiteConfig(benchWindow))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gamesim.Run(cfg, suite, nil); err != nil {
			b.Fatal(err)
		}
		suite.Close()
		re = analysis.Regions(suite.VT.Points(), 10*time.Millisecond,
			50*time.Millisecond, 30*time.Minute)
	}
	b.ReportMetric(re.Plateau.H, "H-plateau")
}

// BenchmarkAblation_NATQueueDepth sweeps the buffer the paper argues cannot
// help: deeper queues trade loss for delay.
func BenchmarkAblation_NATQueueDepth(b *testing.B) {
	var lossShallow, lossDeep, delayDeep float64
	for i := 0; i < b.N; i++ {
		cfg := natWindow(uint64(i + 1))
		shallow := nat.DefaultConfig(uint64(i + 1))
		deep := shallow
		deep.QueueIn *= 8
		deep.QueueOut *= 8
		rs, err := nat.RunExperiment(cfg, shallow)
		if err != nil {
			b.Fatal(err)
		}
		rd, err := nat.RunExperiment(cfg, deep)
		if err != nil {
			b.Fatal(err)
		}
		lossShallow = rs.Counts.LossIn()
		lossDeep = rd.Counts.LossIn()
		delayDeep = rd.MaxDelayIn * 1e3
	}
	b.ReportMetric(lossShallow*100, "shallow-loss-%")
	b.ReportMetric(lossDeep*100, "deep-loss-%")
	b.ReportMetric(delayDeep, "deep-max-delay-ms")
}

// BenchmarkRouteCache_* compare replacement policies on the mixed workload
// (§IV-B).
func BenchmarkRouteCache_LRU(b *testing.B)      { routeCacheBench(b, routecache.PolicyLRU) }
func BenchmarkRouteCache_LFU(b *testing.B)      { routeCacheBench(b, routecache.PolicyLFU) }
func BenchmarkRouteCache_SizePref(b *testing.B) { routeCacheBench(b, routecache.PolicySizePref) }
func BenchmarkRouteCache_FreqPref(b *testing.B) { routeCacheBench(b, routecache.PolicyFreqPref) }
func BenchmarkRouteCache_None(b *testing.B)     { routeCacheBench(b, routecache.PolicyNone) }

func routeCacheBench(b *testing.B, pol routecache.Policy) {
	fib := routecache.BuildFIB(20000, 1)
	game := routecache.GameWorkload(100000, 22, 0.0005, 2)
	web := routecache.WebWorkload(100000, 50000, 3)
	mixed := routecache.Mix(game, web, 0.5, 4)
	b.ResetTimer()
	var m routecache.Metrics
	for i := 0; i < b.N; i++ {
		c, err := routecache.NewCache(routecache.DefaultCacheConfig(pol, 64), fib)
		if err != nil {
			b.Fatal(err)
		}
		m = routecache.Run(c, mixed)
	}
	b.ReportMetric(m.HitRatio()*100, "hit-%")
	b.ReportMetric(m.MeanCost(), "cost/pkt")
}

// --- pipeline benches: per-record vs block vs sharded dispatch ---
//
// The three BenchmarkPipeline* functions feed the identical pre-generated
// Quick(1) record stream into a fresh full analysis suite, varying only the
// delivery path. The headline metric is Mrec/s; the batch path's win is
// pure dispatch/locality engineering, since the collector math is shared.

var (
	pipeOnce sync.Once
	pipeRecs []trace.Record
)

// pipelineRecords generates the Quick(1) workload once and caches it.
func pipelineRecords(b *testing.B) []trace.Record {
	b.Helper()
	pipeOnce.Do(func() {
		var c trace.Collect
		if _, err := gamesim.Run(Quick(1).Game, &c, nil); err != nil {
			panic(err)
		}
		pipeRecs = c.Records
	})
	return pipeRecs
}

func benchPipeline(b *testing.B, feed func(*analysis.Suite, []trace.Record)) {
	recs := pipelineRecords(b)
	sc := benchSuiteConfig(Quick(1).Game.Duration)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite, err := analysis.NewSuite(sc)
		if err != nil {
			b.Fatal(err)
		}
		feed(suite, recs)
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
}

// BenchmarkPipelinePerRecord is the legacy path: one trace.Handler virtual
// call per record into the suite.
func BenchmarkPipelinePerRecord(b *testing.B) {
	benchPipeline(b, func(s *analysis.Suite, recs []trace.Record) {
		var h trace.Handler = trace.HandlerFunc(s.Handle)
		for _, r := range recs {
			h.Handle(r)
		}
		s.Close()
	})
}

// BenchmarkPipelineBatched delivers the same stream in BlockSize slabs.
func BenchmarkPipelineBatched(b *testing.B) {
	benchPipeline(b, func(s *analysis.Suite, recs []trace.Record) {
		for i := 0; i < len(recs); i += trace.BlockSize {
			end := i + trace.BlockSize
			if end > len(recs) {
				end = len(recs)
			}
			s.HandleBatch(recs[i:end])
		}
		s.Close()
	})
}

// BenchmarkPipelineSharded fans the slabs out to collector-group workers.
// It only beats the batched path when ≥2 cores are available; on one core
// it measures the channel overhead floor.
func BenchmarkPipelineSharded(b *testing.B) {
	benchPipeline(b, func(s *analysis.Suite, recs []trace.Record) {
		sh := analysis.Shard(s, runtime.GOMAXPROCS(0))
		for i := 0; i < len(recs); i += trace.BlockSize {
			end := i + trace.BlockSize
			if end > len(recs) {
				end = len(recs)
			}
			sh.HandleBatch(recs[i:end])
		}
		sh.Close()
	})
}

// --- analyze benches: the -mode analyze read path, v1 through v4 ---
//
// The BenchmarkAnalyze* functions re-analyze the identical Quick(1) stream
// persisted in all four trace formats. V1 is the legacy serial baseline
// (per-record bufio decode + single-threaded suite); V2 decodes
// segment-at-a-time out of in-memory slabs; V3 additionally inflates the
// per-segment flate compression; V4 stores field-striped column runs,
// inflated one segment ahead of the decode on the serial path. The
// Parallel variants fan segment decode across worker goroutines and shard
// the collector groups — V2Parallel through the single order-preserving
// reassembly-dispatch goroutine, V3Parallel and V4Parallel through the
// direct decode-to-shard delivery (Reader.ReadAllSharded), which is the
// path -mode analyze -parallel runs; on v4 the decoded columns ride along
// and single-column collectors sweep them flat. On a single-core host the
// parallel variants measure the coordination floor; the fan-out adds its
// speedup only with real cores. Every bench also reports the on-disk
// bytes/record of its input — the storage half of the provisioning budget.

var (
	analyzeOnce  sync.Once
	analyzeRawV1 []byte
	analyzeRawV2 []byte
	analyzeRawV3 []byte
	analyzeRawV4 []byte
)

func analyzeTraceRaw(b *testing.B) (v1, v2, v3, v4 []byte) {
	b.Helper()
	analyzeOnce.Do(func() {
		recs := pipelineRecords(b)
		var v1buf, v2buf, v3buf, v4buf bytes.Buffer
		w1, w2 := trace.NewWriterV1(&v1buf), trace.NewWriterV2(&v2buf)
		w3, w4 := trace.NewWriterV3(&v3buf), trace.NewWriter(&v4buf)
		sorter := trace.NewSortBuffer(2*Quick(1).Game.TickInterval, trace.Tee(w1, w2, w3, w4))
		for i := 0; i < len(recs); i += trace.BlockSize {
			end := i + trace.BlockSize
			if end > len(recs) {
				end = len(recs)
			}
			sorter.HandleBatch(recs[i:end])
		}
		sorter.Flush()
		for _, w := range []*trace.Writer{w1, w2, w3, w4} {
			if err := w.Flush(); err != nil {
				panic(err)
			}
		}
		analyzeRawV1, analyzeRawV2 = v1buf.Bytes(), v2buf.Bytes()
		analyzeRawV3, analyzeRawV4 = v3buf.Bytes(), v4buf.Bytes()
	})
	return analyzeRawV1, analyzeRawV2, analyzeRawV3, analyzeRawV4
}

func benchAnalyze(b *testing.B, rawLen int, run func(*analysis.Suite) (int64, error)) {
	sc := benchSuiteConfig(Quick(1).Game.Duration)
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		suite, err := analysis.NewSuite(sc)
		if err != nil {
			b.Fatal(err)
		}
		if n, err = run(suite); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
	if n > 0 {
		b.ReportMetric(float64(rawLen)/float64(n), "B/rec")
	}
}

// BenchmarkAnalyzeV1 is the serial ReadAll baseline over the legacy format.
func BenchmarkAnalyzeV1(b *testing.B) {
	raw, _, _, _ := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAll(s)
		s.Close()
		return n, err
	})
}

// BenchmarkAnalyzeV2 is the serial v2 scan: slab decode, one goroutine
// ahead, single-threaded suite.
func BenchmarkAnalyzeV2(b *testing.B) {
	_, raw, _, _ := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAllPrefetch(s)
		s.Close()
		return n, err
	})
}

// BenchmarkAnalyzeV3 is the serial v3 scan: slab decode plus per-segment
// flate inflation, one goroutine ahead, single-threaded suite.
func BenchmarkAnalyzeV3(b *testing.B) {
	_, _, raw, _ := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAllPrefetch(s)
		s.Close()
		return n, err
	})
}

// BenchmarkAnalyzeV2Parallel is the legacy parallel path: indexed segment
// decode on 4 workers funneled through the single order-preserving
// reassembly-dispatch goroutine into sharded collector groups.
func BenchmarkAnalyzeV2Parallel(b *testing.B) {
	_, raw, _, _ := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		sink, closeSink := s.Sink(4)
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAllParallel(sink, 4)
		closeSink()
		return n, err
	})
}

// BenchmarkAnalyzeV3Parallel is the full -mode analyze -parallel 4 path:
// indexed segment decode + inflation on 4 workers delivering their blocks
// straight into the sharded suite's per-group channels (ReadAllSharded) —
// no re-batch copy, no dispatch goroutine.
func BenchmarkAnalyzeV3Parallel(b *testing.B) {
	_, _, raw, _ := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		sink, closeSink := s.Sink(4)
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAllSharded(sink, 4)
		closeSink()
		return n, err
	})
}

// BenchmarkAnalyzeV4 is the serial v4 scan: a prefetch goroutine inflates
// column runs one segment ahead while the decode stripes them into blocks,
// single-threaded suite.
func BenchmarkAnalyzeV4(b *testing.B) {
	_, _, _, raw := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAllPrefetch(s)
		s.Close()
		return n, err
	})
}

// BenchmarkAnalyzeV4Parallel is -mode analyze -parallel 4 over a columnar
// trace: segment inflate + column decode on 4 workers, decoded columns
// delivered to the sharded suite alongside the record blocks so the
// single-column collectors sweep flat arrays.
func BenchmarkAnalyzeV4Parallel(b *testing.B) {
	_, _, _, raw := analyzeTraceRaw(b)
	benchAnalyze(b, len(raw), func(s *analysis.Suite) (int64, error) {
		sink, closeSink := s.Sink(4)
		n, err := trace.NewReader(bytes.NewReader(raw)).ReadAllSharded(sink, 4)
		closeSink()
		return n, err
	})
}

// benchWrite measures Writer throughput at default compression: the same
// pre-generated stream encoded to a v4 file, serial or with the deflate
// worker pool (byte-identical output either way).
func benchWrite(b *testing.B, workers int) {
	b.Helper()
	recs := pipelineRecords(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		w.Workers = workers
		for j := 0; j < len(recs); j += trace.BlockSize {
			end := j + trace.BlockSize
			if end > len(recs) {
				end = len(recs)
			}
			w.HandleBatch(recs[j:end])
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		total = buf.Len()
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrec/s")
	b.ReportMetric(float64(total)/float64(len(recs)), "B/rec")
}

// BenchmarkWriteV4 is the synchronous encode+deflate path;
// BenchmarkWriteV4Workers moves deflate onto a 4-worker pool, leaving only
// column appends and segment sealing on the caller's goroutine.
func BenchmarkWriteV4(b *testing.B)        { benchWrite(b, 1) }
func BenchmarkWriteV4Workers(b *testing.B) { benchWrite(b, 4) }

// BenchmarkScenario measures fleet-scale throughput: 4 servers generated
// concurrently, k-way merged, and analyzed by a sharded aggregate suite —
// the whole -mode scenario path. The headline metric is merged Mrec/s.
func BenchmarkScenario(b *testing.B) {
	var n int64
	var perSlot float64
	for i := 0; i < b.N; i++ {
		res, err := RunScenario(ScenarioConfig{
			Spec: Scenario{
				Seed:      uint64(i + 1),
				Servers:   4,
				Duration:  benchWindow,
				Warmup:    5 * time.Minute,
				SlotMix:   []int{22, 32, 16},
				SpikeMult: 6,
				RateScale: 5,
			},
			Parallelism: runtime.GOMAXPROCS(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		n += res.Aggregate.TableII.TotalPackets
		perSlot = res.PerSlotKbs()
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Mrec/s")
	b.ReportMetric(perSlot, "kbs/slot")
}

// BenchmarkScenarioAuto is BenchmarkScenario with every worker knob on
// AutoWorkers: the self-tuning path — budget-split fills, adaptive shard,
// tournament merge — over the identical workload. CI gates its Mrec/s
// against the hand-tuned BenchmarkScenario baseline (benchjson -alias), so
// "auto matches or beats hand-tuned" is a checked invariant, not a hope.
func BenchmarkScenarioAuto(b *testing.B) {
	var n int64
	var perSlot float64
	for i := 0; i < b.N; i++ {
		res, err := RunScenario(ScenarioConfig{
			Spec: Scenario{
				Seed:      uint64(i + 1),
				Servers:   4,
				Duration:  benchWindow,
				Warmup:    5 * time.Minute,
				SlotMix:   []int{22, 32, 16},
				SpikeMult: 6,
				RateScale: 5,
			},
			Parallelism: AutoWorkers,
			GenWorkers:  AutoWorkers,
		})
		if err != nil {
			b.Fatal(err)
		}
		n += res.Aggregate.TableII.TotalPackets
		perSlot = res.PerSlotKbs()
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Mrec/s")
	b.ReportMetric(perSlot, "kbs/slot")
}

// BenchmarkGeneratorThroughput measures raw generation speed through a
// per-record handler: how fast the half-billion-packet week can be
// regenerated by a legacy consumer.
func BenchmarkGeneratorThroughput(b *testing.B) {
	var n int64
	for i := 0; i < b.N; i++ {
		cfg := benchGame(uint64(i + 1))
		count := trace.HandlerFunc(func(trace.Record) { n++ })
		if _, err := gamesim.Run(cfg, count, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Mrec/s")
}

// nullSink consumes blocks for free: generation benches measure the
// generator, not the consumer.
type nullSink struct{}

func (nullSink) Handle(trace.Record)        {}
func (nullSink) HandleBatch([]trace.Record) {}

// benchGenerate measures the batch-native generation path at a given fill
// worker count. Records reach the handler as per-window blocks.
func benchGenerate(b *testing.B, workers int) {
	b.Helper()
	var n int64
	for i := 0; i < b.N; i++ {
		cfg := benchGame(uint64(i + 1))
		cfg.Workers = workers
		st, err := gamesim.Run(cfg, nullSink{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		n += st.PacketsIn + st.PacketsOut
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Mrec/s")
}

// BenchmarkGenerate is the serial fill path; BenchmarkGenerateParallel
// fills tick windows on GOMAXPROCS worker goroutines (byte-identical
// stream; the speedup needs real cores).
func BenchmarkGenerate(b *testing.B)         { benchGenerate(b, 1) }
func BenchmarkGenerateParallel(b *testing.B) { benchGenerate(b, runtime.GOMAXPROCS(0)) }

// benchEndToEnd measures the full gen→analyze path — Reproduce with the
// given generator fill workers and collector-group shards. This is the
// number the provisioning question rides on: how fast a paper-scale
// workload can be produced and characterized.
func benchEndToEnd(b *testing.B, genWorkers, parallel int) {
	b.Helper()
	var n int64
	for i := 0; i < b.N; i++ {
		cfg := Config{Game: benchGame(uint64(i + 1)), Suite: analysis.DefaultSuiteConfig(benchWindow)}
		cfg.Game.Workers = genWorkers
		cfg.Parallelism = parallel
		res, err := Reproduce(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n += res.TableII.TotalPackets
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Mrec/s")
}

// BenchmarkEndToEndSerial is one goroutine end to end;
// BenchmarkEndToEndParallel runs generator fill workers and sharded
// collector groups at GOMAXPROCS each (reports byte-identical to serial).
func BenchmarkEndToEndSerial(b *testing.B) { benchEndToEnd(b, 1, 1) }
func BenchmarkEndToEndParallel(b *testing.B) {
	benchEndToEnd(b, runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0))
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func peakOf(xs []float64) float64 {
	var p float64
	for _, x := range xs {
		if x > p {
			p = x
		}
	}
	return p
}

// --- Extension benches: the systems built beyond the paper's figures. ---

// BenchmarkExtension_WebNATComparison is the §IV-A head-to-head: a web/TCP
// workload of comparable bit rate through the same forwarding device that
// loses >1% of the game's packets. The metrics show the mechanism: several
// times fewer lookups per megabit, near-zero loss.
func BenchmarkExtension_WebNATComparison(b *testing.B) {
	var res webtraffic.NATResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := webtraffic.DefaultConfig(uint64(i + 1))
		cfg.Duration = benchWindow
		res, err = webtraffic.RunNAT(cfg, nat.DefaultConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LossIn()*100, "web-loss-in-%")
	b.ReportMetric(res.LossOut()*100, "web-loss-out-%")
	b.ReportMetric(res.Stats.MeanWirePacket(), "mean-wire-B")
	b.ReportMetric(res.Stats.PPSPerMbps(), "pps-per-Mbps")
}

// BenchmarkExtension_WebGenerator measures raw web-workload generation.
func BenchmarkExtension_WebGenerator(b *testing.B) {
	var packets int64
	for i := 0; i < b.N; i++ {
		cfg := webtraffic.DefaultConfig(uint64(i + 1))
		cfg.Duration = benchWindow
		st, err := webtraffic.Generate(cfg, trace.HandlerFunc(func(trace.Record) {}))
		if err != nil {
			b.Fatal(err)
		}
		packets = st.Packets()
	}
	b.ReportMetric(float64(packets), "packets")
}

// BenchmarkExtension_PopulationSelfSimilarity reproduces the §IV-B caveat:
// heavy-tailed sessions push the aggregate population's Hurst parameter far
// above the exponential baseline.
func BenchmarkExtension_PopulationSelfSimilarity(b *testing.B) {
	var res population.SelfSimilarityResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := population.Config{
			Seed:        uint64(i + 7),
			Duration:    96 * time.Hour,
			Warmup:      4 * time.Hour,
			Resolution:  30 * time.Second,
			ArrivalRate: 0.4,
		}
		res, err = population.SelfSimilarityExperiment(cfg, 1.4, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Heavy.H, "H-heavy")
	b.ReportMetric(res.Exp.H, "H-exp")
	b.ReportMetric(res.TheoryH, "H-theory")
}

// BenchmarkExtension_LastMileSaturation replays a fixed per-player flow
// through the modem profile: the ordinary config survives, the "l337"
// config loses heavily — the Fig 11 tail explained mechanically.
func BenchmarkExtension_LastMileSaturation(b *testing.B) {
	mkFlow := func(app uint16, gap time.Duration, n int) []trace.Record {
		recs := make([]trace.Record, n)
		for i := range recs {
			recs[i] = trace.Record{T: time.Duration(i) * gap, Dir: trace.Out, App: app}
		}
		return recs
	}
	ordinary := mkFlow(130, 60*time.Millisecond, 5000)
	elite := mkFlow(250, 20*time.Millisecond, 5000)
	b.ResetTimer()
	var lossOrdinary, lossElite float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			flow []trace.Record
			out  *float64
		}{{ordinary, &lossOrdinary}, {elite, &lossElite}} {
			lm, err := netem.New(netem.Modem56k(), uint64(i+1), trace.HandlerFunc(func(trace.Record) {}))
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range tc.flow {
				lm.Handle(r)
			}
			*tc.out = lm.Down().LossRate()
		}
	}
	b.ReportMetric(lossOrdinary*100, "ordinary-loss-%")
	b.ReportMetric(lossElite*100, "l337-loss-%")
}

// BenchmarkExtension_ProvisioningPlan exercises the analytic planner at the
// "Microsoft/Sony launch" scale the paper gestures at.
func BenchmarkExtension_ProvisioningPlan(b *testing.B) {
	budget := provision.PaperBudget()
	var plan provision.Plan
	var barricade, midrange int
	var err error
	for i := 0; i < b.N; i++ {
		plan, err = provision.PlanFor(budget, 100000, 22, 50*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		d := provision.Demand(budget, 20, 50*time.Millisecond)
		barricade = provision.MaxServers(provision.Barricade(), d, provision.DefaultLatencyBudget)
		midrange = provision.MaxServers(provision.MidRangeRouter(), d, provision.DefaultLatencyBudget)
	}
	b.ReportMetric(float64(plan.Servers), "servers-for-100k")
	b.ReportMetric(plan.TotalBps/1e6, "Mbps-for-100k")
	b.ReportMetric(float64(barricade), "max-servers-barricade")
	b.ReportMetric(float64(midrange), "max-servers-midrange")
}

// BenchmarkExtension_TickRecovery detects the 50 ms broadcast period from
// the generated outbound stream via autocorrelation — the quantitative form
// of the paper's Fig 6 observation.
func BenchmarkExtension_TickRecovery(b *testing.B) {
	var tick time.Duration
	var corr float64
	for i := 0; i < b.N; i++ {
		p := analysis.NewPeriodicity(trace.Out, 10*time.Millisecond, 30)
		cfg := benchGame(uint64(i + 1))
		cfg.Duration = 2 * time.Minute
		if _, err := gamesim.Run(cfg, p, nil); err != nil {
			b.Fatal(err)
		}
		p.Flush()
		tick, corr = p.Tick()
	}
	b.ReportMetric(float64(tick)/float64(time.Millisecond), "tick-ms")
	b.ReportMetric(corr, "corr")
}

// BenchmarkExtension_PCAPNGRoundTrip measures the pcapng write+read path on
// a window of generated traffic.
func BenchmarkExtension_PCAPNGRoundTrip(b *testing.B) {
	var collect trace.Collect
	cfg := benchGame(1)
	cfg.Duration = time.Minute
	if _, err := gamesim.Run(cfg, &collect, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := trace.NewPCAPNGWriter(&buf, time.Unix(1018515304, 0))
		for _, r := range collect.Records {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		var err error
		n, _, err = trace.ReadPCAPNG(&buf, trace.DefaultServerAddr, trace.DefaultServerPort, trace.HandlerFunc(func(trace.Record) {}))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(collect.Records)) * 16)
	b.ReportMetric(float64(n), "packets")
}

// BenchmarkAblation_NATSyncLoss / _NATDesyncLoss tie ablation 1 to the §IV-A
// result: the same offered rate through the same device loses an order of
// magnitude less when the broadcast is desynchronized — the burst structure,
// not the packet rate, is what overruns the forwarding engine.
func BenchmarkAblation_NATSyncLoss(b *testing.B)   { ablationNATLoss(b, false) }
func BenchmarkAblation_NATDesyncLoss(b *testing.B) { ablationNATLoss(b, true) }

func ablationNATLoss(b *testing.B, desync bool) {
	var res nat.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		cfg := gamesim.NATExperimentConfig(uint64(i + 1))
		cfg.Duration = benchWindow
		cfg.DesynchronizeTicks = desync
		res, err = nat.RunExperiment(cfg, nat.DefaultConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Counts.LossIn()*100, "loss-in-%")
	b.ReportMetric(res.Counts.LossOut()*100, "loss-out-%")
}
