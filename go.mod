module cstrace

go 1.24
