package cstrace_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"cstrace"
	"cstrace/internal/trace"
)

// ExampleReproduce runs the 30-minute busy-server reproduction and checks
// the paper's headline number: per-player-slot bandwidth sits in the
// saturated-modem band the paper measured (~40 kbs). Use Full(seed) for the
// week-long run behind EXPERIMENTS.md, and Config.Parallelism to shard the
// collectors across cores; res.WriteReport renders Tables I-III and every
// figure.
func ExampleReproduce() {
	res, err := cstrace.Reproduce(cstrace.Quick(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window: %v on a %d-slot server\n", res.Config.Game.Duration, res.Config.Game.Slots)
	fmt.Printf("per-slot bandwidth in the modem band: %v\n", res.PerSlotKbs() > 20 && res.PerSlotKbs() < 80)
	// Output:
	// window: 30m0s on a 22-slot server
	// per-slot bandwidth in the modem band: true
}

// ExampleRunScenario simulates a three-server launch-day fleet — mixed slot
// counts, a decaying arrival surge — and reports the aggregate an operator
// provisions against. Results are deterministic: byte-identical across runs
// and Parallelism settings.
func ExampleRunScenario() {
	cfg := cstrace.LaunchDay(1, 3)
	cfg.Spec.Duration = 5 * time.Minute
	cfg.Spec.Warmup = 2 * time.Minute
	res, err := cstrace.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d servers, %d player slots\n", len(res.Servers), res.TotalSlots())
	fmt.Printf("aggregate traffic analyzed: %v\n", res.Aggregate.TableII.TotalPackets > 0)
	// Output:
	// fleet: 3 servers, 76 player slots
	// aggregate traffic analyzed: true
}

// ExampleAnalyzeTrace persists a generated window as an indexed, compressed
// v4 trace and re-analyzes it with parallel segment decode — the library
// form of `cstrace -mode gen` + `-mode analyze -parallel 4`, where the
// decode workers deliver their blocks straight into the sharded suite. The
// report is byte-identical to a serial scan of the same bytes (and to the
// v1/v2 encodings of the same stream).
func ExampleAnalyzeTrace() {
	cfg := cstrace.Quick(1)
	cfg.Game.Duration = 5 * time.Minute
	cfg.Game.Warmup = 2 * time.Minute

	// The generator's stream has bounded disorder; a SortBuffer restores
	// the strict time order the trace writer requires.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf) // format v4: columnar + indexed + compressed
	sorter := trace.NewSortBuffer(100*time.Millisecond, w)
	cfg.Extra = sorter
	if _, err := cstrace.Reproduce(cfg); err != nil {
		log.Fatal(err)
	}
	sorter.Flush()
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	a, err := cstrace.AnalyzeTrace(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace format: v%d\n", a.Version)
	fmt.Printf("round trip complete: %v\n", a.Records == w.Count() && a.Warning == "")
	// Output:
	// trace format: v4
	// round trip complete: true
}
