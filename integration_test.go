package cstrace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/nat"
	"cstrace/internal/trace"
)

// TestTracePersistenceRoundTrip verifies the full storage path: a generated
// window written to the binary trace format and read back produces
// bit-identical analysis results.
func TestTracePersistenceRoundTrip(t *testing.T) {
	cfg := gamesim.PaperConfig(5)
	cfg.Duration = 4 * time.Minute
	cfg.Warmup = time.Minute
	cfg.Outages = nil
	cfg.AttemptRate = 0.3
	cfg.DiurnalAmp = 0

	// Pass 1: analyze directly while writing the trace.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	direct, err := analysis.NewSuite(analysis.DefaultSuiteConfig(cfg.Duration))
	if err != nil {
		t.Fatal(err)
	}
	sorter := trace.NewSortBuffer(2*cfg.TickInterval, trace.Tee(direct, w))
	if _, err := gamesim.Run(cfg, sorter, nil); err != nil {
		t.Fatal(err)
	}
	sorter.Flush()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	direct.Close()

	// Pass 2: read the trace back and analyze again.
	replay, err := analysis.NewSuite(analysis.DefaultSuiteConfig(cfg.Duration))
	if err != nil {
		t.Fatal(err)
	}
	n, err := trace.NewReader(&buf).ReadAll(replay)
	if err != nil {
		t.Fatal(err)
	}
	replay.Close()

	if n != w.Count() {
		t.Fatalf("wrote %d records, read %d", w.Count(), n)
	}
	d2, r2 := direct.Count.TableII(cfg.Duration), replay.Count.TableII(cfg.Duration)
	if d2 != r2 {
		t.Errorf("Table II diverged:\ndirect: %+v\nreplay: %+v", d2, r2)
	}
	d3, r3 := direct.Count.TableIII(), replay.Count.TableIII()
	if d3 != r3 {
		t.Errorf("Table III diverged:\ndirect: %+v\nreplay: %+v", d3, r3)
	}
	dp, rp := direct.VT.Points(), replay.VT.Points()
	if len(dp) != len(rp) {
		t.Fatalf("variance-time points: %d vs %d", len(dp), len(rp))
	}
	for i := range dp {
		if dp[i].M != rp[i].M || math.Abs(dp[i].NormVar-rp[i].NormVar) > 1e-12 {
			t.Errorf("variance-time m=%d diverged: %v vs %v", dp[i].M, dp[i].NormVar, rp[i].NormVar)
		}
	}
}

// TestPCAPExportRoundTrip verifies the pcap path: exported frames decode
// back into records with identical direction/size/timing statistics.
func TestPCAPExportRoundTrip(t *testing.T) {
	cfg := gamesim.PaperConfig(6)
	cfg.Duration = 30 * time.Second
	cfg.Warmup = 0
	cfg.Outages = nil
	cfg.AttemptRate = 0.5
	cfg.DiurnalAmp = 0

	var buf bytes.Buffer
	pw := trace.NewPCAPWriter(&buf, time.Date(2002, 4, 11, 8, 55, 4, 0, time.UTC))
	var wrote int64
	var whereErr error
	var directIn, directOut, directBytes int64
	sorter := trace.NewSortBuffer(2*cfg.TickInterval, trace.HandlerFunc(func(r trace.Record) {
		if whereErr == nil {
			whereErr = pw.Write(r)
			wrote++
			if r.Dir == trace.In {
				directIn++
			} else {
				directOut++
			}
			directBytes += int64(r.App)
		}
	}))
	if _, err := gamesim.Run(cfg, sorter, nil); err != nil {
		t.Fatal(err)
	}
	sorter.Flush()
	if whereErr != nil {
		t.Fatal(whereErr)
	}

	var got trace.Collect
	n, skipped, err := trace.ReadPCAP(&buf, trace.DefaultServerAddr, trace.DefaultServerPort, &got)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d packets", skipped)
	}
	if n != wrote {
		t.Fatalf("wrote %d, read %d", wrote, n)
	}
	var in, out, bytesTotal int64
	for _, r := range got.Records {
		if r.Dir == trace.In {
			in++
		} else {
			out++
		}
		bytesTotal += int64(r.App)
	}
	if in != directIn || out != directOut || bytesTotal != directBytes {
		t.Errorf("pcap replay stats diverged: in %d/%d out %d/%d bytes %d/%d",
			in, directIn, out, directOut, bytesTotal, directBytes)
	}
}

// TestNATDeviceDownstreamOfGenerator checks the full chain used by the
// provisioning example: generator -> sort -> device -> analysis, with
// conservation holding end to end.
func TestNATDeviceDownstreamOfGenerator(t *testing.T) {
	cfg := gamesim.NATExperimentConfig(3)
	cfg.Duration = 3 * time.Minute

	var delivered analysis.Counters
	dev, err := nat.New(nat.DefaultConfig(3), &delivered)
	if err != nil {
		t.Fatal(err)
	}
	sorter := trace.NewSortBuffer(2*cfg.TickInterval, dev)
	st, err := gamesim.Run(cfg, sorter, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorter.Flush()

	c := dev.Counts()
	if c.ClientToNAT != st.PacketsIn || c.ServerToNAT != st.PacketsOut {
		t.Errorf("offered != generated: %d/%d vs %d/%d",
			c.ClientToNAT, c.ServerToNAT, st.PacketsIn, st.PacketsOut)
	}
	if delivered.PacketsIn != c.NATToServer || delivered.PacketsOut != c.NATToClients {
		t.Errorf("downstream counts diverge: %d/%d vs %d/%d",
			delivered.PacketsIn, delivered.PacketsOut, c.NATToServer, c.NATToClients)
	}
	if c.NATToServer > c.ClientToNAT || c.NATToClients > c.ServerToNAT {
		t.Error("conservation violated")
	}
}

// TestSeedIndependenceOfShape verifies that the headline structure is not a
// seed artifact: three seeds all reproduce the paper's qualitative findings.
func TestSeedIndependenceOfShape(t *testing.T) {
	for seed := uint64(11); seed <= 13; seed++ {
		res, err := Reproduce(Quick(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.TableII.PacketsIn <= res.TableII.PacketsOut {
			t.Errorf("seed %d: packet asymmetry lost", seed)
		}
		if res.TableIII.MeanOut <= 2.5*res.TableIII.MeanIn {
			t.Errorf("seed %d: size ratio lost", seed)
		}
		if res.Regions.SubTick.H >= 0.5 {
			t.Errorf("seed %d: sub-tick smoothing lost (H=%.2f)", seed, res.Regions.SubTick.H)
		}
	}
}

// TestAnalyzeTraceFormatsByteIdentical is the cross-version compatibility
// golden: the same generated stream persisted by the legacy v1 writer, the
// segmented v2 writer, the compressed v3 writer and the columnar v4 writer
// must render byte-identical analysis reports, at every parallelism
// setting of the indexed read paths (the parallel v3/v4 variants take the
// direct decode-to-shard delivery; v4 additionally hands decoded columns
// to the suite's column-aware collectors).
func TestAnalyzeTraceFormatsByteIdentical(t *testing.T) {
	cfg := gamesim.PaperConfig(5)
	cfg.Duration = 4 * time.Minute
	cfg.Warmup = time.Minute
	cfg.Outages = nil
	cfg.AttemptRate = 0.3
	cfg.DiurnalAmp = 0

	var v1buf, v2buf, v3buf, v4buf bytes.Buffer
	w1 := trace.NewWriterV1(&v1buf)
	w2 := trace.NewWriterV2(&v2buf)
	w3 := trace.NewWriterV3(&v3buf)
	w4 := trace.NewWriter(&v4buf)
	// Exercise the asynchronous compression pipeline on the v4 writer; the
	// bytes are pinned identical to a synchronous write elsewhere.
	w4.Workers = 4
	// The default 256 KiB segment target already yields multi-segment files
	// at this scale, and the v3/v4 size headlines below are measured at the
	// defaults the standard reproduction uses.
	sorter := trace.NewSortBuffer(2*cfg.TickInterval, trace.Tee(w1, w2, w3, w4))
	if _, err := gamesim.Run(cfg, sorter, nil); err != nil {
		t.Fatal(err)
	}
	sorter.Flush()
	for _, w := range []*trace.Writer{w1, w2, w3, w4} {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	type variant struct {
		name     string
		raw      []byte
		parallel int
		version  int
	}
	variants := []variant{
		{"v1-serial", v1buf.Bytes(), 1, 1},
		{"v1-parallel", v1buf.Bytes(), 4, 1}, // silently serial: no index exists
		{"v2-serial", v2buf.Bytes(), 1, 2},
		{"v2-parallel", v2buf.Bytes(), 4, 2},
		{"v3-serial", v3buf.Bytes(), 1, 3},
		{"v3-parallel", v3buf.Bytes(), 4, 3}, // decode workers feed the shard groups directly
		{"v3-parallel-8", v3buf.Bytes(), 8, 3},
		{"v4-serial", v4buf.Bytes(), 1, 4},
		{"v4-parallel-2", v4buf.Bytes(), 2, 4},
		{"v4-parallel", v4buf.Bytes(), 4, 4}, // columns flow to the shard groups alongside records
		{"v4-parallel-8", v4buf.Bytes(), 8, 4},
	}
	var reference []byte
	for _, v := range variants {
		a, err := AnalyzeTrace(bytes.NewReader(v.raw), v.parallel)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if a.Version != v.version {
			t.Errorf("%s: Version = %d, want %d", v.name, a.Version, v.version)
		}
		if a.Warning != "" {
			t.Errorf("%s: unexpected warning %q", v.name, a.Warning)
		}
		if a.Records != w1.Count() {
			t.Errorf("%s: analyzed %d records, wrote %d", v.name, a.Records, w1.Count())
		}
		var rep bytes.Buffer
		if err := a.WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = rep.Bytes()
			continue
		}
		if !bytes.Equal(rep.Bytes(), reference) {
			t.Errorf("%s: report diverged from %s", v.name, variants[0].name)
		}
	}

	// The indexes must agree with what the writers say they wrote, and the
	// compressed encodings must deliver their headlines: v3 ≥ 25 % smaller
	// on disk than v2 for the same stream, and columnar v4 smaller still.
	for name, buf := range map[string]*bytes.Buffer{"v2": &v2buf, "v3": &v3buf, "v4": &v4buf} {
		ix, err := trace.ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Records != w2.Count() || len(ix.Segments) < 2 {
			t.Errorf("%s index: %d records in %d segments, writer wrote %d",
				name, ix.Records, len(ix.Segments), w2.Count())
		}
	}
	if ratio := float64(v3buf.Len()) / float64(v2buf.Len()); ratio > 0.75 {
		t.Errorf("v3 trace is %d bytes vs v2's %d (%.0f%%); want ≥ 25%% smaller",
			v3buf.Len(), v2buf.Len(), ratio*100)
	}
	if v4buf.Len() >= v3buf.Len() {
		t.Errorf("v4 trace is %d bytes vs v3's %d; field striping should compress better",
			v4buf.Len(), v3buf.Len())
	}
}
