// Package cstrace reproduces "Provisioning On-line Games: A Traffic
// Analysis of a Busy Counter-Strike Server" (Feng, Chang, Feng, Walpole;
// IMC 2002) as a library.
//
// The original study captured a week-long, 500-million-packet trace of a
// busy 22-slot Counter-Strike server and characterized it: highly
// predictable long-term rates pegged to the saturation of last-mile modem
// links, extreme 50 ms periodicity from the server's synchronous snapshot
// broadcast, tiny packets (40 B in / 130 B out application payload), and a
// NAT device experiment showing that small-packet bursts overwhelm routing
// gear rated far above the traffic's bit rate.
//
// That trace is long gone, so this package pairs a mechanism-level workload
// generator calibrated to the paper's published aggregates (internal/gamesim)
// with a streaming implementation of every analysis in the paper's
// evaluation (internal/analysis), a queueing model of the NAT experiment
// (internal/nat), and the route-caching exploration of §IV-B
// (internal/routecache). A real UDP game server and bots
// (internal/gameserver) exercise the same pipeline over the loopback.
//
// Quick start:
//
//	res, err := cstrace.Reproduce(cstrace.Quick(1))
//	if err != nil { ... }
//	res.WriteReport(os.Stdout)
//
// Reproduce(Full(seed)) regenerates every table and figure of the paper;
// see EXPERIMENTS.md for the paper-vs-measured record.
package cstrace

import (
	"fmt"
	"io"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/nat"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
)

// Config selects what to reproduce.
type Config struct {
	// Game is the workload model; gamesim.PaperConfig(seed) reproduces the
	// paper's server.
	Game gamesim.Config
	// Suite configures the analysis collectors; zero value = paper suite.
	Suite analysis.SuiteConfig
	// Extra, if non-nil, also receives every generated record (e.g. a
	// trace.Writer to persist the trace). Handlers that also implement
	// trace.BatchHandler receive whole per-tick blocks.
	Extra trace.Handler
	// Parallelism selects how many goroutines run the analysis
	// collectors. 0 or 1 is single-threaded; 2 or more shards the suite's
	// collector groups across workers (clamped to the number of groups);
	// AutoWorkers takes the suite's share from the process-wide worker
	// budget and self-tunes the shard assignment at run time (adaptive
	// sharding — serial on a one-core budget). Results are byte-identical
	// across all settings; on multi-core hardware sharding overlaps the
	// collector sweeps with generation.
	//
	// Generation-side parallelism is configured separately on
	// Game.Workers: the payload-size fill stage of the generator runs on
	// that many goroutines (AutoWorkers resolves it from the same
	// budget), again with byte-identical results. The two knobs compose —
	// a fully parallel reproduction sets both.
	Parallelism int
}

// AutoWorkers is the worker-count sentinel meaning "resolve from the
// process-wide worker budget" (internal/sched): concurrent stages split the
// machine once instead of each assuming it owns GOMAXPROCS. Valid for
// Config.Parallelism, gamesim.Config.Workers, trace.Writer.Workers,
// ScenarioConfig.Parallelism/GenWorkers and the AnalyzeTrace parallelism
// argument. Worker counts change speed, never results.
const AutoWorkers = sched.Auto

// Full returns the full-week reproduction configuration.
func Full(seed uint64) Config {
	g := gamesim.PaperConfig(seed)
	return Config{Game: g, Suite: analysis.DefaultSuiteConfig(g.Duration)}
}

// Quick returns a 30-minute configuration for examples and smoke tests:
// arrivals are boosted so the short window runs at the busy-server load the
// paper measured.
func Quick(seed uint64) Config {
	g := gamesim.PaperConfig(seed)
	g.Duration = 30 * time.Minute
	g.Warmup = 10 * time.Minute
	g.Outages = nil
	g.AttemptRate *= 5
	g.DiurnalAmp = 0
	return Config{Game: g, Suite: analysis.DefaultSuiteConfig(g.Duration)}
}

// Results bundles the reproduced tables and figure series.
type Results struct {
	Config Config
	Stats  gamesim.Stats
	Suite  *analysis.Suite

	TableI   analysis.TableI
	TableII  analysis.TableII
	TableIII analysis.TableIII
	Regions  analysis.RegionEstimates

	// GroupDepths holds the sharded suite's per-group channel-depth
	// statistics (nil for single-threaded runs) — the measurement that
	// names the next collector-group straggler.
	GroupDepths []analysis.GroupDepth
	// Rebalances holds the adaptive shard's unit migrations (AutoWorkers
	// runs only; nil otherwise).
	Rebalances []analysis.Rebalance
}

// Reproduce runs the workload through the full analysis suite.
func Reproduce(cfg Config) (*Results, error) {
	if cfg.Suite.Duration == 0 {
		cfg.Suite = analysis.DefaultSuiteConfig(cfg.Game.Duration)
	}
	// The generator emits a strictly time-ordered stream, so the suite's
	// order-sensitive collectors are fed directly — no sorting stage.
	cfg.Suite.SortedInput = true
	suite, err := analysis.NewSuite(cfg.Suite)
	if err != nil {
		return nil, err
	}
	sink, closeSink := suite.Sink(cfg.Parallelism)
	tee := sink
	if cfg.Extra != nil {
		tee = trace.Tee(sink, cfg.Extra)
	}
	st, err := gamesim.Run(cfg.Game, tee, suite.Observe)
	closeSink()
	if err != nil {
		return nil, err
	}

	res := &Results{
		Config:   cfg,
		Stats:    st,
		Suite:    suite,
		TableI:   analysis.TableIFromStats(st),
		TableII:  suite.Count.TableII(cfg.Game.Duration),
		TableIII: suite.Count.TableIII(),
		Regions: analysis.Regions(suite.VT.Points(), cfg.Suite.VarTimeBase,
			cfg.Game.TickInterval, cfg.Game.MapDuration+cfg.Game.MapChangePause),
	}
	if sh, ok := sink.(*analysis.ShardedSuite); ok {
		res.GroupDepths = sh.Depths()
		res.Rebalances = sh.Rebalances()
	}
	return res, nil
}

// PerSlotKbs returns the paper's headline figure: mean bandwidth divided by
// slot count (~40 kbs on the paper's server — modem saturation).
func (r *Results) PerSlotKbs() float64 {
	return analysis.PerSlotKbs(r.TableII, r.Config.Game.Slots)
}

// TraceAnalysis bundles the paper quantities recoverable from a persisted
// record stream. Control-plane numbers (Table I, session stats) come from
// the generator and are not part of it — persist-and-reanalyze covers the
// packet-derived tables and figures.
type TraceAnalysis struct {
	// Records is the number of records analyzed.
	Records int64
	// Version is the trace format version read (1 through 4).
	Version int
	// Warning is non-empty when the reader degraded — e.g. an indexed trace whose
	// index was truncated fell back to a serial scan.
	Warning string

	Suite    *analysis.Suite
	TableII  analysis.TableII
	TableIII analysis.TableIII
	Regions  analysis.RegionEstimates

	// GroupDepths holds the sharded suite's per-group channel-depth
	// statistics (nil for single-threaded runs).
	GroupDepths []analysis.GroupDepth
	// Rebalances holds the adaptive shard's unit migrations (AutoWorkers
	// runs only; nil otherwise).
	Rebalances []analysis.Rebalance
}

// AnalyzeTrace reads a persisted binary trace (format v1 through v4,
// detected from the header) and runs the record-stream analyses of the
// paper suite over it. parallelism ≥ 2 both shards the suite's collector
// groups across workers and, for an indexed (v2+) trace on a seekable
// source (*os.File, *bytes.Reader, …), decodes file segments — inflating
// compressed payloads — on parallel goroutines that deliver their decoded
// blocks straight into the sharded suite's per-group channels in file
// order (trace.Reader.ReadAllSharded), with no re-batching copy and no
// single dispatch goroutine in between. Columnar (v4) segments hand their
// decoded field columns to the suite alongside the records, so
// single-column collectors (size distributions, interarrivals) sweep a
// flat array instead of striding through interleaved records. The results
// are byte-identical across every parallelism setting and across v1-v4
// encodings of the same stream; degraded inputs (v1, non-seekable,
// damaged index) are analyzed by the serial scan and noted in
// TraceAnalysis.Warning.
func AnalyzeTrace(src io.Reader, parallelism int) (*TraceAnalysis, error) {
	// The binary format stores records in non-decreasing time order (the
	// Writer rejects anything else), so the suite skips its sorting stage.
	suite, err := analysis.NewSuite(analysis.SuiteConfig{SortedInput: true})
	if err != nil {
		return nil, err
	}
	rd := trace.NewReader(src)
	// The suite takes its budget share first (Sink resolves AutoWorkers);
	// the decode stage then claims the remainder — the two run
	// concurrently, so together they should cover the machine, not double
	// it.
	sink, closeSink := suite.Sink(parallelism)
	decodePar := parallelism
	if parallelism == sched.Auto {
		lease := sched.Default().Acquire(sched.Default().Total())
		decodePar = lease.Workers()
		defer lease.Release()
	}
	n, err := rd.ReadAllSharded(sink, decodePar)
	closeSink()
	if err != nil {
		return nil, err
	}
	a := &TraceAnalysis{
		Records:  n,
		Version:  rd.Version(),
		Warning:  rd.Warning(),
		Suite:    suite,
		TableII:  suite.Count.TableII(0),
		TableIII: suite.Count.TableIII(),
		Regions: analysis.Regions(suite.VT.Points(), 10*time.Millisecond,
			50*time.Millisecond, 30*time.Minute+48*time.Second),
	}
	if sh, ok := sink.(*analysis.ShardedSuite); ok {
		a.GroupDepths = sh.Depths()
		a.Rebalances = sh.Rebalances()
	}
	return a, nil
}

// WriteReport renders the trace-derived tables and figures.
func (a *TraceAnalysis) WriteReport(w io.Writer) error {
	return writeTraceAnalysis(w, a)
}

// AnalyzeTraceRange is AnalyzeTrace restricted to the records with
// from ≤ T < to. For an indexed (v2+) trace on a seekable source only the
// overlapping file segments are read and decoded (trace.Reader.ReadRange),
// so slicing an hour out of a week costs an hour's I/O — and on a columnar
// (v4) trace the closing boundary segment inflates only up to the cut. Collectors that bin
// by absolute time (minute series, interval windows) keep their absolute
// positions; Table II/III rates are computed over the observed span of the
// slice. parallelism shards the collector groups as in AnalyzeTrace.
func AnalyzeTraceRange(src io.Reader, parallelism int, from, to time.Duration) (*TraceAnalysis, error) {
	suite, err := analysis.NewSuite(analysis.SuiteConfig{SortedInput: true})
	if err != nil {
		return nil, err
	}
	rd := trace.NewReader(src)
	sink, closeSink := suite.Sink(parallelism)
	n, err := rd.ReadRange(from, to, sink)
	closeSink()
	if err != nil {
		return nil, err
	}
	// Rates over the slice: the observed span from the range start to the
	// last record seen (End), not the whole-trace duration.
	span := suite.Count.End - from
	a := &TraceAnalysis{
		Records:  n,
		Version:  rd.Version(),
		Warning:  rd.Warning(),
		Suite:    suite,
		TableII:  suite.Count.TableII(span),
		TableIII: suite.Count.TableIII(),
		Regions: analysis.Regions(suite.VT.Points(), 10*time.Millisecond,
			50*time.Millisecond, 30*time.Minute+48*time.Second),
	}
	if sh, ok := sink.(*analysis.ShardedSuite); ok {
		a.GroupDepths = sh.Depths()
		a.Rebalances = sh.Rebalances()
	}
	return a, nil
}

// ReproduceNAT runs the §IV-A NAT experiment (Table IV, Figs 14-15).
func ReproduceNAT(seed uint64) (nat.ExperimentResult, error) {
	return nat.RunExperiment(gamesim.NATExperimentConfig(seed), nat.DefaultConfig(seed))
}

// WriteReport renders every reproduced table and figure to w.
func (r *Results) WriteReport(w io.Writer) error {
	return writeReport(w, r)
}

// String summarizes the headline numbers.
func (r *Results) String() string {
	return fmt.Sprintf("cstrace: %d packets, %s mean bw, %.1f kbs/slot, H(sub-tick)=%.2f",
		r.TableII.TotalPackets, r.TableII.MeanBW, r.PerSlotKbs(), r.Regions.SubTick.H)
}
