// Command csload is a ctraffic-style load harness for the reference game
// server: it drives N bot connections at a target user-command rate against
// one or more csserver targets, prints a continuous monitor line, injects
// disturbances (server kill, client-path loss and jitter), and writes a
// machine-readable JSON summary.
//
//	csload -targets 127.0.0.1:27015 -bots 16 -rate 24 -for 30s
//	csload -master 127.0.0.1:27010 -bots 16            # discover via master
//	csload -spawn 2 -bots 8 -kill-after 5s -for 15s    # self-contained fail-over run
//	csload -spawn 1 -bots 8 -for 10s -trace /tmp/live -compare
//
// With -spawn the harness runs its own in-process servers (and master) on
// loopback — real UDP sockets driven by the same gameserver code as
// cmd/csserver — which is what makes -kill-after and -trace possible without
// external orchestration. -trace captures each spawned server's datagram
// exchange into a v4 trace file via the server's BatchTap; -compare then
// feeds the capture(s) to cstrace.AnalyzeTrace next to a matched in-process
// simulation, printing the simulated-vs-actual report that closes the loop
// between the repository's traffic model and the kernel's UDP stack.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/bits"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cstrace"
	"cstrace/internal/analysis"
	"cstrace/internal/discovery"
	"cstrace/internal/gamesim"
	"cstrace/internal/loadtest"
	"cstrace/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csload: ")

	var (
		targets   = flag.String("targets", "", "comma-separated csserver addresses to load")
		master    = flag.String("master", "", "master server address for discovery-driven connects")
		spawn     = flag.Int("spawn", 0, "spawn this many in-process loopback servers (self-contained mode)")
		bots      = flag.Int("bots", 8, "concurrent bot connections to hold open")
		rate      = flag.Float64("rate", 24, "user commands per second per bot")
		runFor    = flag.Duration("for", 30*time.Second, "run duration (0 = until interrupt)")
		connRate  = flag.Float64("connrate", 0, "connection attempts per second (0 = unlimited)")
		connBurst = flag.Int("connburst", 1, "connection attempt burst size")
		monitor   = flag.Duration("monitor", time.Second, "monitor line interval")
		statsOut  = flag.String("stats", "", "write the JSON run summary to this file")
		seed      = flag.Uint64("seed", 1, "seed for bot movement and injection randomness")

		drop      = flag.Float64("drop", 0, "probability a user command is dropped before send")
		jitter    = flag.Duration("jitter", 0, "stddev of the half-normal delay added to each send")
		killAfter = flag.Duration("kill-after", 0, "kill one spawned server this long into the run")
		killIdx   = flag.Int("kill", 0, "index of the spawned server to kill")

		slots     = flag.Int("slots", 22, "player capacity of each spawned server")
		tick      = flag.Duration("tick", 50*time.Millisecond, "snapshot interval of spawned servers")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "spawned servers' master heartbeat")
		tracePfx  = flag.String("trace", "", "capture each spawned server's traffic to <prefix>-<i>.trace")
		compare   = flag.Bool("compare", false, "after the run, analyze the capture(s) against a matched simulation")
	)
	flag.Parse()

	if *spawn <= 0 && *targets == "" && *master == "" {
		log.Fatal("nothing to load: give -targets, -master, or -spawn")
	}
	if *killAfter > 0 && *spawn <= 0 {
		log.Fatal("-kill-after needs -spawn: external servers expose no kill hook")
	}
	if (*tracePfx != "" || *compare) && *spawn <= 0 {
		log.Fatal("-trace/-compare need -spawn: capture taps an in-process server")
	}
	if *compare && *tracePfx == "" {
		log.Fatal("-compare needs -trace: there is no capture to analyze")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := loadtest.Config{
		Master:    *master,
		Bots:      *bots,
		CmdRate:   *rate,
		Duration:  *runFor,
		ConnRate:  *connRate,
		ConnBurst: *connBurst,
		Monitor:   *monitor,
		Logf:      log.Printf,
		Drop:      *drop,
		Jitter:    *jitter,
		KillAfter: *killAfter,
		KillIndex: *killIdx,
		Seed:      *seed,
	}
	for _, a := range splitComma(*targets) {
		cfg.Targets = append(cfg.Targets, loadtest.Target{Addr: a})
	}

	// Self-contained mode: in-process master + servers on loopback.
	var spawned []*loadtest.Spawned
	var traceFiles []string
	var traceFlush []func() error
	if *spawn > 0 {
		masterAddr := *master
		if masterAddr == "" {
			ttl := 6 * *heartbeat
			if ttl < 2*time.Second {
				ttl = 2 * time.Second
			}
			m, err := discovery.ListenMaster(discovery.MasterConfig{Addr: "127.0.0.1:0", TTL: ttl})
			if err != nil {
				log.Fatalf("master: %v", err)
			}
			defer m.Close()
			masterAddr = m.Addr().String()
			cfg.Master = masterAddr
			log.Printf("master on %s (ttl %v)", masterAddr, ttl)
		}
		for i := 0; i < *spawn; i++ {
			scfg := loadtest.SpawnConfig{
				Slots:     *slots,
				Tick:      *tick,
				Name:      fmt.Sprintf("csload-%d", i),
				Master:    masterAddr,
				Heartbeat: *heartbeat,
			}
			if *tracePfx != "" {
				name := fmt.Sprintf("%s-%d.trace", *tracePfx, i)
				f, err := os.Create(name)
				if err != nil {
					log.Fatalf("trace: %v", err)
				}
				// The capture gets the *os.File itself so its per-segment
				// fsync is real durability: a crashed run leaves salvageable
				// traces, not a full 1 MB buffer of lost records.
				scfg.TraceOut = f
				traceFiles = append(traceFiles, name)
				traceFlush = append(traceFlush, f.Close)
			}
			s, err := loadtest.Spawn(scfg)
			if err != nil {
				log.Fatalf("spawn %d: %v", i, err)
			}
			log.Printf("server %d on %s", i, s.Addr())
			spawned = append(spawned, s)
			cfg.Targets = append(cfg.Targets, s.Target())
		}
	}

	start := time.Now()
	st, err := loadtest.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	// Shut the spawned servers down (sealing their captures) and close the
	// capture files before any analysis touches them. The killed server is
	// already stopped; Shutdown is idempotent. A capture that failed to
	// seal is a failed run — the measurement is the product — so it exits
	// nonzero after the teardown completes, with the latched cause logged.
	captureFailed := false
	for i, s := range spawned {
		if err := s.Shutdown(); err != nil {
			log.Printf("shutdown %d: capture failed to seal: %v (salvage with cstrace -mode salvage)", i, err)
			captureFailed = true
		}
	}
	for _, fl := range traceFlush {
		if err := fl(); err != nil {
			log.Printf("trace close: %v", err)
			captureFailed = true
		}
	}
	defer func() {
		if captureFailed {
			os.Exit(1)
		}
	}()

	log.Printf("done in %v: %s", time.Since(start).Round(time.Millisecond), st.Final.MonitorLine())
	if st.Kill != nil {
		if st.Kill.RecoveredAt > 0 {
			log.Printf("kill %s at %v, fleet recovered at %v (window %v)",
				st.Kill.Target, st.Kill.At.Round(time.Millisecond),
				st.Kill.RecoveredAt.Round(time.Millisecond),
				(st.Kill.RecoveredAt - st.Kill.At).Round(time.Millisecond))
		} else {
			log.Printf("kill %s at %v, fleet did not fully recover before the end",
				st.Kill.Target, st.Kill.At.Round(time.Millisecond))
		}
	}

	if *statsOut != "" {
		buf, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		if err := os.WriteFile(*statsOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("stats: %v", err)
		}
		log.Printf("stats written to %s", *statsOut)
	}

	if *compare {
		if err := compareRun(os.Stdout, st, traceFiles, *tick, *slots, *seed); err != nil {
			log.Fatalf("compare: %v", err)
		}
	}
}

func splitComma(s string) []string {
	var out []string
	for _, f := range bytes.Split([]byte(s), []byte(",")) {
		if t := bytes.TrimSpace(f); len(t) > 0 {
			out = append(out, string(t))
		}
	}
	return out
}

// compareRun analyzes the captured trace(s) and a simulation matched to the
// run's shape (same slots, tick, command rate, a stable full house) and
// prints the side-by-side report.
func compareRun(w io.Writer, st *loadtest.Stats, files []string, tick time.Duration, slots int, seed uint64) error {
	actual, err := analyzeCaptures(files)
	if err != nil {
		return err
	}
	sim, err := matchedSim(st, tick, slots, seed)
	if err != nil {
		return err
	}
	writeComparison(w, sim, actual, tick)
	return nil
}

// capturesAnalysis aggregates the analyses of every per-server capture:
// counters and size histograms merge exactly; interarrival quantiles come
// from the busiest capture (interarrival state is not mergeable across
// independent sockets, and the busiest server is the representative one).
type capturesAnalysis struct {
	Records    int64
	PacketsIn  int64
	PacketsOut int64
	BytesIn    int64
	BytesOut   int64
	SizeIn     *analysis.SizeDist
	SizeOut    *analysis.SizeDist // same object; split kept for clarity
	busiest    *cstrace.TraceAnalysis
}

func analyzeCaptures(files []string) (*capturesAnalysis, error) {
	agg := &capturesAnalysis{}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		a, err := cstrace.AnalyzeTrace(f, runtime.NumCPU())
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		agg.Records += a.Records
		agg.PacketsIn += a.Suite.Count.PacketsIn
		agg.PacketsOut += a.Suite.Count.PacketsOut
		agg.BytesIn += a.Suite.Count.AppBytesIn
		agg.BytesOut += a.Suite.Count.AppBytesOut
		if agg.SizeIn == nil {
			agg.SizeIn = a.Suite.Sizes
		} else {
			agg.SizeIn.In.Merge(a.Suite.Sizes.In)
			agg.SizeIn.Out.Merge(a.Suite.Sizes.Out)
		}
		if agg.busiest == nil || a.Records > agg.busiest.Records {
			agg.busiest = a
		}
	}
	if agg.busiest == nil {
		return nil, fmt.Errorf("no captures analyzed")
	}
	agg.SizeOut = agg.SizeIn
	return agg, nil
}

// matchedSim runs the repository's traffic model with the harness's shape —
// a full house of ordinary clients at the run's command rate and tick, no
// diurnal cycle, no downloads, no outages — and analyzes it through the same
// trace pipeline the capture went through.
func matchedSim(st *loadtest.Stats, tick time.Duration, slots int, seed uint64) (*cstrace.TraceAnalysis, error) {
	cfg := gamesim.PaperConfig(seed)
	cfg.Duration = st.Duration.Truncate(tick)
	if cfg.Duration < tick {
		cfg.Duration = tick
	}
	cfg.Warmup = 0
	cfg.Slots = slots
	cfg.TickInterval = tick
	cfg.CmdRate = st.CmdRate
	// Saturate admission instantly and keep everyone seated: the harness
	// holds a fixed fleet, so the sim should too.
	cfg.AttemptRate = float64(st.Bots) * 10
	cfg.SessionMean = cfg.Duration.Seconds() * 100
	cfg.MinSession = cfg.SessionMean
	cfg.DiurnalAmp = 0
	cfg.SpikeMult = 0
	cfg.TouristFrac = 0
	cfg.EliteFrac = 0
	cfg.LogoDownloadProb = 0
	cfg.LogoUploadProb = 0
	cfg.Outages = nil
	cfg.MapDuration = cfg.Duration + time.Hour
	if st.Bots < slots {
		// The harness fleet may be smaller than the server: cap the sim's
		// population so occupancy matches.
		cfg.Slots = st.Bots
	}

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	if _, err := gamesim.Run(cfg, tw, nil); err != nil {
		return nil, err
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return cstrace.AnalyzeTrace(bytes.NewReader(buf.Bytes()), runtime.NumCPU())
}

// tickBucketMass returns the fraction of direction-d interarrivals in the
// log₂ bucket containing the tick interval: bucket b of the Interarrival
// histogram covers gaps in [2^(b-1), 2^b) µs, so the tick's bucket index is
// bits.Len of its microsecond count.
func tickBucketMass(a *cstrace.TraceAnalysis, d trace.Direction, tick time.Duration) float64 {
	_, counts := a.Suite.Gaps.Histogram(d)
	idx := bits.Len64(uint64(tick.Microseconds()))
	if idx >= len(counts) {
		idx = len(counts) - 1
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(counts[idx]) / float64(total)
}

func writeComparison(w io.Writer, sim *cstrace.TraceAnalysis, act *capturesAnalysis, tick time.Duration) {
	b := act.busiest
	fmt.Fprintf(w, "\nsimulated vs actual (matched gamesim vs live capture)\n")
	fmt.Fprintf(w, "%-34s %14s %14s\n", "metric", "simulated", "actual")
	row := func(name string, sv, av any) {
		fmt.Fprintf(w, "%-34s %14v %14v\n", name, sv, av)
	}
	row("records", sim.Records, act.Records)
	row("packets in (client→server)", sim.Suite.Count.PacketsIn, act.PacketsIn)
	row("packets out (server→client)", sim.Suite.Count.PacketsOut, act.PacketsOut)
	row("app bytes in", sim.Suite.Count.AppBytesIn, act.BytesIn)
	row("app bytes out", sim.Suite.Count.AppBytesOut, act.BytesOut)
	row("mean in payload (B)",
		fmt.Sprintf("%.1f", sim.Suite.Sizes.In.Mean()),
		fmt.Sprintf("%.1f", act.SizeIn.In.Mean()))
	row("mean out payload (B)",
		fmt.Sprintf("%.1f", sim.Suite.Sizes.Out.Mean()),
		fmt.Sprintf("%.1f", act.SizeOut.Out.Mean()))
	row("out interarrival p50",
		sim.Suite.Gaps.Quantile(trace.Out, 0.5),
		b.Suite.Gaps.Quantile(trace.Out, 0.5))
	row("in interarrival p50",
		sim.Suite.Gaps.Quantile(trace.In, 0.5),
		b.Suite.Gaps.Quantile(trace.In, 0.5))
	row(fmt.Sprintf("out mass in %v log2 bucket", tick),
		fmt.Sprintf("%.3f", tickBucketMass(sim, trace.Out, tick)),
		fmt.Sprintf("%.3f", tickBucketMass(b, trace.Out, tick)))
	fmt.Fprintf(w, "(interarrival rows use the busiest capture; counters and sizes aggregate all captures)\n")
}
