// Command csbot connects bot clients to a csserver instance and plays:
// each bot streams user commands at the configured rate and consumes the
// 50 ms snapshot broadcast, recreating the client side of the traced
// traffic.
//
//	csbot -addr 127.0.0.1:27015 -n 8 -rate 24 -for 30s
//	csbot -browse 127.0.0.1:27010 -n 8          # auto-discover via a master
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cstrace/internal/gameserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csbot: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:27015", "server address")
		browse  = flag.String("browse", "", "master server address: discover and join the best server")
		n       = flag.Int("n", 8, "number of bots")
		rate    = flag.Float64("rate", 24, "user commands per second per bot")
		runFor  = flag.Duration("for", 30*time.Second, "how long to play (0 = until interrupt)")
		namePfx = flag.String("name", "bot", "player name prefix")
		drop    = flag.Float64("drop", 0, "probability a user command is dropped before send")
		jitter  = flag.Duration("jitter", 0, "stddev of the half-normal delay added to each send")
	)
	flag.Parse()

	if *browse != "" {
		lines, err := gameserver.Browse(*browse, 2*time.Second)
		if err != nil {
			log.Fatalf("browse: %v", err)
		}
		if len(lines) == 0 {
			log.Fatal("browse: no servers registered")
		}
		best := lines[0]
		log.Printf("auto-discovered %q at %s (%d/%d on %s, rtt %v)",
			best.Info.ServerName, best.Addr, best.Info.Players,
			best.Info.MaxPlayers, best.Info.Map, best.RTT.Round(time.Microsecond))
		*addr = best.Addr.String()
	}

	// SIGTERM matters as much as ^C here: process managers and CI send it,
	// and a bot torn down without the context cancel never sends its
	// Disconnect, leaving a slot to rot until the server's idle timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	var wg sync.WaitGroup
	bots := make([]*gameserver.Bot, 0, *n)
	for i := 0; i < *n; i++ {
		cfg := gameserver.BotConfig{
			ServerAddr:     *addr,
			Name:           fmt.Sprintf("%s%02d", *namePfx, i),
			CmdRate:        *rate,
			ConnectTimeout: 3 * time.Second,
			Seed:           uint64(i + 1),
			Drop:           *drop,
			Jitter:         *jitter,
		}
		b, err := gameserver.Dial(cfg)
		if err != nil {
			log.Printf("bot %d: %v", i, err)
			continue
		}
		log.Printf("bot %d connected as player %d on %s", i, b.PlayerID(), b.MapName())
		bots = append(bots, b)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.Run(ctx)
		}()
	}
	if len(bots) == 0 {
		log.Fatal("no bots connected")
	}
	<-ctx.Done()
	wg.Wait()

	for i, b := range bots {
		st := b.Stats()
		log.Printf("bot %d: sent %d cmds (%d B), dropped %d, received %d snapshots (%d B), last tick %d",
			i, st.CmdsSent, st.BytesSent, st.CmdsDropped, st.SnapshotsRecv, st.BytesRecv, st.LastTick)
	}
}
