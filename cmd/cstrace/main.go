// Command cstrace is the reproduction harness: it regenerates the paper's
// tables and figures from the calibrated workload model.
//
// Modes:
//
//	cstrace -mode week  -seed 1            full-week reproduction (Tables I-III, Figs 1-13)
//	cstrace -mode quick -seed 1            30-minute smoke reproduction
//	cstrace -mode nat   -seed 1            NAT experiment (Table IV, Figs 14-15)
//	cstrace -mode gen   -out trace.cst     generate a binary trace file (v4 columnar compressed;
//	                                       -format 3|2|1 for the older versions, -compress to
//	                                       tune/disable flate)
//	cstrace -mode analyze -in trace.cst    analyze a trace (-parallel N: segment decode + sharded suite)
//	cstrace -mode index -in trace.cst      inspect a trace's segment index without decoding it
//	cstrace -mode salvage -in torn.cst     recover a crashed capture: scan and validate the
//	                                       segment frames, report the intact prefix, and
//	                                       (-out fixed.cst) rewrite it as a sealed v4 trace
//	cstrace -mode pcap  -out trace.pcap    export a (short) trace as pcap or pcapng
//	cstrace -mode web   -seed 1            web/TCP baseline through the NAT device
//	cstrace -mode aggregate -seed 1        population self-similarity study
//	cstrace -mode provision                capacity planning from the paper's budget
//	cstrace -mode scenario -servers 8      multi-server fleet: merged aggregate analysis
//	                                       (-out fleet.cst persists the merged trace as v4;
//	                                       -store metrics.csms records the run)
//	cstrace -mode ingest -store m.csms a.cst b.cst
//	                                       analyze trace files into the metrics store
//	                                       (content-addressed: re-ingest is a no-op)
//	cstrace -mode list  -store m.csms      list stored runs (-json for machines)
//	cstrace -mode show  -store m.csms -run 1a2b3c
//	                                       print one run's full metrics
//	cstrace -mode trend -store m.csms -metric p95kbs -last 20
//	                                       metric trajectory across stored runs
//	                                       (-metric help lists the registry)
//	cstrace -mode serve -store m.csms -spool dir/
//	                                       continuous-analysis daemon: watch a spool
//	                                       directory, ingest new traces, record rolling
//	                                       windows and a service summary
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"cstrace"
	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/metricstore"
	"cstrace/internal/nat"
	"cstrace/internal/population"
	"cstrace/internal/provision"
	"cstrace/internal/report"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
	"cstrace/internal/webtraffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cstrace: ")

	var (
		mode        = flag.String("mode", "quick", "week | quick | nat | gen | analyze | index | salvage | pcap | web | aggregate | provision | scenario | ingest | list | show | trend | serve")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		duration    = flag.Duration("duration", 0, "override trace duration (gen/quick/pcap/web/scenario)")
		inFile      = flag.String("in", "", "input trace file (analyze/index)")
		outFile     = flag.String("out", "", "output file (gen/pcap/scenario; .pcapng selects pcapng)")
		format      = flag.Int("format", 4, "trace format version to write (gen): 4 = columnar compressed, 3 = compressed+indexed, 2 = indexed, 1 = legacy")
		compress    = flag.Int("compress", 0, "v3/v4 segment compression (gen): 0 = default flate level, 1-9 = explicit level, -1 = store uncompressed")
		players     = flag.Int("players", 100000, "target concurrent players (provision)")
		parallelStr = flag.String("parallel", "auto", "analysis worker goroutines (week/quick/analyze/scenario; 1 = single-threaded, \"auto\" = self-tuned from the worker budget)")
		genStr      = flag.String("genworkers", "auto", "generator fill-stage goroutines (week/quick/gen/scenario; 1 = serial, \"auto\" = split the worker budget; results identical)")
		servers     = flag.Int("servers", 8, "fleet size (scenario)")
		stagger     = flag.Duration("stagger", 0, "per-server launch stagger (scenario)")
		spike       = flag.Float64("spike", 6, "launch-day arrival surge multiplier (scenario; <=1 disables)")
		perServer   = flag.Bool("perserver", false, "print the per-server breakdown with full per-box suites (scenario)")
		perSlim     = flag.Bool("perslim", false, "like -perserver but with the slim per-box collector set (counters + minute series); scales to hundreds of servers")
		depths      = flag.Bool("depths", false, "print collector-group channel-depth stats (and any adaptive rebalances) after a sharded run (week/quick/analyze/scenario)")
		from        = flag.Duration("from", 0, "analyze only records at or after this offset (analyze)")
		to          = flag.Duration("to", 0, "analyze only records before this offset (analyze; 0 = end of trace)")
		storePath   = flag.String("store", "", "metrics store file (ingest/list/show/trend/serve; scenario: also record the run)")
		runID       = flag.String("run", "", "run ID or content-hash prefix (show)")
		metric      = flag.String("metric", "meankbs", "trend metric; \"help\" lists the registry (trend)")
		last        = flag.Int("last", 20, "keep the last N runs (trend; <=0 keeps all)")
		kinds       = flag.String("kinds", "", "comma-separated run-kind filter, e.g. scenario (trend)")
		label       = flag.String("label", "", "operator tag recorded on new runs (ingest/serve/scenario)")
		spool       = flag.String("spool", "", "directory watched for .cst traces (serve)")
		cadence     = flag.Duration("cadence", 2*time.Second, "spool poll cadence (serve)")
		window      = flag.Duration("window", time.Minute, "rolling trace-time window width (serve)")
		forDur      = flag.Duration("for", 0, "stop serving after this long (serve; 0 = until SIGINT/SIGTERM)")
		jsonOut     = flag.Bool("json", false, "machine-readable output (list/show/trend)")
	)
	flag.Parse()

	parallel, err := sched.ParseWorkers(*parallelStr)
	if err != nil {
		log.Fatalf("-parallel: %v", err)
	}
	genWorkers, err := sched.ParseWorkers(*genStr)
	if err != nil {
		log.Fatalf("-genworkers: %v", err)
	}

	start := time.Now()
	switch *mode {
	case "week":
		err = runReproduce(cstrace.Full(*seed), *duration, parallel, genWorkers, *depths)
	case "quick":
		err = runReproduce(cstrace.Quick(*seed), *duration, parallel, genWorkers, *depths)
	case "nat":
		err = runNAT(*seed)
	case "gen":
		err = runGen(*seed, *duration, *outFile, *format, *compress, genWorkers)
	case "analyze":
		err = runAnalyze(*inFile, parallel, *from, *to, *depths)
	case "index":
		err = runIndex(*inFile)
	case "salvage":
		err = runSalvage(*inFile, *outFile, parallel)
	case "pcap":
		err = runPcap(*seed, *duration, *outFile)
	case "web":
		err = runWeb(*seed, *duration)
	case "aggregate":
		err = runAggregate(*seed)
	case "provision":
		err = runProvision(*players)
	case "scenario":
		perMode := cstrace.PerServerNone
		if *perSlim {
			perMode = cstrace.PerServerSlim
		} else if *perServer {
			perMode = cstrace.PerServerFull
		}
		err = runScenario(*seed, *servers, *duration, *stagger, *spike, parallel, genWorkers, perMode, *outFile, *depths, *storePath, *label)
	case "ingest":
		files := flag.Args()
		if *inFile != "" {
			files = append([]string{*inFile}, files...)
		}
		err = runIngest(*storePath, *label, parallel, files)
	case "list":
		err = runList(*storePath, *jsonOut)
	case "show":
		err = runShow(*storePath, *runID, *jsonOut)
	case "trend":
		err = runTrend(*storePath, *metric, *last, *kinds, *jsonOut)
	case "serve":
		err = runServe(*storePath, *spool, *label, *cadence, *window, *forDur, parallel)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cstrace: %s mode finished in %v\n", *mode, time.Since(start).Round(time.Millisecond))
}

func runReproduce(cfg cstrace.Config, override time.Duration, parallel, genWorkers int, depths bool) error {
	if override > 0 {
		cfg.Game.Duration = override
		cfg.Suite = analysis.DefaultSuiteConfig(override)
	}
	cfg.Parallelism = parallel
	cfg.Game.Workers = genWorkers
	res, err := cstrace.Reproduce(cfg)
	if err != nil {
		return err
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("Per-slot bandwidth: %.1f kbs across %d slots (paper: ~40 kbs)\n",
		res.PerSlotKbs(), cfg.Game.Slots)
	if depths {
		fprintDepths(os.Stdout, res.GroupDepths, res.Rebalances)
	}
	return nil
}

// fprintDepths renders sharded collector-group depth statistics — the
// group whose mean rides the channel bound is the pipeline's straggler —
// followed by the adaptive shard's rebalance history when there is one.
func fprintDepths(w io.Writer, ds []analysis.GroupDepth, rebs []analysis.Rebalance) {
	if len(ds) == 0 {
		fmt.Fprintln(os.Stderr, "cstrace: no group depths (single-threaded run)")
		return
	}
	fmt.Fprintf(w, "Collector group depths (channel bound %d)\n", analysis.ShardChanDepth)
	fmt.Fprintf(w, "  %-16s %10s %10s %6s\n", "group", "blocks", "mean", "max")
	for _, d := range ds {
		fmt.Fprintf(w, "  %-16s %10d %10.2f %6d\n", d.Name, d.Blocks, d.MeanDepth(), d.MaxDepth)
	}
	for _, r := range rebs {
		fmt.Fprintf(w, "  rebalance @block %d: %s moved %d -> %d\n", r.Block, r.Unit, r.From, r.To)
	}
}

func runNAT(seed uint64) error {
	res, err := cstrace.ReproduceNAT(seed)
	if err != nil {
		return err
	}
	report.TableIV(os.Stdout, res.Counts)
	report.Series(os.Stdout, "Figure 14a: packet load clients->NAT (pps)", res.ClientsToNAT, 72, 7)
	report.Series(os.Stdout, "Figure 14b: packet load NAT->server (pps)", res.NATToServer, 72, 7)
	report.Series(os.Stdout, "Figure 15a: packet load server->NAT (pps)", res.ServerToNAT, 72, 7)
	report.Series(os.Stdout, "Figure 15b: packet load NAT->clients (pps)", res.NATToClients, 72, 7)
	fmt.Printf("Forwarding delay: in mean %.1f ms / max %.1f ms, out mean %.1f ms / max %.1f ms\n",
		res.MeanDelayIn*1e3, res.MaxDelayIn*1e3, res.MeanDelayOut*1e3, res.MaxDelayOut*1e3)
	return nil
}

func runGen(seed uint64, d time.Duration, out string, format, compress, genWorkers int) error {
	if out == "" {
		return fmt.Errorf("gen: -out required")
	}
	if d == 0 {
		d = time.Hour
	}
	if format < 1 || format > 4 {
		// Validate before os.Create truncates an existing trace.
		return fmt.Errorf("gen: unknown -format %d (want 1, 2, 3 or 4)", format)
	}
	if compress < -1 || compress > 9 {
		return fmt.Errorf("gen: invalid -compress %d (want -1, 0 or 1-9)", compress)
	}
	if compress != 0 && format < 3 {
		return fmt.Errorf("gen: -compress needs -format 3 or 4 (v1/v2 have no compression)")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	cfg := gamesim.PaperConfig(seed)
	cfg.Duration = d
	cfg.Outages = nil
	cfg.Workers = genWorkers
	w := trace.NewWriter(f)
	switch format {
	case 1:
		w = trace.NewWriterV1(f)
	case 2:
		w = trace.NewWriterV2(f)
	case 3:
		w = trace.NewWriterV3(f)
	}
	w.CompressLevel = compress
	// Deflate sealed segments on a worker pool so compression stays off
	// the generator's write path; the bytes are identical either way.
	w.Workers = genWorkers
	// The generator emits a strictly time-ordered stream — exactly what
	// the Writer requires — so records encode as they are produced.
	st, err := gamesim.Run(cfg, w, nil)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	log.Printf("wrote %d records (%d in / %d out) to %s (format v%d)",
		w.Count(), st.PacketsIn, st.PacketsOut, out, w.Version())
	return nil
}

func runAnalyze(in string, parallel int, from, to time.Duration, depths bool) error {
	if in == "" {
		return fmt.Errorf("analyze: -in required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()

	// Duration is discovered from the stream, so a single pass with the
	// default week-scale suite is correct: collectors size themselves from
	// record timestamps. With -parallel N the trace's indexed segments
	// decode on worker goroutines and the suite's collector groups shard
	// across another set; results are byte-identical at every setting.
	var a *cstrace.TraceAnalysis
	if from > 0 || to > 0 {
		// Time slice: binary-search the segment index, decode only the
		// overlapping segments.
		if to == 0 {
			to = 1<<63 - 1
		}
		a, err = cstrace.AnalyzeTraceRange(f, parallel, from, to)
	} else {
		a, err = cstrace.AnalyzeTrace(f, parallel)
	}
	if err != nil {
		return err
	}
	if a.Warning != "" {
		log.Printf("warning: %s", a.Warning)
	}
	if err := a.WriteReport(os.Stdout); err != nil {
		return err
	}
	if depths {
		fprintDepths(os.Stdout, a.GroupDepths, a.Rebalances)
	}
	log.Printf("analyzed %d records (format v%d)", a.Records, a.Version)
	return nil
}

func runIndex(in string) error {
	if in == "" {
		return fmt.Errorf("index: -in required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}

	// The content hash is the trace's identity in the metrics store: print
	// it here so an operator can match a file on disk against a stored run
	// (`-mode show -run <first 12 digits>`) without ingesting anything.
	hash, _, err := metricstore.HashFile(in)
	if err != nil {
		return err
	}

	ix, err := trace.ReadIndex(f, st.Size())
	if errors.Is(err, trace.ErrNoIndex) {
		// v1: no index to print; count the records the only way possible.
		n, serr := trace.NewReader(f).ReadAllPrefetch(trace.HandlerFunc(func(trace.Record) {}))
		if serr != nil {
			return serr
		}
		fmt.Printf("%s: format v1, no segment index (%d records by serial scan, %d bytes)\n",
			in, n, st.Size())
		fmt.Printf("content sha256 %s (run id %s)\n", hash, hash[:metricstore.IDLen])
		return nil
	}
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}

	segs := ix.Segments
	fmt.Printf("%s: format v%d, %d records, %d segments, %d bytes (payload %d)\n",
		in, ix.Version, ix.Records, len(segs), st.Size(), ix.PayloadBytes())
	fmt.Printf("content sha256 %s (run id %s)\n", hash, hash[:metricstore.IDLen])
	if comp := ix.CompressedSegments(); comp > 0 {
		// On-disk vs decompressed payload: the per-record figures are the
		// numbers the provisioning storage budget rides on.
		fmt.Printf("compression: %d/%d segments flate, %d raw payload bytes -> %d on disk (%.1f%%), %.2f B/record on disk\n",
			comp, len(segs), ix.RawBytes(), ix.PayloadBytes(),
			100*float64(ix.PayloadBytes())/float64(ix.RawBytes()),
			float64(st.Size())/float64(ix.Records))
	}
	if cs, err := trace.ReadColumnStats(f, ix); err != nil {
		return fmt.Errorf("index: column stats: %w", err)
	} else if cs.Segments > 0 {
		// Per-column compression, read from the payload headers alone: which
		// field stripe the on-disk bytes actually go to.
		fmt.Printf("columns (%d columnar segments, %d compressed):", cs.Segments, cs.Compressed)
		for c, name := range cs.ColumnNames() {
			fmt.Printf(" %s %d->%d (%.1f%%)", name, cs.Raw[c], cs.Stored[c],
				100*float64(cs.Stored[c])/float64(cs.Raw[c]))
		}
		fmt.Println()
	}
	if len(segs) == 0 {
		return nil
	}
	fmt.Printf("time span %v .. %v; mean %.0f records/segment\n\n",
		segs[0].MinT, segs[len(segs)-1].MaxT, float64(ix.Records)/float64(len(segs)))
	fmt.Printf("  %4s %12s %10s %10s %9s %5s %14s %14s\n", "seg", "offset", "payload", "raw", "records", "enc", "minT", "maxT")
	const head, tail = 24, 4
	for i, si := range segs {
		if len(segs) > head+tail && i == head {
			fmt.Printf("  %4s\n", "...")
		}
		if len(segs) > head+tail && i >= head && i < len(segs)-tail {
			continue
		}
		enc := "raw"
		if si.Compressed() {
			enc = "flate"
		}
		fmt.Printf("  %4d %12d %10d %10d %9d %5s %14s %14s\n",
			i, si.Offset, si.PayloadLen, si.RawLen, si.Count, enc,
			si.MinT.Round(time.Millisecond), si.MaxT.Round(time.Millisecond))
	}
	return nil
}

// runSalvage recovers a damaged capture: it scans the segment frames,
// reports the intact prefix (always), and with -out rewrites the salvaged
// records as a fresh, sealed v4 trace that every other mode reads normally.
func runSalvage(in, out string, parallel int) error {
	if in == "" {
		return fmt.Errorf("salvage: -in required")
	}
	if parallel < 1 {
		parallel = sched.Default().Total()
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}

	ix, rep, err := trace.Recover(f, st.Size())
	if errors.Is(err, trace.ErrNoIndex) {
		// v1 has no segment frames to scan; the serial reader's records-
		// before-error delivery is the whole salvage story.
		return salvageV1(f, in, out)
	}
	if err != nil {
		return fmt.Errorf("salvage: %s: %w", in, err)
	}
	log.Printf("%s: %s", in, rep)
	if out == "" {
		return nil
	}

	g, err := os.Create(out)
	if err != nil {
		return err
	}
	defer g.Close()
	w := trace.NewWriter(g)
	if _, err := trace.DecodeIndex(f, ix, w, parallel); err != nil {
		return fmt.Errorf("salvage: decoding the intact prefix: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("salvage: sealing %s: %w", out, err)
	}
	if err := g.Close(); err != nil {
		return err
	}
	log.Printf("wrote %d salvaged records to %s (format v%d, sealed)", w.Count(), out, w.Version())
	return nil
}

// salvageV1 recovers an unsegmented v1 stream: scan serially, keep the
// records before the first error.
func salvageV1(f *os.File, in, out string) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var w *trace.Writer
	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			return err
		}
		defer g.Close()
		w = trace.NewWriter(g)
	}
	n, serr := trace.NewReader(f).ReadAllPrefetch(trace.HandlerFunc(func(r trace.Record) {
		if w != nil {
			_ = w.Write(r) // a write failure latches; Flush reports it
		}
	}))
	if serr != nil {
		log.Printf("%s: v1 trace: %d records intact before the damage (%v)", in, n, serr)
	} else {
		log.Printf("%s: v1 trace: all %d records intact; nothing to salvage", in, n)
	}
	if w == nil {
		return nil
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("salvage: sealing %s: %w", out, err)
	}
	log.Printf("wrote %d salvaged records to %s (format v%d, sealed)", w.Count(), out, w.Version())
	return nil
}

func runPcap(seed uint64, d time.Duration, out string) error {
	if out == "" {
		return fmt.Errorf("pcap: -out required")
	}
	if d == 0 {
		d = time.Minute
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	cfg := gamesim.PaperConfig(seed)
	cfg.Duration = d
	cfg.Outages = nil
	start := time.Date(2002, 4, 11, 8, 55, 4, 0, time.UTC)
	pw := trace.NewPCAPWriter(f, start)
	if strings.HasSuffix(out, ".pcapng") {
		pw = trace.NewPCAPNGWriter(f, start)
	}
	// The generator's stream is strictly time-ordered, so packets write
	// in emission order.
	var n int64
	var writeErr error
	if _, err := gamesim.Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		if writeErr == nil {
			writeErr = pw.Write(r)
			n++
		}
	}), nil); err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	log.Printf("wrote %d packets to %s", n, out)
	return nil
}

func runWeb(seed uint64, d time.Duration) error {
	cfg := webtraffic.DefaultConfig(seed)
	if d > 0 {
		cfg.Duration = d
	}
	res, err := webtraffic.RunNAT(cfg, nat.DefaultConfig(seed))
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("web workload: %d sessions, %d pages, %d connections\n",
		st.Sessions, st.Pages, st.Connections)
	fmt.Printf("  packets %d (in %d / out %d), mean wire packet %.1f B\n",
		st.Packets(), st.PacketsIn, st.PacketsOut, st.MeanWirePacket())
	fmt.Printf("  mean bandwidth %.0f kbs, %.0f lookups per Mbps (game: ~904)\n",
		float64(st.MeanBandwidth())/1e3, st.PPSPerMbps())
	fmt.Printf("through the Barricade model: loss in %.3f%% / out %.3f%% (game: 1.3%% / 0.46%%)\n",
		100*res.LossIn(), 100*res.LossOut())
	return nil
}

func runAggregate(seed uint64) error {
	cfg := population.Config{
		Seed:        seed,
		Duration:    96 * time.Hour,
		Warmup:      4 * time.Hour,
		Resolution:  30 * time.Second,
		ArrivalRate: 0.4,
	}
	res, err := population.SelfSimilarityExperiment(cfg, 1.4, 300)
	if err != nil {
		return err
	}
	fmt.Printf("aggregate population over %v (mean %.0f concurrent players):\n",
		cfg.Duration, res.MeanOccupancy)
	fmt.Printf("  Pareto(α=%.1f) sessions: H = %.3f (theory %.2f)\n", res.Alpha, res.Heavy.H, res.TheoryH)
	fmt.Printf("  exponential sessions   : H = %.3f (theory 0.50)\n", res.Exp.H)
	fmt.Println("heavy-tailed user sessions make aggregate game traffic long-range")
	fmt.Println("dependent even though each busy server is individually predictable.")
	return nil
}

func runScenario(seed uint64, servers int, duration, stagger time.Duration, spike float64, parallel, genWorkers int, perMode cstrace.PerServerMode, out string, depths bool, storePath, label string) error {
	cfg := cstrace.LaunchDay(seed, servers)
	if duration > 0 {
		cfg.Spec.Duration = duration
	}
	cfg.Spec.Stagger = stagger
	cfg.Spec.SpikeMult = spike
	cfg.Parallelism = parallel
	cfg.GenWorkers = genWorkers
	cfg.PerServer = perMode

	// -out persists the merged fleet stream as an indexed, compressed v4
	// trace. The merge's cross-server disorder is bounded by one tick
	// window (≤ 100 ms), so the Writer's own 200 ms SortWindow restores the
	// strict order the format requires — no separate SortBuffer stage, and
	// compression rides the worker pool instead of the merge path.
	var w *trace.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = trace.NewWriter(f)
		w.SortWindow = 200 * time.Millisecond
		w.Workers = parallel
		cfg.Extra = w
	}

	// -store records the run into the metrics store, content-addressed by
	// the merged fleet stream itself (hashed record-by-record as it flows;
	// no trace file needed): rerunning the same seed and spec dedupes.
	var mst *metricstore.Store
	var hasher *metricstore.StreamHasher
	if storePath != "" {
		var err error
		mst, err = metricstore.Open(storePath)
		if err != nil {
			return err
		}
		defer mst.Close()
		hasher = metricstore.NewStreamHasher()
		if w != nil {
			cfg.Extra = trace.Tee(w, hasher)
		} else {
			cfg.Extra = hasher
		}
	}

	res, err := cstrace.RunScenario(cfg)
	if err != nil {
		return err
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
		log.Printf("wrote %d merged fleet records to %s (format v%d)", w.Count(), out, w.Version())
	}
	if mst != nil {
		run, added, err := metricstore.RecordScenario(mst, metricstore.ScenarioInfo{
			Hash:    hasher.Sum(),
			Source:  fmt.Sprintf("scenario seed=%d servers=%d spike=%g", seed, servers, spike),
			Label:   label,
			Horizon: res.Horizon,
			Suite:   res.Aggregate.Suite,
			Servers: res.Servers,
		})
		if err != nil {
			return err
		}
		if added {
			log.Printf("recorded run %s in %s", run.ID, storePath)
		} else {
			log.Printf("identical run already stored as %s in %s", run.ID, storePath)
		}
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		return err
	}
	if perMode != cstrace.PerServerNone {
		// Per-box collectors run on each server's own clock: the paper's
		// single-server predictability, once per box. The slim set carries
		// the same headline table at a fraction of the collection cost.
		label := "suites"
		if perMode == cstrace.PerServerSlim {
			label = "slim collectors"
		}
		fmt.Printf("Per-server %s (local clock)\n", label)
		fmt.Println("-------------------------------")
		for _, s := range res.Servers {
			var t2 analysis.TableII
			if s.Suite != nil {
				t2 = s.Suite.Count.TableII(s.Game.Duration)
			} else {
				t2 = s.Slim.TableII()
			}
			fmt.Printf("  %-8s %8.1f kbs mean  %6.1f kbs/slot  %7.0f pps  in:out pkts %.2f\n",
				s.Name, t2.MeanBW.Kbs(), t2.MeanBW.Kbs()/float64(s.Game.Slots),
				float64(t2.MeanPPS), float64(t2.PacketsIn)/float64(t2.PacketsOut))
		}
		fmt.Println()
	}
	if depths {
		fprintDepths(os.Stdout, res.Aggregate.GroupDepths, res.Aggregate.Rebalances)
	}
	fmt.Printf("Fleet: %d servers, %d slots, %.1f kbs/slot aggregate (paper: ~40 kbs)\n",
		len(res.Servers), res.TotalSlots(), res.PerSlotKbs())
	return nil
}

func runProvision(players int) error {
	b := provision.PaperBudget()
	plan, err := provision.PlanFor(b, players, 22, 50*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("plan for %d concurrent players on 22-slot servers:\n", players)
	fmt.Printf("  servers        : %d\n", plan.Servers)
	fmt.Printf("  total bandwidth: %.1f Mbs\n", plan.TotalBps/1e6)
	fmt.Printf("  mean load      : %.0f pps (peak %.0f pps under aligned ticks)\n",
		plan.TotalMeanPPS, plan.PeakPPS)
	fmt.Printf("  min lookup rate: %.0f pps\n\n", plan.MinLookupPPS)

	demand := provision.Demand(b, 20, 50*time.Millisecond)
	for _, dev := range []provision.DeviceSpec{provision.Barricade(), provision.MidRangeRouter()} {
		a, err := provision.Assess(dev, demand, 1, provision.DefaultLatencyBudget)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%.0f pps): feasible=%v — %s\n", dev.Name, dev.LookupPPS, a.Feasible, a.Reason)
		fmt.Printf("  max servers behind it: %d\n",
			provision.MaxServers(dev, demand, provision.DefaultLatencyBudget))
	}
	return nil
}
