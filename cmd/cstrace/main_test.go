package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/sched"
)

// captureStdout runs fn with os.Stdout redirected through a pipe and
// returns what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestDepthsEndToEnd closes the latent gap that ShardedSuite.Depths was
// never exercised through the harness: generate a real trace with the auto
// worker knobs, analyze it sharded with -depths, and assert the printed
// statistics parse and are non-degenerate — every group named, every group
// fed every block, means and maxima inside the channel bound.
func TestDepthsEndToEnd(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "depths.cst")
	if err := runGen(5, time.Minute, traceFile, 4, 0, sched.Auto); err != nil {
		t.Fatalf("gen: %v", err)
	}

	out := captureStdout(t, func() error {
		return runAnalyze(traceFile, 4, 0, 0, true)
	})

	type row struct {
		name        string
		blocks, max int64
		mean        float64
	}
	var rows []row
	sc := bufio.NewScanner(strings.NewReader(out))
	inTable := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "Collector group depths") {
			var bound int
			if _, err := fmt.Sscanf(line, "Collector group depths (channel bound %d)", &bound); err != nil {
				t.Fatalf("unparseable depths header %q: %v", line, err)
			}
			if bound != analysis.ShardChanDepth {
				t.Errorf("printed channel bound %d, want %d", bound, analysis.ShardChanDepth)
			}
			inTable = true
			sc.Scan() // column header line
			continue
		}
		if !inTable {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			break // end of the table
		}
		var r row
		r.name = fields[0]
		if _, err := fmt.Sscanf(fields[1]+" "+fields[2]+" "+fields[3], "%d %f %d",
			&r.blocks, &r.mean, &r.max); err != nil {
			t.Fatalf("unparseable depths row %q: %v", line, err)
		}
		rows = append(rows, r)
	}
	if !inTable {
		t.Fatalf("-depths printed no depth table; output:\n%s", out)
	}
	if len(rows) < 2 {
		t.Fatalf("depth table has %d groups, want at least 2:\n%s", len(rows), out)
	}

	for _, r := range rows {
		if r.name == "" {
			t.Errorf("unnamed group in depth table")
		}
		if r.blocks <= 0 {
			t.Errorf("group %q saw %d blocks, want > 0", r.name, r.blocks)
		}
		if r.mean < 0 || r.mean > float64(analysis.ShardChanDepth) {
			t.Errorf("group %q mean depth %.2f outside [0, %d]", r.name, r.mean, analysis.ShardChanDepth)
		}
		if r.max < 0 || r.max > analysis.ShardChanDepth {
			t.Errorf("group %q max depth %d outside [0, %d]", r.name, r.max, analysis.ShardChanDepth)
		}
		if float64(r.max) < r.mean {
			t.Errorf("group %q max %d below mean %.2f", r.name, r.max, r.mean)
		}
	}
	// The ingest groups (all but any downstream sort consumers) are fed by
	// the same fan-out, so they must have enqueued the same block count.
	if rows[0].blocks != rows[1].blocks {
		t.Errorf("ingest groups disagree on block count: %d vs %d", rows[0].blocks, rows[1].blocks)
	}
}
