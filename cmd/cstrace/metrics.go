package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cstrace/internal/metricstore"
	"cstrace/internal/metricsvc"
)

// The metrics-store modes: ingest/list/show/trend query and grow the
// single-file run database (internal/metricstore), serve runs the
// continuous-analysis daemon (internal/metricsvc) in-process.

func openMetricStore(path string) (*metricstore.Store, error) {
	if path == "" {
		return nil, fmt.Errorf("-store required (path to the metrics store file)")
	}
	return metricstore.Open(path)
}

// runIngest analyzes each file and records one run row per distinct
// content hash; re-ingesting a file the store already holds is a no-op.
func runIngest(storePath, label string, parallel int, files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("ingest: pass trace files as arguments")
	}
	st, err := openMetricStore(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	for _, path := range files {
		run, added, err := metricstore.IngestTraceFile(st, path, metricstore.IngestOptions{
			Parallelism: parallel,
			Label:       label,
		})
		if err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
		verb := "recorded"
		if !added {
			verb = "already stored as"
		}
		fmt.Printf("%s: %s run %s (%d records, %.1f kbs mean)\n",
			path, verb, run.ID, run.Records, run.Summary.MeanKbs)
		if run.Warning != "" {
			fmt.Printf("  salvaged: %s\n", run.Warning)
		}
	}
	return nil
}

func runList(storePath string, jsonOut bool) error {
	st, err := openMetricStore(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	runs := st.Runs()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(runs)
	}
	fmt.Printf("%s: %d runs\n", st.Path(), len(runs))
	fmt.Printf("  %4s  %-12s  %-8s  %10s  %10s  %-20s  %s\n",
		"seq", "run", "kind", "records", "mean kbs", "ingested", "source")
	for _, r := range runs {
		src := r.Source
		if r.Label != "" {
			src += " [" + r.Label + "]"
		}
		fmt.Printf("  %4d  %-12s  %-8s  %10d  %10.1f  %-20s  %s\n",
			r.Seq, r.ID, r.Kind, r.Records, r.Summary.MeanKbs,
			r.IngestedAt.Format("2006-01-02T15:04:05Z"), src)
	}
	return nil
}

func runShow(storePath, runID string, jsonOut bool) error {
	if runID == "" {
		return fmt.Errorf("show: -run required (run ID or hash prefix)")
	}
	st, err := openMetricStore(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	run, err := st.Find(runID)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(run)
	}
	run.WriteText(os.Stdout)
	return nil
}

func runTrend(storePath, metric string, last int, kinds string, jsonOut bool) error {
	if metric == "help" || metric == "list" {
		for _, line := range metricstore.Metrics() {
			fmt.Println(line)
		}
		return nil
	}
	st, err := openMetricStore(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	var kindList []string
	if kinds != "" {
		kindList = strings.Split(kinds, ",")
	}
	pts, err := metricstore.Trend(st, metric, last, kindList...)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	}
	metricstore.WriteTrend(os.Stdout, metric, pts)
	return nil
}

// runServe is the in-process daemon: watch a spool directory, ingest new
// traces as they land, record completed windows, and on shutdown (signal
// or -for deadline) flush the service row.
func runServe(storePath, spool, label string, cadence, window, forDur time.Duration, parallel int) error {
	if spool == "" {
		return fmt.Errorf("serve: -spool required (directory watched for %s files)", metricsvc.TraceSuffix)
	}
	st, err := openMetricStore(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	eng, err := metricsvc.New(metricsvc.Config{
		Store:       st,
		Spool:       spool,
		Poll:        cadence,
		Window:      window,
		Parallelism: parallel,
		Label:       label,
		Report:      os.Stdout,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if forDur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, forDur)
		defer cancel()
	}
	log.Printf("serving: spool %s -> store %s (poll %v, window %v)", spool, storePath, cadence, window)
	if err := eng.Run(ctx); err != nil && err != context.Canceled && err != context.DeadlineExceeded {
		eng.Close()
		return err
	}
	svc, err := eng.Close()
	if err != nil {
		return err
	}
	if svc == nil {
		log.Printf("no traces ingested; no service row recorded")
		return nil
	}
	fmt.Printf("service session %s: %d windows recorded\n", svc.ID, eng.Windows())
	svc.WriteText(os.Stdout)
	return nil
}
