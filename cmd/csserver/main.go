// Command csserver runs the reference UDP game server: a 50 ms snapshot
// broadcast loop with slot-limited admission, the live counterpart of the
// workload the paper traces. Point csbot instances at it and watch the
// traffic structure emerge.
//
//	csserver -addr 127.0.0.1:27015 -slots 22 -stats 10s
//	csserver -master 127.0.0.1:27010            # also register for discovery
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cstrace/internal/discovery"
	"cstrace/internal/gameserver"
	"cstrace/internal/loadtest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csserver: ")

	// A failed capture must turn into a nonzero exit, but only after every
	// deferred teardown has run — hence the first-registered exit hook.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	var (
		addr     = flag.String("addr", "127.0.0.1:27015", "UDP listen address")
		slots    = flag.Int("slots", 22, "player capacity")
		tick     = flag.Duration("tick", 50*time.Millisecond, "snapshot broadcast interval")
		timeout  = flag.Duration("timeout", 5*time.Second, "client idle timeout")
		mapName  = flag.String("map", "de_dust2", "map name")
		srvName  = flag.String("name", "cstrace reference server", "server browser display name")
		master   = flag.String("master", "", "master server address to register with (optional)")
		beat     = flag.Duration("heartbeat", time.Minute, "master heartbeat period")
		statsInt = flag.Duration("stats", 10*time.Second, "stats print interval")
		traceOut = flag.String("trace", "", "capture all traffic to this v4 trace file")
	)
	flag.Parse()

	cfg := gameserver.Config{
		Addr:          *addr,
		Slots:         *slots,
		TickInterval:  *tick,
		ClientTimeout: *timeout,
		MapName:       *mapName,
		ServerName:    *srvName,
	}
	var capture *loadtest.Capture
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		// The capture writes the *os.File directly — no buffering wrapper —
		// so its per-segment fsync makes every sealed frame durable: a
		// SIGKILL at any point leaves a file `cstrace -mode salvage`
		// recovers. (The trace.Writer carries its own write buffer.)
		capture = loadtest.NewCapture(f, *tick)
		cfg.BatchTap = capture
		defer func() {
			sealErr := capture.Flush()
			if closeErr := f.Close(); sealErr == nil {
				sealErr = closeErr
			}
			if sealErr != nil {
				log.Printf("trace: capture failed to seal: %v (latched: %v) — salvage %s with cstrace -mode salvage",
					sealErr, capture.Err(), *traceOut)
				exitCode = 1
				return
			}
			log.Printf("trace written to %s", *traceOut)
		}()
	}
	srv, err := gameserver.Listen(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (%d slots, %v ticks, map %s)",
		srv.Addr(), *slots, *tick, *mapName)

	if *master != "" {
		port := uint16(srv.Addr().(*net.UDPAddr).Port)
		reg, err := discovery.Register(*master, port, *beat)
		if err != nil {
			log.Fatalf("master registration: %v", err)
		}
		defer reg.Stop()
		log.Printf("registered with master %s (heartbeat %v)", *master, *beat)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		t := time.NewTicker(*statsInt)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				st := srv.Stats()
				log.Printf("players=%d ticks=%d in=%d pkts/%d B out=%d pkts/%d B accepted=%d rejected=%d timeouts=%d",
					srv.NumClients(), st.Ticks, st.PacketsIn, st.BytesIn,
					st.PacketsOut, st.BytesOut, st.Accepted, st.Rejected, st.Timeouts)
			}
		}
	}()

	// Serve errors flow through the exit hook instead of log.Fatal so the
	// deferred capture seal still runs — the trace outlives the server.
	if err := srv.Serve(ctx); err != nil {
		log.Print(err)
		exitCode = 1
		return
	}
	log.Print("shut down")
}
