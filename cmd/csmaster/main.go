// Command csmaster runs the master server behind "dynamic server
// auto-discovery" (§III-A): game servers register with heartbeats
// (csserver -master), clients fetch the list and probe each entry
// (csbot -browse).
//
//	csmaster -addr 127.0.0.1:27010 -ttl 5m
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cstrace/internal/discovery"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csmaster: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:27010", "UDP listen address")
		ttl      = flag.Duration("ttl", discovery.DefaultTTL, "registration lifetime without heartbeat")
		statsInt = flag.Duration("stats", 30*time.Second, "stats print interval")
	)
	flag.Parse()

	m, err := discovery.ListenMaster(discovery.MasterConfig{Addr: *addr, TTL: *ttl})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	log.Printf("listening on %s (ttl %v)", m.Addr(), *ttl)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t := time.NewTicker(*statsInt)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			log.Printf("shutting down")
			return
		case <-t.C:
			st := m.Stats()
			log.Printf("%d servers registered; %d heartbeats, %d queries, %d byes",
				len(m.Servers()), st.Heartbeats, st.Queries, st.Byes)
		}
	}
}
