// Command csmetricsd is the standalone continuous-analysis daemon: it
// watches a spool directory for trace files (*.cst), ingests each new one
// into a metrics store (content-addressed, so re-delivered files are
// free), threads every record through a cumulative analysis suite and a
// rolling trace-time window, and records completed windows plus — on
// shutdown — a whole-session service summary. Query the resulting store
// with `cstrace -mode list/show/trend`.
//
// Usage:
//
//	csmetricsd -store metrics.csms -spool /var/spool/cstrace \
//	    [-cadence 2s] [-window 1m] [-parallel auto] [-label node7] [-for 0]
//
// The daemon stops on SIGINT/SIGTERM (or after -for, when set), flushing
// the partial window and the service row before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cstrace/internal/metricstore"
	"cstrace/internal/metricsvc"
	"cstrace/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("csmetricsd: ")

	var (
		storePath   = flag.String("store", "", "metrics store file (created if missing)")
		spool       = flag.String("spool", "", "directory watched for .cst trace files")
		cadence     = flag.Duration("cadence", 2*time.Second, "spool poll cadence")
		report      = flag.Duration("report", 30*time.Second, "rolling-report cadence when idle (<0 disables)")
		window      = flag.Duration("window", time.Minute, "rolling trace-time window width")
		parallelStr = flag.String("parallel", "auto", "collector parallelism (1 = serial, \"auto\" = budget-granted)")
		label       = flag.String("label", "", "operator tag recorded on every run")
		forDur      = flag.Duration("for", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	)
	flag.Parse()
	if err := run(*storePath, *spool, *cadence, *report, *window, *parallelStr, *label, *forDur); err != nil {
		log.Fatal(err)
	}
}

func run(storePath, spool string, cadence, report, window time.Duration, parallelStr, label string, forDur time.Duration) error {
	if storePath == "" || spool == "" {
		return fmt.Errorf("-store and -spool are both required")
	}
	parallel, err := sched.ParseWorkers(parallelStr)
	if err != nil {
		return fmt.Errorf("-parallel: %v", err)
	}
	st, err := metricstore.Open(storePath)
	if err != nil {
		return err
	}
	defer st.Close()
	eng, err := metricsvc.New(metricsvc.Config{
		Store:       st,
		Spool:       spool,
		Poll:        cadence,
		ReportEvery: report,
		Window:      window,
		Parallelism: parallel,
		Label:       label,
		Report:      os.Stdout,
		Logf:        log.Printf,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if forDur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, forDur)
		defer cancel()
	}
	log.Printf("watching %s -> %s (poll %v, window %v)", spool, storePath, cadence, window)
	if err := eng.Run(ctx); err != nil && err != context.Canceled && err != context.DeadlineExceeded {
		eng.Close()
		return err
	}
	svc, err := eng.Close()
	if err != nil {
		return err
	}
	if svc == nil {
		log.Printf("session ended with no traces ingested")
		return nil
	}
	log.Printf("session %s recorded: %d records, %d windows", svc.ID, svc.Records, eng.Windows())
	return nil
}
