// Route caching: the paper's §IV-B "good news". Game traffic's small,
// periodic packets over a stable destination set make route caching very
// effective — and preferential policies keyed on packet size or frequency
// protect game routes from being churned out by web cross-traffic.
//
//	go run ./examples/routecache
package main

import (
	"fmt"

	"cstrace/internal/routecache"
)

func main() {
	fib := routecache.BuildFIB(20000, 1)
	game := routecache.GameWorkload(200000, 22, 0.0005, 2)
	web := routecache.WebWorkload(200000, 50000, 3)
	mixed := routecache.Mix(game, web, 0.5, 4)

	workloads := []struct {
		name string
		pkts []routecache.Packet
	}{
		{"game-only", game},
		{"web-only", web},
		{"mixed 50/50", mixed},
	}
	policies := []routecache.Policy{
		routecache.PolicyNone,
		routecache.PolicyLRU,
		routecache.PolicyLFU,
		routecache.PolicySizePref,
		routecache.PolicyFreqPref,
	}

	const cacheSize = 64
	fmt.Printf("route cache comparison (cache=%d entries, FIB=%d prefixes)\n\n", cacheSize, fib.Len())
	for _, w := range workloads {
		fmt.Printf("%s (%d packets)\n", w.name, len(w.pkts))
		fmt.Println("  policy     | hit ratio | mean lookup cost | evictions")
		for _, p := range policies {
			c, err := routecache.NewCache(routecache.DefaultCacheConfig(p, cacheSize), fib)
			if err != nil {
				panic(err)
			}
			m := routecache.Run(c, w.pkts)
			fmt.Printf("  %-10s | %8.2f%% | %16.2f | %d\n",
				p, m.HitRatio()*100, m.MeanCost(), m.Evictions)
		}
		fmt.Println()
	}
	fmt.Println("The periodicity and predictability of game packets (the paper, §IV-B)")
	fmt.Println("shows up as near-perfect cacheability; size-preferential admission")
	fmt.Println("keeps that true even under heavy web-traffic pressure.")
}
