// Source modeling: the paper's §V hope — "the trace itself can be used to
// more accurately develop source models for simulation". Fit a compact
// stationary source model to a trace window, regenerate traffic from it,
// and verify the regenerated stream matches the original's Table II/III
// statistics and keeps the 50 ms burst structure.
//
//	go run ./examples/sourcemodel
package main

import (
	"fmt"
	"log"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/sourcemodel"
	"cstrace/internal/trace"
)

func main() {
	// A busy 10-minute window stands in for "the trace".
	cfg := gamesim.PaperConfig(1)
	cfg.Duration = 10 * time.Minute
	cfg.Warmup = 10 * time.Minute
	cfg.Outages = nil
	cfg.AttemptRate = 0.5
	cfg.DiurnalAmp = 0

	fitter := sourcemodel.NewFitter()
	var orig analysis.Counters
	if _, err := gamesim.Run(cfg, trace.Tee(fitter, &orig), nil); err != nil {
		log.Fatal(err)
	}
	model, err := fitter.Fit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: tick=%v flows=%d in=%.1f pps out=%.1f pps sync=%.0f%%\n",
		model.Tick, model.Flows, model.InRate, model.OutRate, model.SyncFraction*100)

	var regen analysis.Counters
	if err := model.Generate(10*time.Minute, 42, &regen); err != nil {
		log.Fatal(err)
	}

	o2, r2 := orig.TableII(cfg.Duration), regen.TableII(cfg.Duration)
	o3, r3 := orig.TableIII(), regen.TableIII()
	fmt.Println("\nquantity            | original | regenerated")
	fmt.Printf("mean pps in         | %8.1f | %8.1f\n", float64(o2.MeanPPSIn), float64(r2.MeanPPSIn))
	fmt.Printf("mean pps out        | %8.1f | %8.1f\n", float64(o2.MeanPPSOut), float64(r2.MeanPPSOut))
	fmt.Printf("mean bandwidth kbs  | %8.1f | %8.1f\n", o2.MeanBW.Kbs(), r2.MeanBW.Kbs())
	fmt.Printf("mean in size B      | %8.2f | %8.2f\n", o3.MeanIn, r3.MeanIn)
	fmt.Printf("mean out size B     | %8.2f | %8.2f\n", o3.MeanOut, r3.MeanOut)
	fmt.Println("\nThe compact model (a few hundred floats) reproduces the trace's")
	fmt.Println("aggregate statistics — usable directly as an ns-style traffic source.")
}
