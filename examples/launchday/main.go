// Launchday: the paper's §V provisioning question at fleet scale. A
// "Microsoft or Sony launch" is not one busy server but many — here eight
// servers of mixed sizes come up with a 6× release-day arrival surge, their
// demand peaks spread across time zones, and the merged stream is analyzed
// as one aggregate: the numbers an operator provisions against.
//
//	go run ./examples/launchday
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"cstrace"
)

func main() {
	cfg := cstrace.LaunchDay(1, 8)
	// Region rollout: each server opens two minutes after the previous.
	cfg.Spec.Stagger = 2 * time.Minute
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	cfg.PerServer = cstrace.PerServerFull

	res, err := cstrace.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The fleet summary alone: per-server breakdown plus the aggregate
	// provisioning numbers. res.WriteReport(os.Stdout) would prepend the
	// full paper report (Tables I-III, Figs 1-13) computed over the merged
	// stream.
	if err := res.WriteFleetReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The provisioning curve: mean vs tail of aggregate bandwidth. The
	// gap is what buying for the mean would have cost in brownouts.
	pct := res.BandwidthPercentiles(0.50, 0.99)
	fmt.Printf("aggregate bandwidth: p50 %.0f kbs, p99 %.0f kbs (buy the tail, not the mean)\n",
		pct[0], pct[1])

	// Per-box vs aggregate: each server alone is as predictable as the
	// paper's single server; the fleet aggregate inherits that stability
	// once the launch transient decays.
	for _, s := range res.Servers {
		t2 := s.Suite.Count.TableII(s.Game.Duration)
		fmt.Printf("  %s: %.1f kbs/slot on its own clock\n",
			s.Name, t2.MeanBW.Kbs()/float64(s.Game.Slots))
	}
	fmt.Printf("fleet: %d slots at %.1f kbs/slot aggregate (paper: ~40 kbs per modem slot)\n",
		res.TotalSlots(), res.PerSlotKbs())
}
