// Aggregate: the paper's §IV-B caveat made concrete. One busy server is
// predictable (H ≈ ½ at long time scales, Fig 5), but aggregate game
// traffic inherits the statistics of the player population: if session
// lengths are heavy-tailed, the number of concurrent players — and with it
// the aggregate packet rate, which is linear in players — is long-range
// dependent. This example superposes Poisson player arrivals with Pareto
// vs exponential sessions and estimates H from the occupancy series using
// the paper's own aggregated-variance method.
//
//	go run ./examples/aggregate
package main

import (
	"fmt"
	"log"
	"time"

	"cstrace/internal/population"
)

func main() {
	cfg := population.Config{
		Seed:        11,
		Duration:    96 * time.Hour,
		Warmup:      4 * time.Hour,
		Resolution:  30 * time.Second,
		ArrivalRate: 0.4, // players/sec across the server fleet
	}
	const alpha, meanSession = 1.4, 300.0

	res, err := population.SelfSimilarityExperiment(cfg, alpha, meanSession)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("population: λ=%.2f/s, E[session]=%.0fs, mean concurrent ≈ %.0f players\n",
		cfg.ArrivalRate, meanSession, res.MeanOccupancy)
	fmt.Printf("\nHurst estimates (aggregated-variance, the paper's Fig 5 method):\n")
	fmt.Printf("  Pareto(α=%.1f) sessions : H = %.3f  (theory: H = (3−α)/2 = %.2f)\n",
		res.Alpha, res.Heavy.H, res.TheoryH)
	fmt.Printf("  exponential sessions    : H = %.3f  (theory: ½)\n", res.Exp.H)

	fmt.Println("\nvariance-time points (log10 m vs log10 normalized variance):")
	fmt.Printf("%10s %12s %12s\n", "log10(m)", "heavy", "exp")
	for i := range res.HeavyPoints {
		if i >= len(res.ExpPoints) {
			break
		}
		h := res.HeavyPoints[i]
		e := res.ExpPoints[i]
		fmt.Printf("%10.2f %12.3f %12.3f\n", h.Log10M, h.Log10Var, e.Log10Var)
	}

	// The linear-in-players scaling (§IV-B) turns occupancy into traffic.
	pp := population.PaperPerPlayer()
	occ, err := population.Occupancy(populationConfigWithPareto(cfg, alpha, meanSession))
	if err != nil {
		log.Fatal(err)
	}
	pps, bps := pp.Scale(occ)
	var peakPPS, peakBps float64
	for i := range pps {
		if pps[i] > peakPPS {
			peakPPS = pps[i]
			peakBps = bps[i]
		}
	}
	fmt.Printf("\naggregate traffic under the per-player budget (%.1f pps, %.1f kbs each):\n",
		pp.PPS, pp.Bps/1e3)
	fmt.Printf("  peak: %.0f pps, %.1f Mbs — provision for the population tail,\n", peakPPS, peakBps/1e6)
	fmt.Println("  not the mean: long-range dependence means excursions persist.")
}

func populationConfigWithPareto(cfg population.Config, alpha, mean float64) population.Config {
	out := cfg
	out.Session = population.ParetoSession(alpha, mean)
	return out
}
