// Quickstart: reproduce the paper's core tables on a 30-minute simulated
// window of the busy server and print the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"cstrace"
)

func main() {
	cfg := cstrace.Quick(1)
	// Shard the analysis collectors across the available cores; results
	// are byte-identical to a single-threaded run.
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	res, err := cstrace.Reproduce(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("modem check: %.1f kbs per slot (the paper's last-mile saturation is ~40)\n",
		res.PerSlotKbs())
}
