// Live server: run the real UDP game server with bots over the loopback,
// capture every datagram through the tap, and push the capture through the
// same analysis pipeline used for the simulated week. The structure of the
// paper's traffic — in-packet excess, out-byte excess, 3x size ratio —
// emerges from the real network stack.
//
//	go run ./examples/liveserver
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/discovery"
	"cstrace/internal/gameserver"
	"cstrace/internal/report"
	"cstrace/internal/trace"
)

func main() {
	const (
		bots    = 8
		playFor = 5 * time.Second
	)

	var mu sync.Mutex
	var records []trace.Record

	cfg := gameserver.DefaultConfig()
	// The batched tap hands each 50 ms broadcast burst over as one block:
	// one lock acquisition per tick instead of one per datagram.
	cfg.BatchTap = trace.BatchHandlerFunc(func(rs []trace.Record) {
		mu.Lock()
		records = append(records, rs...)
		mu.Unlock()
	})
	srv, err := gameserver.Listen(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ctx)
	}()
	log.Printf("server on %s", srv.Addr())

	// Auto-discovery, as the paper's players used it: register with a
	// master server, then browse — master list, info probe, RTT ranking.
	master, err := discovery.ListenMaster(discovery.MasterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	port := uint16(srv.Addr().(*net.UDPAddr).Port)
	reg, err := discovery.Register(master.Addr().String(), port, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Stop()
	lines, err := gameserver.Browse(master.Addr().String(), time.Second)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range lines {
		fmt.Printf("browser: %-28s %s  %d/%d on %s  rtt %v\n",
			l.Info.ServerName, l.Addr, l.Info.Players, l.Info.MaxPlayers,
			l.Info.Map, l.RTT.Round(time.Microsecond))
	}

	botCtx, stopBots := context.WithTimeout(context.Background(), playFor)
	defer stopBots()
	var wg sync.WaitGroup
	for i := 0; i < bots; i++ {
		bcfg := gameserver.DefaultBotConfig(srv.Addr().String())
		bcfg.Name = fmt.Sprintf("bot%02d", i)
		bcfg.Seed = uint64(i + 1)
		b, err := gameserver.Dial(bcfg)
		if err != nil {
			log.Fatalf("bot %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.Run(botCtx)
		}()
	}
	wg.Wait()
	cancel()
	// Wait for Serve to return: its final FlushTap delivers any records
	// still coalesced in the batched tap before we snapshot.
	<-served

	// Feed the live capture through the paper's analysis.
	mu.Lock()
	captured := records
	mu.Unlock()
	suite, err := analysis.NewSuite(analysis.DefaultSuiteConfig(playFor))
	if err != nil {
		log.Fatal(err)
	}
	sorter := trace.NewSortBuffer(2*cfg.TickInterval, suite)
	for _, r := range captured {
		sorter.Handle(r)
	}
	sorter.Flush()
	suite.Close()

	report.TableII(os.Stdout, suite.Count.TableII(playFor))
	report.TableIII(os.Stdout, suite.Count.TableIII())
	if w := suite.Window(10 * time.Millisecond); w != nil {
		report.Series(os.Stdout, "live capture: first 200 x 10ms bins (pps)", w.TotalPPS(), 72, 8)
	}

	st := srv.Stats()
	fmt.Printf("server: %d ticks, %d in / %d out packets, %d accepted\n",
		st.Ticks, st.PacketsIn, st.PacketsOut, st.Accepted)
}
