// NAT device experiment: the paper's §IV-A. A single 30-minute map is
// traced through a consumer NAT model; the report shows Table IV and the
// per-second delivered-load series with their characteristic drop-outs.
//
//	go run ./examples/natdevice
package main

import (
	"fmt"
	"log"
	"os"

	"cstrace"
	"cstrace/internal/report"
)

func main() {
	res, err := cstrace.ReproduceNAT(42)
	if err != nil {
		log.Fatal(err)
	}
	report.TableIV(os.Stdout, res.Counts)
	report.Series(os.Stdout, "Figure 14a: clients->NAT (pps)", res.ClientsToNAT, 72, 7)
	report.Series(os.Stdout, "Figure 14b: NAT->server (pps)", res.NATToServer, 72, 7)
	report.Series(os.Stdout, "Figure 15a: server->NAT (pps)", res.ServerToNAT, 72, 7)
	report.Series(os.Stdout, "Figure 15b: NAT->clients (pps)", res.NATToClients, 72, 7)

	fmt.Printf("incoming loss %.2f%% (paper: 1.3%%), outgoing loss %.2f%% (paper: 0.46%%)\n",
		res.Counts.LossIn()*100, res.Counts.LossOut()*100)
	fmt.Printf("mean forwarding delay: in %.1f ms, out %.1f ms (max %.1f / %.1f ms)\n",
		res.MeanDelayIn*1e3, res.MeanDelayOut*1e3, res.MaxDelayIn*1e3, res.MaxDelayOut*1e3)
}
