// Lastmile: the paper's central design claim — "this particular game was
// designed to saturate the narrowest last-mile link" — replayed through
// access-link models. One client's slice of the busy server's traffic is
// pushed through each access technology of the era; the modem runs hot but
// playable, and an "l337" high-rate configuration that fits broadband
// drowns a modem in queueing loss.
//
//	go run ./examples/lastmile
package main

import (
	"fmt"
	"log"
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/netem"
	"cstrace/internal/provision"
	"cstrace/internal/trace"
)

func main() {
	// Capture a busy quarter hour and keep the single busiest client.
	cfg := gamesim.PaperConfig(5)
	cfg.Duration = 15 * time.Minute
	cfg.Warmup = 10 * time.Minute
	cfg.Outages = nil
	cfg.AttemptRate *= 5
	cfg.DiurnalAmp = 0

	var all trace.Collect
	if _, err := gamesim.Run(cfg, &all, nil); err != nil {
		log.Fatal(err)
	}
	counts := map[uint32]int{}
	for _, r := range all.Records {
		counts[r.Client]++
	}
	var busiest uint32
	for c, n := range counts {
		if n > counts[busiest] {
			busiest = c
		}
	}
	var flow []trace.Record
	for _, r := range all.Records {
		if r.Client == busiest {
			flow = append(flow, r)
		}
	}
	fmt.Printf("busiest client: %d packets over %v\n\n", len(flow), cfg.Duration)

	fmt.Println("replay through access profiles (down = server→client):")
	fmt.Printf("%-10s %9s %9s %11s %11s %9s\n",
		"profile", "loss dn", "loss up", "delay dn", "p.max dn", "util dn")
	for _, p := range netem.Profiles() {
		var sink trace.Collect
		lm, err := netem.New(p, 1, &sink)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range flow {
			lm.Handle(r)
		}
		d := lm.Down()
		u := lm.Up()
		fmt.Printf("%-10s %8.2f%% %8.2f%% %10.1fms %10.1fms %8.2f\n",
			p.Name, 100*d.LossRate(), 100*u.LossRate(),
			1e3*d.Delay.Mean(), 1e3*d.Delay.Max(), d.Utilization())
	}

	fmt.Println("\nanalytic check against the paper's per-player budget:")
	b := provision.PaperBudget()
	fmt.Printf("%-10s %9s %9s %10s %s\n", "profile", "util dn", "util up", "sat.ratio", "verdict")
	for _, p := range netem.Profiles() {
		r := provision.CheckLastMile(b, p)
		verdict := "comfortable"
		if r.Saturated {
			verdict = "saturated (by design)"
		}
		if !r.Fits {
			verdict = "does not fit"
		}
		fmt.Printf("%-10s %9.2f %9.2f %10.2f %s\n",
			p.Name, r.DownUtil, r.UpUtil, r.SaturationRatio, verdict)
	}

	// The "l337" counterexample: a cranked-up update rate (the Fig 11
	// tail) into a modem.
	fmt.Println("\n\"l337\" config (high update rate) through a modem:")
	elite := make([]trace.Record, 0, 4096)
	for i := 0; i < 3000; i++ {
		elite = append(elite, trace.Record{
			T: time.Duration(i) * 20 * time.Millisecond, Dir: trace.Out, App: 250,
		})
	}
	var sink trace.Collect
	lm, err := netem.New(netem.Modem56k(), 2, &sink)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range elite {
		lm.Handle(r)
	}
	d := lm.Down()
	fmt.Printf("offered 123 kbs into 45 kbs: loss %.1f%%, goodput pegged at %.0f kbs\n",
		100*d.LossRate(), float64(d.Goodput())/1e3)
}
