// Webcompare: the §IV-A argument end to end. The same consumer forwarding
// device is offered (a) one busy Counter-Strike server's traffic and (b) a
// web/bulk-TCP workload of comparable bit rate. The game's tiny, 50 ms-
// synchronized packets overwhelm the device's route-lookup engine while the
// web traffic — near an order of magnitude larger per packet — passes
// almost untouched.
//
//	go run ./examples/webcompare
package main

import (
	"fmt"
	"log"
	"time"

	"cstrace"
	"cstrace/internal/nat"
	"cstrace/internal/webtraffic"
)

func main() {
	seed := uint64(7)

	fmt.Println("== Game traffic through the SMC Barricade model (paper §IV-A) ==")
	game, err := cstrace.ReproduceNAT(seed)
	if err != nil {
		log.Fatal(err)
	}
	gameOffered := game.Counts.ClientToNAT + game.Counts.ServerToNAT
	fmt.Printf("offered packets : %d\n", gameOffered)
	fmt.Printf("loss in/out     : %.2f%% / %.2f%%  (paper: 1.3%% / 0.46%%)\n",
		100*game.Counts.LossIn(), 100*game.Counts.LossOut())

	fmt.Println("\n== Web traffic of comparable bit rate through the same device ==")
	webCfg := webtraffic.DefaultConfig(seed)
	webCfg.Duration = 30 * time.Minute
	web, err := webtraffic.RunNAT(webCfg, nat.DefaultConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered packets : %d over %v\n", web.Stats.Packets(), web.Stats.Span.Round(time.Second))
	fmt.Printf("mean bandwidth  : %.0f kbs (game server ran ≈880 kbs)\n", float64(web.Stats.MeanBandwidth())/1e3)
	fmt.Printf("loss in/out     : %.3f%% / %.3f%%\n", 100*web.LossIn(), 100*web.LossOut())

	fmt.Println("\n== Why: the packet-size and lookup-rate contrast ==")
	fmt.Printf("%-22s %14s %14s\n", "", "game", "web")
	// Game constants from Table II: 64.42 GiB over 500 M packets is a
	// 138.3 B mean wire packet; 798.11 pps over 883 kbs is ≈904 lookups
	// per megabit.
	fmt.Printf("%-22s %11.1f B %11.1f B\n", "mean wire packet",
		138.3, web.Stats.MeanWirePacket())
	fmt.Printf("%-22s %10.0f pps %10.0f pps\n", "lookups per Mbps",
		904.0, web.Stats.PPSPerMbps())
	fmt.Println("\nRouters are sized for 125-250 B packets [Partridge et al.]; game")
	fmt.Println("traffic sits far below that band, web traffic above it — equal bits,")
	fmt.Println("several times the lookups.")
}
