// Provisioning: the paper's takeaway put to work. Because per-player
// resource use is fixed by design (last-mile saturation), server bandwidth
// scales linearly with player count — so provisioning reduces to two
// questions this example answers with the library:
//
//  1. How much bandwidth and packet rate does an N-slot server need?
//
//  2. What route-lookup capacity must a middlebox have to carry M servers
//     without game-breaking loss?
//
//     go run ./examples/provisioning
package main

import (
	"fmt"
	"log"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/nat"
	"cstrace/internal/trace"
)

func main() {
	fmt.Println("Per-server requirements by slot count (15-minute busy-server samples)")
	fmt.Println("slots | players | kbs total | pps total | kbs/slot")
	for _, slots := range []int{8, 16, 22, 32} {
		cfg := gamesim.PaperConfig(uint64(slots))
		cfg.Duration = 15 * time.Minute
		cfg.Warmup = 10 * time.Minute
		cfg.Outages = nil
		cfg.Slots = slots
		cfg.AttemptRate = 0.5 // saturate
		cfg.DiurnalAmp = 0

		var c analysis.Counters
		st, err := gamesim.Run(cfg, &c, nil)
		if err != nil {
			log.Fatal(err)
		}
		t2 := c.TableII(cfg.Duration)
		fmt.Printf("%5d | %7.1f | %9.0f | %9.0f | %8.1f\n",
			slots, st.MeanPlayers(), t2.MeanBW.Kbs(), float64(t2.MeanPPS),
			t2.MeanBW.Kbs()/float64(slots))
	}

	// Middlebox sizing: find the lowest route-lookup capacity that keeps
	// incoming loss under 1% for one busy server (the paper suggests ~1-2%
	// is already at the edge of player tolerance).
	fmt.Println("\nMiddlebox capacity needed for <1% incoming loss (one 22-slot server)")
	fmt.Println("capacity (pps) | loss in | loss out")
	gameCfg := gamesim.NATExperimentConfig(7)
	gameCfg.Duration = 10 * time.Minute

	var offered []trace.Record
	sorter := trace.NewSortBuffer(2*gameCfg.TickInterval, trace.HandlerFunc(func(r trace.Record) {
		offered = append(offered, r)
	}))
	if _, err := gamesim.Run(gameCfg, sorter, nil); err != nil {
		log.Fatal(err)
	}
	sorter.Flush()

	for _, capacity := range []float64{900, 1100, 1300, 1500, 1800, 2400} {
		ncfg := nat.DefaultConfig(7)
		ncfg.Capacity = capacity
		dev, err := nat.New(ncfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range offered {
			dev.Handle(r)
		}
		c := dev.Counts()
		marker := ""
		if c.LossIn() < 0.01 {
			marker = "  <- sufficient"
		}
		fmt.Printf("%14.0f | %6.2f%% | %7.3f%%%s\n",
			capacity, c.LossIn()*100, c.LossOut()*100, marker)
	}
	fmt.Println("\nNote the point of the paper: the bit rate (~1 Mbs) is trivial;")
	fmt.Println("the packet rate is what exhausts the middlebox.")
}
