package cstrace

import (
	"io"
	"time"

	"cstrace/internal/report"
)

// writeReport renders all tables and figures.
func writeReport(w io.Writer, r *Results) error {
	report.TableI(w, r.TableI)
	report.TableII(w, r.TableII)
	report.TableIII(w, r.TableIII)

	report.Series(w, "Figure 1: per-minute bandwidth (kbs)", r.Suite.Minutes.KbsTotal(), 72, 8)
	report.Series(w, "Figure 2: per-minute packet load (pps)", r.Suite.Minutes.PPSTotal(), 72, 8)
	report.Series(w, "Figure 3: per-minute players", r.Suite.Players.Counts(), 72, 8)
	report.Series(w, "Figure 4a: per-minute incoming bandwidth (kbs)", r.Suite.Minutes.KbsIn(), 72, 6)
	report.Series(w, "Figure 4b: per-minute outgoing bandwidth (kbs)", r.Suite.Minutes.KbsOut(), 72, 6)
	report.Series(w, "Figure 4c: per-minute incoming packet load (pps)", r.Suite.Minutes.PPSIn(), 72, 6)
	report.Series(w, "Figure 4d: per-minute outgoing packet load (pps)", r.Suite.Minutes.PPSOut(), 72, 6)

	report.VarianceTime(w, r.Suite.VT.Points(), r.Regions)

	if win := r.Suite.Window(10 * time.Millisecond); win != nil {
		report.Series(w, "Figure 6: total packet load, first 200 x 10ms bins (pps)", win.TotalPPS(), 72, 8)
		report.Series(w, "Figure 7a: incoming packet load, 10ms bins (pps)", win.InPPS(), 72, 6)
		report.Series(w, "Figure 7b: outgoing packet load, 10ms bins (pps)", win.OutPPS(), 72, 6)
	}
	if win := r.Suite.Window(50 * time.Millisecond); win != nil {
		report.Series(w, "Figure 8: total packet load, first 200 x 50ms bins (pps)", win.TotalPPS(), 72, 8)
	}
	if win := r.Suite.Window(time.Second); win != nil {
		report.Series(w, "Figure 9: total packet load, 1s bins (pps)", win.TotalPPS(), 72, 8)
	}
	if win := r.Suite.Window(30 * time.Minute); win != nil {
		report.Series(w, "Figure 10: total packet load, 30min bins (pps)", win.TotalPPS(), 72, 8)
	}

	hist := r.Suite.Flows.Histogram(30*time.Second, 150e3, 75)
	bw := make([]float64, hist.NumBins())
	for i := range bw {
		bw[i] = float64(hist.Count(i))
	}
	report.Series(w, "Figure 11: client bandwidth histogram (2 kbs bins, 0-150 kbs)", bw, 75, 8)

	report.SizePDF(w, "Figure 12a: packet size PDF, total (20-byte bins)",
		r.Suite.Sizes.Total().BinnedPDF(20), 20, 25)
	report.SizePDF(w, "Figure 12b-in: packet size PDF, inbound",
		r.Suite.Sizes.In.BinnedPDF(20), 20, 25)
	report.SizePDF(w, "Figure 12b-out: packet size PDF, outbound",
		r.Suite.Sizes.Out.BinnedPDF(20), 20, 25)
	report.SizeCDF(w, "Figure 13: packet size CDF (quantile table)", r.Suite.Sizes)

	report.Composition(w, r.Suite.Kinds)
	tick, corr := r.Suite.Tick.Tick()
	report.Burstiness(w, r.Suite.Gaps, tick, corr)
	return nil
}

// writeTraceAnalysis renders the subset of the report recoverable from a
// persisted record stream (no Table I: session stats live with the
// generator, not the trace).
func writeTraceAnalysis(w io.Writer, a *TraceAnalysis) error {
	report.TableII(w, a.TableII)
	report.TableIII(w, a.TableIII)
	report.VarianceTime(w, a.Suite.VT.Points(), a.Regions)
	return nil
}
