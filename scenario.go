package cstrace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/report"
	"cstrace/internal/scenario"
	"cstrace/internal/trace"
)

// Scenario re-exports the declarative fleet spec: server count, size and
// tickrate mixes, start stagger, diurnal phase spread and launch-day surge.
// See scenario.Spec for the field-by-field story.
type Scenario = scenario.Spec

// PerServerMode selects per-box collection for a scenario run; see the
// scenario package constants re-exported below.
type PerServerMode = scenario.PerServerMode

// Per-box collection modes: nothing, the full paper suite per server, or
// the slim counters+minutes set that scales to hundreds of servers.
const (
	PerServerNone = scenario.PerServerNone
	PerServerFull = scenario.PerServerFull
	PerServerSlim = scenario.PerServerSlim
)

// ScenarioConfig selects a fleet to simulate and how to analyze it.
type ScenarioConfig struct {
	// Spec declares the fleet; it is expanded with Spec.Build unless
	// Servers is set.
	Spec Scenario
	// Servers, if non-nil, is the explicit fleet and overrides Spec.
	Servers []scenario.ServerSpec
	// Suite configures the aggregate analysis suite; zero value = paper
	// suite sized to the fleet horizon.
	Suite analysis.SuiteConfig
	// Parallelism shards the aggregate suite's collector groups, exactly
	// as Config.Parallelism does (AutoWorkers grants the suite its share
	// of the worker budget and self-tunes the assignment); results are
	// byte-identical across settings.
	Parallelism int
	// GenWorkers overrides every server's fill-stage worker count: 0
	// keeps each ServerSpec's own Game.Workers, AutoWorkers splits the
	// worker budget's remainder fairly across the fleet, and a positive
	// value applies to every server. Results are byte-identical across
	// settings.
	GenWorkers int
	// PerServer selects per-box collection alongside the aggregate:
	// PerServerFull runs a complete per-server analysis suite for per-box
	// vs aggregate comparison; PerServerSlim collects only counters and
	// minute series per box, cheap enough for very large fleets.
	PerServer PerServerMode
	// Extra, if non-nil, receives the merged fleet record stream.
	Extra trace.Handler
}

// LaunchDay returns a ready-made release-event fleet: n servers with mixed
// sizes, demand peaks spread across time zones, and a 6× arrival surge
// decaying over the first minutes — the "Microsoft or Sony launch" of §V,
// compressed into a 30-minute observable window.
func LaunchDay(seed uint64, n int) ScenarioConfig {
	return ScenarioConfig{Spec: Scenario{
		Seed:          seed,
		Servers:       n,
		Duration:      30 * time.Minute,
		SlotMix:       []int{22, 22, 32, 16},
		DiurnalSpread: 6 * time.Hour,
		SpikeMult:     6,
		SpikeDecay:    8 * time.Minute,
		RateScale:     5, // busy-server load in a short window, as Quick does
	}}
}

// ScenarioResults bundles a completed fleet run.
type ScenarioResults struct {
	Config  ScenarioConfig
	Horizon time.Duration
	// Aggregate holds the merged-stream analysis in the same shape
	// Reproduce returns: for a one-server scenario its report is
	// byte-identical to the plain reproduction.
	Aggregate *Results
	// Servers holds per-server stats, and per-server suites when
	// Config.PerServer was set.
	Servers []scenario.ServerResult
}

// RunScenario simulates the fleet described by cfg: every server generates
// on its own goroutine, the per-tick blocks merge into one time-ordered
// stream, and the full paper suite runs over the aggregate. Results are
// deterministic: byte-identical across runs and Parallelism settings.
func RunScenario(cfg ScenarioConfig) (*ScenarioResults, error) {
	servers := cfg.Servers
	if servers == nil {
		var err error
		if servers, err = cfg.Spec.Build(); err != nil {
			return nil, err
		}
	}
	rc := scenario.Config{
		Servers:     servers,
		Suite:       cfg.Suite,
		Parallelism: cfg.Parallelism,
		GenWorkers:  cfg.GenWorkers,
		PerServer:   cfg.PerServer,
		Extra:       cfg.Extra,
	}
	if rc.Suite.Duration == 0 {
		rc.Suite = analysis.DefaultSuiteConfig(rc.Horizon())
	}
	res, err := scenario.Run(rc)
	if err != nil {
		return nil, err
	}

	// The aggregate mirrors Reproduce's Results. The variance-time region
	// split and per-slot figure key off the first server's parameters;
	// heterogeneous fleets share them as the reference configuration.
	first := servers[0].Game
	agg := &Results{
		Config:   Config{Game: first, Suite: rc.Suite, Parallelism: cfg.Parallelism},
		Stats:    res.Stats,
		Suite:    res.Suite,
		TableI:   analysis.TableIFromStats(res.Stats),
		TableII:  res.Suite.Count.TableII(res.Horizon),
		TableIII: res.Suite.Count.TableIII(),
		Regions: analysis.Regions(res.Suite.VT.Points(), rc.Suite.VarTimeBase,
			first.TickInterval, first.MapDuration+first.MapChangePause),
		GroupDepths: res.GroupDepths,
		Rebalances:  res.Rebalances,
	}
	return &ScenarioResults{
		Config:    cfg,
		Horizon:   res.Horizon,
		Aggregate: agg,
		Servers:   res.Servers,
	}, nil
}

// TotalSlots returns the fleet's summed player capacity.
func (r *ScenarioResults) TotalSlots() int {
	var n int
	for _, s := range r.Servers {
		n += s.Game.Slots
	}
	return n
}

// PerSlotKbs returns the fleet-wide mean bandwidth per player slot — the
// paper's headline figure, generalized to the aggregate.
func (r *ScenarioResults) PerSlotKbs() float64 {
	return analysis.PerSlotKbs(r.Aggregate.TableII, r.TotalSlots())
}

// BandwidthPercentiles returns the given quantiles of the fleet's
// per-minute aggregate bandwidth in kbs — the provisioning curve: an
// operator buys for a high percentile, not the mean.
func (r *ScenarioResults) BandwidthPercentiles(ps ...float64) []float64 {
	series := append([]float64(nil), r.Aggregate.Suite.Minutes.KbsTotal()...)
	sort.Float64s(series)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = quantile(series, p)
	}
	return out
}

// quantile returns the p-quantile of a sorted series (nearest-rank).
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteReport renders the aggregate paper report followed by the fleet
// provisioning summary. For a one-server fleet the aggregate section is
// byte-identical to Reproduce's report.
func (r *ScenarioResults) WriteReport(w io.Writer) error {
	if err := r.Aggregate.WriteReport(w); err != nil {
		return err
	}
	return r.WriteFleetReport(w)
}

// WriteFleetReport renders only the fleet summary: the per-server
// breakdown and the aggregate provisioning numbers.
func (r *ScenarioResults) WriteFleetReport(w io.Writer) error {
	t2 := r.Aggregate.TableII
	pct := r.BandwidthPercentiles(0.50, 0.90, 0.95, 0.99, 1.0)
	report.Table(w, fmt.Sprintf("Fleet summary: %d servers, %d slots", len(r.Servers), r.TotalSlots()), []report.KV{
		{Key: "Fleet Horizon", Value: r.Horizon.String()},
		{Key: "Total Packets", Value: fmt.Sprintf("%d", t2.TotalPackets)},
		{Key: "Mean Aggregate Bandwidth", Value: t2.MeanBW.String()},
		{Key: "Bandwidth kbs p50/p90/p95/p99/max", Value: fmt.Sprintf("%.0f / %.0f / %.0f / %.0f / %.0f",
			pct[0], pct[1], pct[2], pct[3], pct[4])},
		{Key: "Per-Slot Bandwidth", Value: fmt.Sprintf("%.1f kbs (paper: ~40)", r.PerSlotKbs())},
		{Key: "Established Connections", Value: fmt.Sprintf("%d", r.Aggregate.TableI.Established)},
		{Key: "Mean Active Players", Value: fmt.Sprintf("%.2f", r.Aggregate.TableI.MeanPlayers)},
		{Key: "Peak Player Bound", Value: fmt.Sprintf("%d", r.Aggregate.Stats.MaxConcurrent)},
	})

	fmt.Fprintf(w, "Per-server breakdown\n--------------------\n")
	fmt.Fprintf(w, "  %-8s %5s %6s %12s %10s %10s %8s %8s\n",
		"server", "slots", "tick", "packets", "mean-kbs", "kbs/slot", "estab", "players")
	for _, s := range r.Servers {
		st := s.Stats
		kbs := s.MeanKbs()
		fmt.Fprintf(w, "  %-8s %5d %6s %12d %10.1f %10.1f %8d %8.2f\n",
			s.Name, s.Game.Slots, s.Game.TickInterval, st.PacketsIn+st.PacketsOut,
			kbs, kbs/float64(s.Game.Slots), st.Established, st.MeanPlayers())
	}
	fmt.Fprintln(w)
	return nil
}
