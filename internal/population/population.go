// Package population models aggregate player populations across many
// servers, the dimension the paper explicitly leaves open: "it is expected
// that active user populations will not, in general, exhibit the
// predictability of the server studied in this paper and that the global
// usage pattern itself may exhibit a high degree of self-similarity", and
// later, "Self-similarity in aggregate game traffic in this case will be
// directly dependent on the self-similarity of user populations [24], [25]."
//
// The model is the classical M/G/∞ superposition Henderson applied to game
// populations: players arrive Poisson and remain on-line for a session
// drawn from some distribution, each contributing the paper's fixed
// per-player packet and bit rates while present (§IV-B: aggregate traffic
// "is effectively linear to the number of active players"). With
// heavy-tailed (Pareto, 1<α<2) sessions the occupancy process N(t) is
// long-range dependent with H = (3−α)/2; with exponential sessions it is
// short-range dependent (H = ½). SelfSimilarityExperiment demonstrates
// both, closing the loop with the paper's own variance-time methodology.
package population

import (
	"errors"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/hurst"
)

// Config parameterizes one population occupancy simulation.
type Config struct {
	Seed     uint64
	Duration time.Duration // measured window
	// Warmup precedes the window so occupancy starts in steady state
	// (sessions that began before the window can still be active).
	Warmup     time.Duration
	Resolution time.Duration // occupancy sampling bin

	ArrivalRate float64      // player arrivals per second (aggregate)
	Session     dist.Sampler // session length, seconds
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return errors.New("population: Duration must be positive")
	case c.Resolution <= 0:
		return errors.New("population: Resolution must be positive")
	case c.Warmup < 0:
		return errors.New("population: Warmup must be non-negative")
	case c.ArrivalRate <= 0:
		return errors.New("population: ArrivalRate must be positive")
	case c.Session == nil:
		return errors.New("population: Session sampler must be set")
	}
	return nil
}

// Occupancy simulates the arrival process and returns the per-bin
// time-averaged number of concurrent players over the measured window.
// Each bin holds the integral of N(t) over the bin divided by the bin
// width, which is exact (no sampling aliasing).
func Occupancy(cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := dist.NewRNG(cfg.Seed)
	window := cfg.Duration.Seconds()
	warm := cfg.Warmup.Seconds()
	binW := cfg.Resolution.Seconds()
	n := int(window / binW)
	if n == 0 {
		return nil, errors.New("population: Duration shorter than Resolution")
	}
	bins := make([]float64, n)

	// Arrivals over [-warm, window); time 0 is the window start.
	t := -warm
	for {
		t += rng.ExpFloat64() / cfg.ArrivalRate
		if t >= window {
			break
		}
		s := cfg.Session.Sample(rng)
		if s <= 0 {
			continue
		}
		addInterval(bins, binW, t, t+s)
	}
	for i := range bins {
		bins[i] /= binW
	}
	return bins, nil
}

// addInterval accumulates the overlap of [a, b) seconds with every bin.
func addInterval(bins []float64, binW, a, b float64) {
	if b <= 0 || a >= float64(len(bins))*binW {
		return
	}
	if a < 0 {
		a = 0
	}
	limit := float64(len(bins)) * binW
	if b > limit {
		b = limit
	}
	first := int(a / binW)
	last := int(b / binW)
	if last >= len(bins) {
		last = len(bins) - 1
	}
	if first == last {
		bins[first] += b - a
		return
	}
	bins[first] += float64(first+1)*binW - a
	for i := first + 1; i < last; i++ {
		bins[i] += binW
	}
	bins[last] += b - float64(last)*binW
}

// PerPlayer is the per-active-player resource budget the paper's trace
// yields: with a mean concurrent population of ≈18.05 players, Table II's
// 798.11 pkts/sec and 883 kbs give ≈44 pkts/sec and ≈49 kbs per active
// player (the famous 40 kbs figure is the same bandwidth divided by the 22
// slots rather than the active mean).
type PerPlayer struct {
	PPS float64 // packets per second per active player
	Bps float64 // bits per second per active player
}

// PaperPerPlayer returns the budget derived from Tables I-II.
func PaperPerPlayer() PerPlayer {
	const meanPlayers = 18.05
	return PerPlayer{
		PPS: 798.11 / meanPlayers,
		Bps: 883e3 / meanPlayers,
	}
}

// Scale converts an occupancy series into aggregate packet-rate and
// bandwidth series under the paper's linear-in-players model.
func (p PerPlayer) Scale(occupancy []float64) (pps, bps []float64) {
	pps = make([]float64, len(occupancy))
	bps = make([]float64, len(occupancy))
	for i, n := range occupancy {
		pps[i] = n * p.PPS
		bps[i] = n * p.Bps
	}
	return pps, bps
}

// TheoreticalH returns the Hurst parameter an M/G/∞ occupancy process with
// Pareto(α) sessions converges to: H = (3−α)/2 for 1 < α < 2.
func TheoreticalH(alpha float64) float64 { return (3 - alpha) / 2 }

// ParetoSession returns a Pareto session-length sampler with the given
// shape and mean seconds: mean = xm·α/(α−1) ⇒ xm = mean·(α−1)/α.
func ParetoSession(alpha, mean float64) dist.Sampler {
	return dist.Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}

// SelfSimilarityResult compares heavy-tailed and exponential session
// populations under identical load.
type SelfSimilarityResult struct {
	// Heavy is the variance-time estimate for Pareto sessions; Exp for
	// exponential sessions of the same mean.
	Heavy, Exp hurst.Estimate
	// HeavyPoints/ExpPoints are the variance-time plots (Fig 5 style).
	HeavyPoints, ExpPoints []hurst.Point
	// Alpha is the Pareto shape; TheoryH its limit H = (3−α)/2.
	Alpha   float64
	TheoryH float64
	// MeanOccupancy of the heavy-tailed run, for sanity checks.
	MeanOccupancy float64
}

// SelfSimilarityExperiment runs the two populations and estimates H from
// each occupancy series using the paper's aggregated-variance method.
// alpha must be in (1, 2); meanSession is in seconds.
//
// The slope is fitted only at block sizes several times the session
// correlation time: below it even a short-range-dependent occupancy keeps
// variance across scales (the population analogue of the paper's own
// sub-50 ms and sub-30 min variance-time regions), so including those
// levels would inflate H for both processes and separate nothing.
func SelfSimilarityExperiment(cfg Config, alpha, meanSession float64) (SelfSimilarityResult, error) {
	if alpha <= 1 || alpha >= 2 {
		return SelfSimilarityResult{}, errors.New("population: alpha must be in (1, 2)")
	}
	heavyCfg := cfg
	heavyCfg.Session = ParetoSession(alpha, meanSession)
	expCfg := cfg
	expCfg.Seed = cfg.Seed + 1
	expCfg.Session = dist.Exponential{MeanV: meanSession}

	heavyOcc, err := Occupancy(heavyCfg)
	if err != nil {
		return SelfSimilarityResult{}, err
	}
	expOcc, err := Occupancy(expCfg)
	if err != nil {
		return SelfSimilarityResult{}, err
	}

	res := SelfSimilarityResult{Alpha: alpha, TheoryH: TheoreticalH(alpha)}
	for _, n := range heavyOcc {
		res.MeanOccupancy += n
	}
	res.MeanOccupancy /= float64(len(heavyOcc))

	levels := hurst.DefaultLevels(len(heavyOcc) / 8)
	res.HeavyPoints = hurst.VarianceTime(heavyOcc, levels)
	res.ExpPoints = hurst.VarianceTime(expOcc, levels)
	lo, hi := fitRange(levels, meanSession/cfg.Resolution.Seconds())
	if res.Heavy, err = hurst.EstimateFromPoints(res.HeavyPoints, lo, hi); err != nil {
		return res, err
	}
	if res.Exp, err = hurst.EstimateFromPoints(res.ExpPoints, lo, hi); err != nil {
		return res, err
	}
	return res, nil
}

// fitRange picks the block-size band for the slope fit: from a few times
// the session correlation time (in bins) up to the largest level that still
// averages over enough blocks.
func fitRange(levels []int, corrBins float64) (lo, hi int) {
	lo = int(4 * corrBins)
	if lo < 1 {
		lo = 1
	}
	hi = levels[len(levels)-1]
	if lo >= hi {
		lo = levels[0]
	}
	return lo, hi
}
