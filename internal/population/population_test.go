package population

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cstrace/internal/dist"
)

func baseConfig(seed uint64) Config {
	return Config{
		Seed:        seed,
		Duration:    6 * time.Hour,
		Warmup:      time.Hour,
		Resolution:  time.Second,
		ArrivalRate: 0.4,
		Session:     dist.Exponential{MeanV: 700},
	}
}

func TestOccupancySteadyStateMean(t *testing.T) {
	// M/G/∞: E[N] = λ·E[S] = 0.4 × 700 = 280, regardless of the session
	// distribution.
	occ, err := Occupancy(baseConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, n := range occ {
		mean += n
	}
	mean /= float64(len(occ))
	if mean < 260 || mean > 300 {
		t.Errorf("mean occupancy %.1f, want ≈280", mean)
	}
}

func TestOccupancyNeverNegative(t *testing.T) {
	occ, err := Occupancy(baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range occ {
		if n < 0 {
			t.Fatalf("bin %d negative: %f", i, n)
		}
	}
}

func TestOccupancyDeterministic(t *testing.T) {
	a, err := Occupancy(baseConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Occupancy(baseConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d differs: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestAddIntervalExactOverlap(t *testing.T) {
	bins := make([]float64, 10)
	// [1.5, 3.25) seconds over 1-second bins: 0.5 in bin 1, 1.0 in bin 2,
	// 0.25 in bin 3.
	addInterval(bins, 1, 1.5, 3.25)
	want := []float64{0, 0.5, 1, 0.25, 0, 0, 0, 0, 0, 0}
	for i := range bins {
		if math.Abs(bins[i]-want[i]) > 1e-12 {
			t.Errorf("bin %d = %f, want %f", i, bins[i], want[i])
		}
	}
}

func TestAddIntervalClipping(t *testing.T) {
	bins := make([]float64, 4)
	addInterval(bins, 1, -5, 2.5)     // starts before the window
	addInterval(bins, 1, 3.5, 100)    // ends after the window
	addInterval(bins, 1, -10, -1)     // entirely before
	addInterval(bins, 1, 50, 60)      // entirely after
	want := []float64{1, 1, 0.5, 0.5} // 2.5 s from first, 0.5 s from second
	for i := range bins {
		if math.Abs(bins[i]-want[i]) > 1e-12 {
			t.Errorf("bin %d = %f, want %f", i, bins[i], want[i])
		}
	}
}

func TestAddIntervalConservationProperty(t *testing.T) {
	// The accumulated time must equal the clipped interval length.
	f := func(a100, len100 uint16) bool {
		bins := make([]float64, 100)
		a := float64(a100)/100 - 20 // may start before the window
		b := a + float64(len100)/50
		addInterval(bins, 1, a, b)
		var sum float64
		for _, v := range bins {
			sum += v
		}
		ca, cb := math.Max(a, 0), math.Min(b, 100)
		want := math.Max(cb-ca, 0)
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Resolution = 0 },
		func(c *Config) { c.Warmup = -time.Second },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.Session = nil },
	}
	for i, mutate := range cases {
		c := baseConfig(1)
		mutate(&c)
		if _, err := Occupancy(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPaperPerPlayer(t *testing.T) {
	pp := PaperPerPlayer()
	// 798.11/18.05 ≈ 44.2 pps; 883e3/18.05 ≈ 48.9 kbs.
	if pp.PPS < 43 || pp.PPS > 46 {
		t.Errorf("PPS = %.1f", pp.PPS)
	}
	if pp.Bps < 47e3 || pp.Bps > 50e3 {
		t.Errorf("Bps = %.0f", pp.Bps)
	}
	pps, bps := pp.Scale([]float64{0, 1, 22})
	if pps[0] != 0 || bps[0] != 0 {
		t.Error("zero players must scale to zero traffic")
	}
	if math.Abs(pps[2]/pps[1]-22) > 1e-9 {
		t.Error("scaling not linear")
	}
}

func TestTheoreticalH(t *testing.T) {
	if h := TheoreticalH(1.5); h != 0.75 {
		t.Errorf("H(1.5) = %f", h)
	}
	if h := TheoreticalH(2); h != 0.5 {
		t.Errorf("H(2) = %f", h)
	}
}

func TestSelfSimilarityExperiment(t *testing.T) {
	// The headline: heavy-tailed sessions make the population long-range
	// dependent; exponential sessions do not. Uses a fixed seed; the
	// assertion bands are wide enough to be robust to the estimator's
	// finite-sample noise but strict enough to separate the two regimes.
	cfg := baseConfig(7)
	cfg.Duration = 96 * time.Hour
	cfg.Warmup = 4 * time.Hour
	cfg.Resolution = 30 * time.Second
	res, err := SelfSimilarityExperiment(cfg, 1.4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.TheoryH != 0.8 {
		t.Errorf("TheoryH = %f, want 0.8", res.TheoryH)
	}
	// E[N] = λ·E[S] = 0.4 × 300 = 120; the Pareto sample mean converges
	// slowly, so the band is generous.
	if res.MeanOccupancy < 70 || res.MeanOccupancy > 200 {
		t.Errorf("mean occupancy %.1f outside sane band", res.MeanOccupancy)
	}
	if res.Heavy.H < 0.65 {
		t.Errorf("heavy-tailed H = %.3f, want > 0.65 (long-range dependent)", res.Heavy.H)
	}
	if res.Exp.H > 0.65 {
		t.Errorf("exponential H = %.3f, want < 0.65 (short-range dependent)", res.Exp.H)
	}
	if res.Heavy.H <= res.Exp.H {
		t.Errorf("heavy H %.3f not above exp H %.3f", res.Heavy.H, res.Exp.H)
	}
	if len(res.HeavyPoints) == 0 || len(res.ExpPoints) == 0 {
		t.Error("variance-time plots missing")
	}
}

func TestSelfSimilarityRejectsBadAlpha(t *testing.T) {
	cfg := baseConfig(1)
	for _, alpha := range []float64{0.5, 1, 2, 3} {
		if _, err := SelfSimilarityExperiment(cfg, alpha, 300); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
}
