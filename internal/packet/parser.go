package packet

// Parser decodes an Ethernet frame into preallocated layers without
// allocating, in the manner of gopacket's DecodingLayerParser. It handles
// the stacks the trace tooling processes — Ethernet(+802.1Q)/IPv4 over UDP
// (game traffic), TCP (bulk/web baseline), ICMPv4 (probes) and ARP — and it
// is the hot path for bulk trace processing.
type Parser struct {
	Eth  Ethernet
	IP   IPv4
	UDP  UDP
	TCP  TCP
	ICMP ICMPv4
	ARP  ARP
	// AppPayload aliases into the most recent packet's application bytes.
	AppPayload []byte
}

// DecodeLayers parses data starting at the Ethernet layer, appending the
// types of successfully decoded layers to decoded (which is reset first).
// Decoding stops without error at the first layer type the parser does not
// handle; the undecoded remainder is left in AppPayload.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.AppPayload = nil

	if err := p.Eth.DecodeFromBytes(data); err != nil {
		return err
	}
	*decoded = append(*decoded, LayerTypeEthernet)
	switch p.Eth.NextLayerType() {
	case LayerTypeIPv4:
	case LayerTypeARP:
		if err := p.ARP.DecodeFromBytes(p.Eth.LayerPayload()); err != nil {
			return err
		}
		*decoded = append(*decoded, LayerTypeARP)
		return nil
	default:
		p.AppPayload = p.Eth.LayerPayload()
		return nil
	}

	if err := p.IP.DecodeFromBytes(p.Eth.LayerPayload()); err != nil {
		return err
	}
	*decoded = append(*decoded, LayerTypeIPv4)

	switch p.IP.NextLayerType() {
	case LayerTypeUDP:
		if err := p.UDP.DecodeFromBytes(p.IP.LayerPayload()); err != nil {
			return err
		}
		*decoded = append(*decoded, LayerTypeUDP)
		p.AppPayload = p.UDP.LayerPayload()
	case LayerTypeTCP:
		if err := p.TCP.DecodeFromBytes(p.IP.LayerPayload()); err != nil {
			return err
		}
		*decoded = append(*decoded, LayerTypeTCP)
		p.AppPayload = p.TCP.LayerPayload()
	case LayerTypeICMPv4:
		if err := p.ICMP.DecodeFromBytes(p.IP.LayerPayload()); err != nil {
			return err
		}
		*decoded = append(*decoded, LayerTypeICMPv4)
		p.AppPayload = p.ICMP.LayerPayload()
	default:
		p.AppPayload = p.IP.LayerPayload()
		return nil
	}
	if len(p.AppPayload) > 0 {
		*decoded = append(*decoded, LayerTypePayload)
	}
	return nil
}

// Serializer builds Ethernet/IPv4/UDP frames into a reusable buffer. Lengths
// and checksums are fixed up automatically, so callers only set addressing
// fields and the payload.
type Serializer struct {
	buf []byte
}

// Frame assembles a frame from the given layers and payload and returns a
// slice owned by the Serializer (valid until the next call).
//
// eth.EtherType, ip.TotalLen, ip.Protocol and udp.Length are set by Frame.
func (s *Serializer) Frame(eth *Ethernet, ip *IPv4, udp *UDP, payload []byte) ([]byte, error) {
	ethLen := eth.HeaderLen()
	total := ethLen + ip.HeaderLen() + udp.HeaderLen() + len(payload)
	if cap(s.buf) < total {
		s.buf = make([]byte, total)
	}
	b := s.buf[:total]

	eth.EtherType = EtherTypeIPv4
	ip.Protocol = IPProtoUDP
	ip.TotalLen = uint16(ip.HeaderLen() + udp.HeaderLen() + len(payload))
	udp.Length = uint16(udp.HeaderLen() + len(payload))

	if _, err := eth.SerializeTo(b); err != nil {
		return nil, err
	}
	if _, err := ip.SerializeTo(b[ethLen:]); err != nil {
		return nil, err
	}
	off := ethLen + ip.HeaderLen()
	if _, err := udp.SerializeTo(b[off:]); err != nil {
		return nil, err
	}
	copy(b[off+udp.HeaderLen():], payload)
	return b, nil
}

// TCPFrame assembles an Ethernet/IPv4/TCP frame, computing the TCP checksum
// over the pseudo-header. As with Frame, the returned slice is owned by the
// Serializer and valid until the next call.
//
// eth.EtherType, ip.TotalLen, ip.Protocol and tcp.Checksum are set here.
func (s *Serializer) TCPFrame(eth *Ethernet, ip *IPv4, tcp *TCP, payload []byte) ([]byte, error) {
	ethLen := eth.HeaderLen()
	total := ethLen + ip.HeaderLen() + tcp.HeaderLen() + len(payload)
	if cap(s.buf) < total {
		s.buf = make([]byte, total)
	}
	b := s.buf[:total]

	eth.EtherType = EtherTypeIPv4
	ip.Protocol = IPProtoTCP
	ip.TotalLen = uint16(ip.HeaderLen() + tcp.HeaderLen() + len(payload))

	if _, err := eth.SerializeTo(b); err != nil {
		return nil, err
	}
	if _, err := ip.SerializeTo(b[ethLen:]); err != nil {
		return nil, err
	}
	if err := tcp.ComputeChecksum(ip.Src, ip.Dst, payload); err != nil {
		return nil, err
	}
	off := ethLen + ip.HeaderLen()
	if _, err := tcp.SerializeTo(b[off:]); err != nil {
		return nil, err
	}
	copy(b[off+tcp.HeaderLen():], payload)
	return b, nil
}
