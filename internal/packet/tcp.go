package packet

import (
	"encoding/binary"
	"net/netip"
)

// IP protocol numbers for the transports the trace analysis distinguishes.
const (
	IPProtoICMPv4 = 1
	IPProtoTCP    = 6
)

// TCP is the transport layer of the bulk-transfer traffic the paper
// contrasts game traffic against (§IV-A: "the majority of traffic being
// carried in today's networks involve bulk data transfers using TCP").
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	// DataOffset is the header length in 32-bit words as decoded; it is
	// recomputed from Options on serialization.
	DataOffset                             uint8
	FIN, SYN, RST, PSH, ACK, URG, ECE, CWR bool
	Window                                 uint16
	Checksum                               uint16
	Urgent                                 uint16
	// Options holds the raw option bytes, already padded to a multiple of
	// four (the padding is part of the header on the wire).
	Options []byte

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerContents implements Layer.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// NextLayerType implements DecodingLayer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer. The checksum is stored but not
// verified here because verification needs the IP pseudo-header; call
// VerifyChecksum with the addresses from the enclosing IPv4 layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hdr := int(t.DataOffset) * 4
	if hdr < 20 || hdr > len(data) {
		return ErrBadLength
	}
	flags := data[13]
	t.FIN = flags&0x01 != 0
	t.SYN = flags&0x02 != 0
	t.RST = flags&0x04 != 0
	t.PSH = flags&0x08 != 0
	t.ACK = flags&0x10 != 0
	t.URG = flags&0x20 != 0
	t.ECE = flags&0x40 != 0
	t.CWR = flags&0x80 != 0
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[20:hdr]
	t.contents = data[:hdr]
	t.payload = data[hdr:]
	return nil
}

// HeaderLen returns the serialized header length: 20 bytes plus options
// padded to a multiple of four.
func (t *TCP) HeaderLen() int { return 20 + (len(t.Options)+3)/4*4 }

func (t *TCP) flagByte() byte {
	var f byte
	if t.FIN {
		f |= 0x01
	}
	if t.SYN {
		f |= 0x02
	}
	if t.RST {
		f |= 0x04
	}
	if t.PSH {
		f |= 0x08
	}
	if t.ACK {
		f |= 0x10
	}
	if t.URG {
		f |= 0x20
	}
	if t.ECE {
		f |= 0x40
	}
	if t.CWR {
		f |= 0x80
	}
	return f
}

// SerializeTo writes the header into b, which must have room (HeaderLen
// bytes). Options are zero-padded to a four-byte boundary and DataOffset is
// recomputed. The checksum is written as stored; use ComputeChecksum first
// for a valid one.
func (t *TCP) SerializeTo(b []byte) (int, error) {
	n := t.HeaderLen()
	if len(b) < n {
		return 0, ErrTruncated
	}
	if n > 60 {
		return 0, ErrBadLength // DataOffset is 4 bits: max 15 words
	}
	t.DataOffset = uint8(n / 4)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = t.DataOffset << 4
	b[13] = t.flagByte()
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[20:20+len(t.Options)], t.Options)
	for i := 20 + len(t.Options); i < n; i++ {
		b[i] = 0
	}
	return n, nil
}

// ComputeChecksum sets Checksum for the given pseudo-header addresses and
// payload, as it would appear on the wire.
func (t *TCP) ComputeChecksum(src, dst netip.Addr, payload []byte) error {
	t.Checksum = 0
	buf := make([]byte, t.HeaderLen()+len(payload))
	if _, err := t.SerializeTo(buf); err != nil {
		return err
	}
	copy(buf[t.HeaderLen():], payload)
	t.Checksum = TransportChecksum(src, dst, IPProtoTCP, buf)
	return nil
}

// VerifyChecksum reports whether the decoded segment's checksum is valid
// for the given pseudo-header addresses.
func (t *TCP) VerifyChecksum(src, dst netip.Addr) bool {
	seg := make([]byte, 0, len(t.contents)+len(t.payload))
	seg = append(seg, t.contents...)
	seg = append(seg, t.payload...)
	return TransportChecksum(src, dst, IPProtoTCP, seg) == 0
}

// TransportChecksum computes the Internet checksum of an IPv4 pseudo-header
// (src, dst, protocol, length) followed by the transport segment. A segment
// containing a correct embedded checksum yields zero.
func TransportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	var pseudo [12]byte
	s4 := src.As4()
	d4 := dst.As4()
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))

	var sum uint32
	for _, chunk := range [][]byte{pseudo[:], segment} {
		for len(chunk) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(chunk[:2]))
			chunk = chunk[2:]
		}
		if len(chunk) == 1 {
			sum += uint32(chunk[0]) << 8
		}
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// FlowFromTCPLayers extracts the TCP flow from decoded IPv4/TCP layers.
func FlowFromTCPLayers(ip *IPv4, tcp *TCP) Flow {
	return Flow{
		Src: Endpoint{Addr: ip.Src, Port: tcp.SrcPort},
		Dst: Endpoint{Addr: ip.Dst, Port: tcp.DstPort},
	}
}
