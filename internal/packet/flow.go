package packet

import (
	"fmt"
	"net/netip"
)

// Endpoint is a hashable transport endpoint: an IPv4 address and UDP port.
// Endpoints are comparable and usable as map keys, in the manner of
// gopacket's Endpoint.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String renders "a.b.c.d:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow is a directed (src, dst) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

// NewFlow builds a flow from source to destination.
func NewFlow(src, dst Endpoint) Flow { return Flow{Src: src, Dst: dst} }

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src -> dst".
func (f Flow) String() string { return f.Src.String() + " -> " + f.Dst.String() }

// FastHash returns a symmetric non-cryptographic hash: f and f.Reverse()
// hash identically, so bidirectional traffic load-balances to the same
// bucket (the property gopacket documents for its Flow.FastHash).
func (f Flow) FastHash() uint64 {
	a := f.Src.hash()
	b := f.Dst.hash()
	// Combine symmetrically: unordered pair.
	return mix(a^b) ^ mix(a+b)
}

func (e Endpoint) hash() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	if e.Addr.Is4() {
		a4 := e.Addr.As4()
		for _, c := range a4 {
			h = (h ^ uint64(c)) * 1099511628211
		}
	}
	h = (h ^ uint64(e.Port&0xff)) * 1099511628211
	h = (h ^ uint64(e.Port>>8)) * 1099511628211
	return h
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// FlowFromLayers extracts the UDP flow from decoded IPv4/UDP layers.
func FlowFromLayers(ip *IPv4, udp *UDP) Flow {
	return Flow{
		Src: Endpoint{Addr: ip.Src, Port: udp.SrcPort},
		Dst: Endpoint{Addr: ip.Dst, Port: udp.DstPort},
	}
}
