package packet

import (
	"encoding/binary"
	"net/netip"
)

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an Ethernet/IPv4 ARP message (the only combination the capture
// link carries: hardware type 1, protocol type 0x0800, 6/4 byte addresses).
type ARP struct {
	Operation uint16
	SenderMAC MAC
	SenderIP  netip.Addr
	TargetMAC MAC
	TargetIP  netip.Addr

	contents []byte
}

// arpLen is the fixed message size for the Ethernet/IPv4 combination.
const arpLen = 28

// LayerType implements Layer.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// LayerContents implements Layer.
func (a *ARP) LayerContents() []byte { return a.contents }

// LayerPayload implements Layer. ARP carries no payload.
func (a *ARP) LayerPayload() []byte { return nil }

// NextLayerType implements DecodingLayer.
func (a *ARP) NextLayerType() LayerType { return LayerTypeNone }

// DecodeFromBytes implements DecodingLayer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < arpLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || // hardware: Ethernet
		binary.BigEndian.Uint16(data[2:4]) != EtherTypeIPv4 ||
		data[4] != 6 || data[5] != 4 {
		return ErrBadLength
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	a.contents = data[:arpLen]
	return nil
}

// HeaderLen returns the serialized message length.
func (a *ARP) HeaderLen() int { return arpLen }

// SerializeTo writes the message into b, which must have room (HeaderLen
// bytes).
func (a *ARP) SerializeTo(b []byte) (int, error) {
	if len(b) < arpLen {
		return 0, ErrTruncated
	}
	if !a.SenderIP.Is4() || !a.TargetIP.Is4() {
		return 0, ErrBadVersion
	}
	binary.BigEndian.PutUint16(b[0:2], 1)
	binary.BigEndian.PutUint16(b[2:4], EtherTypeIPv4)
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Operation)
	copy(b[8:14], a.SenderMAC[:])
	sip := a.SenderIP.As4()
	copy(b[14:18], sip[:])
	copy(b[18:24], a.TargetMAC[:])
	tip := a.TargetIP.As4()
	copy(b[24:28], tip[:])
	return arpLen, nil
}
