package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func mkTCPFrame(t *testing.T, tcp *TCP, payload []byte) []byte {
	t.Helper()
	var s Serializer
	eth := &Ethernet{
		DstMAC: MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55},
		SrcMAC: MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
	}
	ip := &IPv4{
		TTL: 64,
		Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst: netip.AddrFrom4([4]byte{192, 168, 1, 2}),
	}
	frame, err := s.TCPFrame(eth, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func TestTCPRoundTrip(t *testing.T) {
	in := &TCP{
		SrcPort: 3456, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		PSH: true, ACK: true,
		Window: 8760,
	}
	payload := []byte("GET / HTTP/1.0\r\n\r\n")
	frame := mkTCPFrame(t, in, payload)

	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded = %v, want %v", decoded, want)
		}
	}
	got := p.TCP
	if got.SrcPort != in.SrcPort || got.DstPort != in.DstPort {
		t.Errorf("ports = %d->%d, want %d->%d", got.SrcPort, got.DstPort, in.SrcPort, in.DstPort)
	}
	if got.Seq != in.Seq || got.Ack != in.Ack {
		t.Errorf("seq/ack = %x/%x, want %x/%x", got.Seq, got.Ack, in.Seq, in.Ack)
	}
	if !got.PSH || !got.ACK || got.SYN || got.FIN || got.RST || got.URG {
		t.Errorf("flags wrong: %+v", got)
	}
	if got.Window != in.Window {
		t.Errorf("window = %d, want %d", got.Window, in.Window)
	}
	if !bytes.Equal(p.AppPayload, payload) {
		t.Errorf("payload = %q, want %q", p.AppPayload, payload)
	}
	if !got.VerifyChecksum(p.IP.Src, p.IP.Dst) {
		t.Error("checksum does not verify")
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	in := &TCP{SrcPort: 1, DstPort: 2, SYN: true, Window: 1024}
	frame := mkTCPFrame(t, in, []byte("abc"))
	// Flip one payload bit.
	frame[len(frame)-1] ^= 0x01

	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	if p.TCP.VerifyChecksum(p.IP.Src, p.IP.Dst) {
		t.Error("corrupted segment passed checksum verification")
	}
}

func TestTCPOptionsPaddedAndRecovered(t *testing.T) {
	// MSS option (kind 2, len 4, value 1460) plus one NOP: 5 bytes of
	// options that must be padded to 8 on the wire.
	in := &TCP{
		SrcPort: 5, DstPort: 6, SYN: true,
		Options: []byte{2, 4, 0x05, 0xb4, 1},
	}
	if in.HeaderLen() != 28 {
		t.Fatalf("HeaderLen = %d, want 28", in.HeaderLen())
	}
	frame := mkTCPFrame(t, in, nil)

	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	if p.TCP.DataOffset != 7 {
		t.Errorf("DataOffset = %d, want 7", p.TCP.DataOffset)
	}
	wantOpts := []byte{2, 4, 0x05, 0xb4, 1, 0, 0, 0}
	if !bytes.Equal(p.TCP.Options, wantOpts) {
		t.Errorf("Options = %v, want %v", p.TCP.Options, wantOpts)
	}
}

func TestTCPTruncatedAndBadOffset(t *testing.T) {
	var tcp TCP
	if err := tcp.DecodeFromBytes(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("19-byte decode err = %v, want ErrTruncated", err)
	}
	// DataOffset below the minimum of 5 words.
	b := make([]byte, 20)
	b[12] = 4 << 4
	if err := tcp.DecodeFromBytes(b); err != ErrBadLength {
		t.Errorf("offset-4 decode err = %v, want ErrBadLength", err)
	}
	// DataOffset pointing past the segment.
	b[12] = 15 << 4
	if err := tcp.DecodeFromBytes(b); err != ErrBadLength {
		t.Errorf("offset-15 decode err = %v, want ErrBadLength", err)
	}
}

func TestTCPSerializeRejectsOversizedOptions(t *testing.T) {
	tcp := &TCP{Options: make([]byte, 44)} // header would exceed 60 bytes
	buf := make([]byte, 128)
	if _, err := tcp.SerializeTo(buf); err != ErrBadLength {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

// TestTCPQuickRoundTrip drives the codec with arbitrary field values and
// checks serialize→decode is the identity on every header field.
func TestTCPQuickRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, window, urgent uint16, flags uint8, payload []byte) bool {
		in := &TCP{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack,
			Window: window, Urgent: urgent,
			FIN: flags&1 != 0, SYN: flags&2 != 0, RST: flags&4 != 0,
			PSH: flags&8 != 0, ACK: flags&16 != 0, URG: flags&32 != 0,
			ECE: flags&64 != 0, CWR: flags&128 != 0,
		}
		src := netip.AddrFrom4([4]byte{10, 1, 2, 3})
		dst := netip.AddrFrom4([4]byte{10, 4, 5, 6})
		if err := in.ComputeChecksum(src, dst, payload); err != nil {
			return false
		}
		buf := make([]byte, in.HeaderLen()+len(payload))
		if _, err := in.SerializeTo(buf); err != nil {
			return false
		}
		copy(buf[in.HeaderLen():], payload)

		var out TCP
		if err := out.DecodeFromBytes(buf); err != nil {
			return false
		}
		return out.SrcPort == in.SrcPort && out.DstPort == in.DstPort &&
			out.Seq == in.Seq && out.Ack == in.Ack &&
			out.Window == in.Window && out.Urgent == in.Urgent &&
			out.FIN == in.FIN && out.SYN == in.SYN && out.RST == in.RST &&
			out.PSH == in.PSH && out.ACK == in.ACK && out.URG == in.URG &&
			out.ECE == in.ECE && out.CWR == in.CWR &&
			bytes.Equal(out.LayerPayload(), payload) &&
			out.VerifyChecksum(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowFromTCPLayers(t *testing.T) {
	ip := &IPv4{
		Src: netip.AddrFrom4([4]byte{1, 2, 3, 4}),
		Dst: netip.AddrFrom4([4]byte{5, 6, 7, 8}),
	}
	tcp := &TCP{SrcPort: 1234, DstPort: 80}
	f := FlowFromTCPLayers(ip, tcp)
	if f.Src.Port != 1234 || f.Dst.Port != 80 {
		t.Errorf("flow = %v", f)
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Error("FastHash not symmetric")
	}
}
