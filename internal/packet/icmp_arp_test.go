package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestICMPv4EchoRoundTrip(t *testing.T) {
	in := &ICMPv4{Type: ICMPv4TypeEchoRequest, ID: 0x1234, Seq: 7}
	payload := []byte("ping payload")
	buf := make([]byte, in.HeaderLen()+len(payload))
	if _, err := in.SerializeTo(buf, payload); err != nil {
		t.Fatal(err)
	}
	copy(buf[in.HeaderLen():], payload)

	var out ICMPv4
	if err := out.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Code != in.Code || out.ID != in.ID || out.Seq != in.Seq {
		t.Errorf("decoded %+v, want %+v", out, in)
	}
	if !bytes.Equal(out.LayerPayload(), payload) {
		t.Errorf("payload = %q", out.LayerPayload())
	}
}

func TestICMPv4RejectsCorruption(t *testing.T) {
	in := &ICMPv4{Type: ICMPv4TypeEchoReply, ID: 1, Seq: 2}
	buf := make([]byte, 8)
	if _, err := in.SerializeTo(buf, nil); err != nil {
		t.Fatal(err)
	}
	buf[4] ^= 0xff
	var out ICMPv4
	if err := out.DecodeFromBytes(buf); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
	if err := out.DecodeFromBytes(buf[:7]); err != ErrTruncated {
		t.Errorf("short err = %v, want ErrTruncated", err)
	}
}

func TestICMPv4QuickRoundTrip(t *testing.T) {
	f := func(typ, code uint8, id, seq uint16, payload []byte) bool {
		in := &ICMPv4{Type: typ, Code: code, ID: id, Seq: seq}
		buf := make([]byte, 8+len(payload))
		if _, err := in.SerializeTo(buf, payload); err != nil {
			return false
		}
		copy(buf[8:], payload)
		var out ICMPv4
		if err := out.DecodeFromBytes(buf); err != nil {
			return false
		}
		return out.Type == typ && out.Code == code && out.ID == id &&
			out.Seq == seq && bytes.Equal(out.LayerPayload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestARPRoundTripThroughParser(t *testing.T) {
	in := &ARP{
		Operation: ARPRequest,
		SenderMAC: MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		SenderIP:  netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		TargetIP:  netip.AddrFrom4([4]byte{10, 0, 0, 2}),
	}
	eth := &Ethernet{
		DstMAC:    MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		SrcMAC:    in.SenderMAC,
		EtherType: EtherTypeARP,
	}
	frame := make([]byte, eth.HeaderLen()+in.HeaderLen())
	if _, err := eth.SerializeTo(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := in.SerializeTo(frame[eth.HeaderLen():]); err != nil {
		t.Fatal(err)
	}

	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[1] != LayerTypeARP {
		t.Fatalf("decoded = %v", decoded)
	}
	if p.ARP.Operation != ARPRequest || p.ARP.SenderIP != in.SenderIP || p.ARP.TargetIP != in.TargetIP {
		t.Errorf("ARP = %+v, want %+v", p.ARP, *in)
	}
}

func TestARPRejectsNonEthernetIPv4(t *testing.T) {
	var a ARP
	b := make([]byte, 28)
	b[1] = 1                // hardware type 1 ...
	b[3] = 0x08             // ... but protocol type 0x08xx wrong second byte below
	b[2], b[3] = 0x86, 0xdd // IPv6 ethertype
	b[4], b[5] = 6, 4
	if err := a.DecodeFromBytes(b); err != ErrBadLength {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
	if err := a.DecodeFromBytes(b[:27]); err != ErrTruncated {
		t.Errorf("short err = %v, want ErrTruncated", err)
	}
}

func TestICMPThroughIPv4Parser(t *testing.T) {
	icmp := &ICMPv4{Type: ICMPv4TypeEchoRequest, ID: 9, Seq: 1}
	payload := []byte("rtt probe")
	msg := make([]byte, 8+len(payload))
	if _, err := icmp.SerializeTo(msg, payload); err != nil {
		t.Fatal(err)
	}
	copy(msg[8:], payload)

	eth := &Ethernet{EtherType: EtherTypeIPv4}
	ip := &IPv4{
		TTL:      64,
		Protocol: IPProtoICMPv4,
		Src:      netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst:      netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		TotalLen: uint16(20 + len(msg)),
	}
	frame := make([]byte, eth.HeaderLen()+20+len(msg))
	if _, err := eth.SerializeTo(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := ip.SerializeTo(frame[eth.HeaderLen():]); err != nil {
		t.Fatal(err)
	}
	copy(frame[eth.HeaderLen()+20:], msg)

	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeICMPv4, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v, want %v", decoded, want)
	}
	if p.ICMP.ID != 9 || !bytes.Equal(p.AppPayload, payload) {
		t.Errorf("ICMP = %+v payload %q", p.ICMP, p.AppPayload)
	}
}
