package packet

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func ep(a, b, c, d byte, port uint16) Endpoint {
	return Endpoint{Addr: netip.AddrFrom4([4]byte{a, b, c, d}), Port: port}
}

func TestFlowBasics(t *testing.T) {
	f := NewFlow(ep(10, 0, 0, 1, 27005), ep(10, 0, 0, 2, 27015))
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Error("Reverse")
	}
	if f.String() != "10.0.0.1:27005 -> 10.0.0.2:27015" {
		t.Errorf("String = %q", f.String())
	}
	if f == r {
		t.Error("flow should not equal its reverse")
	}
	// Flows are comparable map keys.
	m := map[Flow]int{f: 1, r: 2}
	if m[f] != 1 || m[r] != 2 {
		t.Error("map keys")
	}
}

func TestFastHashSymmetry(t *testing.T) {
	f := func(a, b, c, d byte, p1, p2 uint16) bool {
		fl := NewFlow(ep(a, b, c, d, p1), ep(d, a, b, c, p2))
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFastHashSpreads(t *testing.T) {
	// Distinct flows should rarely collide in the low bits used for
	// load balancing.
	buckets := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		f := NewFlow(
			ep(10, byte(i>>8), byte(i), 1, uint16(20000+i)),
			ep(192, 168, 0, 1, 27015),
		)
		buckets[f.FastHash()&0x7]++
	}
	for b, n := range buckets {
		if n < 4096/8/2 || n > 4096/8*2 {
			t.Errorf("bucket %d has %d flows; poor spread", b, n)
		}
	}
}

func TestFlowFromLayers(t *testing.T) {
	ip := &IPv4{
		Src: netip.AddrFrom4([4]byte{1, 2, 3, 4}),
		Dst: netip.AddrFrom4([4]byte{5, 6, 7, 8}),
	}
	udp := &UDP{SrcPort: 1000, DstPort: 500}
	f := FlowFromLayers(ip, udp)
	if f.Src != ep(1, 2, 3, 4, 1000) || f.Dst != ep(5, 6, 7, 8, 500) {
		t.Errorf("flow = %v", f)
	}
}

func TestEndpointString(t *testing.T) {
	e := ep(192, 168, 1, 10, 27015)
	if e.String() != "192.168.1.10:27015" {
		t.Errorf("String = %q", e.String())
	}
}
