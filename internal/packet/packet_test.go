package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func mkFrame(t *testing.T, vlan bool, payload []byte) []byte {
	t.Helper()
	var s Serializer
	eth := &Ethernet{
		DstMAC:  MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55},
		SrcMAC:  MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		HasVLAN: vlan,
		VLANID:  42,
	}
	ip := &IPv4{
		TTL: 64,
		Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst: netip.AddrFrom4([4]byte{192, 168, 1, 2}),
	}
	udp := &UDP{SrcPort: 27005, DstPort: 27015}
	frame, err := s.Frame(eth, ip, udp, payload)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func TestRoundTrip(t *testing.T) {
	payload := []byte("usercmd: forward+attack")
	frame := mkFrame(t, false, payload)

	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v", decoded)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded = %v, want %v", decoded, want)
		}
	}
	if !bytes.Equal(p.AppPayload, payload) {
		t.Errorf("payload = %q", p.AppPayload)
	}
	if p.UDP.SrcPort != 27005 || p.UDP.DstPort != 27015 {
		t.Errorf("ports = %d->%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if p.IP.Src != netip.AddrFrom4([4]byte{10, 0, 0, 1}) {
		t.Errorf("src = %v", p.IP.Src)
	}
	if p.IP.TTL != 64 {
		t.Errorf("ttl = %d", p.IP.TTL)
	}
	if p.Eth.HasVLAN {
		t.Error("unexpected VLAN tag")
	}
}

func TestRoundTripVLAN(t *testing.T) {
	payload := []byte{1, 2, 3}
	frame := mkFrame(t, true, payload)
	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	if !p.Eth.HasVLAN || p.Eth.VLANID != 42 {
		t.Errorf("VLAN = %v id=%d", p.Eth.HasVLAN, p.Eth.VLANID)
	}
	if !bytes.Equal(p.AppPayload, payload) {
		t.Errorf("payload = %v", p.AppPayload)
	}
	if len(frame) != 18+20+8+3 {
		t.Errorf("frame len = %d", len(frame))
	}
}

func TestRoundTripProperty(t *testing.T) {
	var s Serializer
	var p Parser
	var decoded []LayerType
	f := func(payload []byte, srcPort, dstPort uint16, a, b, c, d byte, vlan bool) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		eth := &Ethernet{HasVLAN: vlan, VLANID: 7}
		ip := &IPv4{
			TTL: 128,
			Src: netip.AddrFrom4([4]byte{a, b, c, d}),
			Dst: netip.AddrFrom4([4]byte{d, c, b, a}),
		}
		udp := &UDP{SrcPort: srcPort, DstPort: dstPort}
		frame, err := s.Frame(eth, ip, udp, payload)
		if err != nil {
			return false
		}
		if err := p.DecodeLayers(frame, &decoded); err != nil {
			return false
		}
		return bytes.Equal(p.AppPayload, payload) &&
			p.UDP.SrcPort == srcPort && p.UDP.DstPort == dstPort &&
			p.IP.Src == ip.Src && p.IP.Dst == ip.Dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := mkFrame(t, false, []byte("hello"))
	var p Parser
	var decoded []LayerType
	// Any truncation point inside a header must produce an error, never a
	// panic or silent success.
	for cut := 0; cut < len(frame); cut++ {
		err := p.DecodeLayers(frame[:cut], &decoded)
		if cut < 14+20+8 && err == nil {
			t.Fatalf("cut=%d: want error", cut)
		}
	}
}

func TestDecodeCorruptChecksum(t *testing.T) {
	frame := mkFrame(t, false, []byte("hello"))
	frame[14+10] ^= 0xff // corrupt IP checksum
	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	frame := mkFrame(t, false, []byte("hi"))
	frame[14] = 0x65 // version 6
	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeNonIPv4StopsCleanly(t *testing.T) {
	frame := mkFrame(t, false, []byte("hi"))
	frame[12], frame[13] = 0x86, 0xdd // IPv6 ethertype (unhandled)
	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatalf("unknown next layer should not error: %v", err)
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeEthernet {
		t.Errorf("decoded = %v", decoded)
	}
	if len(p.AppPayload) == 0 {
		t.Error("remainder should land in AppPayload")
	}
}

func TestDecodeNonUDPStopsCleanly(t *testing.T) {
	frame := mkFrame(t, false, []byte("hi"))
	// Change protocol to GRE (which the parser does not handle) and fix
	// the header checksum.
	ihl := frame[14:]
	ihl[9] = 47
	ihl[10], ihl[11] = 0, 0
	ck := Checksum(ihl[:20])
	ihl[10], ihl[11] = byte(ck>>8), byte(ck)
	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(decoded) != 2 {
		t.Errorf("decoded = %v", decoded)
	}
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example: checksum of {0x0001, 0xf203, 0xf4f5, 0xf6f7}.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	got := Checksum(data)
	want := ^uint16(0xddf2)
	if got != want {
		t.Errorf("Checksum = %#04x, want %#04x", got, want)
	}
	// Odd-length input.
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Error("odd-length checksum")
	}
}

func TestChecksumSelfVerifyProperty(t *testing.T) {
	// Property: embedding the checksum makes the buffer sum to zero.
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		data[0], data[1] = 0, 0
		ck := Checksum(data)
		data[0], data[1] = byte(ck>>8), byte(ck)
		return Checksum(data) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLayerAccessors(t *testing.T) {
	frame := mkFrame(t, false, []byte("xyz"))
	var p Parser
	var decoded []LayerType
	if err := p.DecodeLayers(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(p.Eth.LayerContents()) != 14 {
		t.Error("eth contents")
	}
	if len(p.IP.LayerContents()) != 20 {
		t.Error("ip contents")
	}
	if len(p.UDP.LayerContents()) != 8 {
		t.Error("udp contents")
	}
	if got := p.UDP.LayerPayload(); string(got) != "xyz" {
		t.Errorf("udp payload = %q", got)
	}
	pl := Payload([]byte("xyz"))
	if pl.LayerType() != LayerTypePayload || pl.LayerPayload() != nil {
		t.Error("payload layer")
	}
}

func TestLayerTypeString(t *testing.T) {
	names := map[LayerType]string{
		LayerTypeNone: "None", LayerTypeEthernet: "Ethernet",
		LayerTypeIPv4: "IPv4", LayerTypeUDP: "UDP", LayerTypePayload: "Payload",
	}
	for lt, want := range names {
		if lt.String() != want {
			t.Errorf("%d.String() = %q, want %q", lt, lt.String(), want)
		}
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String() = %q", m.String())
	}
}

func BenchmarkDecodeLayers(b *testing.B) {
	var s Serializer
	eth := &Ethernet{}
	ip := &IPv4{TTL: 64, Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2})}
	udp := &UDP{SrcPort: 1, DstPort: 2}
	frame, _ := s.Frame(eth, ip, udp, make([]byte, 80))
	var p Parser
	decoded := make([]LayerType, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeLayers(frame, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}
