package packet

import (
	"testing"
	"testing/quick"
)

// TestDecodersNeverPanicOnRandomBytes drives every decoder with arbitrary
// input. Decoders must reject garbage with an error — never panic and never
// read out of bounds — because the capture path feeds them raw bytes from
// disk and from the wire.
func TestDecodersNeverPanicOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		var p Parser
		var decoded []LayerType
		_ = p.DecodeLayers(data, &decoded)

		var eth Ethernet
		_ = eth.DecodeFromBytes(data)
		var ip IPv4
		_ = ip.DecodeFromBytes(data)
		var udp UDP
		_ = udp.DecodeFromBytes(data)
		var tcp TCP
		_ = tcp.DecodeFromBytes(data)
		var icmp ICMPv4
		_ = icmp.DecodeFromBytes(data)
		var arp ARP
		_ = arp.DecodeFromBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodersNeverPanicOnTruncatedValidFrames is the nastier variant:
// structurally valid prefixes, every possible cut point.
func TestDecodersNeverPanicOnTruncatedValidFrames(t *testing.T) {
	frame := mkFrame(t, true, []byte("valid game payload 1234567890"))
	for cut := 0; cut <= len(frame); cut++ {
		var p Parser
		var decoded []LayerType
		_ = p.DecodeLayers(frame[:cut], &decoded)
	}
}
