// Package packet provides decoding and serialization for the protocol stack
// the trace consists of: Ethernet (optionally 802.1Q-tagged), IPv4 and UDP,
// with the game payload as the application layer.
//
// The API follows the shape of the gopacket library — layers expose their
// contents and payload, a zero-allocation Parser decodes a known stack into
// preallocated layer structs, and flows/endpoints give hashable src/dst
// identities — but is implemented entirely on the standard library.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer.
type LayerType uint8

const (
	LayerTypeNone LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeUDP
	LayerTypeTCP
	LayerTypeICMPv4
	LayerTypeARP
	LayerTypePayload
)

// String returns the layer name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeICMPv4:
		return "ICMPv4"
	case LayerTypeARP:
		return "ARP"
	case LayerTypePayload:
		return "Payload"
	}
	return "None"
}

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the layer.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries.
	LayerPayload() []byte
}

// DecodingLayer is a layer that can decode itself from bytes in place,
// allowing allocation-free parsing (gopacket's DecodingLayer).
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver. The receiver keeps
	// references into data; the caller must not mutate it while the layer
	// is in use.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of this layer's payload.
	NextLayerType() LayerType
}

// Common decode errors.
var (
	ErrTruncated   = errors.New("packet: truncated layer")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadLength   = errors.New("packet: bad length field")
)

// EtherType values used in the trace.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
)

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is the link layer. The capture link the paper's byte accounting
// implies was 802.1Q-tagged; HasVLAN/VLANID carry the tag when present.
type Ethernet struct {
	DstMAC, SrcMAC MAC
	EtherType      uint16
	HasVLAN        bool
	VLANID         uint16 // 12-bit VLAN identifier
	VLANPriority   uint8  // 3-bit PCP

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerContents implements Layer.
func (e *Ethernet) LayerContents() []byte { return e.contents }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeARP:
		return LayerTypeARP
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < 14 {
		return ErrTruncated
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	et := binary.BigEndian.Uint16(data[12:14])
	hdr := 14
	e.HasVLAN = false
	e.VLANID = 0
	e.VLANPriority = 0
	if et == EtherTypeVLAN {
		if len(data) < 18 {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(data[14:16])
		e.HasVLAN = true
		e.VLANPriority = uint8(tci >> 13)
		e.VLANID = tci & 0x0fff
		et = binary.BigEndian.Uint16(data[16:18])
		hdr = 18
	}
	e.EtherType = et
	e.contents = data[:hdr]
	e.payload = data[hdr:]
	return nil
}

// HeaderLen returns the serialized header length.
func (e *Ethernet) HeaderLen() int {
	if e.HasVLAN {
		return 18
	}
	return 14
}

// SerializeTo writes the header into b, which must have room (HeaderLen
// bytes). It returns the number of bytes written.
func (e *Ethernet) SerializeTo(b []byte) (int, error) {
	n := e.HeaderLen()
	if len(b) < n {
		return 0, ErrTruncated
	}
	copy(b[0:6], e.DstMAC[:])
	copy(b[6:12], e.SrcMAC[:])
	if e.HasVLAN {
		binary.BigEndian.PutUint16(b[12:14], EtherTypeVLAN)
		tci := uint16(e.VLANPriority)<<13 | e.VLANID&0x0fff
		binary.BigEndian.PutUint16(b[14:16], tci)
		binary.BigEndian.PutUint16(b[16:18], e.EtherType)
	} else {
		binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	}
	return n, nil
}

// IPv4 is the network layer (no options support; game traffic never uses
// them).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr

	contents []byte
	payload  []byte
}

// IPProtoUDP is the IPv4 protocol number for UDP.
const IPProtoUDP = 17

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerContents implements Layer.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtoUDP:
		return LayerTypeUDP
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoICMPv4:
		return LayerTypeICMPv4
	}
	return LayerTypePayload
}

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrTruncated
	}
	if v := data[0] >> 4; v != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return ErrTruncated
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if int(ip.TotalLen) < ihl || int(ip.TotalLen) > len(data) {
		return ErrBadLength
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	ip.contents = data[:ihl]
	ip.payload = data[ihl:ip.TotalLen]
	return nil
}

// HeaderLen returns the serialized header length (always 20: no options).
func (ip *IPv4) HeaderLen() int { return 20 }

// SerializeTo writes the header into b with a freshly computed checksum.
// TotalLen must already be set (header + payload length).
func (ip *IPv4) SerializeTo(b []byte) (int, error) {
	if len(b) < 20 {
		return 0, ErrTruncated
	}
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return 0, errors.New("packet: IPv4.SerializeTo: src/dst must be IPv4 addresses")
	}
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	ip.Checksum = Checksum(b[:20])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return 20, nil
}

// UDP is the transport layer.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerContents implements Layer.
func (u *UDP) LayerContents() []byte { return u.contents }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// NextLayerType implements DecodingLayer.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < 8 || int(u.Length) > len(data) {
		return ErrBadLength
	}
	u.contents = data[:8]
	u.payload = data[8:u.Length]
	return nil
}

// HeaderLen returns the serialized header length.
func (u *UDP) HeaderLen() int { return 8 }

// SerializeTo writes the header into b. Length must already be set
// (8 + payload). The checksum is left as stored (0 = none), matching the
// common configuration for latency-sensitive UDP.
func (u *UDP) SerializeTo(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, ErrTruncated
	}
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return 8, nil
}

// Payload is the application layer: raw bytes.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents implements Layer.
func (p Payload) LayerContents() []byte { return p }

// LayerPayload implements Layer.
func (p Payload) LayerPayload() []byte { return nil }

// Checksum computes the 16-bit one's-complement Internet checksum of data.
// A buffer containing a correct embedded checksum sums to zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
