package packet

import "encoding/binary"

// ICMPv4 message types used by the analysis tooling (echo probes measure the
// client RTTs the provisioning model consumes; unreachables show up around
// the trace's network outages).
const (
	ICMPv4TypeEchoReply          = 0
	ICMPv4TypeDestinationUnreach = 3
	ICMPv4TypeEchoRequest        = 8
	ICMPv4TypeTimeExceeded       = 11
)

// ICMPv4 is a control message. For echo request/reply, ID and Seq carry the
// identifier and sequence number; for other types they hold the second
// header word verbatim.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16
	Seq      uint16

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (i *ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// LayerContents implements Layer.
func (i *ICMPv4) LayerContents() []byte { return i.contents }

// LayerPayload implements Layer.
func (i *ICMPv4) LayerPayload() []byte { return i.payload }

// NextLayerType implements DecodingLayer.
func (i *ICMPv4) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements DecodingLayer. Unlike the transports, the ICMP
// checksum covers only the message itself, so it is verified here.
func (i *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrTruncated
	}
	if Checksum(data) != 0 {
		return ErrBadChecksum
	}
	i.Type = data[0]
	i.Code = data[1]
	i.Checksum = binary.BigEndian.Uint16(data[2:4])
	i.ID = binary.BigEndian.Uint16(data[4:6])
	i.Seq = binary.BigEndian.Uint16(data[6:8])
	i.contents = data[:8]
	i.payload = data[8:]
	return nil
}

// HeaderLen returns the serialized header length.
func (i *ICMPv4) HeaderLen() int { return 8 }

// SerializeTo writes the header into b with Checksum computed over the
// header and payload (the payload must be appended to the same buffer by
// the caller before transmission; pass it here for the checksum).
func (i *ICMPv4) SerializeTo(b []byte, payload []byte) (int, error) {
	if len(b) < 8 {
		return 0, ErrTruncated
	}
	b[0] = i.Type
	b[1] = i.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], i.ID)
	binary.BigEndian.PutUint16(b[6:8], i.Seq)
	msg := make([]byte, 0, 8+len(payload))
	msg = append(msg, b[:8]...)
	msg = append(msg, payload...)
	i.Checksum = Checksum(msg)
	binary.BigEndian.PutUint16(b[2:4], i.Checksum)
	return 8, nil
}
