package sched

import (
	"sync"
	"testing"
)

func TestAcquireBoundsAndFloor(t *testing.T) {
	b := NewBudget(4)
	if b.Total() != 4 || b.Free() != 4 {
		t.Fatalf("fresh budget: total %d free %d", b.Total(), b.Free())
	}
	l1 := b.Acquire(3)
	if l1.Workers() != 3 || b.Free() != 1 {
		t.Fatalf("acquire 3: got %d workers, %d free", l1.Workers(), b.Free())
	}
	l2 := b.Acquire(3)
	if l2.Workers() != 1 || b.Free() != 0 {
		t.Fatalf("acquire over free share: got %d workers, %d free", l2.Workers(), b.Free())
	}
	// Exhausted: floor grant of one, uncharged.
	l3 := b.Acquire(2)
	if l3.Workers() != 1 {
		t.Fatalf("exhausted budget must floor-grant 1, got %d", l3.Workers())
	}
	if b.Free() != 0 {
		t.Fatalf("floor grant must not be charged, free %d", b.Free())
	}
	l3.Release()
	if b.Free() != 0 {
		t.Fatalf("releasing a floor grant must not inflate the pool, free %d", b.Free())
	}
	l1.Release()
	l1.Release() // idempotent
	if b.Free() != 3 {
		t.Fatalf("after releasing 3: free %d", b.Free())
	}
	l2.Release()
	if b.Free() != 4 {
		t.Fatalf("fully released: free %d", b.Free())
	}
}

func TestAcquireWantClamp(t *testing.T) {
	b := NewBudget(8)
	if got := b.Acquire(0).Workers(); got != 1 {
		t.Fatalf("want 0 should ask for 1, got %d", got)
	}
	if got := b.Acquire(-5).Workers(); got != 1 {
		t.Fatalf("want -5 should ask for 1, got %d", got)
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{8, 3, []int{3, 3, 2}},
		{2, 4, []int{1, 1, 1, 1}}, // every member gets at least one
		{4, 4, []int{1, 1, 1, 1}},
		{7, 2, []int{4, 3}},
		{0, 2, []int{1, 1}},
	}
	for _, c := range cases {
		got := Split(c.n, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("Split(%d,%d) = %v", c.n, c.k, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Split(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
	}
	if Split(4, 0) != nil {
		t.Fatal("Split with k=0 should be nil")
	}
}

func TestParseWorkers(t *testing.T) {
	if n, err := ParseWorkers("auto"); err != nil || n != Auto {
		t.Fatalf("auto: %d %v", n, err)
	}
	if n, err := ParseWorkers("4"); err != nil || n != 4 {
		t.Fatalf("4: %d %v", n, err)
	}
	if n, err := ParseWorkers("0"); err != nil || n != 0 {
		t.Fatalf("0: %d %v", n, err)
	}
	for _, bad := range []string{"-2", "x", "", "1.5"} {
		if _, err := ParseWorkers(bad); err == nil {
			t.Fatalf("ParseWorkers(%q) should fail", bad)
		}
	}
}

func TestConcurrentAccountingBalances(t *testing.T) {
	b := NewBudget(6)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l := b.Acquire(want)
				if l.Workers() < 1 {
					t.Error("grant below 1")
				}
				l.Release()
			}
		}(1 + i%5)
	}
	wg.Wait()
	if b.Free() != 6 {
		t.Fatalf("tokens leaked: free %d of 6", b.Free())
	}
}
