// Package sched is the process-wide worker budget: one shared pool of
// worker tokens that every parallel stage — generator fill workers, trace
// writer compression workers, sharded collector groups, scenario fleets —
// draws from, instead of each stage independently assuming it owns
// GOMAXPROCS.
//
// The problem it solves is compositional: a fleet run of N servers where
// every server sizes its fill stage to GOMAXPROCS, the writer sizes its
// compression pool to GOMAXPROCS, and the aggregate suite shards to
// GOMAXPROCS launches N+2 machines' worth of goroutines on one machine.
// None of that is incorrect — every worker-count knob in this repo is
// byte-deterministic — but the oversubscription costs real throughput in
// scheduler churn and cache pressure. With a budget, concurrent stages
// split the hardware once, at acquisition time.
//
// Worker counts never affect results, only speed, so the budget is
// deliberately forgiving: Acquire always grants at least one worker even
// when the pool is exhausted (a floor grant oversubscribes by one rather
// than deadlocking or failing), and nothing blocks. The accounting exists
// to make "auto" settings add up to the machine, not to enforce a hard
// cap.
package sched

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Auto is the sentinel worker count meaning "resolve from the process
// budget". Config knobs that accept it (gamesim.Config.Workers,
// trace.Writer.Workers, cstrace.Config.Parallelism, ...) replace it with a
// grant from Default at run start and release the grant when the run ends.
const Auto = -1

// Budget is a pool of worker tokens. The zero value is not ready; use
// NewBudget (or the shared Default).
type Budget struct {
	mu    sync.Mutex
	fixed int // 0 = track runtime.GOMAXPROCS dynamically
	used  int
}

// NewBudget returns a budget of the given size. total <= 0 sizes the
// budget to runtime.GOMAXPROCS, re-sampled at every acquisition so tests
// (and applications) that change GOMAXPROCS see the budget follow.
func NewBudget(total int) *Budget {
	if total < 0 {
		total = 0
	}
	return &Budget{fixed: total}
}

// procBudget is the shared process-wide budget, sized to GOMAXPROCS.
var procBudget = NewBudget(0)

// Default returns the shared process-wide budget that Auto knobs resolve
// against.
func Default() *Budget { return procBudget }

// Total returns the budget's size.
func (b *Budget) Total() int {
	if b.fixed > 0 {
		return b.fixed
	}
	return runtime.GOMAXPROCS(0)
}

// Free returns the currently unacquired share of the budget (never
// negative; floor grants do not drive it below zero).
func (b *Budget) Free() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.free()
}

func (b *Budget) free() int {
	if f := b.Total() - b.used; f > 0 {
		return f
	}
	return 0
}

// Lease is one acquisition from a budget. Workers is the granted count;
// Release returns the tokens. Release is idempotent.
type Lease struct {
	b       *Budget
	n       int // granted worker count, >= 1
	charged int // tokens actually debited (0 for a floor grant)
}

// Workers returns the granted worker count (always >= 1).
func (l *Lease) Workers() int { return l.n }

// Release returns the lease's tokens to the budget.
func (l *Lease) Release() {
	if l.charged > 0 {
		l.b.mu.Lock()
		l.b.used -= l.charged
		l.b.mu.Unlock()
		l.charged = 0
	}
}

// Acquire grants up to want workers, bounded by the budget's free share.
// The grant is never zero: an exhausted budget yields a floor grant of one
// worker that is not charged against the pool — worker counts change
// speed, never results, so starving a stage entirely is the only wrong
// answer. want < 1 asks for one worker.
func (b *Budget) Acquire(want int) *Lease {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	grant := b.free()
	if grant > want {
		grant = want
	}
	l := &Lease{b: b, n: grant, charged: grant}
	if grant < 1 {
		l.n = 1 // floor grant: uncharged single worker
	}
	b.used += l.charged
	return l
}

// Split divides n workers across k members as evenly as possible, every
// member getting at least one: the deterministic fair division scenario
// fleets use to hand the generation share of the budget to their servers.
// Members earlier in the slice receive the remainder.
func Split(n, k int) []int {
	if k <= 0 {
		return nil
	}
	out := make([]int, k)
	if n < k {
		n = k
	}
	q, r := n/k, n%k
	for i := range out {
		out[i] = q
		if i < r {
			out[i]++
		}
	}
	return out
}

// ParseWorkers parses a worker-count flag value: "auto" (any case) yields
// Auto, otherwise a non-negative integer.
func ParseWorkers(s string) (int, error) {
	if s == "auto" || s == "Auto" || s == "AUTO" {
		return Auto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sched: worker count %q (want \"auto\" or a non-negative integer)", s)
	}
	return n, nil
}
