package gamesim

import (
	"testing"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/trace"
)

// shortConfig returns a fast config for functional tests: a small server
// with quick maps and rounds.
func shortConfig(seed uint64, d time.Duration) Config {
	c := PaperConfig(seed)
	c.Duration = d
	c.Warmup = 0
	c.Outages = nil
	c.AttemptRate = 0.5 // fill the server fast
	c.DiurnalAmp = 0
	c.SessionMean = 300
	c.MapDuration = 5 * time.Minute
	c.MapChangePause = 10 * time.Second
	return c
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Slots = 0 },
		func(c *Config) { c.TickInterval = 0 },
		func(c *Config) { c.AttemptRate = 0 },
		func(c *Config) { c.SessionMean = 0 },
		func(c *Config) { c.Population = 0 },
		func(c *Config) { c.CmdRate = 0 },
		func(c *Config) { c.SnapMax = 0 },
		func(c *Config) { c.SnapMax = 70000 },
		func(c *Config) { c.MapDuration = 0 },
		func(c *Config) { c.RetryDelay = nil },
		func(c *Config) { c.InPayload = nil },
		func(c *Config) { c.Outages = []Outage{{At: -time.Second, Duration: time.Second}} },
		func(c *Config) { c.Outages = []Outage{{At: 0, Duration: 2 * PaperDuration}} },
	}
	for i, mut := range bad {
		c := PaperConfig(1)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := PaperConfig(1)
	if err := good.Validate(); err != nil {
		t.Errorf("PaperConfig should validate: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, int, uint64) {
		var n int
		var sum uint64
		h := trace.HandlerFunc(func(r trace.Record) {
			n++
			sum = sum*1099511628211 ^ uint64(r.T) ^ uint64(r.App)<<32 ^ uint64(r.Client)
		})
		st, err := Run(shortConfig(42, 10*time.Minute), h, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st, n, sum
	}
	s1, n1, h1 := run()
	s2, n2, h2 := run()
	if n1 != n2 || h1 != h2 {
		t.Errorf("same seed produced different traces: n=%d/%d hash=%x/%x", n1, n2, h1, h2)
	}
	if s1 != s2 {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", s1, s2)
	}

	var n3 int
	st3, err := Run(shortConfig(43, 10*time.Minute), trace.HandlerFunc(func(trace.Record) { n3++ }), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = st3
	if n3 == n1 {
		t.Log("different seeds produced same record count (possible but unlikely)")
	}
}

func TestBoundedDisorderAndRange(t *testing.T) {
	cfg := shortConfig(7, 8*time.Minute)
	var maxT, prev time.Duration
	var worst time.Duration
	_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		if r.T < 0 || r.T >= cfg.Duration {
			t.Fatalf("record time %v outside [0, %v)", r.T, cfg.Duration)
		}
		if d := prev - r.T; d > worst {
			worst = d
		}
		prev = r.T
		if r.T > maxT {
			maxT = r.T
		}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if worst > cfg.TickInterval {
		t.Errorf("stream disorder %v exceeds one tick (%v)", worst, cfg.TickInterval)
	}
	if maxT < cfg.Duration-2*time.Second {
		t.Errorf("traffic ends at %v, long before %v", maxT, cfg.Duration)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	cfg := shortConfig(3, 15*time.Minute)
	cfg.AttemptRate = 2 // hammer the server
	maxSeen := 0
	st, err := Run(cfg, nil, func(ev SessionEvent) {
		if ev.Players > maxSeen {
			maxSeen = ev.Players
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen > cfg.Slots {
		t.Errorf("player count reached %d, slots %d", maxSeen, cfg.Slots)
	}
	if st.MaxConcurrent != maxSeen {
		t.Errorf("MaxConcurrent=%d, events saw %d", st.MaxConcurrent, maxSeen)
	}
	if st.MaxConcurrent != cfg.Slots {
		t.Errorf("overloaded server should fill all %d slots, got %d", cfg.Slots, st.MaxConcurrent)
	}
	if st.Refused == 0 {
		t.Error("overloaded server should refuse connections")
	}
}

func TestAccountingIdentities(t *testing.T) {
	var in, out int64
	st, err := Run(shortConfig(11, 12*time.Minute), trace.HandlerFunc(func(r trace.Record) {
		if r.Dir == trace.In {
			in++
		} else {
			out++
		}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts != st.Established+st.Refused {
		t.Errorf("attempts %d != established %d + refused %d", st.Attempts, st.Established, st.Refused)
	}
	if st.PacketsIn != in || st.PacketsOut != out {
		t.Errorf("stats packets (%d,%d) != handler counts (%d,%d)", st.PacketsIn, st.PacketsOut, in, out)
	}
	if st.UniqueAttempting < st.UniqueEstablishing {
		t.Error("unique attempting must dominate unique establishing")
	}
	if st.Established > 0 && st.MeanSessionSec() <= 0 {
		t.Error("mean session must be positive")
	}
	if st.MeanPlayers() <= 0 || st.MeanPlayers() > float64(PaperConfig(1).Slots) {
		t.Errorf("mean players = %v", st.MeanPlayers())
	}
}

func TestTickPeriodicity(t *testing.T) {
	// The defining claim of the paper: outbound traffic is concentrated in
	// bursts at 50 ms boundaries, while inbound traffic is not.
	cfg := shortConfig(5, 5*time.Minute)
	var outAligned, outTotal, inAligned, inTotal float64
	_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		phase := r.T % cfg.TickInterval
		aligned := phase < 2*time.Millisecond
		if r.Dir == trace.Out {
			outTotal++
			if aligned {
				outAligned++
			}
		} else {
			inTotal++
			if aligned {
				inAligned++
			}
		}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if outTotal == 0 || inTotal == 0 {
		t.Fatal("no traffic generated")
	}
	if frac := outAligned / outTotal; frac < 0.9 {
		t.Errorf("only %.2f of outbound packets at tick boundaries, want >0.9", frac)
	}
	// Inbound should be roughly uniform over the tick: ~4% in a 2 ms slot.
	if frac := inAligned / inTotal; frac > 0.15 {
		t.Errorf("%.2f of inbound packets at tick boundaries; should be unsynchronized", frac)
	}
}

func TestDesyncAblationSpreadsBursts(t *testing.T) {
	sync := shortConfig(9, 3*time.Minute)
	desync := sync
	desync.DesynchronizeTicks = true

	peakToMean := func(cfg Config) float64 {
		bins := make([]float64, 0, 20000)
		_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
			if r.Dir != trace.Out {
				return
			}
			i := int(r.T / (10 * time.Millisecond))
			for len(bins) <= i {
				bins = append(bins, 0)
			}
			bins[i]++
		}), nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum, peak float64
		for _, b := range bins {
			sum += b
			if b > peak {
				peak = b
			}
		}
		if sum == 0 {
			t.Fatal("no outbound traffic")
		}
		return peak / (sum / float64(len(bins)))
	}
	ps := peakToMean(sync)
	pd := peakToMean(desync)
	if ps < 2*pd {
		t.Errorf("synchronized ticks should be far burstier at 10ms: sync peak/mean %.1f, desync %.1f", ps, pd)
	}
}

func TestOutageSilencesTrafficAndDropsPlayers(t *testing.T) {
	cfg := shortConfig(13, 10*time.Minute)
	cfg.Outages = []Outage{{At: 4 * time.Minute, Duration: 15 * time.Second}}
	oStart, oEnd := cfg.Outages[0].At, cfg.Outages[0].At+cfg.Outages[0].Duration

	var inOutage int
	minAfter := 1 << 30
	_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		if r.T >= oStart+cfg.TickInterval && r.T < oEnd {
			inOutage++
		}
	}), func(ev SessionEvent) {
		if ev.T >= oEnd && ev.T < oEnd+time.Second && ev.Players < minAfter {
			minAfter = ev.Players
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if inOutage > 0 {
		t.Errorf("%d packets during outage, want 0", inOutage)
	}
	if minAfter > 2 {
		t.Errorf("players right after outage bottom out at %d, want near 0 (mass disconnect)", minAfter)
	}
}

func TestMapChangeStopsSnapshots(t *testing.T) {
	cfg := shortConfig(17, 12*time.Minute)
	// First changeover: [5min, 5min+10s).
	pause0 := cfg.MapDuration
	pause1 := pause0 + cfg.MapChangePause
	var outInPause, inInPause, outBefore float64
	_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		// Handshake replies (connection rejects) legitimately continue
		// during the changeover; the claim is about game snapshots.
		if r.Kind != trace.KindGame {
			return
		}
		switch {
		case r.T >= pause0+cfg.TickInterval && r.T < pause1:
			if r.Dir == trace.Out {
				outInPause++
			} else {
				inInPause++
			}
		case r.T >= pause0-30*time.Second && r.T < pause0:
			if r.Dir == trace.Out {
				outBefore++
			}
		}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if outBefore == 0 {
		t.Fatal("no traffic before map change")
	}
	if outInPause > 0 {
		t.Errorf("server sent %v snapshots during changeover, want 0", outInPause)
	}
	if inInPause == 0 {
		t.Error("clients should keep trickling keepalives during changeover")
	}
}

func TestMapsPlayedCount(t *testing.T) {
	cfg := shortConfig(19, 21*time.Minute) // 5min maps + 10s pause
	st, err := Run(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Maps start at 0, ~5:10, ~10:20, ~15:30, ~20:40 => 5 plays.
	if st.MapsPlayed != 5 {
		t.Errorf("MapsPlayed = %d, want 5", st.MapsPlayed)
	}
}

func TestControlPlaneOnlyRunIsCheapAndEquivalent(t *testing.T) {
	// h=nil must produce identical session statistics to a full run.
	cfg := shortConfig(23, 10*time.Minute)
	full, err := Run(cfg, trace.HandlerFunc(func(trace.Record) {}), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := Run(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Attempts != ctrl.Attempts || full.Established != ctrl.Established ||
		full.Refused != ctrl.Refused || full.MapsPlayed != ctrl.MapsPlayed ||
		full.MaxConcurrent != ctrl.MaxConcurrent {
		t.Errorf("control-plane stats diverge:\nfull: %+v\nctrl: %+v", full, ctrl)
	}
	if ctrl.PacketsIn != 0 || ctrl.PacketsOut != 0 {
		t.Error("control-plane run should not count packets")
	}
}

func TestEventOrderingAndBalance(t *testing.T) {
	var last time.Duration
	connects, disconnects := 0, 0
	st, err := Run(shortConfig(29, 10*time.Minute), nil, func(ev SessionEvent) {
		if ev.T < last {
			t.Fatalf("event time went backwards: %v after %v", ev.T, last)
		}
		last = ev.T
		switch ev.Type {
		case EventConnect:
			connects++
		case EventDisconnect:
			disconnects++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if connects != st.Established {
		t.Errorf("connect events %d != established %d", connects, st.Established)
	}
	if disconnects > connects {
		t.Errorf("disconnects %d > connects %d", disconnects, connects)
	}
}

func TestNATExperimentConfig(t *testing.T) {
	c := NATExperimentConfig(1)
	if c.Duration != 30*time.Minute {
		t.Errorf("duration = %v", c.Duration)
	}
	if len(c.Outages) != 0 {
		t.Error("NAT experiment should have no outages")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDownloadTrafficPresent(t *testing.T) {
	cfg := shortConfig(31, 10*time.Minute)
	cfg.LogoDownloadProb = 1 // force downloads
	var dlOut, big int
	_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		if r.Kind == trace.KindDownload && r.Dir == trace.Out {
			dlOut++
			if int(r.App) == cfg.LogoPacket {
				big++
			}
		}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dlOut == 0 || big == 0 {
		t.Errorf("expected download packets (got %d, %d full-size)", dlOut, big)
	}
}

func TestZeroJitterStillRuns(t *testing.T) {
	cfg := shortConfig(37, time.Minute)
	cfg.CmdJitter = 0
	cfg.RoundDuration = dist.Constant{V: 120}
	if _, err := Run(cfg, trace.HandlerFunc(func(trace.Record) {}), nil); err != nil {
		t.Fatal(err)
	}
}
