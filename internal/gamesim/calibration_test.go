package gamesim

import (
	"math"
	"testing"
	"time"

	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// The paper's published aggregates (Tables I-III) and the tolerance the
// calibrated generator must meet. Table I quantities are checked on a
// control-plane-only full-week run (cheap); traffic rates on a 24-hour
// windowed run, normalized per player to factor out arrival stochasticity.
const (
	paperAttempts    = 24004
	paperEstablished = 16030
	paperUniqueAtt   = 8207
	paperUniqueEst   = 5886
	paperMaps        = 339
	paperMeanPlayers = 18.05 // 360.99 out-pps / 20 snapshots per player-second

	paperInPPSPerPlayer  = 437.12 / paperMeanPlayers // 24.2
	paperOutPPSPerPlayer = 360.99 / paperMeanPlayers // 20.0
	paperMeanIn          = 39.72
	paperMeanOut         = 129.51
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	rel := math.Abs(got-want) / want
	if rel > tol {
		t.Errorf("%s = %.2f, want %.2f (off by %.1f%%, tolerance %.0f%%)",
			name, got, want, rel*100, tol*100)
	} else {
		t.Logf("%s = %.2f (paper %.2f, off %.1f%%)", name, got, want, rel*100)
	}
}

func TestCalibrationTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full-week control-plane run")
	}
	st, err := Run(PaperConfig(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "attempts", float64(st.Attempts), paperAttempts, 0.12)
	within(t, "established", float64(st.Established), paperEstablished, 0.12)
	within(t, "refused", float64(st.Refused), paperAttempts-paperEstablished, 0.15)
	within(t, "unique attempting", float64(st.UniqueAttempting), paperUniqueAtt, 0.12)
	within(t, "unique establishing", float64(st.UniqueEstablishing), paperUniqueEst, 0.12)
	within(t, "maps played", float64(st.MapsPlayed), paperMaps, 0.02)
	within(t, "mean players", st.MeanPlayers(), paperMeanPlayers, 0.06)
	if st.MaxConcurrent != 22 {
		t.Errorf("a busy server must fill all 22 slots; max %d", st.MaxConcurrent)
	}
}

func TestCalibrationTrafficRates(t *testing.T) {
	if testing.Short() {
		t.Skip("24h traffic run")
	}
	cfg := PaperConfig(2)
	cfg.Duration = 24 * time.Hour
	cfg.Outages = nil

	var pktIn, pktOut, appIn, appOut int64
	st, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		if r.Dir == trace.In {
			pktIn++
			appIn += int64(r.App)
		} else {
			pktOut++
			appOut += int64(r.App)
		}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	players := st.MeanPlayers()
	sec := cfg.Duration.Seconds()

	within(t, "in pps per player", float64(pktIn)/sec/players, paperInPPSPerPlayer, 0.05)
	within(t, "out pps per player", float64(pktOut)/sec/players, paperOutPPSPerPlayer, 0.05)
	within(t, "mean in payload", float64(appIn)/float64(pktIn), paperMeanIn, 0.03)
	within(t, "mean out payload", float64(appOut)/float64(pktOut), paperMeanOut, 0.05)

	// The headline observation: scaled to the paper's mean player count, the
	// server consumes ~40 kbs per slot — the last-mile modem saturation.
	wire := float64(appIn+appOut) + float64(pktIn+pktOut)*units.WireOverhead
	bwAtPaperLoad := wire * 8 / sec * (paperMeanPlayers / players)
	within(t, "per-slot kbs at paper load", bwAtPaperLoad/1e3/22, 40.1, 0.06)
}

func TestCalibrationEliteTail(t *testing.T) {
	if testing.Short() {
		t.Skip("2h traffic run")
	}
	// Fig 11: the overwhelming majority of sessions sit at or below modem
	// rates; a handful of "l337" high-rate clients exceed 56 kbs.
	cfg := PaperConfig(3)
	cfg.Duration = 2 * time.Hour
	cfg.Outages = nil

	type flow struct {
		first, last time.Duration
		wire        int64
	}
	flows := map[uint32]*flow{}
	_, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		if r.Client == 0 {
			return
		}
		f := flows[r.Client]
		if f == nil {
			f = &flow{first: r.T}
			flows[r.Client] = f
		}
		f.last = r.T
		f.wire += int64(r.Wire())
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	var total, below, above int
	for _, f := range flows {
		d := (f.last - f.first).Seconds()
		if d < 30 {
			continue
		}
		total++
		bps := float64(f.wire) * 8 / d
		if bps < float64(units.ModemRate) {
			below++
		} else {
			above++
		}
	}
	if total < 50 {
		t.Fatalf("too few qualifying sessions: %d", total)
	}
	fracBelow := float64(below) / float64(total)
	if fracBelow < 0.95 {
		t.Errorf("%.1f%% of sessions below 56 kbs, want >95%% (modem saturation)", fracBelow*100)
	}
	if above == 0 {
		t.Error("expected a handful of high-rate sessions above the modem barrier")
	}
	t.Logf("%d sessions: %.1f%% below 56 kbs, %d above", total, fracBelow*100, above)
}
