package gamesim

import (
	"math"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/eventsim"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
)

// EventType classifies session lifecycle events.
type EventType uint8

const (
	// EventAttempt is a connection attempt reaching the server.
	EventAttempt EventType = iota
	// EventConnect is an accepted attempt (session established).
	EventConnect
	// EventRefuse is an attempt rejected for lack of a free slot.
	EventRefuse
	// EventDisconnect is a session ending (leave, kick or outage timeout).
	EventDisconnect
)

// SessionEvent reports one session lifecycle change.
type SessionEvent struct {
	T       time.Duration
	Type    EventType
	Session uint32 // established session id (0 for refused attempts)
	Client  uint32 // population identity (1-based)
	Players int    // active players after the event
}

// EventFunc receives session events in time order. It may be nil.
type EventFunc func(SessionEvent)

// Stats summarizes a completed run; it provides the raw numbers behind the
// paper's Table I.
type Stats struct {
	Duration           time.Duration
	MapsPlayed         int
	Attempts           int
	Established        int
	Refused            int
	UniqueAttempting   int
	UniqueEstablishing int
	MaxConcurrent      int
	TotalSessionTime   time.Duration // summed over established sessions
	PacketsIn          int64
	PacketsOut         int64
	AppBytesIn         int64
	AppBytesOut        int64
	PlayerSeconds      float64 // integral of active player count over time
}

// MeanSessionSec returns the average established session length in seconds.
func (s Stats) MeanSessionSec() float64 {
	if s.Established == 0 {
		return 0
	}
	return s.TotalSessionTime.Seconds() / float64(s.Established)
}

// MeanPlayers returns the time-average number of active players.
func (s Stats) MeanPlayers() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return s.PlayerSeconds / s.Duration.Seconds()
}

// Handshake payload sizes (bytes), modeled on the Half-Life connection
// exchange.
const (
	connectReqBytes  = 42
	connectOKBytes   = 110
	rejectBytes      = 36
	disconnectBytes  = 38
	keepaliveDivisor = 10 // command-rate reduction while the server changes maps
)

type player struct {
	session     uint32
	client      uint32
	elite       bool
	active      bool
	idx         int // position in the active slice
	connectedAt time.Duration

	nextCmd  time.Duration
	cmdGap   time.Duration
	nextSnap time.Duration // used by elites and the desync ablation
	snapGap  time.Duration

	counted bool // established during the recorded window

	dlOut     int // remaining logo bytes server -> client
	dlIn      int // remaining logo bytes client -> server
	dlNextOut time.Duration
	dlNextIn  time.Duration
}

type sim struct {
	cfg    Config
	h      trace.Handler
	cur    *tickPlan // emission window being planned
	ev     EventFunc
	kernel eventsim.Sim

	rng      *dist.RNG     // control-plane randomness
	schedRNG *dist.RNG     // schedule jitter (sequential; consumed by the planner)
	sizes    dist.Splitter // per-window payload-size streams (indexed by tick)
	roundRNG *dist.RNG     // round schedule (advanced only while generating traffic)
	zipf     *dist.Zipf

	players     []*player
	nextSession uint32
	nextTourist uint32
	paused      bool // map changeover in progress
	outage      bool
	warm        bool // recording has started

	window time.Duration // current emission window start

	roundStart time.Duration
	roundEnd   time.Duration
	roundLevel float64

	uniqueAttempt map[uint32]bool
	uniqueEst     map[uint32]bool
	lastCount     time.Duration // for PlayerSeconds integration

	stats Stats
}

// Run simulates the configured server, streaming every packet record to h
// (which may be nil to run only the session/control plane, e.g. to study
// Table I quantities quickly) and lifecycle events to ev (may be nil).
//
// Records arrive at h in strict time order, one block per tick window
// (downstream batch handlers see one slab per window instead of one virtual
// call per record). With cfg.Workers ≥ 2 the payload-size fill stage runs
// on worker goroutines and h is invoked from a single delivery goroutine —
// still one block per window, in window order, byte-identical to a serial
// run; ev keeps firing from the coordinating goroutine, so an EventFunc
// that shares state with h must tolerate the two running concurrently.
func Run(cfg Config, h trace.Handler, ev EventFunc) (Stats, error) {
	if cfg.Workers == sched.Auto {
		// Resolve the fill-stage share from the process budget for the
		// run's lifetime. Worker counts change speed, never output.
		lease := sched.Default().Acquire(sched.Default().Total())
		cfg.Workers = lease.Workers()
		defer lease.Release()
	}
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	s := &sim{
		cfg:           cfg,
		h:             h,
		ev:            ev,
		rng:           dist.NewRNG(cfg.Seed),
		uniqueAttempt: make(map[uint32]bool),
		uniqueEst:     make(map[uint32]bool),
	}
	s.schedRNG = s.rng.Split()
	s.roundRNG = s.rng.Split()
	// Key the per-window size streams off the schedule stream, not the
	// control-plane stream: the control plane consumes exactly the draws it
	// did before the traffic plane was batch-native, keeping session-level
	// behavior for a given seed stable across that refactor.
	s.sizes = s.schedRNG.NewSplitter()
	var err error
	s.zipf, err = dist.NewZipf(cfg.Population, cfg.PopularityExp)
	if err != nil {
		return Stats{}, err
	}

	s.warm = cfg.Warmup == 0
	if !s.warm {
		s.kernel.At(cfg.Warmup, func(now time.Duration) { s.startRecording(now) })
	}
	s.scheduleFreshArrival()
	s.scheduleMapCycle(0)
	for _, o := range cfg.Outages {
		o := o
		s.kernel.At(cfg.Warmup+o.At, func(now time.Duration) { s.outageStart(o.Duration) })
	}
	s.newRound(0)

	total := cfg.Warmup + cfg.Duration
	if h == nil {
		// Control plane only: no per-tick traffic.
		s.kernel.RunUntil(total)
	} else {
		var gp *genPipeline
		if cfg.Workers > 1 {
			gp = newGenPipeline(&s.cfg, s.sizes, h, cfg.Workers)
		}
		dt := cfg.TickInterval
		var tick uint64
		for t := time.Duration(0); t < total; t += dt {
			s.window = t
			s.cur = newTickPlan(tick)
			tick++
			s.kernel.RunUntil(t)
			end := t + dt
			if end > total {
				end = total
			}
			s.buildWindow(t, end)
			s.finishWindow(gp)
		}
		if gp != nil {
			s.addTotals(gp.close())
		}
	}
	s.finish()
	return s.stats, nil
}

// finishWindow hands the planned window to the fill stage: inline for a
// serial run, onto the worker pipeline otherwise. Empty windows (warm-up,
// outages, an idle server) are recycled without dispatch.
func (s *sim) finishWindow(gp *genPipeline) {
	p := s.cur
	s.cur = nil
	if p == nil || len(p.recs) == 0 {
		freeTickPlan(p)
		return
	}
	if gp != nil {
		gp.dispatch(p)
		return
	}
	sortPlan(p)
	s.addTotals(fillSizes(&s.cfg, p, s.sizes.Stream(p.tick)))
	trace.Dispatch(s.h, p.recs)
	freeTickPlan(p)
}

// addTotals folds fill-stage traffic tallies into the statistics.
func (s *sim) addTotals(tt tickTotals) {
	s.stats.PacketsIn += tt.pIn
	s.stats.PacketsOut += tt.pOut
	s.stats.AppBytesIn += tt.bIn
	s.stats.AppBytesOut += tt.bOut
}

// startRecording marks the end of the warm-up phase: statistics restart and
// sessions already in progress stop counting toward session-length figures
// (they established before the trace began).
func (s *sim) startRecording(now time.Duration) {
	s.warm = true
	s.stats = Stats{}
	s.uniqueAttempt = make(map[uint32]bool)
	s.uniqueEst = make(map[uint32]bool)
	s.lastCount = now
	for _, p := range s.players {
		p.counted = false
		// Surface the initial population to event consumers: one connect
		// per player already on the server as the trace begins.
		s.event(now, EventConnect, p.session, p.client)
	}
	if len(s.players) > s.stats.MaxConcurrent {
		s.stats.MaxConcurrent = len(s.players)
	}
}

// emit appends one fixed-size record (handshakes, rejects, leaves) to the
// window being planned. Traffic statistics are tallied by the fill stage,
// which sees every record of the window with its final payload size.
func (s *sim) emit(r trace.Record) {
	if s.h == nil || !s.warm {
		return
	}
	r.T -= s.cfg.Warmup
	s.cur.append(r, tagFixed)
}

func (s *sim) event(t time.Duration, typ EventType, session, client uint32) {
	if s.ev == nil || !s.warm {
		return // warm-up churn is not part of the recorded trace
	}
	rel := t - s.cfg.Warmup
	if rel < 0 {
		rel = 0
	}
	s.ev(SessionEvent{T: rel, Type: typ, Session: session, Client: client, Players: len(s.players)})
}

// integrateCount must be called immediately before the player count changes.
func (s *sim) integrateCount(now time.Duration) {
	s.stats.PlayerSeconds += float64(len(s.players)) * (now - s.lastCount).Seconds()
	s.lastCount = now
}

// --- arrival / departure control plane ---

// scheduleFreshArrival draws the next fresh attempt from the diurnal
// non-homogeneous Poisson process by Lewis-Shedler thinning: candidate gaps
// at the peak rate, kept with probability λ(t)/λmax. The launch-spike
// multiplier raises λmax so the surged rate is still properly bounded.
func (s *sim) scheduleFreshArrival() {
	peak := s.cfg.AttemptRate * (1 + s.cfg.DiurnalAmp)
	if s.cfg.SpikeMult > 1 {
		peak *= s.cfg.SpikeMult
	}
	gap := time.Duration(s.rng.ExpFloat64() / peak * float64(time.Second))
	s.kernel.After(gap, func(now time.Duration) {
		if s.rng.Float64()*peak <= s.attemptRate(now) {
			if s.rng.Bool(s.cfg.TouristFrac) {
				// A one-time visitor: a fresh identity that will not
				// retry if refused.
				s.nextTourist++
				s.attemptOnce(now, uint32(s.cfg.Population)+s.nextTourist, false)
			} else {
				s.attemptOnce(now, uint32(s.zipf.Rank(s.rng))+1, true)
			}
		}
		s.scheduleFreshArrival()
	})
}

// attemptRate is the instantaneous fresh-attempt rate λ(t): the base rate
// modulated by the diurnal swing and, when configured, the decaying
// launch-day surge.
func (s *sim) attemptRate(t time.Duration) float64 {
	rate := s.cfg.AttemptRate
	if s.cfg.DiurnalAmp != 0 {
		const day = 24 * time.Hour
		phase := 2 * math.Pi * float64(t-s.cfg.Warmup-s.cfg.DiurnalPeak) / float64(day)
		rate *= 1 + s.cfg.DiurnalAmp*math.Cos(phase)
	}
	if s.cfg.SpikeMult > 1 {
		rel := t - s.cfg.Warmup
		if rel < 0 {
			rel = 0 // the queue outside the doors: warm-up sees full surge
		}
		rate *= 1 + (s.cfg.SpikeMult-1)*math.Exp(-float64(rel)/float64(s.cfg.SpikeDecay))
	}
	return rate
}

// attemptOnce processes one connection attempt; mayRetry distinguishes
// regulars (who may retry a refusal) from one-time tourists.
func (s *sim) attemptOnce(now time.Duration, client uint32, mayRetry bool) {
	if s.outage {
		return // the attempt never reaches the server
	}
	s.stats.Attempts++
	s.uniqueAttempt[client] = true
	s.event(now, EventAttempt, 0, client)
	s.emit(trace.Record{T: s.window, Dir: trace.In, Kind: trace.KindHandshake, Client: 0, App: connectReqBytes})

	if len(s.players) >= s.cfg.Slots {
		s.stats.Refused++
		s.event(now, EventRefuse, 0, client)
		s.emit(trace.Record{T: s.window, Dir: trace.Out, Kind: trace.KindHandshake, Client: 0, App: rejectBytes})
		if mayRetry && s.rng.Bool(s.cfg.RetryProb) {
			delay := time.Duration(s.cfg.RetryDelay.Sample(s.rng) * float64(time.Second))
			s.kernel.After(delay, func(now time.Duration) { s.attemptOnce(now, client, true) })
		}
		return
	}
	s.connect(now, client)
}

func (s *sim) connect(now time.Duration, client uint32) {
	s.nextSession++
	s.stats.Established++
	s.uniqueEst[client] = true

	p := &player{
		session:     s.nextSession,
		client:      client,
		active:      true,
		counted:     s.warm,
		connectedAt: now,
		elite:       s.rng.Bool(s.cfg.EliteFrac),
	}
	rate := s.cfg.CmdRate
	if p.elite {
		rate = s.cfg.EliteCmdRate
		p.snapGap = time.Duration(float64(time.Second) / s.cfg.EliteSnapHz)
	} else {
		p.snapGap = s.cfg.TickInterval
	}
	p.cmdGap = time.Duration(float64(time.Second) / rate)
	p.nextCmd = now + time.Duration(s.rng.Float64()*float64(p.cmdGap))
	p.nextSnap = now + time.Duration(s.rng.Float64()*float64(p.snapGap))

	if s.rng.Bool(s.cfg.LogoDownloadProb) {
		p.dlOut = s.cfg.LogoBytes
		p.dlNextOut = now + time.Duration(s.rng.Float64()*float64(time.Second))
	}
	if s.rng.Bool(s.cfg.LogoUploadProb) {
		p.dlIn = s.cfg.LogoBytes
		p.dlNextIn = now + time.Duration(s.rng.Float64()*float64(time.Second))
	}

	s.integrateCount(now)
	p.idx = len(s.players)
	s.players = append(s.players, p)
	if len(s.players) > s.stats.MaxConcurrent {
		s.stats.MaxConcurrent = len(s.players)
	}
	s.event(now, EventConnect, p.session, client)
	s.emit(trace.Record{T: s.window, Dir: trace.Out, Kind: trace.KindHandshake, Client: p.session, App: connectOKBytes})

	life := s.cfg.SessionMean
	d := dist.LogNormalFromMean(life, s.cfg.SessionSigma).Sample(s.rng)
	if d < s.cfg.MinSession {
		d = s.cfg.MinSession
	}
	s.kernel.After(time.Duration(d*float64(time.Second)), func(now time.Duration) {
		s.disconnect(now, p, true)
	})
}

// disconnect removes p; polite disconnects emit the leave datagram, timeout
// disconnects (outages) do not.
func (s *sim) disconnect(now time.Duration, p *player, polite bool) {
	if !p.active {
		return
	}
	p.active = false
	s.integrateCount(now)
	last := len(s.players) - 1
	s.players[p.idx] = s.players[last]
	s.players[p.idx].idx = p.idx
	s.players = s.players[:last]
	if p.counted {
		s.stats.TotalSessionTime += now - p.connectedAt
	}
	if polite && !s.outage {
		s.emit(trace.Record{T: s.window, Dir: trace.In, Kind: trace.KindHandshake, Client: p.session, App: disconnectBytes})
	}
	s.event(now, EventDisconnect, p.session, p.client)
}

// --- map rotation ---

func (s *sim) scheduleMapCycle(start time.Duration) {
	s.stats.MapsPlayed++
	end := start + s.cfg.MapDuration
	s.kernel.At(end, func(now time.Duration) {
		s.paused = true
		// Some players quit rather than sit through the change.
		for i := len(s.players) - 1; i >= 0; i-- {
			if s.rng.Bool(s.cfg.MapLeaveProb) {
				s.disconnect(now, s.players[i], true)
			}
		}
		s.kernel.After(s.cfg.MapChangePause, func(now time.Duration) {
			s.paused = false
			s.newRound(now)
			s.scheduleMapCycle(now)
		})
	})
}

// --- rounds / activity ---

func (s *sim) newRound(now time.Duration) {
	s.roundStart = now
	d := s.cfg.RoundDuration.Sample(s.roundRNG)
	if d < 30 {
		d = 30
	}
	s.roundEnd = now + time.Duration(d*float64(time.Second))
	s.roundLevel = 0.85 + 0.3*s.roundRNG.Float64()
}

// activity returns the round-phase activity multiplier at time t: low during
// freeze time, ramping over the round with a mid-round peak.
func (s *sim) activity(t time.Duration) float64 {
	if t >= s.roundEnd {
		s.newRound(t)
	}
	freezeEnd := s.roundStart + s.cfg.FreezeTime
	if t < freezeEnd {
		return 0.55 * s.roundLevel
	}
	span := s.roundEnd - freezeEnd
	if span <= 0 {
		return s.roundLevel
	}
	x := float64(t-freezeEnd) / float64(span)
	return s.roundLevel * (0.8 + 0.5*math.Sin(math.Pi*x))
}

// --- outages ---

func (s *sim) outageStart(d time.Duration) {
	s.outage = true
	s.kernel.After(d, func(now time.Duration) {
		s.outage = false
		// Both sides time out; everyone is dropped at the same instant
		// (the paper: "all of the players or a majority of players were
		// disconnected ... at identical points in time").
		for i := len(s.players) - 1; i >= 0; i-- {
			p := s.players[i]
			s.disconnect(now, p, false)
			// Players who recorded the address reconnect promptly; the
			// rest relied on server auto-discovery and drift back via
			// the normal arrival process.
			if s.rng.Bool(s.cfg.ReconnectProb) {
				client := p.client
				delay := time.Duration(s.cfg.ReconnectIn.Sample(s.rng) * float64(time.Second))
				s.kernel.After(delay, func(now time.Duration) { s.attemptOnce(now, client, true) })
			}
		}
	})
}

// --- traffic generation ---

// buildWindow plans the tick window [start, end): it advances every
// player's schedules across the window exactly once and appends one
// skeleton record per packet to the current plan. Payload sizes that
// depend on the window RNG stream (snapshots, commands) are left open for
// the fill stage; fixed sizes (downloads, handshakes appended by emit) are
// final. During warm-up the schedules advance but nothing is recorded, so
// the fill stage never runs for discarded traffic.
func (s *sim) buildWindow(start, end time.Duration) {
	if s.outage {
		// Total connectivity loss: nothing reaches the tap. Client-side
		// schedules still advance so streams resume naturally.
		for _, p := range s.players {
			for p.nextCmd < end {
				p.nextCmd += s.jitteredGap(p.cmdGap)
			}
			for p.nextSnap < end {
				p.nextSnap += p.snapGap
			}
		}
		return
	}

	serverUp := !s.paused
	var act float64
	if serverUp {
		act = s.activity(start)
	}
	w := s.cfg.Warmup
	plan := s.cur
	plan.n = len(s.players)
	plan.act = act
	record := s.warm

	// Synchronous snapshot broadcast: one packet per ordinary client, sent
	// back-to-back at the tick instant (the paper's 50 ms bursts).
	if record && serverUp && !s.cfg.DesynchronizeTicks {
		burst := 0
		for _, p := range s.players {
			if p.elite {
				continue
			}
			t := start + time.Duration(burst)*s.cfg.BurstSpacing
			plan.append(trace.Record{T: t - w, Dir: trace.Out, Kind: trace.KindGame, Client: p.session}, tagSnap)
			burst++
		}
	}

	for _, p := range s.players {
		// Inbound command stream (throttled to keepalives during the
		// map-change pause while the client sits at the loading screen).
		gapScale := time.Duration(1)
		if s.paused {
			gapScale = keepaliveDivisor
		}
		for p.nextCmd < end {
			if record && p.nextCmd >= start {
				plan.append(trace.Record{T: p.nextCmd - w, Dir: trace.In, Kind: trace.KindGame, Client: p.session}, tagCmd)
			}
			p.nextCmd += s.jitteredGap(p.cmdGap) * gapScale
		}

		// Per-client snapshot schedules: elites at their elevated rate,
		// and everyone when the desync ablation is on.
		if serverUp && (p.elite || s.cfg.DesynchronizeTicks) {
			tag := uint8(tagSnap)
			if p.elite {
				tag = tagSnapElite
			}
			for p.nextSnap < end {
				if record && p.nextSnap >= start {
					plan.append(trace.Record{T: p.nextSnap - w, Dir: trace.Out, Kind: trace.KindGame, Client: p.session}, tag)
				}
				p.nextSnap += p.snapGap
			}
		} else if !serverUp {
			for p.nextSnap < end {
				p.nextSnap += p.snapGap
			}
		}

		// Rate-limited logo transfers.
		if serverUp && p.dlOut > 0 {
			gap := time.Duration(float64(s.cfg.LogoPacket) / s.cfg.LogoRate * float64(time.Second))
			for p.dlOut > 0 && p.dlNextOut < end {
				sz := s.cfg.LogoPacket
				if sz > p.dlOut {
					sz = p.dlOut
				}
				p.dlOut -= sz
				if record && p.dlNextOut >= start {
					plan.append(trace.Record{T: p.dlNextOut - w, Dir: trace.Out, Kind: trace.KindDownload, Client: p.session, App: uint16(sz)}, tagFixed)
				}
				p.dlNextOut += gap
			}
		}
		if serverUp && p.dlIn > 0 {
			gap := time.Duration(float64(s.cfg.LogoPacket) / s.cfg.LogoRate * float64(time.Second))
			for p.dlIn > 0 && p.dlNextIn < end {
				sz := s.cfg.LogoPacket
				if sz > p.dlIn {
					sz = p.dlIn
				}
				p.dlIn -= sz
				if record && p.dlNextIn >= start {
					plan.append(trace.Record{T: p.dlNextIn - w, Dir: trace.In, Kind: trace.KindDownload, Client: p.session, App: uint16(sz)}, tagFixed)
				}
				p.dlNextIn += gap
			}
		}
	}
}

// jitteredGap applies symmetric fractional jitter to a base interval. Jitter
// draws come from the planner's own sequential stream, so schedule advance is
// identical however the fill stage runs.
func (s *sim) jitteredGap(base time.Duration) time.Duration {
	j := 1 + s.cfg.CmdJitter*(2*s.schedRNG.Float64()-1)
	return time.Duration(float64(base) * j)
}

func (s *sim) finish() {
	total := s.cfg.Warmup + s.cfg.Duration
	s.integrateCount(total)
	for _, p := range s.players {
		if p.counted {
			s.stats.TotalSessionTime += total - p.connectedAt
		}
	}
	s.stats.Duration = s.cfg.Duration
	s.stats.UniqueAttempting = len(s.uniqueAttempt)
	s.stats.UniqueEstablishing = len(s.uniqueEst)
}
