package gamesim

import (
	"testing"
	"time"

	"cstrace/internal/trace"
)

// hashRun executes the config and returns a record count, an order-sensitive
// stream hash and the run statistics.
func hashRun(t *testing.T, cfg Config) (int, uint64, Stats) {
	t.Helper()
	var n int
	var sum uint64
	st, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
		n++
		sum = sum*1099511628211 ^ uint64(r.T) ^ uint64(r.App)<<32 ^ uint64(r.Client) ^ uint64(r.Kind)<<48 ^ uint64(r.Dir)<<52
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	return n, sum, st
}

// TestParallelGenerationByteIdentical is the determinism contract of the
// worker-based fill stage: the record stream and statistics are identical at
// every Workers setting, including across an outage and a map change.
func TestParallelGenerationByteIdentical(t *testing.T) {
	base := shortConfig(21, 8*time.Minute)
	base.Warmup = time.Minute
	base.Outages = []Outage{{At: 3 * time.Minute, Duration: 10 * time.Second}}

	wantN, wantSum, wantSt := 0, uint64(0), Stats{}
	for i, workers := range []int{0, 1, 2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		n, sum, st := hashRun(t, cfg)
		if i == 0 {
			wantN, wantSum, wantSt = n, sum, st
			if n == 0 {
				t.Fatal("no traffic generated")
			}
			continue
		}
		if n != wantN || sum != wantSum {
			t.Errorf("Workers=%d: stream differs from serial (n=%d/%d hash=%x/%x)", workers, n, wantN, sum, wantSum)
		}
		if st != wantSt {
			t.Errorf("Workers=%d: stats differ:\nserial:   %+v\nparallel: %+v", workers, st, wantSt)
		}
	}
}

// TestStreamStrictlyTimeOrdered pins the new ordering contract: the
// generator's emitted stream is globally non-decreasing in time (each window
// is sorted before delivery and window ranges never overlap), so downstream
// consumers — the trace writer, the NAT queueing model, the order-sensitive
// collectors — need no SortBuffer.
func TestStreamStrictlyTimeOrdered(t *testing.T) {
	for _, workers := range []int{0, 3} {
		cfg := shortConfig(11, 6*time.Minute)
		cfg.Workers = workers
		var prev time.Duration
		var n int
		if _, err := Run(cfg, trace.HandlerFunc(func(r trace.Record) {
			if r.T < prev {
				t.Fatalf("Workers=%d: record at %v after %v", workers, r.T, prev)
			}
			prev = r.T
			n++
		}), nil); err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("no traffic generated")
		}
	}
}

// TestParallelGenerationBlocksArePerWindow checks the block contract the
// scenario merge depends on: each delivered batch spans less than one tick
// window, at every Workers setting.
func TestParallelGenerationBlocksArePerWindow(t *testing.T) {
	for _, workers := range []int{0, 4} {
		cfg := shortConfig(13, 4*time.Minute)
		cfg.Workers = workers
		var worst time.Duration
		if _, err := Run(cfg, batchSpan(&worst), nil); err != nil {
			t.Fatal(err)
		}
		if worst >= cfg.TickInterval {
			t.Errorf("Workers=%d: a delivered block spans %v, want < one tick (%v)", workers, worst, cfg.TickInterval)
		}
	}
}

type batchSpanHandler struct{ worst *time.Duration }

func batchSpan(worst *time.Duration) *batchSpanHandler { return &batchSpanHandler{worst: worst} }

func (b *batchSpanHandler) Handle(trace.Record) {}

func (b *batchSpanHandler) HandleBatch(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	span := rs[len(rs)-1].T - rs[0].T
	if span > *b.worst {
		*b.worst = span
	}
}
