package gamesim

import (
	"slices"
	"sort"
	"sync"

	"cstrace/internal/dist"
	"cstrace/internal/trace"
)

// The batch-native traffic plane. The control plane (arrivals, departures,
// map rotation, rounds) runs sequentially on the simulation kernel, but the
// per-tick traffic — the half a billion records of a full week — splits into
// two stages:
//
//	plan  — the coordinator walks every player's schedule across the tick
//	        window once, appending a skeleton record (time, direction, kind,
//	        client; payload size where it is already determined) per packet.
//	        Schedule jitter draws come from a dedicated sequential stream, so
//	        planning is identical no matter how the fill stage runs.
//	fill  — the skeleton is sorted into strict time order and the open
//	        payload sizes (snapshots, client commands) are sampled in record
//	        order from the window's own RNG stream, derived by index from a
//	        dist.Splitter. Stream i depends only on (seed, i), so windows can
//	        fill out of order on worker goroutines and still sample exactly
//	        the values a serial run would.
//
// With Config.Workers ≥ 2 the fill stage runs on workers feeding an
// in-order delivery goroutine; the handler sees the same blocks in the same
// order as a serial run, so reports are byte-identical at every setting.
// Because every window is sorted before delivery and window time ranges
// never overlap, the emitted stream is strictly time-ordered — downstream
// consumers need no SortBuffer.

// Size-fill tags. tagFixed records carry their final payload size already;
// the rest are sampled by fillSizes.
const (
	tagFixed     = iota
	tagCmd       // client command: InPayload sample
	tagSnap      // ordinary snapshot: SnapBase + SnapPerPlayer·players·act
	tagSnapElite // high-rate client snapshot: 0.6× the ordinary mean
)

// tickPlan is one emission window in flight between the control plane and
// the fill stage.
type tickPlan struct {
	seq    uint64 // delivery order (dense over dispatched plans)
	tick   uint64 // window index; selects the size RNG stream
	n      int    // active players when the window was planned
	act    float64
	recs   trace.Block
	tags   []uint8
	totals tickTotals

	// sort scratch, reused across windows
	keys       []uint64
	sorted     trace.Block
	sortedTags []uint8
}

// tickTotals is one window's contribution to the generator statistics,
// tallied by the fill stage (which is the first point where every payload
// size is known).
type tickTotals struct {
	pIn, pOut int64
	bIn, bOut int64
}

func (t *tickTotals) add(o tickTotals) {
	t.pIn += o.pIn
	t.pOut += o.pOut
	t.bIn += o.bIn
	t.bOut += o.bOut
}

var planPool = sync.Pool{New: func() any { return new(tickPlan) }}

func newTickPlan(tick uint64) *tickPlan {
	p := planPool.Get().(*tickPlan)
	p.tick = tick
	p.recs = p.recs[:0]
	p.tags = p.tags[:0]
	p.totals = tickTotals{}
	return p
}

func freeTickPlan(p *tickPlan) {
	if p != nil {
		planPool.Put(p)
	}
}

// append adds one skeleton record.
func (p *tickPlan) append(r trace.Record, tag uint8) {
	p.recs = append(p.recs, r)
	p.tags = append(p.tags, tag)
}

// sortPlan stable-sorts the window's records into time order (ties keep
// emission order). The common case packs (T−minT, index) into native uint64
// keys — no comparison closure — and gathers records and tags through the
// permutation; pathological windows (≥2^24 records or ≥ ~18 min span) fall
// back to an index sort.
func sortPlan(p *tickPlan) {
	n := len(p.recs)
	if n < 2 {
		return
	}
	minT, maxT := p.recs[0].T, p.recs[0].T
	sorted := true
	prev := p.recs[0].T
	for _, r := range p.recs[1:] {
		if r.T < prev {
			sorted = false
		}
		prev = r.T
		if r.T < minT {
			minT = r.T
		}
		if r.T > maxT {
			maxT = r.T
		}
	}
	if sorted {
		return
	}
	const idxBits = 24
	if n < 1<<idxBits && uint64(maxT-minT) < 1<<(64-idxBits) {
		keys := p.keys[:0]
		for i, r := range p.recs {
			keys = append(keys, uint64(r.T-minT)<<idxBits|uint64(i))
		}
		slices.Sort(keys)
		outR := append(p.sorted[:0], make(trace.Block, n)...)[:n]
		outT := append(p.sortedTags[:0], make([]uint8, n)...)[:n]
		for i, k := range keys {
			j := int(k & (1<<idxBits - 1))
			outR[i] = p.recs[j]
			outT[i] = p.tags[j]
		}
		p.keys = keys
		p.recs, p.sorted = outR, p.recs
		p.tags, p.sortedTags = outT, p.tags
		return
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p.recs[idx[a]].T < p.recs[idx[b]].T })
	outR := make(trace.Block, n)
	outT := make([]uint8, n)
	for i, j := range idx {
		outR[i] = p.recs[j]
		outT[i] = p.tags[j]
	}
	p.recs, p.tags = outR, outT
}

// fillSizes samples the window's open payload sizes in record order from the
// window's RNG stream and tallies its traffic totals. The snapshot mean is a
// per-window constant, so it is hoisted out of the loop; command sizes
// remain one sampler call each (the truncated normal consumes a variable
// number of draws, which is exactly why each window owns a whole stream).
func fillSizes(cfg *Config, p *tickPlan, rng *dist.RNG) tickTotals {
	muOrd := cfg.SnapBase + cfg.SnapPerPlayer*float64(p.n)*p.act
	muElite := muOrd * 0.6
	sigma := cfg.SnapSigma
	lo, hi := float64(cfg.SnapMin), float64(cfg.SnapMax)
	var tt tickTotals
	for i := range p.recs {
		r := &p.recs[i]
		switch p.tags[i] {
		case tagFixed:
		case tagCmd:
			r.App = uint16(cfg.InPayload.Sample(rng))
		default:
			mu := muOrd
			if p.tags[i] == tagSnapElite {
				mu = muElite
			}
			v := mu + sigma*rng.NormFloat64()
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			r.App = uint16(v)
		}
		if r.Dir == trace.In {
			tt.pIn++
			tt.bIn += int64(r.App)
		} else {
			tt.pOut++
			tt.bOut += int64(r.App)
		}
	}
	return tt
}

// genPipeline runs the fill stage on worker goroutines with an in-order
// delivery stage: plans dispatch in window order, fill concurrently, and a
// single delivery goroutine hands each window's block to the handler in the
// original order. In-flight windows are bounded by a token pool so the fill
// stage cannot run arbitrarily ahead of a slow consumer.
type genPipeline struct {
	cfg   *Config
	sizes dist.Splitter
	h     trace.Handler

	jobs     chan *tickPlan
	results  []chan *tickPlan // ring of 1-deep slots, indexed seq mod depth
	free     chan struct{}
	countCh  chan uint64
	totalsCh chan tickTotals
	wg       sync.WaitGroup
	n        uint64 // plans dispatched
}

func newGenPipeline(cfg *Config, sizes dist.Splitter, h trace.Handler, workers int) *genPipeline {
	depth := 2 * workers
	gp := &genPipeline{
		cfg:      cfg,
		sizes:    sizes,
		h:        h,
		jobs:     make(chan *tickPlan, depth),
		results:  make([]chan *tickPlan, depth),
		free:     make(chan struct{}, depth),
		countCh:  make(chan uint64, 1),
		totalsCh: make(chan tickTotals, 1),
	}
	for i := range gp.results {
		gp.results[i] = make(chan *tickPlan, 1)
		gp.free <- struct{}{}
	}
	for w := 0; w < workers; w++ {
		gp.wg.Add(1)
		go gp.work()
	}
	go gp.deliver()
	return gp
}

func (gp *genPipeline) work() {
	defer gp.wg.Done()
	depth := uint64(len(gp.results))
	for p := range gp.jobs {
		sortPlan(p)
		p.totals = fillSizes(gp.cfg, p, gp.sizes.Stream(p.tick))
		gp.results[p.seq%depth] <- p
	}
}

// dispatch hands a non-empty plan to the workers, blocking while the
// pipeline is full.
func (gp *genPipeline) dispatch(p *tickPlan) {
	<-gp.free
	p.seq = gp.n
	gp.n++
	gp.jobs <- p
}

func (gp *genPipeline) deliver() {
	depth := uint64(len(gp.results))
	var tt tickTotals
	seq := uint64(0)
	one := func(p *tickPlan) {
		trace.Dispatch(gp.h, p.recs)
		tt.add(p.totals)
		freeTickPlan(p)
		gp.free <- struct{}{}
	}
	for {
		select {
		case p := <-gp.results[seq%depth]:
			one(p)
			seq++
		case n := <-gp.countCh:
			for ; seq < n; seq++ {
				one(<-gp.results[seq%depth])
			}
			gp.totalsCh <- tt
			return
		}
	}
}

// close drains the pipeline and returns the accumulated traffic totals.
// No further dispatches are allowed.
func (gp *genPipeline) close() tickTotals {
	close(gp.jobs)
	gp.wg.Wait()
	gp.countCh <- gp.n
	return <-gp.totalsCh
}
