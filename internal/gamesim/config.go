// Package gamesim generates synthetic Counter-Strike server traffic that is
// statistically equivalent to the trace the paper measured.
//
// The original 40 GB trace is unrecoverable, so this package reproduces the
// mechanisms the paper identifies as generating every observed phenomenon:
// a 22-slot server broadcasting state snapshots to every client each 50 ms
// tick, clients streaming small fixed-rate command packets, 30-minute map
// rotation with a changeover pause, round-level activity modulation, Poisson
// session arrivals with refusals and retries against a finite skewed client
// population, modem-capped per-client bandwidth with a few "l337" high-rate
// players, rate-limited logo/map downloads, and brief network outages.
//
// PaperConfig returns parameters calibrated against the paper's Tables I-III
// (the derivations are reproduced in DESIGN.md §4); the calibration is
// asserted by tests in this package and the full-week results are recorded
// in EXPERIMENTS.md.
package gamesim

import (
	"errors"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/sched"
)

// Config parameterizes one simulated server.
type Config struct {
	Seed     uint64
	Duration time.Duration
	// Workers is the number of goroutines running the payload-size fill
	// stage of traffic generation. 0 or 1 generates inline; 2 or more
	// fills tick windows concurrently with in-order delivery; sched.Auto
	// resolves to a grant from the process worker budget at run start.
	// The record stream is byte-identical at every setting (see Run); on
	// multi-core hardware workers overlap size sampling with planning and
	// analysis.
	Workers int
	// Warmup runs the server for this long before recording starts, so the
	// trace begins on a busy server exactly as the paper's did ("after a
	// brief warm-up period, we recorded the traffic"). Records, statistics
	// and timestamps all refer to the recorded window only. Must be a
	// multiple of TickInterval.
	Warmup time.Duration

	// Server.
	Slots        int           // player capacity (paper: 22)
	TickInterval time.Duration // snapshot broadcast period (50 ms)
	BurstSpacing time.Duration // serialization gap between packets of one broadcast burst

	// Session arrival model. Fresh attempts follow a non-homogeneous
	// Poisson process with a diurnal rate profile
	// λ(t) = AttemptRate · (1 + DiurnalAmp·cos(2π(t−DiurnalPeak)/24h)):
	// demand concentrates in the evenings, which is what pushes blocking
	// beyond the Erlang-B level a flat Poisson stream would produce.
	AttemptRate   float64       // mean fresh connection attempts per second
	DiurnalAmp    float64       // relative amplitude of the daily swing [0,1)
	DiurnalPeak   time.Duration // trace-time offset of the first demand peak
	RetryProb     float64       // probability a refused client retries
	RetryDelay    dist.Sampler  // seconds until retry
	SessionMean   float64       // mean established session length, seconds
	SessionSigma  float64       // lognormal shape of session length
	MinSession    float64       // seconds; shorter draws are clamped
	Population    int           // distinct returning clients ("regulars")
	PopularityExp float64       // Zipf exponent of regular re-visit skew
	// TouristFrac is the fraction of fresh arrivals that are one-time
	// visitors found via the in-game server browser: each is a distinct
	// client, and one that is refused never comes back. This reproduces
	// the paper's wide gap between unique clients attempting (8,207) and
	// establishing (5,886).
	TouristFrac float64

	// Launch-day surge (the "Microsoft or Sony launch" provisioning
	// scenario of §V): the fresh-attempt rate is additionally multiplied
	// by 1 + (SpikeMult−1)·exp(−t/SpikeDecay), t measured from the start
	// of the recorded window. SpikeMult ≤ 1 (or 0) disables the surge;
	// during warm-up the full SpikeMult applies, so the server opens its
	// doors to release-day demand already formed. SpikeDecay must be
	// positive when SpikeMult > 1.
	SpikeMult  float64
	SpikeDecay time.Duration

	// Client command stream.
	CmdRate      float64      // inbound packets/sec per ordinary client
	CmdJitter    float64      // fractional jitter on the inter-command gap
	InPayload    dist.Sampler // bytes per command packet
	EliteFrac    float64      // fraction of clients on high-rate configs
	EliteCmdRate float64      // their inbound packet rate
	EliteSnapHz  float64      // their requested update rate (server side)

	// Server snapshot sizing: payload ~ SnapBase + SnapPerPlayer * players
	// * activity + Normal(0, SnapSigma), clamped to [SnapMin, SnapMax].
	SnapBase      float64
	SnapPerPlayer float64
	SnapSigma     float64
	SnapMin       int
	SnapMax       int

	// Round structure (activity modulation within a map).
	RoundDuration dist.Sampler // seconds
	FreezeTime    time.Duration

	// Map rotation.
	MapDuration    time.Duration // play time per map (paper: 30 min)
	MapChangePause time.Duration // server-side changeover pause
	MapLeaveProb   float64       // chance a player quits at map change

	// Downloads (custom logos; rate-limited by the server).
	LogoDownloadProb float64 // per established session
	LogoUploadProb   float64
	LogoBytes        int     // total transfer size
	LogoRate         float64 // bytes/sec the server rate-limits to
	LogoPacket       int     // payload bytes per download packet

	// Network outages.
	Outages       []Outage
	ReconnectProb float64      // players reconnecting right after an outage
	ReconnectIn   dist.Sampler // seconds until their reattempt

	// DesynchronizeTicks staggers each client's snapshot phase across the
	// tick interval instead of broadcasting to everyone at once. This is
	// the ablation for the paper's synchronization claim (§III-B, Fig 7).
	DesynchronizeTicks bool
}

// Outage is a brief total connectivity loss, as the trace saw on Apr 12, 14
// and 17.
type Outage struct {
	At       time.Duration
	Duration time.Duration
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return errors.New("gamesim: Duration must be positive")
	case c.Slots <= 0:
		return errors.New("gamesim: Slots must be positive")
	case c.TickInterval <= 0:
		return errors.New("gamesim: TickInterval must be positive")
	case c.AttemptRate <= 0:
		return errors.New("gamesim: AttemptRate must be positive")
	case c.SessionMean <= 0:
		return errors.New("gamesim: SessionMean must be positive")
	case c.Population <= 0:
		return errors.New("gamesim: Population must be positive")
	case c.CmdRate <= 0:
		return errors.New("gamesim: CmdRate must be positive")
	case c.SnapMax <= 0 || c.SnapMax > 65535:
		return errors.New("gamesim: SnapMax must be in (0, 65535]")
	case c.MapDuration <= 0:
		return errors.New("gamesim: MapDuration must be positive")
	case c.RetryDelay == nil || c.InPayload == nil || c.RoundDuration == nil || c.ReconnectIn == nil:
		return errors.New("gamesim: all samplers must be set")
	}
	if c.Warmup < 0 || c.Warmup%c.TickInterval != 0 {
		return errors.New("gamesim: Warmup must be a non-negative multiple of TickInterval")
	}
	if c.Workers < 0 && c.Workers != sched.Auto {
		return errors.New("gamesim: Workers must be non-negative or sched.Auto")
	}
	if c.SpikeMult > 1 && c.SpikeDecay <= 0 {
		return errors.New("gamesim: SpikeDecay must be positive when SpikeMult > 1")
	}
	for _, o := range c.Outages {
		if o.At < 0 || o.Duration <= 0 || o.At+o.Duration > c.Duration {
			return errors.New("gamesim: outage outside trace window")
		}
	}
	return nil
}

// PaperDuration is the length of the paper's trace: 7 d, 6 h, 1 m, 17 s.
const PaperDuration = 626477 * time.Second

// PaperConfig returns the configuration calibrated to the paper's trace
// (see DESIGN.md §4 for the derivations from Tables I-III).
func PaperConfig(seed uint64) Config {
	return Config{
		Seed:     seed,
		Duration: PaperDuration,
		// One full map cycle of warm-up aligns recording with a map start.
		Warmup: 30*time.Minute + 48*time.Second,

		Slots:        22,
		TickInterval: 50 * time.Millisecond,
		BurstSpacing: 15 * time.Microsecond, // ~190B frame at 100 Mb/s

		// 24,004 attempts / 626,477 s with retry feedback; 16,030 accepted.
		AttemptRate:   0.0349,
		DiurnalAmp:    0.48,
		DiurnalPeak:   10 * time.Hour, // trace starts 08:55; evening peak
		RetryProb:     0.35,
		RetryDelay:    dist.Uniform{Low: 15, High: 120},
		SessionMean:   790,
		SessionSigma:  1.15,
		MinSession:    10,
		TouristFrac:   0.185,
		Population:    11800,
		PopularityExp: 1.06,

		// 437.12 pps inbound / ~18 players ≈ 24.2 pps per client.
		CmdRate:      24.3,
		CmdJitter:    0.30,
		InPayload:    dist.Truncated{S: dist.Normal{Mu: 40.1, Sigma: 4.2}, Low: 28, High: 64},
		EliteFrac:    0.013,
		EliteCmdRate: 44,
		EliteSnapHz:  44,

		// Mean outbound payload 129.51 B at ~18 active players.
		SnapBase:      40,
		SnapPerPlayer: 4.37,
		SnapSigma:     46,
		SnapMin:       12,
		SnapMax:       420,

		RoundDuration: dist.Uniform{Low: 95, High: 250},
		FreezeTime:    8 * time.Second,

		// 339 maps in 626,477 s ⇒ ~1848 s per cycle.
		MapDuration:    30 * time.Minute,
		MapChangePause: 48 * time.Second,
		MapLeaveProb:   0.10,

		LogoDownloadProb: 0.22,
		LogoUploadProb:   0.10,
		LogoBytes:        24 << 10,
		LogoRate:         2500,
		LogoPacket:       1100,

		// Three brief outages (Apr 12, 14, 17 in the paper).
		Outages: []Outage{
			{At: 26 * time.Hour, Duration: 18 * time.Second},
			{At: 78 * time.Hour, Duration: 25 * time.Second},
			{At: 146 * time.Hour, Duration: 12 * time.Second},
		},
		ReconnectProb: 0.35,
		ReconnectIn:   dist.Uniform{Low: 3, High: 45},
	}
}

// NATExperimentConfig returns the single-map configuration used for the
// paper's NAT experiment (§IV-A): one 30-minute map traced behind the
// device, with the server already warmed up and full.
func NATExperimentConfig(seed uint64) Config {
	c := PaperConfig(seed)
	c.Duration = 30 * time.Minute
	c.Outages = nil
	// Warm up through one full map cycle so the traced map starts on a
	// busy server, as in the paper.
	c.Warmup = c.MapDuration + c.MapChangePause
	// One map, no rotation inside the window.
	c.MapDuration = 30 * time.Minute
	// Triple the arrival rate so the warm-up to a full server is quick
	// (the paper traced "after a brief warm-up period").
	c.AttemptRate *= 3
	return c
}
