// Package webtraffic generates the bulk-transfer TCP baseline the paper
// contrasts game traffic against (§IV-A: "the majority of traffic being
// carried in today's networks involve bulk data transfers using TCP" whose
// data segments "can be close to an order of magnitude larger than game
// traffic", and the Ames exchange-point observation of mean packet sizes
// above 400 bytes).
//
// The model is a compact 2002-era web source in the SURGE / Mah tradition:
// user sessions arrive Poisson; each session fetches a heavy-tailed number
// of pages with think times between them; each page is a heavy-tailed
// number of objects; each object is one non-persistent HTTP/1.0-style TCP
// connection — handshake, request, slow-started MSS segments from the
// server, delayed ACKs from the client, FIN teardown. The generator emits
// time-sorted trace.Records as seen at the server tap, so the stream feeds
// the same analysis collectors and NAT device model as game traffic.
//
// Byte accounting: trace.Record.Wire() adds the 58-byte UDP framing the
// rest of the repository uses. A TCP header is 12 bytes larger than a UDP
// header, so web records carry App = TCP payload + TCPHeaderDelta, which
// makes Wire() exact for TCP packets while reusing the shared Record type.
// Use AppBytes() on the Stats — not raw App sums — for application-level
// byte counts.
package webtraffic

import (
	"errors"
	"sort"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// TCPHeaderDelta is the TCP-minus-UDP header size difference added to every
// web record's App field so Record.Wire() stays exact.
const TCPHeaderDelta = 20 - 8

// Config parameterizes the web workload.
type Config struct {
	Seed     uint64
	Duration time.Duration // session arrival window

	// Session structure.
	SessionRate     float64      // new user sessions per second
	PagesPerSession dist.Sampler // pages fetched per session (≥1)
	ObjectsPerPage  dist.Sampler // objects per page (≥1)
	ThinkTime       dist.Sampler // seconds between pages
	ObjectGap       dist.Sampler // seconds between object starts in a page

	// Object transfer.
	ObjectSize  dist.Sampler // bytes per object (heavy-tailed)
	RequestSize dist.Sampler // bytes of the client's request

	// TCP mechanics.
	MSS             int          // maximum segment size (payload bytes)
	InitCwnd        int          // initial congestion window, segments
	MaxCwnd         int          // receiver-window cap, segments
	RTT             dist.Sampler // per-session round-trip time, seconds
	BottleneckBps   dist.Sampler // per-session bottleneck rate, bits/sec
	DelayedAckEvery int          // client ACKs every n-th data segment
	DelayedAckDelay time.Duration
}

// DefaultConfig returns a workload calibrated to look like 2002 web traffic:
// heavy-tailed object sizes with a ~12 KB mean, a client mix from modems to
// office LANs, and a session rate chosen so the aggregate offered load is
// close to the paper's game server (≈880 kbs) — which makes head-to-head
// router experiments an equal-bits comparison.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:     seed,
		Duration: 30 * time.Minute,

		SessionRate:     0.5,
		PagesPerSession: dist.Truncated{S: dist.Pareto{Xm: 1, Alpha: 1.5}, Low: 1, High: 50},
		ObjectsPerPage:  dist.Truncated{S: dist.Pareto{Xm: 2, Alpha: 1.3}, Low: 1, High: 30},
		ThinkTime:       dist.Truncated{S: dist.Pareto{Xm: 1, Alpha: 1.4}, Low: 1, High: 120},
		ObjectGap:       dist.Exponential{MeanV: 0.15},

		// Crovella-style hybrid: lognormal body, Pareto tail.
		ObjectSize: dist.Truncated{
			S:    mustMixture([]dist.Sampler{dist.LogNormalFromMean(8000, 1.2), dist.Pareto{Xm: 30000, Alpha: 1.2}}, []float64{0.88, 0.12}),
			Low:  200,
			High: 5e6,
		},
		RequestSize: dist.Truncated{S: dist.Normal{Mu: 350, Sigma: 80}, Low: 120, High: 1400},

		MSS:      1460,
		InitCwnd: 2,
		MaxCwnd:  6, // 8760-byte receiver window of the era
		RTT:      dist.Truncated{S: dist.LogNormalFromMean(0.08, 0.7), Low: 0.01, High: 1},
		BottleneckBps: mustMixture(
			[]dist.Sampler{
				dist.Constant{V: 45e3},  // modem
				dist.Constant{V: 640e3}, // DSL/cable of the era
				dist.Constant{V: 10e6},  // office LAN
			},
			[]float64{0.45, 0.4, 0.15},
		),
		DelayedAckEvery: 2,
		DelayedAckDelay: 200 * time.Millisecond,
	}
}

func mustMixture(s []dist.Sampler, w []float64) dist.Sampler {
	m, err := dist.NewMixture(s, w)
	if err != nil {
		panic(err)
	}
	return m
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return errors.New("webtraffic: Duration must be positive")
	case c.SessionRate <= 0:
		return errors.New("webtraffic: SessionRate must be positive")
	case c.MSS <= 0:
		return errors.New("webtraffic: MSS must be positive")
	case c.InitCwnd <= 0 || c.MaxCwnd < c.InitCwnd:
		return errors.New("webtraffic: need 0 < InitCwnd <= MaxCwnd")
	case c.DelayedAckEvery <= 0:
		return errors.New("webtraffic: DelayedAckEvery must be positive")
	case c.PagesPerSession == nil || c.ObjectsPerPage == nil || c.ThinkTime == nil ||
		c.ObjectGap == nil || c.ObjectSize == nil || c.RequestSize == nil ||
		c.RTT == nil || c.BottleneckBps == nil:
		return errors.New("webtraffic: all samplers must be set")
	}
	return nil
}

// Stats summarizes a generated workload.
type Stats struct {
	Sessions    int64
	Pages       int64
	Connections int64

	PacketsIn  int64 // client → server
	PacketsOut int64 // server → client
	WireIn     int64 // bytes on the wire
	WireOut    int64
	PayloadIn  int64 // TCP payload bytes
	PayloadOut int64

	// Span is the time of the last record (connections outlive the
	// arrival window while they drain).
	Span time.Duration
}

// Packets returns the total packet count.
func (s Stats) Packets() int64 { return s.PacketsIn + s.PacketsOut }

// AppBytes returns total TCP payload bytes (application data proper,
// excluding the TCPHeaderDelta adjustment embedded in Record.App).
func (s Stats) AppBytes() int64 { return s.PayloadIn + s.PayloadOut }

// MeanWirePacket returns the mean on-the-wire packet size in bytes across
// both directions — the number the paper's §IV-A compares against routers'
// 125-250 byte design assumptions.
func (s Stats) MeanWirePacket() float64 {
	if s.Packets() == 0 {
		return 0
	}
	return float64(s.WireIn+s.WireOut) / float64(s.Packets())
}

// MeanBandwidth returns the mean offered load in bits/sec over the span.
func (s Stats) MeanBandwidth() units.BitsPerSecond {
	if s.Span <= 0 {
		return 0
	}
	return units.Rate(units.Bytes(s.WireIn+s.WireOut), s.Span.Seconds())
}

// MeanPacketLoad returns the mean packet rate over the span.
func (s Stats) MeanPacketLoad() units.PacketsPerSecond {
	if s.Span <= 0 {
		return 0
	}
	return units.PacketRate(s.Packets(), s.Span.Seconds())
}

// PPSPerMbps returns packets/sec needed to carry one megabit/sec of this
// traffic — the router-provisioning figure of merit that makes the
// small-packet problem visible independent of load level.
func (s Stats) PPSPerMbps() float64 {
	bw := float64(s.MeanBandwidth())
	if bw == 0 {
		return 0
	}
	return float64(s.MeanPacketLoad()) / (bw / 1e6)
}

// Generate produces the workload and streams it, time-sorted, to h.
// Returns aggregate statistics.
func Generate(cfg Config, h trace.Handler) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	rng := dist.NewRNG(cfg.Seed)
	var st Stats
	var recs []trace.Record

	// Poisson session arrivals across the window.
	var t float64
	client := uint32(0)
	for {
		t += rng.ExpFloat64() / cfg.SessionRate
		if t >= cfg.Duration.Seconds() {
			break
		}
		client++
		st.Sessions++
		sessRecs := genSession(cfg, rng, t, client, &st)
		recs = append(recs, sessRecs...)
	}

	sort.SliceStable(recs, func(i, j int) bool { return recs[i].T < recs[j].T })
	for _, r := range recs {
		if r.T > st.Span {
			st.Span = r.T
		}
		switch r.Dir {
		case trace.In:
			st.PacketsIn++
			st.WireIn += int64(r.Wire())
			st.PayloadIn += int64(r.App) - TCPHeaderDelta
		case trace.Out:
			st.PacketsOut++
			st.WireOut += int64(r.Wire())
			st.PayloadOut += int64(r.App) - TCPHeaderDelta
		}
		h.Handle(r)
	}
	return st, nil
}

// genSession generates all records of one user session starting at t0
// seconds.
func genSession(cfg Config, rng *dist.RNG, t0 float64, client uint32, st *Stats) []trace.Record {
	rtt := cfg.RTT.Sample(rng)
	bps := cfg.BottleneckBps.Sample(rng)
	var recs []trace.Record

	t := t0
	pages := int(cfg.PagesPerSession.Sample(rng))
	if pages < 1 {
		pages = 1
	}
	for p := 0; p < pages; p++ {
		st.Pages++
		objects := int(cfg.ObjectsPerPage.Sample(rng))
		if objects < 1 {
			objects = 1
		}
		pageEnd := t
		for o := 0; o < objects; o++ {
			st.Connections++
			size := int64(cfg.ObjectSize.Sample(rng))
			if size < 1 {
				size = 1
			}
			req := int(cfg.RequestSize.Sample(rng))
			if req < 1 {
				req = 1
			}
			end := genConnection(cfg, &recs, t, client, rtt, bps, size, req)
			if end > pageEnd {
				pageEnd = end
			}
			t += cfg.ObjectGap.Sample(rng)
		}
		t = pageEnd + cfg.ThinkTime.Sample(rng)
	}
	return recs
}

// genConnection emits the records of one HTTP/1.0-style transfer starting
// at t0 and returns its finish time. Timestamps are as seen at the server:
// client packets at arrival, server packets at transmission.
func genConnection(cfg Config, recs *[]trace.Record, t0 float64, client uint32, rtt, bps float64, size int64, req int) float64 {
	half := rtt / 2
	emit := func(at float64, dir trace.Direction, payload int) {
		*recs = append(*recs, trace.Record{
			T:      time.Duration(at * float64(time.Second)),
			Dir:    dir,
			Kind:   trace.KindWeb,
			Client: client,
			App:    uint16(payload + TCPHeaderDelta),
		})
	}

	// Handshake: SYN arrives at the server half an RTT after the client
	// sends it; the SYN-ACK goes straight back; the client's ACK rides
	// with the request one RTT later.
	tSYN := t0 + half
	emit(tSYN, trace.In, 0)
	emit(tSYN, trace.Out, 0)
	tReq := tSYN + rtt
	emit(tReq, trace.In, req)

	// Data rounds: ack-clocked slow start capped by the receiver window.
	// Within a round, segments are spaced by the bottleneck serialization
	// time (ack-clocking spreads them across the path's slowest link).
	nseg := int((size + int64(cfg.MSS) - 1) / int64(cfg.MSS))
	segGap := float64(cfg.MSS+units.WireOverhead+TCPHeaderDelta) * 8 / bps
	cwnd := cfg.InitCwnd
	sent := 0
	var remaining = size
	tRound := tReq
	var lastData float64
	ackCount := 0
	for sent < nseg {
		burst := cwnd
		if sent+burst > nseg {
			burst = nseg - sent
		}
		for i := 0; i < burst; i++ {
			payload := cfg.MSS
			if remaining < int64(cfg.MSS) {
				payload = int(remaining)
			}
			at := tRound + float64(i)*segGap
			emit(at, trace.Out, payload)
			lastData = at
			remaining -= int64(payload)
			sent++
			// Delayed ACK: every n-th segment acknowledged on
			// arrival; a trailing odd segment after the timeout.
			ackCount++
			if ackCount == cfg.DelayedAckEvery {
				emit(at+rtt, trace.In, 0)
				ackCount = 0
			} else if sent == nseg && ackCount > 0 {
				emit(at+rtt+cfg.DelayedAckDelay.Seconds(), trace.In, 0)
			}
		}
		tRound = tRound + float64(burst-1)*segGap + rtt
		if cwnd < cfg.MaxCwnd {
			cwnd *= 2
			if cwnd > cfg.MaxCwnd {
				cwnd = cfg.MaxCwnd
			}
		}
	}

	// Teardown: server FIN after the last segment, client FIN-ACK one RTT
	// later, server's final ACK immediately.
	tFin := lastData + segGap
	emit(tFin, trace.Out, 0)
	emit(tFin+rtt, trace.In, 0)
	emit(tFin+rtt, trace.Out, 0)
	return tFin + rtt
}
