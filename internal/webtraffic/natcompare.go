package webtraffic

import (
	"cstrace/internal/nat"
	"cstrace/internal/trace"
)

// NATResult is the web-traffic half of the §IV-A head-to-head: the same
// forwarding device that loses 1.3% of the game's packets should forward a
// web workload of equal bit rate with essentially no loss, because web bits
// arrive in packets nearly an order of magnitude larger and without the
// 50 ms synchronized bursts.
type NATResult struct {
	Stats  Stats
	Counts nat.Counts

	MeanDelayIn, MaxDelayIn   float64
	MeanDelayOut, MaxDelayOut float64
}

// LossIn returns the client→server loss fraction.
func (r NATResult) LossIn() float64 { return r.Counts.LossIn() }

// LossOut returns the server→client loss fraction.
func (r NATResult) LossOut() float64 { return r.Counts.LossOut() }

// RunNAT generates the web workload and passes it through the forwarding
// device model.
func RunNAT(cfg Config, natCfg nat.Config) (NATResult, error) {
	device, err := nat.New(natCfg, trace.HandlerFunc(func(trace.Record) {}))
	if err != nil {
		return NATResult{}, err
	}
	st, err := Generate(cfg, device)
	if err != nil {
		return NATResult{}, err
	}
	res := NATResult{Stats: st, Counts: device.Counts()}
	din, dout := device.DelayIn(), device.DelayOut()
	res.MeanDelayIn, res.MaxDelayIn = din.Mean(), din.Max()
	res.MeanDelayOut, res.MaxDelayOut = dout.Mean(), dout.Max()
	return res, nil
}
