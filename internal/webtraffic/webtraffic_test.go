package webtraffic

import (
	"testing"
	"testing/quick"
	"time"

	"cstrace/internal/nat"
	"cstrace/internal/trace"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Duration = 2 * time.Minute
	return cfg
}

func TestGenerateBasics(t *testing.T) {
	var got trace.Collect
	st, err := Generate(smallConfig(1), &got)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions == 0 || st.Connections == 0 {
		t.Fatalf("no work generated: %+v", st)
	}
	if int64(len(got.Records)) != st.Packets() {
		t.Errorf("records %d != stats packets %d", len(got.Records), st.Packets())
	}
	if st.Pages < st.Sessions {
		t.Errorf("pages %d < sessions %d", st.Pages, st.Sessions)
	}
	if st.Connections < st.Pages {
		t.Errorf("connections %d < pages %d", st.Connections, st.Pages)
	}
}

func TestRecordsSortedAndWebKind(t *testing.T) {
	var got trace.Collect
	if _, err := Generate(smallConfig(2), &got); err != nil {
		t.Fatal(err)
	}
	for i, r := range got.Records {
		if i > 0 && r.T < got.Records[i-1].T {
			t.Fatalf("record %d out of order: %v < %v", i, r.T, got.Records[i-1].T)
		}
		if r.Kind != trace.KindWeb {
			t.Fatalf("record %d kind = %v", i, r.Kind)
		}
		if int(r.App) < TCPHeaderDelta {
			t.Fatalf("record %d App %d below header delta", i, r.App)
		}
	}
}

func TestDeterminism(t *testing.T) {
	var a, b trace.Collect
	sa, err := Generate(smallConfig(42), &a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Generate(smallConfig(42), &b)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestMeanPacketSizeContrast(t *testing.T) {
	// The whole point of the baseline: web traffic's mean wire packet must
	// sit in the >300-byte regime the paper cites for exchange-point
	// traffic, far above the game's 138 B mean (80.33 B app + 58 B wire
	// overhead, Tables II-III).
	st, err := Generate(smallConfig(3), trace.HandlerFunc(func(trace.Record) {}))
	if err != nil {
		t.Fatal(err)
	}
	mean := st.MeanWirePacket()
	if mean < 300 {
		t.Errorf("mean wire packet %.1f B, want > 300 B", mean)
	}
	// Server-side data packets dominate: outgoing mean must be near MSS
	// territory, incoming mean small (ACKs + requests).
	outMean := float64(st.WireOut) / float64(st.PacketsOut)
	inMean := float64(st.WireIn) / float64(st.PacketsIn)
	if outMean < 500 {
		t.Errorf("outgoing mean %.1f B, want > 500 B", outMean)
	}
	if inMean > 200 {
		t.Errorf("incoming mean %.1f B, want < 200 B (ACK stream)", inMean)
	}
}

func TestPPSPerMbpsBelowGameTraffic(t *testing.T) {
	// Game traffic (138 B mean wire packet) needs ≈904 lookups per Mbps.
	// Web traffic should need several times fewer for the same bits.
	st, err := Generate(smallConfig(4), trace.HandlerFunc(func(trace.Record) {}))
	if err != nil {
		t.Fatal(err)
	}
	if pps := st.PPSPerMbps(); pps > 500 {
		t.Errorf("web PPS/Mbps = %.0f, want well under game's ~1270", pps)
	}
}

func TestConnectionConservation(t *testing.T) {
	// Single connection: all object bytes must be delivered in MSS-bounded
	// segments, with handshake (SYN, SYN-ACK, ACK+req), delayed ACKs and
	// FIN teardown accounted for.
	cfg := DefaultConfig(5)
	var recs []trace.Record
	size := int64(10 * 1460) // exactly 10 segments
	genConnection(cfg, &recs, 0, 1, 0.1, 1e6, size, 300)

	var dataBytes int64
	var dataSegs, acks, outCtl int
	for _, r := range recs {
		payload := int(r.App) - TCPHeaderDelta
		if r.Dir == trace.Out {
			if payload > 0 {
				dataBytes += int64(payload)
				dataSegs++
				if payload > cfg.MSS {
					t.Fatalf("segment payload %d exceeds MSS", payload)
				}
			} else {
				outCtl++
			}
		} else if payload == 0 {
			acks++
		}
	}
	if dataBytes != size {
		t.Errorf("delivered %d bytes, want %d", dataBytes, size)
	}
	if dataSegs != 10 {
		t.Errorf("segments = %d, want 10", dataSegs)
	}
	// Zero-payload inbound packets: the SYN, 5 delayed ACKs (every 2nd of
	// 10 data segments), and the FIN-ACK.
	if acks != 1+5+1 {
		t.Errorf("zero-payload inbound = %d, want 7", acks)
	}
	// SYN-ACK + FIN + final ACK.
	if outCtl != 3 {
		t.Errorf("outgoing control packets = %d, want 3", outCtl)
	}
}

func TestConnectionConservationProperty(t *testing.T) {
	cfg := DefaultConfig(6)
	f := func(sizeRaw uint32, reqRaw uint16) bool {
		size := int64(sizeRaw%500_000) + 1
		req := int(reqRaw%1400) + 1
		var recs []trace.Record
		genConnection(cfg, &recs, 0, 1, 0.05, 1e6, size, req)
		var dataBytes int64
		var reqBytes int64
		lastT := time.Duration(-1)
		sorted := true
		for _, r := range recs {
			payload := int64(r.App) - TCPHeaderDelta
			if r.Dir == trace.Out && payload > 0 {
				dataBytes += payload
			}
			if r.Dir == trace.In && payload > 0 {
				reqBytes += payload
			}
			if r.T < lastT {
				// Within one connection records may interleave
				// (ACKs arrive while later rounds transmit), so
				// only the global merge guarantees order; here we
				// simply note it rather than require it.
				sorted = false
			}
			lastT = r.T
		}
		_ = sorted
		return dataBytes == size && reqBytes == int64(req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlowStartRoundPacing(t *testing.T) {
	// With InitCwnd=2 and MaxCwnd=6, a 20-segment transfer takes rounds of
	// 2, 4, 6, 6, 2 — five RTT-separated rounds. Verify the data-segment
	// round structure by counting distinct round start times.
	cfg := DefaultConfig(7)
	cfg.InitCwnd = 2
	cfg.MaxCwnd = 6
	var recs []trace.Record
	genConnection(cfg, &recs, 0, 1, 0.2 /* big RTT to separate rounds */, 1e7, 20*1460, 300)
	var dataTimes []time.Duration
	for _, r := range recs {
		if r.Dir == trace.Out && int(r.App)-TCPHeaderDelta > 0 {
			dataTimes = append(dataTimes, r.T)
		}
	}
	if len(dataTimes) != 20 {
		t.Fatalf("segments = %d, want 20", len(dataTimes))
	}
	// Count gaps larger than half an RTT: these separate rounds.
	rounds := 1
	for i := 1; i < len(dataTimes); i++ {
		if dataTimes[i]-dataTimes[i-1] > 100*time.Millisecond {
			rounds++
		}
	}
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5 (2+4+6+6+2)", rounds)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.SessionRate = 0 },
		func(c *Config) { c.MSS = 0 },
		func(c *Config) { c.InitCwnd = 0 },
		func(c *Config) { c.MaxCwnd = c.InitCwnd - 1 },
		func(c *Config) { c.DelayedAckEvery = 0 },
		func(c *Config) { c.ObjectSize = nil },
		func(c *Config) { c.RTT = nil },
	}
	for i, mutate := range cases {
		c := DefaultConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := Generate(Config{}, trace.HandlerFunc(func(trace.Record) {})); err == nil {
		t.Error("Generate accepted a zero config")
	}
}

func TestOfferedLoadNearGameServer(t *testing.T) {
	// DefaultConfig is calibrated to offer bits at the same order as the
	// paper's game server (~880 kbs) so router comparisons are fair.
	cfg := DefaultConfig(8)
	cfg.Duration = 10 * time.Minute
	st, err := Generate(cfg, trace.HandlerFunc(func(trace.Record) {}))
	if err != nil {
		t.Fatal(err)
	}
	bw := float64(st.MeanBandwidth())
	if bw < 200e3 || bw > 4e6 {
		t.Errorf("offered load %.0f bps outside the comparable band", bw)
	}
}

func TestRunNATWebTrafficSurvives(t *testing.T) {
	// The §IV-A head-to-head: at a comparable bit rate, web traffic's
	// larger packets stay well inside the device's lookup capacity, so
	// loss should be negligible where the game sees ~1.3%.
	cfg := DefaultConfig(9)
	cfg.Duration = 5 * time.Minute
	res, err := RunNAT(cfg, nat.DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets() == 0 {
		t.Fatal("no packets offered")
	}
	if res.LossIn() > 0.002 {
		t.Errorf("web incoming loss %.4f, want < 0.002", res.LossIn())
	}
	if res.LossOut() > 0.002 {
		t.Errorf("web outgoing loss %.4f, want < 0.002", res.LossOut())
	}
	offered := res.Counts.ClientToNAT + res.Counts.ServerToNAT
	if offered != res.Stats.Packets() {
		t.Errorf("device saw %d packets, generator produced %d", offered, res.Stats.Packets())
	}
}
