package dist

import "testing"

// TestSplitterStreamsArePure pins the property parallel generation relies
// on: Stream(i) depends only on the splitter's creation point and on i —
// not on the order, count or interleaving of other Stream calls.
func TestSplitterStreamsArePure(t *testing.T) {
	mk := func() Splitter { return NewRNG(99).NewSplitter() }

	a := mk()
	b := mk()
	// Draw from b's streams in a scrambled order with extra streams mixed
	// in; stream 7 must still match a's stream 7 drawn first.
	for _, i := range []uint64{3, 12, 7, 0, 1 << 40} {
		b.Stream(i).Float64()
	}
	s1, s2 := a.Stream(7), b.Stream(7)
	for k := 0; k < 100; k++ {
		if v1, v2 := s1.Float64(), s2.Float64(); v1 != v2 {
			t.Fatalf("draw %d: stream 7 diverged: %v vs %v", k, v1, v2)
		}
	}
}

// TestSplitterStreamsDiffer is a cheap sanity check that distinct indexes
// give distinct streams.
func TestSplitterStreamsDiffer(t *testing.T) {
	sp := NewRNG(1).NewSplitter()
	seen := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		v := sp.Stream(i).Uint64()
		if seen[v] {
			t.Fatalf("stream %d repeated first draw %x", i, v)
		}
		seen[v] = true
	}
}
