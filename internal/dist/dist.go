// Package dist provides the deterministic random-variate machinery shared by
// every stochastic component of the reproduction: a splittable seeded RNG and
// a small algebra of samplers (constant, uniform, exponential, normal,
// lognormal, Pareto, truncation, mixtures, empirical quantile tables) plus a
// Zipf rank sampler for the skewed client-popularity model.
//
// Everything is driven by an explicit *RNG so that simulations are exactly
// reproducible from a single seed, and independent subsystems can Split()
// their own streams without perturbing one another.
package dist

import (
	"errors"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic, seedable random source. It wraps math/rand/v2's
// PCG so that a given seed always yields the same stream on every platform.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a generator from a seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x94d049bb133111eb))}
}

// Split derives an independent generator from this one. The parent advances,
// so successive Splits yield distinct streams.
func (g *RNG) Split() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// Splitter derives an indexed family of independent RNG streams from one
// point in a parent stream: Stream(i) depends only on the two key words
// drawn when the Splitter was created and on i, never on how many other
// streams were created or in what order. That is what lets work units
// (e.g. one simulation tick each) be processed out of order or on parallel
// workers while sampling exactly the values a sequential run would.
type Splitter struct {
	k1, k2 uint64
}

// NewSplitter draws the key material for an indexed stream family,
// advancing the parent by two words.
func (g *RNG) NewSplitter() Splitter {
	return Splitter{k1: g.r.Uint64(), k2: g.r.Uint64()}
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose output is
// statistically independent across consecutive inputs, the standard way to
// derive seed families from a counter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// Stream returns the i-th stream of the family. Calls are pure: the same
// (Splitter, i) always yields an identical generator.
func (s Splitter) Stream(i uint64) *RNG {
	a := splitmix64(s.k1 ^ i)
	b := splitmix64(s.k2 + i*0x9E3779B97F4A7C15)
	return &RNG{r: rand.New(rand.NewPCG(a, b))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Intn returns a uniform value in [0,n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.IntN(n) }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Sampler draws real-valued variates from a distribution.
type Sampler interface {
	Sample(r *RNG) float64
}

// Constant always returns V.
type Constant struct{ V float64 }

// Sample implements Sampler.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Uniform is the continuous uniform distribution on [Low, High).
type Uniform struct{ Low, High float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *RNG) float64 {
	return u.Low + r.Float64()*(u.High-u.Low)
}

// Exponential has mean MeanV.
type Exponential struct{ MeanV float64 }

// Sample implements Sampler.
func (e Exponential) Sample(r *RNG) float64 { return e.MeanV * r.ExpFloat64() }

// Normal is the Gaussian distribution.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// LogNormal is parameterized by the underlying normal's location and shape.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// LogNormalFromMean returns a lognormal whose distribution mean is mean and
// whose log-domain shape is sigma (mu = ln(mean) − sigma²/2).
func LogNormalFromMean(mean, sigma float64) Sampler {
	return LogNormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Pareto is the classic Pareto distribution with scale Xm and shape Alpha;
// its mean is Alpha·Xm/(Alpha−1) for Alpha > 1.
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Sampler.
func (p Pareto) Sample(r *RNG) float64 {
	u := 1 - r.Float64() // (0,1], avoids division by zero
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// Truncated rejection-samples S into [Low, High], clamping after a bounded
// number of attempts so pathological configurations cannot spin forever.
type Truncated struct {
	S         Sampler
	Low, High float64
}

// Sample implements Sampler.
func (t Truncated) Sample(r *RNG) float64 {
	for i := 0; i < 64; i++ {
		v := t.S.Sample(r)
		if v >= t.Low && v <= t.High {
			return v
		}
	}
	v := t.S.Sample(r)
	if v < t.Low {
		return t.Low
	}
	if v > t.High {
		return t.High
	}
	return v
}

// Empirical samples uniformly from a table of values — with the table built
// from evenly spaced quantiles this is inverse-CDF sampling of the fitted
// distribution.
type Empirical struct{ Values []float64 }

// Sample implements Sampler.
func (e Empirical) Sample(r *RNG) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	return e.Values[r.Intn(len(e.Values))]
}

// Mixture samples one of its components with the configured weights.
type Mixture struct {
	samplers []Sampler
	cum      []float64 // normalized cumulative weights
}

// NewMixture builds a mixture of samplers with the given positive weights
// (normalized internally).
func NewMixture(samplers []Sampler, weights []float64) (Sampler, error) {
	if len(samplers) == 0 || len(samplers) != len(weights) {
		return nil, errors.New("dist: mixture needs matching samplers and weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("dist: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("dist: mixture weights sum to zero")
	}
	m := &Mixture{samplers: samplers, cum: make([]float64, len(weights))}
	var cum float64
	for i, w := range weights {
		cum += w / total
		m.cum[i] = cum
	}
	m.cum[len(m.cum)-1] = 1
	return m, nil
}

// Sample implements Sampler.
func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.samplers[i].Sample(r)
		}
	}
	return m.samplers[len(m.samplers)-1].Sample(r)
}

// Zipf draws ranks 0..N-1 with probability proportional to 1/(rank+1)^s —
// the skewed re-visit popularity of the regular client population.
type Zipf struct {
	cum []float64
}

// NewZipf builds the rank distribution over n elements with exponent s ≥ 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("dist: zipf needs n > 0")
	}
	if s < 0 || math.IsNaN(s) {
		return nil, errors.New("dist: zipf needs exponent ≥ 0")
	}
	z := &Zipf{cum: make([]float64, n)}
	var total float64
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		z.cum[k] = total
	}
	for k := range z.cum {
		z.cum[k] /= total
	}
	z.cum[n-1] = 1
	return z, nil
}

// Rank draws a rank in [0, N).
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
