package scenario

import (
	"testing"
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
)

func testSpec(seed uint64, n int) Spec {
	return Spec{
		Seed:      seed,
		Servers:   n,
		Duration:  3 * time.Minute,
		Warmup:    time.Minute,
		SlotMix:   []int{22, 32},
		Stagger:   20 * time.Second,
		SpikeMult: 4,
		RateScale: 5,
	}
}

// TestBuildExpandsSpec checks the declarative expansion: seeds diverge,
// slot/tick mixes cycle, demand scales with capacity, offsets stagger.
func TestBuildExpandsSpec(t *testing.T) {
	sp := testSpec(9, 4)
	sp.TickMix = []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	servers, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 4 {
		t.Fatalf("built %d servers", len(servers))
	}
	base := gamesim.PaperConfig(1)
	for i, s := range servers {
		if s.Game.Seed == base.Seed || (i > 0 && s.Game.Seed == servers[0].Game.Seed) {
			t.Errorf("server %d: seed not derived independently", i)
		}
		wantSlots := sp.SlotMix[i%2]
		if s.Game.Slots != wantSlots {
			t.Errorf("server %d: slots = %d, want %d", i, s.Game.Slots, wantSlots)
		}
		if s.Game.TickInterval != sp.TickMix[i%2] {
			t.Errorf("server %d: tick = %v", i, s.Game.TickInterval)
		}
		if want := time.Duration(i) * sp.Stagger; s.StartOffset != want {
			t.Errorf("server %d: offset = %v, want %v", i, s.StartOffset, want)
		}
		// Demand tracks capacity: the 32-slot boxes draw ~32/22 the rate.
		wantRate := base.AttemptRate * sp.RateScale * float64(wantSlots) / float64(base.Slots)
		if got := s.Game.AttemptRate; got < wantRate*0.999 || got > wantRate*1.001 {
			t.Errorf("server %d: attempt rate %.4f, want %.4f", i, got, wantRate)
		}
		if err := s.Game.Validate(); err != nil {
			t.Errorf("server %d: built config invalid: %v", i, err)
		}
	}
}

// TestValidateRejectsCoarseTicks: the merge's disorder bound depends on the
// tick interval staying within the suite's sorting slack.
func TestValidateRejectsCoarseTicks(t *testing.T) {
	sp := testSpec(1, 2)
	sp.TickMix = []time.Duration{200 * time.Millisecond}
	servers, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Servers: servers}
	if err := cfg.Validate(); err == nil {
		t.Error("200ms tick accepted; merge disorder bound not enforced")
	}

	// A zero tick must come back as an error from Build, not a
	// divide-by-zero panic.
	sp.TickMix = []time.Duration{0}
	if _, err := sp.Build(); err == nil {
		t.Error("zero tick interval accepted by Build")
	}
}

// TestMergedStreamDisorderBounded feeds the merged stream through an Extra
// handler and asserts the disorder the downstream SortBuffer must absorb
// stays under the suite's 200 ms slack, and that timestamps cover the
// staggered horizon.
func TestMergedStreamDisorderBounded(t *testing.T) {
	servers, err := testSpec(4, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Servers: servers}
	var maxSeen, maxDisorder, last time.Duration
	cfg.Extra = trace.HandlerFunc(func(r trace.Record) {
		if r.T > maxSeen {
			maxSeen = r.T
		}
		if d := maxSeen - r.T; d > maxDisorder {
			maxDisorder = d
		}
		last = r.T
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if maxDisorder >= 200*time.Millisecond {
		t.Errorf("merged stream disorder %v exceeds the suite's 200ms sorting slack", maxDisorder)
	}
	if horizon := cfg.Horizon(); last < horizon-time.Minute {
		t.Errorf("last record at %v, staggered horizon %v: offsets not applied", last, horizon)
	}
	if res.Horizon != 3*time.Minute+2*20*time.Second {
		t.Errorf("horizon = %v", res.Horizon)
	}
}

// TestLaunchSpikeRaisesDemand: the gamesim surge knob must actually surge —
// the same seed with a 6× spike draws substantially more attempts inside
// the decay window than without.
func TestLaunchSpikeRaisesDemand(t *testing.T) {
	base := gamesim.PaperConfig(2)
	base.Duration = 10 * time.Minute
	base.Warmup = 0
	base.Outages = nil
	base.DiurnalAmp = 0

	spiked := base
	spiked.SpikeMult = 6
	spiked.SpikeDecay = 5 * time.Minute

	flat, err := gamesim.Run(base, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	surged, err := gamesim.Run(spiked, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if surged.Attempts < 2*flat.Attempts {
		t.Errorf("spike barely moved demand: %d attempts vs %d flat", surged.Attempts, flat.Attempts)
	}
}

// TestSpikeValidation: a surge without a decay constant is a config error.
func TestSpikeValidation(t *testing.T) {
	cfg := gamesim.PaperConfig(1)
	cfg.SpikeMult = 3
	cfg.SpikeDecay = 0
	if err := cfg.Validate(); err == nil {
		t.Error("SpikeMult > 1 with zero SpikeDecay accepted")
	}
}
