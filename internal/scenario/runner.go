package scenario

import (
	"sync"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// streamDepth bounds each server's in-flight block channel: enough to keep
// the generator ahead of the merge, small enough that a fast server
// backpressures instead of buffering its whole trace.
const streamDepth = 4

// fleetBlock is one per-tick block from one server, tagged for the merge.
// Per-server block order needs no tag: each stream's channel is FIFO and
// the merge holds exactly one head block per stream.
type fleetBlock struct {
	recs trace.Block
	minT time.Duration // minimum timestamp in recs (offset applied)
}

var fleetBlockPool = sync.Pool{
	New: func() any {
		return &fleetBlock{recs: make(trace.Block, 0, trace.BlockSize)}
	},
}

// serverSink receives one server's per-tick batches on its worker
// goroutine: each batch feeds the optional per-server collectors in local
// time, then a time-shifted copy is tagged and sent to the merge.
type serverSink struct {
	out    chan<- *fleetBlock
	offset time.Duration
	per    *analysis.Suite     // full per-box suite; may be nil
	slim   *analysis.SlimSuite // slim per-box set; may be nil
}

// HandleBatch implements trace.BatchHandler.
func (s *serverSink) HandleBatch(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	if s.per != nil {
		s.per.HandleBatch(rs)
	}
	if s.slim != nil {
		s.slim.HandleBatch(rs)
	}
	blk := fleetBlockPool.Get().(*fleetBlock)
	blk.recs = append(blk.recs[:0], rs...)
	if s.offset != 0 {
		for i := range blk.recs {
			blk.recs[i].T += s.offset
		}
	}
	minT := blk.recs[0].T
	for _, r := range blk.recs[1:] {
		if r.T < minT {
			minT = r.T
		}
	}
	blk.minT = minT
	s.out <- blk
}

// Handle implements trace.Handler (the generator emits whole blocks, but
// keep the record path correct for any per-record producer).
func (s *serverSink) Handle(r trace.Record) { s.HandleBatch([]trace.Record{r}) }

// taggedEvent carries a session event through the cross-server event merge.
type taggedEvent struct {
	ev     gamesim.SessionEvent
	server int
}

// ServerResult is one server's share of a fleet run.
type ServerResult struct {
	Name  string
	Game  gamesim.Config
	Stats gamesim.Stats
	// Suite is the server's own closed analysis suite (timestamps in the
	// server's local clock); nil unless Config.PerServer is PerServerFull.
	Suite *analysis.Suite
	// Slim is the server's closed slim collector set; nil unless
	// Config.PerServer is PerServerSlim.
	Slim *analysis.SlimSuite
}

// WireBytes returns the server's total wire bytes under the paper's
// accounting (application payload plus per-packet framing overhead).
func (sr ServerResult) WireBytes() int64 {
	st := sr.Stats
	return st.AppBytesIn + st.AppBytesOut +
		(st.PacketsIn+st.PacketsOut)*units.WireOverhead
}

// MeanKbs returns the server's mean wire bandwidth over its own run
// duration, in decimal kilobits per second.
func (sr ServerResult) MeanKbs() float64 {
	sec := sr.Stats.Duration.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(8*sr.WireBytes()) / sec / 1e3
}

// Result is a completed fleet run.
type Result struct {
	// Horizon is the fleet trace length.
	Horizon time.Duration
	// Suite is the closed aggregate suite over the merged stream.
	Suite *analysis.Suite
	// Stats sums the per-server generator statistics over the horizon.
	Stats gamesim.Stats
	// Servers holds per-server stats (and suites when requested).
	Servers []ServerResult
	// GroupDepths holds the aggregate suite's collector-group channel
	// statistics when the merge fed a sharded sink; nil for serial runs.
	GroupDepths []analysis.GroupDepth
	// Rebalances holds the adaptive shard's unit migrations (Parallelism
	// auto); nil for serial and statically sharded runs.
	Rebalances []analysis.Rebalance
}

// Run simulates the fleet: every server generates on its own goroutine, the
// per-tick blocks merge deterministically by (min timestamp, server index),
// and the merged stream drives the aggregate suite. The merge order depends
// only on the generated data, never on goroutine scheduling, so results are
// byte-identical across runs and Parallelism settings.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	horizon := cfg.Horizon()
	if cfg.Suite.Duration == 0 {
		cfg.Suite = analysis.DefaultSuiteConfig(horizon)
	}
	suite, err := analysis.NewSuite(cfg.Suite)
	if err != nil {
		return nil, err
	}
	// The aggregate sink takes its share of the worker budget first (Sink
	// resolves sched.Auto against it); the fill stages split what is left.
	// Order matters on small boxes: the merge-fed suite is the run's one
	// always-hot consumer, the fills backpressure behind it.
	rawSink, closeSink := suite.Sink(cfg.Parallelism)
	sink := rawSink
	if cfg.Extra != nil {
		sink = trace.Tee(sink, cfg.Extra)
	}

	n := len(cfg.Servers)
	genWorkers := make([]int, n)
	for i := range genWorkers {
		genWorkers[i] = cfg.Servers[i].Game.Workers
	}
	switch {
	case cfg.GenWorkers == sched.Auto:
		// One fair split of the budget's remainder instead of n servers
		// independently resolving Auto (which would hand the whole machine
		// to whichever server asked first).
		lease := sched.Default().Acquire(sched.Default().Total())
		defer lease.Release()
		copy(genWorkers, sched.Split(lease.Workers(), n))
	case cfg.GenWorkers > 0:
		for i := range genWorkers {
			genWorkers[i] = cfg.GenWorkers
		}
	}
	res := &Result{Horizon: horizon, Suite: suite, Servers: make([]ServerResult, n)}
	chans := make([]chan *fleetBlock, n)
	events := make([][]taggedEvent, n)
	errs := make([]error, n)

	for i, sp := range cfg.Servers {
		chans[i] = make(chan *fleetBlock, streamDepth)
		sr := ServerResult{Name: sp.Name, Game: sp.Game}
		switch cfg.PerServer {
		case PerServerFull:
			// Per-box suites see one generator's stream, which is strictly
			// time-ordered, so they skip the sorting stage.
			sc := analysis.DefaultSuiteConfig(sp.Game.Duration)
			sc.SortedInput = true
			if sr.Suite, err = analysis.NewSuite(sc); err != nil {
				closeSink()
				return nil, err
			}
		case PerServerSlim:
			sr.Slim = analysis.NewSlimSuite(sp.Game.Duration)
		}
		res.Servers[i] = sr
	}

	var wg sync.WaitGroup
	for i, sp := range cfg.Servers {
		wg.Add(1)
		go func(i int, sp ServerSpec, per *analysis.Suite, slim *analysis.SlimSuite) {
			defer wg.Done()
			defer close(chans[i])
			sp.Game.Workers = genWorkers[i]
			ss := &serverSink{out: chans[i], offset: sp.StartOffset, per: per, slim: slim}
			ev := func(e gamesim.SessionEvent) {
				if per != nil {
					per.Observe(e)
				}
				e.T += sp.StartOffset
				events[i] = append(events[i], taggedEvent{ev: e, server: i})
			}
			st, err := gamesim.Run(sp.Game, ss, ev)
			if per != nil {
				per.Close()
			}
			if slim != nil {
				slim.Close()
			}
			res.Servers[i].Stats = st
			errs[i] = err
		}(i, sp, res.Servers[i].Suite, res.Servers[i].Slim)
	}

	// K-way merge on this goroutine: hold one head block per live stream,
	// repeatedly emit the (minT, server) minimum and refill that stream.
	// Channels are FIFO, so per-server block order is preserved no matter
	// what the tags say; the tournament only decides the interleave.
	lt := newLoserTree(chans)
	for {
		blk, _, ok := lt.next()
		if !ok {
			break
		}
		trace.Dispatch(sink, blk.recs)
		fleetBlockPool.Put(blk)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			closeSink()
			return nil, err
		}
	}

	// Feed the aggregate player series the cross-server event merge in
	// (T, server) order, then finalize. PlayerSeries is independent of the
	// record stream, so feeding it after the records changes nothing.
	mergeEvents(events, func(te taggedEvent) { suite.Observe(te.ev) })
	closeSink()
	if sh, ok := rawSink.(*analysis.ShardedSuite); ok {
		res.GroupDepths = sh.Depths()
		res.Rebalances = sh.Rebalances()
	}

	res.Stats = aggregateStats(res, horizon)
	return res, nil
}

// mergeEvents merges the per-server event slices (each already in time
// order) by (T, server index) and feeds them to emit.
func mergeEvents(streams [][]taggedEvent, emit func(taggedEvent)) {
	idx := make([]int, len(streams))
	for {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || s[idx[i]].ev.T < streams[best][idx[best]].ev.T {
				best = i
			}
		}
		if best == -1 {
			return
		}
		emit(streams[best][idx[best]])
		idx[best]++
	}
}

// aggregateStats sums per-server generator statistics into fleet totals
// over the fleet horizon. MaxConcurrent sums the per-server maxima — the
// fleet's peak occupancy upper bound.
func aggregateStats(res *Result, horizon time.Duration) gamesim.Stats {
	var agg gamesim.Stats
	agg.Duration = horizon
	for _, sr := range res.Servers {
		st := sr.Stats
		agg.MapsPlayed += st.MapsPlayed
		agg.Attempts += st.Attempts
		agg.Established += st.Established
		agg.Refused += st.Refused
		agg.UniqueAttempting += st.UniqueAttempting
		agg.UniqueEstablishing += st.UniqueEstablishing
		agg.MaxConcurrent += st.MaxConcurrent
		agg.TotalSessionTime += st.TotalSessionTime
		agg.PacketsIn += st.PacketsIn
		agg.PacketsOut += st.PacketsOut
		agg.AppBytesIn += st.AppBytesIn
		agg.AppBytesOut += st.AppBytesOut
		agg.PlayerSeconds += st.PlayerSeconds
	}
	return agg
}
