package scenario

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// Reference k-way merge: the container/heap implementation the loser tree
// replaced, kept verbatim as the test oracle. Property tests assert the
// tournament emits exactly the sequence this does, element for element.

type refHead struct {
	blk    *fleetBlock
	server int
}

type refHeap []refHead

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].blk.minT != h[j].blk.minT {
		return h[i].blk.minT < h[j].blk.minT
	}
	return h[i].server < h[j].server
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refHead)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type emitted struct {
	blk    *fleetBlock
	server int
}

// refMerge drains the streams with the reference heap.
func refMerge(chans []chan *fleetBlock) []emitted {
	var out []emitted
	var h refHeap
	for i, ch := range chans {
		if blk, ok := <-ch; ok {
			h = append(h, refHead{blk: blk, server: i})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		head := h[0]
		out = append(out, emitted{blk: head.blk, server: head.server})
		if blk, ok := <-chans[head.server]; ok {
			h[0] = refHead{blk: blk, server: head.server}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// treeMerge drains the streams with the loser tree under test.
func treeMerge(chans []chan *fleetBlock) []emitted {
	var out []emitted
	lt := newLoserTree(chans)
	for {
		blk, server, ok := lt.next()
		if !ok {
			return out
		}
		out = append(out, emitted{blk: blk, server: server})
	}
}

// randomStreams builds k per-stream block sequences with seeded random
// lengths and non-decreasing minT values (real streams are time-ordered),
// deliberately including duplicate timestamps across streams so the
// server-index tiebreak is exercised, and empty streams.
func randomStreams(rng *rand.Rand, k, maxLen int) [][]*fleetBlock {
	streams := make([][]*fleetBlock, k)
	for i := range streams {
		n := rng.Intn(maxLen + 1)
		var t time.Duration
		for j := 0; j < n; j++ {
			// Coarse quantization: collisions across streams are common.
			t += time.Duration(rng.Intn(4)) * 50 * time.Millisecond
			streams[i] = append(streams[i], &fleetBlock{minT: t})
		}
	}
	return streams
}

// feed replays the pre-built streams into fresh channels.
func feed(streams [][]*fleetBlock) []chan *fleetBlock {
	chans := make([]chan *fleetBlock, len(streams))
	for i, s := range streams {
		chans[i] = make(chan *fleetBlock, streamDepth)
		go func(ch chan *fleetBlock, blocks []*fleetBlock) {
			for _, b := range blocks {
				ch <- b
			}
			close(ch)
		}(chans[i], s)
	}
	return chans
}

func assertSameMerge(t *testing.T, streams [][]*fleetBlock) {
	t.Helper()
	want := refMerge(feed(streams))
	got := treeMerge(feed(streams))
	if len(got) != len(want) {
		t.Fatalf("loser tree emitted %d blocks, reference heap %d", len(got), len(want))
	}
	for i := range want {
		if got[i].blk != want[i].blk || got[i].server != want[i].server {
			t.Fatalf("emission %d: tree gave stream %d block %p (minT %v), heap gave stream %d block %p (minT %v)",
				i, got[i].server, got[i].blk, got[i].blk.minT,
				want[i].server, want[i].blk, want[i].blk.minT)
		}
	}
}

// TestLoserTreeMatchesHeapMerge is the property test: across seeded random
// fleet shapes — stream counts, lengths, timestamp collisions, empty
// streams — the tournament's emission sequence equals the reference heap's
// element for element (same block pointer, same stream, same position).
func TestLoserTreeMatchesHeapMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(17) // 1..17 covers power-of-two boundaries 1,2,4,8,16
		streams := randomStreams(rng, k, 40)
		assertSameMerge(t, streams)
	}
}

// TestLoserTreeSingleStream pins the N=1 degenerate case: the tree is a
// bare leaf and must drain the stream in channel order.
func TestLoserTreeSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	streams := randomStreams(rng, 1, 100)
	got := treeMerge(feed(streams))
	if len(got) != len(streams[0]) {
		t.Fatalf("emitted %d of %d blocks", len(got), len(streams[0]))
	}
	for i, e := range got {
		if e.blk != streams[0][i] || e.server != 0 {
			t.Fatalf("emission %d: got stream %d block %p, want stream 0 block %p",
				i, e.server, e.blk, streams[0][i])
		}
	}
}

// TestLoserTreeThousandStreams is the wide edge case: 1000 streams (padded
// to 1024 leaves, most of a level exhausted from the start once short
// streams drain) still merge in exact reference order.
func TestLoserTreeThousandStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	streams := randomStreams(rng, 1000, 3)
	assertSameMerge(t, streams)
}

// TestLoserTreeAllEmpty: a fleet whose every stream closes without a block
// must terminate immediately.
func TestLoserTreeAllEmpty(t *testing.T) {
	streams := make([][]*fleetBlock, 5)
	if got := treeMerge(feed(streams)); len(got) != 0 {
		t.Fatalf("emitted %d blocks from empty streams", len(got))
	}
}
