package scenario

// loserTree is the fleet merge: a tournament tree over the per-server
// block streams that replaces the container/heap merge loop. The order
// contract is unchanged — emit the (minT, server) minimum, refill that
// stream, repeat — but the per-block cost drops from heap.Fix's ~2·log2 k
// interface-dispatched Less calls to exactly ceil(log2 k) inline integer
// comparisons: the merge goroutine is the one serial stage of a fleet run,
// so at high server counts its per-block constant is the fleet's ceiling.
//
// Layout: m = next power of two ≥ k leaves (streams; the padding leaves
// are permanently exhausted and lose every match), node[1..m-1] hold each
// internal match's *loser*, node[0] the overall winner. Re-inserting a
// refilled stream touches only the leaf's root path: compare against each
// stored loser, swap when the incumbent wins, and the element that
// survives to the top is the new overall winner.
//
// Refill is deferred: next pops the winner and only receives the stream's
// next block at the following call, so the caller dispatches the popped
// block downstream while the winning server's generator refills its
// channel — the same overlap the heap loop had.
type loserTree struct {
	chans []chan *fleetBlock
	head  []*fleetBlock // current head per leaf; nil = exhausted
	node  []int         // node[0] = winner leaf, node[1..m-1] = match losers
	m     int           // leaf count, next power of two >= len(chans)
	fill  int           // leaf awaiting refill before the next pop; -1 = none
}

// newLoserTree blocks for one head block per stream (index order, exactly
// like the heap merge's prime loop) and builds the initial tournament.
func newLoserTree(chans []chan *fleetBlock) *loserTree {
	m := 1
	for m < len(chans) {
		m <<= 1
	}
	lt := &loserTree{
		chans: chans,
		head:  make([]*fleetBlock, m),
		node:  make([]int, m),
		m:     m,
		fill:  -1,
	}
	for i, ch := range chans {
		if blk, ok := <-ch; ok {
			lt.head[i] = blk
		}
	}
	lt.build()
	return lt
}

// build runs the full initial tournament: winner(n) resolves subtree n's
// winning leaf, storing each match's loser at its node on the way up.
func (lt *loserTree) build() {
	if lt.m == 1 {
		return // node[0] is already leaf 0
	}
	var winner func(n int) int
	winner = func(n int) int {
		if n >= lt.m {
			return n - lt.m
		}
		a, b := winner(2*n), winner(2*n+1)
		if lt.beats(b, a) {
			a, b = b, a
		}
		lt.node[n] = b
		return a
	}
	lt.node[0] = winner(1)
}

// beats reports whether leaf a's head precedes leaf b's under the merge
// order: (minT, stream index), with an exhausted stream as +infinity.
func (lt *loserTree) beats(a, b int) bool {
	ha, hb := lt.head[a], lt.head[b]
	switch {
	case hb == nil:
		return ha != nil || a < b
	case ha == nil:
		return false
	case ha.minT != hb.minT:
		return ha.minT < hb.minT
	}
	return a < b
}

// replay re-seats leaf j after its head changed: walk j's root path,
// swapping with any stored loser that now beats the climbing element.
func (lt *loserTree) replay(j int) {
	if lt.m == 1 {
		return
	}
	w := j
	for n := (lt.m + j) / 2; n >= 1; n /= 2 {
		if lt.beats(lt.node[n], w) {
			w, lt.node[n] = lt.node[n], w
		}
	}
	lt.node[0] = w
}

// next pops the merge's next block and its stream index; ok is false once
// every stream is exhausted. The popped stream's refill happens at the
// start of the following call.
func (lt *loserTree) next() (blk *fleetBlock, server int, ok bool) {
	if j := lt.fill; j >= 0 {
		lt.fill = -1
		if nb, open := <-lt.chans[j]; open {
			lt.head[j] = nb
		} else {
			lt.head[j] = nil
		}
		lt.replay(j)
	}
	w := lt.node[0]
	if lt.head[w] == nil {
		return nil, 0, false
	}
	lt.fill = w
	return lt.head[w], w, true
}
