// Package scenario runs multi-server fleet simulations: N independent
// gamesim servers — each with its own seed, slot count, tickrate, diurnal
// phase and start offset — generated concurrently on worker goroutines and
// merged into one time-ordered record stream by a deterministic k-way merge
// of their per-tick blocks.
//
// This is the "Microsoft or Sony launch" scale the paper's provisioning
// argument (§V) gestures at: the single busy server the paper measured is
// highly predictable, but an operator plans for the aggregate of many such
// servers, with staggered peaks, heterogeneous sizes and release-day demand
// surges. The merged stream feeds a single analysis.Suite (optionally
// sharded across cores), so every table and figure of the paper can be
// produced for the fleet aggregate; per-server suites can be collected
// alongside for per-box vs aggregate comparison.
//
// The merge is deterministic by construction: each server's per-tick blocks
// are tagged with their minimum timestamp and interleaved in (minimum
// timestamp, server index) order, with per-server block order preserved by
// the streams' FIFO channels, so the merged stream — and therefore the
// rendered report — is byte-identical across runs and across Parallelism
// settings. A one-server scenario degenerates to exactly the stream plain
// Reproduce sees.
package scenario

import (
	"errors"
	"fmt"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
)

// ServerSpec is one fully-specified server in a fleet.
type ServerSpec struct {
	// Name labels the server in per-server results ("srv03" if empty).
	Name string
	// Game is the server's workload model.
	Game gamesim.Config
	// StartOffset shifts every record and event timestamp: the server's
	// recorded window begins this long after the fleet trace starts.
	StartOffset time.Duration
}

// Spec declares a fleet without spelling out every server: Build expands it
// into per-server gamesim configurations derived from the paper's
// calibration.
type Spec struct {
	// Seed derives every server's independent seed.
	Seed uint64
	// Servers is the fleet size.
	Servers int
	// Duration is each server's recorded window (0 = 30 minutes).
	Duration time.Duration
	// Warmup is each server's warm-up (0 = the paper's one-map-cycle
	// warm-up, so every box starts busy).
	Warmup time.Duration

	// SlotMix assigns server i SlotMix[i % len] player slots; nil keeps
	// the paper's 22. Arrival demand scales with the slot count so every
	// size class runs at the paper's per-slot utilization.
	SlotMix []int
	// TickMix assigns server i TickMix[i % len] as snapshot broadcast
	// period; nil keeps the paper's 50 ms. Ticks above 100 ms are
	// rejected: the merged stream's disorder must stay within the
	// analysis suite's sorting slack.
	TickMix []time.Duration

	// Stagger starts server i's recorded window i·Stagger into the fleet
	// trace (rolling region launches).
	Stagger time.Duration
	// DiurnalSpread spreads the servers' evening demand peaks evenly
	// across this span (time-zone diversity): server i's DiurnalPeak
	// shifts by i·DiurnalSpread/Servers.
	DiurnalSpread time.Duration

	// SpikeMult > 1 applies a launch-day arrival surge to every server:
	// the attempt rate starts at SpikeMult× and decays with time constant
	// SpikeDecay (default 10 minutes). See gamesim.Config.SpikeMult.
	SpikeMult  float64
	SpikeDecay time.Duration

	// RateScale multiplies every server's arrival rate (0 = 1). Short
	// windows typically use ~5 so the fleet runs at busy-server load, as
	// cstrace.Quick does.
	RateScale float64

	// Tune, if non-nil, edits server i's derived configuration last —
	// the escape hatch for anything the declarative fields don't cover.
	Tune func(i int, cfg *gamesim.Config)
}

// maxTick bounds per-server tick intervals so cross-server block disorder
// stays within the analysis suite's 200 ms sorting slack.
const maxTick = 100 * time.Millisecond

// serverSeed derives independent per-server seeds (splitmix increment).
func serverSeed(seed uint64, i int) uint64 {
	return seed + uint64(i+1)*0x9E3779B97F4A7C15
}

// Build expands the declarative spec into concrete per-server specs.
func (sp Spec) Build() ([]ServerSpec, error) {
	if sp.Servers <= 0 {
		return nil, errors.New("scenario: Servers must be positive")
	}
	duration := sp.Duration
	if duration == 0 {
		duration = 30 * time.Minute
	}
	scale := sp.RateScale
	if scale == 0 {
		scale = 1
	}
	spikeDecay := sp.SpikeDecay
	if spikeDecay == 0 {
		spikeDecay = 10 * time.Minute
	}
	servers := make([]ServerSpec, sp.Servers)
	for i := range servers {
		g := gamesim.PaperConfig(serverSeed(sp.Seed, i))
		g.Duration = duration
		if sp.Warmup != 0 {
			g.Warmup = sp.Warmup
		}
		if len(sp.SlotMix) > 0 {
			slots := sp.SlotMix[i%len(sp.SlotMix)]
			if slots <= 0 {
				return nil, fmt.Errorf("scenario: server %d: non-positive slot count", i)
			}
			// Demand tracks capacity: a 64-slot box draws proportionally
			// more arrivals than the paper's 22-slot one.
			g.AttemptRate *= float64(slots) / float64(g.Slots)
			g.Slots = slots
		}
		if len(sp.TickMix) > 0 {
			g.TickInterval = sp.TickMix[i%len(sp.TickMix)]
			if g.TickInterval <= 0 {
				return nil, fmt.Errorf("scenario: server %d: non-positive tick interval", i)
			}
			if g.Warmup%g.TickInterval != 0 {
				// Keep the warm-up a whole number of ticks.
				g.Warmup = g.Warmup / g.TickInterval * g.TickInterval
			}
		}
		if sp.DiurnalSpread > 0 {
			g.DiurnalPeak += time.Duration(i) * sp.DiurnalSpread / time.Duration(sp.Servers)
		}
		if sp.SpikeMult > 1 {
			g.SpikeMult = sp.SpikeMult
			g.SpikeDecay = spikeDecay
		}
		g.AttemptRate *= scale
		// Drop calibrated outages that fall outside the shortened window.
		var outages []gamesim.Outage
		for _, o := range g.Outages {
			if o.At+o.Duration <= g.Duration {
				outages = append(outages, o)
			}
		}
		g.Outages = outages
		if sp.Tune != nil {
			sp.Tune(i, &g)
		}
		servers[i] = ServerSpec{
			Name:        fmt.Sprintf("srv%02d", i),
			Game:        g,
			StartOffset: time.Duration(i) * sp.Stagger,
		}
	}
	return servers, nil
}

// PerServerMode selects what is collected per server alongside the fleet
// aggregate.
type PerServerMode int

const (
	// PerServerNone collects nothing per box (the default).
	PerServerNone PerServerMode = iota
	// PerServerFull runs the complete paper suite per box — every table
	// and figure, at full sweep cost. Right for small fleets studied in
	// depth.
	PerServerFull
	// PerServerSlim runs the lightweight analysis.SlimSuite per box:
	// counters and minute series only, a small fraction of the full
	// suite's cost, so per-box collection scales to hundreds of servers.
	PerServerSlim
)

// Config configures one fleet run.
type Config struct {
	// Servers is the fleet; RunSpec builds it from a Spec.
	Servers []ServerSpec
	// Suite configures the aggregate analysis suite; the zero value sizes
	// the paper suite to the fleet horizon.
	Suite analysis.SuiteConfig
	// Parallelism shards the aggregate suite's collector groups across
	// workers, exactly as cstrace.Config.Parallelism does. sched.Auto
	// takes the suite's share from the process worker budget (adaptive
	// sharding when the machine affords it, serial on one core). Results
	// are byte-identical across settings.
	Parallelism int
	// GenWorkers overrides every server's fill-stage worker count: 0
	// keeps each ServerSpec's own Game.Workers, sched.Auto splits the
	// worker budget's remainder fairly across the fleet, and a positive
	// value applies to every server. Results are byte-identical across
	// settings.
	GenWorkers int
	// PerServer selects per-box collection: nothing, the full paper suite,
	// or the slim counters+minutes set.
	PerServer PerServerMode
	// Extra, if non-nil, receives the merged record stream — e.g. a
	// trace.Writer behind a 200 ms trace.SortBuffer to persist the fleet
	// trace as an indexed v2 file (`cstrace -mode scenario -out`): the
	// merge's cross-server disorder is bounded by one tick window
	// (≤ 100 ms), so that slack restores the strict order the Writer
	// requires.
	Extra trace.Handler
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if len(c.Servers) == 0 {
		return errors.New("scenario: no servers configured")
	}
	if c.GenWorkers < 0 && c.GenWorkers != sched.Auto {
		return errors.New("scenario: GenWorkers must be non-negative or sched.Auto")
	}
	for i, s := range c.Servers {
		if err := s.Game.Validate(); err != nil {
			return fmt.Errorf("scenario: server %d (%s): %w", i, s.Name, err)
		}
		if s.Game.TickInterval > maxTick {
			return fmt.Errorf("scenario: server %d (%s): TickInterval %v exceeds %v (merge disorder bound)",
				i, s.Name, s.Game.TickInterval, maxTick)
		}
		if s.StartOffset < 0 {
			return fmt.Errorf("scenario: server %d (%s): negative StartOffset", i, s.Name)
		}
	}
	return nil
}

// Horizon returns the fleet trace length: the latest instant any server's
// recorded window covers.
func (c *Config) Horizon() time.Duration {
	var h time.Duration
	for _, s := range c.Servers {
		if end := s.StartOffset + s.Game.Duration; end > h {
			h = end
		}
	}
	return h
}
