// Package units provides the size, rate and overhead conventions used
// throughout the trace analysis.
//
// The paper's byte accounting ("Total Bytes" in its Table II) counts bytes on
// the wire: application payload plus the full Ethernet/IP/UDP framing
// including preamble and FCS. Its "GB" is the binary gibibyte, and its "kbs"
// is decimal kilobits per second. This package pins those conventions down in
// one place so every module agrees with the paper and with each other.
package units

import "fmt"

// Per-packet framing overhead above the UDP payload, in bytes. The paper's
// tables imply exactly 58 bytes/packet of overhead, consistently in both
// directions: (64.42-37.41) GiB / 500e6 pkts = (24.92-10.13) GiB / 273.85e6
// = (39.49-27.28) GiB / 226.15e6 = 58.0. That is Ethernet on the wire
// (preamble+SFD 8, MAC header 14, 802.1Q VLAN tag 4, FCS 4) plus IPv4 (20)
// and UDP (8); the capture link was evidently VLAN-tagged.
const (
	EthernetPreambleSFD = 8  // preamble + start frame delimiter
	EthernetHeader      = 14 // dst MAC, src MAC, ethertype
	EthernetVLANTag     = 4  // 802.1Q tag present on the capture link
	EthernetFCS         = 4  // frame check sequence
	IPv4Header          = 20 // no options
	UDPHeader           = 8

	// WireOverhead is the total per-packet overhead added to the
	// application payload when counting wire bytes.
	WireOverhead = EthernetPreambleSFD + EthernetHeader + EthernetVLANTag +
		EthernetFCS + IPv4Header + UDPHeader
)

// Binary byte multiples (the paper's "GB" is GiB).
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// Bytes is a byte count that formats itself in the paper's binary units.
type Bytes int64

// GiB returns the count in binary gigabytes.
func (b Bytes) GiB() float64 { return float64(b) / GiB }

// MiB returns the count in binary megabytes.
func (b Bytes) MiB() float64 { return float64(b) / MiB }

// String renders the count the way the paper's tables do ("64.42 GB").
func (b Bytes) String() string {
	v := float64(b)
	switch {
	case v >= GiB:
		return fmt.Sprintf("%.2f GB", v/GiB)
	case v >= MiB:
		return fmt.Sprintf("%.2f MB", v/MiB)
	case v >= KiB:
		return fmt.Sprintf("%.2f KB", v/KiB)
	}
	return fmt.Sprintf("%d B", int64(b))
}

// BitsPerSecond is a data rate. The paper reports rates in decimal kilobits
// per second, written "kbs".
type BitsPerSecond float64

// Kbs returns the rate in decimal kilobits per second.
func (r BitsPerSecond) Kbs() float64 { return float64(r) / 1e3 }

// Mbs returns the rate in decimal megabits per second.
func (r BitsPerSecond) Mbs() float64 { return float64(r) / 1e6 }

// String renders the rate as the paper does ("883 kbs").
func (r BitsPerSecond) String() string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2f Mbs", r.Mbs())
	case r >= 1e3:
		return fmt.Sprintf("%.0f kbs", r.Kbs())
	}
	return fmt.Sprintf("%.0f bs", float64(r))
}

// Rate converts a byte count over a duration in seconds to a bit rate.
func Rate(bytes Bytes, seconds float64) BitsPerSecond {
	if seconds <= 0 {
		return 0
	}
	return BitsPerSecond(float64(bytes) * 8 / seconds)
}

// PacketsPerSecond is a packet rate.
type PacketsPerSecond float64

// String renders the rate as the paper does ("798.11 pkts/sec").
func (r PacketsPerSecond) String() string {
	return fmt.Sprintf("%.2f pkts/sec", float64(r))
}

// PacketRate converts a packet count over a duration in seconds to a rate.
func PacketRate(packets int64, seconds float64) PacketsPerSecond {
	if seconds <= 0 {
		return 0
	}
	return PacketsPerSecond(float64(packets) / seconds)
}

// ModemRate is the nominal last-mile bottleneck the paper identifies:
// the ubiquitous 56 kbps modem, whose typical realized throughput is
// 40-50 kbs. The paper observes per-player bandwidth pegged at ~40 kbs.
const (
	ModemRate        BitsPerSecond = 56e3
	ModemTypicalLow  BitsPerSecond = 40e3
	ModemTypicalHigh BitsPerSecond = 50e3
)

// Duration formatting: the paper writes the trace length as
// "7 d, 6 h, 1 m, 17.03 s".
func FormatDuration(seconds float64) string {
	d := int64(seconds) / 86400
	rem := seconds - float64(d*86400)
	h := int64(rem) / 3600
	rem -= float64(h * 3600)
	m := int64(rem) / 60
	rem -= float64(m * 60)
	return fmt.Sprintf("%d d, %d h, %d m, %.2f s", d, h, m, rem)
}
