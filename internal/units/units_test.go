package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWireOverheadMatchesPaper(t *testing.T) {
	// Table II minus Table III is 58.0 B/packet, in both directions.
	if WireOverhead != 58 {
		t.Fatalf("WireOverhead = %d, want 58", WireOverhead)
	}
	checks := []struct {
		wireGiB, appGiB, packets float64
	}{
		{64.42, 37.41, 500e6},    // total
		{24.92, 10.13, 273.85e6}, // inbound
		{39.49, 27.28, 226.15e6}, // outbound
	}
	for _, c := range checks {
		perPacket := (c.wireGiB - c.appGiB) * GiB / c.packets
		if math.Abs(perPacket-WireOverhead) > 0.25 {
			t.Errorf("paper-implied overhead %.2f B/pkt, model %d", perPacket, WireOverhead)
		}
	}
}

func TestPaperBandwidthIsGiB(t *testing.T) {
	// 64.42 GiB over 626,477 s should be the paper's 883 kbs mean bandwidth.
	gib := float64(GiB)
	r := Rate(Bytes(64.42*gib), 626477)
	if math.Abs(r.Kbs()-883) > 1.0 {
		t.Errorf("mean bandwidth = %.1f kbs, want ~883", r.Kbs())
	}
	// And the decimal interpretation would NOT match, confirming GB==GiB.
	rDec := Rate(Bytes(64.42e9), 626477)
	if math.Abs(rDec.Kbs()-883) < 20 {
		t.Errorf("decimal GB interpretation unexpectedly matches paper: %.1f kbs", rDec.Kbs())
	}
}

func TestBytesString(t *testing.T) {
	gib := float64(GiB)
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2 * KiB, "2.00 KB"},
		{5 * MiB, "5.00 MB"},
		{Bytes(64.42 * gib), "64.42 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   BitsPerSecond
		want string
	}{
		{500, "500 bs"},
		{883e3, "883 kbs"},
		{1.5e6, "1.50 Mbs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestPacketRate(t *testing.T) {
	r := PacketRate(500_000_000, 626477)
	if math.Abs(float64(r)-798.11) > 0.2 {
		t.Errorf("packet rate = %v, want ~798.11", r)
	}
	if got := r.String(); got != "798.11 pkts/sec" {
		t.Errorf("String() = %q", got)
	}
	if PacketRate(10, 0) != 0 {
		t.Error("zero duration should give zero rate")
	}
}

func TestFormatDuration(t *testing.T) {
	// The paper's own headline: 626,477.03 s = 7 d, 6 h, 1 m, 17.03 s.
	got := FormatDuration(626477.03)
	want := "7 d, 6 h, 1 m, 17.03 s"
	if got != want {
		t.Errorf("FormatDuration = %q, want %q", got, want)
	}
}

func TestRateZeroDuration(t *testing.T) {
	if Rate(100, 0) != 0 {
		t.Error("zero duration should give zero rate")
	}
	if Rate(100, -5) != 0 {
		t.Error("negative duration should give zero rate")
	}
}

func TestRateRoundTripProperty(t *testing.T) {
	// bytes -> rate -> bytes is the identity for positive durations.
	f := func(kb uint16, decis uint8) bool {
		bytes := Bytes(int64(kb) + 1)
		secs := float64(decis)/10 + 0.1
		r := Rate(bytes, secs)
		back := float64(r) * secs / 8
		return math.Abs(back-float64(bytes)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
