// Package timeseries provides fixed-interval binned series and the block
// aggregation underlying the paper's multi-time-scale analysis.
//
// The paper examines the server's packet process at interval sizes from
// 10 ms (Fig 6) through 50 ms (Fig 8), 1 s (Fig 9) and 30 min (Fig 10), and
// studies variance as a function of aggregation level (Fig 5). Binner
// accumulates a count/sum process into equal bins; Aggregate produces the
// m-aggregated series X^(m) used by the aggregated-variance method.
package timeseries

import (
	"errors"
	"time"
)

// Binner accumulates values into fixed-duration bins indexed from time zero.
// It is append-only and assumes (but does not require) roughly time-ordered
// input; out-of-order samples are binned correctly as long as they are not
// earlier than bin zero.
type Binner struct {
	interval time.Duration
	bins     []float64
}

// NewBinner creates a binner with the given bin width.
func NewBinner(interval time.Duration) (*Binner, error) {
	if interval <= 0 {
		return nil, errors.New("timeseries: NewBinner: interval must be positive")
	}
	return &Binner{interval: interval}, nil
}

// MustBinner is NewBinner for statically known-good intervals.
func MustBinner(interval time.Duration) *Binner {
	b, err := NewBinner(interval)
	if err != nil {
		panic(err)
	}
	return b
}

// Add accumulates v into the bin containing time t (an offset from the trace
// start). Negative times are clamped into bin zero.
func (b *Binner) Add(t time.Duration, v float64) {
	i := 0
	if t > 0 {
		i = int(t / b.interval)
	}
	for i >= len(b.bins) {
		b.bins = append(b.bins, 0)
	}
	b.bins[i] += v
}

// Interval returns the bin width.
func (b *Binner) Interval() time.Duration { return b.interval }

// Len returns the number of bins so far.
func (b *Binner) Len() int { return len(b.bins) }

// Bins returns the underlying bin values. The slice is owned by the binner.
func (b *Binner) Bins() []float64 { return b.bins }

// PadTo extends the series with zero bins so it covers through time t.
// Needed because quiet tails (e.g. an outage at end of trace) otherwise
// leave bins unmaterialized.
func (b *Binner) PadTo(t time.Duration) {
	n := int(t / b.interval)
	for len(b.bins) < n {
		b.bins = append(b.bins, 0)
	}
}

// Rates converts per-bin sums into per-second rates.
func (b *Binner) Rates() []float64 {
	out := make([]float64, len(b.bins))
	sec := b.interval.Seconds()
	for i, v := range b.bins {
		out[i] = v / sec
	}
	return out
}

// Aggregate returns the m-aggregated series: consecutive non-overlapping
// blocks of m values averaged together, X^(m)_k = (1/m) Σ X_{km+i}.
// A trailing partial block is discarded, as in the standard method.
func Aggregate(xs []float64, m int) []float64 {
	if m <= 0 {
		return nil
	}
	n := len(xs) / m
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var s float64
		base := k * m
		for i := 0; i < m; i++ {
			s += xs[base+i]
		}
		out[k] = s / float64(m)
	}
	return out
}

// AggregateSum is Aggregate without the 1/m normalization (block sums).
func AggregateSum(xs []float64, m int) []float64 {
	out := Aggregate(xs, m)
	for i := range out {
		out[i] *= float64(m)
	}
	return out
}

// Window returns the first n values of xs (or all of them, if shorter);
// the paper's small-scale figures plot "the first 200 intervals".
func Window(xs []float64, n int) []float64 {
	if n > len(xs) {
		n = len(xs)
	}
	return xs[:n]
}

// Point is one (x, y) sample of a derived series such as a variance-time
// plot.
type Point struct {
	X, Y float64
}
