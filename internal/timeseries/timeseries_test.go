package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewBinnerValidation(t *testing.T) {
	if _, err := NewBinner(0); err == nil {
		t.Error("want error for zero interval")
	}
	if _, err := NewBinner(-time.Second); err == nil {
		t.Error("want error for negative interval")
	}
}

func TestBinnerAdd(t *testing.T) {
	b := MustBinner(10 * time.Millisecond)
	b.Add(0, 1)
	b.Add(9*time.Millisecond, 1)
	b.Add(10*time.Millisecond, 1)
	b.Add(25*time.Millisecond, 5)
	b.Add(-time.Millisecond, 2) // clamped to bin 0
	bins := b.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != 4 || bins[1] != 1 || bins[2] != 5 {
		t.Errorf("bins = %v", bins)
	}
}

func TestBinnerPadTo(t *testing.T) {
	b := MustBinner(time.Second)
	b.Add(500*time.Millisecond, 1)
	b.PadTo(5 * time.Second)
	if b.Len() != 5 {
		t.Errorf("Len = %d, want 5", b.Len())
	}
	// Padding never shrinks.
	b.PadTo(time.Second)
	if b.Len() != 5 {
		t.Error("PadTo shrank the series")
	}
}

func TestBinnerRates(t *testing.T) {
	b := MustBinner(50 * time.Millisecond)
	b.Add(0, 10) // 10 packets in 50ms -> 200/s
	r := b.Rates()
	if math.Abs(r[0]-200) > 1e-9 {
		t.Errorf("rate = %v, want 200", r[0])
	}
}

func TestAggregate(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := Aggregate(xs, 2)
	want := []float64{1.5, 3.5, 5.5} // trailing 7 discarded
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
			break
		}
	}
	if Aggregate(xs, 0) != nil {
		t.Error("m=0 should return nil")
	}
	if len(Aggregate(xs, 10)) != 0 {
		t.Error("m>len should return empty")
	}
}

func TestAggregateSumPreservesTotalProperty(t *testing.T) {
	// Property: sum of AggregateSum equals sum of the consumed prefix.
	f := func(raw []float64, m8 uint8) bool {
		m := int(m8)%8 + 1
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		agg := AggregateSum(xs, m)
		var sumAgg, sumPrefix float64
		for _, v := range agg {
			sumAgg += v
		}
		n := (len(xs) / m) * m
		for _, v := range xs[:n] {
			sumPrefix += v
		}
		return math.Abs(sumAgg-sumPrefix) <= 1e-6*(1+math.Abs(sumPrefix))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAggregateMeanInvariantProperty(t *testing.T) {
	// Property: the mean of the aggregated series equals the mean of the
	// consumed prefix (aggregation preserves the first moment).
	f := func(raw []float64, m8 uint8) bool {
		m := int(m8)%5 + 1
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) < m {
			return true
		}
		agg := Aggregate(xs, m)
		n := len(agg) * m
		var ma, mp float64
		for _, v := range agg {
			ma += v
		}
		ma /= float64(len(agg))
		for _, v := range xs[:n] {
			mp += v
		}
		mp /= float64(n)
		return math.Abs(ma-mp) <= 1e-6*(1+math.Abs(mp))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindow(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Window(xs, 2); len(got) != 2 || got[1] != 2 {
		t.Errorf("Window = %v", got)
	}
	if got := Window(xs, 10); len(got) != 3 {
		t.Errorf("Window beyond length = %v", got)
	}
}
