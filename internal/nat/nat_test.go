package nat

import (
	"testing"
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Capacity: 0, QueueIn: 1, QueueOut: 1},
		{Capacity: 100, ServiceJitter: -0.1, QueueIn: 1, QueueOut: 1},
		{Capacity: 100, ServiceJitter: 1.0, QueueIn: 1, QueueOut: 1},
		{Capacity: 100, QueueIn: 0, QueueOut: 1},
		{Capacity: 100, QueueIn: 1, QueueOut: 0},
	}
	for i, c := range bad {
		if _, err := New(c, nil); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := New(DefaultConfig(1), nil); err != nil {
		t.Fatal(err)
	}
}

func TestConservation(t *testing.T) {
	// offered = delivered + dropped, per direction.
	d, err := New(Config{Capacity: 100, QueueIn: 2, QueueOut: 2, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		dir := trace.In
		if i%3 == 0 {
			dir = trace.Out
		}
		d.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: dir, App: 40})
	}
	c := d.Counts()
	if c.ClientToNAT+c.ServerToNAT != 1000 {
		t.Errorf("offered total %d", c.ClientToNAT+c.ServerToNAT)
	}
	if c.NATToServer > c.ClientToNAT || c.NATToClients > c.ServerToNAT {
		t.Error("delivered exceeds offered")
	}
}

func TestNoLossUnderLightLoad(t *testing.T) {
	d, _ := New(Config{Capacity: 10000, QueueIn: 10, QueueOut: 10, Seed: 2}, nil)
	for i := 0; i < 10000; i++ {
		d.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: trace.In, App: 40})
	}
	c := d.Counts()
	if c.LossIn() != 0 {
		t.Errorf("light load should be lossless, got %.4f", c.LossIn())
	}
}

func TestOverloadDropsButForwardsInOrder(t *testing.T) {
	var last time.Duration = -1
	ordered := true
	next := trace.HandlerFunc(func(r trace.Record) {
		if r.T < last {
			ordered = false
		}
		last = r.T
	})
	// 10x overload.
	d, _ := New(Config{Capacity: 100, QueueIn: 5, QueueOut: 5, Seed: 3}, next)
	for i := 0; i < 5000; i++ {
		d.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: trace.In, App: 40})
	}
	c := d.Counts()
	if c.LossIn() < 0.5 {
		t.Errorf("10x overload should drop heavily, got %.3f", c.LossIn())
	}
	if !ordered {
		t.Error("forwarded stream must be time-sorted")
	}
	// Delivered rate approaches capacity.
	rate := float64(c.NATToServer) / 5.0
	if rate < 80 || rate > 120 {
		t.Errorf("delivered rate %.0f pps, want ~100 (capacity-bound)", rate)
	}
}

func TestBurstAsymmetry(t *testing.T) {
	// Synthetic reproduction of the paper's mechanism: a 20-packet
	// synchronized burst each 50 ms (out) plus smooth arrivals (in).
	// The smooth direction must lose more than the bursty one given a
	// deep LAN buffer and a shallow WAN buffer.
	d, _ := New(Config{Capacity: 1250, ServiceJitter: 0.5, QueueIn: 7, QueueOut: 23, Seed: 4}, nil)
	var recs []trace.Record
	for tick := 0; tick < 36000; tick++ { // 30 min of 50 ms ticks
		base := time.Duration(tick) * 50 * time.Millisecond
		for i := 0; i < 21; i++ {
			recs = append(recs, trace.Record{T: base + time.Duration(i)*15*time.Microsecond, Dir: trace.Out, App: 130})
		}
		for i := 0; i < 26; i++ {
			off := time.Duration(i)*1923*time.Microsecond + time.Duration(tick%7)*280*time.Microsecond
			recs = append(recs, trace.Record{T: base + off, Dir: trace.In, App: 40})
		}
	}
	// Records are close to sorted; sort strictly by T (stable merge of the
	// two patterns).
	sortRecords(recs)
	for _, r := range recs {
		d.Handle(r)
	}
	c := d.Counts()
	if c.LossIn() <= 2*c.LossOut() {
		t.Errorf("incoming loss (%.4f) should far exceed outgoing (%.4f)", c.LossIn(), c.LossOut())
	}
	if c.LossIn() == 0 {
		t.Error("expected some incoming loss at this load")
	}
}

func sortRecords(recs []trace.Record) {
	// Insertion sort is fine: input is nearly sorted.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].T < recs[j-1].T; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Counts {
		d, _ := New(DefaultConfig(7), nil)
		for i := 0; i < 20000; i++ {
			dir := trace.In
			if i%2 == 0 {
				dir = trace.Out
			}
			d.Handle(trace.Record{T: time.Duration(i) * 700 * time.Microsecond, Dir: dir, App: 80})
		}
		return d.Counts()
	}
	if run() != run() {
		t.Error("same seed must give identical counts")
	}
}

func TestExperimentReproducesTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("30-minute NAT experiment")
	}
	res, err := RunExperiment(gamesim.NATExperimentConfig(42), DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts

	// Paper Table IV: 1.3% incoming loss, 0.46% outgoing (see package doc
	// on the 0.046% typo). Bands allow for model stochasticity.
	if got := c.LossIn(); got < 0.006 || got > 0.025 {
		t.Errorf("incoming loss = %.4f, want ~0.013", got)
	}
	if got := c.LossOut(); got < 0.001 || got > 0.012 {
		t.Errorf("outgoing loss = %.4f, want ~0.0046", got)
	}
	if c.LossIn() <= 1.5*c.LossOut() {
		t.Errorf("asymmetry: in %.4f should clearly exceed out %.4f", c.LossIn(), c.LossOut())
	}

	// Offered volumes should be in the ballpark of the paper's 30-minute
	// map (853,035 in / 677,278 out).
	if c.ClientToNAT < 500_000 || c.ClientToNAT > 1_200_000 {
		t.Errorf("clients->NAT packets = %d, want ~853k", c.ClientToNAT)
	}
	if c.ServerToNAT < 400_000 || c.ServerToNAT > 1_000_000 {
		t.Errorf("server->NAT packets = %d, want ~677k", c.ServerToNAT)
	}

	// Figs 14-15: series present and showing drop-outs on the delivered
	// side of the incoming path: some seconds lose >5% of offered packets.
	if len(res.ClientsToNAT) != 1800 || len(res.NATToServer) != 1800 {
		t.Fatalf("series lengths %d/%d", len(res.ClientsToNAT), len(res.NATToServer))
	}
	dropouts := 0
	for i := range res.ClientsToNAT {
		if res.ClientsToNAT[i] > 0 && res.NATToServer[i] < 0.95*res.ClientsToNAT[i] {
			dropouts++
		}
	}
	if dropouts == 0 {
		t.Error("expected visible per-second drop-outs on NAT->server (Fig 14b)")
	}

	// The paper: buffering 50 ms spikes consumes >1/4 of tolerable latency.
	// Our mean forwarding delay must stay in the same regime (milliseconds,
	// spiking toward tens of ms).
	if res.MaxDelayIn < 0.005 {
		t.Errorf("max incoming delay %.4fs implausibly small", res.MaxDelayIn)
	}
	t.Logf("loss in %.3f%% out %.3f%%; offered in %d out %d; delay mean/max in %.1f/%.1f ms",
		c.LossIn()*100, c.LossOut()*100, c.ClientToNAT, c.ServerToNAT,
		res.MeanDelayIn*1e3, res.MaxDelayIn*1e3)
}
