package nat

import (
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
)

// ExperimentResult bundles everything the paper reports for the NAT
// experiment: Table IV and the four per-second packet-load series of
// Figs 14-15.
type ExperimentResult struct {
	Counts Counts
	Stats  gamesim.Stats

	// Fig 14: incoming path. ClientsToNAT is the offered load (stable);
	// NATToServer is what survives the device (drop-outs).
	ClientsToNAT []float64
	NATToServer  []float64
	// Fig 15: outgoing path.
	ServerToNAT  []float64
	NATToClients []float64

	// Forwarding delay (seconds): the paper argues buffering the 50 ms
	// spikes would consume "more than a quarter of the maximum tolerable
	// latency"; these let the claim be checked.
	MeanDelayIn, MaxDelayIn   float64
	MeanDelayOut, MaxDelayOut float64
}

// RunExperiment reproduces §IV-A: a single 30-minute map traced through the
// device. gameCfg is typically gamesim.NATExperimentConfig(seed) and natCfg
// DefaultConfig(seed).
func RunExperiment(gameCfg gamesim.Config, natCfg Config) (ExperimentResult, error) {
	seconds := int(gameCfg.Duration / time.Second)

	offered := struct {
		in, out *analysis.IntervalWindow
	}{
		analysis.NewIntervalWindow(time.Second, seconds),
		analysis.NewIntervalWindow(time.Second, seconds),
	}
	delivered := struct {
		in, out *analysis.IntervalWindow
	}{
		analysis.NewIntervalWindow(time.Second, seconds),
		analysis.NewIntervalWindow(time.Second, seconds),
	}

	// Offered -> [count offered] -> device -> [count delivered].
	after := trace.HandlerFunc(func(r trace.Record) {
		if r.Dir == trace.In {
			delivered.in.Handle(r)
		} else {
			delivered.out.Handle(r)
		}
	})
	device, err := New(natCfg, after)
	if err != nil {
		return ExperimentResult{}, err
	}
	before := trace.HandlerFunc(func(r trace.Record) {
		if r.Dir == trace.In {
			offered.in.Handle(r)
		} else {
			offered.out.Handle(r)
		}
		device.Handle(r)
	})
	// The queueing model needs a strictly time-ordered arrival stream; the
	// generator's disorder is bounded by one tick.
	sorter := trace.NewSortBuffer(2*gameCfg.TickInterval, before)

	st, err := gamesim.Run(gameCfg, sorter, nil)
	if err != nil {
		return ExperimentResult{}, err
	}
	sorter.Flush()

	return ExperimentResult{
		Counts:       device.Counts(),
		Stats:        st,
		ClientsToNAT: offered.in.InPPS(),
		NATToServer:  delivered.in.InPPS(),
		ServerToNAT:  offered.out.OutPPS(),
		NATToClients: delivered.out.OutPPS(),
		MeanDelayIn:  device.DelayIn().Mean(),
		MaxDelayIn:   device.DelayIn().Max(),
		MeanDelayOut: device.DelayOut().Mean(),
		MaxDelayOut:  device.DelayOut().Max(),
	}, nil
}
