package nat

import (
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
)

// ExperimentResult bundles everything the paper reports for the NAT
// experiment: Table IV and the four per-second packet-load series of
// Figs 14-15.
type ExperimentResult struct {
	Counts Counts
	Stats  gamesim.Stats

	// Fig 14: incoming path. ClientsToNAT is the offered load (stable);
	// NATToServer is what survives the device (drop-outs).
	ClientsToNAT []float64
	NATToServer  []float64
	// Fig 15: outgoing path.
	ServerToNAT  []float64
	NATToClients []float64

	// Forwarding delay (seconds): the paper argues buffering the 50 ms
	// spikes would consume "more than a quarter of the maximum tolerable
	// latency"; these let the claim be checked.
	MeanDelayIn, MaxDelayIn   float64
	MeanDelayOut, MaxDelayOut float64
}

// RunExperiment reproduces §IV-A: a single 30-minute map traced through the
// device. gameCfg is typically gamesim.NATExperimentConfig(seed) and natCfg
// DefaultConfig(seed).
//
// The whole path is block-oriented: the generator's per-tick blocks tee to
// the offered-load window and the device in one call each, and the device
// forwards each block's survivors to the delivered-load window as one
// block. The generator emits a strictly time-ordered stream, which is
// exactly what the queueing model needs — no sorting stage.
func RunExperiment(gameCfg gamesim.Config, natCfg Config) (ExperimentResult, error) {
	seconds := int(gameCfg.Duration / time.Second)

	// One window per side of the device: IntervalWindow bins each
	// direction separately, so the four series of Figs 14-15 are two
	// collectors, not four.
	offered := analysis.NewIntervalWindow(time.Second, seconds)
	delivered := analysis.NewIntervalWindow(time.Second, seconds)

	// Offered -> [count offered] -> device -> [count delivered].
	device, err := New(natCfg, delivered)
	if err != nil {
		return ExperimentResult{}, err
	}
	st, err := gamesim.Run(gameCfg, trace.Tee(offered, device), nil)
	if err != nil {
		return ExperimentResult{}, err
	}

	return ExperimentResult{
		Counts:       device.Counts(),
		Stats:        st,
		ClientsToNAT: offered.InPPS(),
		NATToServer:  delivered.InPPS(),
		ServerToNAT:  offered.OutPPS(),
		NATToClients: delivered.OutPPS(),
		MeanDelayIn:  device.DelayIn().Mean(),
		MaxDelayIn:   device.DelayIn().Max(),
		MeanDelayOut: device.DelayOut().Mean(),
		MaxDelayOut:  device.DelayOut().Max(),
	}, nil
}
