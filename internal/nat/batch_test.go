package nat

import (
	"testing"
	"time"

	"cstrace/internal/trace"
)

// TestDeviceBatchMatchesPerRecord: the device's batch path must count,
// drop, restamp and forward exactly as the per-record path does.
func TestDeviceBatchMatchesPerRecord(t *testing.T) {
	// A bursty offered stream: 20 back-to-back outgoing packets per 50 ms
	// tick plus incoming packets trickling through the interval — the
	// §IV-A shape that overruns the forwarding engine.
	var recs []trace.Record
	for tick := 0; tick < 400; tick++ {
		base := time.Duration(tick) * 50 * time.Millisecond
		for b := 0; b < 40; b++ {
			recs = append(recs, trace.Record{T: base + time.Duration(b)*15*time.Microsecond,
				Dir: trace.Out, Client: uint32(b + 1), App: 130})
		}
		for c := 0; c < 30; c++ {
			recs = append(recs, trace.Record{T: base + time.Duration(c+1)*1500*time.Microsecond,
				Dir: trace.In, Client: uint32(c + 1), App: 40})
		}
	}

	var one trace.Collect
	d1, err := New(DefaultConfig(3), &one)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		d1.Handle(r)
	}

	var batch trace.Collect
	d2, err := New(DefaultConfig(3), &batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(recs); i += 333 {
		end := min(i+333, len(recs))
		d2.HandleBatch(recs[i:end])
	}

	if d1.Counts() != d2.Counts() {
		t.Fatalf("counts diverge: %+v vs %+v", d1.Counts(), d2.Counts())
	}
	if len(one.Records) != len(batch.Records) {
		t.Fatalf("forwarded %d per-record vs %d batched", len(one.Records), len(batch.Records))
	}
	for i := range one.Records {
		if one.Records[i] != batch.Records[i] {
			t.Fatalf("record %d diverges", i)
		}
	}
	if d1.Counts().LossIn() == 0 {
		t.Error("offered stream never lost an incoming packet; queue path unexercised")
	}
}
