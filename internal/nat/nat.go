// Package nat models the consumer store-and-forward NAT device of the
// paper's §IV-A experiment (an SMC Barricade with a quoted routing capacity
// of 1000-1500 pps): a single shared forwarding engine with a finite
// per-direction ingress queue.
//
// The model explains the paper's loss asymmetry mechanically. Every 50 ms
// the server hands the device a back-to-back burst of ~20 packets; draining
// the burst occupies the shared engine for ~16 ms, during which the
// client-side packets that trickle in independently pile onto their small
// ingress queue and overflow. The outgoing burst itself usually fits its
// (deeper) LAN-side buffer, so outgoing loss stays an order of magnitude
// lower — 1.3% inbound vs 0.46% outbound in the paper's Table IV.
//
// (Table IV prints the outgoing loss as "0.046%", but its own packet counts
// give 3121/677278 = 0.46%, matching the body text's "almost 0.5% loss for
// outgoing packets"; the printed figure is a typo, and this model targets
// the self-consistent 0.46%.)
package nat

import (
	"errors"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/stats"
	"cstrace/internal/trace"
)

// Config parameterizes the forwarding device.
type Config struct {
	// Capacity is the sustained route-lookup rate in packets/second
	// (the Barricade's data sheet: 1000-1500 pps).
	Capacity float64
	// ServiceJitter is the fractional spread of per-packet service time.
	ServiceJitter float64
	// QueueIn is the WAN-side (client->server) ingress buffer, in packets,
	// counting the packet in service.
	QueueIn int
	// QueueOut is the LAN-side (server->clients) ingress buffer.
	QueueOut int
	// SlowProb is the per-packet probability of hitting the device's slow
	// path (NAT table maintenance, management work): service takes
	// SlowFactor times longer. This heavy tail is what occasionally lets
	// the server burst overflow even the LAN-side buffer, producing the
	// paper's small-but-nonzero outgoing loss.
	SlowProb   float64
	SlowFactor float64
	// Seed drives service-time jitter.
	Seed uint64
}

// DefaultConfig returns the configuration calibrated to the paper's Table IV
// (capacity from the device data sheet, queues set so that the modeled loss
// rates land on the measured 1.3% / 0.46%).
func DefaultConfig(seed uint64) Config {
	return Config{
		Capacity:      1430,
		ServiceJitter: 0.55,
		QueueIn:       20,
		QueueOut:      22,
		SlowProb:      0.005,
		SlowFactor:    30,
		Seed:          seed,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Capacity <= 0:
		return errors.New("nat: Capacity must be positive")
	case c.ServiceJitter < 0 || c.ServiceJitter >= 1:
		return errors.New("nat: ServiceJitter must be in [0, 1)")
	case c.QueueIn <= 0 || c.QueueOut <= 0:
		return errors.New("nat: queue lengths must be positive")
	case c.SlowProb < 0 || c.SlowProb > 1:
		return errors.New("nat: SlowProb must be in [0, 1]")
	case c.SlowProb > 0 && c.SlowFactor < 1:
		return errors.New("nat: SlowFactor must be >= 1")
	}
	return nil
}

// Counts mirrors the paper's Table IV.
type Counts struct {
	ClientToNAT  int64 // incoming offered
	NATToServer  int64 // incoming delivered
	ServerToNAT  int64 // outgoing offered
	NATToClients int64 // outgoing delivered
}

// LossIn returns the incoming loss fraction.
func (c Counts) LossIn() float64 {
	if c.ClientToNAT == 0 {
		return 0
	}
	return float64(c.ClientToNAT-c.NATToServer) / float64(c.ClientToNAT)
}

// LossOut returns the outgoing loss fraction.
func (c Counts) LossOut() float64 {
	if c.ServerToNAT == 0 {
		return 0
	}
	return float64(c.ServerToNAT-c.NATToClients) / float64(c.ServerToNAT)
}

// Device simulates the forwarding engine. Feed it offered records in time
// order via Handle; it forwards surviving records, restamped with their
// completion time, to the downstream handler.
//
// The queueing model is exact for a single FIFO server with per-direction
// finite waiting room: completions happen in arrival order, so the forwarded
// stream stays time-sorted.
type Device struct {
	cfg  Config
	rng  *dist.RNG
	next trace.Handler

	lastCompletion time.Duration
	pending        [2][]time.Duration // completion times still inside, per direction
	scratch        trace.Block        // survivors of the current batch

	counts Counts
	delay  [2]stats.Summary // forwarding delay per direction, seconds
}

// New creates a device forwarding to next (which may be nil to only count).
func New(cfg Config, next trace.Handler) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg, rng: dist.NewRNG(cfg.Seed), next: next}, nil
}

func (d *Device) service() time.Duration {
	base := float64(time.Second) / d.cfg.Capacity
	j := 1 + d.cfg.ServiceJitter*(2*d.rng.Float64()-1)
	if d.cfg.SlowProb > 0 && d.rng.Bool(d.cfg.SlowProb) {
		j *= d.cfg.SlowFactor
	}
	return time.Duration(base * j)
}

// process runs one offered record through the queueing model, returning the
// forwarded (restamped) record, or ok=false if the device dropped it.
func (d *Device) process(r trace.Record) (fwd trace.Record, ok bool) {
	dir := int(r.Dir)
	if r.Dir == trace.In {
		d.counts.ClientToNAT++
	} else {
		d.counts.ServerToNAT++
	}

	// Retire everything that has already left the device.
	for _, q := range [2]int{0, 1} {
		p := d.pending[q]
		i := 0
		for i < len(p) && p[i] <= r.T {
			i++
		}
		if i > 0 {
			d.pending[q] = append(p[:0], p[i:]...)
		}
	}

	limit := d.cfg.QueueIn
	if r.Dir == trace.Out {
		limit = d.cfg.QueueOut
	}
	if len(d.pending[dir]) >= limit {
		return r, false // ingress buffer full: the packet is dropped
	}

	start := r.T
	if d.lastCompletion > start {
		start = d.lastCompletion
	}
	completion := start + d.service()
	d.lastCompletion = completion
	d.pending[dir] = append(d.pending[dir], completion)

	d.delay[dir].Add((completion - r.T).Seconds())
	if r.Dir == trace.In {
		d.counts.NATToServer++
	} else {
		d.counts.NATToClients++
	}
	fwd = r
	fwd.T = completion
	return fwd, true
}

// Handle implements trace.Handler for the offered stream.
func (d *Device) Handle(r trace.Record) {
	if fwd, ok := d.process(r); ok && d.next != nil {
		d.next.Handle(fwd)
	}
}

// HandleBatch implements trace.BatchHandler: the whole offered block runs
// through the queueing model and the survivors forward downstream as one
// block, so the NAT ablations consume the generator's per-tick blocks at
// pipeline speed instead of one virtual call per record.
func (d *Device) HandleBatch(rs []trace.Record) {
	d.scratch = d.scratch[:0]
	for _, r := range rs {
		if fwd, ok := d.process(r); ok {
			d.scratch = append(d.scratch, fwd)
		}
	}
	if d.next != nil {
		trace.Dispatch(d.next, d.scratch)
	}
}

// Counts returns the Table IV counters so far.
func (d *Device) Counts() Counts { return d.counts }

// DelayIn returns incoming forwarding-delay statistics (seconds).
func (d *Device) DelayIn() *stats.Summary { return &d.delay[trace.In] }

// DelayOut returns outgoing forwarding-delay statistics (seconds).
func (d *Device) DelayOut() *stats.Summary { return &d.delay[trace.Out] }

var (
	_ trace.Handler      = (*Device)(nil)
	_ trace.BatchHandler = (*Device)(nil)
)
