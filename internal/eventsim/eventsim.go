// Package eventsim is a small deterministic discrete-event simulation
// kernel: a future-event list ordered by (time, sequence) with a monotonic
// clock. The game workload generator schedules session arrivals, departures,
// map rotations and outages on it; the NAT model schedules service
// completions.
//
// Determinism: ties are broken by insertion sequence, so a run is fully
// reproducible for a given seed and schedule.
package eventsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func(now time.Duration)
	index  int // heap index; -1 once popped or canceled
	active bool
}

// Time returns the event's scheduled time.
func (e *Event) Time() time.Duration { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.active }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is the simulation kernel. The zero value is ready to use.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

// Now returns the current simulation time.
func (s *Sim) Now() time.Duration { return s.now }

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at the absolute simulation time t. Scheduling in
// the past (t < Now) runs the event at the current time instead: the kernel
// never moves backwards.
func (s *Sim) At(t time.Duration, fn func(now time.Duration)) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn, active: true}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d time.Duration, fn func(now time.Duration)) *Event {
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Canceling a fired or already-canceled
// event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || !e.active || e.index < 0 {
		return
	}
	e.active = false
	heap.Remove(&s.events, e.index)
}

// Step runs the next event. It returns false when no events remain.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if !e.active {
			continue
		}
		e.active = false
		s.now = e.at
		e.fn(s.now)
		return true
	}
	return false
}

// RunUntil executes events in order until the event list is exhausted or the
// next event is strictly after limit. The clock is left at the time of the
// last executed event (or limit, if nothing at/before it remains, so
// repeated RunUntil calls make progress).
func (s *Sim) RunUntil(limit time.Duration) {
	for len(s.events) > 0 {
		next := s.events[0]
		if !next.active {
			heap.Pop(&s.events)
			continue
		}
		if next.at > limit {
			break
		}
		s.Step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// Run executes all events to exhaustion.
func (s *Sim) Run() {
	for s.Step() {
	}
}
