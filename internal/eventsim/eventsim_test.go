package eventsim

import (
	"testing"
	"time"
)

func TestOrdering(t *testing.T) {
	var s Sim
	var got []int
	s.At(3*time.Second, func(time.Duration) { got = append(got, 3) })
	s.At(1*time.Second, func(time.Duration) { got = append(got, 1) })
	s.At(2*time.Second, func(time.Duration) { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	var s Sim
	var got []string
	s.At(time.Second, func(time.Duration) { got = append(got, "a") })
	s.At(time.Second, func(time.Duration) { got = append(got, "b") })
	s.At(time.Second, func(time.Duration) { got = append(got, "c") })
	s.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("tie order = %v (must be insertion order)", got)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var s Sim
	var fired []time.Duration
	s.After(time.Second, func(now time.Duration) {
		fired = append(fired, now)
		s.After(2*time.Second, func(now time.Duration) {
			fired = append(fired, now)
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	var s Sim
	var at time.Duration = -1
	s.At(5*time.Second, func(now time.Duration) {
		s.At(time.Second, func(now time.Duration) { at = now }) // in the past
	})
	s.Run()
	if at != 5*time.Second {
		t.Errorf("past event ran at %v, want clamped to 5s", at)
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	ran := false
	e := s.At(time.Second, func(time.Duration) { ran = true })
	if !e.Scheduled() {
		t.Error("event should be scheduled")
	}
	s.Cancel(e)
	if e.Scheduled() {
		t.Error("event should not be scheduled after cancel")
	}
	s.Run()
	if ran {
		t.Error("canceled event ran")
	}
	s.Cancel(e)   // double cancel is a no-op
	s.Cancel(nil) // nil is a no-op
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var s Sim
	var got []int
	e1 := s.At(1*time.Second, func(time.Duration) { got = append(got, 1) })
	s.At(2*time.Second, func(time.Duration) { got = append(got, 2) })
	e3 := s.At(3*time.Second, func(time.Duration) { got = append(got, 3) })
	s.Cancel(e1)
	s.Cancel(e3)
	s.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("got = %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var got []int
	for i := 1; i <= 5; i++ {
		i := i
		s.At(time.Duration(i)*time.Second, func(time.Duration) { got = append(got, i) })
	}
	s.RunUntil(3 * time.Second)
	if len(got) != 3 {
		t.Errorf("got = %v, want 3 events", got)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.RunUntil(10 * time.Second)
	if len(got) != 5 {
		t.Errorf("got = %v", got)
	}
	// Clock advances to the limit even with nothing to do.
	if s.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", s.Now())
	}
}

func TestRunUntilEventExactlyAtLimit(t *testing.T) {
	var s Sim
	ran := false
	s.At(2*time.Second, func(time.Duration) { ran = true })
	s.RunUntil(2 * time.Second)
	if !ran {
		t.Error("event at the limit should run (inclusive)")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Error("Step on empty sim should return false")
	}
}

func TestManyEventsStress(t *testing.T) {
	var s Sim
	const n = 10000
	count := 0
	// Insert in a scrambled deterministic order.
	for i := 0; i < n; i++ {
		tm := time.Duration((i*7919)%n) * time.Millisecond
		s.At(tm, func(time.Duration) { count++ })
	}
	var last time.Duration = -1
	for s.Pending() > 0 {
		if !s.Step() {
			break
		}
		if s.Now() < last {
			t.Fatal("clock moved backwards")
		}
		last = s.Now()
	}
	if count != n {
		t.Errorf("ran %d events, want %d", count, n)
	}
}
