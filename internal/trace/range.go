package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Time-range reads. The v2/v3 segment index stores each segment's MinT/MaxT,
// and the format guarantees records are in non-decreasing time order (the
// Writer rejects anything else), so both MinT and MaxT are non-decreasing
// across segments: the segments overlapping a time range form one
// contiguous run findable by binary search, and only that run needs to be
// read and decoded.

// ReadRange delivers the records with from ≤ T < to to h, in stream order
// and BlockSize-bounded batches, returning how many were delivered.
//
// For an indexed (v2+) trace on a seekable source it binary-searches the
// segment index and decodes (inflating where compressed) only the
// overlapping segments — reading a one-hour slice of a
// week-long trace costs I/O and decode proportional to the hour, not the
// week. On a columnar (v4) trace the closing boundary segment is inflated
// only up to the cut. Degraded inputs (v1, non-seekable source, damaged
// index) fall back
// to a serial scan that decodes from the start and stops at the first
// record past the range, latching an explanation in Warning when the
// degradation is unexpected. Call it on a fresh Reader.
func (r *Reader) ReadRange(from, to time.Duration, h Handler) (int64, error) {
	if to <= from || to <= 0 {
		return 0, nil
	}
	if from < 0 {
		from = 0
	}
	if !r.init {
		if err := r.readHeader(); err != nil {
			return 0, err
		}
	}
	if r.version >= version2 {
		if sa, ok := r.src.(seekerAt); ok {
			size, err := sourceSize(sa)
			if err != nil {
				r.warn = fmt.Sprintf("range read: source size unavailable (%v); using serial scan", err)
			} else if ix, err := ReadIndex(sa, size); err != nil {
				r.warn = fmt.Sprintf("segment index unreadable (%v); using serial scan", err)
			} else {
				n, err := readRangeIndexed(sa, ix, from, to, Batch(h))
				if err != nil && r.err == nil {
					r.err = err
				}
				return n, err
			}
		} else {
			r.warn = "range read needs a seekable source; using serial scan"
		}
	}

	// Serial scan: decode from the start, filter, and stop at the first
	// record at or past to — the format stores records in time order, so
	// nothing later can be in range.
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	var n int64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if rec.T >= to {
			return n, nil
		}
		if rec.T >= from {
			bat.Handle(rec)
			n++
		}
	}
}

// rangeRawBytes counts raw payload bytes materialized (inflated, or read
// out of an uncompressed run) by indexed range reads. It is a test hook:
// the partial inflate-to-cut on the closing boundary segment is observable
// only through how few bytes it touches.
var rangeRawBytes atomic.Int64

// readRangeIndexed decodes exactly the segments overlapping [from, to),
// filtering only the (at most two) boundary segments that straddle a range
// edge; interior segments deliver whole. A columnar (v4) closing boundary
// segment is not decoded wholesale: readColumnarCut inflates each column
// run only up to the first record at or past to, so a tight range pays
// decode cost for the records it returns, not the full segment. (v3
// boundary segments still inflate whole — their single interleaved flate
// stream has no per-column structure to cut.)
func readRangeIndexed(ra io.ReaderAt, ix *Index, from, to time.Duration, bh BatchHandler) (int64, error) {
	segs := ix.Segments
	lo := sort.Search(len(segs), func(i int) bool { return segs[i].MaxT >= from })
	var scratch segScratch
	var filtered Block
	var n int64
	for si := lo; si < len(segs) && segs[si].MinT < to; si++ {
		seg := segs[si]
		var blocks []*Block
		var err error
		cut := seg.Columnar() && seg.MaxT >= to
		if cut {
			blocks, err = readColumnarCut(ra, seg, ix.Version, &scratch, to)
		} else {
			blocks, err = readSegmentAt(ra, seg, ix.Version, &scratch)
			rangeRawBytes.Add(int64(seg.RawLen))
		}
		whole := seg.MinT >= from && (cut || seg.MaxT < to)
		for _, blk := range blocks {
			if whole {
				bh.HandleBatch(*blk)
				n += int64(len(*blk))
			} else {
				filtered = filtered[:0]
				for _, rec := range *blk {
					if rec.T >= from && rec.T < to {
						filtered = append(filtered, rec)
					}
				}
				if len(filtered) > 0 {
					bh.HandleBatch(filtered)
					n += int64(len(filtered))
				}
			}
			FreeBlock(blk)
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// countingReader feeds rangeRawBytes as raw column bytes come out of a
// run's literal bytes or flate stream.
type countingReader struct{ r io.Reader }

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	rangeRawBytes.Add(int64(n))
	return n, err
}

// readColumnarCut decodes a columnar segment that straddles the range's
// closing edge, materializing each column run only up to the first record
// at or past to: the delta run is scanned (inflating incrementally when
// compressed) until the cut, fixing the record count k, and the flags,
// client, and app runs are then decoded only through their first k values.
// The tail of every run — usually the bulk of the segment on a tight
// range — is never inflated. Unlike the full decoders, damage fails closed
// here: a range read that cannot trust the cut delivers nothing from the
// segment.
func readColumnarCut(ra io.ReaderAt, si SegmentInfo, version int, sc *segScratch, to time.Duration) ([]*Block, error) {
	payload, err := fetchSegmentFrame(ra, si, version, sc)
	if err != nil {
		return nil, err
	}

	// Locate the four stored runs and their raw sizes, mirroring the
	// validation the wholesale decoders perform on the payload headers.
	var rawL, stoL [4]int
	runsOff := colHeaderLen
	if si.Compressed() {
		if len(payload) < 2*colHeaderLen {
			return nil, fmt.Errorf("%w: compressed columnar payload truncated inside its headers", ErrCorrupt)
		}
		var rawSum, stoSum int
		rawL, rawSum = parseColHeader(payload)
		stoL, stoSum = parseColHeader(payload[colHeaderLen:])
		if colHeaderLen+rawSum != si.RawLen {
			return nil, fmt.Errorf("%w: column runs sum to %d bytes, segment declares %d raw", ErrCorrupt, colHeaderLen+rawSum, si.RawLen)
		}
		if 2*colHeaderLen+stoSum != si.PayloadLen {
			return nil, fmt.Errorf("%w: stored column runs sum to %d bytes, segment declares %d", ErrCorrupt, 2*colHeaderLen+stoSum, si.PayloadLen)
		}
		if rawL[1] != si.Count {
			return nil, fmt.Errorf("%w: flags column holds %d bytes for %d records", ErrCorrupt, rawL[1], si.Count)
		}
		runsOff = 2 * colHeaderLen
	} else {
		lens, err := checkColHeader(payload, si)
		if err != nil {
			return nil, err
		}
		rawL, stoL = lens, lens
	}

	// openRun points br at column c's value stream: the stored bytes
	// directly when the run is literal, or a flate reader over them when
	// deflated. Runs are consumed strictly in payload order, one at a time,
	// so one buffered reader and one flate reader serve all four.
	br := bufio.NewReaderSize(nil, 512)
	openRun := func(c int) error {
		if stoL[c] > rawL[c] {
			return fmt.Errorf("%w: %s column stored in %d bytes, larger than its %d raw", ErrCorrupt, colNames[c], stoL[c], rawL[c])
		}
		stored := payload[runsOff : runsOff+stoL[c]]
		runsOff += stoL[c]
		if stoL[c] == rawL[c] {
			br.Reset(countingReader{bytes.NewReader(stored)})
			return nil
		}
		if sc.fr == nil {
			sc.fr = flate.NewReader(bytes.NewReader(stored))
		} else if err := sc.fr.(flate.Resetter).Reset(bytes.NewReader(stored), nil); err != nil {
			return fmt.Errorf("%w: %s column: %v", ErrCorrupt, colNames[c], err)
		}
		br.Reset(countingReader{sc.fr})
		return nil
	}

	// Delta pass: scan timestamps until the cut, fixing k.
	if err := openRun(0); err != nil {
		return nil, err
	}
	last := si.BaseT
	times := make([]time.Duration, 0, 1024)
	for len(times) < si.Count {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, errColTruncated("delta", len(times))
		}
		if delta > uint64(MaxSpan) || last+time.Duration(delta) > MaxSpan {
			return nil, fmt.Errorf("%w: timestamp jump past the span cap at record %d", ErrCorrupt, len(times))
		}
		last += time.Duration(delta)
		if len(times) == 0 && last != si.MinT {
			return nil, fmt.Errorf("%w: first record at %v, header says %v", ErrCorrupt, last, si.MinT)
		}
		if last >= to {
			break
		}
		times = append(times, last)
	}
	k := len(times)
	if k == si.Count {
		// Every delta decoded without reaching to, yet the caller cut this
		// segment because its indexed MaxT is at or past to.
		return nil, fmt.Errorf("%w: segment ends at %v, index says %v", ErrCorrupt, last, si.MaxT)
	}
	if k == 0 {
		return nil, nil
	}

	blocks := newBlocksFor(k)
	i := 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			recs[j].T = times[i]
			i++
		}
	}
	fail := func(err error) ([]*Block, error) {
		for _, blk := range blocks {
			FreeBlock(blk)
		}
		return nil, err
	}

	// Flags, client, and app passes: first k values of each run.
	if err := openRun(1); err != nil {
		return fail(err)
	}
	i = 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			f, err := br.ReadByte()
			if err != nil {
				return fail(errColTruncated("flags", i))
			}
			recs[j].Dir = Direction(f & 1)
			recs[j].Kind = Kind(f >> 1 & 0x7)
			i++
		}
	}
	if err := openRun(2); err != nil {
		return fail(err)
	}
	i = 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			client, err := binary.ReadUvarint(br)
			if err != nil {
				return fail(errColTruncated("client", i))
			}
			if client > 1<<32-1 {
				return fail(fmt.Errorf("%w: out-of-range client at record %d", ErrCorrupt, i))
			}
			recs[j].Client = uint32(client)
			i++
		}
	}
	if err := openRun(3); err != nil {
		return fail(err)
	}
	i = 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			app, err := binary.ReadUvarint(br)
			if err != nil {
				return fail(errColTruncated("app", i))
			}
			if app > 1<<16-1 {
				return fail(fmt.Errorf("%w: out-of-range app at record %d", ErrCorrupt, i))
			}
			recs[j].App = uint16(app)
			i++
		}
	}
	return blocks, nil
}
