package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Time-range reads. The v2/v3 segment index stores each segment's MinT/MaxT,
// and the format guarantees records are in non-decreasing time order (the
// Writer rejects anything else), so both MinT and MaxT are non-decreasing
// across segments: the segments overlapping a time range form one
// contiguous run findable by binary search, and only that run needs to be
// read and decoded.

// ReadRange delivers the records with from ≤ T < to to h, in stream order
// and BlockSize-bounded batches, returning how many were delivered.
//
// For an indexed (v2/v3) trace on a seekable source it binary-searches the
// segment index and decodes (inflating where compressed) only the
// overlapping segments — reading a one-hour slice of a
// week-long trace costs I/O and decode proportional to the hour, not the
// week. Degraded inputs (v1, non-seekable source, damaged index) fall back
// to a serial scan that decodes from the start and stops at the first
// record past the range, latching an explanation in Warning when the
// degradation is unexpected. Call it on a fresh Reader.
func (r *Reader) ReadRange(from, to time.Duration, h Handler) (int64, error) {
	if to <= from || to <= 0 {
		return 0, nil
	}
	if from < 0 {
		from = 0
	}
	if !r.init {
		if err := r.readHeader(); err != nil {
			return 0, err
		}
	}
	if r.version >= version2 {
		if sa, ok := r.src.(seekerAt); ok {
			size, err := sourceSize(sa)
			if err != nil {
				r.warn = fmt.Sprintf("range read: source size unavailable (%v); using serial scan", err)
			} else if ix, err := ReadIndex(sa, size); err != nil {
				r.warn = fmt.Sprintf("segment index unreadable (%v); using serial scan", err)
			} else {
				n, err := readRangeIndexed(sa, ix, from, to, Batch(h))
				if err != nil && r.err == nil {
					r.err = err
				}
				return n, err
			}
		} else {
			r.warn = "range read needs a seekable source; using serial scan"
		}
	}

	// Serial scan: decode from the start, filter, and stop at the first
	// record at or past to — the format stores records in time order, so
	// nothing later can be in range.
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	var n int64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if rec.T >= to {
			return n, nil
		}
		if rec.T >= from {
			bat.Handle(rec)
			n++
		}
	}
}

// readRangeIndexed decodes exactly the segments overlapping [from, to),
// filtering only the (at most two) boundary segments that straddle a range
// edge; interior segments deliver whole.
func readRangeIndexed(ra io.ReaderAt, ix *Index, from, to time.Duration, bh BatchHandler) (int64, error) {
	segs := ix.Segments
	lo := sort.Search(len(segs), func(i int) bool { return segs[i].MaxT >= from })
	var scratch segScratch
	var filtered Block
	var n int64
	for si := lo; si < len(segs) && segs[si].MinT < to; si++ {
		seg := segs[si]
		blocks, err := readSegmentAt(ra, seg, ix.Version, &scratch)
		whole := seg.MinT >= from && seg.MaxT < to
		for _, blk := range blocks {
			if whole {
				bh.HandleBatch(*blk)
				n += int64(len(*blk))
			} else {
				filtered = filtered[:0]
				for _, rec := range *blk {
					if rec.T >= from && rec.T < to {
						filtered = append(filtered, rec)
					}
				}
				if len(filtered) > 0 {
					bh.HandleBatch(filtered)
					n += int64(len(filtered))
				}
			}
			FreeBlock(blk)
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
