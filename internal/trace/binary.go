package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary trace format: a fixed header followed by delta-encoded records.
// docs/FORMAT.md is the authoritative byte-level specification; the short
// version:
//
//	header: magic "CSTR" | version u8 | reserved [3]u8
//	record: deltaT uvarint (ns since previous record)
//	        flags  u8  (bit0: direction, bits1-3: kind)
//	        client uvarint
//	        app    uvarint
//
// Version 1 is a single varint stream of records after the header. Version 2
// (the current default) chunks the identical record encoding into
// independently-decodable segments ("CSEG" frames carrying payload length,
// record count and the delta base/min/max timestamps), then appends a
// segment index ("CSIX") and a fixed-size footer, so a reader can decode
// segments in parallel and seek by time range. The concatenation of all v2
// segment payloads is byte-for-byte the v1 record stream.
//
// Delta encoding keeps the common case (sub-millisecond gaps, small ids,
// small payloads) to a handful of bytes per record — a full-week, half
// billion packet trace fits comfortably on disk.

const (
	magic    = "CSTR"
	version1 = 1
	version2 = 2
	// currentVersion is what NewWriter emits.
	currentVersion = version2
	headerLen      = 8
)

// Format errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: corrupt record")
	// ErrNoIndex reports a trace without a segment index (a v1 file, or a
	// v2 file whose index was lost); such traces can only be scanned
	// serially.
	ErrNoIndex = errors.New("trace: no segment index")
	// ErrFinished reports a Write after Flush: a v2 Flush seals the file
	// with its index and footer.
	ErrFinished = errors.New("trace: write after Flush")
)

// Writer streams records to an io.Writer in the binary trace format.
// Records must be delivered in non-decreasing time order.
//
// NewWriter emits format v2: records are chunked into independently
// decodable segments and the file ends with a segment index + footer, so
// Reader.ReadAllParallel can fan decode out across goroutines. Flush seals
// the file and must be called exactly once, after the last Write.
type Writer struct {
	w       *bufio.Writer
	version uint8
	last    time.Duration
	wrote   bool
	sealed  bool
	n       int64
	err     error // first encode/IO error; latched for Handle paths
	off     int64 // file offset of the next frame to be written

	// SegmentPayload is the v2 target payload size per segment in bytes; a
	// segment is cut once its encoded payload reaches it. Set it before the
	// first Write; 0 means DefaultSegmentPayload. Smaller segments
	// parallelize and seek at finer grain, larger ones amortize the 76 B of
	// per-segment framing+index overhead further.
	SegmentPayload int

	seg      []byte // current segment's encoded records (v2)
	segBase  time.Duration
	segMin   time.Duration
	segMax   time.Duration
	segCount int
	index    []SegmentInfo

	buf [3*binary.MaxVarintLen64 + 1]byte
}

// DefaultSegmentPayload is the default v2 segment payload target: 256 KiB
// (~50 k records at the workload's ~5 B/record), large enough that framing
// overhead is ~0.03 %, small enough that a few seconds of trace already
// spans many parallel decode units.
const DefaultSegmentPayload = 1 << 18

// NewWriter creates a Writer emitting the current format version (v2,
// segmented + indexed).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: currentVersion}
}

// NewWriterV1 creates a Writer emitting the legacy v1 format: one
// unsegmented varint stream, no index. Readers support v1 indefinitely (see
// docs/FORMAT.md for the compatibility policy); new traces should use
// NewWriter.
func NewWriterV1(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: version1}
}

// Version returns the format version the Writer emits (1 or 2).
func (w *Writer) Version() int { return int(w.version) }

// Handle implements Handler, so a Writer can sit at the end of a pipeline.
// The first encoding error latches and surfaces from Err and Flush.
func (w *Writer) Handle(r Record) {
	if w.err == nil {
		w.err = w.Write(r)
	}
}

// HandleBatch implements BatchHandler.
func (w *Writer) HandleBatch(rs []Record) {
	for _, r := range rs {
		if w.err != nil {
			return
		}
		w.err = w.Write(r)
	}
}

// Err returns the first error latched by Handle or HandleBatch.
func (w *Writer) Err() error { return w.err }

func (w *Writer) writeHeader() error {
	w.wrote = true
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	if err := w.w.WriteByte(w.version); err != nil {
		return err
	}
	if _, err := w.w.Write([]byte{0, 0, 0}); err != nil {
		return err
	}
	w.off = headerLen
	return nil
}

// Write encodes one record.
func (w *Writer) Write(r Record) error {
	if w.sealed {
		return ErrFinished
	}
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if r.T < w.last {
		return fmt.Errorf("trace: record at %v precedes previous record at %v", r.T, w.last)
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(r.T-w.last))
	b = append(b, byte(r.Dir)&1|byte(r.Kind)<<1)
	b = binary.AppendUvarint(b, uint64(r.Client))
	b = binary.AppendUvarint(b, uint64(r.App))

	if w.version == version1 {
		w.last = r.T
		w.n++
		_, err := w.w.Write(b)
		return err
	}

	// v2: records accumulate into the current segment's payload buffer;
	// the frame header needs the payload length and record count up front,
	// so the segment is buffered whole and flushed when it reaches target.
	if w.segCount == 0 {
		w.segBase = w.last
		w.segMin = r.T
	}
	w.seg = append(w.seg, b...)
	w.segCount++
	w.segMax = r.T
	w.last = r.T
	w.n++
	if target := w.segmentTarget(); len(w.seg) >= target {
		return w.flushSegment()
	}
	return nil
}

func (w *Writer) segmentTarget() int {
	if w.SegmentPayload > 0 {
		return w.SegmentPayload
	}
	return DefaultSegmentPayload
}

// flushSegment writes the buffered segment as one "CSEG" frame and records
// its index entry.
func (w *Writer) flushSegment() error {
	if w.segCount == 0 {
		return nil
	}
	w.index = append(w.index, SegmentInfo{
		Offset:     w.off,
		PayloadLen: len(w.seg),
		Count:      w.segCount,
		BaseT:      w.segBase,
		MinT:       w.segMin,
		MaxT:       w.segMax,
	})
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(w.seg)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.segCount))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(w.segBase))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(w.segMin))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(w.segMax))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.seg); err != nil {
		return err
	}
	w.off += segHeaderLen + int64(len(w.seg))
	w.seg = w.seg[:0]
	w.segCount = 0
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush seals and flushes the trace, surfacing any error latched by the
// Handle paths first. For v2 it writes the final partial segment, the
// segment index and the footer, so it must be called exactly once, after
// the last Write; further Writes fail with ErrFinished.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.wrote {
		// An empty trace still gets a header (and, for v2, an empty
		// index + footer, so the file remains seekable and well-formed).
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if w.version == version2 && !w.sealed {
		if err := w.flushSegment(); err != nil {
			return err
		}
		if err := w.writeIndexAndFooter(); err != nil {
			return err
		}
		w.sealed = true
	}
	return w.w.Flush()
}

// Reader streams records from the binary trace format, accepting both v1
// and v2 files transparently: ReadAll / ReadAllPrefetch scan any version
// serially, and ReadAllParallel additionally decodes v2 segments on worker
// goroutines when the source is seekable, falling back to the serial scan
// (with a Warning) when it is not or the index is unreadable.
type Reader struct {
	src     io.Reader // the unbuffered source, for the indexed read path
	r       *bufio.Reader
	last    time.Duration
	init    bool
	version uint8
	seg     SegmentInfo // v2: current segment's frame header
	segLeft int         // v2: records remaining in the current segment
	done    bool        // v2: index frame reached — clean end of records
	err     error
	warn    string
}

// NewReader creates a Reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{src: r, r: bufio.NewReaderSize(r, 1<<16)}
}

// Version returns the trace format version (1 or 2), or 0 before the
// header has been read.
func (r *Reader) Version() int { return int(r.version) }

// Err returns the cause latched behind the last error the Reader surfaced,
// or nil. The sentinels (ErrBadMagic, ErrCorrupt) keep error identity
// stable for callers; Err preserves the close/EOF-tail state of the source
// — e.g. an io.ErrUnexpectedEOF from a truncated file, or the I/O error a
// failing disk returned mid-record. Errors from the parallel read path
// latch in wrapped form: errors.Is against both ErrCorrupt and the
// underlying cause works.
func (r *Reader) Err() error { return r.err }

// Warning returns a human-readable note when a read path degraded (e.g.
// ReadAllParallel fell back to a serial scan because the index was
// truncated), or "" if none.
func (r *Reader) Warning() string { return r.warn }

// latch records err as the underlying cause and returns the sentinel.
func (r *Reader) latch(sentinel, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if r.err == nil {
		r.err = err
	}
	return sentinel
}

func (r *Reader) readHeader() error {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return r.latch(ErrBadMagic, err)
	}
	if string(hdr[:4]) != magic {
		return ErrBadMagic
	}
	switch hdr[4] {
	case version1, version2:
		r.version = hdr[4]
	default:
		return ErrBadVersion
	}
	r.init = true
	return nil
}

// Read returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Read() (Record, error) {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return Record{}, err
		}
	}
	if r.version == version2 {
		if r.segLeft == 0 {
			if err := r.nextSegment(); err != nil {
				return Record{}, err
			}
		}
		r.segLeft--
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF && r.version == version1 {
			return Record{}, io.EOF
		}
		// v2 records only exist inside a segment with a declared count;
		// EOF mid-segment is a truncation, not a clean end.
		return Record{}, r.latch(ErrCorrupt, err)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	client, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	app, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	if client > 1<<32-1 || app > 1<<16-1 {
		return Record{}, ErrCorrupt
	}
	r.last += time.Duration(delta)
	return Record{
		T:      r.last,
		Dir:    Direction(flags & 1),
		Kind:   Kind(flags >> 1 & 0x7),
		Client: uint32(client),
		App:    uint16(app),
	}, nil
}

// ReadAll drains the stream into h in BlockSize batches, returning the
// record count. On error, records decoded before the error still reach h.
func (r *Reader) ReadAll(h Handler) (int64, error) {
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	var n int64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		bat.Handle(rec)
		n++
	}
}
