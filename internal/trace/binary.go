package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary trace format: a fixed header followed by delta-encoded records.
// docs/FORMAT.md is the authoritative byte-level specification; the short
// version:
//
//	header: magic "CSTR" | version u8 | reserved [3]u8
//	record: deltaT uvarint (ns since previous record)
//	        flags  u8  (bit0: direction, bits1-3: kind)
//	        client uvarint
//	        app    uvarint
//
// Version 1 is a single varint stream of records after the header. Version 2
// chunks the identical record encoding into independently-decodable segments
// ("CSEG" frames carrying payload length, record count and the delta
// base/min/max timestamps), then appends a segment index ("CSIX") and a
// fixed-size footer, so a reader can decode segments in parallel and seek by
// time range. Version 3 (the current default) adds a per-segment flags word
// to the frame and index: flag bit 0 marks a flate-compressed payload, with
// the decompressed size carried alongside. The concatenation of all segment
// payloads — decompressed where flagged — is byte-for-byte the v1 record
// stream.
//
// Delta encoding keeps the common case (sub-millisecond gaps, small ids,
// small payloads) to a handful of bytes per record, and v3 compression
// roughly halves that again — a full-week, half billion packet trace fits
// comfortably on disk.

const (
	magic    = "CSTR"
	version1 = 1
	version2 = 2
	version3 = 3
	// currentVersion is what NewWriter emits.
	currentVersion = version3
	headerLen      = 8
)

// Format errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: corrupt record")
	// ErrNoIndex reports a trace without a segment index (a v1 file, or an
	// indexed file whose index was lost); such traces can only be scanned
	// serially.
	ErrNoIndex = errors.New("trace: no segment index")
	// ErrFinished reports a Write after Flush: an indexed-format Flush
	// seals the file with its index and footer.
	ErrFinished = errors.New("trace: write after Flush")
)

// Compression settings for Writer.CompressLevel.
const (
	// CompressOff stores every v3 segment uncompressed (flags clear). The
	// file remains a valid v3 trace; only the payload bytes differ.
	CompressOff = -1
	// DefaultCompressLevel is the flate level used when CompressLevel is 0:
	// level 6 (flate's own default), which delivers the ≥ 25 % on-disk
	// saving over v2 on the standard reproduction. Decompression cost is
	// essentially level-independent, so the level only prices the write
	// side: use 1 (BestSpeed, ~3× faster to write, a few % larger) when the
	// writer sits on a generation hot path, 9 when the file is written once
	// and shipped often.
	DefaultCompressLevel = 6
)

// Writer streams records to an io.Writer in the binary trace format.
// Records must be delivered in non-decreasing time order.
//
// NewWriter emits format v3: records are chunked into independently
// decodable segments, each segment's payload is flate-compressed when that
// makes it smaller (tunable via CompressLevel), and the file ends with a
// segment index + footer, so Reader.ReadAllParallel can fan decode out
// across goroutines. Flush seals the file and must be called exactly once,
// after the last Write.
type Writer struct {
	w       *bufio.Writer
	version uint8
	last    time.Duration
	wrote   bool
	sealed  bool
	n       int64
	err     error // first encode/IO error; latched for Handle paths
	off     int64 // file offset of the next frame to be written

	// SegmentPayload is the target (pre-compression) payload size per
	// segment in bytes; a segment is cut once its encoded payload reaches
	// it. Set it before the first Write; 0 means DefaultSegmentPayload.
	// Smaller segments parallelize and seek at finer grain, larger ones
	// amortize the per-segment framing+index overhead further.
	SegmentPayload int

	// CompressLevel tunes v3 per-segment compression: 0 selects
	// DefaultCompressLevel, 1–9 are explicit flate levels (1 fastest, 9
	// smallest), and CompressOff (-1) stores all segments uncompressed.
	// Set it before the first Write; ignored for v1/v2 writers. Whatever
	// the level, a segment whose compressed form is not smaller than its
	// raw form is stored uncompressed (the per-segment flag records which).
	CompressLevel int

	seg      []byte // current segment's encoded records (v2/v3)
	segBase  time.Duration
	segMin   time.Duration
	segMax   time.Duration
	segCount int
	index    []SegmentInfo

	fw      *flate.Writer // v3 segment compressor, reused across segments
	fwLevel int
	cbuf    bytes.Buffer

	buf [3*binary.MaxVarintLen64 + 1]byte
}

// DefaultSegmentPayload is the default segment payload target: 256 KiB
// (~50 k records at the workload's ~5 B/record), large enough that framing
// overhead is ~0.03 %, small enough that a few seconds of trace already
// spans many parallel decode units.
const DefaultSegmentPayload = 1 << 18

// NewWriter creates a Writer emitting the current format version (v3,
// segmented + indexed + per-segment compression).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: currentVersion}
}

// NewWriterV2 creates a Writer emitting format v2: segmented and indexed,
// but without the per-segment flags word or compression. Readers support v2
// indefinitely (see docs/FORMAT.md for the compatibility policy); new
// traces should use NewWriter.
func NewWriterV2(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: version2}
}

// NewWriterV1 creates a Writer emitting the legacy v1 format: one
// unsegmented varint stream, no index. Readers support v1 indefinitely (see
// docs/FORMAT.md for the compatibility policy); new traces should use
// NewWriter.
func NewWriterV1(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), version: version1}
}

// Version returns the format version the Writer emits (1, 2 or 3).
func (w *Writer) Version() int { return int(w.version) }

// Handle implements Handler, so a Writer can sit at the end of a pipeline.
// The first encoding error latches and surfaces from Err and Flush.
func (w *Writer) Handle(r Record) {
	if w.err == nil {
		w.err = w.Write(r)
	}
}

// HandleBatch implements BatchHandler.
func (w *Writer) HandleBatch(rs []Record) {
	for _, r := range rs {
		if w.err != nil {
			return
		}
		w.err = w.Write(r)
	}
}

// Err returns the first error latched by Handle or HandleBatch.
func (w *Writer) Err() error { return w.err }

func (w *Writer) writeHeader() error {
	w.wrote = true
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	if err := w.w.WriteByte(w.version); err != nil {
		return err
	}
	if _, err := w.w.Write([]byte{0, 0, 0}); err != nil {
		return err
	}
	w.off = headerLen
	return nil
}

// Write encodes one record.
func (w *Writer) Write(r Record) error {
	if w.sealed {
		return ErrFinished
	}
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if r.T < w.last {
		return fmt.Errorf("trace: record at %v precedes previous record at %v", r.T, w.last)
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(r.T-w.last))
	b = append(b, byte(r.Dir)&1|byte(r.Kind)<<1)
	b = binary.AppendUvarint(b, uint64(r.Client))
	b = binary.AppendUvarint(b, uint64(r.App))

	if w.version == version1 {
		w.last = r.T
		w.n++
		_, err := w.w.Write(b)
		return err
	}

	// v2/v3: records accumulate into the current segment's payload buffer;
	// the frame header needs the payload length and record count up front,
	// so the segment is buffered whole and flushed when it reaches target.
	if w.segCount == 0 {
		w.segBase = w.last
		w.segMin = r.T
	}
	w.seg = append(w.seg, b...)
	w.segCount++
	w.segMax = r.T
	w.last = r.T
	w.n++
	if target := w.segmentTarget(); len(w.seg) >= target {
		return w.flushSegment()
	}
	return nil
}

func (w *Writer) segmentTarget() int {
	if w.SegmentPayload > 0 {
		return w.SegmentPayload
	}
	return DefaultSegmentPayload
}

// compressSegment runs the buffered segment through flate at the configured
// level, returning the compressed bytes, or nil when compression is off,
// misconfigured-level errors aside.
func (w *Writer) compressSegment() ([]byte, error) {
	level := w.CompressLevel
	if level == 0 {
		level = DefaultCompressLevel
	}
	if w.fw == nil || w.fwLevel != level {
		fw, err := flate.NewWriter(io.Discard, level)
		if err != nil {
			return nil, fmt.Errorf("trace: invalid CompressLevel %d: %w", w.CompressLevel, err)
		}
		w.fw, w.fwLevel = fw, level
	}
	w.cbuf.Reset()
	w.fw.Reset(&w.cbuf)
	if _, err := w.fw.Write(w.seg); err != nil {
		return nil, err
	}
	if err := w.fw.Close(); err != nil {
		return nil, err
	}
	return w.cbuf.Bytes(), nil
}

// flushSegment writes the buffered segment as one "CSEG" frame and records
// its index entry. In v3 the payload is flate-compressed first and stored
// compressed only when that is strictly smaller (the per-segment flag
// records the choice, so incompressible segments cost nothing).
func (w *Writer) flushSegment() error {
	if w.segCount == 0 {
		return nil
	}
	payload := w.seg
	rawLen := len(w.seg)
	var flags uint32
	if w.version >= version3 && w.CompressLevel != CompressOff {
		comp, err := w.compressSegment()
		if err != nil {
			return err
		}
		if len(comp) < rawLen {
			payload = comp
			flags = SegCompressed
		}
	}
	si := SegmentInfo{
		Offset:     w.off,
		PayloadLen: len(payload),
		Count:      w.segCount,
		Flags:      flags,
		RawLen:     rawLen,
		BaseT:      w.segBase,
		MinT:       w.segMin,
		MaxT:       w.segMax,
	}
	w.index = append(w.index, si)
	var hdr [segHeaderLenV3 + 4]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.segCount))
	rest := hdr[12:]
	hl := segHeaderLen
	if w.version >= version3 {
		binary.LittleEndian.PutUint32(hdr[12:], flags)
		rest = hdr[16:]
		hl = segHeaderLenV3
	}
	binary.LittleEndian.PutUint64(rest[0:], uint64(w.segBase))
	binary.LittleEndian.PutUint64(rest[8:], uint64(w.segMin))
	binary.LittleEndian.PutUint64(rest[16:], uint64(w.segMax))
	if flags&SegCompressed != 0 {
		binary.LittleEndian.PutUint32(hdr[segHeaderLenV3:], uint32(rawLen))
		hl = segHeaderLenV3 + 4
	}
	if _, err := w.w.Write(hdr[:hl]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.off += int64(hl) + int64(len(payload))
	w.seg = w.seg[:0]
	w.segCount = 0
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush seals and flushes the trace, surfacing any error latched by the
// Handle paths first. For the indexed formats it writes the final partial
// segment, the segment index and the footer, so it must be called exactly
// once, after the last Write; further Writes fail with ErrFinished.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.wrote {
		// An empty trace still gets a header (and, for the indexed formats,
		// an empty index + footer, so the file remains seekable and
		// well-formed).
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if w.version >= version2 && !w.sealed {
		if err := w.flushSegment(); err != nil {
			return err
		}
		if err := w.writeIndexAndFooter(); err != nil {
			return err
		}
		w.sealed = true
	}
	return w.w.Flush()
}

// Reader streams records from the binary trace format, accepting v1, v2 and
// v3 files transparently: ReadAll / ReadAllPrefetch scan any version
// serially, and ReadAllParallel / ReadAllSharded additionally decode
// indexed segments on worker goroutines when the source is seekable,
// falling back to the serial scan (with a Warning) when it is not or the
// index is unreadable.
type Reader struct {
	src     io.Reader // the unbuffered source, for the indexed read path
	r       *bufio.Reader
	last    time.Duration
	init    bool
	version uint8
	seg     SegmentInfo // v2/v3: current segment's frame header
	segLeft int         // v2: records remaining in the current segment
	done    bool        // v2/v3: index frame reached — clean end of records
	err     error
	warn    string

	// v3 serial Read path: segments decode whole (they may be compressed),
	// so decoded records queue here and pop one per Read call.
	q    []Record
	qPos int
	qErr error
	sc   segScratch
}

// NewReader creates a Reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{src: r, r: bufio.NewReaderSize(r, 1<<16)}
}

// Version returns the trace format version (1, 2 or 3), or 0 before the
// header has been read.
func (r *Reader) Version() int { return int(r.version) }

// Err returns the cause latched behind the last error the Reader surfaced,
// or nil. The sentinels (ErrBadMagic, ErrCorrupt) keep error identity
// stable for callers; Err preserves the close/EOF-tail state of the source
// — e.g. an io.ErrUnexpectedEOF from a truncated file, or the I/O error a
// failing disk returned mid-record. Errors from the parallel read path
// latch in wrapped form: errors.Is against both ErrCorrupt and the
// underlying cause works.
func (r *Reader) Err() error { return r.err }

// Warning returns a human-readable note when a read path degraded (e.g.
// ReadAllParallel fell back to a serial scan because the index was
// truncated), or "" if none.
func (r *Reader) Warning() string { return r.warn }

// latch records err as the underlying cause and returns the sentinel.
func (r *Reader) latch(sentinel, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if r.err == nil {
		r.err = err
	}
	return sentinel
}

func (r *Reader) readHeader() error {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return r.latch(ErrBadMagic, err)
	}
	if string(hdr[:4]) != magic {
		return ErrBadMagic
	}
	switch hdr[4] {
	case version1, version2, version3:
		r.version = hdr[4]
	default:
		return ErrBadVersion
	}
	r.init = true
	return nil
}

// Read returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Read() (Record, error) {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return Record{}, err
		}
	}
	if r.version == version3 {
		return r.readSegmented()
	}
	if r.version == version2 {
		if r.segLeft == 0 {
			if err := r.nextSegment(); err != nil {
				return Record{}, err
			}
		}
		r.segLeft--
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF && r.version == version1 {
			return Record{}, io.EOF
		}
		// v2 records only exist inside a segment with a declared count;
		// EOF mid-segment is a truncation, not a clean end.
		return Record{}, r.latch(ErrCorrupt, err)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	client, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	app, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	if client > 1<<32-1 || app > 1<<16-1 {
		return Record{}, ErrCorrupt
	}
	r.last += time.Duration(delta)
	return Record{
		T:      r.last,
		Dir:    Direction(flags & 1),
		Kind:   Kind(flags >> 1 & 0x7),
		Client: uint32(client),
		App:    uint16(app),
	}, nil
}

// readSegmented is the v3 serial Read path: a v3 segment may be compressed,
// so it decodes whole into an in-memory queue and Read pops one record at a
// time. Records decoded before a mid-segment corruption still pop before
// the error surfaces, preserving records-before-error delivery.
func (r *Reader) readSegmented() (Record, error) {
	for r.qPos >= len(r.q) {
		if r.qErr != nil {
			return Record{}, r.qErr
		}
		r.fillSegmentQueue()
	}
	rec := r.q[r.qPos]
	r.qPos++
	return rec, nil
}

// fillSegmentQueue loads, decompresses and decodes the next v3 segment into
// the Read queue, recording the terminal error (io.EOF at a clean end) for
// delivery after the queued records drain.
func (r *Reader) fillSegmentQueue() {
	r.q = r.q[:0]
	r.qPos = 0
	if err := r.nextSegment(); err != nil {
		r.qErr = err
		return
	}
	blocks, err := r.loadSegment(&r.sc)
	for _, blk := range blocks {
		r.q = append(r.q, *blk...)
		FreeBlock(blk)
	}
	r.qErr = err
}

// ReadAll drains the stream into h in BlockSize batches, returning the
// record count. On error, records decoded before the error still reach h.
func (r *Reader) ReadAll(h Handler) (int64, error) {
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	var n int64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		bat.Handle(rec)
		n++
	}
}
