package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary trace format: a fixed header followed by delta-encoded records.
//
//	header: magic "CSTR" | version u8 | reserved [3]u8
//	record: deltaT uvarint (ns since previous record)
//	        flags  u8  (bit0: direction, bits1-3: kind)
//	        client uvarint
//	        app    uvarint
//
// Delta encoding keeps the common case (sub-millisecond gaps, small ids,
// small payloads) to a handful of bytes per record — a full-week, half
// billion packet trace fits comfortably on disk.

const (
	magic   = "CSTR"
	version = 1
)

// Format errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: corrupt record")
)

// Writer streams records to an io.Writer in the binary trace format.
// Records must be delivered in non-decreasing time order.
type Writer struct {
	w     *bufio.Writer
	last  time.Duration
	wrote bool
	n     int64
	err   error // first encode/IO error; latched for Handle paths
	buf   [3*binary.MaxVarintLen64 + 1]byte
}

// NewWriter creates a Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Handle implements Handler, so a Writer can sit at the end of a pipeline.
// The first encoding error latches and surfaces from Err and Flush.
func (w *Writer) Handle(r Record) {
	if w.err == nil {
		w.err = w.Write(r)
	}
}

// HandleBatch implements BatchHandler.
func (w *Writer) HandleBatch(rs []Record) {
	for _, r := range rs {
		if w.err != nil {
			return
		}
		w.err = w.Write(r)
	}
}

// Err returns the first error latched by Handle or HandleBatch.
func (w *Writer) Err() error { return w.err }

// Write encodes one record.
func (w *Writer) Write(r Record) error {
	if !w.wrote {
		w.wrote = true
		if _, err := w.w.WriteString(magic); err != nil {
			return err
		}
		if err := w.w.WriteByte(version); err != nil {
			return err
		}
		if _, err := w.w.Write([]byte{0, 0, 0}); err != nil {
			return err
		}
	}
	if r.T < w.last {
		return fmt.Errorf("trace: record at %v precedes previous record at %v", r.T, w.last)
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(r.T-w.last))
	b = append(b, byte(r.Dir)&1|byte(r.Kind)<<1)
	b = binary.AppendUvarint(b, uint64(r.Client))
	b = binary.AppendUvarint(b, uint64(r.App))
	w.last = r.T
	w.n++
	_, err := w.w.Write(b)
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered output, surfacing any error latched by the Handle
// paths first. Call it once after the last Write.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if !w.wrote {
		// An empty trace still gets a header.
		if _, err := w.w.WriteString(magic); err != nil {
			return err
		}
		if err := w.w.WriteByte(version); err != nil {
			return err
		}
		if _, err := w.w.Write([]byte{0, 0, 0}); err != nil {
			return err
		}
		w.wrote = true
	}
	return w.w.Flush()
}

// Reader streams records from the binary trace format.
type Reader struct {
	r    *bufio.Reader
	last time.Duration
	init bool
}

// NewReader creates a Reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) readHeader() error {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return ErrBadMagic
	}
	if string(hdr[:4]) != magic {
		return ErrBadMagic
	}
	if hdr[4] != version {
		return ErrBadVersion
	}
	r.init = true
	return nil
}

// Read returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Read() (Record, error) {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return Record{}, err
		}
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, ErrCorrupt
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, ErrCorrupt
	}
	client, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	app, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	if client > 1<<32-1 || app > 1<<16-1 {
		return Record{}, ErrCorrupt
	}
	r.last += time.Duration(delta)
	return Record{
		T:      r.last,
		Dir:    Direction(flags & 1),
		Kind:   Kind(flags >> 1 & 0x7),
		Client: uint32(client),
		App:    uint16(app),
	}, nil
}

// ReadAll drains the stream into h in BlockSize batches, returning the
// record count. On error, records decoded before the error still reach h.
func (r *Reader) ReadAll(h Handler) (int64, error) {
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	var n int64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		bat.Handle(rec)
		n++
	}
}
