package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"time"

	"cstrace/internal/sched"
)

// Binary trace format: a fixed header followed by delta-encoded records.
// docs/FORMAT.md is the authoritative byte-level specification; the short
// version:
//
//	header: magic "CSTR" | version u8 | reserved [3]u8
//	record: deltaT uvarint (ns since previous record)
//	        flags  u8  (bit0: direction, bits1-3: kind)
//	        client uvarint
//	        app    uvarint
//
// Version 1 is a single varint stream of records after the header. Version 2
// chunks the identical record encoding into independently-decodable segments
// ("CSEG" frames carrying payload length, record count and the delta
// base/min/max timestamps), then appends a segment index ("CSIX") and a
// fixed-size footer, so a reader can decode segments in parallel and seek by
// time range. Version 3 adds a per-segment flags word to the frame and
// index: flag bit 0 marks a flate-compressed payload, with the decompressed
// size carried alongside; for v2/v3 the concatenation of all segment
// payloads — decompressed where flagged — is byte-for-byte the v1 record
// stream. Version 4 (the current default) defines flag bit 1: the segment
// payload is field-striped, storing the record fields as four separate runs
// (timestamp deltas | flags | client ids | app sizes) that compress better
// and decode in tight per-column loops; see columnar.go for the layout.
//
// Delta encoding keeps the common case (sub-millisecond gaps, small ids,
// small payloads) to a handful of bytes per record, and per-segment
// compression roughly halves that again — a full-week, half billion packet
// trace fits comfortably on disk.

const (
	magic    = "CSTR"
	version1 = 1
	version2 = 2
	version3 = 3
	version4 = 4
	// currentVersion is what NewWriter emits.
	currentVersion = version4
	headerLen      = 8
)

// Format errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrCorrupt    = errors.New("trace: corrupt record")
	// ErrNoIndex reports a trace without a segment index (a v1 file, or an
	// indexed file whose index was lost); such traces can only be scanned
	// serially.
	ErrNoIndex = errors.New("trace: no segment index")
	// ErrFinished reports a Write after Flush: an indexed-format Flush
	// seals the file with its index and footer.
	ErrFinished = errors.New("trace: write after Flush")
)

// Compression settings for Writer.CompressLevel.
const (
	// CompressOff stores every v3/v4 segment uncompressed (the compressed
	// flag clear). The file remains a valid trace of its version; only the
	// payload bytes differ.
	CompressOff = -1
	// DefaultCompressLevel is the flate level a v3 writer uses when
	// CompressLevel is 0: level 6 (flate's own default), which delivers the
	// ≥ 25 % on-disk saving over v2 on the standard reproduction. v3
	// decompression cost is essentially level-independent, so the level only
	// prices the write side: use 1 (BestSpeed, ~3× faster to write, a few %
	// larger) when the writer sits on a generation hot path, 9 when the file
	// is written once and shipped often.
	DefaultCompressLevel = 6
	// ColumnarCompressLevel is the flate level a v4 writer uses when
	// CompressLevel is 0. Field-striped runs are far more self-similar than
	// v3's interleaved payload, so flate's higher levels buy almost nothing:
	// on the calibrated workload level 2 stores within ~1 % of level 6 while
	// deflating ~3× faster and — the greedy matcher emits slightly longer,
	// more regular matches — inflating marginally faster too. Explicit
	// CompressLevel settings still pass through untouched.
	ColumnarCompressLevel = 2
)

// Writer streams records to an io.Writer in the binary trace format.
// Records must be delivered in non-decreasing time order (or within
// SortWindow of it, when set).
//
// NewWriter emits format v4: records are chunked into independently
// decodable segments, each segment's payload is field-striped and
// compressed per column when that makes it smaller (tunable via
// CompressLevel), and the file ends with a segment index + footer, so
// Reader.ReadAllParallel can fan decode out across goroutines. Setting
// Workers moves compression off the Write path onto a worker pool. Flush
// seals the file and must be called exactly once, after the last Write.
type Writer struct {
	w       *bufio.Writer
	dst     io.Writer // the unbuffered sink, for SyncEvery durability
	version uint8
	last    time.Duration
	wrote   bool
	sealed  bool
	n       int64
	frames  int64 // sealed segment frames written, for the SyncEvery cadence
	err     error // first write-path error; latches, Write refuses afterwards
	off     int64 // file offset of the next frame to be written

	// SegmentPayload is the target (pre-compression) payload size per
	// segment in bytes; a segment is cut once its encoded payload reaches
	// it. Set it before the first Write; 0 means DefaultSegmentPayload.
	// Smaller segments parallelize and seek at finer grain, larger ones
	// amortize the per-segment framing+index overhead further.
	SegmentPayload int

	// CompressLevel tunes v3/v4 per-segment compression: 0 selects
	// DefaultCompressLevel, 1–9 are explicit flate levels (1 fastest, 9
	// smallest), and CompressOff (-1) stores all segments uncompressed.
	// Set it before the first Write; ignored for v1/v2 writers. Whatever
	// the level, a segment whose compressed form is not smaller than its
	// raw form is stored uncompressed (the per-segment flag records which).
	CompressLevel int

	// Workers > 1 deflates sealed segments on that many worker goroutines
	// while Write keeps cutting the next segment — compression leaves the
	// caller's critical path entirely. File order and the output bytes are
	// preserved exactly: for a given (version, level) the file is
	// byte-identical whatever Workers is set to. Worker failures latch and
	// surface from Err, Write and Flush. Set it before the first Write;
	// ignored when ≤ 1, for v1/v2 writers, and with CompressOff (there is
	// no compression to offload).
	Workers int

	// SyncEvery, when > 0, makes the Writer durable at segment grain: after
	// every SyncEvery sealed segment frames the buffered bytes are flushed
	// to the destination and — when it exposes a Sync() error method, as
	// *os.File does — fsynced, and Flush ends with one final sync after the
	// footer. Combined with the error latching (a failed write or sync
	// refuses every later Write), this orders durability so that at any
	// crash point the on-disk prefix is the header plus zero or more intact
	// segment frames — exactly what Recover salvages. SyncEvery = 1 syncs
	// every sealed segment (the live-capture setting); larger values
	// amortize the fsync over N segments. Set it before the first Write.
	SyncEvery int

	// SortWindow, when > 0, lets records arrive up to that far out of time
	// order: Write buffers them and releases in sorted order (ties keep
	// arrival order) once the high-water timestamp has moved past the
	// window, exactly reproducing what a SortBuffer stage in front of the
	// Writer would feed it. A record arriving more than SortWindow before
	// the high-water mark is an error, like a time-regressing record on a
	// strict writer. Set it before the first Write.
	SortWindow time.Duration

	seg      []byte // current segment's interleaved records (v2/v3)
	colD     []byte // current segment's column runs (v4)
	colF     []byte
	colC     []byte
	colA     []byte
	segBase  time.Duration
	segMin   time.Duration
	segMax   time.Duration
	segCount int
	index    []SegmentInfo

	cs   compScratch   // segment compressor state (sync path)
	pipe *compPipeline // async compression pipeline, nil until started

	pend    []Record // SortWindow reorder buffer
	elig    []Record // scratch for the release sort
	pendMax time.Duration

	buf [3*binary.MaxVarintLen64 + 1]byte
}

// DefaultSegmentPayload is the default segment payload target: 256 KiB
// (~50 k records at the workload's ~5 B/record), large enough that framing
// overhead is ~0.03 %, small enough that a few seconds of trace already
// spans many parallel decode units.
const DefaultSegmentPayload = 1 << 18

func newWriter(w io.Writer, version uint8) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), dst: w, version: version}
}

// NewWriter creates a Writer emitting the current format version (v4,
// segmented + indexed + field-striped per-segment compression).
func NewWriter(w io.Writer) *Writer {
	return newWriter(w, currentVersion)
}

// NewWriterV3 creates a Writer emitting format v3: segmented, indexed and
// per-segment compressed, but with the interleaved record payload instead
// of v4's field-striped one. Readers support v3 indefinitely (see
// docs/FORMAT.md for the compatibility policy); new traces should use
// NewWriter.
func NewWriterV3(w io.Writer) *Writer {
	return newWriter(w, version3)
}

// NewWriterV2 creates a Writer emitting format v2: segmented and indexed,
// but without the per-segment flags word or compression. Readers support v2
// indefinitely (see docs/FORMAT.md for the compatibility policy); new
// traces should use NewWriter.
func NewWriterV2(w io.Writer) *Writer {
	return newWriter(w, version2)
}

// NewWriterV1 creates a Writer emitting the legacy v1 format: one
// unsegmented varint stream, no index. Readers support v1 indefinitely (see
// docs/FORMAT.md for the compatibility policy); new traces should use
// NewWriter.
func NewWriterV1(w io.Writer) *Writer {
	return newWriter(w, version1)
}

// Version returns the format version the Writer emits (1–4).
func (w *Writer) Version() int { return int(w.version) }

// Handle implements Handler, so a Writer can sit at the end of a pipeline.
// The first encoding error latches and surfaces from Err and Flush.
func (w *Writer) Handle(r Record) {
	if w.err == nil {
		w.err = w.Write(r)
	}
}

// HandleBatch implements BatchHandler.
func (w *Writer) HandleBatch(rs []Record) {
	for _, r := range rs {
		if w.err != nil {
			return
		}
		w.err = w.Write(r)
	}
}

// Err returns the first error latched anywhere on the write path — a
// failed header/frame/sync write, an encode failure, an error swallowed by
// Handle or HandleBatch, or (when compression runs on workers) the first
// failure latched by the pipeline. Once Err is non-nil the Writer is dead:
// every later Write and Flush returns the latched error without emitting a
// byte, so a failed write can never be followed by a later segment and the
// file's durable prefix stays a valid segment stream.
func (w *Writer) Err() error {
	if w.err != nil {
		return w.err
	}
	if w.pipe != nil {
		return w.pipe.getErr()
	}
	return nil
}

// latchIO records a write-path failure as the Writer's terminal state. In
// async mode the pipeline's emitter goroutine is the one writing frames, so
// the latch goes through the pipeline's mutex-guarded slot; otherwise w.err
// is only ever touched from the caller's goroutine.
func (w *Writer) latchIO(err error) error {
	if err == nil {
		return nil
	}
	if w.pipe != nil {
		w.pipe.setErr(err)
	} else if w.err == nil {
		w.err = err
	}
	return err
}

func (w *Writer) writeHeader() error {
	w.wrote = true
	if _, err := w.w.WriteString(magic); err != nil {
		return w.latchIO(err)
	}
	if err := w.w.WriteByte(w.version); err != nil {
		return w.latchIO(err)
	}
	if _, err := w.w.Write([]byte{0, 0, 0}); err != nil {
		return w.latchIO(err)
	}
	w.off = headerLen
	return nil
}

// Write encodes one record. With SortWindow set it may instead buffer the
// record for ordered release; see the field docs. After any write-path
// failure (see Err) every Write returns the latched error without emitting
// anything; ordering violations are rejected per record without latching.
func (w *Writer) Write(r Record) error {
	if w.sealed {
		return ErrFinished
	}
	// Checking the plain field (not Err, which takes the pipeline mutex)
	// keeps the per-record cost flat; pipeline failures latch into w.err at
	// the next segment seal, and the emitter refuses frames after a failure
	// regardless, so no later segment can follow a failed write either way.
	if w.err != nil {
		return w.err
	}
	if r.T > MaxSpan {
		return fmt.Errorf("record at %v is beyond the format's %v span cap", r.T, MaxSpan)
	}
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if w.SortWindow > 0 {
		return w.bufferSorted(r)
	}
	return w.encode(r)
}

// Release encodes every SortWindow-buffered record the high-water mark has
// already made safe, without waiting for the buffer-count threshold that
// normally paces release passes. A low-rate live capture calls it on a
// timer so sealed segments — and durability under SyncEvery — keep pace
// with wall time instead of record count; the encoded stream is unchanged
// (the same records release in the same order, just earlier). No-op without
// a SortWindow or after Flush.
func (w *Writer) Release() error {
	if w.sealed || w.SortWindow <= 0 || len(w.pend) == 0 {
		return nil
	}
	if err := w.Err(); err != nil {
		return err
	}
	return w.releasePending(w.pendMax - w.SortWindow)
}

// sortPendFlush is how many buffered out-of-order records accumulate before
// a SortWindow release pass runs.
const sortPendFlush = 2 * BlockSize

// bufferSorted holds r in the SortWindow reorder buffer, periodically
// releasing the records the advancing high-water mark has made safe — the
// same slack-watermark rule SortBuffer applies, so the encoded stream is
// byte-identical to feeding the Writer through one.
func (w *Writer) bufferSorted(r Record) error {
	if r.T < w.pendMax-w.SortWindow {
		return fmt.Errorf("trace: record at %v arrives more than the %v sort window behind the high-water mark %v",
			r.T, w.SortWindow, w.pendMax)
	}
	if r.T > w.pendMax {
		w.pendMax = r.T
	}
	w.pend = append(w.pend, r)
	if len(w.pend) >= sortPendFlush {
		return w.releasePending(w.pendMax - w.SortWindow)
	}
	return nil
}

// releasePending encodes every buffered record with T ≤ watermark in total
// (T, arrival) order: arrival order is maintained by the buffer and the
// sort is stable, so ties keep it.
func (w *Writer) releasePending(watermark time.Duration) error {
	if len(w.pend) == 0 {
		return nil
	}
	elig := w.elig[:0]
	keep := w.pend[:0]
	for _, r := range w.pend {
		if r.T <= watermark {
			elig = append(elig, r)
		} else {
			keep = append(keep, r)
		}
	}
	w.pend = keep
	slices.SortStableFunc(elig, func(a, b Record) int {
		switch {
		case a.T < b.T:
			return -1
		case a.T > b.T:
			return 1
		default:
			return 0
		}
	})
	w.elig = elig[:0]
	for _, r := range elig {
		if err := w.encode(r); err != nil {
			return err
		}
	}
	return nil
}

// encode appends one record to the output stream; records must arrive here
// in non-decreasing time order.
func (w *Writer) encode(r Record) error {
	if r.T < w.last {
		return fmt.Errorf("trace: record at %v precedes previous record at %v", r.T, w.last)
	}
	if w.version >= version4 {
		// v4: the fields stripe into per-column runs, sealed into one
		// columnar payload at segment-cut time.
		if w.segCount == 0 {
			w.segBase = w.last
			w.segMin = r.T
		}
		w.colD = binary.AppendUvarint(w.colD, uint64(r.T-w.last))
		w.colF = append(w.colF, byte(r.Dir)&1|byte(r.Kind)<<1)
		w.colC = binary.AppendUvarint(w.colC, uint64(r.Client))
		w.colA = binary.AppendUvarint(w.colA, uint64(r.App))
		w.segCount++
		w.segMax = r.T
		w.last = r.T
		w.n++
		// Cut on accumulated record bytes, like the interleaved formats:
		// the four field encodings sum to exactly the interleaved record
		// size, so v4 segments break at the same record boundaries as v3
		// for a given SegmentPayload (the 16-byte column header is framing
		// overhead, not counted against the target).
		size := len(w.colD) + len(w.colF) + len(w.colC) + len(w.colA)
		if size >= w.segmentTarget() {
			return w.flushSegment()
		}
		return nil
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(r.T-w.last))
	b = append(b, byte(r.Dir)&1|byte(r.Kind)<<1)
	b = binary.AppendUvarint(b, uint64(r.Client))
	b = binary.AppendUvarint(b, uint64(r.App))

	if w.version == version1 {
		w.last = r.T
		w.n++
		_, err := w.w.Write(b)
		return err
	}

	// v2/v3: records accumulate into the current segment's payload buffer;
	// the frame header needs the payload length and record count up front,
	// so the segment is buffered whole and flushed when it reaches target.
	if w.segCount == 0 {
		w.segBase = w.last
		w.segMin = r.T
	}
	w.seg = append(w.seg, b...)
	w.segCount++
	w.segMax = r.T
	w.last = r.T
	w.n++
	if target := w.segmentTarget(); len(w.seg) >= target {
		return w.flushSegment()
	}
	return nil
}

func (w *Writer) segmentTarget() int {
	if w.SegmentPayload > 0 {
		return w.SegmentPayload
	}
	return DefaultSegmentPayload
}

// level resolves the effective compression level (0 → the version's
// default; explicit levels and CompressOff pass through).
func (w *Writer) level() int {
	if w.CompressLevel == 0 {
		if w.version >= version4 {
			return ColumnarCompressLevel
		}
		return DefaultCompressLevel
	}
	return w.CompressLevel
}

// useAsync reports whether sealed segments should compress on the worker
// pipeline. sched.Auto counts as parallel here; the pipeline resolves the
// actual pool size from the process worker budget when it starts.
func (w *Writer) useAsync() bool {
	return (w.Workers > 1 || w.Workers == sched.Auto) && w.version >= version3 && w.CompressLevel != CompressOff
}

// assembleColumnar seals the column runs into one raw columnar payload
// (column header + four runs) appended to dst.
func (w *Writer) assembleColumnar(dst []byte) []byte {
	var hdr [colHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(w.colD)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(w.colF)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(w.colC)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(w.colA)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, w.colD...)
	dst = append(dst, w.colF...)
	dst = append(dst, w.colC...)
	dst = append(dst, w.colA...)
	return dst
}

// flushSegment seals the buffered segment: its raw payload is assembled
// (columnar for v4, the interleaved buffer otherwise) and either
// compressed+written inline, or handed to the worker pipeline when Workers
// is set — the pipeline's emitter writes frames in submission order, so the
// file is identical either way. A segment is stored compressed only when
// that is strictly smaller (the per-segment flag records the choice, so
// incompressible segments cost nothing).
func (w *Writer) flushSegment() error {
	if w.segCount == 0 {
		return nil
	}
	meta := segMeta{count: w.segCount, base: w.segBase, min: w.segMin, max: w.segMax}
	async := w.useAsync()
	if async && w.pipe == nil {
		w.pipe = newCompPipeline(w)
	}
	var raw []byte
	switch {
	case w.version >= version4 && async:
		raw = w.assembleColumnar(w.pipe.getSlab()[:0])
		w.colD, w.colF, w.colC, w.colA = w.colD[:0], w.colF[:0], w.colC[:0], w.colA[:0]
	case w.version >= version4:
		// The interleaved buffer is unused in v4; reuse it as the assembly
		// slab.
		raw = w.assembleColumnar(w.seg[:0])
		w.seg = raw
		w.colD, w.colF, w.colC, w.colA = w.colD[:0], w.colF[:0], w.colC[:0], w.colA[:0]
	case async:
		raw = append(w.pipe.getSlab()[:0], w.seg...)
		w.seg = w.seg[:0]
	default:
		raw = w.seg
	}
	w.segCount = 0
	if async {
		if err := w.pipe.submit(raw, meta); err != nil {
			// submit runs on the caller's goroutine, so the pipeline failure
			// can latch into the plain field Write checks per record.
			if w.err == nil {
				w.err = err
			}
			return err
		}
		return nil
	}
	payload := raw
	var flags uint32
	if w.version >= version3 {
		var err error
		if payload, flags, err = w.cs.encode(int(w.version), raw, w.level()); err != nil {
			return w.latchIO(err)
		}
	}
	err := w.writeFrame(payload, flags, len(raw), meta)
	w.seg = w.seg[:0]
	return err
}

// writeFrame emits one "CSEG" frame (header + stored payload) and records
// its index entry. With the pipeline running, only its emitter calls this,
// so the output stream, offset and index stay single-writer.
func (w *Writer) writeFrame(payload []byte, flags uint32, rawLen int, meta segMeta) error {
	si := SegmentInfo{
		Offset:     w.off,
		PayloadLen: len(payload),
		Count:      meta.count,
		Flags:      flags,
		RawLen:     rawLen,
		BaseT:      meta.base,
		MinT:       meta.min,
		MaxT:       meta.max,
	}
	w.index = append(w.index, si)
	var hdr [segHeaderLenV3 + 4]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(meta.count))
	rest := hdr[12:]
	hl := segHeaderLen
	if w.version >= version3 {
		binary.LittleEndian.PutUint32(hdr[12:], flags)
		rest = hdr[16:]
		hl = segHeaderLenV3
	}
	binary.LittleEndian.PutUint64(rest[0:], uint64(meta.base))
	binary.LittleEndian.PutUint64(rest[8:], uint64(meta.min))
	binary.LittleEndian.PutUint64(rest[16:], uint64(meta.max))
	if flags&SegCompressed != 0 {
		binary.LittleEndian.PutUint32(hdr[segHeaderLenV3:], uint32(rawLen))
		hl = segHeaderLenV3 + 4
	}
	if _, err := w.w.Write(hdr[:hl]); err != nil {
		return w.latchIO(err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return w.latchIO(err)
	}
	w.off += int64(hl) + int64(len(payload))
	w.frames++
	if w.SyncEvery > 0 && w.frames%int64(w.SyncEvery) == 0 {
		return w.latchIO(w.syncDst())
	}
	return nil
}

// syncDst makes every byte written so far durable: the bufio layer flushes
// to the destination, which is then fsynced when it exposes the file-like
// Sync() error method (a plain in-memory sink just gets the flush).
func (w *Writer) syncDst() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if s, ok := w.dst.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush seals and flushes the trace, surfacing any error latched by the
// Handle paths or the compression pipeline first. For the indexed formats
// it releases any SortWindow-buffered records, writes the final partial
// segment, drains the pipeline, then writes the segment index and the
// footer — so it must be called exactly once, after the last Write;
// further Writes fail with ErrFinished.
func (w *Writer) Flush() error {
	if err := w.Err(); err != nil {
		return err
	}
	if !w.wrote {
		// An empty trace still gets a header (and, for the indexed formats,
		// an empty index + footer, so the file remains seekable and
		// well-formed).
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if w.SortWindow > 0 && len(w.pend) > 0 && !w.sealed {
		if err := w.releasePending(1<<63 - 1); err != nil {
			return err
		}
	}
	if w.version >= version2 && !w.sealed {
		if err := w.flushSegment(); err != nil {
			return err
		}
		if w.pipe != nil {
			if err := w.pipe.drain(); err != nil {
				if w.err == nil {
					w.err = err
				}
				return err
			}
		}
		if err := w.writeIndexAndFooter(); err != nil {
			return w.latchIO(err)
		}
		w.sealed = true
	}
	if err := w.w.Flush(); err != nil {
		return w.latchIO(err)
	}
	if w.SyncEvery > 0 {
		// The seal itself must be durable too: without this, a crash right
		// after Flush could leave a file whose segments are synced but whose
		// index+footer are not — recoverable, but needlessly so.
		return w.latchIO(w.syncDst())
	}
	return nil
}

// Reader streams records from the binary trace format, accepting every
// version (v1–v4) transparently: ReadAll / ReadAllPrefetch scan any version
// serially, and ReadAllParallel / ReadAllSharded additionally decode
// indexed segments on worker goroutines when the source is seekable,
// falling back to the serial scan (with a Warning) when it is not or the
// index is unreadable.
type Reader struct {
	// Salvage, when set before the first read, makes the indexed read paths
	// (ReadAllParallel, ReadAllSharded) fall back to Recover when the
	// footer or index is missing or damaged: the forward scan rebuilds an
	// index over the intact segment prefix and decode proceeds as if the
	// file were sealed, delivering exactly the validated records with no
	// error and the degradation note in Warning. The zero value keeps the
	// strict behavior: a damaged index degrades to the serial scan, which
	// surfaces the corruption it runs into.
	Salvage bool

	src     io.Reader // the unbuffered source, for the indexed read path
	r       *bufio.Reader
	last    time.Duration
	init    bool
	version uint8
	seg     SegmentInfo // v2+: current segment's frame header
	segLeft int         // v2: records remaining in the current segment
	done    bool        // v2+: index frame reached — clean end of records
	err     error
	warn    string

	// v3/v4 serial Read path: segments decode whole (they may be
	// compressed or columnar), so decoded records queue here and pop one
	// per Read call.
	q    []Record
	qPos int
	qErr error
	sc   segScratch
}

// NewReader creates a Reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{src: r, r: bufio.NewReaderSize(r, 1<<16)}
}

// Version returns the trace format version (1–4), or 0 before the header
// has been read.
func (r *Reader) Version() int { return int(r.version) }

// Err returns the cause latched behind the last error the Reader surfaced,
// or nil. The sentinels (ErrBadMagic, ErrCorrupt) keep error identity
// stable for callers; Err preserves the close/EOF-tail state of the source
// — e.g. an io.ErrUnexpectedEOF from a truncated file, or the I/O error a
// failing disk returned mid-record. Errors from the parallel read path
// latch in wrapped form: errors.Is against both ErrCorrupt and the
// underlying cause works.
func (r *Reader) Err() error { return r.err }

// Warning returns a human-readable note when a read path degraded (e.g.
// ReadAllParallel fell back to a serial scan because the index was
// truncated), or "" if none.
func (r *Reader) Warning() string { return r.warn }

// latch records err as the underlying cause and returns the sentinel.
func (r *Reader) latch(sentinel, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if r.err == nil {
		r.err = err
	}
	return sentinel
}

func (r *Reader) readHeader() error {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return r.latch(ErrBadMagic, err)
	}
	if string(hdr[:4]) != magic {
		return ErrBadMagic
	}
	switch hdr[4] {
	case version1, version2, version3, version4:
		r.version = hdr[4]
	default:
		return ErrBadVersion
	}
	r.init = true
	return nil
}

// Read returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Read() (Record, error) {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return Record{}, err
		}
	}
	if r.version >= version3 {
		return r.readSegmented()
	}
	if r.version == version2 {
		if r.segLeft == 0 {
			if err := r.nextSegment(); err != nil {
				return Record{}, err
			}
		}
		r.segLeft--
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF && r.version == version1 {
			return Record{}, io.EOF
		}
		// v2 records only exist inside a segment with a declared count;
		// EOF mid-segment is a truncation, not a clean end.
		return Record{}, r.latch(ErrCorrupt, err)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	client, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	app, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, r.latch(ErrCorrupt, err)
	}
	if client > 1<<32-1 || app > 1<<16-1 {
		return Record{}, ErrCorrupt
	}
	// The uint64 comparison first: a near-2^64 delta would wrap the
	// Duration sum before the span check could see it.
	if delta > uint64(MaxSpan) || r.last+time.Duration(delta) > MaxSpan {
		return Record{}, r.latch(ErrCorrupt,
			fmt.Errorf("timestamp jumps past the %v span cap", MaxSpan))
	}
	r.last += time.Duration(delta)
	return Record{
		T:      r.last,
		Dir:    Direction(flags & 1),
		Kind:   Kind(flags >> 1 & 0x7),
		Client: uint32(client),
		App:    uint16(app),
	}, nil
}

// readSegmented is the v3/v4 serial Read path: these segments may be
// compressed or columnar, so each decodes whole into an in-memory queue
// and Read pops one record at a time. Records decoded before a mid-segment
// corruption still pop before the error surfaces, preserving
// records-before-error delivery.
func (r *Reader) readSegmented() (Record, error) {
	for r.qPos >= len(r.q) {
		if r.qErr != nil {
			return Record{}, r.qErr
		}
		r.fillSegmentQueue()
	}
	rec := r.q[r.qPos]
	r.qPos++
	return rec, nil
}

// fillSegmentQueue loads, decompresses and decodes the next segment into
// the Read queue, recording the terminal error (io.EOF at a clean end) for
// delivery after the queued records drain.
func (r *Reader) fillSegmentQueue() {
	r.q = r.q[:0]
	r.qPos = 0
	if err := r.nextSegment(); err != nil {
		r.qErr = err
		return
	}
	blocks, err := r.loadSegment(&r.sc)
	for _, blk := range blocks {
		r.q = append(r.q, *blk...)
		FreeBlock(blk)
	}
	r.qErr = err
}

// ReadAll drains the stream into h in BlockSize batches, returning the
// record count. On error, records decoded before the error still reach h.
func (r *Reader) ReadAll(h Handler) (int64, error) {
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	var n int64
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		bat.Handle(rec)
		n++
	}
}
