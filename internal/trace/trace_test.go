package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"cstrace/internal/packet"
	"cstrace/internal/pcap"
	"cstrace/internal/units"
)

func TestWireAccounting(t *testing.T) {
	r := Record{App: 40}
	if r.Wire() != 40+units.WireOverhead {
		t.Errorf("Wire = %d", r.Wire())
	}
}

func TestDirectionKindStrings(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" {
		t.Error("Direction.String")
	}
	kinds := map[Kind]string{
		KindGame: "game", KindHandshake: "handshake", KindText: "text",
		KindVoice: "voice", KindDownload: "download", Kind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTeeAndFilter(t *testing.T) {
	var a, b Collect
	h := Tee(&a, Filter(func(r Record) bool { return r.Dir == In }, &b))
	h.Handle(Record{Dir: In})
	h.Handle(Record{Dir: Out})
	if len(a.Records) != 2 {
		t.Errorf("tee a got %d", len(a.Records))
	}
	if len(b.Records) != 1 || b.Records[0].Dir != In {
		t.Errorf("filter b got %v", b.Records)
	}
}

func TestMerge(t *testing.T) {
	s1 := []Record{{T: 1, Client: 1}, {T: 3, Client: 1}, {T: 5, Client: 1}}
	s2 := []Record{{T: 2, Client: 2}, {T: 3, Client: 2}}
	var out Collect
	Merge(&out, s1, s2)
	if len(out.Records) != 5 {
		t.Fatalf("merged %d records", len(out.Records))
	}
	wantT := []time.Duration{1, 2, 3, 3, 5}
	wantC := []uint32{1, 2, 1, 2, 1} // tie at T=3 preserves stream order
	for i, r := range out.Records {
		if r.T != wantT[i] || r.Client != wantC[i] {
			t.Errorf("record %d = %+v", i, r)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := []Record{
		{T: 0, Dir: In, Kind: KindHandshake, Client: 1, App: 12},
		{T: 41 * time.Millisecond, Dir: In, Kind: KindGame, Client: 1, App: 40},
		{T: 50 * time.Millisecond, Dir: Out, Kind: KindGame, Client: 1, App: 130},
		{T: 50 * time.Millisecond, Dir: Out, Kind: KindGame, Client: 2, App: 255},
		{T: 100 * time.Hour, Dir: Out, Kind: KindDownload, Client: 70000, App: 65000},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Errorf("Count = %d", w.Count())
	}

	r := NewReader(&buf)
	var got Collect
	n, err := r.ReadAll(&got)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("read %d records", n)
	}
	for i := range recs {
		if got.Records[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got.Records[i], recs[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(deltas []uint16, dirs []bool, apps []uint16, clients []uint32) bool {
		n := len(deltas)
		if len(dirs) < n {
			n = len(dirs)
		}
		if len(apps) < n {
			n = len(apps)
		}
		if len(clients) < n {
			n = len(clients)
		}
		recs := make([]Record, n)
		var tm time.Duration
		for i := 0; i < n; i++ {
			tm += time.Duration(deltas[i]) * time.Microsecond
			d := In
			if dirs[i] {
				d = Out
			}
			recs[i] = Record{T: tm, Dir: d, Kind: Kind(i % 5), Client: clients[i], App: apps[i]}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		var got Collect
		if _, err := NewReader(&buf).ReadAll(&got); err != nil {
			return false
		}
		if len(got.Records) != n {
			return false
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriterRejectsTimeRegression(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{T: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{T: 0}); err == nil {
		t.Error("want error for time regression")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestReaderBadInput(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))).Read(); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	bad := append([]byte("CSTR"), 99, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(bad)).Read(); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
	// v1 header followed by garbage mid-record.
	trunc := append([]byte("CSTR"), version1, 0, 0, 0, 0x80)
	if _, err := NewReader(bytes.NewReader(trunc)).Read(); err != ErrCorrupt {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	// v2 header followed by an unknown frame marker.
	badFrame := append([]byte("CSTR"), version2, 0, 0, 0)
	badFrame = append(badFrame, "WHAT"...)
	if _, err := NewReader(bytes.NewReader(badFrame)).Read(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestClientAddrStability(t *testing.T) {
	a1 := ClientAddr(1234)
	a2 := ClientAddr(1234)
	if a1 != a2 {
		t.Error("ClientAddr must be deterministic")
	}
	if ClientAddr(1) == ClientAddr(2) {
		t.Error("distinct clients should get distinct addresses")
	}
	if a1 == DefaultServerAddr {
		t.Error("client address collides with server")
	}
	// Never produce .0 or .255 host bytes.
	for id := uint32(0); id < 1000; id++ {
		a := ClientAddr(id).As4()
		if a[3] == 0 || a[3] == 255 {
			t.Fatalf("id %d produced %v", id, ClientAddr(id))
		}
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	recs := []Record{
		{T: 0, Dir: In, Client: 7, App: 40},
		{T: 10 * time.Millisecond, Dir: Out, Client: 7, App: 130},
		{T: 20 * time.Millisecond, Dir: In, Client: 9, App: 45},
	}
	var buf bytes.Buffer
	pw := NewPCAPWriter(&buf, time.Date(2002, 4, 11, 8, 55, 4, 0, time.UTC))
	for _, r := range recs {
		if err := pw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	var got Collect
	n, skipped, err := ReadPCAP(&buf, DefaultServerAddr, DefaultServerPort, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || skipped != 0 {
		t.Fatalf("n=%d skipped=%d", n, skipped)
	}
	for i, r := range got.Records {
		if r.T != recs[i].T || r.Dir != recs[i].Dir || r.App != recs[i].App {
			t.Errorf("record %d: got %+v, want %+v", i, r, recs[i])
		}
	}
	// Same original client -> same reassigned id; different -> different.
	if got.Records[0].Client != got.Records[1].Client {
		t.Error("same endpoint should map to same client id")
	}
	if got.Records[0].Client == got.Records[2].Client {
		t.Error("different endpoints should map to different ids")
	}
}

func TestPCAPNGRoundTrip(t *testing.T) {
	recs := []Record{
		{T: 0, Dir: In, Client: 3, App: 38},
		{T: 50 * time.Millisecond, Dir: Out, Client: 3, App: 188},
		{T: 100 * time.Millisecond, Dir: Out, Client: 4, App: 97},
	}
	var buf bytes.Buffer
	pw := NewPCAPNGWriter(&buf, time.Date(2002, 4, 11, 8, 55, 4, 0, time.UTC))
	for _, r := range recs {
		if err := pw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	var got Collect
	n, skipped, err := ReadPCAPNG(&buf, DefaultServerAddr, DefaultServerPort, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || skipped != 0 {
		t.Fatalf("n=%d skipped=%d", n, skipped)
	}
	for i, r := range got.Records {
		if r.T != recs[i].T || r.Dir != recs[i].Dir || r.App != recs[i].App {
			t.Errorf("record %d: got %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestReadPCAPSkipsTCP(t *testing.T) {
	// A TCP frame addressed at the server must be counted as skipped, not
	// misparsed as a game record.
	var s packet.Serializer
	eth := &packet.Ethernet{}
	ip := &packet.IPv4{
		TTL: 64,
		Src: ClientAddr(1), Dst: DefaultServerAddr,
	}
	tcp := &packet.TCP{SrcPort: 1234, DstPort: DefaultServerPort, SYN: true}
	frame, err := s.TCPFrame(eth, ip, tcp, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeEthernet, 65535)
	ci := pcap.CaptureInfo{
		Timestamp:     time.Unix(0, 0),
		CaptureLength: len(frame),
		Length:        len(frame),
	}
	if err := w.WritePacket(ci, frame); err != nil {
		t.Fatal(err)
	}
	var got Collect
	n, skipped, err := ReadPCAP(&buf, DefaultServerAddr, DefaultServerPort, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || skipped != 1 {
		t.Errorf("n=%d skipped=%d, want 0/1", n, skipped)
	}
}
