package trace

import "io"

// Prefetching serial read path: ReadAll decodes and analyzes on one
// goroutine, so the varint decode serializes with the collector sweeps.
// ReadAllPrefetch moves decoding to its own goroutine, sending pooled
// blocks over a bounded channel — the next block decodes while the current
// one is being analyzed, overlapping file I/O and analysis. It is the
// serial scan every degraded case of ReadAllParallel falls back to: v1
// traces (no index exists), non-seekable sources, and v2 files with a
// damaged index or footer.

// prefetchDepth bounds the decoded-but-unconsumed block queue.
const prefetchDepth = 4

// prefetchMsg carries one decoded block (or the terminal error) from the
// decode goroutine to the consumer.
type prefetchMsg struct {
	blk *Block
	err error // non-nil only on the final message; io.EOF is not sent
}

// ReadAllPrefetch drains the stream into h exactly as ReadAll does, but
// decodes up to prefetchDepth blocks ahead on a separate goroutine. The
// delivered stream, record count and error behavior are identical to
// ReadAll: records decoded before an error still reach h. For indexed
// (v2/v3) traces the decode goroutine additionally works segment-at-a-time
// out of an in-memory slab — inflating compressed v3 segments first —
// instead of per-record reader calls, which roughly triples decode
// throughput (see BenchmarkAnalyzeV1 vs BenchmarkAnalyzeV2).
func (r *Reader) ReadAllPrefetch(h Handler) (int64, error) {
	ch := make(chan prefetchMsg, prefetchDepth)
	go func() {
		defer close(ch)
		if err := r.prefetchLoop(ch); err != nil && err != io.EOF {
			ch <- prefetchMsg{err: err}
		}
	}()

	bh := Batch(h)
	var n int64
	for msg := range ch {
		if msg.err != nil {
			return n, msg.err
		}
		n += int64(len(*msg.blk))
		bh.HandleBatch(*msg.blk)
		FreeBlock(msg.blk)
	}
	return n, nil
}

// prefetchLoop decodes the whole stream into ch, returning io.EOF on a
// clean end of stream.
func (r *Reader) prefetchLoop(ch chan<- prefetchMsg) error {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return err
		}
	}
	if r.version >= version2 {
		return r.prefetchSegments(ch)
	}
	blk := NewBlock()
	for {
		rec, err := r.Read()
		if err != nil {
			if len(*blk) > 0 {
				ch <- prefetchMsg{blk: blk}
			} else {
				FreeBlock(blk)
			}
			return err
		}
		*blk = append(*blk, rec)
		if len(*blk) == cap(*blk) {
			ch <- prefetchMsg{blk: blk}
			blk = NewBlock()
		}
	}
}

// inflateAhead bounds how many segments the inflate stage of the serial
// pipeline runs ahead of the decode stage.
const inflateAhead = 2

// inflatedSeg carries one segment's raw payload from the inflate stage to
// the decode stage. raw may be the recovered prefix when err is non-nil
// (read truncation or flate damage — priority over any decode error); slab
// is raw's backing buffer, returned to the free list after decode.
type inflatedSeg struct {
	raw  []byte
	slab []byte
	si   SegmentInfo
	err  error
}

// prefetchSegments is the indexed-format serial decode pipeline, split in
// two so decompression overlaps decoding: an inflate goroutine scans
// frames, reads each payload and inflates it into a pooled slab up to
// inflateAhead segments ahead, while this goroutine decodes the raw slabs
// into blocks and ships them. Identical stream and records-before-error
// semantics as a fused loop, with flate off the decode critical path.
func (r *Reader) prefetchSegments(ch chan<- prefetchMsg) error {
	infl := make(chan inflatedSeg, inflateAhead)
	free := make(chan []byte, 2*(inflateAhead+2))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(infl)
		r.inflateLoop(infl, free, stop)
	}()
	// The inflate goroutine owns the Reader's scanner state (and error
	// latch); wait for it to exit before returning so the caller observes
	// a quiescent Reader.
	defer func() { close(stop); <-done }()

	for msg := range infl {
		var decErr error
		if len(msg.raw) > 0 {
			blocks, err := decodeSegmentPayload(msg.raw, msg.si)
			decErr = err
			for _, blk := range blocks {
				ch <- prefetchMsg{blk: blk}
			}
		}
		if msg.slab != nil {
			select {
			case free <- msg.slab:
			default:
			}
		}
		if msg.err != nil {
			return msg.err
		}
		if decErr != nil {
			return decErr
		}
	}
	return io.EOF
}

// inflateLoop is the pipeline's first stage: frame scan, payload read,
// decompression. Each segment's raw payload lands in a slab owned by the
// message (recycled through free), so the decode stage never races the
// next segment's read. A terminal error (scan damage, short payload read,
// flate damage) is attached to the message carrying any recovered prefix,
// and the loop stops — matching the fused loadSegment error priority.
func (r *Reader) inflateLoop(infl chan<- inflatedSeg, free chan []byte, stop <-chan struct{}) {
	var sc segScratch // flate reader state; payload slabs come from free
	send := func(msg inflatedSeg) bool {
		select {
		case infl <- msg:
			return true
		case <-stop:
			return false
		}
	}
	for {
		if err := r.nextSegment(); err != nil {
			if err != io.EOF {
				send(inflatedSeg{err: err})
			}
			return
		}
		si := r.seg
		slab := slabFor(free, si.PayloadLen)
		got, readErr := io.ReadFull(r.r, slab[:si.PayloadLen])
		payload := slab[:got]
		// Advance the scanner past the segment, as loadSegment does, so
		// the next frame parses from a consistent position.
		r.segLeft = 0
		r.last = si.MaxT
		msg := inflatedSeg{raw: payload, slab: slab, si: si}
		if si.Compressed() {
			raw := slabFor(free, si.RawLen)
			msg.raw, msg.err = sc.decompressInto(raw[:si.RawLen], payload, si)
			msg.slab = raw
			select {
			case free <- slab:
			default:
			}
		}
		if readErr != nil {
			// Read truncation outranks whatever the partial inflate said.
			msg.err = r.latch(ErrCorrupt, readErr)
		}
		if !send(msg) || msg.err != nil {
			return
		}
	}
}

// slabFor returns a recycled slab of at least n bytes, growing or
// allocating as needed.
func slabFor(free chan []byte, n int) []byte {
	var s []byte
	select {
	case s = <-free:
	default:
	}
	if cap(s) < n {
		s = make([]byte, n)
	}
	return s[:cap(s)]
}
