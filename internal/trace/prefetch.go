package trace

import "io"

// Prefetching serial read path: ReadAll decodes and analyzes on one
// goroutine, so the varint decode serializes with the collector sweeps.
// ReadAllPrefetch moves decoding to its own goroutine, sending pooled
// blocks over a bounded channel — the next block decodes while the current
// one is being analyzed, overlapping file I/O and analysis. It is the
// serial scan every degraded case of ReadAllParallel falls back to: v1
// traces (no index exists), non-seekable sources, and v2 files with a
// damaged index or footer.

// prefetchDepth bounds the decoded-but-unconsumed block queue.
const prefetchDepth = 4

// prefetchMsg carries one decoded block (or the terminal error) from the
// decode goroutine to the consumer.
type prefetchMsg struct {
	blk *Block
	err error // non-nil only on the final message; io.EOF is not sent
}

// ReadAllPrefetch drains the stream into h exactly as ReadAll does, but
// decodes up to prefetchDepth blocks ahead on a separate goroutine. The
// delivered stream, record count and error behavior are identical to
// ReadAll: records decoded before an error still reach h. For indexed
// (v2/v3) traces the decode goroutine additionally works segment-at-a-time
// out of an in-memory slab — inflating compressed v3 segments first —
// instead of per-record reader calls, which roughly triples decode
// throughput (see BenchmarkAnalyzeV1 vs BenchmarkAnalyzeV2).
func (r *Reader) ReadAllPrefetch(h Handler) (int64, error) {
	ch := make(chan prefetchMsg, prefetchDepth)
	go func() {
		defer close(ch)
		if err := r.prefetchLoop(ch); err != nil && err != io.EOF {
			ch <- prefetchMsg{err: err}
		}
	}()

	bh := Batch(h)
	var n int64
	for msg := range ch {
		if msg.err != nil {
			return n, msg.err
		}
		n += int64(len(*msg.blk))
		bh.HandleBatch(*msg.blk)
		FreeBlock(msg.blk)
	}
	return n, nil
}

// prefetchLoop decodes the whole stream into ch, returning io.EOF on a
// clean end of stream.
func (r *Reader) prefetchLoop(ch chan<- prefetchMsg) error {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return err
		}
	}
	if r.version >= version2 {
		return r.prefetchSegments(ch)
	}
	blk := NewBlock()
	for {
		rec, err := r.Read()
		if err != nil {
			if len(*blk) > 0 {
				ch <- prefetchMsg{blk: blk}
			} else {
				FreeBlock(blk)
			}
			return err
		}
		*blk = append(*blk, rec)
		if len(*blk) == cap(*blk) {
			ch <- prefetchMsg{blk: blk}
			blk = NewBlock()
		}
	}
}

// prefetchSegments is the indexed-format serial decode loop: read each
// segment's payload into a reused slab, decompress it if the segment is
// flagged compressed (v3), decode it in one in-memory pass, ship the
// blocks. Identical stream and records-before-error semantics as the
// per-record loop, at a fraction of the per-record cost.
func (r *Reader) prefetchSegments(ch chan<- prefetchMsg) error {
	var sc segScratch
	for {
		if err := r.nextSegment(); err != nil {
			return err
		}
		blocks, err := r.loadSegment(&sc)
		for _, blk := range blocks {
			ch <- prefetchMsg{blk: blk}
		}
		if err != nil {
			return err
		}
	}
}
