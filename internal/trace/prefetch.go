package trace

import "io"

// Prefetching read path: ReadAll decodes and analyzes on one goroutine, so
// the varint decode serializes with the collector sweeps. ReadAllPrefetch
// moves decoding to its own goroutine, sending pooled blocks over a bounded
// channel — the next block decodes while the current one is being analyzed,
// overlapping file I/O and analysis in -mode analyze.

// prefetchDepth bounds the decoded-but-unconsumed block queue.
const prefetchDepth = 4

// prefetchMsg carries one decoded block (or the terminal error) from the
// decode goroutine to the consumer.
type prefetchMsg struct {
	blk *Block
	err error // non-nil only on the final message; io.EOF is not sent
}

// ReadAllPrefetch drains the stream into h exactly as ReadAll does, but
// decodes up to prefetchDepth blocks ahead on a separate goroutine. The
// delivered stream, record count and error behavior are identical to
// ReadAll: records decoded before an error still reach h.
func (r *Reader) ReadAllPrefetch(h Handler) (int64, error) {
	ch := make(chan prefetchMsg, prefetchDepth)
	go func() {
		defer close(ch)
		blk := NewBlock()
		for {
			rec, err := r.Read()
			if err != nil {
				if len(*blk) > 0 {
					ch <- prefetchMsg{blk: blk}
				} else {
					FreeBlock(blk)
				}
				if err != io.EOF {
					ch <- prefetchMsg{err: err}
				}
				return
			}
			*blk = append(*blk, rec)
			if len(*blk) == cap(*blk) {
				ch <- prefetchMsg{blk: blk}
				blk = NewBlock()
			}
		}
	}()

	bh := Batch(h)
	var n int64
	for msg := range ch {
		if msg.err != nil {
			return n, msg.err
		}
		n += int64(len(*msg.blk))
		bh.HandleBatch(*msg.blk)
		FreeBlock(msg.blk)
	}
	return n, nil
}
