package trace

import "sync"

// The block-oriented fast path. The per-record Handler interface costs one
// virtual call per record through every pipeline layer; at the paper's scale
// (half a billion records) dispatch dominates. A Block is a reusable slab of
// records recycled through a sync.Pool, and a BatchHandler consumes a whole
// slab per call, so interface dispatch and cache misses amortize over
// BlockSize records. Handler remains the compatibility surface: Dispatch
// bridges a block onto either interface, and Batcher bridges a per-record
// producer onto a BatchHandler.

// BlockSize is the capacity of pooled blocks and the granularity at which
// streaming stages re-batch.
const BlockSize = 4096

// Block is a reusable []Record slab. Obtain one with NewBlock and return it
// with FreeBlock when done; the backing array is recycled.
type Block = []Record

var blockPool = sync.Pool{
	New: func() any {
		b := make(Block, 0, BlockSize)
		return &b
	},
}

// NewBlock returns an empty block with capacity BlockSize from the pool.
func NewBlock() *Block {
	b := blockPool.Get().(*Block)
	*b = (*b)[:0]
	return b
}

// FreeBlock recycles a block obtained from NewBlock.
func FreeBlock(b *Block) {
	if b == nil || cap(*b) == 0 {
		return
	}
	blockPool.Put(b)
}

// BatchHandler consumes records a block at a time. The slice is only valid
// for the duration of the call: implementations that retain records must
// copy them.
type BatchHandler interface {
	HandleBatch(rs []Record)
}

// BatchHandlerFunc adapts a function to a BatchHandler.
type BatchHandlerFunc func([]Record)

// HandleBatch implements BatchHandler.
func (f BatchHandlerFunc) HandleBatch(rs []Record) { f(rs) }

// Dispatch delivers a block to h on its fastest supported path: one
// HandleBatch call when h is a BatchHandler, a per-record loop otherwise.
func Dispatch(h Handler, rs []Record) {
	if len(rs) == 0 {
		return
	}
	if bh, ok := h.(BatchHandler); ok {
		bh.HandleBatch(rs)
		return
	}
	for _, r := range rs {
		h.Handle(r)
	}
}

// Batch adapts a per-record Handler to the BatchHandler interface (the
// compat shim for stages that only speak records).
func Batch(h Handler) BatchHandler {
	if bh, ok := h.(BatchHandler); ok {
		return bh
	}
	return BatchHandlerFunc(func(rs []Record) {
		for _, r := range rs {
			h.Handle(r)
		}
	})
}

// Batcher accumulates individually delivered records into pooled blocks and
// forwards each full block downstream — the bridge from a per-record
// producer into a block-oriented pipeline. Records may sit buffered until
// the block fills; producers with latency bounds should call Flush on their
// own cadence. Not safe for concurrent use; see LockedBatcher.
type Batcher struct {
	next BatchHandler
	blk  *Block
}

// NewBatcher creates a Batcher forwarding to next. Wrap a per-record
// downstream with Batch to adapt it.
func NewBatcher(next BatchHandler) *Batcher {
	return &Batcher{next: next, blk: NewBlock()}
}

// Handle implements Handler.
func (b *Batcher) Handle(r Record) {
	*b.blk = append(*b.blk, r)
	if len(*b.blk) == cap(*b.blk) {
		b.Flush()
	}
}

// HandleBatch implements BatchHandler: buffered records flush first so
// stream order is preserved, then the block passes through.
func (b *Batcher) HandleBatch(rs []Record) {
	b.Flush()
	if len(rs) > 0 {
		b.next.HandleBatch(rs)
	}
}

// Flush forwards any buffered records. Call once after the last record.
func (b *Batcher) Flush() {
	if len(*b.blk) > 0 {
		b.next.HandleBatch(*b.blk)
		*b.blk = (*b.blk)[:0]
	}
}

// Close flushes and returns the internal block to the pool. The Batcher
// must not be used afterwards; short-lived batchers (one per ReadAll or
// Merge call) should defer it so the slab recycles.
func (b *Batcher) Close() {
	b.Flush()
	FreeBlock(b.blk)
	b.blk = nil
}

// LockedBatcher is a mutex-guarded Batcher for producers that emit records
// from multiple goroutines — the live game server's tap coalesces its
// per-datagram records through one.
type LockedBatcher struct {
	mu sync.Mutex
	b  *Batcher
}

// NewLockedBatcher creates a LockedBatcher forwarding to next.
func NewLockedBatcher(next BatchHandler) *LockedBatcher {
	return &LockedBatcher{b: NewBatcher(next)}
}

// Handle implements Handler.
func (l *LockedBatcher) Handle(r Record) {
	l.mu.Lock()
	l.b.Handle(r)
	l.mu.Unlock()
}

// HandleBatch implements BatchHandler.
func (l *LockedBatcher) HandleBatch(rs []Record) {
	l.mu.Lock()
	l.b.HandleBatch(rs)
	l.mu.Unlock()
}

// Flush forwards buffered records.
func (l *LockedBatcher) Flush() {
	l.mu.Lock()
	l.b.Flush()
	l.mu.Unlock()
}
