package trace

import (
	"container/heap"
	"slices"
	"time"
)

// SortBuffer restores strict time order to a record stream whose disorder is
// bounded (the generator interleaves per-client schedules within one server
// tick). Records are released once the stream's high-water mark has moved
// slack past them; ties release in arrival order.
//
// The per-record path holds records in a min-heap. The batch path instead
// appends arrivals to an unsorted pending buffer and, on release, partitions
// out the eligible records and sorts just those — the input is nearly sorted,
// so the sort is close to linear, and it touches each record once instead of
// paying a heap sift on every insert. Both paths share one total order
// (timestamp, then arrival sequence), so they interleave freely and emit
// identical streams.
//
// Consumers that need exact ordering — the binary trace writer, the NAT
// queueing model — sit behind a SortBuffer; order-insensitive collectors
// (histograms, binners) do not pay for one.
type SortBuffer struct {
	slack    time.Duration
	next     Handler
	maxSeen  time.Duration
	h        sortHeap   // record-path arrivals (heap order)
	pend     []sortItem // batch-path arrivals (unsorted)
	seq      uint64
	scratch  Block      // reused downstream release buffer
	eligible []sortItem // reused partition buffer
	keys     []uint64   // reused packed sort keys
	sorted   []sortItem // reused gather buffer
}

// NewSortBuffer creates a buffer releasing records slack behind the
// high-water mark. slack must exceed the stream's worst-case disorder.
func NewSortBuffer(slack time.Duration, next Handler) *SortBuffer {
	return &SortBuffer{slack: slack, next: next}
}

// Handle implements Handler.
func (s *SortBuffer) Handle(r Record) {
	if len(s.pend) > 0 {
		// Mixed feeds: fold pending batch arrivals into the heap once,
		// so the per-record path keeps its O(log n) cost instead of
		// rescanning the pending buffer on every packet.
		for _, it := range s.pend {
			s.h.pushItem(it)
		}
		s.pend = s.pend[:0]
	}
	heap.Push(&s.h, sortItem{r: r, seq: s.seq})
	s.seq++
	if r.T > s.maxSeen {
		s.maxSeen = r.T
	}
	for len(s.h) > 0 && s.h[0].r.T <= s.maxSeen-s.slack {
		s.next.Handle(heap.Pop(&s.h).(sortItem).r)
	}
}

// HandleBatch implements BatchHandler.
func (s *SortBuffer) HandleBatch(rs []Record) {
	for _, r := range rs {
		s.pend = append(s.pend, sortItem{r: r, seq: s.seq})
		s.seq++
		if r.T > s.maxSeen {
			s.maxSeen = r.T
		}
	}
	s.release(s.maxSeen - s.slack)
}

// release emits every buffered record with T <= watermark, in total order,
// delivering them downstream in blocks.
func (s *SortBuffer) release(watermark time.Duration) {
	// Partition the pending buffer: eligible records move to the reusable
	// side buffer, the rest compact in place. The same pass tracks the
	// eligible time range and whether any inversion exists at all.
	elig := s.eligible[:0]
	var minT, maxT time.Duration
	inverted := false
	if len(s.pend) > 0 {
		keep := s.pend[:0]
		prevT := time.Duration(-1 << 62)
		for _, it := range s.pend {
			if it.r.T <= watermark {
				if len(elig) == 0 {
					minT, maxT = it.r.T, it.r.T
				} else {
					if it.r.T < prevT {
						inverted = true
					}
					if it.r.T < minT {
						minT = it.r.T
					}
					if it.r.T > maxT {
						maxT = it.r.T
					}
				}
				prevT = it.r.T
				elig = append(elig, it)
			} else {
				keep = append(keep, it)
			}
		}
		s.pend = keep
	}
	heapReady := len(s.h) > 0 && s.h[0].r.T <= watermark
	if len(elig) == 0 && !heapReady {
		s.eligible = elig
		return
	}
	if inverted {
		elig = s.sortEligible(elig, minT, maxT)
	}

	if cap(s.scratch) == 0 {
		s.scratch = make(Block, 0, BlockSize)
	}
	blk := s.scratch[:0]
	i := 0
	for {
		heapReady = len(s.h) > 0 && s.h[0].r.T <= watermark
		pendReady := i < len(elig)
		if !heapReady && !pendReady {
			break
		}
		var it sortItem
		switch {
		case heapReady && pendReady:
			if s.h[0].r.T < elig[i].r.T ||
				(s.h[0].r.T == elig[i].r.T && s.h[0].seq < elig[i].seq) {
				it = s.h.popItem()
			} else {
				it = elig[i]
				i++
			}
		case heapReady:
			it = s.h.popItem()
		default:
			it = elig[i]
			i++
		}
		blk = append(blk, it.r)
		if len(blk) == cap(blk) {
			Dispatch(s.next, blk)
			blk = blk[:0]
		}
	}
	Dispatch(s.next, blk)
	s.scratch = blk[:0]
	s.eligible = elig[:0]
}

// sortEligible stable-sorts the eligible records by timestamp. Entries
// arrive in sequence order, so a stable sort by T alone reproduces the
// (T, seq) total order. The common case packs (T−minT, index) into native
// uint64 keys and sorts those — no comparison closure — falling back to a
// comparator sort when the range or count overflows the packing.
func (s *SortBuffer) sortEligible(elig []sortItem, minT, maxT time.Duration) []sortItem {
	const idxBits = 16
	n := len(elig)
	if n <= 1<<idxBits && uint64(maxT-minT) < 1<<(64-idxBits-1) {
		keys := s.keys[:0]
		for i, it := range elig {
			keys = append(keys, uint64(it.r.T-minT)<<idxBits|uint64(i))
		}
		slices.Sort(keys)
		out := s.sorted[:0]
		for _, k := range keys {
			out = append(out, elig[k&(1<<idxBits-1)])
		}
		s.keys = keys[:0]
		s.sorted, s.eligible = elig[:0], out[:0] // swap the reusable buffers
		return out
	}
	slices.SortStableFunc(elig, func(a, b sortItem) int {
		switch {
		case a.r.T < b.r.T:
			return -1
		case a.r.T > b.r.T:
			return 1
		default:
			return 0
		}
	})
	return elig
}

// Flush releases everything still buffered, in order. Call once after the
// last record.
func (s *SortBuffer) Flush() {
	s.release(1<<63 - 1)
}

// Pending returns the number of buffered records.
func (s *SortBuffer) Pending() int { return len(s.h) + len(s.pend) }

type sortItem struct {
	r   Record
	seq uint64
}

type sortHeap []sortItem

func (h sortHeap) Len() int { return len(h) }
func (h sortHeap) Less(i, j int) bool {
	if h[i].r.T != h[j].r.T {
		return h[i].r.T < h[j].r.T
	}
	return h[i].seq < h[j].seq
}
func (h sortHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sortHeap) Push(x any)   { *h = append(*h, x.(sortItem)) }
func (h *sortHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// pushItem is the non-boxing equivalent of heap.Push, used when folding
// batch arrivals into the heap; it maintains the same binary-heap invariant.
func (h *sortHeap) pushItem(it sortItem) {
	*h = append(*h, it)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.Less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

// popItem is the non-boxing equivalent of heap.Pop used by release; it
// maintains the same binary-heap invariant, so the two paths mix freely.
func (h *sortHeap) popItem() sortItem {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.Less(l, smallest) {
			smallest = l
		}
		if r < n && a.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}
