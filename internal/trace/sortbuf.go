package trace

import (
	"container/heap"
	"time"
)

// SortBuffer restores strict time order to a record stream whose disorder is
// bounded (the generator interleaves per-client schedules within one server
// tick). Records are held in a min-heap and released once the stream's
// high-water mark has moved slack past them; ties release in arrival order.
//
// Consumers that need exact ordering — the binary trace writer, the NAT
// queueing model — sit behind a SortBuffer; order-insensitive collectors
// (histograms, binners) do not pay for one.
type SortBuffer struct {
	slack   time.Duration
	next    Handler
	maxSeen time.Duration
	h       sortHeap
	seq     uint64
}

// NewSortBuffer creates a buffer releasing records slack behind the
// high-water mark. slack must exceed the stream's worst-case disorder.
func NewSortBuffer(slack time.Duration, next Handler) *SortBuffer {
	return &SortBuffer{slack: slack, next: next}
}

// Handle implements Handler.
func (s *SortBuffer) Handle(r Record) {
	heap.Push(&s.h, sortItem{r: r, seq: s.seq})
	s.seq++
	if r.T > s.maxSeen {
		s.maxSeen = r.T
	}
	for len(s.h) > 0 && s.h[0].r.T <= s.maxSeen-s.slack {
		s.next.Handle(heap.Pop(&s.h).(sortItem).r)
	}
}

// Flush releases everything still buffered, in order. Call once after the
// last record.
func (s *SortBuffer) Flush() {
	for len(s.h) > 0 {
		s.next.Handle(heap.Pop(&s.h).(sortItem).r)
	}
}

// Pending returns the number of buffered records.
func (s *SortBuffer) Pending() int { return len(s.h) }

type sortItem struct {
	r   Record
	seq uint64
}

type sortHeap []sortItem

func (h sortHeap) Len() int { return len(h) }
func (h sortHeap) Less(i, j int) bool {
	if h[i].r.T != h[j].r.T {
		return h[i].r.T < h[j].r.T
	}
	return h[i].seq < h[j].seq
}
func (h sortHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sortHeap) Push(x any)   { *h = append(*h, x.(sortItem)) }
func (h *sortHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
