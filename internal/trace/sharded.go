package trace

import (
	"io"
	"sync"
)

// Direct decode-to-shard delivery. ReadAllParallel reassembles decoded
// segments on one dispatch goroutine, whose downstream HandleBatch
// re-batches every record into the consumer's own blocks — one memmove per
// record, on a single core. When decode outruns the collector sweep (v3
// slab decode does, by ~2×), that goroutine is the pipeline's bound.
// ReadAllSharded removes it: decode workers hand their pooled blocks
// straight to a BlockIngester (the sharded analysis suite implements it),
// serialized into file order by a turn chain instead of funneled through a
// middleman. No copy, no dispatch goroutine — the blocks the decoder filled
// are the blocks the collector groups sweep.

// BlockIngester is implemented by sinks that can take ownership of decoded
// blocks in-place — most notably the sharded analysis suite, which fans a
// block out to its collector-group channels refcounted and recycles it via
// FreeBlock when the last group finishes.
//
// Calls arrive in stream order and are serialized by the caller (the
// parallel reader's in-order turn chain provides both, with happens-before
// edges between consecutive calls even though they may run on different
// goroutines). An implementation must not retain blk past the point it
// frees it.
type BlockIngester interface {
	// IngestBlock consumes one decoded block obtained from NewBlock,
	// taking ownership: the implementation is responsible for eventually
	// returning it with FreeBlock.
	IngestBlock(blk *Block)
}

// ColumnIngester is implemented by sinks that can additionally consume
// column-decoded segments (v4 field-striped payloads) without the reader
// first interleaving them into Records. The same ordering and ownership
// contract as IngestBlock applies: calls arrive in stream order, serialized
// by the caller, and the sink must eventually return cb with
// FreeColumnBlock. A segment is delivered either as blocks or as columns,
// never both.
type ColumnIngester interface {
	BlockIngester
	// IngestColumns consumes one column-decoded block obtained from
	// NewColumnBlock, taking ownership.
	IngestColumns(cb *ColumnBlock)
}

// ReadAllSharded drains the stream into h exactly as ReadAllParallel does,
// but when h also implements BlockIngester (analysis.ShardedSuite does) the
// decode workers deliver their pooled blocks to it directly — in file
// order, enforced by a per-segment turn chain — instead of re-batching
// through the single reassembly-dispatch goroutine. The delivered stream is
// byte-identical to every other read path; only the copy and the extra
// goroutine hop disappear.
//
// Every degraded case behaves as in ReadAllParallel: a sink without
// IngestBlock, workers ≤ 1, a v1 trace, a non-seekable source or a damaged
// index all fall back (the latter two with a Warning), ultimately to the
// serial ReadAllPrefetch scan. Call it on a fresh Reader.
func (r *Reader) ReadAllSharded(h Handler, workers int) (int64, error) {
	ing, ok := h.(BlockIngester)
	if !ok || workers <= 1 {
		return r.ReadAllParallel(h, workers)
	}
	if !r.init {
		if err := r.readHeader(); err != nil {
			return 0, err
		}
	}
	if r.version == version1 {
		return r.ReadAllPrefetch(h)
	}
	ix, ok := r.resolveIndex()
	if !ok {
		return r.ReadAllPrefetch(h)
	}
	n, err := parallelDecodeSharded(r.src.(seekerAt), ix, workers, ing)
	if err != nil && r.err == nil {
		r.err = err
	}
	return n, err
}

// parallelDecodeSharded decodes segments on workers goroutines and hands
// each segment's blocks to ing from the decoding worker itself. A turn
// chain — one buffered channel per segment, threaded worker-to-worker —
// serializes the hand-offs into exact file order: the worker holding
// segment i ingests, then passes the turn to segment i+1's worker. Decode
// (the expensive part) overlaps freely; only the cheap ingest step is
// serialized. In-flight segments are bounded structurally: the jobs
// channel is unbuffered and each worker holds one segment at a time, so at
// most `workers` segments are decoded-but-undelivered (no token budget
// needed, unlike parallelDecode's buffered result slots).
//
// On a decode error the turn chain guarantees the failing segment is the
// first in file order: its pre-damage blocks are ingested, the turn is
// never passed on, and later workers drop their blocks back to the pool.
func parallelDecodeSharded(ra io.ReaderAt, ix *Index, workers int, ing BlockIngester) (int64, error) {
	segs := ix.Segments
	if len(segs) == 0 {
		return 0, nil
	}
	if workers > len(segs) {
		workers = len(segs)
	}

	turn := make([]chan struct{}, len(segs))
	for i := range turn {
		turn[i] = make(chan struct{}, 1)
	}
	turn[0] <- struct{}{}
	jobs := make(chan int)
	stop := make(chan struct{})
	go func() {
		defer close(jobs)
		for i := range segs {
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()

	// n and firstErr are written only while holding a turn, and the turn
	// chain's channel operations order those writes before the final reads
	// below (which happen after wg.Wait).
	var n int64
	var firstErr error
	var wg sync.WaitGroup
	ci, colOK := ing.(ColumnIngester)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc segScratch
			for i := range jobs {
				var blocks []*Block
				var cols []*ColumnBlock
				var err error
				if colOK && segs[i].Columnar() {
					// Column-aware sink + field-striped segment: keep the
					// on-disk separation all the way to the collectors.
					cols, err = readSegmentColumnsAt(ra, segs[i], ix.Version, &sc)
				} else {
					blocks, err = readSegmentAt(ra, segs[i], ix.Version, &sc)
				}
				select {
				case <-turn[i]:
				case <-stop:
					// An earlier segment failed: this segment's records
					// must not be delivered.
					for _, blk := range blocks {
						FreeBlock(blk)
					}
					for _, cb := range cols {
						FreeColumnBlock(cb)
					}
					continue
				}
				for _, blk := range blocks {
					n += int64(len(*blk))
					ing.IngestBlock(blk)
				}
				for _, cb := range cols {
					n += int64(cb.Len())
					ci.IngestColumns(cb)
				}
				if err != nil {
					// This worker holds the turn, so it is the only one
					// that can reach here: record and halt the chain.
					firstErr = err
					close(stop)
					continue
				}
				if i+1 < len(segs) {
					turn[i+1] <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	return n, firstErr
}
