package trace

import (
	"bytes"
	"testing"
	"time"
)

func prefetchTestTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < n; i++ {
		if err := w.Write(Record{
			T:      time.Duration(i) * 137 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 23),
			App:    uint16(40 + i%90),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadAllPrefetchMatchesReadAll: the prefetching path must deliver the
// identical record stream and count as the synchronous path, across sizes
// that exercise empty, partial and multi-block tails.
func TestReadAllPrefetchMatchesReadAll(t *testing.T) {
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17} {
		raw := prefetchTestTrace(t, n)

		var sync Collect
		sn, err := NewReader(bytes.NewReader(raw)).ReadAll(&sync)
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		var pre Collect
		pn, err := NewReader(bytes.NewReader(raw)).ReadAllPrefetch(&pre)
		if err != nil {
			t.Fatalf("n=%d: ReadAllPrefetch: %v", n, err)
		}
		if sn != pn || sn != int64(n) {
			t.Fatalf("n=%d: counts diverge: sync %d, prefetch %d", n, sn, pn)
		}
		if len(sync.Records) != len(pre.Records) {
			t.Fatalf("n=%d: lengths diverge: %d vs %d", n, len(sync.Records), len(pre.Records))
		}
		for i := range sync.Records {
			if sync.Records[i] != pre.Records[i] {
				t.Fatalf("n=%d: record %d diverges: %+v vs %+v", n, i, sync.Records[i], pre.Records[i])
			}
		}
	}
}

// TestReadAllPrefetchErrorParity: on a truncated stream both paths must
// surface the same error, and the prefetch path must still deliver every
// record decoded before the corruption.
func TestReadAllPrefetchErrorParity(t *testing.T) {
	raw := prefetchTestTrace(t, 1000)
	truncated := raw[:len(raw)-3]

	var sync Collect
	sn, syncErr := NewReader(bytes.NewReader(truncated)).ReadAll(&sync)
	var pre Collect
	pn, preErr := NewReader(bytes.NewReader(truncated)).ReadAllPrefetch(&pre)

	if syncErr == nil || preErr == nil {
		t.Fatalf("truncated stream: sync err %v, prefetch err %v", syncErr, preErr)
	}
	if syncErr != preErr {
		t.Errorf("errors diverge: sync %v, prefetch %v", syncErr, preErr)
	}
	if sn != pn {
		t.Errorf("pre-error counts diverge: sync %d, prefetch %d", sn, pn)
	}
	if len(pre.Records) != int(pn) {
		t.Errorf("prefetch delivered %d records but reported %d", len(pre.Records), pn)
	}
}
