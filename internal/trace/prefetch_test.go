package trace

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func prefetchTestTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < n; i++ {
		if err := w.Write(Record{
			T:      time.Duration(i) * 137 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 23),
			App:    uint16(40 + i%90),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadAllPrefetchMatchesReadAll: the prefetching path must deliver the
// identical record stream and count as the synchronous path, across sizes
// that exercise empty, partial and multi-block tails.
func TestReadAllPrefetchMatchesReadAll(t *testing.T) {
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17} {
		raw := prefetchTestTrace(t, n)

		var sync Collect
		sn, err := NewReader(bytes.NewReader(raw)).ReadAll(&sync)
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		var pre Collect
		pn, err := NewReader(bytes.NewReader(raw)).ReadAllPrefetch(&pre)
		if err != nil {
			t.Fatalf("n=%d: ReadAllPrefetch: %v", n, err)
		}
		if sn != pn || sn != int64(n) {
			t.Fatalf("n=%d: counts diverge: sync %d, prefetch %d", n, sn, pn)
		}
		if len(sync.Records) != len(pre.Records) {
			t.Fatalf("n=%d: lengths diverge: %d vs %d", n, len(sync.Records), len(pre.Records))
		}
		for i := range sync.Records {
			if sync.Records[i] != pre.Records[i] {
				t.Fatalf("n=%d: record %d diverges: %+v vs %+v", n, i, sync.Records[i], pre.Records[i])
			}
		}
	}
}

// TestReadAllPrefetchErrorParity: on a stream truncated mid-segment both
// paths must surface ErrCorrupt, and the prefetch path must still deliver
// every record it reported.
func TestReadAllPrefetchErrorParity(t *testing.T) {
	raw := prefetchTestTrace(t, 1000)
	// Cut a few bytes short of the first segment's frame end: every column
	// run is present but the last one is damaged, so both paths recover a
	// non-empty prefix whatever the payload layout.
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	seg := ix.Segments[0]
	truncated := raw[:seg.Offset+int64(seg.frameHeaderLen(ix.Version))+int64(seg.PayloadLen)-3]

	var sync Collect
	sn, syncErr := NewReader(bytes.NewReader(truncated)).ReadAll(&sync)
	var pre Collect
	pn, preErr := NewReader(bytes.NewReader(truncated)).ReadAllPrefetch(&pre)

	if !errors.Is(syncErr, ErrCorrupt) || !errors.Is(preErr, ErrCorrupt) {
		t.Fatalf("truncated stream: sync err %v, prefetch err %v, want ErrCorrupt", syncErr, preErr)
	}
	// The per-record and slab decoders walk the same bytes: the pre-error
	// delivery must be identical, not merely non-empty.
	if sn == 0 || sn != pn {
		t.Errorf("pre-error counts diverge: sync %d, prefetch %d", sn, pn)
	}
	if len(pre.Records) != int(pn) || len(sync.Records) != int(sn) {
		t.Errorf("delivered/reported mismatch: sync %d/%d, prefetch %d/%d",
			len(sync.Records), sn, len(pre.Records), pn)
	}
	for i := 0; i < len(sync.Records) && i < len(pre.Records); i++ {
		if sync.Records[i] != pre.Records[i] {
			t.Fatalf("pre-error record %d diverges: %+v vs %+v", i, sync.Records[i], pre.Records[i])
		}
	}
}

// TestReadAllPrefetchV1MatchesV2: the identical record stream encoded as v1
// and v2 decodes to the identical records on every serial path.
func TestReadAllPrefetchV1MatchesV2(t *testing.T) {
	const n = 2*BlockSize + 7
	recs := make([]Record, 0, n)
	var v1buf, v2buf bytes.Buffer
	w1, w2 := NewWriterV1(&v1buf), NewWriter(&v2buf)
	w2.SegmentPayload = 1 << 10 // force many segments
	for i := 0; i < n; i++ {
		r := Record{
			T:      time.Duration(i) * 211 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 17),
			App:    uint16(30 + i%200),
		}
		recs = append(recs, r)
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
		if err := w2.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}

	for name, raw := range map[string][]byte{"v1": v1buf.Bytes(), "v2": v2buf.Bytes()} {
		var all, pre Collect
		if _, err := NewReader(bytes.NewReader(raw)).ReadAll(&all); err != nil {
			t.Fatalf("%s ReadAll: %v", name, err)
		}
		if _, err := NewReader(bytes.NewReader(raw)).ReadAllPrefetch(&pre); err != nil {
			t.Fatalf("%s ReadAllPrefetch: %v", name, err)
		}
		for _, got := range [][]Record{all.Records, pre.Records} {
			if len(got) != n {
				t.Fatalf("%s: decoded %d records, want %d", name, len(got), n)
			}
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("%s: record %d = %+v, want %+v", name, i, got[i], recs[i])
				}
			}
		}
	}
}
