package trace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"cstrace/internal/faultio"
)

// refGeometry resolves a sealed file's segment layout: per-segment frame
// byte ranges and the cumulative record count at each segment's end.
type refGeometry struct {
	ix      *Index
	ends    []int64 // frame end offset per segment
	cumRecs []int64 // records in segments [0..i]
	segEnd  int64   // end of the last frame == start of the index frame
}

func geometry(t *testing.T, raw []byte) refGeometry {
	t.Helper()
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("reference index: %v", err)
	}
	g := refGeometry{ix: ix, segEnd: headerLen}
	var cum int64
	for _, si := range ix.Segments {
		end := si.Offset + int64(si.frameHeaderLen(ix.Version)) + int64(si.PayloadLen)
		cum += int64(si.Count)
		g.ends = append(g.ends, end)
		g.cumRecs = append(g.cumRecs, cum)
		g.segEnd = end
	}
	return g
}

// intactPrefix returns how many whole segments fit in a file cut to `cut`
// bytes, and the record count they carry.
func (g refGeometry) intactPrefix(cut int64) (segs int, recs int64) {
	for i, end := range g.ends {
		if end > cut {
			break
		}
		segs, recs = i+1, g.cumRecs[i]
	}
	return segs, recs
}

// TestRecoverSealed: a healthy file recovers to its own index, reported as
// sealed, for every indexed version.
func TestRecoverSealed(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		recs, raw := versionStream(t, version, 4000, 512)
		ix, rep, err := Recover(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if !rep.Sealed {
			t.Fatalf("v%d: healthy file not reported sealed: %s", version, rep)
		}
		if rep.Records != int64(len(recs)) || rep.DroppedBytes() != 0 {
			t.Fatalf("v%d: sealed report %s, want %d records and 0 dropped", version, rep, len(recs))
		}
		var got Collect
		n, err := DecodeIndex(bytes.NewReader(raw), ix, &got, 3)
		if err != nil || n != int64(len(recs)) {
			t.Fatalf("v%d: decode through sealed index: n=%d err=%v", version, n, err)
		}
	}
}

// TestRecoverHeaderFaults: inputs that cannot be a recoverable indexed
// trace are rejected with the classification errors, never salvaged.
func TestRecoverHeaderFaults(t *testing.T) {
	_, v1 := versionStream(t, 1, 100, 512)
	_, v4 := versionStream(t, 4, 100, 512)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"tiny", []byte("CS"), ErrCorrupt},
		{"bad magic", []byte("NOPE\x04\x00\x00\x00"), ErrBadMagic},
		{"bad version", []byte("CSTR\x09\x00\x00\x00"), ErrBadVersion},
		{"v1", v1, ErrNoIndex},
	}
	for _, tc := range cases {
		if _, _, err := Recover(bytes.NewReader(tc.data), int64(len(tc.data))); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// A bare header is recoverable: zero segments, nothing dropped beyond
	// the (absent) index.
	ix, rep, err := Recover(bytes.NewReader(v4[:headerLen]), headerLen)
	if err != nil || len(ix.Segments) != 0 || rep.Records != 0 {
		t.Fatalf("header-only file: ix=%+v rep=%v err=%v", ix, rep, err)
	}
}

// TestRecoverFaultMatrix is the injected-I/O fault matrix of the crash-only
// capture path: a reference file of every indexed version is truncated at
// every segment boundary and at swept intra-segment offsets (frame-header
// bytes, payload bytes, the index and footer region), through a
// faultio.ReaderAt. For every cut, Recover must rebuild an index covering
// exactly the whole segments before the cut, and decoding through it must
// yield records identical to the cleanly written reference prefix.
func TestRecoverFaultMatrix(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		recs, raw := versionStream(t, version, 6000, 512)
		full := int64(len(raw))
		g := geometry(t, raw)
		if len(g.ends) < 4 {
			t.Fatalf("v%d: reference spans only %d segments; shrink SegmentPayload", version, len(g.ends))
		}

		cuts := map[int64]bool{
			headerLen:            true, // header only
			headerLen + 1:        true, // one byte into the first frame marker
			g.segEnd:             true, // all segments, no index at all
			g.segEnd + 2:         true, // torn index marker
			g.segEnd + 11:        true, // mid-index
			full - 1:             true, // footer torn by one byte
			full - footerLen + 3: true,
		}
		for i, si := range g.ix.Segments {
			start, end := si.Offset, g.ends[i]
			hl := int64(si.frameHeaderLen(g.ix.Version))
			for _, c := range []int64{
				start,                 // boundary: previous segments all intact
				start + 1,             // inside the frame marker
				start + 5,             // inside payloadLen
				start + hl - 1,        // one byte short of a whole header
				start + hl,            // header intact, zero payload bytes
				start + (end-start)/2, // mid-payload
				end - 1,               // one byte short of a whole frame
			} {
				if c >= headerLen && c <= full {
					cuts[c] = true
				}
			}
		}

		for cut := range cuts {
			fra := faultio.NewReaderAt(bytes.NewReader(raw))
			fra.TruncateAt = cut
			ix, rep, err := Recover(fra, fra.Size(full))
			if err != nil {
				t.Fatalf("v%d cut=%d: %v", version, cut, err)
			}
			wantSegs, wantRecs := g.intactPrefix(cut)
			if cut == full {
				wantSegs, wantRecs = len(g.ends), g.cumRecs[len(g.cumRecs)-1]
			}
			if len(ix.Segments) != wantSegs || rep.Records != wantRecs {
				t.Fatalf("v%d cut=%d: salvaged %d segments / %d records, want %d / %d (%s)",
					version, cut, len(ix.Segments), rep.Records, wantSegs, wantRecs, rep)
			}
			if rep.GoodBytes > cut {
				t.Fatalf("v%d cut=%d: GoodBytes %d past the cut", version, cut, rep.GoodBytes)
			}
			var got Collect
			n, err := DecodeIndex(fra, ix, &got, 3)
			if err != nil {
				t.Fatalf("v%d cut=%d: decode through salvaged index: %v", version, cut, err)
			}
			if n != wantRecs || len(got.Records) != int(wantRecs) {
				t.Fatalf("v%d cut=%d: decoded %d records, want %d", version, cut, n, wantRecs)
			}
			for i := range got.Records {
				if got.Records[i] != recs[i] {
					t.Fatalf("v%d cut=%d: record %d = %+v, want %+v", version, cut, i, got.Records[i], recs[i])
				}
			}
		}
	}
}

// TestRecoverBitFlip sweeps single-bit corruption across a footerless v4
// file (the crash shape: the index never made it to disk, and a disk error
// flipped one stored bit). The format carries no per-segment CRC, so a flip
// inside payload data may legitimately decode to different field values —
// what Recover must guarantee is weaker but load-bearing: it never panics,
// it returns a decodable prefix index, and every segment before the flipped
// one is recovered byte-identical.
func TestRecoverBitFlip(t *testing.T) {
	recs, raw := versionStream(t, 4, 6000, 512)
	g := geometry(t, raw)
	torn := g.segEnd // drop index+footer so the forward scan is exercised

	flipSeg := func(off int64) int {
		for i, si := range g.ix.Segments {
			if off >= si.Offset && off < g.ends[i] {
				return i
			}
		}
		return len(g.ix.Segments)
	}

	for off := int64(headerLen); off < torn; off += 37 {
		fra := faultio.NewReaderAt(bytes.NewReader(raw))
		fra.TruncateAt = torn
		fra.FlipBit = off
		ix, rep, err := Recover(fra, torn)
		if err != nil {
			t.Fatalf("flip@%d: %v", off, err)
		}
		damaged := flipSeg(off)
		// Everything strictly before the damaged segment must be intact.
		if len(ix.Segments) < damaged {
			t.Fatalf("flip@%d: salvaged %d segments, want at least the %d before the damage (%s)",
				off, len(ix.Segments), damaged, rep)
		}
		var got Collect
		n, err := DecodeIndex(fra, ix, &got, 2)
		if err != nil {
			t.Fatalf("flip@%d: salvaged index fails decode: %v", off, err)
		}
		if n != rep.Records {
			t.Fatalf("flip@%d: decoded %d records, report says %d", off, n, rep.Records)
		}
		var intact int64
		if damaged > 0 {
			intact = g.cumRecs[damaged-1]
		}
		for i := int64(0); i < intact && i < n; i++ {
			if got.Records[i] != recs[i] {
				t.Fatalf("flip@%d: record %d (before the damaged segment) = %+v, want %+v",
					off, i, got.Records[i], recs[i])
			}
		}
	}
}

// TestSalvageRewriteByteIdentical closes the acceptance loop: rewriting the
// salvage of a torn file through a fresh Writer produces the byte-identical
// file to writing the same record prefix cleanly — the salvage pipeline
// loses nothing but the torn tail.
func TestSalvageRewriteByteIdentical(t *testing.T) {
	recs, raw := versionStream(t, 4, 6000, 512)
	g := geometry(t, raw)
	cuts := []int64{headerLen, g.ends[0], g.ends[len(g.ends)/2], g.ends[len(g.ends)-1] - 3, g.segEnd + 5}
	for _, cut := range cuts {
		fra := faultio.NewReaderAt(bytes.NewReader(raw))
		fra.TruncateAt = cut
		ix, rep, err := Recover(fra, fra.Size(int64(len(raw))))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		var rewrite bytes.Buffer
		w := NewWriter(&rewrite)
		w.SegmentPayload = 512
		if _, err := DecodeIndex(fra, ix, w, 3); err != nil {
			t.Fatalf("cut=%d: decode: %v", cut, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("cut=%d: rewrite flush: %v", cut, err)
		}

		var clean bytes.Buffer
		cw := NewWriter(&clean)
		cw.SegmentPayload = 512
		for _, r := range recs[:rep.Records] {
			if err := cw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rewrite.Bytes(), clean.Bytes()) {
			t.Fatalf("cut=%d: salvage rewrite differs from the cleanly written prefix (%d vs %d bytes)",
				cut, rewrite.Len(), clean.Len())
		}
	}
}

// TestReaderSalvageFallback: with Salvage set, the parallel and sharded
// read paths treat a torn file as the sealed prefix — full decode, no
// error, the degradation explained in Warning.
func TestReaderSalvageFallback(t *testing.T) {
	recs, raw := versionStream(t, 4, 6000, 512)
	g := geometry(t, raw)
	midSeg := g.ix.Segments[len(g.ix.Segments)/2]
	cut := midSeg.Offset + int64(midSeg.frameHeaderLen(4)) + int64(midSeg.PayloadLen)/3
	wantSegs, wantRecs := g.intactPrefix(cut)
	torn := raw[:cut]

	for _, sharded := range []bool{false, true} {
		var n int64
		var err error
		var warn string
		got := &blockCollect{}
		r := NewReader(bytes.NewReader(torn))
		r.Salvage = true
		if sharded {
			n, err = r.ReadAllSharded(got, 4)
		} else {
			n, err = r.ReadAllParallel(got, 4)
		}
		warn = r.Warning()
		if err != nil {
			t.Fatalf("sharded=%v: %v", sharded, err)
		}
		if n != wantRecs || len(got.records) != int(wantRecs) {
			t.Fatalf("sharded=%v: delivered %d records, want %d (%d intact segments)", sharded, n, wantRecs, wantSegs)
		}
		for i := range got.records {
			if got.records[i] != recs[i] {
				t.Fatalf("sharded=%v: record %d mismatch", sharded, i)
			}
		}
		if warn == "" {
			t.Fatalf("sharded=%v: salvage fallback left no Warning", sharded)
		}
	}

	// Without Salvage the same torn file must keep the strict contract:
	// fall back to the serial scan and surface the mid-segment truncation.
	var strict Collect
	r := NewReader(bytes.NewReader(torn))
	if _, err := r.ReadAllParallel(&strict, 4); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict reader on torn file: err = %v, want ErrCorrupt", err)
	}
}

// fuzzSeedStream builds the deterministic reference streams FuzzRecover
// seeds from, without a testing.T (fuzz seeding runs outside a test).
func fuzzSeedStream(version, n, segPayload int) ([]Record, []byte) {
	recs := make([]Record, 0, n)
	var buf bytes.Buffer
	var w *Writer
	switch version {
	case 1:
		w = NewWriterV1(&buf)
	case 2:
		w = NewWriterV2(&buf)
	case 3:
		w = NewWriterV3(&buf)
	default:
		w = NewWriter(&buf)
	}
	w.SegmentPayload = segPayload
	for i := 0; i < n; i++ {
		r := Record{
			T:      time.Duration(i) * 211 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 23),
			App:    uint16(28 + i%200),
		}
		recs = append(recs, r)
		if err := w.Write(r); err != nil {
			panic(fmt.Sprintf("fuzz seed stream: %v", err))
		}
	}
	if err := w.Flush(); err != nil {
		panic(fmt.Sprintf("fuzz seed stream: %v", err))
	}
	return recs, buf.Bytes()
}

// FuzzRecover feeds arbitrary bytes — seeded with valid v1–v4 files and
// their prefixes — to the salvage scanner. Recover must never panic, any
// index it returns must decode cleanly with exactly the reported record
// count, and for inputs that are literal prefixes of the v4 reference file
// it must never return a record past the truncation point.
func FuzzRecover(f *testing.F) {
	refRecs, refRaw := fuzzSeedStream(4, 2000, 512)
	for _, version := range []int{1, 2, 3} {
		_, raw := fuzzSeedStream(version, 2000, 512)
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
	}
	f.Add(refRaw)
	f.Add(refRaw[:len(refRaw)/2])
	f.Add(refRaw[:len(refRaw)/3])
	f.Add(refRaw[:headerLen+1])
	f.Add([]byte("CSTR\x04\x00\x00\x00CSEG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		size := int64(len(data))
		ix, rep, err := Recover(bytes.NewReader(data), size)
		if err != nil {
			return // header-level rejection is a valid outcome
		}
		if rep.GoodBytes > size || rep.GoodBytes < headerLen {
			t.Fatalf("GoodBytes %d outside [8, %d]", rep.GoodBytes, size)
		}
		var got Collect
		n, derr := DecodeIndex(bytes.NewReader(data), ix, &got, 2)
		if derr != nil {
			t.Fatalf("salvaged index fails decode: %v", derr)
		}
		if n != rep.Records || n != ix.Records {
			t.Fatalf("decoded %d records, report %d, index %d", n, rep.Records, ix.Records)
		}
		if size <= int64(len(refRaw)) && bytes.Equal(data, refRaw[:size]) {
			if n > int64(len(refRecs)) {
				t.Fatalf("prefix input yielded %d records, reference has %d", n, len(refRecs))
			}
			for i := range got.Records {
				if got.Records[i] != refRecs[i] {
					t.Fatalf("prefix input record %d = %+v, want %+v", i, got.Records[i], refRecs[i])
				}
			}
		}
	})
}
