package trace

import (
	"bytes"
	"testing"
	"time"
)

// rangeTrace builds a trace of count records at fixed spacing with small
// segments, so range queries span several segments.
func rangeTrace(t *testing.T, v1 bool, count int, gap time.Duration) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if v1 {
		w = NewWriterV1(&buf)
	}
	w.SegmentPayload = 256 // many small segments
	for i := 0; i < count; i++ {
		if err := w.Write(Record{
			T:      time.Duration(i) * gap,
			Dir:    Direction(i & 1),
			Kind:   KindGame,
			Client: uint32(i%50 + 1),
			App:    uint16(40 + i%100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadRangeMatchesFilteredScan: the indexed range read must deliver
// exactly the records a full scan filtered to [from, to) would, in order,
// for ranges landing on and off segment boundaries.
func TestReadRangeMatchesFilteredScan(t *testing.T) {
	const count = 5000
	gap := time.Millisecond
	raw := rangeTrace(t, false, count, gap)

	var all Collect
	if _, err := NewReader(bytes.NewReader(raw)).ReadAll(&all); err != nil {
		t.Fatal(err)
	}

	cases := []struct{ from, to time.Duration }{
		{0, 5 * time.Second},                 // prefix
		{time.Second, 2 * time.Second},       // interior
		{4900 * time.Millisecond, time.Hour}, // suffix, open end
		{time.Hour, 2 * time.Hour},           // empty, past the end
		{0, 1},                               // single leading record
		{2500 * time.Millisecond, 2500*time.Millisecond + 1}, // single interior record
		{3 * time.Second, time.Second},                       // inverted: empty
	}
	for _, tc := range cases {
		var want Collect
		for _, r := range all.Records {
			if r.T >= tc.from && r.T < tc.to {
				want.Records = append(want.Records, r)
			}
		}

		rd := NewReader(bytes.NewReader(raw))
		var got Collect
		n, err := rd.ReadRange(tc.from, tc.to, &got)
		if err != nil {
			t.Fatalf("[%v,%v): %v", tc.from, tc.to, err)
		}
		if rd.Warning() != "" {
			t.Fatalf("[%v,%v): unexpected degradation: %s", tc.from, tc.to, rd.Warning())
		}
		if n != int64(len(want.Records)) || !recordsEqual(got.Records, want.Records) {
			t.Errorf("[%v,%v): got %d records, want %d", tc.from, tc.to, n, len(want.Records))
		}
	}
}

// TestReadRangeFallbacks: a v1 trace and a non-seekable source both degrade
// to the filtered serial scan with identical results.
func TestReadRangeFallbacks(t *testing.T) {
	const count = 2000
	gap := time.Millisecond
	from, to := 500*time.Millisecond, 700*time.Millisecond

	want := func(raw []byte) []Record {
		var all Collect
		if _, err := NewReader(bytes.NewReader(raw)).ReadAll(&all); err != nil {
			t.Fatal(err)
		}
		var out []Record
		for _, r := range all.Records {
			if r.T >= from && r.T < to {
				out = append(out, r)
			}
		}
		return out
	}

	// v1: no index can exist; silent serial scan.
	rawV1 := rangeTrace(t, true, count, gap)
	var gotV1 Collect
	if _, err := NewReader(bytes.NewReader(rawV1)).ReadRange(from, to, &gotV1); err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(gotV1.Records, want(rawV1)) {
		t.Error("v1 fallback range read diverges from filtered scan")
	}

	// v2 through a non-seekable source: serial scan plus a warning.
	rawV2 := rangeTrace(t, false, count, gap)
	rd := NewReader(onlyReader{bytes.NewReader(rawV2)})
	var gotNS Collect
	if _, err := rd.ReadRange(from, to, &gotNS); err != nil {
		t.Fatal(err)
	}
	if rd.Warning() == "" {
		t.Error("non-seekable v2 range read should warn about the serial scan")
	}
	if !recordsEqual(gotNS.Records, want(rawV2)) {
		t.Error("non-seekable fallback range read diverges from filtered scan")
	}
}

// TestReadRangePartialInflate: a tight range on a columnar trace must
// materialize far fewer raw payload bytes than a wide one — the closing
// boundary segment decodes (and inflates) its column runs only up to the
// cut instead of wholesale.
func TestReadRangePartialInflate(t *testing.T) {
	const count = 50000
	gap := time.Millisecond
	for _, level := range []int{DefaultCompressLevel, CompressOff} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SegmentPayload = 1 << 14
		w.CompressLevel = level
		for i := 0; i < count; i++ {
			if err := w.Write(Record{
				T:      time.Duration(i) * gap,
				Kind:   KindGame,
				Client: uint32(i%50 + 1),
				App:    uint16(40 + i%100),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()

		measure := func(from, to time.Duration) (int64, int64) {
			rangeRawBytes.Store(0)
			rd := NewReader(bytes.NewReader(raw))
			var got Collect
			n, err := rd.ReadRange(from, to, &got)
			if err != nil {
				t.Fatalf("level %d: ReadRange: %v", level, err)
			}
			if rd.Warning() != "" {
				t.Fatalf("level %d: unexpected degradation: %s", level, rd.Warning())
			}
			return n, rangeRawBytes.Load()
		}

		nFull, full := measure(0, time.Hour)
		if nFull != count {
			t.Fatalf("level %d: full range read %d records, want %d", level, nFull, count)
		}
		nTight, tight := measure(2*time.Second, 2*time.Second+10*gap)
		if nTight != 10 {
			t.Fatalf("level %d: tight range read %d records, want 10", level, nTight)
		}
		if tight*10 > full {
			t.Errorf("level %d: tight range materialized %d raw bytes of %d total — boundary segment not cut", level, tight, full)
		}
	}
}

// onlyReader hides Seek/ReadAt from the reader.
type onlyReader struct{ r *bytes.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReadRangeEdgeCases pins the degenerate inputs down one by one:
// empty and inverted ranges, from == to, ranges entirely past the end of
// the trace, and a range falling entirely inside a single segment — each
// on both the indexed and the serial (v1) path.
func TestReadRangeEdgeCases(t *testing.T) {
	const count = 2000
	gap := time.Millisecond
	for _, v1 := range []bool{false, true} {
		name := "indexed"
		if v1 {
			name = "serial-v1"
		}
		raw := rangeTrace(t, v1, count, gap)
		read := func(from, to time.Duration) ([]Record, int64, error) {
			t.Helper()
			var got Collect
			n, err := NewReader(bytes.NewReader(raw)).ReadRange(from, to, &got)
			if n != int64(len(got.Records)) {
				t.Fatalf("%s [%v,%v): returned n=%d but delivered %d records", name, from, to, n, len(got.Records))
			}
			return got.Records, n, err
		}

		t.Run(name+"/from==to", func(t *testing.T) {
			for _, at := range []time.Duration{0, time.Second, 10 * time.Hour} {
				if recs, n, err := read(at, at); n != 0 || err != nil || len(recs) != 0 {
					t.Errorf("[%v,%v) = %d records, %v; want 0, nil", at, at, n, err)
				}
			}
		})
		t.Run(name+"/empty and inverted", func(t *testing.T) {
			if _, n, err := read(time.Second, 0); n != 0 || err != nil {
				t.Errorf("inverted range = %d, %v; want 0, nil", n, err)
			}
			if _, n, err := read(2*time.Second, time.Second); n != 0 || err != nil {
				t.Errorf("backwards range = %d, %v; want 0, nil", n, err)
			}
			if _, n, err := read(-time.Second, 0); n != 0 || err != nil {
				t.Errorf("negative-to-zero range = %d, %v; want 0, nil", n, err)
			}
		})
		t.Run(name+"/past EOF", func(t *testing.T) {
			// The last record is at (count-1)*gap; anything at or after
			// the record following it is empty.
			for _, from := range []time.Duration{count * gap, time.Hour} {
				if recs, n, err := read(from, from+time.Minute); n != 0 || err != nil || len(recs) != 0 {
					t.Errorf("[%v,%v) = %d records, %v; want empty", from, from+time.Minute, n, err)
				}
			}
		})
		t.Run(name+"/straddling EOF", func(t *testing.T) {
			recs, n, err := read((count-10)*gap, time.Hour)
			if err != nil || n != 10 {
				t.Errorf("tail range = %d records, %v; want 10, nil", n, err)
			}
			if len(recs) > 0 && recs[len(recs)-1].T != (count-1)*gap {
				t.Errorf("last record at %v, want %v", recs[len(recs)-1].T, (count-1)*gap)
			}
		})
	}

	// Range entirely inside one segment: a single-segment trace (huge
	// payload target) with an interior slice, checked against the
	// straightforward filter of a full scan.
	t.Run("inside one segment", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := 0; i < count; i++ {
			if err := w.Write(Record{T: time.Duration(i) * gap, Client: 1, App: uint16(i % 200)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		ix, err := ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if len(ix.Segments) != 1 {
			t.Fatalf("test wants a single-segment trace, got %d segments", len(ix.Segments))
		}
		var all Collect
		if _, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll(&all); err != nil {
			t.Fatal(err)
		}
		from, to := 500*time.Millisecond, 700*time.Millisecond
		var want Collect
		for _, r := range all.Records {
			if r.T >= from && r.T < to {
				want.Handle(r)
			}
		}
		var got Collect
		n, err := NewReader(bytes.NewReader(buf.Bytes())).ReadRange(from, to, &got)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(want.Records)) || !recordsEqual(got.Records, want.Records) {
			t.Errorf("interior single-segment range: %d records, want %d", n, len(want.Records))
		}
	})
}
