package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// versionStream builds a deterministic record stream and its encoding in the
// given format version with small segments (so even short streams span many
// of them). Versions 3 and 4 write with the default compression.
func versionStream(t *testing.T, version, n, segPayload int) ([]Record, []byte) {
	t.Helper()
	recs := make([]Record, 0, n)
	var buf bytes.Buffer
	var w *Writer
	switch version {
	case 1:
		w = NewWriterV1(&buf)
	case 2:
		w = NewWriterV2(&buf)
	case 3:
		w = NewWriterV3(&buf)
	default:
		w = NewWriter(&buf)
	}
	w.SegmentPayload = segPayload
	for i := 0; i < n; i++ {
		r := Record{
			T:      time.Duration(i) * 173 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 31),
			App:    uint16(20 + i%300),
		}
		recs = append(recs, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return recs, buf.Bytes()
}

// v2TestStream keeps the v2 coverage of the pre-v3 tests intact.
func v2TestStream(t *testing.T, n, segPayload int) ([]Record, []byte) {
	t.Helper()
	return versionStream(t, 2, n, segPayload)
}

// TestV2ParallelMatchesSerial: the parallel decode must deliver the exact
// serial stream for every worker count, across sizes that exercise empty
// files, single segments and partial tails — for both indexed versions.
func TestV2ParallelMatchesSerial(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		for _, n := range []int{0, 1, 100, 5000, 20000} {
			recs, raw := versionStream(t, version, n, 1<<10)
			for _, workers := range []int{1, 2, 3, 8} {
				var got Collect
				rd := NewReader(bytes.NewReader(raw))
				pn, err := rd.ReadAllParallel(&got, workers)
				if err != nil {
					t.Fatalf("v%d n=%d workers=%d: %v", version, n, workers, err)
				}
				if rd.Warning() != "" {
					t.Fatalf("v%d n=%d workers=%d: unexpected fallback: %s", version, n, workers, rd.Warning())
				}
				if pn != int64(n) || len(got.Records) != n {
					t.Fatalf("v%d n=%d workers=%d: delivered %d/%d records", version, n, workers, pn, len(got.Records))
				}
				for i := range recs {
					if got.Records[i] != recs[i] {
						t.Fatalf("v%d n=%d workers=%d: record %d = %+v, want %+v",
							version, n, workers, i, got.Records[i], recs[i])
					}
				}
			}
		}
	}
}

// blockCollect implements BlockIngester: the direct decode-to-shard
// delivery surface, collected single-threaded for comparison.
type blockCollect struct {
	records []Record
	ingests int
}

func (b *blockCollect) Handle(r Record)         { b.records = append(b.records, r) }
func (b *blockCollect) HandleBatch(rs []Record) { b.records = append(b.records, rs...) }
func (b *blockCollect) IngestBlock(blk *Block) {
	b.ingests++
	b.records = append(b.records, *blk...)
	FreeBlock(blk)
}

// TestReadAllShardedMatchesSerial: direct block delivery must produce the
// exact serial stream — same records, same order — at every worker count,
// and must actually take the ingest path on an indexed trace.
func TestReadAllShardedMatchesSerial(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		for _, n := range []int{0, 1, 100, 5000, 20000} {
			recs, raw := versionStream(t, version, n, 1<<10)
			for _, workers := range []int{2, 3, 8} {
				got := &blockCollect{}
				rd := NewReader(bytes.NewReader(raw))
				pn, err := rd.ReadAllSharded(got, workers)
				if err != nil {
					t.Fatalf("v%d n=%d workers=%d: %v", version, n, workers, err)
				}
				if rd.Warning() != "" {
					t.Fatalf("v%d n=%d workers=%d: unexpected fallback: %s", version, n, workers, rd.Warning())
				}
				if n > 0 && got.ingests == 0 {
					t.Fatalf("v%d n=%d workers=%d: sharded read never took the ingest path", version, n, workers)
				}
				if pn != int64(n) || len(got.records) != n {
					t.Fatalf("v%d n=%d workers=%d: delivered %d/%d records", version, n, workers, pn, len(got.records))
				}
				for i := range recs {
					if got.records[i] != recs[i] {
						t.Fatalf("v%d n=%d workers=%d: record %d = %+v, want %+v",
							version, n, workers, i, got.records[i], recs[i])
					}
				}
			}
		}
	}
}

// TestReadAllShardedFallbacks: without an ingest-capable sink, with one
// worker, on a v1 file, or on a non-seekable source, ReadAllSharded behaves
// exactly like ReadAllParallel's fallback ladder.
func TestReadAllShardedFallbacks(t *testing.T) {
	const n = 3000
	recs, raw := versionStream(t, 3, n, 1<<10)

	// Plain Handler sink: same records via the reassembly path.
	var plain Collect
	if pn, err := NewReader(bytes.NewReader(raw)).ReadAllSharded(&plain, 4); err != nil || pn != int64(n) {
		t.Fatalf("plain sink: %d, %v", pn, err)
	}
	// workers=1: serial scan.
	one := &blockCollect{}
	if pn, err := NewReader(bytes.NewReader(raw)).ReadAllSharded(one, 1); err != nil || pn != int64(n) {
		t.Fatalf("one worker: %d, %v", pn, err)
	}
	// Non-seekable source: serial scan with a warning.
	ns := &blockCollect{}
	rd := NewReader(nonSeeker{bytes.NewReader(raw)})
	if pn, err := rd.ReadAllSharded(ns, 4); err != nil || pn != int64(n) {
		t.Fatalf("non-seekable: %d, %v", pn, err)
	}
	if rd.Warning() == "" {
		t.Error("non-seekable sharded read did not warn")
	}
	// v1: silent serial scan.
	_, rawV1 := versionStream(t, 1, n, 0)
	v1got := &blockCollect{}
	if pn, err := NewReader(bytes.NewReader(rawV1)).ReadAllSharded(v1got, 4); err != nil || pn != int64(n) {
		t.Fatalf("v1: %d, %v", pn, err)
	}
	for _, got := range [][]Record{plain.Records, one.records, ns.records, v1got.records} {
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("fallback record %d diverges", i)
			}
		}
	}
}

// TestReadIndexGeometry: the index must tile the file exactly, chain delta
// bases through segment boundaries, and agree with the footer totals — in
// both indexed versions.
func TestReadIndexGeometry(t *testing.T) {
	const n = 12345
	for _, version := range []int{2, 3, 4} {
		recs, raw := versionStream(t, version, n, 1<<10)
		ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Version != version || ix.Records != n {
			t.Fatalf("Version=%d Records=%d", ix.Version, ix.Records)
		}
		if len(ix.Segments) < 8 {
			t.Fatalf("only %d segments; SegmentPayload not honored?", len(ix.Segments))
		}
		var sum int
		next := int64(headerLen)
		for i, si := range ix.Segments {
			if si.Offset != next {
				t.Fatalf("v%d: segment %d at %d, want %d", version, i, si.Offset, next)
			}
			if i == 0 && si.BaseT != 0 {
				t.Fatalf("v%d: first BaseT = %v", version, si.BaseT)
			}
			if i > 0 && si.BaseT != ix.Segments[i-1].MaxT {
				t.Fatalf("v%d: segment %d BaseT %v != prev MaxT %v", version, i, si.BaseT, ix.Segments[i-1].MaxT)
			}
			if version == 2 && (si.Flags != 0 || si.RawLen != si.PayloadLen) {
				t.Fatalf("v2 segment %d carries v3 state: %+v", i, si)
			}
			sum += si.Count
			next = si.Offset + int64(si.frameHeaderLen(version)) + int64(si.PayloadLen)
		}
		if sum != n {
			t.Fatalf("v%d: index counts %d records, want %d", version, sum, n)
		}
		if first, last := ix.Segments[0].MinT, ix.Segments[len(ix.Segments)-1].MaxT; first != recs[0].T || last != recs[n-1].T {
			t.Fatalf("v%d: span [%v, %v], want [%v, %v]", version, first, last, recs[0].T, recs[n-1].T)
		}
		if ix.PayloadBytes() <= 0 || ix.RawBytes() < ix.PayloadBytes() {
			t.Fatalf("v%d: payload %d / raw %d bytes implausible", version, ix.PayloadBytes(), ix.RawBytes())
		}
		if version >= 3 {
			if ix.CompressedSegments() == 0 {
				t.Fatalf("v%d default stream compressed no segments", version)
			}
			if ix.PayloadBytes() >= ix.RawBytes() {
				t.Fatalf("v%d: on-disk payload %d not smaller than raw %d", version, ix.PayloadBytes(), ix.RawBytes())
			}
		}
		if version == 4 {
			for i, si := range ix.Segments {
				if !si.Columnar() {
					t.Fatalf("v4 segment %d not flagged columnar: %+v", i, si)
				}
			}
		}
	}
}

// TestV3PayloadInvariant: the concatenation of all v3 segment payloads,
// decompressed where flagged, must be byte-for-byte the v1 record stream of
// the same records — the cross-version invariant of docs/FORMAT.md.
func TestV3PayloadInvariant(t *testing.T) {
	const n = 20000
	_, rawV1 := versionStream(t, 1, n, 0)
	_, rawV3 := versionStream(t, 3, n, 1<<10)
	v1stream := rawV1[headerLen:]

	ix, err := ReadIndex(bytes.NewReader(rawV3), int64(len(rawV3)))
	if err != nil {
		t.Fatal(err)
	}
	var concat []byte
	var sc segScratch
	for i, si := range ix.Segments {
		hl := si.frameHeaderLen(3)
		frame := rawV3[si.Offset : si.Offset+int64(hl)+int64(si.PayloadLen)]
		payload := frame[hl:]
		if si.Compressed() {
			raw, err := sc.decompress(payload, si)
			if err != nil {
				t.Fatalf("segment %d: %v", i, err)
			}
			payload = raw
		} else if si.RawLen != si.PayloadLen {
			t.Fatalf("segment %d: uncompressed but RawLen %d != PayloadLen %d", i, si.RawLen, si.PayloadLen)
		}
		concat = append(concat, payload...)
	}
	if !bytes.Equal(concat, v1stream) {
		t.Fatalf("decompressed v3 payloads (%d bytes) diverge from the v1 stream (%d bytes)",
			len(concat), len(v1stream))
	}
	if int64(len(concat)) != ix.RawBytes() {
		t.Fatalf("RawBytes() = %d, concatenation = %d", ix.RawBytes(), len(concat))
	}
}

// TestV3CompressOff: CompressOff stores every segment uncompressed; the
// file stays a valid v3/v4 trace with the compression flag clear and reads
// back identically.
func TestV3CompressOff(t *testing.T) {
	const n = 5000
	for _, version := range []int{3, 4} {
		var buf bytes.Buffer
		var w *Writer
		if version == 3 {
			w = NewWriterV3(&buf)
		} else {
			w = NewWriter(&buf)
		}
		w.SegmentPayload = 1 << 10
		w.CompressLevel = CompressOff
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			r := Record{T: time.Duration(i) * 100 * time.Microsecond, Client: uint32(i % 7), App: uint16(40 + i%90)}
			recs = append(recs, r)
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		ix, err := ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Version != version || ix.CompressedSegments() != 0 || ix.PayloadBytes() != ix.RawBytes() {
			t.Fatalf("CompressOff trace: version %d (want %d), %d compressed segments, payload %d raw %d",
				ix.Version, version, ix.CompressedSegments(), ix.PayloadBytes(), ix.RawBytes())
		}
		var got Collect
		if pn, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAllParallel(&got, 4); err != nil || pn != n {
			t.Fatalf("v%d read back: %d, %v", version, pn, err)
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				t.Fatalf("v%d record %d diverges", version, i)
			}
		}
	}
}

// TestWriterBadCompressLevel: an out-of-range level surfaces as an error
// from the segment flush instead of writing a damaged file.
func TestWriterBadCompressLevel(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.CompressLevel = 42
	if err := w.Write(Record{App: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush accepted CompressLevel 42")
	}
}

// nonSeeker hides the seek/readat capability of an underlying reader.
type nonSeeker struct{ io.Reader }

// TestParallelFallsBackSerial: a damaged index or footer, or a non-seekable
// source, must degrade to the serial scan — full stream, nil error, and an
// explanatory Warning.
func TestParallelFallsBackSerial(t *testing.T) {
	const n = 9000
	recs, raw := v2TestStream(t, n, 1<<10)
	cases := map[string]io.Reader{
		"truncated-footer": bytes.NewReader(raw[:len(raw)-5]),
		"truncated-index":  bytes.NewReader(raw[:len(raw)-footerLen-13]),
		"zeroed-footer":    bytes.NewReader(append(append([]byte{}, raw[:len(raw)-8]...), 0, 0, 0, 0, 0, 0, 0, 0)),
		"non-seekable":     nonSeeker{bytes.NewReader(raw)},
	}
	for name, src := range cases {
		rd := NewReader(src)
		var got Collect
		pn, err := rd.ReadAllParallel(&got, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rd.Warning() == "" {
			t.Errorf("%s: fallback did not set Warning", name)
		}
		if pn != int64(n) || len(got.Records) != n {
			t.Fatalf("%s: delivered %d/%d records, want %d", name, pn, len(got.Records), n)
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				t.Fatalf("%s: record %d diverges", name, i)
			}
		}
	}
}

// TestV2CorruptPayload: damage inside a middle segment must surface
// ErrCorrupt on the serial and parallel paths alike, with the records of
// the preceding segments still delivered on the parallel path.
func TestV2CorruptPayload(t *testing.T) {
	const n = 9000
	_, raw := v2TestStream(t, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Segments) < 4 {
		t.Fatalf("need several segments, have %d", len(ix.Segments))
	}
	// Truncate the stream mid-way through the third segment's payload: a
	// hard corruption no path can decode past.
	seg := ix.Segments[2]
	cut := seg.Offset + segHeaderLen + int64(seg.PayloadLen)/2
	bad := raw[:cut]

	var serial Collect
	_, serr := NewReader(bytes.NewReader(bad)).ReadAllPrefetch(&serial)
	if !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("serial err = %v, want ErrCorrupt", serr)
	}

	// With the intact index spliced back on, the parallel path sees a
	// valid index whose segment bytes are damaged. Rebuild: keep all
	// segments but zero a byte inside segment 2's payload.
	mut := append([]byte{}, raw...)
	mut[seg.Offset+segHeaderLen+5] ^= 0xFF
	var par Collect
	prd := NewReader(bytes.NewReader(mut))
	pn, perr := prd.ReadAllParallel(&par, 4)
	if !errors.Is(perr, ErrCorrupt) {
		t.Fatalf("parallel err = %v, want ErrCorrupt", perr)
	}
	if prd.Err() == nil || !errors.Is(prd.Err(), ErrCorrupt) {
		t.Fatalf("parallel path did not latch the cause: Err() = %v", prd.Err())
	}
	// Everything before the damaged segment must have been delivered.
	min := int64(ix.Segments[0].Count + ix.Segments[1].Count)
	if pn < min {
		t.Fatalf("parallel delivered %d records before error, want ≥ %d", pn, min)
	}
	if int64(len(par.Records)) != pn {
		t.Fatalf("delivered %d but reported %d", len(par.Records), pn)
	}
}

// TestV3CorruptCompressed: damage inside a compressed segment's flate
// stream — truncation, bit flips, wholesale garbage — must surface
// ErrCorrupt on the serial and parallel paths alike, with the records of
// the preceding segments still delivered.
func TestV3CorruptCompressed(t *testing.T) {
	const n = 9000
	_, raw := versionStream(t, 3, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Segments) < 4 {
		t.Fatalf("need several segments, have %d", len(ix.Segments))
	}
	// Pick the first compressed segment past the first two, so there are
	// whole segments before the damage to check delivery of.
	target := -1
	for i := 2; i < len(ix.Segments)-1; i++ {
		if ix.Segments[i].Compressed() {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no compressed segment to damage; compression not engaging?")
	}
	seg := ix.Segments[target]
	payloadOff := seg.Offset + int64(seg.frameHeaderLen(3))
	minDelivered := int64(0)
	for _, si := range ix.Segments[:target] {
		minDelivered += int64(si.Count)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte{}, raw...))
	}
	cases := map[string][]byte{
		// The file ends mid-way through the compressed payload: no index
		// survives, so this exercises the serial truncated-tail scan.
		"truncated-file": raw[:payloadOff+int64(seg.PayloadLen)/2],
		// A flipped byte inside the flate stream, index intact: both the
		// serial scan and the parallel decode see a valid frame whose
		// payload no longer inflates.
		"bit-flip": mutate(func(b []byte) []byte {
			b[payloadOff+int64(seg.PayloadLen)/2] ^= 0xFF
			return b
		}),
		// The whole compressed payload overwritten with garbage.
		"garbage-payload": mutate(func(b []byte) []byte {
			for i := int64(0); i < int64(seg.PayloadLen); i++ {
				b[payloadOff+i] = byte(0xA5 ^ i)
			}
			return b
		}),
	}
	for name, bad := range cases {
		var serial Collect
		sn, serr := NewReader(bytes.NewReader(bad)).ReadAllPrefetch(&serial)
		if !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("%s: serial err = %v, want ErrCorrupt", name, serr)
		}
		if sn < minDelivered || int64(len(serial.Records)) != sn {
			t.Fatalf("%s: serial delivered %d records before error, want ≥ %d", name, sn, minDelivered)
		}

		if name == "truncated-file" {
			continue // no index: the parallel path falls back to the same scan
		}
		for _, read := range []struct {
			path string
			run  func(rd *Reader, h Handler) (int64, error)
		}{
			{"parallel", func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllParallel(h, 4) }},
			{"sharded", func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllSharded(h, 4) }},
		} {
			got := &blockCollect{}
			rd := NewReader(bytes.NewReader(bad))
			pn, perr := read.run(rd, got)
			if !errors.Is(perr, ErrCorrupt) {
				t.Fatalf("%s/%s: err = %v, want ErrCorrupt", name, read.path, perr)
			}
			if rd.Err() == nil || !errors.Is(rd.Err(), ErrCorrupt) {
				t.Fatalf("%s/%s: cause not latched: Err() = %v", name, read.path, rd.Err())
			}
			if pn < minDelivered || int64(len(got.records)) != pn {
				t.Fatalf("%s/%s: delivered %d records before error, want ≥ %d", name, read.path, pn, minDelivered)
			}
			for i := range serial.Records[:minDelivered] {
				if got.records[i] != serial.Records[i] {
					t.Fatalf("%s/%s: pre-error record %d diverges", name, read.path, i)
				}
			}
		}
	}
}

// TestV3RawLenMismatch: a compressed segment whose declared raw size
// disagrees with what the flate stream inflates to is corruption in both
// directions (too small and too large).
func TestV3RawLenMismatch(t *testing.T) {
	const n = 9000
	_, raw := versionStream(t, 3, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	for i := range ix.Segments {
		if ix.Segments[i].Compressed() {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no compressed segment")
	}
	seg := ix.Segments[target]
	rawLenOff := seg.Offset + segHeaderLenV3 // the trailing rawLen field
	for name, delta := range map[string]int{"short": -1, "long": +1} {
		mut := append([]byte{}, raw...)
		binary.LittleEndian.PutUint32(mut[rawLenOff:], uint32(seg.RawLen+delta))
		// The serial scan trusts the frame alone, so it must notice the
		// inflate-size mismatch itself (the parallel path additionally
		// rejects the frame/index disagreement).
		if _, err := NewReader(bytes.NewReader(mut)).ReadAllPrefetch(&Collect{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: serial err = %v, want ErrCorrupt", name, err)
		}
		if _, err := NewReader(bytes.NewReader(mut)).ReadAllParallel(&Collect{}, 4); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: parallel err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestV3RawLenExpansionBound: a RawLen beyond flate's maximum expansion of
// the on-disk payload cannot be legitimate, and must surface ErrCorrupt
// from both the frame and the index parse *before* any reader allocates a
// slab for it — a flipped u32 must not become a multi-gigabyte allocation.
func TestV3RawLenExpansionBound(t *testing.T) {
	const n = 9000
	_, raw := versionStream(t, 3, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	for i := range ix.Segments {
		if ix.Segments[i].Compressed() {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no compressed segment")
	}
	seg := ix.Segments[target]
	const huge = 0xFFFFFFF0
	// Frame path: the serial scan parses the frame's trailing rawLen.
	mutFrame := append([]byte{}, raw...)
	binary.LittleEndian.PutUint32(mutFrame[seg.Offset+segHeaderLenV3:], huge)
	if _, err := NewReader(bytes.NewReader(mutFrame)).ReadAllPrefetch(&Collect{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("frame: err = %v, want ErrCorrupt", err)
	}
	// Index path: ReadIndex must reject the entry up front. The rawLen
	// field sits at +20 of the target's 48-byte entry.
	footOff := int64(len(raw)) - footerLen
	indexOff := int64(binary.LittleEndian.Uint64(raw[footOff+8:]))
	entryOff := indexOff + indexHeaderLen + int64(target)*indexEntryLenV3
	mutIndex := append([]byte{}, raw...)
	binary.LittleEndian.PutUint32(mutIndex[entryOff+20:], huge)
	if _, err := ReadIndex(bytes.NewReader(mutIndex), int64(len(mutIndex))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("index: err = %v, want ErrCorrupt", err)
	}
}

// TestV2IndexSegmentDisagreement: an index entry that contradicts the
// segment's own frame header is corruption, not silent mis-decode.
func TestV2IndexSegmentDisagreement(t *testing.T) {
	const n = 5000
	_, raw := v2TestStream(t, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a count byte inside the on-disk frame header of segment 1 and
	// patch MinT/MaxT consistency so parseSegmentHeader alone still passes.
	mut := append([]byte{}, raw...)
	off := ix.Segments[1].Offset
	binary.LittleEndian.PutUint32(mut[off+8:], uint32(ix.Segments[1].Count+1))
	_, perr := NewReader(bytes.NewReader(mut)).ReadAllParallel(&Collect{}, 4)
	if !errors.Is(perr, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", perr)
	}
}

// TestEmptyIndexedTrace: an empty v2 or v3 file still carries a header, an
// empty index and a footer, and every read path reports zero records
// cleanly.
func TestEmptyIndexedTrace(t *testing.T) {
	for _, version := range []int{2, 3, 4} {
		var buf bytes.Buffer
		w := NewWriterV2(&buf)
		switch version {
		case 3:
			w = NewWriterV3(&buf)
		case 4:
			w = NewWriter(&buf)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		wantSize := headerLen + indexHeaderLen + footerLen
		if buf.Len() != wantSize {
			t.Fatalf("empty v%d file is %d bytes, want %d", version, buf.Len(), wantSize)
		}
		ix, err := ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Version != version || ix.Records != 0 || len(ix.Segments) != 0 {
			t.Fatalf("index = %+v", ix)
		}
		if _, err := NewReader(bytes.NewReader(buf.Bytes())).Read(); err != io.EOF {
			t.Fatalf("v%d Read = %v, want io.EOF", version, err)
		}
		pn, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAllParallel(&Collect{}, 4)
		if err != nil || pn != 0 {
			t.Fatalf("v%d parallel = %d, %v", version, pn, err)
		}
	}
}

// TestWriterSealing: Flush seals a v2 trace; the Handle path latches the
// resulting ErrFinished instead of corrupting the file.
func TestWriterSealing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{App: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{T: time.Second}); !errors.Is(err, ErrFinished) {
		t.Fatalf("Write after Flush = %v, want ErrFinished", err)
	}
	w.Handle(Record{T: time.Second})
	if !errors.Is(w.Err(), ErrFinished) {
		t.Fatalf("Err() = %v, want ErrFinished", w.Err())
	}
}

// TestReaderErrLatchesCause: the sentinel errors keep their identity while
// Err() preserves the underlying EOF-tail/IO state the old reader dropped.
func TestReaderErrLatchesCause(t *testing.T) {
	// v1 stream truncated mid-varint.
	trunc := append([]byte("CSTR"), version1, 0, 0, 0, 0x80)
	rd := NewReader(bytes.NewReader(trunc))
	if _, err := rd.Read(); err != ErrCorrupt {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
	if rd.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("Err() = %v, want io.ErrUnexpectedEOF", rd.Err())
	}

	// Header shorter than 8 bytes: bad magic, cause latched.
	rd2 := NewReader(bytes.NewReader([]byte("CST")))
	if _, err := rd2.Read(); err != ErrBadMagic {
		t.Fatalf("Read = %v, want ErrBadMagic", err)
	}
	if rd2.Err() == nil {
		t.Fatal("Err() = nil, want latched cause")
	}

	// A clean v1 EOF latches nothing.
	var buf bytes.Buffer
	w := NewWriterV1(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd3 := NewReader(&buf)
	if _, err := rd3.Read(); err != io.EOF {
		t.Fatalf("Read = %v, want io.EOF", err)
	}
	if rd3.Err() != nil {
		t.Fatalf("Err() = %v, want nil", rd3.Err())
	}
}

// TestVersionPolicy: version bytes above the current version must error
// cleanly everywhere, and ReadIndex must identify v1 as index-less.
func TestVersionPolicy(t *testing.T) {
	future := append([]byte("CSTR"), 5, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(future)).Read(); err != ErrBadVersion {
		t.Fatalf("Read = %v, want ErrBadVersion", err)
	}
	if _, err := NewReader(bytes.NewReader(future)).ReadAllParallel(&Collect{}, 4); err != ErrBadVersion {
		t.Fatalf("ReadAllParallel = %v, want ErrBadVersion", err)
	}
	if _, err := ReadIndex(bytes.NewReader(future), int64(len(future))); err != ErrBadVersion {
		// ReadIndex sees a file too small before it sees the version;
		// grow it past the minimum.
		padded := append(append([]byte{}, future...), make([]byte, 64)...)
		if _, err := ReadIndex(bytes.NewReader(padded), int64(len(padded))); err != ErrBadVersion {
			t.Fatalf("ReadIndex = %v, want ErrBadVersion", err)
		}
	}

	var v1 bytes.Buffer
	w := NewWriterV1(&v1)
	for i := 0; i < 100; i++ {
		if err := w.Write(Record{T: time.Duration(i) * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(v1.Bytes()), int64(v1.Len())); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("ReadIndex(v1) = %v, want ErrNoIndex", err)
	}
	// A v1 trace through ReadAllParallel silently uses the serial path —
	// that is the documented fallback, not a warning case.
	rd := NewReader(bytes.NewReader(v1.Bytes()))
	pn, err := rd.ReadAllParallel(&Collect{}, 4)
	if err != nil || pn != 100 {
		t.Fatalf("v1 via ReadAllParallel = %d, %v", pn, err)
	}
}

// goldenV1 is a two-record v1 file written by the original (pre-v2) Writer,
// byte for byte; goldenV2, goldenV3 and goldenV4 are the same stream in v2,
// v3 and v4 form, as specified in docs/FORMAT.md. (The tiny golden payloads
// do not shrink under flate, so the v3/v4 writers store them uncompressed
// with the flag clear — which pins the adaptive store-raw path too.) If any
// comparison breaks, the on-disk format changed and the compatibility
// policy was violated.
var (
	goldenRecords = []Record{
		{T: 0, Dir: In, Kind: KindGame, Client: 1, App: 40},
		{T: 50 * time.Millisecond, Dir: Out, Kind: KindGame, Client: 1, App: 130},
	}
	goldenPayload = []byte{
		0x00, 0x00, 0x01, 0x28, // delta 0 | in/game | client 1 | app 40
		0x80, 0xE1, 0xEB, 0x17, // delta 50 ms (uvarint 50 000 000)
		0x01, 0x01, 0x82, 0x01, // out/game | client 1 | app 130
	}
	goldenV1 = append([]byte{'C', 'S', 'T', 'R', 1, 0, 0, 0}, goldenPayload...)
	goldenV2 = func() []byte {
		b := []byte{'C', 'S', 'T', 'R', 2, 0, 0, 0}
		// Segment frame at offset 8.
		b = append(b, 'C', 'S', 'E', 'G')
		b = binary.LittleEndian.AppendUint32(b, 12) // payload bytes
		b = binary.LittleEndian.AppendUint32(b, 2)  // records
		b = binary.LittleEndian.AppendUint64(b, 0)  // baseT
		b = binary.LittleEndian.AppendUint64(b, 0)  // minT
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		b = append(b, goldenPayload...)
		// Index frame at offset 56.
		b = append(b, 'C', 'S', 'I', 'X')
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint64(b, 8)
		b = binary.LittleEndian.AppendUint32(b, 12)
		b = binary.LittleEndian.AppendUint32(b, 2)
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		// Footer.
		b = binary.LittleEndian.AppendUint64(b, 2)
		b = binary.LittleEndian.AppendUint64(b, 56)
		b = binary.LittleEndian.AppendUint32(b, 1)
		return append(b, 'C', 'S', 'F', 'T')
	}()
	goldenV3 = func() []byte {
		b := []byte{'C', 'S', 'T', 'R', 3, 0, 0, 0}
		// Segment frame at offset 8: the v2 header plus a flags word
		// (clear: 12 bytes do not shrink under flate, so the payload is
		// stored raw and no rawLen field follows).
		b = append(b, 'C', 'S', 'E', 'G')
		b = binary.LittleEndian.AppendUint32(b, 12) // payload bytes
		b = binary.LittleEndian.AppendUint32(b, 2)  // records
		b = binary.LittleEndian.AppendUint32(b, 0)  // flags: uncompressed
		b = binary.LittleEndian.AppendUint64(b, 0)  // baseT
		b = binary.LittleEndian.AppendUint64(b, 0)  // minT
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		b = append(b, goldenPayload...)
		// Index frame at offset 60.
		b = append(b, 'C', 'S', 'I', 'X')
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint64(b, 8)
		b = binary.LittleEndian.AppendUint32(b, 12) // payloadLen
		b = binary.LittleEndian.AppendUint32(b, 2)  // count
		b = binary.LittleEndian.AppendUint32(b, 0)  // flags
		b = binary.LittleEndian.AppendUint32(b, 12) // rawLen == payloadLen
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		// Footer.
		b = binary.LittleEndian.AppendUint64(b, 2)
		b = binary.LittleEndian.AppendUint64(b, 60)
		b = binary.LittleEndian.AppendUint32(b, 1)
		return append(b, 'C', 'S', 'F', 'T')
	}()
	// goldenPayloadV4 is the same two records field-striped: a 16-byte
	// column header (run lengths, LE u32 each) followed by the four runs —
	// timestamp deltas, flags, client ids, app sizes. The runs concatenate
	// the exact field encodings of the interleaved goldenPayload.
	goldenPayloadV4 = []byte{
		5, 0, 0, 0, // deltas run: 5 bytes
		2, 0, 0, 0, // flags run: 2 bytes
		2, 0, 0, 0, // clients run: 2 bytes
		3, 0, 0, 0, // apps run: 3 bytes
		0x00, 0x80, 0xE1, 0xEB, 0x17, // deltas: 0, 50 ms (uvarint 50 000 000)
		0x00, 0x01, // flags: in/game, out/game
		0x01, 0x01, // clients: 1, 1
		0x28, 0x82, 0x01, // apps: 40, 130
	}
	goldenV4 = func() []byte {
		b := []byte{'C', 'S', 'T', 'R', 4, 0, 0, 0}
		// Segment frame at offset 8: the v3 header with the columnar flag
		// set and the compressed flag clear (the 28-byte stored form with
		// per-run flate is no smaller, so the payload is stored raw and no
		// rawLen field follows).
		b = append(b, 'C', 'S', 'E', 'G')
		b = binary.LittleEndian.AppendUint32(b, 28)          // payload bytes
		b = binary.LittleEndian.AppendUint32(b, 2)           // records
		b = binary.LittleEndian.AppendUint32(b, SegColumnar) // flags
		b = binary.LittleEndian.AppendUint64(b, 0)           // baseT
		b = binary.LittleEndian.AppendUint64(b, 0)           // minT
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		b = append(b, goldenPayloadV4...)
		// Index frame at offset 76.
		b = append(b, 'C', 'S', 'I', 'X')
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint64(b, 8)
		b = binary.LittleEndian.AppendUint32(b, 28)          // payloadLen
		b = binary.LittleEndian.AppendUint32(b, 2)           // count
		b = binary.LittleEndian.AppendUint32(b, SegColumnar) // flags
		b = binary.LittleEndian.AppendUint32(b, 28)          // rawLen == payloadLen
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		// Footer.
		b = binary.LittleEndian.AppendUint64(b, 2)
		b = binary.LittleEndian.AppendUint64(b, 76)
		b = binary.LittleEndian.AppendUint32(b, 1)
		return append(b, 'C', 'S', 'F', 'T')
	}()
)

// TestGoldenFiles: all golden byte strings decode to the golden records,
// and today's writers reproduce them exactly.
func TestGoldenFiles(t *testing.T) {
	for name, raw := range map[string][]byte{"v1": goldenV1, "v2": goldenV2, "v3": goldenV3, "v4": goldenV4} {
		var got Collect
		n, err := NewReader(bytes.NewReader(raw)).ReadAll(&got)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 2 || got.Records[0] != goldenRecords[0] || got.Records[1] != goldenRecords[1] {
			t.Fatalf("%s decoded %d: %+v", name, n, got.Records)
		}
	}

	var v1, v2, v3, v4 bytes.Buffer
	w1, w2, w3, w4 := NewWriterV1(&v1), NewWriterV2(&v2), NewWriterV3(&v3), NewWriter(&v4)
	for _, r := range goldenRecords {
		for _, w := range []*Writer{w1, w2, w3, w4} {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, w := range []*Writer{w1, w2, w3, w4} {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(v1.Bytes(), goldenV1) {
		t.Errorf("v1 writer output diverged from golden:\n got %x\nwant %x", v1.Bytes(), goldenV1)
	}
	if !bytes.Equal(v2.Bytes(), goldenV2) {
		t.Errorf("v2 writer output diverged from golden:\n got %x\nwant %x", v2.Bytes(), goldenV2)
	}
	if !bytes.Equal(v3.Bytes(), goldenV3) {
		t.Errorf("v3 writer output diverged from golden:\n got %x\nwant %x", v3.Bytes(), goldenV3)
	}
	if !bytes.Equal(v4.Bytes(), goldenV4) {
		t.Errorf("v4 writer output diverged from golden:\n got %x\nwant %x", v4.Bytes(), goldenV4)
	}
}

// TestRoundTripEquality: the identical record stream written in all four
// format versions decodes to the identical records on every read path.
func TestRoundTripEquality(t *testing.T) {
	const n = 12000
	recs, rawV1 := versionStream(t, 1, n, 0)
	_, rawV2 := versionStream(t, 2, n, 1<<10)
	_, rawV3 := versionStream(t, 3, n, 1<<10)
	_, rawV4 := versionStream(t, 4, n, 1<<10)

	for name, raw := range map[string][]byte{"v1": rawV1, "v2": rawV2, "v3": rawV3, "v4": rawV4} {
		paths := map[string]func(rd *Reader, h Handler) (int64, error){
			"readall":  func(rd *Reader, h Handler) (int64, error) { return rd.ReadAll(h) },
			"prefetch": func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllPrefetch(h) },
			"parallel": func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllParallel(h, 4) },
			"sharded":  func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllSharded(h, 4) },
		}
		for path, read := range paths {
			got := &blockCollect{}
			pn, err := read(NewReader(bytes.NewReader(raw)), got)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, path, err)
			}
			if pn != n || len(got.records) != n {
				t.Fatalf("%s/%s: %d/%d records", name, path, pn, len(got.records))
			}
			for i := range recs {
				if got.records[i] != recs[i] {
					t.Fatalf("%s/%s: record %d diverges", name, path, i)
				}
			}
		}
	}
}
