package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// v2TestStream builds a deterministic record stream and its v2 encoding
// with small segments (so even short streams span many of them).
func v2TestStream(t *testing.T, n, segPayload int) ([]Record, []byte) {
	t.Helper()
	recs := make([]Record, 0, n)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SegmentPayload = segPayload
	for i := 0; i < n; i++ {
		r := Record{
			T:      time.Duration(i) * 173 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 31),
			App:    uint16(20 + i%300),
		}
		recs = append(recs, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return recs, buf.Bytes()
}

// TestV2ParallelMatchesSerial: the parallel decode must deliver the exact
// serial stream for every worker count, across sizes that exercise empty
// files, single segments and partial tails.
func TestV2ParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000, 20000} {
		recs, raw := v2TestStream(t, n, 1<<10)
		for _, workers := range []int{1, 2, 3, 8} {
			var got Collect
			rd := NewReader(bytes.NewReader(raw))
			pn, err := rd.ReadAllParallel(&got, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if rd.Warning() != "" {
				t.Fatalf("n=%d workers=%d: unexpected fallback: %s", n, workers, rd.Warning())
			}
			if pn != int64(n) || len(got.Records) != n {
				t.Fatalf("n=%d workers=%d: delivered %d/%d records", n, workers, pn, len(got.Records))
			}
			for i := range recs {
				if got.Records[i] != recs[i] {
					t.Fatalf("n=%d workers=%d: record %d = %+v, want %+v",
						n, workers, i, got.Records[i], recs[i])
				}
			}
		}
	}
}

// TestReadIndexGeometry: the index must tile the file exactly, chain delta
// bases through segment boundaries, and agree with the footer totals.
func TestReadIndexGeometry(t *testing.T) {
	const n = 12345
	recs, raw := v2TestStream(t, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Version != 2 || ix.Records != n {
		t.Fatalf("Version=%d Records=%d", ix.Version, ix.Records)
	}
	if len(ix.Segments) < 8 {
		t.Fatalf("only %d segments; SegmentPayload not honored?", len(ix.Segments))
	}
	var sum int
	next := int64(headerLen)
	for i, si := range ix.Segments {
		if si.Offset != next {
			t.Fatalf("segment %d at %d, want %d", i, si.Offset, next)
		}
		if i == 0 && si.BaseT != 0 {
			t.Fatalf("first BaseT = %v", si.BaseT)
		}
		if i > 0 && si.BaseT != ix.Segments[i-1].MaxT {
			t.Fatalf("segment %d BaseT %v != prev MaxT %v", i, si.BaseT, ix.Segments[i-1].MaxT)
		}
		sum += si.Count
		next = si.Offset + segHeaderLen + int64(si.PayloadLen)
	}
	if sum != n {
		t.Fatalf("index counts %d records, want %d", sum, n)
	}
	if first, last := ix.Segments[0].MinT, ix.Segments[len(ix.Segments)-1].MaxT; first != recs[0].T || last != recs[n-1].T {
		t.Fatalf("span [%v, %v], want [%v, %v]", first, last, recs[0].T, recs[n-1].T)
	}
	if ix.PayloadBytes() <= 0 {
		t.Fatal("PayloadBytes not positive")
	}
}

// nonSeeker hides the seek/readat capability of an underlying reader.
type nonSeeker struct{ io.Reader }

// TestParallelFallsBackSerial: a damaged index or footer, or a non-seekable
// source, must degrade to the serial scan — full stream, nil error, and an
// explanatory Warning.
func TestParallelFallsBackSerial(t *testing.T) {
	const n = 9000
	recs, raw := v2TestStream(t, n, 1<<10)
	cases := map[string]io.Reader{
		"truncated-footer": bytes.NewReader(raw[:len(raw)-5]),
		"truncated-index":  bytes.NewReader(raw[:len(raw)-footerLen-13]),
		"zeroed-footer":    bytes.NewReader(append(append([]byte{}, raw[:len(raw)-8]...), 0, 0, 0, 0, 0, 0, 0, 0)),
		"non-seekable":     nonSeeker{bytes.NewReader(raw)},
	}
	for name, src := range cases {
		rd := NewReader(src)
		var got Collect
		pn, err := rd.ReadAllParallel(&got, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rd.Warning() == "" {
			t.Errorf("%s: fallback did not set Warning", name)
		}
		if pn != int64(n) || len(got.Records) != n {
			t.Fatalf("%s: delivered %d/%d records, want %d", name, pn, len(got.Records), n)
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				t.Fatalf("%s: record %d diverges", name, i)
			}
		}
	}
}

// TestV2CorruptPayload: damage inside a middle segment must surface
// ErrCorrupt on the serial and parallel paths alike, with the records of
// the preceding segments still delivered on the parallel path.
func TestV2CorruptPayload(t *testing.T) {
	const n = 9000
	_, raw := v2TestStream(t, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Segments) < 4 {
		t.Fatalf("need several segments, have %d", len(ix.Segments))
	}
	// Truncate the stream mid-way through the third segment's payload: a
	// hard corruption no path can decode past.
	seg := ix.Segments[2]
	cut := seg.Offset + segHeaderLen + int64(seg.PayloadLen)/2
	bad := raw[:cut]

	var serial Collect
	_, serr := NewReader(bytes.NewReader(bad)).ReadAllPrefetch(&serial)
	if !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("serial err = %v, want ErrCorrupt", serr)
	}

	// With the intact index spliced back on, the parallel path sees a
	// valid index whose segment bytes are damaged. Rebuild: keep all
	// segments but zero a byte inside segment 2's payload.
	mut := append([]byte{}, raw...)
	mut[seg.Offset+segHeaderLen+5] ^= 0xFF
	var par Collect
	prd := NewReader(bytes.NewReader(mut))
	pn, perr := prd.ReadAllParallel(&par, 4)
	if !errors.Is(perr, ErrCorrupt) {
		t.Fatalf("parallel err = %v, want ErrCorrupt", perr)
	}
	if prd.Err() == nil || !errors.Is(prd.Err(), ErrCorrupt) {
		t.Fatalf("parallel path did not latch the cause: Err() = %v", prd.Err())
	}
	// Everything before the damaged segment must have been delivered.
	min := int64(ix.Segments[0].Count + ix.Segments[1].Count)
	if pn < min {
		t.Fatalf("parallel delivered %d records before error, want ≥ %d", pn, min)
	}
	if int64(len(par.Records)) != pn {
		t.Fatalf("delivered %d but reported %d", len(par.Records), pn)
	}
}

// TestV2IndexSegmentDisagreement: an index entry that contradicts the
// segment's own frame header is corruption, not silent mis-decode.
func TestV2IndexSegmentDisagreement(t *testing.T) {
	const n = 5000
	_, raw := v2TestStream(t, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a count byte inside the on-disk frame header of segment 1 and
	// patch MinT/MaxT consistency so parseSegmentHeader alone still passes.
	mut := append([]byte{}, raw...)
	off := ix.Segments[1].Offset
	binary.LittleEndian.PutUint32(mut[off+8:], uint32(ix.Segments[1].Count+1))
	_, perr := NewReader(bytes.NewReader(mut)).ReadAllParallel(&Collect{}, 4)
	if !errors.Is(perr, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", perr)
	}
}

// TestV2EmptyTrace: an empty v2 file still carries a header, an empty index
// and a footer, and every read path reports zero records cleanly.
func TestV2EmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	wantSize := headerLen + indexHeaderLen + footerLen
	if buf.Len() != wantSize {
		t.Fatalf("empty v2 file is %d bytes, want %d", buf.Len(), wantSize)
	}
	ix, err := ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Records != 0 || len(ix.Segments) != 0 {
		t.Fatalf("index = %+v", ix)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes())).Read(); err != io.EOF {
		t.Fatalf("Read = %v, want io.EOF", err)
	}
	pn, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAllParallel(&Collect{}, 4)
	if err != nil || pn != 0 {
		t.Fatalf("parallel = %d, %v", pn, err)
	}
}

// TestWriterSealing: Flush seals a v2 trace; the Handle path latches the
// resulting ErrFinished instead of corrupting the file.
func TestWriterSealing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{App: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{T: time.Second}); !errors.Is(err, ErrFinished) {
		t.Fatalf("Write after Flush = %v, want ErrFinished", err)
	}
	w.Handle(Record{T: time.Second})
	if !errors.Is(w.Err(), ErrFinished) {
		t.Fatalf("Err() = %v, want ErrFinished", w.Err())
	}
}

// TestReaderErrLatchesCause: the sentinel errors keep their identity while
// Err() preserves the underlying EOF-tail/IO state the old reader dropped.
func TestReaderErrLatchesCause(t *testing.T) {
	// v1 stream truncated mid-varint.
	trunc := append([]byte("CSTR"), version1, 0, 0, 0, 0x80)
	rd := NewReader(bytes.NewReader(trunc))
	if _, err := rd.Read(); err != ErrCorrupt {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
	if rd.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("Err() = %v, want io.ErrUnexpectedEOF", rd.Err())
	}

	// Header shorter than 8 bytes: bad magic, cause latched.
	rd2 := NewReader(bytes.NewReader([]byte("CST")))
	if _, err := rd2.Read(); err != ErrBadMagic {
		t.Fatalf("Read = %v, want ErrBadMagic", err)
	}
	if rd2.Err() == nil {
		t.Fatal("Err() = nil, want latched cause")
	}

	// A clean v1 EOF latches nothing.
	var buf bytes.Buffer
	w := NewWriterV1(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd3 := NewReader(&buf)
	if _, err := rd3.Read(); err != io.EOF {
		t.Fatalf("Read = %v, want io.EOF", err)
	}
	if rd3.Err() != nil {
		t.Fatalf("Err() = %v, want nil", rd3.Err())
	}
}

// TestVersionPolicy: version bytes above the current version must error
// cleanly everywhere, and ReadIndex must identify v1 as index-less.
func TestVersionPolicy(t *testing.T) {
	future := append([]byte("CSTR"), 3, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(future)).Read(); err != ErrBadVersion {
		t.Fatalf("Read = %v, want ErrBadVersion", err)
	}
	if _, err := NewReader(bytes.NewReader(future)).ReadAllParallel(&Collect{}, 4); err != ErrBadVersion {
		t.Fatalf("ReadAllParallel = %v, want ErrBadVersion", err)
	}
	if _, err := ReadIndex(bytes.NewReader(future), int64(len(future))); err != ErrBadVersion {
		// ReadIndex sees a file too small before it sees the version;
		// grow it past the minimum.
		padded := append(append([]byte{}, future...), make([]byte, 64)...)
		if _, err := ReadIndex(bytes.NewReader(padded), int64(len(padded))); err != ErrBadVersion {
			t.Fatalf("ReadIndex = %v, want ErrBadVersion", err)
		}
	}

	var v1 bytes.Buffer
	w := NewWriterV1(&v1)
	for i := 0; i < 100; i++ {
		if err := w.Write(Record{T: time.Duration(i) * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(v1.Bytes()), int64(v1.Len())); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("ReadIndex(v1) = %v, want ErrNoIndex", err)
	}
	// A v1 trace through ReadAllParallel silently uses the serial path —
	// that is the documented fallback, not a warning case.
	rd := NewReader(bytes.NewReader(v1.Bytes()))
	pn, err := rd.ReadAllParallel(&Collect{}, 4)
	if err != nil || pn != 100 {
		t.Fatalf("v1 via ReadAllParallel = %d, %v", pn, err)
	}
}

// goldenV1 is a two-record v1 file written by the original (pre-v2) Writer,
// byte for byte; goldenV2 is the same stream in v2 form, as specified in
// docs/FORMAT.md. If either comparison breaks, the on-disk format changed
// and the compatibility policy was violated.
var (
	goldenRecords = []Record{
		{T: 0, Dir: In, Kind: KindGame, Client: 1, App: 40},
		{T: 50 * time.Millisecond, Dir: Out, Kind: KindGame, Client: 1, App: 130},
	}
	goldenPayload = []byte{
		0x00, 0x00, 0x01, 0x28, // delta 0 | in/game | client 1 | app 40
		0x80, 0xE1, 0xEB, 0x17, // delta 50 ms (uvarint 50 000 000)
		0x01, 0x01, 0x82, 0x01, // out/game | client 1 | app 130
	}
	goldenV1 = append([]byte{'C', 'S', 'T', 'R', 1, 0, 0, 0}, goldenPayload...)
	goldenV2 = func() []byte {
		b := []byte{'C', 'S', 'T', 'R', 2, 0, 0, 0}
		// Segment frame at offset 8.
		b = append(b, 'C', 'S', 'E', 'G')
		b = binary.LittleEndian.AppendUint32(b, 12) // payload bytes
		b = binary.LittleEndian.AppendUint32(b, 2)  // records
		b = binary.LittleEndian.AppendUint64(b, 0)  // baseT
		b = binary.LittleEndian.AppendUint64(b, 0)  // minT
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		b = append(b, goldenPayload...)
		// Index frame at offset 56.
		b = append(b, 'C', 'S', 'I', 'X')
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint64(b, 8)
		b = binary.LittleEndian.AppendUint32(b, 12)
		b = binary.LittleEndian.AppendUint32(b, 2)
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 50_000_000)
		// Footer.
		b = binary.LittleEndian.AppendUint64(b, 2)
		b = binary.LittleEndian.AppendUint64(b, 56)
		b = binary.LittleEndian.AppendUint32(b, 1)
		return append(b, 'C', 'S', 'F', 'T')
	}()
)

// TestGoldenFiles: both golden byte strings decode to the golden records,
// and today's writers reproduce them exactly.
func TestGoldenFiles(t *testing.T) {
	for name, raw := range map[string][]byte{"v1": goldenV1, "v2": goldenV2} {
		var got Collect
		n, err := NewReader(bytes.NewReader(raw)).ReadAll(&got)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 2 || got.Records[0] != goldenRecords[0] || got.Records[1] != goldenRecords[1] {
			t.Fatalf("%s decoded %d: %+v", name, n, got.Records)
		}
	}

	var v1, v2 bytes.Buffer
	w1, w2 := NewWriterV1(&v1), NewWriter(&v2)
	for _, r := range goldenRecords {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
		if err := w2.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), goldenV1) {
		t.Errorf("v1 writer output diverged from golden:\n got %x\nwant %x", v1.Bytes(), goldenV1)
	}
	if !bytes.Equal(v2.Bytes(), goldenV2) {
		t.Errorf("v2 writer output diverged from golden:\n got %x\nwant %x", v2.Bytes(), goldenV2)
	}
}
