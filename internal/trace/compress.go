package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"cstrace/internal/sched"
)

// Write-side segment compression. compScratch is the deterministic
// payload encoder both paths share; compPipeline runs it on a bounded
// worker pool so deflate leaves the Write critical path: sealed segments
// are self-contained, so they compress in any order, and an order queue
// of per-job result channels lets a single emitter goroutine write the
// frames back in submission order. For a given (version, level) the file
// bytes are identical whatever the worker count — per-run and per-segment
// stored-vs-raw choices depend only on sizes, never on scheduling.

// compScratch bundles one compressor's reusable state: the flate writer
// (reset per stream instead of reallocated) and output buffers.
type compScratch struct {
	fw      *flate.Writer
	fwLevel int
	cbuf    bytes.Buffer // flate output for one stream
	out     []byte       // assembled stored payload (v4)
}

// deflate runs p through flate at level, returning the compressed bytes
// (valid until the next call).
func (cs *compScratch) deflate(p []byte, level int) ([]byte, error) {
	if cs.fw == nil || cs.fwLevel != level {
		fw, err := flate.NewWriter(io.Discard, level)
		if err != nil {
			return nil, fmt.Errorf("trace: invalid CompressLevel %d: %w", level, err)
		}
		cs.fw, cs.fwLevel = fw, level
	}
	cs.cbuf.Reset()
	cs.fw.Reset(&cs.cbuf)
	if _, err := cs.fw.Write(p); err != nil {
		return nil, err
	}
	if err := cs.fw.Close(); err != nil {
		return nil, err
	}
	return cs.cbuf.Bytes(), nil
}

// encode compresses one sealed raw segment payload per the format's
// policy, returning the stored payload and segment flags. The returned
// slice aliases raw when the segment is stored uncompressed and scratch
// memory otherwise — valid until the next call.
func (cs *compScratch) encode(version int, raw []byte, level int) ([]byte, uint32, error) {
	if version >= version4 {
		return cs.encodeColumnar(raw, level)
	}
	if level == CompressOff {
		return raw, 0, nil
	}
	comp, err := cs.deflate(raw, level)
	if err != nil {
		return nil, 0, err
	}
	if len(comp) < len(raw) {
		return comp, SegCompressed, nil
	}
	return raw, 0, nil
}

// encodeColumnar deflates each column run of an assembled v4 payload
// independently, keeping a run stored literally when flate does not shrink
// it, and stores the segment compressed only when the whole stored form is
// strictly smaller than the raw columnar payload.
func (cs *compScratch) encodeColumnar(raw []byte, level int) ([]byte, uint32, error) {
	if level == CompressOff {
		return raw, SegColumnar, nil
	}
	rawL, _ := parseColHeader(raw)
	var storedHdr [colHeaderLen]byte
	out := append(cs.out[:0], raw[:colHeaderLen]...)
	out = append(out, storedHdr[:]...) // patched once the sizes are known
	off := colHeaderLen
	var stored [4]int
	for c, l := range rawL {
		run := raw[off : off+l]
		off += l
		if c == 0 {
			// The delta run is the decode path's hot column: half the raw
			// payload, swept for every record, and barely compressible
			// (flate leaves it ~70% of raw on the calibrated workload).
			// Storing it literal keeps inflate off the dominant column —
			// the serial scan stays near interleaved-decode speed — for
			// well under a byte per record of disk.
			out = append(out, run...)
			stored[c] = len(run)
			continue
		}
		comp, err := cs.deflate(run, level)
		if err != nil {
			cs.out = out
			return nil, 0, err
		}
		if len(comp) < len(run) {
			out = append(out, comp...)
			stored[c] = len(comp)
		} else {
			out = append(out, run...)
			stored[c] = len(run)
		}
	}
	for c, s := range stored {
		binary.LittleEndian.PutUint32(out[colHeaderLen+4*c:], uint32(s))
	}
	cs.out = out
	if len(out) < len(raw) {
		return out, SegColumnar | SegCompressed, nil
	}
	return raw, SegColumnar, nil
}

// segMeta carries a sealed segment's bookkeeping from the producer to the
// frame emitter.
type segMeta struct {
	count          int
	base, min, max time.Duration
}

// compJob is one sealed raw payload awaiting compression. Ownership of raw
// transfers to the pipeline.
type compJob struct {
	raw  []byte
	meta segMeta
	done chan compResult
}

// compResult is one worker's output for one segment.
type compResult struct {
	payload []byte // stored payload: raw itself, or an owned compressed slab
	raw     []byte
	meta    segMeta
	flags   uint32
	err     error
}

// compPipeline is the Writer's asynchronous compression pool; see the file
// comment for the ordering story. The order queue's capacity bounds
// in-flight segments, applying backpressure to Write when compression or
// the sink falls behind.
type compPipeline struct {
	w     *Writer
	level int
	lease *sched.Lease // budget grant backing an Auto-sized pool; may be nil

	jobs   chan compJob
	order  chan chan compResult
	slabs  chan []byte // recycled payload slabs
	wg     sync.WaitGroup
	emDone chan struct{}

	mu  sync.Mutex
	err error // first worker/emitter failure; surfaces via Writer.Err
}

func newCompPipeline(w *Writer) *compPipeline {
	workers := w.Workers
	var lease *sched.Lease
	if workers == sched.Auto {
		// The pipeline holds its budget share for its whole life — it is
		// created at the first sealed segment and compresses until Flush
		// drains it. Pool size changes speed only; bytes are identical.
		lease = sched.Default().Acquire(sched.Default().Total())
		workers = lease.Workers()
	}
	depth := 2 * workers
	p := &compPipeline{
		w:      w,
		lease:  lease,
		level:  w.level(),
		jobs:   make(chan compJob, workers),
		order:  make(chan chan compResult, depth),
		slabs:  make(chan []byte, 2*depth+2),
		emDone: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	go p.emitter()
	return p
}

func (p *compPipeline) getErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *compPipeline) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// getSlab returns a recycled slab (or nil; callers append into it).
func (p *compPipeline) getSlab() []byte {
	select {
	case s := <-p.slabs:
		return s
	default:
		return nil
	}
}

func (p *compPipeline) putSlab(s []byte) {
	if s == nil {
		return
	}
	select {
	case p.slabs <- s:
	default:
	}
}

// submit hands one sealed raw payload to the pool, blocking when the
// in-flight bound is reached.
func (p *compPipeline) submit(raw []byte, meta segMeta) error {
	if err := p.getErr(); err != nil {
		return err
	}
	done := make(chan compResult, 1)
	p.order <- done
	p.jobs <- compJob{raw: raw, meta: meta, done: done}
	return nil
}

func (p *compPipeline) worker() {
	defer p.wg.Done()
	var cs compScratch
	for job := range p.jobs {
		res := compResult{raw: job.raw, meta: job.meta}
		payload, flags, err := cs.encode(int(p.w.version), job.raw, p.level)
		res.flags = flags
		if err != nil {
			res.err = err
		} else if flags&SegCompressed != 0 {
			// The compressed bytes live in worker scratch reused by the
			// next job; move them to an owned slab for the emitter.
			res.payload = append(p.getSlab()[:0], payload...)
		} else {
			res.payload = job.raw
		}
		job.done <- res
	}
}

// emitter writes the compressed segments out as frames, in submission
// order. It is the only goroutine touching the Writer's output stream
// between the header and Flush's drain.
func (p *compPipeline) emitter() {
	defer close(p.emDone)
	for done := range p.order {
		res := <-done
		switch {
		case res.err != nil:
			p.setErr(res.err)
		case p.getErr() != nil:
			// An earlier segment already failed; drop the rest so the
			// failure stays first in file order.
		default:
			if err := p.w.writeFrame(res.payload, res.flags, len(res.raw), res.meta); err != nil {
				p.setErr(err)
			}
		}
		if res.err == nil && res.flags&SegCompressed != 0 {
			p.putSlab(res.payload)
		}
		p.putSlab(res.raw)
	}
}

// drain seals the pipeline: every submitted segment compresses and emits,
// the goroutines exit, and the first latched failure (if any) returns.
// Called by Flush after the final segment.
func (p *compPipeline) drain() error {
	close(p.jobs)
	p.wg.Wait()
	close(p.order)
	<-p.emDone
	if p.lease != nil {
		p.lease.Release()
	}
	return p.getErr()
}
