// Package trace defines the packet-record model shared by the workload
// generator, the live capture path, the NAT model and the analysis pipeline,
// together with a compact binary on-disk format and pcap import/export.
//
// A Record is one UDP datagram seen at the server's network tap: a timestamp
// (offset from trace start), a direction, the application payload size and
// the client it belongs to. Wire sizes follow the paper's byte accounting
// (payload + 58 B of framing; see internal/units).
//
// Streams move through two consumer interfaces. Handler (one virtual call
// per record) is the compatibility surface; BatchHandler (one call per
// Block, a pooled []Record slab of up to BlockSize records) is the fast
// path that amortizes dispatch at half-a-billion-packet scale. Dispatch
// bridges a block onto either interface, Batch adapts a per-record
// downstream, and Batcher/LockedBatcher adapt per-record producers — so
// any stage composes with any other. Tee fans a stream out, Filter
// subsets it, and SortBuffer restores strict time order to
// bounded-disorder streams for order-sensitive consumers.
//
// Writer/Reader persist streams in a delta-encoded binary format
// (docs/FORMAT.md is the byte-level spec). NewWriter emits format v3:
// records chunk into independently-decodable segments — each payload
// flate-compressed when that makes it smaller — with a segment index and
// footer, so Reader.ReadAllParallel can fan segment decode out across
// worker goroutines with order-preserving reassembly, and
// Reader.ReadAllSharded can hand the decoded blocks straight to a
// BlockIngester (the sharded analysis suite) with no re-batching copy.
// Both fall back to the serial Reader.ReadAllPrefetch scan (which decodes
// ahead on one goroutine, overlapping file I/O with analysis) for v1
// files, non-seekable sources and damaged indexes. PCAP{,NG}Writer and
// ReadPCAP{,NG} exchange traces with standard capture tooling. See
// docs/ARCHITECTURE.md for the end-to-end data flow.
package trace

import (
	"time"

	"cstrace/internal/units"
)

// Direction tells whether a packet travels client→server or server→client.
type Direction uint8

const (
	// In is client → server (the paper's "incoming").
	In Direction = iota
	// Out is server → client (the paper's "outgoing").
	Out
)

// String returns "in" or "out".
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Kind classifies the application message, mirroring the traffic sources the
// paper describes in §II.
type Kind uint8

const (
	// KindGame is real-time action/coordinate state (the dominant source).
	KindGame Kind = iota
	// KindHandshake is connection establishment/teardown traffic.
	KindHandshake
	// KindText is broadcast text messaging.
	KindText
	// KindVoice is broadcast voice communication.
	KindVoice
	// KindDownload is logo/map upload-download traffic (rate-limited).
	KindDownload
	// KindWeb marks TCP bulk-transfer records produced by the web-traffic
	// baseline generator (internal/webtraffic), the contrast workload of
	// the paper's §IV-A. Web records carry App = TCP payload + 12 so that
	// Wire() stays exact despite the larger TCP header; see that package.
	KindWeb
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGame:
		return "game"
	case KindHandshake:
		return "handshake"
	case KindText:
		return "text"
	case KindVoice:
		return "voice"
	case KindDownload:
		return "download"
	case KindWeb:
		return "web"
	}
	return "unknown"
}

// MaxSpan is the longest trace-time timestamp the format accepts: 30 days,
// four times the paper's week-long capture. The Writer rejects records
// beyond it, and every decode path treats a timestamp decoding past it as
// corruption (ErrCorrupt) rather than delivering the record. The cap is a
// plausibility bound, not a storage limit: a flipped bit in a varint
// timestamp delta otherwise decodes to a centuries-long jump, and the
// time-binned collectors downstream would grind through (or allocate) that
// entire span bin by bin. Rejecting the poisoned record at decode keeps a
// corrupt or adversarial trace from turning analysis into a hang — the
// records before the damage still deliver, consistent with the
// records-before-error contract everywhere else.
const MaxSpan = 30 * 24 * time.Hour

// Record is one captured datagram.
type Record struct {
	// T is the offset from the start of the trace.
	T time.Duration
	// Dir is the packet direction relative to the server.
	Dir Direction
	// Kind is the application message class.
	Kind Kind
	// Client identifies the remote client (stable across a session).
	Client uint32
	// App is the application payload size in bytes.
	App uint16
}

// Wire returns the on-the-wire size in bytes under the paper's accounting.
func (r Record) Wire() int { return int(r.App) + units.WireOverhead }

// Handler consumes a stream of records in timestamp order.
type Handler interface {
	Handle(r Record)
}

// HandlerFunc adapts a function to a Handler.
type HandlerFunc func(Record)

// Handle implements Handler.
func (f HandlerFunc) Handle(r Record) { f(r) }

// Fanout delivers one stream to several handlers in order, on the batch
// path whenever a downstream supports it.
type Fanout struct{ hs []Handler }

// Tee fans one stream out to several handlers in order.
func Tee(hs ...Handler) *Fanout { return &Fanout{hs: hs} }

// Handle implements Handler.
func (f *Fanout) Handle(r Record) {
	for _, h := range f.hs {
		h.Handle(r)
	}
}

// HandleBatch implements BatchHandler.
func (f *Fanout) HandleBatch(rs []Record) {
	for _, h := range f.hs {
		Dispatch(h, rs)
	}
}

// FilterHandler passes through only records matching its predicate.
type FilterHandler struct {
	keep    func(Record) bool
	next    Handler
	scratch Block
}

// Filter passes through only records matching keep.
func Filter(keep func(Record) bool, next Handler) *FilterHandler {
	return &FilterHandler{keep: keep, next: next}
}

// Handle implements Handler.
func (f *FilterHandler) Handle(r Record) {
	if f.keep(r) {
		f.next.Handle(r)
	}
}

// HandleBatch implements BatchHandler: matching records compact into a
// scratch block delivered downstream in one call.
func (f *FilterHandler) HandleBatch(rs []Record) {
	f.scratch = f.scratch[:0]
	for _, r := range rs {
		if f.keep(r) {
			f.scratch = append(f.scratch, r)
		}
	}
	Dispatch(f.next, f.scratch)
}

// Collect appends records to a slice; convenient in tests and for small
// windows of a trace.
type Collect struct{ Records []Record }

// Handle implements Handler.
func (c *Collect) Handle(r Record) { c.Records = append(c.Records, r) }

// HandleBatch implements BatchHandler.
func (c *Collect) HandleBatch(rs []Record) { c.Records = append(c.Records, rs...) }

// Merge interleaves multiple individually time-sorted record slices into a
// single time-sorted stream delivered to h in BlockSize batches. Ties
// preserve argument order.
func Merge(h Handler, streams ...[]Record) {
	idx := make([]int, len(streams))
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	for {
		best := -1
		var bestT time.Duration
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			t := s[idx[i]].T
			if best == -1 || t < bestT {
				best, bestT = i, t
			}
		}
		if best == -1 {
			return
		}
		bat.Handle(streams[best][idx[best]])
		idx[best]++
	}
}
