package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// The segment index and footer of the indexed formats (v2+), and the
// parallel read path built on them. The index ("CSIX" frame) duplicates
// every segment's frame header plus its file offset; the fixed-size footer
// at the end of the file points back at the index, so an indexed reader
// needs exactly two reads (footer, then index) before it can fan segment
// decode out across workers. The index is advisory: a serial scanner never
// needs it, and an unreadable index degrades to the serial scan (see
// Reader.ReadAllParallel).

// Index is the parsed segment index of an indexed (v2+) trace.
type Index struct {
	// Version is the trace format version (2, 3 or 4 for an indexed trace).
	Version int
	// Records is the total record count, from the footer.
	Records int64
	// Segments lists every segment in file order.
	Segments []SegmentInfo
}

// PayloadBytes sums the on-disk record payload bytes across segments
// (compressed sizes where segments are compressed).
func (ix *Index) PayloadBytes() int64 {
	var n int64
	for _, s := range ix.Segments {
		n += int64(s.PayloadLen)
	}
	return n
}

// RawBytes sums the decompressed record payload bytes across segments — the
// length of the equivalent v1 record stream. It equals PayloadBytes when no
// segment is compressed.
func (ix *Index) RawBytes() int64 {
	var n int64
	for _, s := range ix.Segments {
		n += int64(s.RawLen)
	}
	return n
}

// CompressedSegments counts the segments stored with a flate-compressed
// payload.
func (ix *Index) CompressedSegments() int {
	var n int
	for _, s := range ix.Segments {
		if s.Compressed() {
			n++
		}
	}
	return n
}

// writeIndexAndFooter appends the "CSIX" frame and the footer. Called by
// Flush after the final segment.
func (w *Writer) writeIndexAndFooter() error {
	indexOff := w.off
	var b []byte
	b = append(b, indexMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.index)))
	for _, si := range w.index {
		b = binary.LittleEndian.AppendUint64(b, uint64(si.Offset))
		b = binary.LittleEndian.AppendUint32(b, uint32(si.PayloadLen))
		b = binary.LittleEndian.AppendUint32(b, uint32(si.Count))
		if w.version >= version3 {
			b = binary.LittleEndian.AppendUint32(b, si.Flags)
			b = binary.LittleEndian.AppendUint32(b, uint32(si.RawLen))
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(si.BaseT))
		b = binary.LittleEndian.AppendUint64(b, uint64(si.MinT))
		b = binary.LittleEndian.AppendUint64(b, uint64(si.MaxT))
	}
	// Footer: records u64 | indexOff u64 | segCount u32 | "CSFT".
	b = binary.LittleEndian.AppendUint64(b, uint64(w.n))
	b = binary.LittleEndian.AppendUint64(b, uint64(indexOff))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.index)))
	b = append(b, footerMagic...)
	_, err := w.w.Write(b)
	w.off += int64(len(b))
	return err
}

// ReadIndex reads and validates the segment index of an indexed trace from
// a random-access source of the given total size. It returns ErrNoIndex for
// a v1 trace, and a descriptive error (wrapping ErrCorrupt where the bytes
// are implausible) when the index or footer is damaged — callers treat any
// error as "scan serially instead".
func ReadIndex(ra io.ReaderAt, size int64) (*Index, error) {
	if size < headerLen+footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes) for an indexed trace", ErrCorrupt, size)
	}
	var hdr [headerLen]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != magic {
		return nil, ErrBadMagic
	}
	switch hdr[4] {
	case version1:
		return nil, ErrNoIndex
	case version2, version3, version4:
	default:
		return nil, ErrBadVersion
	}
	ver := int(hdr[4])
	entryLen := int64(indexEntryLen)
	if ver >= version3 {
		entryLen = indexEntryLenV3
	}

	var foot [footerLen]byte
	if _, err := ra.ReadAt(foot[:], size-footerLen); err != nil {
		return nil, err
	}
	if string(foot[16+4:]) != footerMagic {
		return nil, fmt.Errorf("%w: bad footer magic %q", ErrCorrupt, foot[20:])
	}
	records := int64(binary.LittleEndian.Uint64(foot[0:]))
	indexOff := int64(binary.LittleEndian.Uint64(foot[8:]))
	segCount := int64(binary.LittleEndian.Uint32(foot[16:]))
	indexLen := int64(indexHeaderLen) + segCount*entryLen
	if records < 0 || indexOff < headerLen || indexOff+indexLen != size-footerLen {
		return nil, fmt.Errorf("%w: footer geometry does not match file size", ErrCorrupt)
	}

	raw := make([]byte, indexLen)
	if _, err := ra.ReadAt(raw, indexOff); err != nil {
		return nil, err
	}
	if string(raw[:4]) != indexMagic {
		return nil, fmt.Errorf("%w: bad index marker %q", ErrCorrupt, raw[:4])
	}
	if int64(binary.LittleEndian.Uint32(raw[4:])) != segCount {
		return nil, fmt.Errorf("%w: index and footer disagree on segment count", ErrCorrupt)
	}

	ix := &Index{Version: ver, Records: records, Segments: make([]SegmentInfo, segCount)}
	var sum int64
	nextOff := int64(headerLen)
	b := raw[indexHeaderLen:]
	for i := range ix.Segments {
		si := SegmentInfo{
			Offset:     int64(binary.LittleEndian.Uint64(b[0:])),
			PayloadLen: int(binary.LittleEndian.Uint32(b[8:])),
			Count:      int(binary.LittleEndian.Uint32(b[12:])),
		}
		rest := b[16:]
		if ver >= version3 {
			si.Flags = binary.LittleEndian.Uint32(b[16:])
			rawLen := int(binary.LittleEndian.Uint32(b[20:]))
			rest = b[24:]
			if si.Flags&^segFlagMask(ver) != 0 {
				return nil, fmt.Errorf("%w: index entry %d carries unknown flags %#x", ErrCorrupt, i, si.Flags)
			}
			if si.Compressed() {
				if err := si.setRawLen(rawLen); err != nil {
					return nil, fmt.Errorf("index entry %d: %w", i, err)
				}
			} else if rawLen != si.PayloadLen {
				return nil, fmt.Errorf("%w: index entry %d raw/payload mismatch on uncompressed segment", ErrCorrupt, i)
			} else {
				si.RawLen = rawLen
			}
		} else {
			si.RawLen = si.PayloadLen
		}
		si.BaseT = sliceDuration(rest[0:])
		si.MinT = sliceDuration(rest[8:])
		si.MaxT = sliceDuration(rest[16:])
		b = b[entryLen:]
		// Segments tile the byte range [header, index) exactly, counts are
		// positive, and the delta-base chain links each segment to its
		// predecessor's last timestamp.
		if si.Offset != nextOff || si.Count <= 0 || si.PayloadLen <= 0 ||
			si.MinT < si.BaseT || si.MaxT < si.MinT {
			return nil, fmt.Errorf("%w: index entry %d implausible", ErrCorrupt, i)
		}
		if i == 0 {
			if si.BaseT != 0 {
				return nil, fmt.Errorf("%w: first segment delta base %v, want 0", ErrCorrupt, si.BaseT)
			}
		} else if si.BaseT != ix.Segments[i-1].MaxT {
			return nil, fmt.Errorf("%w: index entry %d breaks the timestamp chain", ErrCorrupt, i)
		}
		nextOff = si.Offset + int64(si.frameHeaderLen(ver)) + int64(si.PayloadLen)
		sum += int64(si.Count)
		ix.Segments[i] = si
	}
	if nextOff != indexOff {
		return nil, fmt.Errorf("%w: segments end at %d but index starts at %d", ErrCorrupt, nextOff, indexOff)
	}
	if sum != records {
		return nil, fmt.Errorf("%w: index counts %d records, footer says %d", ErrCorrupt, sum, records)
	}
	return ix, nil
}

func sliceDuration(b []byte) time.Duration {
	return time.Duration(binary.LittleEndian.Uint64(b))
}

// seekerAt is what the indexed read path needs from the source.
type seekerAt interface {
	io.ReaderAt
	io.Seeker
}

// sourceSize probes the source's total size without disturbing its current
// position (the buffered serial reader must stay usable for fallback).
func sourceSize(s io.Seeker) (int64, error) {
	pos, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	size, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	_, err = s.Seek(pos, io.SeekStart)
	return size, err
}

// resolveIndex locates and validates the segment index of an indexed trace,
// or explains in Warning why the indexed read paths must degrade to a
// serial scan (non-seekable source, unknown size, damaged index/footer).
func (r *Reader) resolveIndex() (*Index, bool) {
	sa, ok := r.src.(seekerAt)
	if !ok {
		r.warn = "parallel decode needs a seekable source; using serial scan"
		return nil, false
	}
	size, err := sourceSize(sa)
	if err != nil {
		r.warn = fmt.Sprintf("parallel decode: source size unavailable (%v); using serial scan", err)
		return nil, false
	}
	ix, err := ReadIndex(sa, size)
	if err != nil {
		if r.Salvage {
			// Salvage mode: rebuild the index over the intact segment
			// prefix and decode through it as if the file were sealed; the
			// torn tail is dropped rather than surfaced as corruption.
			if rix, rep, rerr := Recover(sa, size); rerr == nil {
				r.warn = fmt.Sprintf("segment index unreadable (%v); salvaged %d intact segments (%d records, %d bytes dropped)",
					err, rep.Segments, rep.Records, rep.DroppedBytes())
				return rix, true
			}
		}
		r.warn = fmt.Sprintf("segment index unreadable (%v); using serial scan", err)
		return nil, false
	}
	return ix, true
}

// ReadAllParallel drains the stream into h exactly as ReadAll does, but for
// an indexed (v2/v3) trace on a seekable source (an *os.File, a
// *bytes.Reader, …) it decodes file segments on up to workers goroutines:
// an order-preserving reassembly stage delivers each segment's pooled
// blocks to h in file order, so the delivered stream — and any report
// computed from it — is byte-identical to the serial paths.
//
// Degraded cases fall back to the serial ReadAllPrefetch scan, latching an
// explanation in Warning when the degradation is unexpected: a
// non-seekable source, or a truncated/corrupt index or footer. A v1 trace
// (no index can exist) and workers ≤ 1 select the serial scan silently.
// Call it on a fresh Reader.
//
// When h can consume whole decoded blocks in-place, ReadAllSharded removes
// the reassembly stage's per-record copy as well.
func (r *Reader) ReadAllParallel(h Handler, workers int) (int64, error) {
	if !r.init {
		if err := r.readHeader(); err != nil {
			return 0, err
		}
	}
	if r.version == version1 || workers <= 1 {
		return r.ReadAllPrefetch(h)
	}
	ix, ok := r.resolveIndex()
	if !ok {
		return r.ReadAllPrefetch(h)
	}
	n, err := parallelDecode(r.src.(seekerAt), ix, workers, Batch(h))
	if err != nil && r.err == nil {
		// Same contract as the serial paths: the full wrapped error (which
		// preserves the I/O cause via %w) is reachable from Err even when
		// the caller only inspects the ErrCorrupt sentinel.
		r.err = err
	}
	return n, err
}

// segResult carries one decoded segment from a worker to the reassembly
// stage. On error the blocks decoded before the corruption are still
// delivered, preserving ReadAll's records-before-error semantics.
type segResult struct {
	blocks []*Block
	err    error
}

// parallelDecode fans segment decode out across workers and reassembles in
// file order. In-flight segments are bounded by a token budget so decode
// cannot run arbitrarily ahead of a slow consumer.
func parallelDecode(ra io.ReaderAt, ix *Index, workers int, bh BatchHandler) (int64, error) {
	segs := ix.Segments
	if len(segs) == 0 {
		return 0, nil
	}
	if workers > len(segs) {
		workers = len(segs)
	}

	results := make([]chan segResult, len(segs))
	for i := range results {
		results[i] = make(chan segResult, 1)
	}
	jobs := make(chan int)
	stop := make(chan struct{})
	// tokens bounds in-flight segments (decoding or decoded-but-undelivered)
	// to roughly 2× the worker count.
	tokens := make(chan struct{}, 2*workers)
	go func() {
		defer close(jobs)
		for i := range segs {
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc segScratch
			for i := range jobs {
				var res segResult
				res.blocks, res.err = readSegmentAt(ra, segs[i], ix.Version, &sc)
				results[i] <- res
			}
		}()
	}

	var n int64
	var firstErr error
	for i := 0; i < len(segs) && firstErr == nil; i++ {
		res := <-results[i]
		// Blocks decoded before a mid-segment corruption still deliver.
		for _, blk := range res.blocks {
			bh.HandleBatch(*blk)
			n += int64(len(*blk))
			FreeBlock(blk)
		}
		if res.err != nil {
			firstErr = res.err
			close(stop)
		} else {
			<-tokens
		}
	}
	if firstErr != nil {
		// Undispatched segments never produce a result, so the in-order
		// loop must not wait on them; workers finish their outstanding
		// jobs (result channels are buffered) and the stragglers' blocks
		// are recycled off-path.
		go func() {
			wg.Wait()
			for _, ch := range results {
				select {
				case res := <-ch:
					for _, blk := range res.blocks {
						FreeBlock(blk)
					}
				default:
				}
			}
		}()
	}
	return n, firstErr
}
