package trace

import (
	"io"
	"net/netip"
	"time"

	"cstrace/internal/packet"
	"cstrace/internal/pcap"
	"cstrace/internal/units"
)

// Default addressing used when materializing records as packets. The game
// port is Half-Life's standard 27015; clients get synthetic addresses
// derived from their id.
var (
	DefaultServerAddr = netip.AddrFrom4([4]byte{10, 10, 0, 1})
	DefaultServerPort = uint16(27015)
)

// ClientAddr maps a client id to a stable synthetic IPv4 address outside the
// server's subnet.
func ClientAddr(client uint32) netip.Addr {
	// Spread ids across 172.16.0.0/12-style space, avoiding .0 and .255.
	b := [4]byte{
		172,
		byte(16 + (client>>16)&0x0f),
		byte(client >> 8),
		byte(client),
	}
	if b[3] == 0 {
		b[3] = 1
	}
	if b[3] == 255 {
		b[3] = 254
	}
	return netip.AddrFrom4(b)
}

// ClientPort maps a client id to a stable synthetic UDP source port.
func ClientPort(client uint32) uint16 {
	return uint16(20000 + client%40000)
}

// frameWriter is the packet-record sink shared by the classic pcap and
// pcapng writers.
type frameWriter interface {
	WritePacket(ci pcap.CaptureInfo, data []byte) error
}

// PCAPWriter materializes records as Ethernet/IPv4/UDP frames in a pcap or
// pcapng file. Payload bytes are zero-filled: the study analyzes sizes and
// timing, not payload content.
type PCAPWriter struct {
	w          frameWriter
	ser        packet.Serializer
	start      time.Time
	serverAddr netip.Addr
	serverPort uint16
	payload    []byte
}

// NewPCAPWriter creates a PCAPWriter emitting the classic libpcap format.
// start anchors record offsets to absolute capture timestamps.
func NewPCAPWriter(w io.Writer, start time.Time) *PCAPWriter {
	return newPCAPWriter(pcap.NewWriter(w, pcap.LinkTypeEthernet, 65535), start)
}

// NewPCAPNGWriter creates a PCAPWriter emitting pcapng.
func NewPCAPNGWriter(w io.Writer, start time.Time) *PCAPWriter {
	return newPCAPWriter(pcap.NewNgWriter(w, pcap.LinkTypeEthernet, 65535), start)
}

func newPCAPWriter(fw frameWriter, start time.Time) *PCAPWriter {
	return &PCAPWriter{
		w:          fw,
		start:      start,
		serverAddr: DefaultServerAddr,
		serverPort: DefaultServerPort,
		payload:    make([]byte, 65535),
	}
}

// Write materializes one record.
func (pw *PCAPWriter) Write(r Record) error {
	eth := packet.Ethernet{HasVLAN: true, VLANID: 2}
	ip := packet.IPv4{TTL: 64}
	udp := packet.UDP{}
	if r.Dir == In {
		ip.Src = ClientAddr(r.Client)
		ip.Dst = pw.serverAddr
		udp.SrcPort = ClientPort(r.Client)
		udp.DstPort = pw.serverPort
	} else {
		ip.Src = pw.serverAddr
		ip.Dst = ClientAddr(r.Client)
		udp.SrcPort = pw.serverPort
		udp.DstPort = ClientPort(r.Client)
	}
	frame, err := pw.ser.Frame(&eth, &ip, &udp, pw.payload[:r.App])
	if err != nil {
		return err
	}
	ci := pcap.CaptureInfo{
		Timestamp:     pw.start.Add(r.T),
		CaptureLength: len(frame),
		// The frame on disk omits preamble/SFD/FCS; wire length per the
		// paper's accounting includes them.
		Length: r.Wire() - units.EthernetPreambleSFD - units.EthernetFCS,
	}
	return pw.w.WritePacket(ci, frame)
}

// frameReader is the packet-record source shared by the classic pcap and
// pcapng readers.
type frameReader interface {
	ReadPacket() (pcap.CaptureInfo, []byte, error)
}

// ReadPCAP parses a classic pcap file of game traffic, classifying direction
// by the server endpoint, and feeds records to h. Packets that do not decode
// as Ethernet/IPv4/UDP or that do not involve serverAddr are skipped; the
// skip count is returned alongside the record count.
func ReadPCAP(r io.Reader, serverAddr netip.Addr, serverPort uint16, h Handler) (records, skipped int64, err error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return 0, 0, err
	}
	return readFrames(pr, serverAddr, serverPort, h)
}

// ReadPCAPNG is ReadPCAP for pcapng captures.
func ReadPCAPNG(r io.Reader, serverAddr netip.Addr, serverPort uint16, h Handler) (records, skipped int64, err error) {
	pr, err := pcap.NewNgReader(r)
	if err != nil {
		return 0, 0, err
	}
	return readFrames(pr, serverAddr, serverPort, h)
}

func readFrames(pr frameReader, serverAddr netip.Addr, serverPort uint16, h Handler) (records, skipped int64, err error) {
	var parser packet.Parser
	var decoded []packet.LayerType
	var start time.Time
	clientIDs := make(map[packet.Endpoint]uint32)
	bat := NewBatcher(Batch(h))
	defer bat.Close()
	for {
		ci, data, err := pr.ReadPacket()
		if err == io.EOF {
			return records, skipped, nil
		}
		if err != nil {
			return records, skipped, err
		}
		if parser.DecodeLayers(data, &decoded) != nil ||
			len(decoded) < 3 || decoded[2] != packet.LayerTypeUDP {
			skipped++
			continue
		}
		var dir Direction
		var remote packet.Endpoint
		switch {
		case parser.IP.Dst == serverAddr && parser.UDP.DstPort == serverPort:
			dir = In
			remote = packet.Endpoint{Addr: parser.IP.Src, Port: parser.UDP.SrcPort}
		case parser.IP.Src == serverAddr && parser.UDP.SrcPort == serverPort:
			dir = Out
			remote = packet.Endpoint{Addr: parser.IP.Dst, Port: parser.UDP.DstPort}
		default:
			skipped++
			continue
		}
		id, ok := clientIDs[remote]
		if !ok {
			id = uint32(len(clientIDs) + 1)
			clientIDs[remote] = id
		}
		if start.IsZero() {
			start = ci.Timestamp
		}
		bat.Handle(Record{
			T:      ci.Timestamp.Sub(start),
			Dir:    dir,
			Client: id,
			App:    uint16(len(parser.AppPayload)),
		})
		records++
	}
}
