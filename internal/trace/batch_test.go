package trace

import (
	"errors"
	"testing"
	"time"
)

// testStream builds a deterministic stream with the generator's disorder
// profile: mostly increasing timestamps with bounded interleaving, mixed
// directions, kinds and clients.
func testStream(n int) []Record {
	recs := make([]Record, 0, n)
	state := uint64(0x1234_5678_9abc_def0)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	t := time.Duration(0)
	for i := 0; i < n; i++ {
		t += time.Duration(next() % 2_000_000)       // 0-2 ms forward progress
		jitter := time.Duration(next() % 40_000_000) // up to 40 ms back
		rt := t - jitter
		if rt < 0 {
			rt = 0
		}
		recs = append(recs, Record{
			T:      rt,
			Dir:    Direction(next() % 2),
			Kind:   Kind(next() % 6),
			Client: uint32(next() % 30),
			App:    uint16(next() % 1400),
		})
	}
	return recs
}

// feedRecords drives h one record at a time.
func feedRecords(h Handler, recs []Record) {
	for _, r := range recs {
		h.Handle(r)
	}
}

// feedBlocks drives h through the batch path in uneven block sizes, so
// boundaries never align with internal buffers.
func feedBlocks(h Handler, recs []Record) {
	sizes := []int{1, 7, 64, 512, BlockSize, 3}
	i, k := 0, 0
	for i < len(recs) {
		n := sizes[k%len(sizes)]
		k++
		if i+n > len(recs) {
			n = len(recs) - i
		}
		Dispatch(h, recs[i:i+n])
		i += n
	}
}

func equalStreams(t *testing.T, name string, want, got []Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: record path produced %d records, batch path %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: records diverge at %d: %+v vs %+v", name, i, want[i], got[i])
		}
	}
}

// TestBatchGoldenTee: Tee delivers identical streams to every downstream on
// both paths.
func TestBatchGoldenTee(t *testing.T) {
	recs := testStream(20_000)
	var a1, a2, b1, b2 Collect
	feedRecords(Tee(&a1, &a2), recs)
	feedBlocks(Tee(&b1, &b2), recs)
	equalStreams(t, "tee[0]", a1.Records, b1.Records)
	equalStreams(t, "tee[1]", a2.Records, b2.Records)
}

// TestBatchGoldenFilter: the batch path compacts exactly the records the
// per-record path passes.
func TestBatchGoldenFilter(t *testing.T) {
	recs := testStream(20_000)
	keep := func(r Record) bool { return r.Dir == Out && r.App > 100 }
	var a, b Collect
	feedRecords(Filter(keep, &a), recs)
	feedBlocks(Filter(keep, &b), recs)
	equalStreams(t, "filter", a.Records, b.Records)
}

// TestBatchGoldenSortBuffer: both heap paths release the same totally
// ordered stream, including tie order.
func TestBatchGoldenSortBuffer(t *testing.T) {
	recs := testStream(20_000)
	var a, b Collect
	sa := NewSortBuffer(50*time.Millisecond, &a)
	feedRecords(sa, recs)
	sa.Flush()
	sb := NewSortBuffer(50*time.Millisecond, &b)
	feedBlocks(sb, recs)
	sb.Flush()
	equalStreams(t, "sortbuffer", a.Records, b.Records)
	for i := 1; i < len(b.Records); i++ {
		if b.Records[i].T < b.Records[i-1].T {
			t.Fatalf("sortbuffer output out of order at %d", i)
		}
	}
}

// TestSortBufferMixedFeeds interleaves the per-record and batch entry
// points; the released stream must still match the pure per-record feed
// (both are the (T, seq) total order of the input).
func TestSortBufferMixedFeeds(t *testing.T) {
	recs := testStream(20_000)
	var a, b Collect
	sa := NewSortBuffer(50*time.Millisecond, &a)
	feedRecords(sa, recs)
	sa.Flush()

	sb := NewSortBuffer(50*time.Millisecond, &b)
	for i := 0; i < len(recs); {
		n := 257 // batch chunk
		if i/257%2 == 1 {
			n = 91 // record-at-a-time chunk
		}
		if i+n > len(recs) {
			n = len(recs) - i
		}
		chunk := recs[i : i+n]
		if i/257%2 == 1 {
			feedRecords(sb, chunk)
		} else {
			sb.HandleBatch(chunk)
		}
		i += n
	}
	sb.Flush()
	equalStreams(t, "mixed", a.Records, b.Records)
}

// TestBatchGoldenComposite runs the stream through the full stage stack
// (filter → sort → tee) on both paths.
func TestBatchGoldenComposite(t *testing.T) {
	recs := testStream(20_000)
	build := func(c *Collect) (Handler, *SortBuffer) {
		sb := NewSortBuffer(50*time.Millisecond, Tee(c))
		return Filter(func(r Record) bool { return r.Kind != KindWeb }, sb), sb
	}
	var a, b Collect
	ha, sa := build(&a)
	feedRecords(ha, recs)
	sa.Flush()
	hb, sbuf := build(&b)
	feedBlocks(hb, recs)
	sbuf.Flush()
	equalStreams(t, "composite", a.Records, b.Records)
}

// TestBatcherBridges verifies the per-record → block bridge preserves order
// across interleaved Handle and HandleBatch calls.
func TestBatcherBridges(t *testing.T) {
	recs := testStream(10_000)
	var got Collect
	ba := NewBatcher(&got)
	for i, r := range recs {
		if i%97 == 0 && i+5 <= len(recs) {
			ba.HandleBatch(recs[i : i+5])
		}
		ba.Handle(r)
	}
	ba.Flush()
	// Order within the mixed feed is deterministic; replay it to build the
	// expected stream.
	var want Collect
	for i, r := range recs {
		if i%97 == 0 && i+5 <= len(recs) {
			want.HandleBatch(recs[i : i+5])
		}
		want.Handle(r)
	}
	equalStreams(t, "batcher", want.Records, got.Records)
}

type failWriter struct{ n, failAt int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > f.failAt {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// TestWriterLatchesErrors: the Handler paths latch the first error and both
// Err and Flush surface it, instead of silently discarding records.
func TestWriterLatchesErrors(t *testing.T) {
	fw := &failWriter{failAt: 64}
	w := NewWriter(fw)
	recs := testStream(100_000) // enough to overflow the 64 KiB bufio buffer
	sb := NewSortBuffer(50*time.Millisecond, w)
	feedBlocks(sb, recs)
	sb.Flush()
	if w.Err() == nil {
		t.Fatal("Err() = nil after downstream write failure")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush() = nil after downstream write failure")
	}

	// The per-record Handle path latches too.
	fw2 := &failWriter{failAt: 64}
	w2 := NewWriter(fw2)
	for _, r := range recs {
		w2.Handle(r)
	}
	if w2.Err() == nil || w2.Flush() == nil {
		t.Fatal("per-record path did not latch the write failure")
	}
}

// TestBlockPoolRoundTrip: NewBlock hands back cleared slabs.
func TestBlockPoolRoundTrip(t *testing.T) {
	b := NewBlock()
	*b = append(*b, Record{App: 1})
	FreeBlock(b)
	b2 := NewBlock()
	if len(*b2) != 0 {
		t.Fatalf("pooled block not cleared: len %d", len(*b2))
	}
	if cap(*b2) < BlockSize {
		t.Fatalf("pooled block cap %d < BlockSize", cap(*b2))
	}
	FreeBlock(b2)
}
