package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// v4recs builds the deterministic test stream shared by the v4 tests.
func v4recs(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			T:      time.Duration(i) * 173 * time.Microsecond,
			Dir:    Direction(i % 2),
			Kind:   Kind(i % 5),
			Client: uint32(i % 31),
			App:    uint16(20 + i%300),
		})
	}
	return recs
}

// writeStream encodes recs through a configured writer and returns the bytes.
func writeStream(t *testing.T, recs []Record, configure func(w *Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if configure != nil {
		configure(w)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriterParallelDeterministic: for a given (version, level), the file
// bytes must be identical whatever the worker count — the asynchronous
// compression pipeline reorders work, never output. This is the golden
// determinism pin for the write-side pipeline.
func TestWriterParallelDeterministic(t *testing.T) {
	recs := v4recs(30000)
	base := writeStream(t, recs, func(w *Writer) { w.SegmentPayload = 1 << 10 })
	for _, workers := range []int{2, 3, 8} {
		got := writeStream(t, recs, func(w *Writer) {
			w.SegmentPayload = 1 << 10
			w.Workers = workers
		})
		if !bytes.Equal(got, base) {
			t.Fatalf("Workers=%d output diverges from serial (%d vs %d bytes)", workers, len(got), len(base))
		}
	}
	// Same property for the v3 whole-payload compressor.
	var v3base, v3par bytes.Buffer
	for _, out := range []*bytes.Buffer{&v3base, &v3par} {
		w := NewWriterV3(out)
		w.SegmentPayload = 1 << 10
		if out == &v3par {
			w.Workers = 4
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(v3base.Bytes(), v3par.Bytes()) {
		t.Fatal("v3 Workers=4 output diverges from serial")
	}
}

// TestWriterAsyncErrorLatches: a failure on a compression worker surfaces
// from Flush and Err instead of silently truncating the file.
func TestWriterAsyncErrorLatches(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SegmentPayload = 64
	w.Workers = 4
	w.CompressLevel = 42 // invalid: every deflate attempt fails
	for _, r := range v4recs(2000) {
		if err := w.Write(r); err != nil {
			break // the latched failure may surface mid-stream; that is fine
		}
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush swallowed the worker failure")
	}
	if w.Err() == nil {
		t.Fatal("Err() did not latch the worker failure")
	}
}

// TestWriterSortWindow: a bounded-disorder stream written through SortWindow
// must produce byte-identical output to the same records pre-sorted — and a
// sorted stream must be unaffected by the window.
func TestWriterSortWindow(t *testing.T) {
	const n = 20000
	sorted := v4recs(n)
	// Bounded disorder: reverse disjoint chunks of 8, displacing each record
	// at most 7*173 µs — well inside the 10 ms window.
	shuffled := append([]Record{}, sorted...)
	for i := 0; i+8 <= len(shuffled); i += 8 {
		for a, b := i, i+7; a < b; a, b = a+1, b-1 {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		}
	}
	base := writeStream(t, sorted, func(w *Writer) { w.SegmentPayload = 1 << 10 })
	for name, cfg := range map[string]struct {
		recs    []Record
		workers int
	}{
		"sorted-with-window":   {sorted, 0},
		"shuffled":             {shuffled, 0},
		"shuffled-and-workers": {shuffled, 4},
	} {
		got := writeStream(t, cfg.recs, func(w *Writer) {
			w.SegmentPayload = 1 << 10
			w.SortWindow = 10 * time.Millisecond
			w.Workers = cfg.workers
		})
		if !bytes.Equal(got, base) {
			t.Fatalf("%s: output diverges from plain sorted write (%d vs %d bytes)", name, len(got), len(base))
		}
	}
}

// TestWriterSortWindowTies: records with equal timestamps keep their arrival
// order through the sort buffer, matching SortBuffer's total order.
func TestWriterSortWindowTies(t *testing.T) {
	recs := []Record{
		{T: 0, Client: 1},
		{T: 2 * time.Millisecond, Client: 2},
		{T: time.Millisecond, Client: 3},
		{T: time.Millisecond, Client: 4}, // tie with the previous: stays after it
		{T: 3 * time.Millisecond, Client: 5},
	}
	raw := writeStream(t, recs, func(w *Writer) { w.SortWindow = 10 * time.Millisecond })
	var got Collect
	if _, err := NewReader(bytes.NewReader(raw)).ReadAll(&got); err != nil {
		t.Fatal(err)
	}
	wantClients := []uint32{1, 3, 4, 2, 5}
	for i, want := range wantClients {
		if got.Records[i].Client != want {
			t.Fatalf("record %d client = %d, want %d (order %v)", i, got.Records[i].Client, want, got.Records)
		}
	}
}

// TestWriterSortWindowExceeded: a record arriving further behind the
// high-water mark than the window is an error, not silent misordering.
func TestWriterSortWindowExceeded(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SortWindow = time.Millisecond
	if err := w.Write(Record{T: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{T: 5 * time.Millisecond}); err == nil {
		t.Fatal("Write accepted a record 5 ms behind the high-water mark with a 1 ms window")
	}
}

// columnCollect implements ColumnIngester: it records which delivery surface
// each chunk arrived on while accumulating the interleaved stream for
// comparison.
type columnCollect struct {
	records    []Record
	colIngests int
}

func (c *columnCollect) Handle(r Record)         { c.records = append(c.records, r) }
func (c *columnCollect) HandleBatch(rs []Record) { c.records = append(c.records, rs...) }
func (c *columnCollect) IngestBlock(blk *Block) {
	c.records = append(c.records, *blk...)
	FreeBlock(blk)
}
func (c *columnCollect) IngestColumns(cb *ColumnBlock) {
	c.colIngests++
	c.records = cb.AppendRecords(c.records)
	FreeColumnBlock(cb)
}

// TestShardedColumnDelivery: a column-aware sink on a v4 trace receives the
// segments as ColumnBlocks — in file order, interleaving to the exact serial
// stream — and actually takes the column path.
func TestShardedColumnDelivery(t *testing.T) {
	const n = 20000
	recs, raw := versionStream(t, 4, n, 1<<10)
	for _, workers := range []int{2, 3, 8} {
		got := &columnCollect{}
		rd := NewReader(bytes.NewReader(raw))
		pn, err := rd.ReadAllSharded(got, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.colIngests == 0 {
			t.Fatalf("workers=%d: column-aware sink never received columns", workers)
		}
		if pn != int64(n) || len(got.records) != n {
			t.Fatalf("workers=%d: delivered %d/%d records", workers, pn, len(got.records))
		}
		for i := range recs {
			if got.records[i] != recs[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v", workers, i, got.records[i], recs[i])
			}
		}
	}
}

// TestV4ReservedFlagBit: a set flag bit outside the v4 mask must fail closed
// — ErrCorrupt from the frame parse, the index parse, and the parallel
// cross-check — because an unknown payload layout cannot be skipped.
func TestV4ReservedFlagBit(t *testing.T) {
	const n = 9000
	_, raw := versionStream(t, 4, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	seg := ix.Segments[2]
	minDelivered := int64(ix.Segments[0].Count + ix.Segments[1].Count)

	// Frame path: bit 2 set in segment 2's frame flags (offset+12).
	mutFrame := append([]byte{}, raw...)
	binary.LittleEndian.PutUint32(mutFrame[seg.Offset+12:], seg.Flags|1<<2)
	var serial Collect
	sn, serr := NewReader(bytes.NewReader(mutFrame)).ReadAllPrefetch(&serial)
	if !errors.Is(serr, ErrCorrupt) {
		t.Fatalf("serial err = %v, want ErrCorrupt", serr)
	}
	if sn != minDelivered {
		t.Fatalf("serial delivered %d records, want exactly %d (reserved bit must fail closed)", sn, minDelivered)
	}
	for _, workers := range []int{4} {
		for name, read := range map[string]func(rd *Reader, h Handler) (int64, error){
			"parallel": func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllParallel(h, workers) },
			"sharded":  func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllSharded(h, workers) },
		} {
			got := &columnCollect{}
			pn, perr := read(NewReader(bytes.NewReader(mutFrame)), got)
			if !errors.Is(perr, ErrCorrupt) {
				t.Fatalf("%s: err = %v, want ErrCorrupt", name, perr)
			}
			if pn != minDelivered {
				t.Fatalf("%s: delivered %d records, want exactly %d", name, pn, minDelivered)
			}
		}
	}

	// Index path: the same bit in the index entry is rejected up front.
	footOff := int64(len(raw)) - footerLen
	indexOff := int64(binary.LittleEndian.Uint64(raw[footOff+8:]))
	entryOff := indexOff + indexHeaderLen + 2*indexEntryLenV3
	mutIndex := append([]byte{}, raw...)
	binary.LittleEndian.PutUint32(mutIndex[entryOff+16:], seg.Flags|1<<2)
	if _, err := ReadIndex(bytes.NewReader(mutIndex), int64(len(mutIndex))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("index: err = %v, want ErrCorrupt", err)
	}
}

// TestV4ColumnHeaderMismatch: a column header whose flags-run length
// disagrees with the record count, or whose run sizes do not sum to the
// declared raw length, fails closed with no records from that segment.
func TestV4ColumnHeaderMismatch(t *testing.T) {
	const n = 9000
	recs := v4recs(n)
	raw := writeStream(t, recs, func(w *Writer) {
		w.SegmentPayload = 1 << 10
		w.CompressLevel = CompressOff // raw column header sits in the file
	})
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	seg := ix.Segments[2]
	minDelivered := int64(ix.Segments[0].Count + ix.Segments[1].Count)
	payloadOff := seg.Offset + int64(seg.frameHeaderLen(4))

	lens, _ := parseColHeader(raw[payloadOff:])
	cases := map[string]func(b []byte){
		// One extra flags byte claimed: count mismatch.
		"flags-count": func(b []byte) {
			binary.LittleEndian.PutUint32(b[payloadOff+4:], uint32(seg.Count+1))
		},
		// Deltas run shrunk by one: the sum no longer matches RawLen.
		"run-sum": func(b []byte) {
			binary.LittleEndian.PutUint32(b[payloadOff:], uint32(lens[0]-1))
		},
	}
	for name, mutate := range cases {
		bad := append([]byte{}, raw...)
		mutate(bad)
		var serial Collect
		sn, serr := NewReader(bytes.NewReader(bad)).ReadAllPrefetch(&serial)
		if !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("%s: serial err = %v, want ErrCorrupt", name, serr)
		}
		if sn != minDelivered {
			t.Fatalf("%s: serial delivered %d records, want exactly %d (header damage fails closed)", name, sn, minDelivered)
		}
		for path, read := range map[string]func(rd *Reader, h Handler) (int64, error){
			"parallel": func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllParallel(h, 4) },
			"sharded":  func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllSharded(h, 4) },
		} {
			got := &columnCollect{}
			pn, perr := read(NewReader(bytes.NewReader(bad)), got)
			if !errors.Is(perr, ErrCorrupt) {
				t.Fatalf("%s/%s: err = %v, want ErrCorrupt", name, path, perr)
			}
			if pn != minDelivered || int64(len(got.records)) != pn {
				t.Fatalf("%s/%s: delivered %d records, want exactly %d", name, path, pn, minDelivered)
			}
		}
	}
}

// TestV4CorruptColumnRuns: damage inside a compressed column run —
// truncation, a flipped byte, oversized stored length — surfaces ErrCorrupt
// on every read path with all records of the preceding segments delivered.
func TestV4CorruptColumnRuns(t *testing.T) {
	const n = 9000
	_, raw := versionStream(t, 4, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	for i := 2; i < len(ix.Segments)-1; i++ {
		if ix.Segments[i].Compressed() {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no compressed columnar segment to damage; per-run compression not engaging?")
	}
	seg := ix.Segments[target]
	payloadOff := seg.Offset + int64(seg.frameHeaderLen(4))
	minDelivered := int64(0)
	for _, si := range ix.Segments[:target] {
		minDelivered += int64(si.Count)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte{}, raw...))
	}
	cases := map[string][]byte{
		// The file ends inside the stored runs: serial truncated-tail scan.
		"truncated-file": raw[:payloadOff+int64(seg.PayloadLen)/2],
		// A flipped byte inside a stored run.
		"bit-flip": mutate(func(b []byte) []byte {
			b[payloadOff+int64(seg.PayloadLen)/2] ^= 0xFF
			return b
		}),
		// A stored run claiming more bytes than its raw size.
		"stored-oversize": mutate(func(b []byte) []byte {
			rawL, _ := parseColHeader(b[payloadOff:])
			binary.LittleEndian.PutUint32(b[payloadOff+colHeaderLen:], uint32(rawL[0]+1))
			return b
		}),
	}
	for name, bad := range cases {
		var serial Collect
		sn, serr := NewReader(bytes.NewReader(bad)).ReadAllPrefetch(&serial)
		if !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("%s: serial err = %v, want ErrCorrupt", name, serr)
		}
		if sn < minDelivered || int64(len(serial.Records)) != sn {
			t.Fatalf("%s: serial delivered %d records before error, want ≥ %d", name, sn, minDelivered)
		}

		if name == "truncated-file" {
			continue // no index survives: every path is the same serial scan
		}
		for path, read := range map[string]func(rd *Reader, h Handler) (int64, error){
			"parallel": func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllParallel(h, 4) },
			"sharded":  func(rd *Reader, h Handler) (int64, error) { return rd.ReadAllSharded(h, 4) },
		} {
			got := &columnCollect{}
			rd := NewReader(bytes.NewReader(bad))
			pn, perr := read(rd, got)
			if !errors.Is(perr, ErrCorrupt) {
				t.Fatalf("%s/%s: err = %v, want ErrCorrupt", name, path, perr)
			}
			if rd.Err() == nil || !errors.Is(rd.Err(), ErrCorrupt) {
				t.Fatalf("%s/%s: cause not latched: Err() = %v", name, path, rd.Err())
			}
			if pn < minDelivered || int64(len(got.records)) != pn {
				t.Fatalf("%s/%s: delivered %d records before error, want ≥ %d", name, path, pn, minDelivered)
			}
			for i := range serial.Records[:minDelivered] {
				if got.records[i] != serial.Records[i] {
					t.Fatalf("%s/%s: pre-error record %d diverges", name, path, i)
				}
			}
		}
	}
}

// TestReadColumnStats: the per-column totals must tile the index's raw and
// payload byte totals exactly.
func TestReadColumnStats(t *testing.T) {
	const n = 20000
	_, raw := versionStream(t, 4, n, 1<<10)
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ReadColumnStats(bytes.NewReader(raw), ix)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Segments != len(ix.Segments) {
		t.Fatalf("Segments = %d, want %d", cs.Segments, len(ix.Segments))
	}
	if cs.Compressed != ix.CompressedSegments() {
		t.Fatalf("Compressed = %d, want %d", cs.Compressed, ix.CompressedSegments())
	}
	var rawSum, stoSum int64
	for c := range cs.Raw {
		rawSum += cs.Raw[c]
		stoSum += cs.Stored[c]
	}
	// Raw totals exclude the 16-byte raw header per segment; stored totals
	// exclude both headers of compressed segments and the raw header of
	// uncompressed ones.
	wantRaw := ix.RawBytes() - int64(cs.Segments*colHeaderLen)
	wantSto := ix.PayloadBytes() - int64(cs.Segments*colHeaderLen) - int64(cs.Compressed*colHeaderLen)
	if rawSum != wantRaw {
		t.Fatalf("raw columns sum to %d, want %d", rawSum, wantRaw)
	}
	if stoSum != wantSto {
		t.Fatalf("stored columns sum to %d, want %d", stoSum, wantSto)
	}
	if stoSum >= rawSum {
		t.Fatalf("stored %d not smaller than raw %d; compression not engaging", stoSum, rawSum)
	}
}
