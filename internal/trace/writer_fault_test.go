package trace

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"cstrace/internal/faultio"
)

// faultRecord is the deterministic record stream the writer fault tests
// push, matching versionStream's shape.
func faultRecord(i int) Record {
	return Record{
		T:      time.Duration(i) * 173 * time.Microsecond,
		Dir:    Direction(i % 2),
		Kind:   Kind(i % 5),
		Client: uint32(i % 31),
		App:    uint16(20 + i%300),
	}
}

// TestWriterSyncEvery: with SyncEvery = 1 every sealed frame is followed by
// one sync on the sink, plus the final sync in Flush — so at any crash
// point, everything up to the last seal is durable.
func TestWriterSyncEvery(t *testing.T) {
	fw := &faultio.Writer{}
	w := NewWriter(fw)
	w.SegmentPayload = 512
	w.SyncEvery = 1
	for i := 0; i < 4000; i++ {
		if err := w.Write(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := fw.Bytes()
	ix, err := ReadIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	// One sync per sealed segment frame plus the final one after the
	// footer. The index frame itself sits between the last segment sync and
	// the final sync.
	want := len(ix.Segments) + 1
	if fw.Syncs() != want {
		t.Fatalf("observed %d syncs for %d segments, want %d", fw.Syncs(), len(ix.Segments), want)
	}

	// SyncEvery = 3 syncs a third as often (rounding down), final sync
	// included.
	fw3 := &faultio.Writer{}
	w3 := NewWriter(fw3)
	w3.SegmentPayload = 512
	w3.SyncEvery = 3
	for i := 0; i < 4000; i++ {
		if err := w3.Write(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w3.Flush(); err != nil {
		t.Fatal(err)
	}
	frames := len(ix.Segments) // same stream, same sealing
	if got, want := fw3.Syncs(), frames/3+1; got != want {
		t.Fatalf("SyncEvery=3: observed %d syncs for %d frames, want %d", got, frames, want)
	}
}

// TestWriterTornWriteLatches: a write that tears mid-frame must latch — no
// later segment may reach the sink, every later Write and the Flush must
// fail with the torn-write error — and the durable prefix must salvage to
// exactly the records of the frames synced before the tear.
func TestWriterTornWriteLatches(t *testing.T) {
	// First, measure a healthy run to pick a fail point mid-stream.
	probe := &faultio.Writer{}
	pw := NewWriter(probe)
	pw.SegmentPayload = 512
	pw.SyncEvery = 1
	for i := 0; i < 4000; i++ {
		if err := pw.Write(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	failAt := probe.BytesWritten() / 2

	fw := &faultio.Writer{FailAt: failAt, Torn: true}
	w := NewWriter(fw)
	w.SegmentPayload = 512
	w.SyncEvery = 1
	var werr error
	wrote := 0
	for i := 0; i < 4000; i++ {
		if werr = w.Write(faultRecord(i)); werr != nil {
			break
		}
		wrote++
	}
	if werr == nil {
		t.Fatalf("no Write failed with FailAt=%d (%d bytes reached the sink)", failAt, fw.BytesWritten())
	}
	if !errors.Is(werr, faultio.ErrTorn) {
		t.Fatalf("Write failed with %v, want the injected torn-write error", werr)
	}
	// The fault latches at every layer: the writer refuses more records,
	// reports the original cause, and Flush cannot seal.
	if err := w.Write(faultRecord(wrote)); !errors.Is(err, faultio.ErrTorn) {
		t.Fatalf("Write after the tear: %v, want the latched torn-write error", err)
	}
	if err := w.Err(); !errors.Is(err, faultio.ErrTorn) {
		t.Fatalf("Err() = %v, want the latched torn-write error", err)
	}
	if err := w.Flush(); !errors.Is(err, faultio.ErrTorn) {
		t.Fatalf("Flush after the tear: %v, want the latched torn-write error", err)
	}
	if fw.BytesWritten() > failAt {
		t.Fatalf("%d bytes reached the sink after the %d-byte tear point", fw.BytesWritten(), failAt)
	}

	// The durable prefix is a valid segment stream: Recover salvages whole
	// frames, and every salvaged record matches the clean stream.
	raw := fw.Bytes()
	ix, rep, err := Recover(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("recovering the torn prefix: %v", err)
	}
	if len(ix.Segments) == 0 {
		t.Fatalf("nothing salvaged from %d durable bytes (%s)", len(raw), rep)
	}
	var got Collect
	n, err := DecodeIndex(bytes.NewReader(raw), ix, &got, 2)
	if err != nil {
		t.Fatalf("decoding the salvage: %v", err)
	}
	if n > int64(wrote) {
		t.Fatalf("salvage yielded %d records, only %d were accepted", n, wrote)
	}
	for i := range got.Records {
		if got.Records[i] != faultRecord(i) {
			t.Fatalf("salvaged record %d = %+v, want %+v", i, got.Records[i], faultRecord(i))
		}
	}
}

// TestWriterSyncFailureLatches: an fsync that fails latches exactly like a
// failed write — the writer accepts no further records and Flush reports
// the sync error, so a capture whose disk stops persisting is loudly dead
// rather than silently lossy.
func TestWriterSyncFailureLatches(t *testing.T) {
	fw := &faultio.Writer{SyncFailAfter: 2}
	w := NewWriter(fw)
	w.SegmentPayload = 512
	w.SyncEvery = 1
	var werr error
	for i := 0; i < 4000; i++ {
		if werr = w.Write(faultRecord(i)); werr != nil {
			break
		}
	}
	if werr == nil {
		// Stream too short to hit the second seal inline; Flush must still
		// surface it.
		werr = w.Flush()
	}
	if !errors.Is(werr, faultio.ErrSyncFailed) {
		t.Fatalf("sync failure surfaced as %v, want ErrSyncFailed", werr)
	}
	if err := w.Flush(); !errors.Is(err, faultio.ErrSyncFailed) {
		t.Fatalf("Flush after sync failure: %v, want the latched ErrSyncFailed", err)
	}
	// Only the first (successful) sync's frame is trusted; the prefix still
	// salvages cleanly.
	raw := fw.Bytes()
	if _, _, err := Recover(bytes.NewReader(raw), int64(len(raw))); err != nil {
		t.Fatalf("recovering after sync failure: %v", err)
	}
}

// TestWriterAsyncPipelineLatches: with the compression worker pool on, a
// sink failure must still latch — later frames are suppressed, Flush fails,
// and the durable prefix stays salvageable.
func TestWriterAsyncPipelineLatches(t *testing.T) {
	fw := &faultio.Writer{FailAt: 4096}
	w := NewWriter(fw)
	w.SegmentPayload = 512
	w.Workers = 4
	var werr error
	for i := 0; i < 200000; i++ {
		if werr = w.Write(faultRecord(i)); werr != nil {
			break
		}
	}
	ferr := w.Flush()
	if werr == nil && ferr == nil {
		t.Fatalf("neither Write nor Flush surfaced the sink failure (%d bytes written)", fw.BytesWritten())
	}
	if ferr == nil {
		t.Fatal("Flush succeeded over a failed sink")
	}
	if !errors.Is(ferr, faultio.ErrNoSpace) {
		t.Fatalf("Flush error %v, want the injected ErrNoSpace", ferr)
	}
	raw := fw.Bytes()
	ix, _, err := Recover(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("recovering the prefix: %v", err)
	}
	var got Collect
	n, err := DecodeIndex(bytes.NewReader(raw), ix, &got, 2)
	if err != nil {
		t.Fatalf("decoding the salvage: %v", err)
	}
	for i := int64(0); i < n; i++ {
		if got.Records[i] != faultRecord(int(i)) {
			t.Fatalf("salvaged record %d mismatch", i)
		}
	}
}

// TestWriterReleaseSeals: Release pushes reorder-buffered records down into
// segments without sealing the file — the timed pump a live capture runs so
// a kill between batches loses at most SortWindow of tail, not everything.
func TestWriterReleaseSeals(t *testing.T) {
	fw := &faultio.Writer{}
	w := NewWriter(fw)
	w.SegmentPayload = 256
	w.SyncEvery = 1
	w.SortWindow = 5 * time.Millisecond
	n := 300
	for i := 0; i < n; i++ {
		if err := w.Write(faultRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Well under the count-based release threshold: nothing encoded yet.
	before := fw.BytesWritten()
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if fw.BytesWritten() <= before {
		t.Fatalf("Release moved no bytes to the sink (%d before, %d after)", before, fw.BytesWritten())
	}
	// The released, synced prefix salvages on its own…
	raw := fw.Bytes()
	ix, rep, err := Recover(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records == 0 || len(ix.Segments) == 0 {
		t.Fatalf("nothing salvageable after Release: %s", rep)
	}
	var got Collect
	if _, err := DecodeIndex(bytes.NewReader(raw), ix, &got, 2); err != nil {
		t.Fatal(err)
	}
	for i := range got.Records {
		if got.Records[i] != faultRecord(i) {
			t.Fatalf("record %d mismatch after Release", i)
		}
	}
	// …and the writer still seals normally with every record intact.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := fw.Bytes()
	var all Collect
	r := NewReader(bytes.NewReader(full))
	total, err := r.ReadAllParallel(&all, 2)
	if err != nil || total != int64(n) {
		t.Fatalf("sealed file after Release: %d records, err %v, want %d", total, err, n)
	}
}
