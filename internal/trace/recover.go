package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Crash recovery for indexed traces. A capture that dies before Flush —
// SIGKILL, disk full, node loss — leaves a file with no footer, no index,
// and possibly a torn final frame. The segment frames before the damage are
// still self-describing (that is the point of duplicating the index fields
// into every frame header), so Recover walks them forward, validates each
// one by fully decoding it, and rebuilds the index the Flush never wrote.
// The existing parallel/sharded read paths then treat the salvaged prefix
// exactly like a sealed file; see docs/FORMAT.md §Recovery rules for what a
// reader may and may not trust without a footer.

// RecoverReport describes what Recover salvaged and why it stopped.
type RecoverReport struct {
	// Version is the trace format version (2–4).
	Version int
	// Sealed is true when the file's own footer and index validated: the
	// returned index is the file's, and nothing needed salvage.
	Sealed bool
	// Segments and Records count what the rebuilt index covers.
	Segments int
	Records  int64
	// GoodBytes is the length of the validated prefix: the header plus
	// every intact segment frame. Bytes past it — a torn frame, a damaged
	// index, trailing garbage — are not represented in the index.
	GoodBytes int64
	// TotalBytes is the scanned file's size.
	TotalBytes int64
	// Reason says why the forward scan stopped where it did.
	Reason string
}

// DroppedBytes returns how many trailing bytes the salvage left behind.
func (rep *RecoverReport) DroppedBytes() int64 { return rep.TotalBytes - rep.GoodBytes }

// String renders the report as the one-line summary the salvage CLI prints.
func (rep *RecoverReport) String() string {
	if rep.Sealed {
		return fmt.Sprintf("sealed v%d trace: %d segments, %d records, %d bytes (%s)",
			rep.Version, rep.Segments, rep.Records, rep.TotalBytes, rep.Reason)
	}
	return fmt.Sprintf("salvaged v%d trace: %d intact segments, %d records, %d/%d bytes kept, %d dropped (%s)",
		rep.Version, rep.Segments, rep.Records, rep.GoodBytes, rep.TotalBytes, rep.DroppedBytes(), rep.Reason)
}

// Recover rebuilds the segment index of a damaged indexed (v2+) trace. When
// the file's own footer and index validate, they are returned as-is (Sealed
// in the report). Otherwise the segment frames are scanned forward from the
// header; every frame whose header parses, whose flags carry no reserved
// bits, whose timestamps chain onto the previous segment, and whose payload
// fully decompresses and decodes with matching record count and MinT/MaxT
// joins the rebuilt index. The scan stops at the first damage — a torn or
// implausible frame, a broken chain, a failed decode — so the returned
// index covers exactly the intact prefix, and decoding through it (Reader.
// Salvage, DecodeIndex) yields byte-identical records to a cleanly written
// file holding the same prefix.
//
// The error is non-nil only when the input cannot be a recoverable indexed
// trace at all: too small for a header, bad magic, unknown version, or v1
// (ErrNoIndex — an unsegmented stream has no frames to salvage; scan it
// serially instead). A header-only file recovers to an empty index.
func Recover(ra io.ReaderAt, size int64) (*Index, *RecoverReport, error) {
	rep := &RecoverReport{TotalBytes: size}
	if size < headerLen {
		return nil, nil, fmt.Errorf("%w: %d bytes is smaller than a trace header", ErrCorrupt, size)
	}
	var hdr [headerLen]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, nil, err
	}
	if string(hdr[:4]) != magic {
		return nil, nil, ErrBadMagic
	}
	switch hdr[4] {
	case version1:
		return nil, nil, ErrNoIndex
	case version2, version3, version4:
	default:
		return nil, nil, ErrBadVersion
	}
	ver := int(hdr[4])
	rep.Version = ver

	// A sealed file's own index is structurally authoritative — it validated
	// against the footer, entry tiling and timestamp chain — but the footer
	// says nothing about the payload bytes. Decode-validate every indexed
	// segment too; on the first failure, keep the intact prefix of the
	// index. This is what lets salvage repair a file whose index survived a
	// crash but whose segment data did not.
	var sc segScratch
	if six, err := ReadIndex(ra, size); err == nil {
		good := int64(headerLen)
		for i, si := range six.Segments {
			if verr := validateSegment(ra, si, ver, &sc); verr != nil {
				ix := &Index{Version: ver, Segments: six.Segments[:i]}
				for _, s := range ix.Segments {
					ix.Records += int64(s.Count)
				}
				rep.Segments = i
				rep.Records = ix.Records
				rep.GoodBytes = good
				rep.Reason = fmt.Sprintf("index is valid but segment at offset %d fails decode (%v); index truncated before it", si.Offset, verr)
				return ix, rep, nil
			}
			good = si.Offset + int64(si.frameHeaderLen(ver)) + int64(si.PayloadLen)
		}
		rep.Sealed = true
		rep.Segments = len(six.Segments)
		rep.Records = six.Records
		rep.GoodBytes = size
		rep.Reason = "footer, index and all segment payloads are valid; nothing to salvage"
		return six, rep, nil
	}

	ix := &Index{Version: ver}
	var prevMax time.Duration
	off := int64(headerLen)
	rep.GoodBytes = off
	stop := func(reason string) (*Index, *RecoverReport, error) {
		rep.Segments = len(ix.Segments)
		rep.Reason = reason
		return ix, rep, nil
	}
	for {
		remain := size - off
		if remain == 0 {
			return stop("file ends cleanly at a segment boundary (missing index and footer)")
		}
		fixed := segHeaderLen
		if ver >= version3 {
			fixed = segHeaderLenV3
		}
		if remain < int64(fixed) {
			return stop(fmt.Sprintf("file ends %d bytes into a frame header at offset %d", remain, off))
		}
		var fh [segHeaderLenV3]byte
		if _, err := ra.ReadAt(fh[:fixed], off); err != nil {
			return stop(fmt.Sprintf("frame header at offset %d unreadable: %v", off, err))
		}
		if string(fh[:4]) == indexMagic {
			return stop("records end at the index frame (footer or index damaged)")
		}
		si, err := parseSegmentHeader(fh[:fixed], ver)
		if err != nil {
			return stop(fmt.Sprintf("frame at offset %d: %v", off, err))
		}
		hl := fixed
		if si.Compressed() {
			if remain < int64(fixed+4) {
				return stop(fmt.Sprintf("file ends inside the compressed-frame header at offset %d", off))
			}
			var rl [4]byte
			if _, err := ra.ReadAt(rl[:], off+int64(fixed)); err != nil {
				return stop(fmt.Sprintf("frame header at offset %d unreadable: %v", off, err))
			}
			if err := si.setRawLen(int(binary.LittleEndian.Uint32(rl[:]))); err != nil {
				return stop(fmt.Sprintf("frame at offset %d: %v", off, err))
			}
			hl = fixed + 4
		}
		// The delta chain is the cheapest strong check: every segment's base
		// must be the previous segment's last timestamp (0 for the first),
		// exactly as ReadIndex enforces on a sealed index.
		if len(ix.Segments) == 0 {
			if si.BaseT != 0 {
				return stop(fmt.Sprintf("frame at offset %d: first segment delta base %v, want 0", off, si.BaseT))
			}
		} else if si.BaseT != prevMax {
			return stop(fmt.Sprintf("frame at offset %d breaks the timestamp chain (base %v, previous segment ends %v)", off, si.BaseT, prevMax))
		}
		frameLen := int64(hl) + int64(si.PayloadLen)
		if remain < frameLen {
			return stop(fmt.Sprintf("segment at offset %d is torn (frame needs %d bytes, %d remain)", off, frameLen, remain))
		}
		si.Offset = off
		// Full validation: the payload must decompress and decode end to
		// end, with the decoded record count and first/last timestamps
		// matching the header. Only segments passing this enter the rebuilt
		// index, which is what makes decoding through it equivalent to a
		// cleanly written file — a salvaged index never points at bytes that
		// merely look like a frame.
		if derr := validateSegment(ra, si, ver, &sc); derr != nil {
			return stop(fmt.Sprintf("segment at offset %d fails decode: %v", off, derr))
		}
		ix.Segments = append(ix.Segments, si)
		ix.Records += int64(si.Count)
		rep.Records = ix.Records
		prevMax = si.MaxT
		off += frameLen
		rep.GoodBytes = off
	}
}

// validateSegment fully decodes one segment — fetch, decompress, decode,
// cross-check record count and MinT/MaxT against the header — and frees the
// decoded blocks. It is the acceptance test a segment must pass before
// Recover will vouch for it.
func validateSegment(ra io.ReaderAt, si SegmentInfo, ver int, sc *segScratch) error {
	payload, err := fetchSegmentPayload(ra, si, ver, sc)
	if err != nil {
		return err
	}
	blocks, derr := decodeSegmentPayload(payload, si)
	for _, blk := range blocks {
		FreeBlock(blk)
	}
	return derr
}

// DecodeIndex streams every record of the segments listed in ix — typically
// one rebuilt by Recover — from ra into h in file order, decoding segments
// on up to workers goroutines (min 1). It is the salvage pipeline's decode
// stage: the same order-preserving parallel decode ReadAllParallel runs on
// a sealed file, minus the footer lookup.
func DecodeIndex(ra io.ReaderAt, ix *Index, h Handler, workers int) (int64, error) {
	if workers < 1 {
		workers = 1
	}
	return parallelDecode(ra, ix, workers, Batch(h))
}
