package trace

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSortBufferRestoresOrder(t *testing.T) {
	var out Collect
	sb := NewSortBuffer(50*time.Millisecond, &out)
	// Two interleaved streams with bounded disorder.
	in := []time.Duration{0, 30, 10, 40, 20, 70, 50, 90, 60, 100}
	for _, ms := range in {
		sb.Handle(Record{T: ms * time.Millisecond, App: uint16(ms)})
	}
	sb.Flush()
	if len(out.Records) != len(in) {
		t.Fatalf("got %d records", len(out.Records))
	}
	for i := 1; i < len(out.Records); i++ {
		if out.Records[i].T < out.Records[i-1].T {
			t.Fatalf("order violated at %d: %v", i, out.Records)
		}
	}
}

func TestSortBufferStableOnTies(t *testing.T) {
	var out Collect
	sb := NewSortBuffer(time.Millisecond, &out)
	for i := 0; i < 5; i++ {
		sb.Handle(Record{T: time.Second, Client: uint32(i)})
	}
	sb.Flush()
	for i, r := range out.Records {
		if r.Client != uint32(i) {
			t.Fatalf("tie order not stable: %v", out.Records)
		}
	}
}

func TestSortBufferReleasesEagerly(t *testing.T) {
	var out Collect
	sb := NewSortBuffer(10*time.Millisecond, &out)
	sb.Handle(Record{T: 0})
	sb.Handle(Record{T: 100 * time.Millisecond})
	// The record at 0 is now 100ms behind the high-water mark: released.
	if len(out.Records) != 1 {
		t.Errorf("expected eager release, pending=%d", sb.Pending())
	}
	if sb.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", sb.Pending())
	}
}

func TestSortBufferProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		var out Collect
		sb := NewSortBuffer(100*time.Millisecond, &out)
		base := 200 * time.Millisecond
		tm := base
		n := 0
		for _, d := range deltas {
			// Non-decreasing walk plus jitter strictly below the slack:
			// disorder is bounded, as the generator guarantees.
			step := time.Duration(d) * time.Millisecond
			if step < 0 {
				step = -step
			}
			tm += step % (20 * time.Millisecond)
			jitter := time.Duration(d%89) * time.Millisecond
			if jitter < 0 {
				jitter = -jitter
			}
			sb.Handle(Record{T: tm + jitter})
			n++
		}
		sb.Flush()
		if len(out.Records) != n {
			return false
		}
		for i := 1; i < len(out.Records); i++ {
			if out.Records[i].T < out.Records[i-1].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
