package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Format v2 segment framing. Each segment is an independently decodable
// chunk of the record stream: its frame header carries everything a decoder
// needs (payload length, record count, and the delta base timestamp), so
// workers can decode segments concurrently from an io.ReaderAt without any
// shared state, and a serial scanner can walk the frames with a plain
// io.Reader. See docs/FORMAT.md for the byte-level specification.

const (
	segMagic    = "CSEG"
	indexMagic  = "CSIX"
	footerMagic = "CSFT"

	// segHeaderLen is the fixed "CSEG" frame header:
	// magic 4 | payloadLen u32 | count u32 | baseT u64 | minT u64 | maxT u64.
	segHeaderLen = 4 + 4 + 4 + 8 + 8 + 8
	// indexEntryLen is one index entry:
	// offset u64 | payloadLen u32 | count u32 | baseT u64 | minT u64 | maxT u64.
	indexEntryLen = 8 + 4 + 4 + 8 + 8 + 8
	// indexHeaderLen is the "CSIX" frame header: magic 4 | segCount u32.
	indexHeaderLen = 4 + 4
	// footerLen is the fixed trailer:
	// records u64 | indexOff u64 | segCount u32 | magic 4.
	footerLen = 8 + 8 + 4 + 4
)

// SegmentInfo describes one v2 segment, as recorded in the index and
// duplicated in the segment's own frame header.
type SegmentInfo struct {
	// Offset is the file offset of the segment frame (its "CSEG" marker).
	Offset int64
	// PayloadLen is the record payload size in bytes (frame header
	// excluded).
	PayloadLen int
	// Count is the number of records in the segment (always ≥ 1; the
	// writer never emits empty segments).
	Count int
	// BaseT is the timestamp of the last record before this segment (0 for
	// the first segment): the segment's first delta is relative to it, so
	// decode needs no other context.
	BaseT time.Duration
	// MinT and MaxT are the timestamps of the segment's first and last
	// record — the seek key for time-range queries.
	MinT, MaxT time.Duration
}

// parseSegmentHeader decodes a "CSEG" frame header.
func parseSegmentHeader(hdr []byte) (SegmentInfo, error) {
	if string(hdr[:4]) != segMagic {
		return SegmentInfo{}, fmt.Errorf("%w: bad segment marker %q", ErrCorrupt, hdr[:4])
	}
	si := SegmentInfo{
		PayloadLen: int(binary.LittleEndian.Uint32(hdr[4:])),
		Count:      int(binary.LittleEndian.Uint32(hdr[8:])),
		BaseT:      time.Duration(binary.LittleEndian.Uint64(hdr[12:])),
		MinT:       time.Duration(binary.LittleEndian.Uint64(hdr[20:])),
		MaxT:       time.Duration(binary.LittleEndian.Uint64(hdr[28:])),
	}
	if si.Count <= 0 || si.PayloadLen <= 0 || si.MinT < si.BaseT || si.MaxT < si.MinT {
		return SegmentInfo{}, fmt.Errorf("%w: implausible segment header", ErrCorrupt)
	}
	return si, nil
}

// nextSegment advances the serial scanner to the next segment frame. It
// returns io.EOF at the clean end of records: the index frame, or — for a
// file whose tail was lost — a bare EOF at a frame boundary (latched as a
// warning, since the records themselves were all recovered).
func (r *Reader) nextSegment() error {
	if r.done {
		return io.EOF
	}
	var mark [4]byte
	if _, err := io.ReadFull(r.r, mark[:]); err != nil {
		if err == io.EOF {
			r.done = true
			if r.warn == "" {
				r.warn = "v2 trace ends without an index frame (truncated tail); all segments before it were recovered"
			}
			return io.EOF
		}
		return r.latch(ErrCorrupt, err)
	}
	switch string(mark[:]) {
	case indexMagic:
		// End of record segments; the rest of the file is index + footer,
		// which the serial scanner does not need.
		r.done = true
		return io.EOF
	case segMagic:
		var rest [segHeaderLen - 4]byte
		if _, err := io.ReadFull(r.r, rest[:]); err != nil {
			return r.latch(ErrCorrupt, err)
		}
		var hdr [segHeaderLen]byte
		copy(hdr[:4], mark[:])
		copy(hdr[4:], rest[:])
		si, err := parseSegmentHeader(hdr[:])
		if err != nil {
			return err
		}
		r.seg = si
		r.segLeft = si.Count
		// Segments are self-contained: the delta chain restarts from the
		// header's base, which equals the previous segment's last T in any
		// well-formed file.
		r.last = si.BaseT
		return nil
	default:
		return fmt.Errorf("%w: unknown frame marker %q", ErrCorrupt, mark[:])
	}
}

// decodePayload decodes an in-memory segment payload into pooled blocks.
// This is the v2 fast path: varints decode straight out of the slab with no
// per-byte reader calls, which is what makes segment decode worth
// parallelizing (the per-record cost drops well below the v1 bufio path).
//
// Every decoded record is appended to blocks obtained from the pool and the
// full set is returned; on a corrupt payload the blocks decoded so far are
// returned alongside the error so callers can preserve ReadAll's
// records-before-error delivery semantics. Count and MinT/MaxT from si are
// cross-checked against the payload — any mismatch is corruption.
func decodePayload(p []byte, si SegmentInfo) ([]*Block, error) {
	blocks := make([]*Block, 0, si.Count/BlockSize+1)
	blk := NewBlock()
	last := si.BaseT
	for i := 0; i < si.Count; i++ {
		delta, n := binary.Uvarint(p)
		if n <= 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated delta at record %d", ErrCorrupt, i)
		}
		p = p[n:]
		if len(p) == 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated flags at record %d", ErrCorrupt, i)
		}
		flags := p[0]
		p = p[1:]
		client, n := binary.Uvarint(p)
		if n <= 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated client at record %d", ErrCorrupt, i)
		}
		p = p[n:]
		app, n := binary.Uvarint(p)
		if n <= 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated app at record %d", ErrCorrupt, i)
		}
		p = p[n:]
		if client > 1<<32-1 || app > 1<<16-1 {
			return closePayload(blocks, blk), fmt.Errorf("%w: out-of-range field at record %d", ErrCorrupt, i)
		}
		last += time.Duration(delta)
		if len(*blk) == cap(*blk) {
			blocks = append(blocks, blk)
			blk = NewBlock()
		}
		*blk = append(*blk, Record{
			T:      last,
			Dir:    Direction(flags & 1),
			Kind:   Kind(flags >> 1 & 0x7),
			Client: uint32(client),
			App:    uint16(app),
		})
	}
	blocks = closePayload(blocks, blk)
	if len(p) != 0 {
		return blocks, fmt.Errorf("%w: %d trailing bytes after segment records", ErrCorrupt, len(p))
	}
	if first := (*blocks[0])[0].T; first != si.MinT {
		return blocks, fmt.Errorf("%w: first record at %v, header says %v", ErrCorrupt, first, si.MinT)
	}
	if last != si.MaxT {
		return blocks, fmt.Errorf("%w: last record at %v, header says %v", ErrCorrupt, last, si.MaxT)
	}
	return blocks, nil
}

// closePayload appends the in-progress block (or recycles it if empty).
func closePayload(blocks []*Block, blk *Block) []*Block {
	if len(*blk) > 0 {
		return append(blocks, blk)
	}
	FreeBlock(blk)
	return blocks
}

// readSegmentAt reads and decodes one segment from an io.ReaderAt using the
// caller's scratch buffer (grown as needed and returned for reuse). The
// frame header re-read from the file is cross-checked against the index
// entry, so a file whose index and segments disagree surfaces as ErrCorrupt
// rather than silently mis-decoding.
func readSegmentAt(ra io.ReaderAt, si SegmentInfo, scratch []byte) ([]*Block, []byte, error) {
	need := segHeaderLen + si.PayloadLen
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	if _, err := ra.ReadAt(scratch, si.Offset); err != nil {
		return nil, scratch, fmt.Errorf("%w: segment at offset %d: %w", ErrCorrupt, si.Offset, err)
	}
	got, err := parseSegmentHeader(scratch[:segHeaderLen])
	if err != nil {
		return nil, scratch, err
	}
	got.Offset = si.Offset
	if got != si {
		return nil, scratch, fmt.Errorf("%w: segment header at offset %d disagrees with index", ErrCorrupt, si.Offset)
	}
	blocks, err := decodePayload(scratch[segHeaderLen:], si)
	return blocks, scratch, err
}
