package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Segment framing for the indexed formats. Each segment is an independently
// decodable chunk of the record stream: its frame header carries everything
// a decoder needs (payload length, record count, the delta base timestamp
// and — since v3 — a flags word announcing per-segment compression), so
// workers can decode segments concurrently from an io.ReaderAt without any
// shared state, and a serial scanner can walk the frames with a plain
// io.Reader. See docs/FORMAT.md for the byte-level specification.

const (
	segMagic    = "CSEG"
	indexMagic  = "CSIX"
	footerMagic = "CSFT"

	// segHeaderLen is the fixed v2 "CSEG" frame header:
	// magic 4 | payloadLen u32 | count u32 | baseT u64 | minT u64 | maxT u64.
	segHeaderLen = 4 + 4 + 4 + 8 + 8 + 8
	// segHeaderLenV3 is the fixed v3 frame header: the v2 fields plus a
	// flags u32 between count and baseT. A compressed segment appends one
	// more rawLen u32 after maxT.
	segHeaderLenV3 = segHeaderLen + 4
	// indexEntryLen is one v2 index entry:
	// offset u64 | payloadLen u32 | count u32 | baseT u64 | minT u64 | maxT u64.
	indexEntryLen = 8 + 4 + 4 + 8 + 8 + 8
	// indexEntryLenV3 is one v3 index entry: the v2 fields plus
	// flags u32 | rawLen u32 between count and baseT (always present in the
	// index, unlike the frame's conditional rawLen).
	indexEntryLenV3 = indexEntryLen + 4 + 4
	// indexHeaderLen is the "CSIX" frame header: magic 4 | segCount u32.
	indexHeaderLen = 4 + 4
	// footerLen is the fixed trailer:
	// records u64 | indexOff u64 | segCount u32 | magic 4.
	footerLen = 8 + 8 + 4 + 4
)

// Per-segment flag bits. All bits not defined for the file's format version
// are reserved and must be zero; readers reject them as corruption (an
// unknown layout cannot be skipped).
const (
	// SegCompressed (bit 0, since v3) marks a flate-compressed payload.
	SegCompressed uint32 = 1 << 0
	// SegColumnar (bit 1, since v4) marks a field-striped payload: the
	// record fields are stored as four separate runs — timestamp deltas,
	// flags, client ids, app sizes — instead of interleaved per record.
	// See docs/FORMAT.md §v4 for the run layout.
	SegColumnar uint32 = 1 << 1
)

// segFlagMask returns the flag bits a reader of the given format version
// accepts; anything outside the mask fails closed as corruption.
func segFlagMask(version int) uint32 {
	if version >= version4 {
		return SegCompressed | SegColumnar
	}
	return SegCompressed
}

// SegmentInfo describes one segment of an indexed trace, as recorded in the
// index and duplicated in the segment's own frame header.
type SegmentInfo struct {
	// Offset is the file offset of the segment frame (its "CSEG" marker).
	Offset int64
	// PayloadLen is the on-disk payload size in bytes (frame header
	// excluded). For a compressed v3 segment this is the flate stream
	// length; RawLen holds the decompressed size.
	PayloadLen int
	// Count is the number of records in the segment (always ≥ 1; the
	// writer never emits empty segments).
	Count int
	// Flags holds the v3 per-segment flags (SegCompressed); always zero in
	// a v2 trace.
	Flags uint32
	// RawLen is the record payload size after decompression — the length
	// of the byte range that concatenates into the v1 stream. It equals
	// PayloadLen when the segment is stored uncompressed.
	RawLen int
	// BaseT is the timestamp of the last record before this segment (0 for
	// the first segment): the segment's first delta is relative to it, so
	// decode needs no other context.
	BaseT time.Duration
	// MinT and MaxT are the timestamps of the segment's first and last
	// record — the seek key for time-range queries.
	MinT, MaxT time.Duration
}

// Compressed reports whether the segment's payload is flate-compressed.
func (si SegmentInfo) Compressed() bool { return si.Flags&SegCompressed != 0 }

// Columnar reports whether the segment's payload is field-striped (v4).
func (si SegmentInfo) Columnar() bool { return si.Flags&SegColumnar != 0 }

// frameHeaderLen returns the "CSEG" frame header size for this segment
// under the given format version: 36 bytes in v2, 40 in v3, plus the
// 4-byte rawLen field when the segment is compressed.
func (si SegmentInfo) frameHeaderLen(version int) int {
	if version >= version3 {
		if si.Compressed() {
			return segHeaderLenV3 + 4
		}
		return segHeaderLenV3
	}
	return segHeaderLen
}

// parseSegmentHeader decodes the fixed part of a "CSEG" frame header (36
// bytes in v2, 40 in v3). For a compressed v3 segment the caller must read
// the trailing rawLen field separately and store it via setRawLen.
func parseSegmentHeader(hdr []byte, version int) (SegmentInfo, error) {
	if string(hdr[:4]) != segMagic {
		return SegmentInfo{}, fmt.Errorf("%w: bad segment marker %q", ErrCorrupt, hdr[:4])
	}
	si := SegmentInfo{
		PayloadLen: int(binary.LittleEndian.Uint32(hdr[4:])),
		Count:      int(binary.LittleEndian.Uint32(hdr[8:])),
	}
	rest := hdr[12:]
	if version >= version3 {
		si.Flags = binary.LittleEndian.Uint32(hdr[12:])
		if si.Flags&^segFlagMask(version) != 0 {
			return SegmentInfo{}, fmt.Errorf("%w: unknown segment flags %#x", ErrCorrupt, si.Flags)
		}
		rest = hdr[16:]
	}
	si.BaseT = time.Duration(binary.LittleEndian.Uint64(rest[0:]))
	si.MinT = time.Duration(binary.LittleEndian.Uint64(rest[8:]))
	si.MaxT = time.Duration(binary.LittleEndian.Uint64(rest[16:]))
	if !si.Compressed() {
		si.RawLen = si.PayloadLen
	}
	if si.Count <= 0 || si.PayloadLen <= 0 || si.BaseT < 0 ||
		si.MinT < si.BaseT || si.MaxT < si.MinT || si.MaxT > MaxSpan {
		return SegmentInfo{}, fmt.Errorf("%w: implausible segment header", ErrCorrupt)
	}
	return si, nil
}

// maxFlateExpansion bounds how much a DEFLATE stream can inflate: stored
// and huffman-coded blocks expand at most ~1032×. A declared RawLen beyond
// this bound cannot be produced by PayloadLen input bytes, so readers
// reject it as corruption *before* allocating the output slab — a flipped
// RawLen must not turn into a multi-gigabyte allocation per decode worker.
const maxFlateExpansion = 1040

// setRawLen records the decompressed size read from a compressed frame's
// trailing field (or index entry), validating it against the expansion
// bound.
func (si *SegmentInfo) setRawLen(rawLen int) error {
	if rawLen <= 0 {
		return fmt.Errorf("%w: compressed segment declares %d raw bytes", ErrCorrupt, rawLen)
	}
	if rawLen > si.PayloadLen*maxFlateExpansion {
		return fmt.Errorf("%w: compressed segment declares %d raw bytes from %d on disk (beyond flate's expansion bound)",
			ErrCorrupt, rawLen, si.PayloadLen)
	}
	si.RawLen = rawLen
	return nil
}

// nextSegment advances the serial scanner to the next segment frame. It
// returns io.EOF at the clean end of records: the index frame, or — for a
// file whose tail was lost — a bare EOF at a frame boundary (latched as a
// warning, since the records themselves were all recovered).
func (r *Reader) nextSegment() error {
	if r.done {
		return io.EOF
	}
	var mark [4]byte
	if _, err := io.ReadFull(r.r, mark[:]); err != nil {
		if err == io.EOF {
			r.done = true
			if r.warn == "" {
				r.warn = "indexed trace ends without an index frame (truncated tail); all segments before it were recovered"
			}
			return io.EOF
		}
		return r.latch(ErrCorrupt, err)
	}
	switch string(mark[:]) {
	case indexMagic:
		// End of record segments; the rest of the file is index + footer,
		// which the serial scanner does not need.
		r.done = true
		return io.EOF
	case segMagic:
		hl := segHeaderLen
		if r.version >= version3 {
			hl = segHeaderLenV3
		}
		var hdr [segHeaderLenV3]byte
		copy(hdr[:4], mark[:])
		if _, err := io.ReadFull(r.r, hdr[4:hl]); err != nil {
			return r.latch(ErrCorrupt, err)
		}
		si, err := parseSegmentHeader(hdr[:hl], int(r.version))
		if err != nil {
			return err
		}
		if si.Compressed() {
			var rl [4]byte
			if _, err := io.ReadFull(r.r, rl[:]); err != nil {
				return r.latch(ErrCorrupt, err)
			}
			if err := si.setRawLen(int(binary.LittleEndian.Uint32(rl[:]))); err != nil {
				return err
			}
		}
		r.seg = si
		r.segLeft = si.Count
		// Segments are self-contained: the delta chain restarts from the
		// header's base, which equals the previous segment's last T in any
		// well-formed file.
		r.last = si.BaseT
		return nil
	default:
		return fmt.Errorf("%w: unknown frame marker %q", ErrCorrupt, mark[:])
	}
}

// decodePayload decodes an in-memory (decompressed) segment payload into
// pooled blocks. This is the indexed fast path: varints decode straight out
// of the slab with no per-byte reader calls, which is what makes segment
// decode worth parallelizing (the per-record cost drops well below the v1
// bufio path).
//
// Every decoded record is appended to blocks obtained from the pool and the
// full set is returned; on a corrupt payload the blocks decoded so far are
// returned alongside the error so callers can preserve ReadAll's
// records-before-error delivery semantics. Count and MinT/MaxT from si are
// cross-checked against the payload — any mismatch is corruption.
func decodePayload(p []byte, si SegmentInfo) ([]*Block, error) {
	blocks := make([]*Block, 0, si.Count/BlockSize+1)
	blk := NewBlock()
	last := si.BaseT
	for i := 0; i < si.Count; i++ {
		delta, n := binary.Uvarint(p)
		if n <= 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated delta at record %d", ErrCorrupt, i)
		}
		p = p[n:]
		if len(p) == 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated flags at record %d", ErrCorrupt, i)
		}
		flags := p[0]
		p = p[1:]
		client, n := binary.Uvarint(p)
		if n <= 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated client at record %d", ErrCorrupt, i)
		}
		p = p[n:]
		app, n := binary.Uvarint(p)
		if n <= 0 {
			return closePayload(blocks, blk), fmt.Errorf("%w: truncated app at record %d", ErrCorrupt, i)
		}
		p = p[n:]
		if client > 1<<32-1 || app > 1<<16-1 {
			return closePayload(blocks, blk), fmt.Errorf("%w: out-of-range field at record %d", ErrCorrupt, i)
		}
		if delta > uint64(MaxSpan) || last+time.Duration(delta) > MaxSpan {
			return closePayload(blocks, blk), fmt.Errorf("%w: timestamp jump past the span cap at record %d", ErrCorrupt, i)
		}
		last += time.Duration(delta)
		if len(*blk) == cap(*blk) {
			blocks = append(blocks, blk)
			blk = NewBlock()
		}
		*blk = append(*blk, Record{
			T:      last,
			Dir:    Direction(flags & 1),
			Kind:   Kind(flags >> 1 & 0x7),
			Client: uint32(client),
			App:    uint16(app),
		})
	}
	blocks = closePayload(blocks, blk)
	if len(p) != 0 {
		return blocks, fmt.Errorf("%w: %d trailing bytes after segment records", ErrCorrupt, len(p))
	}
	if first := (*blocks[0])[0].T; first != si.MinT {
		return blocks, fmt.Errorf("%w: first record at %v, header says %v", ErrCorrupt, first, si.MinT)
	}
	if last != si.MaxT {
		return blocks, fmt.Errorf("%w: last record at %v, header says %v", ErrCorrupt, last, si.MaxT)
	}
	return blocks, nil
}

// closePayload appends the in-progress block (or recycles it if empty).
func closePayload(blocks []*Block, blk *Block) []*Block {
	if len(*blk) > 0 {
		return append(blocks, blk)
	}
	FreeBlock(blk)
	return blocks
}

// segScratch bundles the reusable buffers of one segment-decoding worker:
// the on-disk frame bytes, the decompression output slab, and the flate
// reader (reset per segment instead of reallocating its window).
type segScratch struct {
	frame []byte
	raw   []byte
	fr    io.ReadCloser
}

// inflateInto decompresses a whole-payload flate stream (v3 layout) into
// dst (len si.RawLen), returning the decompressed bytes. On a truncated or
// damaged stream it returns the bytes recovered before the damage alongside
// an ErrCorrupt-wrapped error, so callers can decode the partial prefix and
// preserve records-before-error delivery.
func (sc *segScratch) inflateInto(dst, p []byte, si SegmentInfo) ([]byte, error) {
	if sc.fr == nil {
		sc.fr = flate.NewReader(bytes.NewReader(p))
	} else if err := sc.fr.(flate.Resetter).Reset(bytes.NewReader(p), nil); err != nil {
		return dst[:0], fmt.Errorf("%w: flate reset: %w", ErrCorrupt, err)
	}
	n, err := io.ReadFull(sc.fr, dst)
	if err != nil {
		return dst[:n], fmt.Errorf("%w: compressed payload damaged after %d of %d raw bytes: %w", ErrCorrupt, n, si.RawLen, err)
	}
	// The stream must end exactly at RawLen: the sizes come from the frame
	// header, so trailing compressed data is corruption, not slack.
	var one [1]byte
	if m, _ := sc.fr.Read(one[:]); m != 0 {
		return dst, fmt.Errorf("%w: compressed payload inflates past the declared %d bytes", ErrCorrupt, si.RawLen)
	}
	return dst, nil
}

// decompressInto reconstructs a compressed segment's raw payload into dst
// (len si.RawLen) on the layout its flags announce: per-run columnar
// streams (v4) or one whole-payload flate stream (v3).
func (sc *segScratch) decompressInto(dst, p []byte, si SegmentInfo) ([]byte, error) {
	if si.Columnar() {
		return sc.inflateColumnarInto(dst, p, si)
	}
	return sc.inflateInto(dst, p, si)
}

// decompress is decompressInto over the scratch raw slab.
func (sc *segScratch) decompress(p []byte, si SegmentInfo) ([]byte, error) {
	if cap(sc.raw) < si.RawLen {
		sc.raw = make([]byte, si.RawLen)
	}
	return sc.decompressInto(sc.raw[:si.RawLen], p, si)
}

// loadSegment is the serial-scan counterpart of readSegmentAt: it reads
// the current segment's payload from the buffered reader into the scratch
// frame slab, inflates it if the segment is flagged compressed, and
// decodes it into pooled blocks. The decoded blocks are always returned —
// records before any damage must reach the caller — together with the
// terminal error under the shared priority (read truncation, then inflate
// damage, then decode damage); the scanner state advances past the segment
// either way so both serial paths stay in lockstep on the same bytes.
func (r *Reader) loadSegment(sc *segScratch) ([]*Block, error) {
	si := r.seg
	if cap(sc.frame) < si.PayloadLen {
		sc.frame = make([]byte, si.PayloadLen)
	}
	sc.frame = sc.frame[:si.PayloadLen]
	got, readErr := io.ReadFull(r.r, sc.frame)
	payload := sc.frame[:got]
	var inflateErr error
	if si.Compressed() {
		payload, inflateErr = sc.decompress(payload, si)
	}
	blocks, decErr := decodeSegmentPayload(payload, si)
	// The payload is consumed: advance the scanner state so a subsequent
	// frame parses from a consistent position.
	r.segLeft = 0
	r.last = si.MaxT
	switch {
	case readErr != nil:
		return blocks, r.latch(ErrCorrupt, readErr)
	case inflateErr != nil:
		return blocks, inflateErr
	default:
		return blocks, decErr
	}
}

// fetchSegmentPayload reads one segment's frame from an io.ReaderAt into
// the worker's scratch buffers and returns its raw (decompressed) payload.
// The frame header re-read from the file is cross-checked against the index
// entry, so a file whose index and segments disagree surfaces as ErrCorrupt
// rather than silently mis-decoding. Header-level failures return a nil
// payload; damage inside a compressed payload returns the recovered raw
// prefix alongside the error, so callers can decode it and preserve
// records-before-error delivery.
func fetchSegmentPayload(ra io.ReaderAt, si SegmentInfo, version int, sc *segScratch) ([]byte, error) {
	payload, err := fetchSegmentFrame(ra, si, version, sc)
	if err != nil {
		return nil, err
	}
	if si.Compressed() {
		return sc.decompress(payload, si)
	}
	return payload, nil
}

// fetchSegmentFrame reads and cross-checks one segment's frame like
// fetchSegmentPayload but returns the payload exactly as stored on disk —
// still compressed when the segment is flagged so. Range reads use it to
// inflate a boundary segment only up to the cut instead of wholesale.
func fetchSegmentFrame(ra io.ReaderAt, si SegmentInfo, version int, sc *segScratch) ([]byte, error) {
	hl := si.frameHeaderLen(version)
	need := hl + si.PayloadLen
	if cap(sc.frame) < need {
		sc.frame = make([]byte, need)
	}
	sc.frame = sc.frame[:need]
	if _, err := ra.ReadAt(sc.frame, si.Offset); err != nil {
		return nil, fmt.Errorf("%w: segment at offset %d: %w", ErrCorrupt, si.Offset, err)
	}
	fixed := segHeaderLen
	if version >= version3 {
		fixed = segHeaderLenV3
	}
	got, err := parseSegmentHeader(sc.frame[:fixed], version)
	if err != nil {
		return nil, err
	}
	if got.Compressed() {
		if err := got.setRawLen(int(binary.LittleEndian.Uint32(sc.frame[fixed:]))); err != nil {
			return nil, err
		}
	}
	got.Offset = si.Offset
	if got != si {
		return nil, fmt.Errorf("%w: segment header at offset %d disagrees with index", ErrCorrupt, si.Offset)
	}
	return sc.frame[hl:need], nil
}

// readSegmentAt reads and decodes one segment from an io.ReaderAt using the
// worker's scratch buffers; see fetchSegmentPayload for the validation and
// partial-delivery story.
func readSegmentAt(ra io.ReaderAt, si SegmentInfo, version int, sc *segScratch) ([]*Block, error) {
	payload, ferr := fetchSegmentPayload(ra, si, version, sc)
	if payload == nil {
		return nil, ferr
	}
	blocks, derr := decodeSegmentPayload(payload, si)
	if ferr != nil {
		// Report the read/inflate failure as the cause; the decode of the
		// recovered prefix necessarily hit its truncation point too.
		return blocks, ferr
	}
	return blocks, derr
}

// readSegmentColumnsAt reads one columnar segment and decodes it into
// ColumnBlocks, keeping the on-disk field separation for column-aware
// sinks. Same validation and partial-delivery semantics as readSegmentAt.
func readSegmentColumnsAt(ra io.ReaderAt, si SegmentInfo, version int, sc *segScratch) ([]*ColumnBlock, error) {
	payload, ferr := fetchSegmentPayload(ra, si, version, sc)
	if payload == nil {
		return nil, ferr
	}
	cbs, derr := decodeColumnarColumns(payload, si)
	if ferr != nil {
		return cbs, ferr
	}
	return cbs, derr
}
