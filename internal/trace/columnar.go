package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Field-striped (columnar) segment payloads — format v4. A v4 segment
// stores its record fields as four separate runs instead of interleaving
// them per record:
//
//	column header: dLen u32 | fLen u32 | cLen u32 | aLen u32  (raw run sizes)
//	delta run:     timestamp deltas, uvarint each
//	flags run:     one byte per record (bit0 direction, bits1-3 kind)
//	client run:    client ids, uvarint each
//	app run:       app sizes, uvarint each
//
// fLen always equals the segment's record count (one flag byte per record);
// readers reject any disagreement as corruption. Striping pays twice: each
// run is self-similar so flate compresses it markedly better than the
// interleaved stream, and a collector that only consumes one field can sweep
// that run without reconstructing the others.
//
// A compressed columnar segment (flags SegColumnar|SegCompressed) deflates
// each run independently and prepends a second header with the stored run
// sizes:
//
//	raw header    (16 bytes, as above)
//	stored header: dSto u32 | fSto u32 | cSto u32 | aSto u32
//	four stored runs
//
// A run whose stored size equals its raw size is a literal copy; a smaller
// stored size is a flate stream inflating to exactly the raw size; a larger
// one is corruption. The segment is stored compressed only when the whole
// stored form is strictly smaller than the raw columnar payload, so the
// choice — like v3's — is deterministic and incompressible segments cost
// nothing. See docs/FORMAT.md for the byte-level specification.

// colHeaderLen is the fixed columnar payload header: four u32 run lengths
// (timestamp deltas, flags, client ids, app sizes).
const colHeaderLen = 4 * 4

// colNames names the four field columns, in payload order.
var colNames = [4]string{"deltas", "flags", "clients", "apps"}

// parseColHeader decodes four u32 run lengths.
func parseColHeader(b []byte) (l [4]int, sum int) {
	for c := range l {
		l[c] = int(binary.LittleEndian.Uint32(b[4*c:]))
		sum += l[c]
	}
	return l, sum
}

// checkColHeader parses and validates the raw column header of a columnar
// payload prefix against the segment's index entry.
func checkColHeader(p []byte, si SegmentInfo) ([4]int, error) {
	if len(p) < colHeaderLen {
		return [4]int{}, fmt.Errorf("%w: columnar payload truncated inside its %d-byte header", ErrCorrupt, colHeaderLen)
	}
	lens, sum := parseColHeader(p)
	if lens[1] != si.Count {
		return lens, fmt.Errorf("%w: flags column holds %d bytes for %d records", ErrCorrupt, lens[1], si.Count)
	}
	if colHeaderLen+sum != si.RawLen {
		return lens, fmt.Errorf("%w: column runs sum to %d bytes, segment declares %d raw", ErrCorrupt, colHeaderLen+sum, si.RawLen)
	}
	return lens, nil
}

// clampRun slices run c out of a possibly-truncated payload: the run's
// declared byte range, cut short at the end of the available bytes.
func clampRun(p []byte, off, length int) []byte {
	if off >= len(p) {
		return nil
	}
	end := off + length
	if end > len(p) {
		end = len(p)
	}
	return p[off:end]
}

// newBlocksFor returns pooled blocks pre-sized to hold count records.
func newBlocksFor(count int) []*Block {
	blocks := make([]*Block, 0, (count+BlockSize-1)/BlockSize)
	for count > 0 {
		c := count
		if c > BlockSize {
			c = BlockSize
		}
		blk := NewBlock()
		*blk = (*blk)[:c]
		blocks = append(blocks, blk)
		count -= c
	}
	return blocks
}

// truncateBlocks trims a pre-sized block list down to its first keep
// records, recycling what falls off.
func truncateBlocks(blocks []*Block, keep int) []*Block {
	out := blocks[:0]
	for _, blk := range blocks {
		if keep == 0 {
			FreeBlock(blk)
			continue
		}
		if len(*blk) > keep {
			*blk = (*blk)[:keep]
		}
		keep -= len(*blk)
		out = append(out, blk)
	}
	return out
}

func errColTruncated(col string, i int) error {
	return fmt.Errorf("%w: truncated %s column at record %d", ErrCorrupt, col, i)
}

func errColTrailing(col string, n int) error {
	return fmt.Errorf("%w: %d trailing bytes in %s column", ErrCorrupt, n, col)
}

// decodeColumnarBlocks decodes a (possibly truncated) raw columnar payload
// into pooled blocks — four tight per-column passes writing straight into
// the Record slabs, no intermediate interleaved buffer. On damage it
// returns the records complete in every column before the first error,
// preserving records-before-error delivery; header-level damage (truncated
// header, column-length mismatch, run sizes disagreeing with the segment)
// fails closed with no records, like an implausible frame header.
func decodeColumnarBlocks(p []byte, si SegmentInfo) ([]*Block, error) {
	lens, err := checkColHeader(p, si)
	if err != nil {
		return nil, err
	}
	blocks := newBlocksFor(si.Count)
	off := colHeaderLen
	nT, errT := decodeDeltaRun(clampRun(p, off, lens[0]), si, blocks)
	off += lens[0]
	nF, errF := decodeFlagsRun(clampRun(p, off, lens[1]), blocks)
	off += lens[1]
	nC, errC := decodeClientRun(clampRun(p, off, lens[2]), blocks)
	off += lens[2]
	nA, errA := decodeAppRun(clampRun(p, off, lens[3]), blocks)

	complete := nT
	for _, n := range [...]int{nF, nC, nA} {
		if n < complete {
			complete = n
		}
	}
	blocks = truncateBlocks(blocks, complete)
	for _, e := range [...]error{errT, errF, errC, errA} {
		if e != nil {
			return blocks, e
		}
	}
	return blocks, nil
}

// decodeDeltaRun decodes the timestamp column into the pre-sized blocks,
// returning how many records got a timestamp. A fully decoded column is
// cross-checked against the segment's MinT/MaxT, exactly as the interleaved
// decoder does.
func decodeDeltaRun(run []byte, si SegmentInfo, blocks []*Block) (int, error) {
	last := si.BaseT
	i := 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			// One-byte varints dominate every column on a busy server;
			// peeling that case off the generic decode loop is worth a few
			// ns/record on the serial sweep.
			var delta uint64
			if len(run) != 0 && run[0] < 0x80 {
				delta, run = uint64(run[0]), run[1:]
			} else if d, n := binary.Uvarint(run); n > 0 {
				delta, run = d, run[n:]
			} else {
				return i, errColTruncated("delta", i)
			}
			if delta > uint64(MaxSpan) || last+time.Duration(delta) > MaxSpan {
				return i, fmt.Errorf("%w: timestamp jump past the span cap at record %d", ErrCorrupt, i)
			}
			last += time.Duration(delta)
			recs[j].T = last
			i++
		}
	}
	if len(run) != 0 {
		return i, errColTrailing("delta", len(run))
	}
	if len(blocks) > 0 {
		if first := (*blocks[0])[0].T; first != si.MinT {
			return i, fmt.Errorf("%w: first record at %v, header says %v", ErrCorrupt, first, si.MinT)
		}
		if last != si.MaxT {
			return i, fmt.Errorf("%w: last record at %v, header says %v", ErrCorrupt, last, si.MaxT)
		}
	}
	return i, nil
}

// decodeFlagsRun decodes the flags column (one byte per record).
func decodeFlagsRun(run []byte, blocks []*Block) (int, error) {
	i := 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			if i >= len(run) {
				return i, errColTruncated("flags", i)
			}
			f := run[i]
			recs[j].Dir = Direction(f & 1)
			recs[j].Kind = Kind(f >> 1 & 0x7)
			i++
		}
	}
	return i, nil
}

// decodeClientRun decodes the client-id column.
func decodeClientRun(run []byte, blocks []*Block) (int, error) {
	i := 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			var client uint64
			if len(run) != 0 && run[0] < 0x80 {
				client, run = uint64(run[0]), run[1:]
			} else if v, n := binary.Uvarint(run); n > 0 {
				client, run = v, run[n:]
			} else {
				return i, errColTruncated("client", i)
			}
			if client > 1<<32-1 {
				return i, fmt.Errorf("%w: out-of-range client at record %d", ErrCorrupt, i)
			}
			recs[j].Client = uint32(client)
			i++
		}
	}
	if len(run) != 0 {
		return i, errColTrailing("client", len(run))
	}
	return i, nil
}

// decodeAppRun decodes the app-size column.
func decodeAppRun(run []byte, blocks []*Block) (int, error) {
	i := 0
	for _, blk := range blocks {
		recs := *blk
		for j := range recs {
			var app uint64
			if len(run) > 1 && run[0] >= 0x80 && run[1] < 0x80 {
				// App sizes cluster in the two-byte band (128–16383).
				app, run = uint64(run[0]&0x7f)|uint64(run[1])<<7, run[2:]
			} else if len(run) != 0 && run[0] < 0x80 {
				app, run = uint64(run[0]), run[1:]
			} else if v, n := binary.Uvarint(run); n > 0 {
				app, run = v, run[n:]
			} else {
				return i, errColTruncated("app", i)
			}
			if app > 1<<16-1 {
				return i, fmt.Errorf("%w: out-of-range app at record %d", ErrCorrupt, i)
			}
			recs[j].App = uint16(app)
			i++
		}
	}
	if len(run) != 0 {
		return i, errColTrailing("app", len(run))
	}
	return i, nil
}

// decodeSegmentPayload decodes a raw in-memory segment payload on the
// layout the segment's flags announce: field-striped columns (v4) or the
// interleaved record stream (v1–v3).
func decodeSegmentPayload(p []byte, si SegmentInfo) ([]*Block, error) {
	if si.Columnar() {
		return decodeColumnarBlocks(p, si)
	}
	return decodePayload(p, si)
}

// ColumnBlock is the struct-of-arrays counterpart of Block: one decoded
// columnar segment chunk with the fields still separated, so a collector
// that consumes a single field sweeps a dense array instead of striding
// through Records. All four slices share a length (Len).
type ColumnBlock struct {
	T      []time.Duration
	Flags  []uint8 // on-disk encoding: bit0 direction, bits1-3 kind
	Client []uint32
	App    []uint16
}

// Len returns the number of records in the block.
func (cb *ColumnBlock) Len() int { return len(cb.T) }

// AppendRecords interleaves the columns into dst as full Records.
func (cb *ColumnBlock) AppendRecords(dst []Record) []Record {
	for i, t := range cb.T {
		f := cb.Flags[i]
		dst = append(dst, Record{
			T:      t,
			Dir:    Direction(f & 1),
			Kind:   Kind(f >> 1 & 0x7),
			Client: cb.Client[i],
			App:    cb.App[i],
		})
	}
	return dst
}

var columnBlockPool = sync.Pool{
	New: func() any {
		return &ColumnBlock{
			T:      make([]time.Duration, 0, BlockSize),
			Flags:  make([]uint8, 0, BlockSize),
			Client: make([]uint32, 0, BlockSize),
			App:    make([]uint16, 0, BlockSize),
		}
	},
}

// NewColumnBlock returns an empty column block with capacity BlockSize from
// the pool.
func NewColumnBlock() *ColumnBlock {
	cb := columnBlockPool.Get().(*ColumnBlock)
	cb.truncate(0)
	return cb
}

// FreeColumnBlock recycles a block obtained from NewColumnBlock.
func FreeColumnBlock(cb *ColumnBlock) {
	if cb == nil || cap(cb.T) == 0 {
		return
	}
	columnBlockPool.Put(cb)
}

func (cb *ColumnBlock) truncate(n int) {
	cb.T = cb.T[:n]
	cb.Flags = cb.Flags[:n]
	cb.Client = cb.Client[:n]
	cb.App = cb.App[:n]
}

// newColumnBlocksFor returns pooled column blocks pre-sized for count
// records.
func newColumnBlocksFor(count int) []*ColumnBlock {
	cbs := make([]*ColumnBlock, 0, (count+BlockSize-1)/BlockSize)
	for count > 0 {
		c := count
		if c > BlockSize {
			c = BlockSize
		}
		cb := NewColumnBlock()
		cb.truncate(c)
		cbs = append(cbs, cb)
		count -= c
	}
	return cbs
}

// truncateColumnBlocks trims a pre-sized column-block list to keep records.
func truncateColumnBlocks(cbs []*ColumnBlock, keep int) []*ColumnBlock {
	out := cbs[:0]
	for _, cb := range cbs {
		if keep == 0 {
			FreeColumnBlock(cb)
			continue
		}
		if cb.Len() > keep {
			cb.truncate(keep)
		}
		keep -= cb.Len()
		out = append(out, cb)
	}
	return out
}

// decodeColumnarColumns decodes a raw columnar payload into pooled
// ColumnBlocks, preserving the on-disk field separation for column-aware
// sinks. Same validation and records-before-error semantics as
// decodeColumnarBlocks.
func decodeColumnarColumns(p []byte, si SegmentInfo) ([]*ColumnBlock, error) {
	lens, err := checkColHeader(p, si)
	if err != nil {
		return nil, err
	}
	cbs := newColumnBlocksFor(si.Count)
	off := colHeaderLen
	nT, errT := decodeDeltaCols(clampRun(p, off, lens[0]), si, cbs)
	off += lens[0]
	nF, errF := decodeFlagsCols(clampRun(p, off, lens[1]), cbs)
	off += lens[1]
	nC, errC := decodeClientCols(clampRun(p, off, lens[2]), cbs)
	off += lens[2]
	nA, errA := decodeAppCols(clampRun(p, off, lens[3]), cbs)

	complete := nT
	for _, n := range [...]int{nF, nC, nA} {
		if n < complete {
			complete = n
		}
	}
	cbs = truncateColumnBlocks(cbs, complete)
	for _, e := range [...]error{errT, errF, errC, errA} {
		if e != nil {
			return cbs, e
		}
	}
	return cbs, nil
}

func decodeDeltaCols(run []byte, si SegmentInfo, cbs []*ColumnBlock) (int, error) {
	last := si.BaseT
	i := 0
	for _, cb := range cbs {
		ts := cb.T
		for j := range ts {
			var delta uint64
			if len(run) != 0 && run[0] < 0x80 {
				delta, run = uint64(run[0]), run[1:]
			} else if d, n := binary.Uvarint(run); n > 0 {
				delta, run = d, run[n:]
			} else {
				return i, errColTruncated("delta", i)
			}
			if delta > uint64(MaxSpan) || last+time.Duration(delta) > MaxSpan {
				return i, fmt.Errorf("%w: timestamp jump past the span cap at record %d", ErrCorrupt, i)
			}
			last += time.Duration(delta)
			ts[j] = last
			i++
		}
	}
	if len(run) != 0 {
		return i, errColTrailing("delta", len(run))
	}
	if len(cbs) > 0 {
		if first := cbs[0].T[0]; first != si.MinT {
			return i, fmt.Errorf("%w: first record at %v, header says %v", ErrCorrupt, first, si.MinT)
		}
		if last != si.MaxT {
			return i, fmt.Errorf("%w: last record at %v, header says %v", ErrCorrupt, last, si.MaxT)
		}
	}
	return i, nil
}

func decodeFlagsCols(run []byte, cbs []*ColumnBlock) (int, error) {
	i := 0
	for _, cb := range cbs {
		n := copy(cb.Flags, run[i:])
		i += n
		if n < len(cb.Flags) {
			return i, errColTruncated("flags", i)
		}
	}
	return i, nil
}

func decodeClientCols(run []byte, cbs []*ColumnBlock) (int, error) {
	i := 0
	for _, cb := range cbs {
		cs := cb.Client
		for j := range cs {
			var client uint64
			if len(run) != 0 && run[0] < 0x80 {
				client, run = uint64(run[0]), run[1:]
			} else if v, n := binary.Uvarint(run); n > 0 {
				client, run = v, run[n:]
			} else {
				return i, errColTruncated("client", i)
			}
			if client > 1<<32-1 {
				return i, fmt.Errorf("%w: out-of-range client at record %d", ErrCorrupt, i)
			}
			cs[j] = uint32(client)
			i++
		}
	}
	if len(run) != 0 {
		return i, errColTrailing("client", len(run))
	}
	return i, nil
}

func decodeAppCols(run []byte, cbs []*ColumnBlock) (int, error) {
	i := 0
	for _, cb := range cbs {
		as := cb.App
		for j := range as {
			var app uint64
			if len(run) > 1 && run[0] >= 0x80 && run[1] < 0x80 {
				app, run = uint64(run[0]&0x7f)|uint64(run[1])<<7, run[2:]
			} else if len(run) != 0 && run[0] < 0x80 {
				app, run = uint64(run[0]), run[1:]
			} else if v, n := binary.Uvarint(run); n > 0 {
				app, run = v, run[n:]
			} else {
				return i, errColTruncated("app", i)
			}
			if app > 1<<16-1 {
				return i, fmt.Errorf("%w: out-of-range app at record %d", ErrCorrupt, i)
			}
			as[j] = uint16(app)
			i++
		}
	}
	if len(run) != 0 {
		return i, errColTrailing("app", len(run))
	}
	return i, nil
}

// inflateColumnarInto reconstructs the raw columnar payload of a compressed
// columnar segment into dst (len si.RawLen): the raw header followed by the
// four runs, each either copied (stored literally) or inflated through the
// scratch flate reader. On damage it returns the contiguous raw prefix
// recovered before the error, so the column decoders can deliver the
// records complete in every column up to the damage.
func (sc *segScratch) inflateColumnarInto(dst, p []byte, si SegmentInfo) ([]byte, error) {
	if len(p) < 2*colHeaderLen {
		return dst[:0], fmt.Errorf("%w: compressed columnar payload truncated inside its headers", ErrCorrupt)
	}
	rawL, rawSum := parseColHeader(p)
	stoL, stoSum := parseColHeader(p[colHeaderLen:])
	if colHeaderLen+rawSum != si.RawLen {
		return dst[:0], fmt.Errorf("%w: column runs sum to %d raw bytes, segment declares %d", ErrCorrupt, colHeaderLen+rawSum, si.RawLen)
	}
	if 2*colHeaderLen+stoSum != si.PayloadLen {
		return dst[:0], fmt.Errorf("%w: stored runs sum to %d bytes, segment payload is %d", ErrCorrupt, 2*colHeaderLen+stoSum, si.PayloadLen)
	}
	copy(dst[:colHeaderLen], p[:colHeaderLen])
	off := colHeaderLen
	poff := 2 * colHeaderLen
	for c := range rawL {
		raw, sto := rawL[c], stoL[c]
		if sto > raw {
			return dst[:off], fmt.Errorf("%w: %s column stores %d bytes for %d raw", ErrCorrupt, colNames[c], sto, raw)
		}
		stored := clampRun(p, poff, sto)
		if sto == raw {
			n := copy(dst[off:off+raw], stored)
			if n < raw {
				return dst[:off+n], fmt.Errorf("%w: %s column truncated after %d of %d bytes", ErrCorrupt, colNames[c], n, raw)
			}
		} else {
			n, err := sc.inflateRun(dst[off:off+raw], stored)
			if err != nil {
				return dst[:off+n], fmt.Errorf("%w: %s column damaged after %d of %d raw bytes: %w", ErrCorrupt, colNames[c], n, raw, err)
			}
		}
		off += raw
		poff += sto
	}
	return dst[:off], nil
}

// inflateRun inflates one stored column run into dst, requiring the stream
// to end exactly at len(dst).
func (sc *segScratch) inflateRun(dst, stored []byte) (int, error) {
	if sc.fr == nil {
		sc.fr = flate.NewReader(bytes.NewReader(stored))
	} else if err := sc.fr.(flate.Resetter).Reset(bytes.NewReader(stored), nil); err != nil {
		return 0, fmt.Errorf("flate reset: %w", err)
	}
	n, err := io.ReadFull(sc.fr, dst)
	if err != nil {
		return n, err
	}
	var one [1]byte
	if m, _ := sc.fr.Read(one[:]); m != 0 {
		return n, fmt.Errorf("run inflates past its declared %d bytes", len(dst))
	}
	return n, nil
}

// ColumnStats aggregates the per-column footprint of a trace's columnar
// segments: raw and on-disk (stored) bytes per field run, read from the
// payload headers alone — no run is inflated or decoded.
type ColumnStats struct {
	// Segments counts the columnar segments; Compressed those among them
	// stored with per-run compression.
	Segments, Compressed int
	// Raw and Stored are per-column byte totals in payload order:
	// timestamp deltas, flags, client ids, app sizes. Stored equals Raw
	// for columns of uncompressed segments.
	Raw, Stored [4]int64
}

// ColumnNames names the four ColumnStats columns, in order.
func (ColumnStats) ColumnNames() [4]string { return colNames }

// ReadColumnStats sums per-column sizes across the columnar segments of an
// indexed trace.
func ReadColumnStats(ra io.ReaderAt, ix *Index) (ColumnStats, error) {
	var cs ColumnStats
	for i, si := range ix.Segments {
		if !si.Columnar() {
			continue
		}
		cs.Segments++
		n := colHeaderLen
		if si.Compressed() {
			cs.Compressed++
			n = 2 * colHeaderLen
		}
		var hdr [2 * colHeaderLen]byte
		if _, err := ra.ReadAt(hdr[:n], si.Offset+int64(si.frameHeaderLen(ix.Version))); err != nil {
			return cs, fmt.Errorf("%w: segment %d column header: %w", ErrCorrupt, i, err)
		}
		rawL, _ := parseColHeader(hdr[:])
		stoL := rawL
		if si.Compressed() {
			stoL, _ = parseColHeader(hdr[colHeaderLen:])
		}
		for c := range rawL {
			cs.Raw[c] += int64(rawL[c])
			cs.Stored[c] += int64(stoL[c])
		}
	}
	return cs, nil
}
