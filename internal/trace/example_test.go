package trace_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"cstrace/internal/trace"
)

// ExampleWriter writes a few records in format v4 and inspects the segment
// index the Flush sealed into the file. SegmentPayload is shrunk so even
// this tiny stream spans several independently-decodable segments; real
// traces keep the 256 KiB default. (Segments this small never shrink under
// flate, so they are stored raw — see Example_compressedTrace for the
// compression path.)
func ExampleWriter() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.SegmentPayload = 16 // absurdly small: force a segment every few records
	for i := 0; i < 10; i++ {
		if err := w.Write(trace.Record{
			T:      time.Duration(i) * 50 * time.Millisecond,
			Dir:    trace.Out,
			Kind:   trace.KindGame,
			Client: 7,
			App:    130,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil { // seals segments, index and footer
		log.Fatal(err)
	}

	ix, err := trace.ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d records in %d segments\n", ix.Records, len(ix.Segments))
	fmt.Printf("first segment spans %v .. %v\n", ix.Segments[0].MinT, ix.Segments[0].MaxT)
	// Output:
	// 10 records in 5 segments
	// first segment spans 0s .. 100ms
}

// ExampleReader decodes a trace with the parallel read path: indexed
// segments fan out across worker goroutines and reassemble in file order,
// so the delivered stream is identical to a serial ReadAll. On a v1 trace
// or a non-seekable source the same call degrades to the serial scan.
func ExampleReader() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(trace.Record{
			T:   time.Duration(i) * 50 * time.Millisecond,
			Dir: trace.Out, Kind: trace.KindGame, Client: 7, App: 130,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	var got trace.Collect
	rd := trace.NewReader(bytes.NewReader(buf.Bytes()))
	n, err := rd.ReadAllParallel(&got, 4)
	if err != nil {
		log.Fatal(err)
	}
	last := got.Records[n-1]
	fmt.Printf("decoded %d records from a v%d trace\n", n, rd.Version())
	fmt.Printf("last: T=%v dir=%v app=%dB\n", last.T, last.Dir, last.App)
	// Output:
	// decoded 3 records from a v4 trace
	// last: T=100ms dir=out app=130B
}

// Example_compressedTrace writes a v4 trace whose segments are large enough
// for the default per-segment flate compression to engage, then reads it
// back and inspects the on-disk savings through the index. Game traffic
// compresses well: the flags, client and size columns repeat the same few
// values over and over (the timestamp-delta column stays literal — the
// writer keeps the decode path's hot column inflate-free).
func Example_compressedTrace() {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf) // v4: per-segment compression on by default
	w.SegmentPayload = 1 << 12 // small segments so the example spans several
	// w.CompressLevel = 9 would trade write CPU for the smallest file;
	// trace.CompressOff would store every segment raw.
	for i := 0; i < 20000; i++ {
		if err := w.Write(trace.Record{
			T:      time.Duration(i) * 5 * time.Millisecond,
			Dir:    trace.Direction(i % 2),
			Kind:   trace.KindGame,
			Client: uint32(i % 22),
			App:    [2]uint16{40, 130}[i%2],
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	ix, err := trace.ReadIndex(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d segments compressed: %v\n",
		len(ix.Segments), ix.CompressedSegments() == len(ix.Segments))
	fmt.Printf("on disk smaller than raw: %v\n", ix.PayloadBytes() < ix.RawBytes())

	var got trace.Collect
	rd := trace.NewReader(bytes.NewReader(buf.Bytes()))
	n, err := rd.ReadAllParallel(&got, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d records from a v%d trace\n", n, rd.Version())
	// Output:
	// all 37 segments compressed: true
	// on disk smaller than raw: true
	// read back 20000 records from a v4 trace
}
