// Package discovery implements the master-server protocol behind "dynamic
// server auto-discovery": game servers register with periodic heartbeats,
// clients fetch the address list and probe each entry with the game
// protocol's info query.
//
// The paper invokes exactly this machinery to explain the player dips
// around its three network outages: "while some of the players, having
// recorded the server's IP address, immediately reconnected, a significant
// number did not as they relied on dynamic server auto-discovery and
// auto-connecting to find this particular game server" (§III-A, citing
// Henderson's NetGames observations). A registration lapses when heartbeats
// stop, and a lapsed server is invisible to browsing clients until its next
// heartbeat lands — so a seconds-long outage produces a minutes-long dip,
// bounded by the heartbeat period plus the clients' own browse cadence.
//
// The wire format is a tiny binary UDP protocol of its own (the real
// Half-Life master protocol was likewise separate from the game protocol):
// a one-byte opcode followed by big-endian fields.
package discovery

import (
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Opcodes.
const (
	opHeartbeat = 0x71 // server → master: register/refresh
	opQuery     = 0x72 // client → master: request the list
	opList      = 0x73 // master → client: address list
	opBye       = 0x74 // server → master: deregister
)

// Wire errors.
var (
	ErrBadPacket = errors.New("discovery: malformed packet")
	ErrTimeout   = errors.New("discovery: query timed out")
)

// DefaultTTL is how long a registration survives without a heartbeat.
// Heartbeat period should be well under this (real master servers used
// minutes; tests use milliseconds).
const DefaultTTL = 5 * time.Minute

// maxListEntries bounds one list reply to keep the datagram under typical
// MTUs (6 bytes per entry + header).
const maxListEntries = 200

// Master is the registry service.
type Master struct {
	cfg    MasterConfig
	conn   net.PacketConn
	closed chan struct{}

	mu      sync.Mutex
	entries map[netip.AddrPort]time.Time // last heartbeat
	stats   MasterStats
}

// MasterConfig parameterizes the master server.
type MasterConfig struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:0".
	Addr string
	// TTL is the registration lifetime without refresh (DefaultTTL if 0).
	TTL time.Duration
	// Clock overrides time.Now for tests; nil means time.Now.
	Clock func() time.Time
}

// MasterStats counts registry activity.
type MasterStats struct {
	Heartbeats int64
	Queries    int64
	Byes       int64
}

// ListenMaster starts a master server.
func ListenMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	conn, err := net.ListenPacket("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		cfg:     cfg,
		conn:    conn,
		closed:  make(chan struct{}),
		entries: make(map[netip.AddrPort]time.Time),
	}
	go m.readLoop()
	return m, nil
}

// Addr returns the bound address.
func (m *Master) Addr() net.Addr { return m.conn.LocalAddr() }

// Close shuts the master down.
func (m *Master) Close() error {
	select {
	case <-m.closed:
		return nil
	default:
	}
	close(m.closed)
	return m.conn.Close()
}

// Stats returns a snapshot of registry activity.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Servers returns the currently live registrations, oldest first.
func (m *Master) Servers() []netip.AddrPort {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(now)
	out := make([]netip.AddrPort, 0, len(m.entries))
	for ap := range m.entries {
		out = append(out, ap)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := m.entries[out[i]], m.entries[out[j]]
		if !a.Equal(b) {
			return a.Before(b)
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// expireLocked drops lapsed registrations. Callers hold mu.
func (m *Master) expireLocked(now time.Time) {
	for ap, seen := range m.entries {
		if now.Sub(seen) > m.cfg.TTL {
			delete(m.entries, ap)
		}
	}
}

func (m *Master) readLoop() {
	buf := make([]byte, 2048)
	for {
		n, from, err := m.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-m.closed:
				return
			default:
				continue
			}
		}
		udp, ok := from.(*net.UDPAddr)
		if !ok {
			continue
		}
		m.handle(udp.AddrPort(), buf[:n])
	}
}

func (m *Master) handle(from netip.AddrPort, b []byte) {
	if len(b) < 1 {
		return
	}
	now := m.cfg.Clock()
	switch b[0] {
	case opHeartbeat:
		// Heartbeat carries the server's game port (the master cannot
		// trust the source port: the game socket differs from the
		// heartbeat socket behind some NATs).
		if len(b) < 3 {
			return
		}
		port := binary.BigEndian.Uint16(b[1:3])
		ap := netip.AddrPortFrom(from.Addr(), port)
		m.mu.Lock()
		m.entries[ap] = now
		m.stats.Heartbeats++
		m.mu.Unlock()
	case opBye:
		if len(b) < 3 {
			return
		}
		port := binary.BigEndian.Uint16(b[1:3])
		ap := netip.AddrPortFrom(from.Addr(), port)
		m.mu.Lock()
		delete(m.entries, ap)
		m.stats.Byes++
		m.mu.Unlock()
	case opQuery:
		m.mu.Lock()
		m.expireLocked(now)
		m.stats.Queries++
		list := make([]netip.AddrPort, 0, len(m.entries))
		for ap := range m.entries {
			list = append(list, ap)
			if len(list) == maxListEntries {
				break
			}
		}
		m.mu.Unlock()
		sort.Slice(list, func(i, j int) bool { return list[i].String() < list[j].String() })
		reply := encodeList(list)
		m.conn.WriteTo(reply, net.UDPAddrFromAddrPort(from))
	}
}

// encodeList builds an opList datagram: opcode, count, then 4-byte IPv4 +
// 2-byte port per entry.
func encodeList(list []netip.AddrPort) []byte {
	out := make([]byte, 0, 3+6*len(list))
	out = append(out, opList)
	out = binary.BigEndian.AppendUint16(out, uint16(len(list)))
	for _, ap := range list {
		a4 := ap.Addr().As4()
		out = append(out, a4[:]...)
		out = binary.BigEndian.AppendUint16(out, ap.Port())
	}
	return out
}

// decodeList parses an opList datagram.
func decodeList(b []byte) ([]netip.AddrPort, error) {
	if len(b) < 3 || b[0] != opList {
		return nil, ErrBadPacket
	}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+6*n {
		return nil, ErrBadPacket
	}
	out := make([]netip.AddrPort, 0, n)
	p := b[3:]
	for i := 0; i < n; i++ {
		addr := netip.AddrFrom4([4]byte(p[0:4]))
		port := binary.BigEndian.Uint16(p[4:6])
		out = append(out, netip.AddrPortFrom(addr, port))
		p = p[6:]
	}
	return out, nil
}

// Registrant keeps one game server registered: an initial heartbeat at
// start and refreshes every period until stopped.
type Registrant struct {
	conn   net.Conn
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
	port   uint16
	period time.Duration
}

// Register announces gamePort to the master at masterAddr and keeps the
// registration fresh every period.
func Register(masterAddr string, gamePort uint16, period time.Duration) (*Registrant, error) {
	if period <= 0 {
		return nil, errors.New("discovery: period must be positive")
	}
	conn, err := net.Dial("udp", masterAddr)
	if err != nil {
		return nil, err
	}
	r := &Registrant{
		conn:   conn,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		port:   gamePort,
		period: period,
	}
	r.beat()
	go r.loop()
	return r, nil
}

func (r *Registrant) beat() {
	var b [3]byte
	b[0] = opHeartbeat
	binary.BigEndian.PutUint16(b[1:3], r.port)
	r.conn.Write(b[:])
}

func (r *Registrant) loop() {
	defer close(r.done)
	t := time.NewTicker(r.period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.beat()
		case <-r.stop:
			return
		}
	}
}

// Stop sends a deregistration and stops heartbeats. Safe after Pause.
func (r *Registrant) Stop() {
	r.once.Do(func() {
		r.Pause()
		var b [3]byte
		b[0] = opBye
		binary.BigEndian.PutUint16(b[1:3], r.port)
		r.conn.Write(b[:])
		r.conn.Close()
	})
}

// Pause stops heartbeats without deregistering — an outage, as the trace
// saw: the server is up again later but invisible until it re-registers.
// Pause is idempotent.
func (r *Registrant) Pause() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// Resume restarts heartbeats after a Pause.
func (r *Registrant) Resume() {
	select {
	case <-r.done:
	default:
		return // still running
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.beat()
	go r.loop()
}

// Query asks the master for the current server list.
func Query(masterAddr string, timeout time.Duration) ([]netip.AddrPort, error) {
	conn, err := net.Dial("udp", masterAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{opQuery}); err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, ErrTimeout
	}
	return decodeList(buf[:n])
}
