package discovery

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newMaster(t *testing.T, ttl time.Duration, clock func() time.Time) *Master {
	t.Helper()
	m, err := ListenMaster(MasterConfig{TTL: ttl, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRegisterAndQuery(t *testing.T) {
	m := newMaster(t, time.Minute, nil)
	r, err := Register(m.Addr().String(), 27015, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	waitFor(t, "registration", func() bool { return len(m.Servers()) == 1 })

	list, err := Query(m.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("list = %v", list)
	}
	if list[0].Port() != 27015 {
		t.Errorf("port = %d, want 27015 (game port, not heartbeat source port)", list[0].Port())
	}
	if !list[0].Addr().IsLoopback() {
		t.Errorf("addr = %v, want loopback", list[0].Addr())
	}
}

func TestByeDeregisters(t *testing.T) {
	m := newMaster(t, time.Minute, nil)
	r, err := Register(m.Addr().String(), 27016, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool { return len(m.Servers()) == 1 })
	r.Stop()
	waitFor(t, "deregistration", func() bool { return len(m.Servers()) == 0 })
	st := m.Stats()
	if st.Byes != 1 {
		t.Errorf("byes = %d", st.Byes)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1018515304, 0)}
	m := newMaster(t, time.Minute, clock.Now)
	r, err := Register(m.Addr().String(), 27017, time.Hour /* no refresh */)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	waitFor(t, "registration", func() bool { return len(m.Servers()) == 1 })

	clock.Advance(2 * time.Minute)
	if n := len(m.Servers()); n != 0 {
		t.Errorf("servers after TTL = %d, want 0", n)
	}
	list, err := Query(m.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("query after TTL = %v, want empty", list)
	}
}

func TestPauseResume(t *testing.T) {
	// The outage scenario: heartbeats stop, the registration ages out,
	// and the server is invisible until heartbeats resume — the paper's
	// minutes-long player dip from a seconds-long outage.
	clock := &fakeClock{now: time.Unix(1018515304, 0)}
	m := newMaster(t, 30*time.Second, clock.Now)
	r, err := Register(m.Addr().String(), 27018, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	waitFor(t, "registration", func() bool { return len(m.Servers()) == 1 })

	r.Pause()
	clock.Advance(time.Minute)
	waitFor(t, "expiry during outage", func() bool { return len(m.Servers()) == 0 })

	r.Resume()
	waitFor(t, "re-registration", func() bool { return len(m.Servers()) == 1 })
}

func TestQueryEmptyMaster(t *testing.T) {
	m := newMaster(t, time.Minute, nil)
	list, err := Query(m.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("list = %v", list)
	}
}

func TestMultipleServersSorted(t *testing.T) {
	m := newMaster(t, time.Minute, nil)
	ports := []uint16{27021, 27019, 27020}
	for _, p := range ports {
		r, err := Register(m.Addr().String(), p, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
	}
	waitFor(t, "3 registrations", func() bool { return len(m.Servers()) == 3 })
	list, err := Query(m.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list = %v", list)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].String() > list[i].String() {
			t.Errorf("list not sorted: %v", list)
		}
	}
}

func TestMalformedPacketsIgnored(t *testing.T) {
	m := newMaster(t, time.Minute, nil)
	// Short heartbeat, unknown opcode, empty packet: all must be dropped
	// without a reply and without disturbing the registry.
	for _, b := range [][]byte{{opHeartbeat}, {0xff, 1, 2}, {}} {
		conn, err := netDial(m.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(b)
		conn.Close()
	}
	time.Sleep(20 * time.Millisecond)
	if n := len(m.Servers()); n != 0 {
		t.Errorf("registry polluted: %d entries", n)
	}
}

func TestDecodeListErrors(t *testing.T) {
	if _, err := decodeList([]byte{}); err != ErrBadPacket {
		t.Errorf("empty: %v", err)
	}
	if _, err := decodeList([]byte{opQuery, 0, 0}); err != ErrBadPacket {
		t.Errorf("wrong opcode: %v", err)
	}
	// Count says 2 entries but only 1 present.
	b := encodeList([]netip.AddrPort{netip.MustParseAddrPort("10.0.0.1:27015")})
	b[2] = 2
	if _, err := decodeList(b); err != ErrBadPacket {
		t.Errorf("short list: %v", err)
	}
}

func TestEncodeDecodeListRoundTrip(t *testing.T) {
	in := []netip.AddrPort{
		netip.MustParseAddrPort("10.0.0.1:27015"),
		netip.MustParseAddrPort("192.168.1.50:27016"),
		netip.MustParseAddrPort("172.16.3.4:1"),
	}
	out, err := decodeList(encodeList(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("entry %d: %v != %v", i, in[i], out[i])
		}
	}
}

// netDial is a test helper returning a UDP connection to addr.
func netDial(addr string) (net.Conn, error) {
	return net.Dial("udp", addr)
}

func TestStopAfterPause(t *testing.T) {
	m := newMaster(t, time.Minute, nil)
	r, err := Register(m.Addr().String(), 27030, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r.Pause()
	r.Pause() // idempotent
	r.Stop()  // must not panic on the already-closed stop channel
	r.Stop()  // idempotent
	waitFor(t, "deregistration", func() bool { return len(m.Servers()) == 0 })
}
