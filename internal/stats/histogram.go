package stats

import (
	"errors"
	"math"
)

// Histogram is a fixed-width-bin histogram over [Min, Max). Samples outside
// the range are clamped into the first/last bin so no mass is lost; the
// paper's figures do the same (e.g. the packet-size PDF is "truncated at 500
// bytes as only a negligible number of packets exceeded this").
type Histogram struct {
	min, max float64
	width    float64
	counts   []int64
	total    int64
}

// NewHistogram creates a histogram with nbins equal bins spanning [min, max).
func NewHistogram(min, max float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: NewHistogram: nbins must be positive")
	}
	if !(max > min) {
		return nil, errors.New("stats: NewHistogram: max must exceed min")
	}
	return &Histogram{
		min:    min,
		max:    max,
		width:  (max - min) / float64(nbins),
		counts: make([]int64, nbins),
	}, nil
}

// MustHistogram is NewHistogram for statically known-good parameters.
func MustHistogram(min, max float64, nbins int) *Histogram {
	h, err := NewHistogram(min, max, nbins)
	if err != nil {
		panic(err)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records a sample observed n times.
func (h *Histogram) AddN(x float64, n int64) {
	i := h.binOf(x)
	h.counts[i] += n
	h.total += n
}

func (h *Histogram) binOf(x float64) int {
	i := int((x - h.min) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// Total returns the total number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.min + (float64(i)+0.5)*h.width
}

// BinLow returns the inclusive lower edge of bin i.
func (h *Histogram) BinLow(i int) float64 { return h.min + float64(i)*h.width }

// PDF returns the probability mass in each bin (the paper's "probability
// density function" figures plot per-bin probability mass).
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CDF returns the cumulative probability at the upper edge of each bin.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// Mean returns the histogram mean using bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.counts {
		s += h.BinCenter(i) * float64(c)
	}
	return s / float64(h.total)
}

// Quantile returns the x value at cumulative probability q, interpolated
// within the containing bin.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target {
			var frac float64
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.BinLow(i) + frac*h.width
		}
		cum = next
	}
	return h.max
}

// FractionBelow returns the fraction of samples with value < x.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	if x <= h.min {
		return 0
	}
	if x >= h.max {
		return 1
	}
	pos := (x - h.min) / h.width
	full := int(pos)
	var cum int64
	for i := 0; i < full && i < len(h.counts); i++ {
		cum += h.counts[i]
	}
	f := float64(cum)
	if full < len(h.counts) {
		f += (pos - float64(full)) * float64(h.counts[full])
	}
	return f / float64(h.total)
}

// Merge adds the counts of o (which must have identical geometry).
func (h *Histogram) Merge(o *Histogram) error {
	if h.min != o.min || h.max != o.max || len(h.counts) != len(o.counts) {
		return errors.New("stats: Histogram.Merge: geometry mismatch")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	return nil
}

// IntHistogram is a dense histogram over small non-negative integers
// (one bin per value). It is the workhorse for packet-size distributions,
// where values are bytes in [0, ~1500].
type IntHistogram struct {
	counts []int64
	total  int64
	sum    int64
}

// NewIntHistogram creates a histogram covering values 0..max inclusive.
// Values above max are clamped into the last bin.
func NewIntHistogram(max int) *IntHistogram {
	return &IntHistogram{counts: make([]int64, max+1)}
}

// Add records one integer sample.
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	c := v
	if c >= len(h.counts) {
		c = len(h.counts) - 1
	}
	h.counts[c]++
	h.total++
	h.sum += int64(v)
}

// Total returns the number of samples.
func (h *IntHistogram) Total() int64 { return h.total }

// Merge adds the samples of o (whose value range must not exceed h's) —
// the write-back half of collectors that tally into per-part histograms and
// combine once, and of derived views like "total = in + out".
func (h *IntHistogram) Merge(o *IntHistogram) {
	for v, c := range o.counts {
		h.counts[v] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Mean returns the exact mean of the recorded values (not bin-clamped).
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Count returns the number of samples with value v.
func (h *IntHistogram) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Max returns the largest representable value.
func (h *IntHistogram) Max() int { return len(h.counts) - 1 }

// PDF returns per-value probability mass for values 0..Max.
func (h *IntHistogram) PDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CDF returns cumulative probability for values <= v, for v = 0..Max.
func (h *IntHistogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// FractionBelow returns the fraction of samples strictly less than v.
func (h *IntHistogram) FractionBelow(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for i := 0; i < v && i < len(h.counts); i++ {
		cum += h.counts[i]
	}
	return float64(cum) / float64(h.total)
}

// BinnedPDF groups values into bins of the given width and returns the
// probability mass per bin; used to render the paper's Fig 12 at a coarser
// granularity.
func (h *IntHistogram) BinnedPDF(width int) []float64 {
	if width <= 0 {
		width = 1
	}
	n := (len(h.counts) + width - 1) / width
	out := make([]float64, n)
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i/width] += float64(c) / float64(h.total)
	}
	return out
}
