package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if !almost(w.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", w.Variance())
	}
	if !almost(w.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", w.StdDev())
	}
	if !almost(w.SampleVariance(), 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", w.SampleVariance(), 32.0/7)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("empty Welford should report zeros")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	clean := func(xs []float64) []float64 {
		out := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && math.Abs(x) < 1e9 {
				out = append(out, x)
			}
		}
		return out
	}
	f := func(a, b []float64) bool {
		a, b = clean(a), clean(b)
		var all, wa, wb Welford
		for _, x := range a {
			all.Add(x)
			wa.Add(x)
		}
		for _, x := range b {
			all.Add(x)
			wb.Add(x)
		}
		wa.Merge(wb)
		return wa.N() == all.N() &&
			almost(wa.Mean(), all.Mean(), 1e-6*(1+math.Abs(all.Mean()))) &&
			almost(wa.Variance(), all.Variance(), 1e-6*(1+all.Variance()))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Error("AddN should match repeated Add")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{3, -1, 4, 1, 5} {
		s.Add(x)
	}
	if s.Min() != -1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Sum(), 12, 1e-12) {
		t.Errorf("Sum = %v", s.Sum())
	}
	if !almost(s.Mean(), 2.4, 1e-12) {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestMeanVarianceSlices(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5, 1e-12) {
		t.Error("Mean")
	}
	if !almost(Variance(xs), 1.25, 1e-12) {
		t.Error("Variance")
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slices")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extremes")
	}
	if !almost(Quantile(xs, 0.5), 3, 1e-12) {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile(xs, 0.25), 2, 1e-12) {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("want error for degenerate x")
	}
}

func TestFitLineRecoversNoisyLine(t *testing.T) {
	// Deterministic pseudo-noise; slope/intercept should be recovered closely.
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		noise := 0.01 * math.Sin(float64(i)*12.9898)
		ys[i] = 3.5 - 0.5*xs[i] + noise
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, -0.5, 1e-3) || !almost(fit.Intercept, 3.5, 1e-2) {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A period-2 alternating series has lag-1 autocorrelation ~ -1.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if r := Autocorrelation(xs, 1); !almost(r, -1, 0.01) {
		t.Errorf("lag-1 autocorr = %v, want ~-1", r)
	}
	if r := Autocorrelation(xs, 2); !almost(r, 1, 0.01) {
		t.Errorf("lag-2 autocorr = %v, want ~1", r)
	}
	if Autocorrelation(xs, 0) != 1 {
		t.Error("lag-0 autocorr must be 1")
	}
	if Autocorrelation([]float64{1, 1, 1}, 1) != 0 {
		t.Error("constant series autocorr should be 0 by convention")
	}
}

func TestAutocovarianceBounds(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Autocovariance(xs, -1) != 0 || Autocovariance(xs, 3) != 0 {
		t.Error("out-of-range lags should return 0")
	}
}

// Property: for any data, |autocorrelation| <= 1 + epsilon at any valid lag.
func TestAutocorrelationBoundedProperty(t *testing.T) {
	f := func(raw []float64, lag8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		k := int(lag8) % len(xs)
		r := Autocorrelation(xs, k)
		return r <= 1+1e-9 && r >= -1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
