package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("want error for empty range")
	}
	if _, err := NewHistogram(0, 10, 5); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := MustHistogram(0, 10, 10)
	h.Add(0)    // bin 0
	h.Add(0.5)  // bin 0
	h.Add(9.99) // bin 9
	h.Add(-5)   // clamped to bin 0
	h.Add(42)   // clamped to bin 9
	if h.Count(0) != 3 {
		t.Errorf("bin 0 count = %d, want 3", h.Count(0))
	}
	if h.Count(9) != 2 {
		t.Errorf("bin 9 count = %d, want 2", h.Count(9))
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramPDFCDFInvariants(t *testing.T) {
	f := func(samples []float64) bool {
		h := MustHistogram(-100, 100, 40)
		for _, x := range samples {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Add(x)
		}
		pdf := h.PDF()
		cdf := h.CDF()
		var sum float64
		prev := 0.0
		for i := range pdf {
			if pdf[i] < 0 {
				return false
			}
			sum += pdf[i]
			if cdf[i] < prev-1e-12 { // CDF monotone non-decreasing
				return false
			}
			prev = cdf[i]
		}
		if h.Total() == 0 {
			return sum == 0
		}
		return almost(sum, 1, 1e-9) && almost(cdf[len(cdf)-1], 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if q := h.Quantile(0.5); !almost(q, 50, 1.0) {
		t.Errorf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	empty := MustHistogram(0, 1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := MustHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if f := h.FractionBelow(5); !almost(f, 0.5, 0.06) {
		t.Errorf("FractionBelow(5) = %v", f)
	}
	if h.FractionBelow(-1) != 0 || h.FractionBelow(11) != 1 {
		t.Error("out-of-range FractionBelow")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram(0, 10, 5)
	b := MustHistogram(0, 10, 5)
	a.Add(1)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 2 || a.Count(4) != 1 {
		t.Error("merge did not combine counts")
	}
	c := MustHistogram(0, 20, 5)
	if err := a.Merge(c); err == nil {
		t.Error("want geometry mismatch error")
	}
}

func TestHistogramMean(t *testing.T) {
	h := MustHistogram(0, 10, 10)
	h.Add(2.5)
	h.Add(7.5)
	if !almost(h.Mean(), 5, 1e-9) {
		t.Errorf("Mean = %v", h.Mean())
	}
	if MustHistogram(0, 1, 1).Mean() != 0 {
		t.Error("empty mean")
	}
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram(500)
	h.Add(40)
	h.Add(40)
	h.Add(130)
	h.Add(700) // clamped into last bin but exact sum preserved
	h.Add(-3)  // clamped to 0... value counted as 0
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(40) != 2 {
		t.Errorf("Count(40) = %d", h.Count(40))
	}
	if h.Count(500) != 1 {
		t.Errorf("Count(500) = %d (clamp)", h.Count(500))
	}
	wantMean := (40.0 + 40 + 130 + 700 + 0) / 5
	if !almost(h.Mean(), wantMean, 1e-9) {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Count(-1) != 0 || h.Count(1000) != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestIntHistogramPDFCDF(t *testing.T) {
	h := NewIntHistogram(10)
	for v := 0; v <= 10; v++ {
		h.Add(v)
	}
	pdf := h.PDF()
	cdf := h.CDF()
	var sum float64
	for _, p := range pdf {
		sum += p
	}
	if !almost(sum, 1, 1e-12) {
		t.Errorf("pdf sum = %v", sum)
	}
	if !almost(cdf[10], 1, 1e-12) {
		t.Errorf("cdf end = %v", cdf[10])
	}
	if !almost(h.FractionBelow(5), 5.0/11, 1e-12) {
		t.Errorf("FractionBelow(5) = %v", h.FractionBelow(5))
	}
}

func TestIntHistogramBinnedPDF(t *testing.T) {
	h := NewIntHistogram(9)
	for v := 0; v <= 9; v++ {
		h.Add(v)
	}
	b := h.BinnedPDF(5)
	if len(b) != 2 {
		t.Fatalf("bins = %d", len(b))
	}
	if !almost(b[0], 0.5, 1e-12) || !almost(b[1], 0.5, 1e-12) {
		t.Errorf("binned = %v", b)
	}
	if got := h.BinnedPDF(0); len(got) != 10 {
		t.Error("width 0 should behave as width 1")
	}
}
