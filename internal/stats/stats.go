// Package stats provides the descriptive statistics the trace analysis is
// built on: streaming moments, histograms, empirical distributions,
// least-squares fits and quantiles.
//
// Everything here is stdlib-only and allocation-conscious: the analysis
// pipeline feeds hundreds of millions of samples through these types.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Welford accumulates count, mean and variance in a single streaming pass
// using Welford's numerically stable recurrence. The zero value is ready to
// use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN incorporates a sample observed n times.
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 if fewer than 1 sample).
func (w *Welford) Variance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected variance (0 if n < 2).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Summary holds one-pass summary statistics including extremes and a sum.
type Summary struct {
	Welford
	min, max float64
	sum      float64
}

// Add incorporates one sample.
func (s *Summary) Add(x float64) {
	if s.Welford.n == 0 || x < s.min {
		s.min = x
	}
	if s.Welford.n == 0 || x > s.max {
		s.max = x
	}
	s.sum += x
	s.Welford.Add(x)
}

// Min returns the smallest sample seen (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample seen (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Sum returns the total of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean of a slice. Returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of a slice (0 if empty).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of a slice.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// LinearFit is an ordinary least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// FitLine computes the least-squares fit through the points (xs[i], ys[i]).
// It returns an error if fewer than two points are given or all x are equal.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: FitLine: mismatched lengths")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, errors.New("stats: FitLine: need at least 2 points")
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: FitLine: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // perfectly flat data is perfectly fit by a flat line
	}
	return fit, nil
}

// Autocovariance returns the lag-k autocovariance of xs.
func Autocovariance(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return 0
	}
	m := Mean(xs)
	var s float64
	for i := 0; i+k < n; i++ {
		s += (xs[i] - m) * (xs[i+k] - m)
	}
	return s / float64(n)
}

// Autocorrelation returns the lag-k autocorrelation of xs in [-1, 1].
func Autocorrelation(xs []float64, k int) float64 {
	v := Autocovariance(xs, 0)
	if v == 0 {
		return 0
	}
	return Autocovariance(xs, k) / v
}
