package gameserver

import (
	"context"
	"time"

	"cstrace/internal/dist"
)

// Backoff computes jittered exponential retry delays for the discovery
// plane — master browses and info probes. A fixed retry period makes every
// failed client hammer the master in lockstep (and keeps hammering a dead
// server at full rate); exponential growth with randomized jitter spreads
// the fleet out and lets a struggling endpoint breathe. The zero value is
// usable: it resolves to 100ms base, 2s cap, doubling, half-width jitter,
// and an unlimited budget.
type Backoff struct {
	// Base is the delay before the first retry.
	Base time.Duration
	// Cap bounds the grown delay (before jitter).
	Cap time.Duration
	// Mult is the per-attempt growth factor.
	Mult float64
	// Jitter is the fraction of the delay that is randomized, in [0, 1]:
	// the sleep is uniform in [d*(1-Jitter), d], so 0 is deterministic and
	// 1 is "full jitter". Ignored when no RNG is supplied.
	Jitter float64
	// Budget, when > 0, caps how many retries Retry will spend before
	// giving up with the last error. <= 0 retries until the context ends.
	Budget int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 2 * time.Second
	}
	if b.Mult < 1 {
		b.Mult = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// Delay returns the sleep before retry number attempt (0-based): Base grown
// by Mult^attempt, capped at Cap, with the top Jitter fraction randomized
// by rng. A nil rng yields the deterministic upper edge.
func (b Backoff) Delay(attempt int, rng *dist.RNG) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Mult
		if d >= float64(b.Cap) {
			d = float64(b.Cap)
			break
		}
	}
	if rng != nil && b.Jitter > 0 {
		d = d*(1-b.Jitter) + rng.Float64()*d*b.Jitter
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Exhausted reports whether retry number attempt (0-based) would exceed the
// budget.
func (b Backoff) Exhausted(attempt int) bool {
	return b.Budget > 0 && attempt >= b.Budget
}

// Retry runs op until it succeeds, the budget is exhausted, or ctx ends,
// sleeping the backoff schedule between attempts. It returns how many
// retries were spent (0 when the first attempt succeeded) and the last
// error. The context error wins when the wait is what failed, so callers
// can distinguish "gave up" from "shut down".
func Retry(ctx context.Context, b Backoff, rng *dist.RNG, op func() error) (int, error) {
	b = b.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return attempt, nil
		}
		if b.Exhausted(attempt) {
			return attempt, err
		}
		t := time.NewTimer(b.Delay(attempt, rng))
		select {
		case <-ctx.Done():
			t.Stop()
			return attempt, ctx.Err()
		case <-t.C:
		}
	}
}
