package gameserver

import "net"

// netDial opens a raw UDP connection for protocol-abuse tests.
func netDial(addr string) (net.Conn, error) {
	return net.Dial("udp", addr)
}
