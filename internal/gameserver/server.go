// Package gameserver implements a real UDP game server and bot client
// speaking the internal/protocol wire format. It reproduces, on an actual
// network stack, the traffic structure the paper measures: a 50 ms snapshot
// broadcast loop to every connected client, small fixed-rate client command
// streams, slot-limited admission with rejects, and idle timeouts.
//
// A Tap hook exposes every datagram as a trace.Record so that live loopback
// traffic feeds the same analysis pipeline as the simulator and pcap files.
package gameserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"cstrace/internal/protocol"
	"cstrace/internal/trace"
)

// Config parameterizes the server.
type Config struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:0".
	Addr string
	// Slots is the player capacity (the paper's server ran 22).
	Slots int
	// TickInterval is the snapshot broadcast period (50 ms).
	TickInterval time.Duration
	// ClientTimeout disconnects clients that go silent (the trace's
	// "disconnect after not hearing from each other over a period of
	// several seconds").
	ClientTimeout time.Duration
	// MapName is reported in the connect handshake.
	MapName string
	// ServerName is the display name reported to server-browser probes.
	ServerName string
	// Tap, if set, receives one record per datagram sent or received,
	// timestamped relative to server start. It is called from the server
	// goroutines; implementations must be fast and thread-safe.
	Tap func(r trace.Record)
	// BatchTap, if set, takes precedence over Tap and receives records in
	// blocks: the synchronous tick broadcast arrives as one block per
	// tick (the paper's 50 ms burst, preserved as a unit), and other
	// datagrams coalesce into blocks delivered at least once per tick —
	// so a record may trail its datagram by up to one TickInterval.
	// Records carry capture timestamps, and implementations must copy
	// any records they retain. Called from the server goroutines;
	// implementations must be fast and thread-safe.
	BatchTap trace.BatchHandler
}

// DefaultConfig returns a 22-slot, 50 ms server on an ephemeral port.
func DefaultConfig() Config {
	return Config{
		Addr:          "127.0.0.1:0",
		Slots:         22,
		TickInterval:  50 * time.Millisecond,
		ClientTimeout: 5 * time.Second,
		MapName:       "de_dust2",
		ServerName:    "cstrace reference server",
	}
}

// Stats counts server activity.
type Stats struct {
	Accepted    int64
	Rejected    int64
	Disconnects int64
	Timeouts    int64
	Ticks       int64
	PacketsIn   int64
	PacketsOut  int64
	BytesIn     int64
	BytesOut    int64
}

type clientState struct {
	id       uint8
	addr     netip.AddrPort
	name     string
	lastSeen time.Time
	x, y, z  int16
	yaw      uint8
	anim     uint8
	session  uint32
}

// Server is a running game server.
type Server struct {
	cfg   Config
	conn  net.PacketConn
	start time.Time

	mu          sync.Mutex
	clients     map[netip.AddrPort]*clientState
	freeIDs     []uint8
	stats       Stats
	nextSession uint32

	// tapSink coalesces per-datagram tap records into blocks when a
	// BatchTap is configured; the tick loop flushes it every tick and
	// Close flushes it a final time.
	tapSink *trace.LockedBatcher

	closed chan struct{}
	once   sync.Once
}

// Listen binds the server socket. Call Serve to start the loops.
func Listen(cfg Config) (*Server, error) {
	if cfg.Slots <= 0 {
		return nil, errors.New("gameserver: Slots must be positive")
	}
	if cfg.TickInterval <= 0 {
		return nil, errors.New("gameserver: TickInterval must be positive")
	}
	if cfg.ClientTimeout <= 0 {
		cfg.ClientTimeout = 5 * time.Second
	}
	conn, err := net.ListenPacket("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("gameserver: listen: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		conn:    conn,
		start:   time.Now(),
		clients: make(map[netip.AddrPort]*clientState),
		closed:  make(chan struct{}),
	}
	if cfg.BatchTap != nil {
		s.tapSink = trace.NewLockedBatcher(cfg.BatchTap)
	}
	for id := cfg.Slots - 1; id >= 0; id-- {
		s.freeIDs = append(s.freeIDs, uint8(id))
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Serve runs the reader and tick loops until ctx is canceled or Close is
// called.
func (s *Server) Serve(ctx context.Context) error {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.readLoop()
	}()
	go func() {
		defer wg.Done()
		s.tickLoop(ctx)
	}()
	<-ctx.Done()
	s.Close()
	wg.Wait()
	// Final flush after both loops have stopped, so records tapped while
	// the shutdown raced the loops still reach the BatchTap.
	s.FlushTap()
	return nil
}

// Close shuts the server down. When Serve is not used, call FlushTap after
// the processing goroutines stop to deliver any coalesced tap records.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.closed)
		err = s.conn.Close()
	})
	return err
}

// FlushTap delivers any coalesced BatchTap records immediately. Serve calls
// it automatically after its loops exit.
func (s *Server) FlushTap() {
	if s.tapSink != nil {
		s.tapSink.Flush()
	}
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NumClients returns the number of connected players.
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

func (s *Server) tap(dir trace.Direction, kind trace.Kind, session uint32, n int) {
	if s.tapSink == nil && s.cfg.Tap == nil {
		return
	}
	r := trace.Record{
		T:      time.Since(s.start),
		Dir:    dir,
		Kind:   kind,
		Client: session,
		App:    uint16(n),
	}
	if s.tapSink != nil {
		s.tapSink.Handle(r) // coalesced; flushed each tick and on Close
		return
	}
	s.cfg.Tap(r)
}

// send writes one datagram and taps it individually. The tick broadcast
// bypasses it to tap the whole burst as one block.
func (s *Server) send(addr netip.AddrPort, kind trace.Kind, session uint32, payload []byte) {
	n, ok := s.write(addr, payload)
	if ok {
		s.tap(trace.Out, kind, session, n)
	}
}

func (s *Server) write(addr netip.AddrPort, payload []byte) (int, bool) {
	n, err := s.conn.WriteTo(payload, net.UDPAddrFromAddrPort(addr))
	if err != nil {
		return 0, false
	}
	s.mu.Lock()
	s.stats.PacketsOut++
	s.stats.BytesOut += int64(n)
	s.mu.Unlock()
	return n, true
}

func (s *Server) readLoop() {
	buf := make([]byte, 2048)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		udp, ok := from.(*net.UDPAddr)
		if !ok {
			continue
		}
		s.handleDatagram(udp.AddrPort(), buf[:n])
	}
}

func (s *Server) handleDatagram(from netip.AddrPort, b []byte) {
	typ, err := protocol.Peek(b)
	if err != nil {
		return // not ours; drop silently as real servers do
	}

	s.mu.Lock()
	s.stats.PacketsIn++
	s.stats.BytesIn += int64(len(b))
	c := s.clients[from]
	var session uint32
	if c != nil {
		session = c.session
	}
	s.mu.Unlock()

	kind := trace.KindGame
	if typ != protocol.MsgUserCmd {
		kind = trace.KindHandshake
	}
	s.tap(trace.In, kind, session, len(b))

	switch typ {
	case protocol.MsgConnectRequest:
		var req protocol.ConnectRequest
		if req.Unmarshal(b) != nil {
			return
		}
		s.handleConnect(from, req)
	case protocol.MsgUserCmd:
		var cmd protocol.UserCmd
		if cmd.Unmarshal(b) != nil {
			return
		}
		s.handleUserCmd(from, cmd)
	case protocol.MsgDisconnect:
		s.removeClient(from, false)
	case protocol.MsgInfoRequest:
		s.handleInfoRequest(from)
	}
}

// handleInfoRequest answers a server-browser probe with the current
// occupancy line. Probes are stateless: anyone may ask, no slot is held.
func (s *Server) handleInfoRequest(from netip.AddrPort) {
	s.mu.Lock()
	players := len(s.clients)
	name := s.cfg.ServerName
	mapName := s.cfg.MapName
	s.mu.Unlock()
	resp := protocol.InfoResponse{
		ServerName: name,
		Map:        mapName,
		Players:    uint8(players),
		MaxPlayers: uint8(s.cfg.Slots),
		Tick:       uint16(s.cfg.TickInterval / time.Millisecond),
	}
	b, err := resp.Marshal(nil)
	if err != nil {
		return
	}
	s.send(from, trace.KindHandshake, 0, b)
}

func (s *Server) handleConnect(from netip.AddrPort, req protocol.ConnectRequest) {
	s.mu.Lock()
	if c, ok := s.clients[from]; ok {
		// Duplicate connect: re-accept idempotently.
		id, session := c.id, c.session
		s.mu.Unlock()
		s.sendAccept(from, id, session)
		return
	}
	if len(s.freeIDs) == 0 {
		s.stats.Rejected++
		s.mu.Unlock()
		msg, err := (&protocol.ConnectReject{Reason: "server full"}).Marshal(nil)
		if err == nil {
			s.send(from, trace.KindHandshake, 0, msg)
		}
		return
	}
	id := s.freeIDs[len(s.freeIDs)-1]
	s.freeIDs = s.freeIDs[:len(s.freeIDs)-1]
	s.nextSession++
	c := &clientState{
		id:       id,
		addr:     from,
		name:     req.Name,
		lastSeen: time.Now(),
		session:  s.nextSession,
	}
	s.clients[from] = c
	s.stats.Accepted++
	session := c.session
	s.mu.Unlock()
	s.sendAccept(from, id, session)
}

func (s *Server) sendAccept(to netip.AddrPort, id uint8, session uint32) {
	acc := protocol.ConnectAccept{
		PlayerID:   id,
		TickMillis: uint16(s.cfg.TickInterval / time.Millisecond),
		MapName:    s.cfg.MapName,
	}
	msg, err := acc.Marshal(nil)
	if err == nil {
		s.send(to, trace.KindHandshake, session, msg)
	}
}

func (s *Server) handleUserCmd(from netip.AddrPort, cmd protocol.UserCmd) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[from]
	if !ok {
		return
	}
	c.lastSeen = time.Now()
	// Apply the movement to the world state.
	c.x += int16(cmd.MoveX)
	c.y += int16(cmd.MoveY)
	c.yaw = uint8(cmd.Yaw >> 8)
	c.anim = uint8(cmd.Buttons & 0x3)
}

func (s *Server) removeClient(from netip.AddrPort, timeout bool) {
	s.mu.Lock()
	c, ok := s.clients[from]
	if ok {
		delete(s.clients, from)
		s.freeIDs = append(s.freeIDs, c.id)
		s.stats.Disconnects++
		if timeout {
			s.stats.Timeouts++
		}
	}
	s.mu.Unlock()
}

// tickLoop broadcasts world snapshots every TickInterval — the synchronous
// flood the paper identifies as the source of the 50 ms bursts.
func (s *Server) tickLoop(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.TickInterval)
	defer ticker.Stop()
	var tick uint32
	events := make([]byte, 0, 64)
	burst := make([]trace.Record, 0, s.cfg.Slots)
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.closed:
			return
		case <-ticker.C:
		}
		tick++

		s.mu.Lock()
		s.stats.Ticks++
		now := time.Now()
		snap := protocol.Snapshot{Tick: tick}
		var stale []netip.AddrPort
		for addr, c := range s.clients {
			if now.Sub(c.lastSeen) > s.cfg.ClientTimeout {
				stale = append(stale, addr)
				continue
			}
			snap.Entities = append(snap.Entities, protocol.EntityState{
				ID: c.id, X: c.x, Y: c.y, Z: c.z, Yaw: c.yaw, Anim: c.anim,
			})
		}
		// Variable-length event padding: more players, more action.
		events = events[:0]
		for i := 0; i < len(snap.Entities); i++ {
			events = append(events, byte(tick), byte(i), 0, 0)
		}
		snap.Events = events
		targets := make([]struct {
			addr    netip.AddrPort
			session uint32
		}, 0, len(s.clients))
		for addr, c := range s.clients {
			if now.Sub(c.lastSeen) <= s.cfg.ClientTimeout {
				targets = append(targets, struct {
					addr    netip.AddrPort
					session uint32
				}{addr, c.session})
			}
		}
		s.mu.Unlock()

		for _, addr := range stale {
			s.removeClient(addr, true)
		}
		if s.tapSink != nil {
			// Per-tick latency bound for coalesced records, broadcast
			// or not.
			s.tapSink.Flush()
		}
		if len(targets) == 0 {
			continue
		}
		msg, err := snap.Marshal(nil)
		if err != nil {
			continue
		}
		// Back-to-back burst to every client: the paper's periodic spike.
		// With a BatchTap the whole burst taps as one block, so the
		// 50 ms spike reaches the analysis pipeline as the unit it is;
		// delivering it through the sink also flushes any coalesced
		// per-datagram records first, keeping the tick latency bound.
		if s.tapSink != nil {
			burst = burst[:0]
			for _, t := range targets {
				if n, ok := s.write(t.addr, msg); ok {
					burst = append(burst, trace.Record{
						T:      time.Since(s.start),
						Dir:    trace.Out,
						Kind:   trace.KindGame,
						Client: t.session,
						App:    uint16(n),
					})
				}
			}
			s.tapSink.HandleBatch(burst)
		} else {
			for _, t := range targets {
				s.send(t.addr, trace.KindGame, t.session, msg)
			}
		}
	}
}
