package gameserver

import (
	"net"
	"time"

	"cstrace/internal/protocol"
)

// QueryInfo probes a game server with an InfoRequest and returns its
// browser line and the probe's round-trip time. It is the client side of
// the in-game server browser: discovery (internal/discovery) yields
// addresses, QueryInfo ranks them.
func QueryInfo(addr string, timeout time.Duration) (protocol.InfoResponse, time.Duration, error) {
	var resp protocol.InfoResponse
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return resp, 0, err
	}
	defer conn.Close()

	var req protocol.InfoRequest
	b, err := req.Marshal(nil)
	if err != nil {
		return resp, 0, err
	}
	start := time.Now()
	if _, err := conn.Write(b); err != nil {
		return resp, 0, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return resp, 0, err
	}
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return resp, 0, err
		}
		// A snapshot or other stray datagram may arrive first if the
		// prober shares a port with a live session; skip non-responses.
		if typ, err := protocol.Peek(buf[:n]); err != nil || typ != protocol.MsgInfoResponse {
			continue
		}
		if err := resp.Unmarshal(buf[:n]); err != nil {
			return resp, 0, err
		}
		return resp, time.Since(start), nil
	}
}
