package gameserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/protocol"
)

// BotConfig parameterizes a bot client.
type BotConfig struct {
	// ServerAddr is the server's UDP address.
	ServerAddr string
	// Name is the player name sent in the handshake.
	Name string
	// CmdRate is the command send rate in packets/second (the trace's
	// ordinary clients run ~24 pps; "l337" ones crank it up).
	CmdRate float64
	// ConnectTimeout bounds the handshake.
	ConnectTimeout time.Duration
	// Seed drives the bot's movement.
	Seed uint64
}

// DefaultBotConfig returns an ordinary-client bot.
func DefaultBotConfig(addr string) BotConfig {
	return BotConfig{
		ServerAddr:     addr,
		Name:           "bot",
		CmdRate:        24,
		ConnectTimeout: 2 * time.Second,
		Seed:           1,
	}
}

// BotStats counts one bot's traffic.
type BotStats struct {
	CmdsSent      int64
	SnapshotsRecv int64
	BytesSent     int64
	BytesRecv     int64
	LastTick      uint32
	Entities      int
}

// Bot is a connected client.
type Bot struct {
	cfg      BotConfig
	conn     net.Conn
	playerID uint8
	mapName  string
	rng      *dist.RNG

	statsMu sync.Mutex
	stats   BotStats
}

// Dial connects a bot: it performs the handshake and returns once a slot is
// granted. A ConnectReject is reported as ErrServerFull.
func Dial(cfg BotConfig) (*Bot, error) {
	if cfg.CmdRate <= 0 {
		return nil, errors.New("gameserver: CmdRate must be positive")
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", cfg.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("gameserver: dial: %w", err)
	}
	b := &Bot{cfg: cfg, conn: conn, rng: dist.NewRNG(cfg.Seed)}

	req, err := (&protocol.ConnectRequest{Name: cfg.Name}).Marshal(nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(req); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(cfg.ConnectTimeout)); err != nil {
		conn.Close()
		return nil, err
	}
	buf := make([]byte, 2048)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("gameserver: handshake: %w", err)
		}
		typ, err := protocol.Peek(buf[:n])
		if err != nil {
			continue
		}
		switch typ {
		case protocol.MsgConnectAccept:
			var acc protocol.ConnectAccept
			if acc.Unmarshal(buf[:n]) != nil {
				continue
			}
			b.playerID = acc.PlayerID
			b.mapName = acc.MapName
			_ = conn.SetReadDeadline(time.Time{})
			return b, nil
		case protocol.MsgConnectReject:
			conn.Close()
			return nil, ErrServerFull
		default:
			// Snapshot raced ahead of the accept; keep waiting.
		}
	}
}

// ErrServerFull reports a refused connection.
var ErrServerFull = errors.New("gameserver: server full")

// PlayerID returns the granted slot id.
func (b *Bot) PlayerID() uint8 { return b.playerID }

// MapName returns the map reported by the server.
func (b *Bot) MapName() string { return b.mapName }

// Run plays until ctx is done: it streams user commands at CmdRate and
// consumes snapshots. It sends a Disconnect on the way out.
func (b *Bot) Run(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		var snap protocol.Snapshot
		for {
			if err := b.conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond)); err != nil {
				return
			}
			n, err := b.conn.Read(buf)
			if err != nil {
				select {
				case <-ctx.Done():
					return
				default:
					continue
				}
			}
			if typ, err := protocol.Peek(buf[:n]); err == nil && typ == protocol.MsgSnapshot {
				if snap.Unmarshal(buf[:n]) == nil {
					b.statsMu.Lock()
					b.stats.SnapshotsRecv++
					b.stats.BytesRecv += int64(n)
					b.stats.LastTick = snap.Tick
					b.stats.Entities = len(snap.Entities)
					b.statsMu.Unlock()
				}
			}
		}
	}()

	interval := time.Duration(float64(time.Second) / b.cfg.CmdRate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var seq uint32
	for {
		select {
		case <-ctx.Done():
			msg, err := (&protocol.Disconnect{PlayerID: b.playerID, Reason: "done"}).Marshal(nil)
			if err == nil {
				_, _ = b.conn.Write(msg)
			}
			b.conn.Close()
			<-done
			return nil
		case <-ticker.C:
			seq++
			cmd := protocol.UserCmd{
				PlayerID: b.playerID,
				Seq:      seq,
				Buttons:  uint16(b.rng.Uint64()),
				Pitch:    int16(b.rng.Uint64()),
				Yaw:      int16(b.rng.Uint64()),
				MoveX:    int8(b.rng.Intn(3) - 1),
				MoveY:    int8(b.rng.Intn(3) - 1),
			}
			msg, err := cmd.Marshal(nil)
			if err != nil {
				continue
			}
			if n, err := b.conn.Write(msg); err == nil {
				b.statsMu.Lock()
				b.stats.CmdsSent++
				b.stats.BytesSent += int64(n)
				b.statsMu.Unlock()
			}
		}
	}
}

// Stats returns a snapshot of the bot's counters.
func (b *Bot) Stats() BotStats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.stats
}
