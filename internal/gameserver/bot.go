package gameserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cstrace/internal/dist"
	"cstrace/internal/protocol"
)

// BotConfig parameterizes a bot client.
type BotConfig struct {
	// ServerAddr is the server's UDP address.
	ServerAddr string
	// Name is the player name sent in the handshake.
	Name string
	// CmdRate is the command send rate in packets/second (the trace's
	// ordinary clients run ~24 pps; "l337" ones crank it up).
	CmdRate float64
	// ConnectTimeout bounds the handshake.
	ConnectTimeout time.Duration
	// Seed drives the bot's movement.
	Seed uint64

	// Drop is the probability a user command is discarded before the
	// socket write — loss injected on the client send path, the harness-
	// edge mirror of internal/netem's queue drops. Handshake and
	// disconnect datagrams are exempt so connection state stays clean.
	Drop float64
	// Jitter, when > 0, delays each user command by |N(0, Jitter)| before
	// the write (the same half-normal spread internal/netem adds to
	// propagation). Delayed commands may reorder, as on a real jittery
	// path.
	Jitter time.Duration
	// SnapshotTimeout, when > 0, makes Run return ErrServerSilent once no
	// snapshot has arrived for that long — the dead-server detection a
	// fail-over harness needs. The clock starts at Run.
	SnapshotTimeout time.Duration
}

// DefaultBotConfig returns an ordinary-client bot.
func DefaultBotConfig(addr string) BotConfig {
	return BotConfig{
		ServerAddr:     addr,
		Name:           "bot",
		CmdRate:        24,
		ConnectTimeout: 2 * time.Second,
		Seed:           1,
	}
}

// BotStats counts one bot's traffic.
type BotStats struct {
	CmdsSent int64
	// CmdsDropped counts user commands discarded by the client-side loss
	// injection (BotConfig.Drop).
	CmdsDropped   int64
	SnapshotsRecv int64
	BytesSent     int64
	BytesRecv     int64
	// Retries counts backed-off discovery retries spent on this bot's
	// behalf — master re-browses and refused connection attempts. The Bot
	// itself connects once; the harness that redials it accumulates this.
	Retries  int64
	LastTick uint32
	Entities int
}

// Bot is a connected client.
type Bot struct {
	cfg      BotConfig
	conn     net.Conn
	playerID uint8
	mapName  string
	rng      *dist.RNG

	statsMu sync.Mutex
	stats   BotStats
}

// Dial connects a bot: it performs the handshake and returns once a slot is
// granted. A ConnectReject is reported as ErrServerFull.
func Dial(cfg BotConfig) (*Bot, error) {
	if cfg.CmdRate <= 0 {
		return nil, errors.New("gameserver: CmdRate must be positive")
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", cfg.ServerAddr)
	if err != nil {
		return nil, fmt.Errorf("gameserver: dial: %w", err)
	}
	b := &Bot{cfg: cfg, conn: conn, rng: dist.NewRNG(cfg.Seed)}

	req, err := (&protocol.ConnectRequest{Name: cfg.Name}).Marshal(nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(req); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(cfg.ConnectTimeout)); err != nil {
		conn.Close()
		return nil, err
	}
	buf := make([]byte, 2048)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("gameserver: handshake: %w", err)
		}
		typ, err := protocol.Peek(buf[:n])
		if err != nil {
			continue
		}
		switch typ {
		case protocol.MsgConnectAccept:
			var acc protocol.ConnectAccept
			if acc.Unmarshal(buf[:n]) != nil {
				continue
			}
			b.playerID = acc.PlayerID
			b.mapName = acc.MapName
			_ = conn.SetReadDeadline(time.Time{})
			return b, nil
		case protocol.MsgConnectReject:
			conn.Close()
			return nil, ErrServerFull
		default:
			// Snapshot raced ahead of the accept; keep waiting.
		}
	}
}

// ErrServerFull reports a refused connection.
var ErrServerFull = errors.New("gameserver: server full")

// ErrServerSilent reports that the server stopped sending snapshots for
// longer than BotConfig.SnapshotTimeout — the client-side symptom of a
// crashed or partitioned server, and the trigger for fail-over.
var ErrServerSilent = errors.New("gameserver: server went silent")

// PlayerID returns the granted slot id.
func (b *Bot) PlayerID() uint8 { return b.playerID }

// MapName returns the map reported by the server.
func (b *Bot) MapName() string { return b.mapName }

// Run plays until ctx is done: it streams user commands at CmdRate —
// subject to the configured Drop/Jitter injection — and consumes
// snapshots. On a clean exit (ctx done) it waits out any jitter-delayed
// commands, sends a Disconnect as its final datagram (never dropped or
// delayed, so the server frees the slot instead of waiting for the idle
// timeout), and returns nil. With SnapshotTimeout set it instead returns
// ErrServerSilent — without a Disconnect, since the server is presumed
// dead — once the snapshot stream stalls.
func (b *Bot) Run(ctx context.Context) error {
	done := make(chan struct{})
	var lastRecv atomic.Int64 // UnixNano of the last snapshot
	lastRecv.Store(time.Now().UnixNano())
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		var snap protocol.Snapshot
		for {
			if err := b.conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond)); err != nil {
				return
			}
			n, err := b.conn.Read(buf)
			if err != nil {
				select {
				case <-ctx.Done():
					return
				default:
					if errors.Is(err, net.ErrClosed) {
						return
					}
					continue
				}
			}
			if typ, err := protocol.Peek(buf[:n]); err == nil && typ == protocol.MsgSnapshot {
				if snap.Unmarshal(buf[:n]) == nil {
					lastRecv.Store(time.Now().UnixNano())
					b.statsMu.Lock()
					b.stats.SnapshotsRecv++
					b.stats.BytesRecv += int64(n)
					b.stats.LastTick = snap.Tick
					b.stats.Entities = len(snap.Entities)
					b.statsMu.Unlock()
				}
			}
		}
	}()

	// pending tracks jitter-delayed sends so shutdown can flush them
	// before the disconnect goes out.
	var pending sync.WaitGroup
	send := func(msg []byte) {
		if n, err := b.conn.Write(msg); err == nil {
			b.statsMu.Lock()
			b.stats.CmdsSent++
			b.stats.BytesSent += int64(n)
			b.statsMu.Unlock()
		}
	}

	interval := time.Duration(float64(time.Second) / b.cfg.CmdRate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var seq uint32
	for {
		select {
		case <-ctx.Done():
			pending.Wait()
			b.sendDisconnect()
			b.conn.Close()
			<-done
			return nil
		case <-ticker.C:
			if b.cfg.SnapshotTimeout > 0 &&
				time.Since(time.Unix(0, lastRecv.Load())) > b.cfg.SnapshotTimeout {
				pending.Wait()
				b.conn.Close()
				<-done
				return ErrServerSilent
			}
			seq++
			cmd := protocol.UserCmd{
				PlayerID: b.playerID,
				Seq:      seq,
				Buttons:  uint16(b.rng.Uint64()),
				Pitch:    int16(b.rng.Uint64()),
				Yaw:      int16(b.rng.Uint64()),
				MoveX:    int8(b.rng.Intn(3) - 1),
				MoveY:    int8(b.rng.Intn(3) - 1),
			}
			if b.cfg.Drop > 0 && b.rng.Float64() < b.cfg.Drop {
				b.statsMu.Lock()
				b.stats.CmdsDropped++
				b.statsMu.Unlock()
				continue
			}
			msg, err := cmd.Marshal(nil)
			if err != nil {
				continue
			}
			if b.cfg.Jitter > 0 {
				j := b.rng.NormFloat64() * float64(b.cfg.Jitter)
				if j < 0 {
					j = -j
				}
				pending.Add(1)
				time.AfterFunc(time.Duration(j), func() {
					defer pending.Done()
					send(msg)
				})
			} else {
				send(msg)
			}
		}
	}
}

// sendDisconnect announces a clean leave. It bypasses the Drop/Jitter
// injection: the disturbances model the data path, not the client's intent
// to leave, and a swallowed disconnect would turn every shutdown into a
// server-side timeout.
func (b *Bot) sendDisconnect() {
	msg, err := (&protocol.Disconnect{PlayerID: b.playerID, Reason: "done"}).Marshal(nil)
	if err == nil {
		_, _ = b.conn.Write(msg)
	}
}

// Stats returns a snapshot of the bot's counters.
func (b *Bot) Stats() BotStats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.stats
}
