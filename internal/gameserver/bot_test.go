package gameserver

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// TestBotDisconnectOnCancel locks down shutdown hygiene: an interrupted bot
// must leave with a Disconnect, so the server frees the slot immediately
// instead of waiting out the idle timeout.
func TestBotDisconnectOnCancel(t *testing.T) {
	srv, stop, _ := startServer(t, 4)
	defer stop()
	defer srv.Close()

	cfg := DefaultBotConfig(srv.Addr().String())
	cfg.CmdRate = 50
	b, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Run(ctx) }()

	waitFor(t, time.Second, func() bool { return b.Stats().CmdsSent > 5 })
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}

	if !waitFor(t, time.Second, func() bool { return srv.Stats().Disconnects == 1 }) {
		t.Fatalf("server saw %d disconnects, want 1", srv.Stats().Disconnects)
	}
	if n := srv.Stats().Timeouts; n != 0 {
		t.Fatalf("server timed the bot out (%d timeouts); shutdown did not disconnect", n)
	}
}

// TestBotDisconnectBypassesInjection: even with every user command dropped
// and heavy jitter configured, the farewell Disconnect must cross the wire —
// the disturbances model the data path, not the intent to leave.
func TestBotDisconnectBypassesInjection(t *testing.T) {
	srv, stop, _ := startServer(t, 4)
	defer stop()
	defer srv.Close()

	cfg := DefaultBotConfig(srv.Addr().String())
	cfg.CmdRate = 100
	cfg.Drop = 1.0
	cfg.Jitter = 20 * time.Millisecond
	b, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Run(ctx) }()

	waitFor(t, time.Second, func() bool { return b.Stats().CmdsDropped > 10 })
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}

	st := b.Stats()
	if st.CmdsSent != 0 {
		t.Errorf("drop=1.0 but %d commands crossed the socket", st.CmdsSent)
	}
	if st.CmdsDropped == 0 {
		t.Error("drop=1.0 counted no dropped commands")
	}
	if !waitFor(t, time.Second, func() bool { return srv.Stats().Disconnects == 1 }) {
		t.Fatalf("server saw %d disconnects, want 1", srv.Stats().Disconnects)
	}
}

// TestBotJitterStillDelivers: jitter delays sends but every command must
// eventually arrive (Run drains the delayed sends before returning).
func TestBotJitterStillDelivers(t *testing.T) {
	srv, stop, _ := startServer(t, 4)
	defer stop()
	defer srv.Close()

	cfg := DefaultBotConfig(srv.Addr().String())
	cfg.CmdRate = 100
	cfg.Jitter = 5 * time.Millisecond
	b, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Run(ctx) }()

	waitFor(t, 2*time.Second, func() bool { return b.Stats().CmdsSent > 20 })
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := b.Stats().CmdsSent; got <= 20 {
		t.Fatalf("jittered bot sent only %d commands", got)
	}
}

// TestBotDetectsSilentServer: with SnapshotTimeout set, a bot whose server
// vanishes mid-session returns ErrServerSilent (the fail-over trigger)
// rather than blocking until its context ends.
func TestBotDetectsSilentServer(t *testing.T) {
	srv, stop, _ := startServer(t, 4)
	defer srv.Close()

	cfg := DefaultBotConfig(srv.Addr().String())
	cfg.CmdRate = 50
	cfg.SnapshotTimeout = 400 * time.Millisecond
	b, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- b.Run(ctx) }()

	waitFor(t, time.Second, func() bool { return b.Stats().SnapshotsRecv > 2 })
	stop() // crash the server: snapshots cease, no goodbye

	select {
	case err := <-done:
		if !errors.Is(err, ErrServerSilent) {
			t.Fatalf("Run returned %v, want ErrServerSilent", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("bot did not notice the dead server")
	}
}
