package gameserver

import (
	"context"
	"net"
	"testing"
	"time"

	"cstrace/internal/discovery"
)

// startServer spins up a live loopback server for browser tests.
func startNamedServer(t *testing.T, name string, slots int) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ServerName = name
	cfg.Slots = slots
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.Serve(ctx)
	t.Cleanup(func() { s.Close() })
	return s
}

func gamePort(t *testing.T, s *Server) uint16 {
	t.Helper()
	ua, ok := s.Addr().(*net.UDPAddr)
	if !ok {
		t.Fatalf("server addr %T", s.Addr())
	}
	return uint16(ua.Port)
}

func TestQueryInfoLiveServer(t *testing.T) {
	s := startNamedServer(t, "Olygamer.com CS 24/7", 22)
	info, rtt, err := QueryInfo(s.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.ServerName != "Olygamer.com CS 24/7" {
		t.Errorf("name = %q", info.ServerName)
	}
	if info.MaxPlayers != 22 || info.Players != 0 {
		t.Errorf("occupancy = %d/%d", info.Players, info.MaxPlayers)
	}
	if info.Map != "de_dust2" {
		t.Errorf("map = %q", info.Map)
	}
	if info.Tick != 50 {
		t.Errorf("tick = %d ms", info.Tick)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("rtt = %v", rtt)
	}
}

func TestQueryInfoCountsConnectedPlayers(t *testing.T) {
	s := startNamedServer(t, "occupancy", 22)
	bcfg := DefaultBotConfig(s.Addr().String())
	bot, err := Dial(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go bot.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.NumClients() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	info, _, err := QueryInfo(s.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Players != 1 {
		t.Errorf("players = %d, want 1", info.Players)
	}
}

func TestBrowseEndToEnd(t *testing.T) {
	// The full auto-discovery cycle: master + two live servers; the
	// browser must return both, ranked, with live occupancy lines.
	master, err := discovery.ListenMaster(discovery.MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	s1 := startNamedServer(t, "server-one", 22)
	s2 := startNamedServer(t, "server-two", 16)
	r1, err := discovery.Register(master.Addr().String(), gamePort(t, s1), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Stop()
	r2, err := discovery.Register(master.Addr().String(), gamePort(t, s2), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Stop()

	var lines []ServerLine
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		lines, err = Browse(master.Addr().String(), time.Second)
		if err == nil && len(lines) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("browsed %d servers, want 2", len(lines))
	}
	names := map[string]uint8{}
	for _, l := range lines {
		names[l.Info.ServerName] = l.Info.MaxPlayers
		if l.RTT <= 0 {
			t.Errorf("%s: rtt = %v", l.Info.ServerName, l.RTT)
		}
	}
	if names["server-one"] != 22 || names["server-two"] != 16 {
		t.Errorf("browse lines wrong: %v", names)
	}
	// RTT-sorted.
	if len(lines) == 2 && lines[0].RTT > lines[1].RTT {
		t.Error("lines not sorted by RTT")
	}
}

func TestBrowseDropsDeadServers(t *testing.T) {
	// An outage-paused server stays in the master list until TTL but
	// stops answering probes: Browse must drop it, reproducing the
	// discovery-driven player dip.
	master, err := discovery.ListenMaster(discovery.MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	s := startNamedServer(t, "alive", 22)
	r, err := discovery.Register(master.Addr().String(), gamePort(t, s), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Register a dead address too (nothing listens there).
	deadConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadPort := uint16(deadConn.LocalAddr().(*net.UDPAddr).Port)
	deadConn.Close() // now truly dead
	rd, err := discovery.Register(master.Addr().String(), deadPort, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Stop()

	deadline := time.Now().Add(5 * time.Second)
	var lines []ServerLine
	for time.Now().Before(deadline) {
		if got, err := discovery.Query(master.Addr().String(), time.Second); err == nil && len(got) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	lines, err = Browse(master.Addr().String(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].Info.ServerName != "alive" {
		t.Errorf("lines = %+v, want only the live server", lines)
	}
}
