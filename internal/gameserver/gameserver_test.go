package gameserver

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cstrace/internal/trace"
)

// startServer spins up a server with a capture tap and returns it plus a
// way to read the captured records.
func startServer(t *testing.T, slots int) (*Server, context.CancelFunc, func() []trace.Record) {
	t.Helper()
	var mu sync.Mutex
	var recs []trace.Record
	cfg := DefaultConfig()
	cfg.Slots = slots
	cfg.ClientTimeout = 1500 * time.Millisecond
	cfg.Tap = func(r trace.Record) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
	}
	srv, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Serve(ctx)
	return srv, cancel, func() []trace.Record {
		mu.Lock()
		defer mu.Unlock()
		out := make([]trace.Record, len(recs))
		copy(out, recs)
		return out
	}
}

func runBots(t *testing.T, ctx context.Context, addr string, n int, rate float64) []*Bot {
	t.Helper()
	bots := make([]*Bot, 0, n)
	for i := 0; i < n; i++ {
		cfg := DefaultBotConfig(addr)
		cfg.Name = "bot"
		cfg.CmdRate = rate
		cfg.Seed = uint64(i + 1)
		b, err := Dial(cfg)
		if err != nil {
			t.Fatalf("bot %d: %v", i, err)
		}
		bots = append(bots, b)
		go b.Run(ctx)
	}
	return bots
}

func TestServeBroadcastAndCommands(t *testing.T) {
	srv, cancel, getRecs := startServer(t, 8)
	defer cancel()

	botCtx, botCancel := context.WithCancel(context.Background())
	bots := runBots(t, botCtx, srv.Addr().String(), 4, 30)

	time.Sleep(1200 * time.Millisecond)
	botCancel()
	time.Sleep(150 * time.Millisecond)
	cancel()

	if got := srv.Stats().Accepted; got != 4 {
		t.Errorf("accepted = %d, want 4", got)
	}
	st := srv.Stats()
	// ~24 ticks in 1.2s; each broadcasts to 4 clients.
	if st.Ticks < 15 {
		t.Errorf("ticks = %d, want ~24", st.Ticks)
	}
	if st.PacketsOut < 4*15 {
		t.Errorf("out packets = %d, too few for a broadcast loop", st.PacketsOut)
	}
	if st.PacketsIn < 4*20 {
		t.Errorf("in packets = %d, too few for 4 bots at 30 pps", st.PacketsIn)
	}

	for i, b := range bots {
		bs := b.Stats()
		if bs.SnapshotsRecv < 10 {
			t.Errorf("bot %d received %d snapshots", i, bs.SnapshotsRecv)
		}
		if bs.CmdsSent < 20 {
			t.Errorf("bot %d sent %d cmds", i, bs.CmdsSent)
		}
		if bs.Entities != 4 {
			t.Errorf("bot %d last snapshot had %d entities, want 4", i, bs.Entities)
		}
	}

	// The tap must mirror the structural properties the paper measures:
	// more in packets than out here? (4 bots at 30pps in vs 20Hz out:
	// in 120pps vs out 80pps), and out packets larger than in.
	recs := getRecs()
	var in, out, inBytes, outBytes float64
	for _, r := range recs {
		if r.Dir == trace.In {
			in++
			inBytes += float64(r.App)
		} else {
			out++
			outBytes += float64(r.App)
		}
	}
	if in == 0 || out == 0 {
		t.Fatal("tap captured nothing")
	}
	if in <= out {
		t.Errorf("in packets (%v) should exceed out (%v) at 30pps cmd vs 20Hz ticks", in, out)
	}
	if outBytes/out <= inBytes/in {
		t.Errorf("mean out size (%.1f) should exceed mean in size (%.1f)",
			outBytes/out, inBytes/in)
	}
}

func TestServerFullRejects(t *testing.T) {
	srv, cancel, _ := startServer(t, 2)
	defer cancel()

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	_ = runBots(t, ctx, srv.Addr().String(), 2, 20)

	cfg := DefaultBotConfig(srv.Addr().String())
	cfg.Name = "latecomer"
	_, err := Dial(cfg)
	if !errors.Is(err, ErrServerFull) {
		t.Fatalf("err = %v, want ErrServerFull", err)
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

func TestDisconnectFreesSlot(t *testing.T) {
	srv, cancel, _ := startServer(t, 1)
	defer cancel()

	ctx1, stop1 := context.WithCancel(context.Background())
	b1, err := Dial(DefaultBotConfig(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	go b1.Run(ctx1)
	time.Sleep(200 * time.Millisecond)
	stop1()
	time.Sleep(300 * time.Millisecond) // disconnect datagram lands

	if n := srv.NumClients(); n != 0 {
		t.Fatalf("clients = %d after disconnect", n)
	}
	// The slot is reusable.
	b2, err := Dial(DefaultBotConfig(srv.Addr().String()))
	if err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
	ctx2, stop2 := context.WithCancel(context.Background())
	go b2.Run(ctx2)
	time.Sleep(200 * time.Millisecond)
	stop2()
	if got := srv.Stats().Accepted; got != 2 {
		t.Errorf("accepted = %d, want 2", got)
	}
}

func TestClientTimeout(t *testing.T) {
	srv, cancel, _ := startServer(t, 4)
	defer cancel()

	// Dial but never run: the bot sends no commands, so the server must
	// time it out.
	if _, err := Dial(DefaultBotConfig(srv.Addr().String())); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		if srv.NumClients() == 0 {
			st := srv.Stats()
			if st.Timeouts != 1 {
				t.Errorf("timeouts = %d, want 1", st.Timeouts)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("idle client was never timed out")
}

func TestListenValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slots = 0
	if _, err := Listen(cfg); err == nil {
		t.Error("want error for zero slots")
	}
	cfg = DefaultConfig()
	cfg.TickInterval = 0
	if _, err := Listen(cfg); err == nil {
		t.Error("want error for zero tick")
	}
}

func TestDialValidation(t *testing.T) {
	cfg := DefaultBotConfig("127.0.0.1:1")
	cfg.CmdRate = 0
	if _, err := Dial(cfg); err == nil {
		t.Error("want error for zero cmd rate")
	}
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	srv, cancel, _ := startServer(t, 2)
	defer cancel()

	conn, err := netDial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not a game packet"))
	conn.Write([]byte{0})
	conn.Write(nil)
	time.Sleep(100 * time.Millisecond)
	if srv.NumClients() != 0 {
		t.Error("garbage should not create clients")
	}
}
