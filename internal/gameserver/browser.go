package gameserver

import (
	"net/netip"
	"sort"
	"time"

	"cstrace/internal/discovery"
	"cstrace/internal/protocol"
)

// ServerLine is one row of the in-game server browser: where, what, how
// full, how far.
type ServerLine struct {
	Addr netip.AddrPort
	Info protocol.InfoResponse
	RTT  time.Duration
}

// Browse performs the full auto-discovery cycle the paper's players relied
// on: fetch the address list from the master, probe every server with an
// info query, and return the responsive ones sorted by ascending RTT
// (the browser's default ranking). Unresponsive servers are dropped — which
// is exactly why an outage-paused server loses its discovery-dependent
// player inflow.
func Browse(masterAddr string, timeout time.Duration) ([]ServerLine, error) {
	addrs, err := discovery.Query(masterAddr, timeout)
	if err != nil {
		return nil, err
	}
	lines := make([]ServerLine, 0, len(addrs))
	for _, ap := range addrs {
		info, rtt, err := QueryInfo(ap.String(), timeout)
		if err != nil {
			continue
		}
		lines = append(lines, ServerLine{Addr: ap, Info: info, RTT: rtt})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].RTT != lines[j].RTT {
			return lines[i].RTT < lines[j].RTT
		}
		return lines[i].Addr.String() < lines[j].Addr.String()
	})
	return lines, nil
}
