package analysis

import (
	"math"
	"math/bits"
	"sort"
	"time"

	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// Interarrival collects per-direction packet interarrival times. The paper
// reads burstiness off binned plots (Figs 6-7); the interarrival view makes
// the same structure quantitative — outbound times split between ~0 (within
// a broadcast burst) and the 50 ms tick, while inbound times look like a
// smooth superposition of independent client streams — and it is what
// source models (Borella; internal/sourcemodel) consume.
type Interarrival struct {
	last [2]time.Duration
	seen [2]bool
	// Plain power sums instead of a Welford accumulator: the mean and CV
	// the report needs come out of Σx and Σx², two fused multiply-adds per
	// record where Welford's recurrence costs a divide. Gaps are seconds in
	// [1e-9, 1e3], so the sums hold comfortable precision at half a billion
	// samples.
	n          [2]int64
	sum, sumSq [2]float64
	hist       [2][]int64 // log₂-spaced microsecond buckets
	total      [2]int64
}

// interarrivalBuckets is the number of log₂ microsecond buckets: bucket i
// holds gaps in [2^i, 2^(i+1)) µs, bucket 0 holds sub-microsecond gaps, the
// last bucket is open-ended (≥ ~134 s).
const interarrivalBuckets = 28

// NewInterarrival creates the collector.
func NewInterarrival() *Interarrival {
	ia := &Interarrival{}
	ia.hist[trace.In] = make([]int64, interarrivalBuckets)
	ia.hist[trace.Out] = make([]int64, interarrivalBuckets)
	return ia
}

// Handle implements trace.Handler.
func (ia *Interarrival) Handle(r trace.Record) {
	d := r.Dir
	if ia.seen[d] {
		gap := r.T - ia.last[d]
		if gap >= 0 {
			g := gap.Seconds()
			ia.n[d]++
			ia.sum[d] += g
			ia.sumSq[d] += g * g
			ia.hist[d][iaBucket(gap)]++
			ia.total[d]++
		}
	}
	ia.seen[d] = true
	ia.last[d] = r.T
}

// HandleBatch implements trace.BatchHandler: the per-direction cursors and
// log₂ histogram accumulate in locals across the block, with one write-back
// per block instead of shared-state bumps per record. (The floating-point
// power sums accumulate per record, in exactly the order the per-record
// path would: float addition is order-sensitive, and results must be
// identical whatever the batch boundaries.)
func (ia *Interarrival) HandleBatch(rs []trace.Record) {
	last, seen := ia.last, ia.seen
	var hist [2][interarrivalBuckets]int64
	var total [2]int64
	for _, r := range rs {
		d := r.Dir
		if seen[d] {
			gap := r.T - last[d]
			if gap >= 0 {
				g := gap.Seconds()
				ia.sum[d] += g
				ia.sumSq[d] += g * g
				hist[d][iaBucket(gap)]++
				total[d]++
			}
		}
		seen[d] = true
		last[d] = r.T
	}
	ia.last, ia.seen = last, seen
	for d := 0; d < 2; d++ {
		if total[d] == 0 {
			continue
		}
		ia.n[d] += total[d]
		ia.total[d] += total[d]
		dst := ia.hist[d]
		for b, c := range hist[d] {
			dst[b] += c
		}
	}
}

// HandleColumns is the column-aware sweep: interarrival needs only the
// direction bit and the timestamp, so a column-decoded block (v4) is swept
// over the flags and timestamp arrays directly. The floating-point power
// sums accumulate in exactly the order HandleBatch would over the
// interleaved records, so results are bit-identical whichever path ran.
func (ia *Interarrival) HandleColumns(cb *trace.ColumnBlock) {
	last, seen := ia.last, ia.seen
	var hist [2][interarrivalBuckets]int64
	var total [2]int64
	ts := cb.T
	for i, f := range cb.Flags {
		d := trace.Direction(f & 1)
		t := ts[i]
		if seen[d] {
			gap := t - last[d]
			if gap >= 0 {
				g := gap.Seconds()
				ia.sum[d] += g
				ia.sumSq[d] += g * g
				hist[d][iaBucket(gap)]++
				total[d]++
			}
		}
		seen[d] = true
		last[d] = t
	}
	ia.last, ia.seen = last, seen
	for d := 0; d < 2; d++ {
		if total[d] == 0 {
			continue
		}
		ia.n[d] += total[d]
		ia.total[d] += total[d]
		dst := ia.hist[d]
		for b, c := range hist[d] {
			dst[b] += c
		}
	}
}

func iaBucket(gap time.Duration) int {
	us := gap.Microseconds()
	if us <= 0 {
		return 0
	}
	b := 64 - bits.LeadingZeros64(uint64(us))
	if b >= interarrivalBuckets {
		return interarrivalBuckets - 1
	}
	return b
}

// Mean returns the mean interarrival time in seconds for the direction.
func (ia *Interarrival) Mean(d trace.Direction) float64 {
	if ia.n[d] == 0 {
		return 0
	}
	return ia.sum[d] / float64(ia.n[d])
}

// CV returns the coefficient of variation (σ/mean) — the burstiness scalar:
// ≈1 for Poisson, ≫1 for the server's burst-then-silence pattern.
func (ia *Interarrival) CV(d trace.Direction) float64 {
	m := ia.Mean(d)
	if m == 0 {
		return 0
	}
	v := ia.sumSq[d]/float64(ia.n[d]) - m*m
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v) / m
}

// Quantile returns an approximate q-quantile (0<q<1) of the interarrival
// distribution from the log-spaced histogram (upper edge of the containing
// bucket).
func (ia *Interarrival) Quantile(d trace.Direction, q float64) time.Duration {
	if ia.total[d] == 0 {
		return 0
	}
	target := int64(q * float64(ia.total[d]))
	var cum int64
	for i, c := range ia.hist[d] {
		cum += c
		if cum > target {
			return time.Duration(1<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(1<<interarrivalBuckets) * time.Microsecond
}

// Histogram returns (bucket upper edge, count) pairs for plotting.
func (ia *Interarrival) Histogram(d trace.Direction) ([]time.Duration, []int64) {
	edges := make([]time.Duration, interarrivalBuckets)
	counts := make([]int64, interarrivalBuckets)
	for i := range edges {
		edges[i] = time.Duration(1<<uint(i+1)) * time.Microsecond
		counts[i] = ia.hist[d][i]
	}
	return edges, counts
}

// KindRow is one class of traffic in the composition table.
type KindRow struct {
	Kind      trace.Kind
	Packets   int64
	AppBytes  int64
	WireBytes int64
}

// KindBreakdown tallies traffic by application message class (§II's
// inventory of traffic sources: game state, handshakes, text, voice,
// logo/map downloads).
type KindBreakdown struct {
	rows   map[trace.Kind]*KindRow
	byKind [8]*KindRow // direct index for the known kinds (hot path)
}

// NewKindBreakdown creates the collector.
func NewKindBreakdown() *KindBreakdown {
	return &KindBreakdown{rows: make(map[trace.Kind]*KindRow)}
}

// Handle implements trace.Handler.
func (k *KindBreakdown) Handle(r trace.Record) {
	row := k.row(r.Kind)
	row.Packets++
	row.AppBytes += int64(r.App)
	row.WireBytes += int64(r.Wire())
}

// HandleBatch implements trace.BatchHandler: per-kind tallies accumulate in
// a block-local array (kinds fit in three bits, so the array is 8 wide) and
// merge into the shared rows once per block.
func (k *KindBreakdown) HandleBatch(rs []trace.Record) {
	var pkts, app [8]int64
	for _, r := range rs {
		if int(r.Kind) < len(pkts) {
			pkts[r.Kind]++
			app[r.Kind] += int64(r.App)
		} else {
			// Unknown kind (future format): take the slow path.
			row := k.row(r.Kind)
			row.Packets++
			row.AppBytes += int64(r.App)
			row.WireBytes += int64(r.Wire())
		}
	}
	for kind, n := range pkts {
		if n == 0 {
			continue
		}
		row := k.byKind[kind]
		if row == nil {
			row = k.row(trace.Kind(kind))
		}
		row.Packets += n
		row.AppBytes += app[kind]
		row.WireBytes += app[kind] + n*units.WireOverhead
	}
}

// row returns (creating on first use) the accumulator for one kind.
func (k *KindBreakdown) row(kind trace.Kind) *KindRow {
	row := k.rows[kind]
	if row == nil {
		row = &KindRow{Kind: kind}
		k.rows[kind] = row
		if int(kind) < len(k.byKind) {
			k.byKind[kind] = row
		}
	}
	return row
}

// Rows returns the composition sorted by descending packet count.
func (k *KindBreakdown) Rows() []KindRow {
	out := make([]KindRow, 0, len(k.rows))
	for _, r := range k.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Share returns the packet share of one kind in [0,1].
func (k *KindBreakdown) Share(kind trace.Kind) float64 {
	var total, mine int64
	for _, r := range k.rows {
		total += r.Packets
		if r.Kind == kind {
			mine = r.Packets
		}
	}
	if total == 0 {
		return 0
	}
	return float64(mine) / float64(total)
}

// Periodicity detects the server tick by autocorrelating the binned packet
// count of one direction — the quantitative counterpart of "the periodicity
// comes from the game server deterministically flooding its clients with
// state updates about every 50ms" (§III-B). Bin the outbound stream at a
// resolution well under the tick (10 ms default elsewhere), then the first
// dominant positive-lag peak of the autocorrelation is the tick.
type Periodicity struct {
	bin     time.Duration
	maxLag  int
	dir     trace.Direction
	current int64   // count in the bin being filled
	binIdx  int64   // index of the bin being filled
	recent  []int64 // ring of the last maxLag bin counts
	n       int64   // completed bins

	sum, sumSq float64
	lagSum     []float64 // Σ x_t·x_{t−l} for l = 1..maxLag
}

// NewPeriodicity creates a detector for the given direction with the given
// bin width, scanning lags 1..maxLag bins.
func NewPeriodicity(dir trace.Direction, bin time.Duration, maxLag int) *Periodicity {
	if maxLag < 1 {
		maxLag = 1
	}
	return &Periodicity{
		bin:    bin,
		maxLag: maxLag,
		dir:    dir,
		recent: make([]int64, maxLag),
		lagSum: make([]float64, maxLag+1),
	}
}

// Handle implements trace.Handler.
func (p *Periodicity) Handle(r trace.Record) {
	if r.Dir != p.dir {
		return
	}
	idx := int64(r.T / p.bin)
	for idx > p.binIdx {
		p.closeBin()
	}
	p.current++
}

// HandleBatch implements trace.BatchHandler. The bin index is cached
// across the sweep: broadcast bursts put runs of records in one bin, and a
// comparison against the cached bin's bounds replaces the 64-bit division
// for every record of a run.
func (p *Periodicity) HandleBatch(rs []trace.Record) {
	dir, bin := p.dir, p.bin
	lo := time.Duration(p.binIdx) * bin
	hi := lo + bin
	for _, r := range rs {
		if r.Dir != dir {
			continue
		}
		if r.T < lo || r.T >= hi {
			idx := int64(r.T / bin)
			for idx > p.binIdx {
				p.closeBin()
			}
			lo = time.Duration(p.binIdx) * bin
			hi = lo + bin
		}
		p.current++
	}
}

// closeBin finalizes the currently filling bin and moves to the next. Empty
// bins contribute nothing to the lag products, so the O(maxLag) inner loop
// runs only for occupied bins — on a 10 ms grid under a 50 ms tick, most
// bins are empty and close for the cost of a ring store.
func (p *Periodicity) closeBin() {
	x := float64(p.current)
	p.sum += x
	p.sumSq += x * x
	if p.current != 0 {
		for l := 1; l <= p.maxLag; l++ {
			if p.n-int64(l) >= 0 {
				prev := p.recent[(p.n-int64(l))%int64(p.maxLag)]
				p.lagSum[l] += x * float64(prev)
			}
		}
	}
	p.recent[p.n%int64(p.maxLag)] = p.current
	p.n++
	p.binIdx++
	p.current = 0
}

// Autocorrelation returns the normalized autocorrelation at lags 1..maxLag.
func (p *Periodicity) Autocorrelation() []float64 {
	n := float64(p.n)
	if n < 2 {
		return nil
	}
	mean := p.sum / n
	variance := p.sumSq/n - mean*mean
	out := make([]float64, p.maxLag)
	if variance <= 0 {
		return out
	}
	for l := 1; l <= p.maxLag; l++ {
		m := n - float64(l)
		if m <= 0 {
			continue
		}
		// E[x_t·x_{t−l}] − mean²; biased estimator, fine for peaks.
		out[l-1] = (p.lagSum[l]/m - mean*mean) / variance
	}
	return out
}

// Tick returns the detected period (the fundamental — every multiple of the
// true period also peaks, so the first lag whose correlation is a local
// maximum near the global one is the tick) and its correlation value.
// It returns zero when no positive peak exists.
func (p *Periodicity) Tick() (time.Duration, float64) {
	ac := p.Autocorrelation()
	bestVal := 0.0
	for _, v := range ac {
		if v > bestVal {
			bestVal = v
		}
	}
	if bestVal <= 0 || math.IsNaN(bestVal) {
		return 0, 0
	}
	for i, v := range ac {
		if v < 0.9*bestVal {
			continue
		}
		left := v
		if i > 0 {
			left = ac[i-1]
		}
		right := v
		if i+1 < len(ac) {
			right = ac[i+1]
		}
		if v >= left && v >= right {
			return time.Duration(i+1) * p.bin, v
		}
	}
	return 0, 0
}

// Flush finalizes the last partially-filled bin. Call once, before reading
// results.
func (p *Periodicity) Flush() {
	if p.current > 0 {
		p.closeBin()
	}
}
