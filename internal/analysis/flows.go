package analysis

import (
	"time"

	"cstrace/internal/stats"
	"cstrace/internal/trace"
)

// FlowStats summarizes one session's traffic.
type FlowStats struct {
	Client    uint32
	First     time.Duration
	Last      time.Duration
	Packets   int64
	WireBytes int64
	AppBytes  int64
}

// Duration returns the flow's active span.
func (f FlowStats) Duration() time.Duration { return f.Last - f.First }

// MeanKbs returns the flow's mean wire bandwidth in kbs over its span
// (both directions combined, as measured at the server).
func (f FlowStats) MeanKbs() float64 {
	d := f.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(f.WireBytes) * 8 / d / 1e3
}

// FlowBandwidth groups traffic by session and produces the paper's Fig 11:
// the histogram of mean bandwidth across sessions longer than a cutoff.
// Handshake traffic with no session (Client 0) is ignored.
//
// Session ids from the generator are small dense integers, so the hot path
// indexes a slice grown to the highest id seen; ids past the dense bound
// (foreign traces with sparse ids) fall back to a map.
type FlowBandwidth struct {
	dense []*FlowStats // index = client id, for ids < denseFlowLimit
	flows map[uint32]*FlowStats
}

// denseFlowLimit bounds the slice-indexed fast path; the slice grows to the
// highest id actually seen, so the worst case is one pointer per session.
const denseFlowLimit = 1 << 21

// NewFlowBandwidth creates the collector.
func NewFlowBandwidth() *FlowBandwidth {
	return &FlowBandwidth{flows: make(map[uint32]*FlowStats)}
}

// flow returns (creating if needed) the accumulator for one client id.
func (fb *FlowBandwidth) flow(client uint32, t time.Duration) *FlowStats {
	if client < denseFlowLimit {
		if int(client) >= len(fb.dense) {
			grown := make([]*FlowStats, client+1+uint32(len(fb.dense)/2))
			copy(grown, fb.dense)
			fb.dense = grown
		}
		f := fb.dense[client]
		if f == nil {
			f = &FlowStats{Client: client, First: t}
			fb.dense[client] = f
		}
		return f
	}
	f := fb.flows[client]
	if f == nil {
		f = &FlowStats{Client: client, First: t}
		fb.flows[client] = f
	}
	return f
}

// each visits every flow.
func (fb *FlowBandwidth) each(visit func(*FlowStats)) {
	for _, f := range fb.dense {
		if f != nil {
			visit(f)
		}
	}
	for _, f := range fb.flows {
		visit(f)
	}
}

// Handle implements trace.Handler.
func (fb *FlowBandwidth) Handle(r trace.Record) {
	if r.Client == 0 {
		return
	}
	f := fb.flow(r.Client, r.T)
	if r.T > f.Last {
		f.Last = r.T
	}
	if r.T < f.First {
		f.First = r.T
	}
	f.Packets++
	f.AppBytes += int64(r.App)
	f.WireBytes += int64(r.Wire())
}

// HandleBatch implements trace.BatchHandler.
func (fb *FlowBandwidth) HandleBatch(rs []trace.Record) {
	for _, r := range rs {
		if r.Client == 0 {
			continue
		}
		f := fb.flow(r.Client, r.T)
		if r.T > f.Last {
			f.Last = r.T
		}
		if r.T < f.First {
			f.First = r.T
		}
		f.Packets++
		f.AppBytes += int64(r.App)
		f.WireBytes += int64(r.Wire())
	}
}

// NumFlows returns the number of sessions observed.
func (fb *FlowBandwidth) NumFlows() int {
	n := len(fb.flows)
	for _, f := range fb.dense {
		if f != nil {
			n++
		}
	}
	return n
}

// Histogram bins mean session bandwidth (bits/sec) for sessions lasting at
// least minDuration, over [0, maxBps) with the given number of bins —
// Fig 11 uses sessions > 30 s on [0, 150000) b/s.
func (fb *FlowBandwidth) Histogram(minDuration time.Duration, maxBps float64, bins int) *stats.Histogram {
	h := stats.MustHistogram(0, maxBps, bins)
	fb.each(func(f *FlowStats) {
		if f.Duration() >= minDuration {
			h.Add(f.MeanKbs() * 1e3)
		}
	})
	return h
}

// Flows returns per-session stats for sessions lasting at least minDuration.
func (fb *FlowBandwidth) Flows(minDuration time.Duration) []FlowStats {
	out := make([]FlowStats, 0, fb.NumFlows())
	fb.each(func(f *FlowStats) {
		if f.Duration() >= minDuration {
			out = append(out, *f)
		}
	})
	return out
}

// FractionBelow returns the fraction of qualifying sessions whose mean
// bandwidth is below bps (e.g. the modem barrier at 56 kb/s).
func (fb *FlowBandwidth) FractionBelow(minDuration time.Duration, bps float64) float64 {
	var total, below int
	fb.each(func(f *FlowStats) {
		if f.Duration() < minDuration {
			return
		}
		total++
		if f.MeanKbs()*1e3 < bps {
			below++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(below) / float64(total)
}
