package analysis

import (
	"time"

	"cstrace/internal/trace"
)

// SlimSuite is the lightweight per-server collector set for large fleets:
// aggregate counters (Tables II-III) and the per-minute bandwidth and
// packet-load series (Figs 1-2, 4) only. A full Suite per box costs the
// variance-time ladder, four interval windows, per-flow state and the
// order-sensitive collectors for every server; the slim set keeps exactly
// what an operator reads off a per-box dashboard — total load and its
// minute-scale shape — at a small fraction of the sweep cost and a few KB
// of state, so scenario runs can carry per-server collection to hundreds
// of servers.
type SlimSuite struct {
	duration time.Duration
	Count    Counters
	Minutes  *MinuteSeries
	closed   bool
}

// NewSlimSuite builds the slim collector set for a trace of the given
// nominal length (used to pad the minute series; zero means "end at the
// last record").
func NewSlimSuite(duration time.Duration) *SlimSuite {
	return &SlimSuite{duration: duration, Minutes: NewMinuteSeries()}
}

// Handle implements trace.Handler.
func (s *SlimSuite) Handle(r trace.Record) {
	s.Count.Handle(r)
	s.Minutes.Handle(r)
}

// HandleBatch implements trace.BatchHandler.
func (s *SlimSuite) HandleBatch(rs []trace.Record) {
	s.Count.HandleBatch(rs)
	s.Minutes.HandleBatch(rs)
}

// Close finalizes the series. Call once after the last record.
func (s *SlimSuite) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.Minutes.PadTo(s.duration)
}

// TableII computes the paper's network-usage table over the configured
// duration.
func (s *SlimSuite) TableII() TableII { return s.Count.TableII(s.duration) }

var (
	_ trace.Handler      = (*SlimSuite)(nil)
	_ trace.BatchHandler = (*SlimSuite)(nil)
)
