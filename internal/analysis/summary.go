package analysis

import (
	"sort"
	"time"

	"cstrace/internal/trace"
)

// Summary is the serializable cross-run digest of a collector suite: the
// numbers worth keeping after the run is gone. It deliberately holds plain
// Go types only (int64/float64/string) so its JSON encoding is stable across
// builds, and it reads only close-independent collector state — Counters,
// the minute series, the interarrival buckets and the kind breakdown — so it
// can snapshot a live suite mid-stream without perturbing it. Collectors
// that require Close (variance-time, periodicity, player series) are
// excluded by design; they belong to one-shot reports, not the store.
type Summary struct {
	// Records is the total record (packet) count.
	Records int64
	// SpanSeconds is the analysis horizon the rates below are computed
	// over: the nominal duration when known, else the last timestamp seen.
	SpanSeconds float64

	PacketsIn   int64
	PacketsOut  int64
	AppBytesIn  int64
	AppBytesOut int64
	// WireBytes counts application payload plus per-packet framing
	// overhead, the paper's Table II accounting.
	WireBytes int64

	// Mean rates over SpanSeconds (paper units: decimal kilobits/second).
	MeanKbs    float64
	MeanKbsIn  float64
	MeanKbsOut float64
	MeanPPS    float64
	// Mean application payload per packet, per direction (Table III).
	MeanAppIn  float64
	MeanAppOut float64

	// MinuteKbs summarizes the per-minute total-bandwidth series: the
	// provisioning percentiles ("how bad does a busy minute get").
	MinuteKbs Percentiles

	// Interarrival p50 per direction in microseconds (upper edge of the
	// log2 bucket containing the median) and the coefficient of variation.
	IAInP50Micros  int64
	IAOutP50Micros int64
	IAInCV         float64
	IAOutCV        float64

	// Kinds is the traffic mix by packet kind, sorted by wire bytes
	// descending (the KindBreakdown row order).
	Kinds []KindStat
}

// Percentiles holds nearest-rank percentiles of a rate series.
type Percentiles struct {
	P50, P90, P95, P99, Max float64
}

// KindStat is one row of the serialized kind breakdown.
type KindStat struct {
	Kind      string
	Packets   int64
	AppBytes  int64
	WireBytes int64
}

// Summarize digests a suite into its serializable Summary. span is the
// nominal analysis horizon; zero or negative means "use the last timestamp
// seen" (exactly the Counters.TableII convention). The suite does not need
// to be closed: only close-independent collectors are read, and the suite
// remains usable for further records afterwards. For a given record stream
// in a given order the result is byte-for-byte deterministic, which is what
// lets the metrics store compare a daemon's incremental ingest against a
// one-shot analysis of the same records.
func Summarize(s *Suite, span time.Duration) Summary {
	c := &s.Count
	if span <= 0 {
		span = c.End
	}
	sec := span.Seconds()
	sum := Summary{
		Records:     c.Packets(),
		SpanSeconds: sec,
		PacketsIn:   c.PacketsIn,
		PacketsOut:  c.PacketsOut,
		AppBytesIn:  c.AppBytesIn,
		AppBytesOut: c.AppBytesOut,
		WireBytes:   c.WireBytes(),
	}
	if sec > 0 {
		sum.MeanKbs = float64(8*c.WireBytes()) / sec / 1e3
		sum.MeanKbsIn = float64(8*c.WireBytesIn()) / sec / 1e3
		sum.MeanKbsOut = float64(8*c.WireBytesOut()) / sec / 1e3
		sum.MeanPPS = float64(c.Packets()) / sec
	}
	if c.PacketsIn > 0 {
		sum.MeanAppIn = float64(c.AppBytesIn) / float64(c.PacketsIn)
	}
	if c.PacketsOut > 0 {
		sum.MeanAppOut = float64(c.AppBytesOut) / float64(c.PacketsOut)
	}
	if s.Minutes != nil {
		sum.MinuteKbs = SeriesPercentiles(s.Minutes.KbsTotal())
	}
	if s.Gaps != nil {
		sum.IAInP50Micros = s.Gaps.Quantile(trace.In, 0.5).Microseconds()
		sum.IAOutP50Micros = s.Gaps.Quantile(trace.Out, 0.5).Microseconds()
		sum.IAInCV = s.Gaps.CV(trace.In)
		sum.IAOutCV = s.Gaps.CV(trace.Out)
	}
	if s.Kinds != nil {
		for _, row := range s.Kinds.Rows() {
			sum.Kinds = append(sum.Kinds, KindStat{
				Kind:      row.Kind.String(),
				Packets:   row.Packets,
				AppBytes:  row.AppBytes,
				WireBytes: row.WireBytes,
			})
		}
	}
	return sum
}

// SeriesPercentiles computes nearest-rank percentiles over a rate series
// (typically per-minute kbs). An empty series yields zeros.
func SeriesPercentiles(series []float64) Percentiles {
	if len(series) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), series...)
	sort.Float64s(sorted)
	return Percentiles{
		P50: nearestRank(sorted, 0.50),
		P90: nearestRank(sorted, 0.90),
		P95: nearestRank(sorted, 0.95),
		P99: nearestRank(sorted, 0.99),
		Max: sorted[len(sorted)-1],
	}
}

// nearestRank returns the nearest-rank percentile of an ascending-sorted
// series, the same convention the fleet report uses.
func nearestRank(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
