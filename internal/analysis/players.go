package analysis

import (
	"time"

	"cstrace/internal/gamesim"
)

// PlayerSeries builds the paper's Fig 3: the per-minute count of players
// seen on the server. A player counts toward every minute their session
// overlaps, so the series can exceed the slot count when players come and
// go within one interval — exactly the artifact the paper notes.
type PlayerSeries struct {
	counts  []float64 // distinct players seen per minute
	current int       // active right now
	minute  int
}

// NewPlayerSeries creates the collector.
func NewPlayerSeries() *PlayerSeries { return &PlayerSeries{} }

// Observe consumes one session event; feed every event in time order.
func (p *PlayerSeries) Observe(ev gamesim.SessionEvent) {
	min := int(ev.T / time.Minute)
	p.extendTo(min)
	switch ev.Type {
	case gamesim.EventConnect:
		p.current++
		// A new arrival adds one distinct player to this minute.
		p.counts[min]++
	case gamesim.EventDisconnect:
		p.current--
	}
}

// extendTo materializes minutes up to and including min, seeding each new
// minute with the players already connected as it begins.
func (p *PlayerSeries) extendTo(min int) {
	for len(p.counts) <= min {
		p.counts = append(p.counts, float64(p.current))
	}
}

// Finish pads the series through the end of the trace.
func (p *PlayerSeries) Finish(duration time.Duration) {
	p.extendTo(int((duration - 1) / time.Minute))
}

// Counts returns the per-minute distinct-player series.
func (p *PlayerSeries) Counts() []float64 { return p.counts }

// Max returns the series maximum.
func (p *PlayerSeries) Max() float64 {
	var m float64
	for _, c := range p.counts {
		if c > m {
			m = c
		}
	}
	return m
}
