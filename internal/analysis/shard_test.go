package analysis

import (
	"reflect"
	"testing"
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
)

func shardWorkload(t testing.TB) gamesim.Config {
	cfg := gamesim.PaperConfig(11)
	cfg.Duration = 3 * time.Minute
	cfg.Warmup = 2 * time.Minute
	cfg.Outages = nil
	cfg.AttemptRate *= 5
	cfg.DiurnalAmp = 0
	return cfg
}

// suiteFingerprint extracts every collector result the reports are built
// from, so DeepEqual across pipeline modes is a whole-suite comparison.
func suiteFingerprint(s *Suite) map[string]any {
	tick, corr := s.Tick.Tick()
	fp := map[string]any{
		"tableII":  s.Count.TableII(s.Duration()),
		"tableIII": s.Count.TableIII(),
		"sizesIn":  s.Sizes.In.CDF(),
		"sizesOut": s.Sizes.Out.CDF(),
		"minutes":  s.Minutes.KbsTotal(),
		"pps":      s.Minutes.PPSTotal(),
		"flows":    s.Flows.NumFlows(),
		"flowHist": s.Flows.Histogram(30*time.Second, 150e3, 30).PDF(),
		"vt":       s.VT.Points(),
		"kinds":    s.Kinds.Rows(),
		"gapsInCV": s.Gaps.CV(trace.In),
		"gapsOut":  s.Gaps.Mean(trace.Out),
		"tick":     tick,
		"tickCorr": corr,
	}
	for _, w := range s.Windows {
		fp["window-"+w.Interval().String()] = w.TotalPPS()
	}
	return fp
}

// TestShardedMatchesSingleThreaded: the same workload through the
// per-record path, the batch path and the sharded path (2 and 3 workers)
// yields identical collector state — the determinism contract of sharded
// mode. Run with -race to exercise the concurrency.
func TestShardedMatchesSingleThreaded(t *testing.T) {
	cfg := shardWorkload(t)
	sc := DefaultSuiteConfig(cfg.Duration)

	newSuite := func() *Suite {
		s, err := NewSuite(sc)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Reference: per-record delivery (the legacy path) via an adapter that
	// hides the suite's BatchHandler from trace.Dispatch.
	ref := newSuite()
	if _, err := gamesim.Run(cfg, trace.HandlerFunc(ref.Handle), ref.Observe); err != nil {
		t.Fatal(err)
	}
	ref.Close()
	want := suiteFingerprint(ref)

	// Batched single-threaded.
	batched := newSuite()
	if _, err := gamesim.Run(cfg, batched, batched.Observe); err != nil {
		t.Fatal(err)
	}
	batched.Close()
	if got := suiteFingerprint(batched); !reflect.DeepEqual(want, got) {
		t.Errorf("batched suite diverges from per-record suite")
		diffFingerprint(t, want, got)
	}

	// Sharded at every composition: 2-3 workers keep the order group
	// inline, 4 splits Gaps+Tick onto a downstream worker behind the
	// SortBuffer fan-out, 5 gives each its own.
	for _, workers := range []int{2, 3, 4, 5} {
		s := newSuite()
		sh := Shard(s, workers)
		if _, err := gamesim.Run(cfg, sh, sh.Observe); err != nil {
			t.Fatal(err)
		}
		sh.Close()
		if got := suiteFingerprint(s); !reflect.DeepEqual(want, got) {
			t.Errorf("sharded(%d) suite diverges from per-record suite", workers)
			diffFingerprint(t, want, got)
		}
		for _, d := range sh.Depths() {
			if d.Blocks == 0 {
				t.Errorf("sharded(%d): group %q saw no blocks", workers, d.Name)
			}
		}
	}

	// Sorted-input mode: the generator's stream is strictly ordered, so
	// the suite drops its sorting stage; every collector result must still
	// match the unsorted reference exactly, single-threaded and sharded.
	scSorted := sc
	scSorted.SortedInput = true
	sorted, err := NewSuite(scSorted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gamesim.Run(cfg, sorted, sorted.Observe); err != nil {
		t.Fatal(err)
	}
	sorted.Close()
	if got := suiteFingerprint(sorted); !reflect.DeepEqual(want, got) {
		t.Errorf("sorted-input suite diverges from sorting suite")
		diffFingerprint(t, want, got)
	}
	for _, workers := range []int{2, 3, 4} {
		s, err := NewSuite(scSorted)
		if err != nil {
			t.Fatal(err)
		}
		sh := Shard(s, workers)
		if _, err := gamesim.Run(cfg, sh, sh.Observe); err != nil {
			t.Fatal(err)
		}
		sh.Close()
		if got := suiteFingerprint(s); !reflect.DeepEqual(want, got) {
			t.Errorf("sorted sharded(%d) suite diverges from per-record suite", workers)
			diffFingerprint(t, want, got)
		}
	}
}

func diffFingerprint(t *testing.T, want, got map[string]any) {
	t.Helper()
	for k := range want {
		if !reflect.DeepEqual(want[k], got[k]) {
			t.Logf("  %s differs", k)
		}
	}
}

// TestShardedRecordPath: records delivered one at a time into a sharded
// suite re-batch internally and still match.
func TestShardedRecordPath(t *testing.T) {
	cfg := shardWorkload(t)
	sc := DefaultSuiteConfig(cfg.Duration)

	ref, err := NewSuite(sc)
	if err != nil {
		t.Fatal(err)
	}
	var recs trace.Collect
	if _, err := gamesim.Run(cfg, &recs, nil); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs.Records {
		ref.Handle(r)
	}
	ref.Close()

	s, err := NewSuite(sc)
	if err != nil {
		t.Fatal(err)
	}
	sh := Shard(s, 3)
	for _, r := range recs.Records {
		sh.Handle(r)
	}
	sh.Close()

	want, got := suiteFingerprint(ref), suiteFingerprint(s)
	// The record-only feeds carry no session events, so the player series
	// is empty in both; everything else must match exactly.
	if !reflect.DeepEqual(want, got) {
		t.Errorf("sharded record path diverges")
		diffFingerprint(t, want, got)
	}
}

// TestShardedIngestBlockMatchesHandleBatch: the zero-copy IngestBlock path
// (trace.BlockIngester, fed by the parallel reader's direct decode-to-shard
// delivery) must produce collector state identical to the copying
// HandleBatch path — including with irregular block sizes like the partial
// blocks a segment decoder emits, and in both sorted and unsorted suite
// modes. Run with -race to exercise the fan-out.
func TestShardedIngestBlockMatchesHandleBatch(t *testing.T) {
	cfg := shardWorkload(t)
	var recs trace.Collect
	if _, err := gamesim.Run(cfg, &recs, nil); err != nil {
		t.Fatal(err)
	}

	for _, sortedInput := range []bool{false, true} {
		sc := DefaultSuiteConfig(cfg.Duration)
		sc.SortedInput = sortedInput
		ref, err := NewSuite(sc)
		if err != nil {
			t.Fatal(err)
		}
		refSh := Shard(ref, 4)
		refSh.HandleBatch(recs.Records)
		refSh.Close()
		want := suiteFingerprint(ref)

		for _, workers := range []int{2, 4, 5} {
			s, err := NewSuite(sc)
			if err != nil {
				t.Fatal(err)
			}
			sh := Shard(s, workers)
			// Deliver through owned blocks of irregular sizes (a partial
			// block every few, like segment tails).
			for i := 0; i < len(recs.Records); {
				size := trace.BlockSize
				if (i/trace.BlockSize)%3 == 2 {
					size = trace.BlockSize / 5
				}
				if i+size > len(recs.Records) {
					size = len(recs.Records) - i
				}
				blk := trace.NewBlock()
				*blk = append(*blk, recs.Records[i:i+size]...)
				sh.IngestBlock(blk)
				i += size
			}
			sh.Close()
			if got := suiteFingerprint(s); !reflect.DeepEqual(want, got) {
				t.Errorf("sorted=%v workers=%d: IngestBlock suite diverges from HandleBatch suite", sortedInput, workers)
				diffFingerprint(t, want, got)
			}
		}
	}
}

// TestShardedCloseIdempotent: Close twice is safe and the suite finalizes
// once.
func TestShardedCloseIdempotent(t *testing.T) {
	s, err := NewSuite(DefaultSuiteConfig(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	sh := Shard(s, 3)
	sh.HandleBatch([]trace.Record{{T: time.Second, Dir: trace.Out, App: 100}})
	sh.Close()
	sh.Close()
	if got := s.Count.Packets(); got != 1 {
		t.Fatalf("packets = %d, want 1", got)
	}
}
