package analysis

import (
	"sync"
	"sync/atomic"

	"cstrace/internal/trace"
)

// Sharded mode: the suite's collectors split into groups with no shared
// state, each group owned by one worker goroutine, and every incoming block
// fans out to all groups over bounded channels. Because each collector sees
// every record in exactly the stream order (channels are FIFO and each
// collector lives in exactly one group), sharded results are byte-identical
// to single-threaded results — the parallelism only overlaps the groups'
// sweeps in time.
//
// The natural split is by collector cost profile:
//
//	sizes/flows   — Counters, SizeDist, FlowBandwidth, KindBreakdown
//	variance-time — MinuteSeries, VarTime, IntervalWindows
//	order         — SortBuffer → Interarrival, Periodicity (heap-heavy)

// shardChanDepth bounds each group's channel: enough to keep workers busy,
// small enough to backpressure the generator instead of ballooning memory.
const shardChanDepth = 8

// shardBlock is a refcounted copy of an incoming batch, shared read-only by
// every group and recycled when the last group finishes with it.
type shardBlock struct {
	recs trace.Block
	refs atomic.Int32
}

var shardBlockPool = sync.Pool{
	New: func() any {
		return &shardBlock{recs: make(trace.Block, 0, trace.BlockSize)}
	},
}

// ShardedSuite runs a Suite's collector groups on worker goroutines. Create
// one with Shard, feed it records or blocks, and call Close to drain the
// workers and finalize the underlying suite. The embedded Suite's accessors
// (Count, Sizes, Window, ...) are valid after Close.
type ShardedSuite struct {
	*Suite
	chans   []chan *shardBlock
	wg      sync.WaitGroup
	pending *shardBlock
	stopped bool
}

// shardGroups returns the collector-group sweep functions in their natural
// three-way split.
func shardGroups() []func(*Suite, []trace.Record) {
	return []func(*Suite, []trace.Record){
		func(s *Suite, rs []trace.Record) {
			s.Count.HandleBatch(rs)
			s.Sizes.HandleBatch(rs)
			s.Flows.HandleBatch(rs)
			s.Kinds.HandleBatch(rs)
		},
		func(s *Suite, rs []trace.Record) {
			s.Minutes.HandleBatch(rs)
			s.VT.HandleBatch(rs)
			for _, w := range s.Windows {
				w.HandleBatch(rs)
			}
		},
		func(s *Suite, rs []trace.Record) {
			s.sorted.HandleBatch(rs)
		},
	}
}

// Shard wraps a freshly built Suite in sharded mode with up to workers
// goroutines (clamped to the three collector groups; values below 2 still
// shard with 2 workers — use the plain Suite for single-threaded runs).
// The caller must not feed the inner Suite directly afterwards.
func Shard(s *Suite, workers int) *ShardedSuite {
	groups := shardGroups()
	if workers < 2 {
		workers = 2
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	// Partition the groups across the workers: with 2 workers the two
	// cheap sweeps share a goroutine and the heap-heavy order group gets
	// its own.
	var parts [][]func(*Suite, []trace.Record)
	switch workers {
	case 2:
		parts = [][]func(*Suite, []trace.Record){
			{groups[0], groups[1]},
			{groups[2]},
		}
	default:
		for _, g := range groups {
			parts = append(parts, []func(*Suite, []trace.Record){g})
		}
	}

	sh := &ShardedSuite{Suite: s, pending: getShardBlock()}
	for _, part := range parts {
		ch := make(chan *shardBlock, shardChanDepth)
		sh.chans = append(sh.chans, ch)
		sh.wg.Add(1)
		go func(part []func(*Suite, []trace.Record), ch chan *shardBlock) {
			defer sh.wg.Done()
			for blk := range ch {
				for _, sweep := range part {
					sweep(s, blk.recs)
				}
				if blk.refs.Add(-1) == 0 {
					putShardBlock(blk)
				}
			}
		}(part, ch)
	}
	return sh
}

func getShardBlock() *shardBlock {
	blk := shardBlockPool.Get().(*shardBlock)
	blk.recs = blk.recs[:0]
	return blk
}

func putShardBlock(blk *shardBlock) { shardBlockPool.Put(blk) }

// Handle implements trace.Handler.
func (sh *ShardedSuite) Handle(r trace.Record) {
	sh.pending.recs = append(sh.pending.recs, r)
	if len(sh.pending.recs) == cap(sh.pending.recs) {
		sh.flush()
	}
}

// HandleBatch implements trace.BatchHandler. The batch is copied into an
// owned refcounted block (the caller reuses its slab immediately) and
// re-batched up to BlockSize before fanning out.
func (sh *ShardedSuite) HandleBatch(rs []trace.Record) {
	for len(rs) > 0 {
		free := cap(sh.pending.recs) - len(sh.pending.recs)
		if free == 0 {
			sh.flush()
			continue
		}
		n := min(free, len(rs))
		sh.pending.recs = append(sh.pending.recs, rs[:n]...)
		rs = rs[n:]
	}
	if len(sh.pending.recs) == cap(sh.pending.recs) {
		sh.flush()
	}
}

// flush fans the pending block out to every group.
func (sh *ShardedSuite) flush() {
	blk := sh.pending
	if len(blk.recs) == 0 {
		return
	}
	sh.pending = getShardBlock()
	blk.refs.Store(int32(len(sh.chans)))
	for _, ch := range sh.chans {
		ch <- blk
	}
}

// Close flushes pending records, drains and stops the workers, then
// finalizes the underlying suite. Call once after the last record.
func (sh *ShardedSuite) Close() {
	if !sh.stopped {
		sh.stopped = true
		sh.flush()
		for _, ch := range sh.chans {
			close(ch)
		}
		sh.wg.Wait()
	}
	sh.Suite.Close()
}

// Sink returns the suite's ingest handler for the given parallelism level
// and the matching finalizer: the suite itself below 2, a sharded wrapper
// otherwise. Call close exactly once after the last record (also on error
// paths — a sharded suite leaks worker goroutines otherwise).
func (s *Suite) Sink(parallelism int) (h trace.Handler, close func()) {
	if parallelism > 1 {
		sh := Shard(s, parallelism)
		return sh, sh.Close
	}
	return s, s.Close
}

var (
	_ trace.Handler      = (*ShardedSuite)(nil)
	_ trace.BatchHandler = (*ShardedSuite)(nil)
)
