package analysis

import (
	"sync"
	"sync/atomic"
	"time"

	"cstrace/internal/sched"
	"cstrace/internal/trace"
)

// Sharded mode: the suite's collectors split into groups with no shared
// state, each group owned by one worker goroutine, and every incoming block
// fans out to all ingest groups over bounded channels. Because each
// collector sees every record in exactly the stream order (channels are
// FIFO and each collector lives in exactly one group), sharded results are
// byte-identical to single-threaded results — the parallelism only overlaps
// the groups' sweeps in time.
//
// The natural split is by collector cost profile:
//
//	counts — Counters, SizeDist, FlowBandwidth, KindBreakdown
//	series — MinuteSeries, VarTime, IntervalWindows
//	order  — SortBuffer → Interarrival, Periodicity (sort-heavy)
//	gaps   — Interarrival alone  (when the order group is split)
//	tick   — Periodicity alone   (when the order group is split)
//
// The order group has historically been the straggler (the sort is the
// single most expensive sweep), so with enough workers it splits: the
// SortBuffer stage keeps its own worker and fans its sorted output to
// dedicated Interarrival and Periodicity workers. With SuiteConfig
// .SortedInput there is no sort stage at all and Gaps/Tick become ordinary
// ingest groups. Each group records channel-depth statistics at enqueue
// time (Depths), so the next straggler is measurable rather than guessed.

// ShardChanDepth bounds each group's channel: enough to keep workers busy,
// small enough to backpressure the generator instead of ballooning memory.
// Depth statistics (GroupDepth) are reported against this bound.
const ShardChanDepth = 8

// shardBlock is a refcounted block shared read-only by every receiving
// group and recycled when the last one finishes with it. It comes in three
// lifetimes: a copy of an incoming batch backed by the suite's own pool
// (the Handle/HandleBatch path), a zero-copy wrapper around a trace block
// whose ownership was transferred in via IngestBlock — owned marks that
// one — or an interleaved copy of a column-decoded segment chunk whose
// columns ride along (IngestColumns): cols lets column-aware collectors
// sweep the dense field arrays while everything else uses recs.
type shardBlock struct {
	recs  trace.Block
	owned *trace.Block       // non-nil when recs aliases a transferred trace block
	cols  *trace.ColumnBlock // non-nil when the columns of recs are also held
	refs  atomic.Int32
	// barrier marks a quiesce marker from the adaptive shard: the worker
	// signals it and moves on without sweeping or releasing.
	barrier *sync.WaitGroup
}

// release drops one reference and recycles the block when it was the last.
func (b *shardBlock) release() {
	if b.refs.Add(-1) != 0 {
		return
	}
	if b.cols != nil {
		trace.FreeColumnBlock(b.cols)
		b.cols = nil
	}
	if b.owned != nil {
		trace.FreeBlock(b.owned)
		b.owned, b.recs = nil, nil
		ownedWrapPool.Put(b)
		return
	}
	shardBlockPool.Put(b)
}

var shardBlockPool = sync.Pool{
	New: func() any {
		return &shardBlock{recs: make(trace.Block, 0, trace.BlockSize)}
	},
}

// ownedWrapPool recycles the carrier structs of IngestBlock deliveries; the
// record storage in that mode belongs to the trace block pool, so these
// wrappers hold no array of their own.
var ownedWrapPool = sync.Pool{New: func() any { return new(shardBlock) }}

func getShardBlock() *shardBlock {
	blk := shardBlockPool.Get().(*shardBlock)
	blk.recs = blk.recs[:0]
	return blk
}

// GroupDepth is one collector group's channel-depth statistics: how many
// blocks were enqueued to it and how full its channel was at each enqueue.
// A group whose mean depth hugs the channel bound is the straggler the
// pipeline is waiting on; a group near zero has headroom to absorb more
// collectors.
type GroupDepth struct {
	Name     string
	Blocks   int64 // blocks enqueued over the run
	SumDepth int64 // sum over enqueues of the queue length found
	MaxDepth int64
}

// MeanDepth returns the average queue length observed at enqueue.
func (g GroupDepth) MeanDepth() float64 {
	if g.Blocks == 0 {
		return 0
	}
	return float64(g.SumDepth) / float64(g.Blocks)
}

// shardWorker is one collector group: a bounded channel, the sweeps that
// run on its goroutine, and depth statistics owned by its single enqueuer.
type shardWorker struct {
	depth  GroupDepth
	ch     chan *shardBlock
	sweeps []func(*shardBlock)
	// units is the adaptive-mode assignment (exactly one of sweeps/units
	// is populated): the enqueuer mutates it at quiesced epoch boundaries
	// and the worker times each unit's sweep for the rebalance decision.
	units []*shardUnit
}

func newShardWorker(name string, sweeps ...func(*shardBlock)) *shardWorker {
	return &shardWorker{
		depth:  GroupDepth{Name: name},
		ch:     make(chan *shardBlock, ShardChanDepth),
		sweeps: sweeps,
	}
}

// send enqueues a block, recording the queue depth it found. Calls must be
// serialized: the group has a single logical enqueuer (one goroutine, or —
// on the IngestBlock path — decode workers whose hand-offs are ordered by
// the reader's turn chain).
func (w *shardWorker) send(blk *shardBlock) {
	d := int64(len(w.ch))
	w.depth.Blocks++
	w.depth.SumDepth += d
	if d > w.depth.MaxDepth {
		w.depth.MaxDepth = d
	}
	w.ch <- blk
}

func (w *shardWorker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for blk := range w.ch {
		if blk.barrier != nil {
			blk.barrier.Done()
			continue
		}
		for _, sweep := range w.sweeps {
			sweep(blk)
		}
		for _, u := range w.units {
			t0 := time.Now()
			u.sweep(blk)
			u.cost += time.Since(t0)
		}
		blk.release()
	}
}

// ShardedSuite runs a Suite's collector groups on worker goroutines. Create
// one with Shard, feed it records or blocks, and call Close to drain the
// workers and finalize the underlying suite. The embedded Suite's accessors
// (Count, Sizes, Window, ...) are valid after Close.
type ShardedSuite struct {
	*Suite
	ingest  []*shardWorker // fed by HandleBatch's fan-out
	down    []*shardWorker // fed by the order worker's sorted fan-out
	wg      sync.WaitGroup
	downWg  sync.WaitGroup
	pending *shardBlock
	stopped bool

	// Adaptive mode (see adaptive.go): epoch clock, depth snapshot at the
	// last epoch boundary, and the migration history. All owned by the
	// single logical enqueuer.
	adaptive   bool
	blocks     int64
	epochLen   int64
	lastEpoch  []GroupDepth
	rebalances []Rebalance
}

// sortedFan sits behind the suite's SortBuffer in split mode: each released
// (strictly ordered) block is copied into a refcounted shardBlock and
// enqueued to the downstream order-sensitive groups. It runs on the order
// group's worker goroutine, which is that channel set's single enqueuer.
type sortedFan struct {
	down []*shardWorker
}

func (f *sortedFan) Handle(r trace.Record) { f.HandleBatch([]trace.Record{r}) }

func (f *sortedFan) HandleBatch(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	blk := getShardBlock()
	blk.recs = append(blk.recs, rs...)
	blk.refs.Store(int32(len(f.down)))
	for _, w := range f.down {
		w.send(blk)
	}
}

// Shard wraps a freshly built Suite in sharded mode with up to workers
// goroutines (clamped to the available collector groups; values below 2
// still shard with 2 workers — use the plain Suite for single-threaded
// runs). The caller must not feed the inner Suite directly afterwards.
func Shard(s *Suite, workers int) *ShardedSuite {
	// Column-aware sweeps: when a block carries its columns (v4 column
	// delivery), collectors that consume a single field — SizeDist reads
	// direction+size, Interarrival direction+timestamp — sweep the dense
	// column arrays instead of striding through the interleaved records.
	// Results are identical either way; only the memory traffic shrinks.
	counts := func(b *shardBlock) {
		s.Count.HandleBatch(b.recs)
		if b.cols != nil {
			s.Sizes.HandleColumns(b.cols)
		} else {
			s.Sizes.HandleBatch(b.recs)
		}
		s.Flows.HandleBatch(b.recs)
		s.Kinds.HandleBatch(b.recs)
	}
	series := func(b *shardBlock) {
		s.Minutes.HandleBatch(b.recs)
		s.VT.HandleBatch(b.recs)
		for _, w := range s.Windows {
			w.HandleBatch(b.recs)
		}
	}
	gaps := func(b *shardBlock) {
		if b.cols != nil {
			s.Gaps.HandleColumns(b.cols)
		} else {
			s.Gaps.HandleBatch(b.recs)
		}
	}
	tick := func(b *shardBlock) { s.Tick.HandleBatch(b.recs) }

	sh := &ShardedSuite{Suite: s, pending: getShardBlock()}
	if s.sorted == nil {
		// Sorted input: no sort stage; the order-sensitive collectors are
		// ordinary ingest groups.
		switch {
		case workers <= 2:
			sh.ingest = []*shardWorker{
				newShardWorker("counts+series", counts, series),
				newShardWorker("gaps+tick", gaps, tick),
			}
		case workers == 3:
			sh.ingest = []*shardWorker{
				newShardWorker("counts", counts),
				newShardWorker("series", series),
				newShardWorker("gaps+tick", gaps, tick),
			}
		default:
			sh.ingest = []*shardWorker{
				newShardWorker("counts", counts),
				newShardWorker("series", series),
				newShardWorker("gaps", gaps),
				newShardWorker("tick", tick),
			}
		}
	} else {
		order := func(b *shardBlock) { s.sorted.HandleBatch(b.recs) }
		switch {
		case workers <= 2:
			sh.ingest = []*shardWorker{
				newShardWorker("counts+series", counts, series),
				newShardWorker("order+gaps+tick", order),
			}
		case workers == 3:
			sh.ingest = []*shardWorker{
				newShardWorker("counts", counts),
				newShardWorker("series", series),
				newShardWorker("order+gaps+tick", order),
			}
		case workers == 4:
			sh.down = []*shardWorker{newShardWorker("gaps+tick", gaps, tick)}
			sh.ingest = []*shardWorker{
				newShardWorker("counts", counts),
				newShardWorker("series", series),
				newShardWorker("order", order),
			}
		default:
			sh.down = []*shardWorker{
				newShardWorker("gaps", gaps),
				newShardWorker("tick", tick),
			}
			sh.ingest = []*shardWorker{
				newShardWorker("counts", counts),
				newShardWorker("series", series),
				newShardWorker("order", order),
			}
		}
		if len(sh.down) > 0 {
			// Split order group: rewire the SortBuffer's downstream from the
			// inline Tee to the fan-out, and start the downstream workers.
			s.orderOut.h = &sortedFan{down: sh.down}
			for _, w := range sh.down {
				sh.downWg.Add(1)
				go w.run(&sh.downWg)
			}
		}
	}
	for _, w := range sh.ingest {
		sh.wg.Add(1)
		go w.run(&sh.wg)
	}
	return sh
}

// Handle implements trace.Handler.
func (sh *ShardedSuite) Handle(r trace.Record) {
	sh.pending.recs = append(sh.pending.recs, r)
	if len(sh.pending.recs) == cap(sh.pending.recs) {
		sh.flush()
	}
}

// HandleBatch implements trace.BatchHandler. The batch is copied into an
// owned refcounted block (the caller reuses its slab immediately) and
// re-batched up to BlockSize before fanning out.
func (sh *ShardedSuite) HandleBatch(rs []trace.Record) {
	for len(rs) > 0 {
		free := cap(sh.pending.recs) - len(sh.pending.recs)
		if free == 0 {
			sh.flush()
			continue
		}
		n := min(free, len(rs))
		sh.pending.recs = append(sh.pending.recs, rs[:n]...)
		rs = rs[n:]
	}
	if len(sh.pending.recs) == cap(sh.pending.recs) {
		sh.flush()
	}
}

// flush fans the pending block out to every ingest group.
func (sh *ShardedSuite) flush() {
	blk := sh.pending
	if len(blk.recs) == 0 {
		return
	}
	sh.pending = getShardBlock()
	blk.refs.Store(int32(len(sh.ingest)))
	for _, w := range sh.ingest {
		w.send(blk)
	}
	sh.fanned()
}

// IngestBlock implements trace.BlockIngester: a decoded block is fanned out
// to every ingest group without copying or re-batching. The suite takes
// ownership of blk and recycles it to the trace block pool when the last
// group's sweep finishes. Calls must be serialized and ordered relative to
// Handle/HandleBatch — trace.Reader.ReadAllSharded's in-order delivery
// chain provides exactly that — because each group's channel has a single
// logical enqueuer.
func (sh *ShardedSuite) IngestBlock(blk *trace.Block) {
	if len(*blk) == 0 {
		trace.FreeBlock(blk)
		return
	}
	sh.flush() // records re-batched earlier must stay ahead of this block
	b := ownedWrapPool.Get().(*shardBlock)
	b.recs, b.owned = *blk, blk
	b.refs.Store(int32(len(sh.ingest)))
	for _, w := range sh.ingest {
		w.send(b)
	}
	sh.fanned()
}

// IngestColumns implements trace.ColumnIngester: a column-decoded segment
// chunk is interleaved once into a pooled block — the order-sensitive and
// multi-field collectors need full records — while the columns ride along
// so single-field collectors sweep them directly. Ownership of cb transfers
// to the suite; it is recycled when the last group's sweep finishes. The
// same serialization contract as IngestBlock applies.
func (sh *ShardedSuite) IngestColumns(cb *trace.ColumnBlock) {
	if cb.Len() == 0 {
		trace.FreeColumnBlock(cb)
		return
	}
	sh.flush() // records re-batched earlier must stay ahead of this block
	b := getShardBlock()
	b.recs = cb.AppendRecords(b.recs)
	b.cols = cb
	b.refs.Store(int32(len(sh.ingest)))
	for _, w := range sh.ingest {
		w.send(b)
	}
	sh.fanned()
}

// Close flushes pending records, drains and stops the workers, then
// finalizes the underlying suite. Call once after the last record.
func (sh *ShardedSuite) Close() {
	if !sh.stopped {
		sh.stopped = true
		sh.flush()
		for _, w := range sh.ingest {
			close(w.ch)
		}
		sh.wg.Wait()
		if len(sh.down) > 0 {
			// The ingest workers are parked, so flushing the SortBuffer from
			// here is single-threaded; its tail fans out to the downstream
			// workers, which then drain and stop.
			sh.Suite.sorted.Flush()
			for _, w := range sh.down {
				close(w.ch)
			}
			sh.downWg.Wait()
		}
	}
	sh.Suite.Close()
}

// Depths returns every collector group's channel-depth statistics, ingest
// groups first. Only valid after Close; the straggler is the group whose
// mean depth rides the channel bound (its consumers are always behind).
// For an adaptive shard the names reflect each worker's final unit
// assignment (the depth statistics are cumulative across assignments; see
// Rebalances for the migration history).
func (sh *ShardedSuite) Depths() []GroupDepth {
	out := make([]GroupDepth, 0, len(sh.ingest)+len(sh.down))
	for _, w := range sh.ingest {
		d := w.depth
		if sh.adaptive {
			d.Name = unitNames(w.units)
		}
		out = append(out, d)
	}
	for _, w := range sh.down {
		out = append(out, w.depth)
	}
	return out
}

// Sink returns the suite's ingest handler for the given parallelism level
// and the matching finalizer: the suite itself below 2, a statically
// sharded wrapper for explicit counts of 2 or more, and — for
// sched.Auto — an adaptive shard sized by a grant from the process-wide
// worker budget (released by close; a budget of one core resolves to the
// plain single-threaded suite). Call close exactly once after the last
// record (also on error paths — a sharded suite leaks worker goroutines
// otherwise).
func (s *Suite) Sink(parallelism int) (h trace.Handler, close func()) {
	if parallelism == sched.Auto {
		lease := sched.Default().Acquire(maxAutoShardWorkers)
		if lease.Workers() < 2 {
			lease.Release()
			return s, s.Close
		}
		sh := ShardAdaptive(s, lease.Workers())
		return sh, func() { sh.Close(); lease.Release() }
	}
	if parallelism > 1 {
		sh := Shard(s, parallelism)
		return sh, sh.Close
	}
	return s, s.Close
}

var (
	_ trace.Handler        = (*ShardedSuite)(nil)
	_ trace.BatchHandler   = (*ShardedSuite)(nil)
	_ trace.BlockIngester  = (*ShardedSuite)(nil)
	_ trace.ColumnIngester = (*ShardedSuite)(nil)
)
