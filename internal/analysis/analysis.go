// Package analysis implements the paper's trace characterization as a
// library of streaming collectors: network/application usage counters
// (Tables II-III), per-minute bandwidth/packet-load/player series (Figs 1-4),
// the multi-scale variance-time analysis (Figs 5-10), the per-session
// bandwidth histogram (Fig 11), and packet-size distributions (Figs 12-13).
//
// All collectors run in a single pass over the record stream in bounded
// memory, so the full half-billion-packet reproduction streams straight from
// the generator without materializing a trace.
//
// Suite bundles every collector behind one trace.Handler/BatchHandler;
// the batch path sweeps whole trace.Blocks through each collector in
// tight loops. Shard splits the suite's collectors into independent
// groups on worker goroutines fed by refcounted block fan-out — results
// are byte-identical to single-threaded runs because every collector
// still sees every record in stream order. Suite.Sink picks the mode
// from a parallelism knob. Order-sensitive collectors (Interarrival,
// Periodicity) sit behind an internal trace.SortBuffer; Observe feeds
// session lifecycle events to the player series independently of the
// record stream. See docs/ARCHITECTURE.md for the data-flow picture.
package analysis

import (
	"time"

	"cstrace/internal/stats"
	"cstrace/internal/timeseries"
	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// Counters accumulates the aggregate usage numbers behind Tables II and III.
type Counters struct {
	PacketsIn, PacketsOut   int64
	AppBytesIn, AppBytesOut int64
	End                     time.Duration // highest timestamp seen
}

// Handle implements trace.Handler.
func (c *Counters) Handle(r trace.Record) {
	if r.Dir == trace.In {
		c.PacketsIn++
		c.AppBytesIn += int64(r.App)
	} else {
		c.PacketsOut++
		c.AppBytesOut += int64(r.App)
	}
	if r.T > c.End {
		c.End = r.T
	}
}

// HandleBatch implements trace.BatchHandler: the block accumulates into
// locals, with one write-back per block.
func (c *Counters) HandleBatch(rs []trace.Record) {
	var pIn, pOut, bIn, bOut int64
	end := c.End
	for _, r := range rs {
		if r.Dir == trace.In {
			pIn++
			bIn += int64(r.App)
		} else {
			pOut++
			bOut += int64(r.App)
		}
		if r.T > end {
			end = r.T
		}
	}
	c.PacketsIn += pIn
	c.PacketsOut += pOut
	c.AppBytesIn += bIn
	c.AppBytesOut += bOut
	c.End = end
}

// Packets returns the total packet count.
func (c *Counters) Packets() int64 { return c.PacketsIn + c.PacketsOut }

// WireBytesIn returns inbound wire bytes under the paper's accounting.
func (c *Counters) WireBytesIn() int64 {
	return c.AppBytesIn + c.PacketsIn*units.WireOverhead
}

// WireBytesOut returns outbound wire bytes.
func (c *Counters) WireBytesOut() int64 {
	return c.AppBytesOut + c.PacketsOut*units.WireOverhead
}

// WireBytes returns total wire bytes.
func (c *Counters) WireBytes() int64 { return c.WireBytesIn() + c.WireBytesOut() }

// TableII is the paper's network usage summary.
type TableII struct {
	TotalPackets, PacketsIn, PacketsOut int64
	TotalBytes, BytesIn, BytesOut       units.Bytes
	MeanPPS, MeanPPSIn, MeanPPSOut      units.PacketsPerSecond
	MeanBW, MeanBWIn, MeanBWOut         units.BitsPerSecond
}

// TableII computes the paper's Table II over the observed duration (pass the
// nominal trace duration; zero means "use the last timestamp").
func (c *Counters) TableII(duration time.Duration) TableII {
	if duration <= 0 {
		duration = c.End
	}
	sec := duration.Seconds()
	return TableII{
		TotalPackets: c.Packets(),
		PacketsIn:    c.PacketsIn,
		PacketsOut:   c.PacketsOut,
		TotalBytes:   units.Bytes(c.WireBytes()),
		BytesIn:      units.Bytes(c.WireBytesIn()),
		BytesOut:     units.Bytes(c.WireBytesOut()),
		MeanPPS:      units.PacketRate(c.Packets(), sec),
		MeanPPSIn:    units.PacketRate(c.PacketsIn, sec),
		MeanPPSOut:   units.PacketRate(c.PacketsOut, sec),
		MeanBW:       units.Rate(units.Bytes(c.WireBytes()), sec),
		MeanBWIn:     units.Rate(units.Bytes(c.WireBytesIn()), sec),
		MeanBWOut:    units.Rate(units.Bytes(c.WireBytesOut()), sec),
	}
}

// TableIII is the paper's application-layer summary.
type TableIII struct {
	TotalBytes, BytesIn, BytesOut units.Bytes
	MeanSize, MeanIn, MeanOut     float64 // application bytes per packet
}

// TableIII computes the paper's Table III.
func (c *Counters) TableIII() TableIII {
	t := TableIII{
		TotalBytes: units.Bytes(c.AppBytesIn + c.AppBytesOut),
		BytesIn:    units.Bytes(c.AppBytesIn),
		BytesOut:   units.Bytes(c.AppBytesOut),
	}
	if n := c.Packets(); n > 0 {
		t.MeanSize = float64(c.AppBytesIn+c.AppBytesOut) / float64(n)
	}
	if c.PacketsIn > 0 {
		t.MeanIn = float64(c.AppBytesIn) / float64(c.PacketsIn)
	}
	if c.PacketsOut > 0 {
		t.MeanOut = float64(c.AppBytesOut) / float64(c.PacketsOut)
	}
	return t
}

// SizeDist collects application payload size distributions (Figs 12-13).
// Only the per-direction histograms are maintained on the hot path; the
// combined distribution is derived on demand, halving the per-record
// histogram work.
type SizeDist struct {
	In, Out *stats.IntHistogram
	max     int
}

// NewSizeDist creates histograms covering payloads up to max bytes.
func NewSizeDist(max int) *SizeDist {
	return &SizeDist{
		In:  stats.NewIntHistogram(max),
		Out: stats.NewIntHistogram(max),
		max: max,
	}
}

// Total returns the both-directions distribution, computed from the
// per-direction histograms. The result is a snapshot: records observed
// after the call are not reflected in it.
func (s *SizeDist) Total() *stats.IntHistogram {
	t := stats.NewIntHistogram(s.max)
	t.Merge(s.In)
	t.Merge(s.Out)
	return t
}

// Handle implements trace.Handler.
func (s *SizeDist) Handle(r trace.Record) {
	if r.Dir == trace.In {
		s.In.Add(int(r.App))
	} else {
		s.Out.Add(int(r.App))
	}
}

// HandleBatch implements trace.BatchHandler.
func (s *SizeDist) HandleBatch(rs []trace.Record) {
	in, out := s.In, s.Out
	for _, r := range rs {
		if r.Dir == trace.In {
			in.Add(int(r.App))
		} else {
			out.Add(int(r.App))
		}
	}
}

// HandleColumns is the column-aware sweep: the collector consumes only the
// direction bit and the app size, so a column-decoded block (v4) is swept
// over two dense arrays instead of striding through 24-byte Records. Counts
// are identical to HandleBatch over the interleaved records.
func (s *SizeDist) HandleColumns(cb *trace.ColumnBlock) {
	in, out := s.In, s.Out
	apps := cb.App
	for i, f := range cb.Flags {
		if trace.Direction(f&1) == trace.In {
			in.Add(int(apps[i]))
		} else {
			out.Add(int(apps[i]))
		}
	}
}

// MinuteSeries collects the per-minute bandwidth and packet-load series of
// Figs 1, 2 and 4.
type MinuteSeries struct {
	BitsIn, BitsOut *timeseries.Binner // wire bits per minute
	PktsIn, PktsOut *timeseries.Binner
}

// NewMinuteSeries creates the collector.
func NewMinuteSeries() *MinuteSeries {
	return &MinuteSeries{
		BitsIn:  timeseries.MustBinner(time.Minute),
		BitsOut: timeseries.MustBinner(time.Minute),
		PktsIn:  timeseries.MustBinner(time.Minute),
		PktsOut: timeseries.MustBinner(time.Minute),
	}
}

// Handle implements trace.Handler.
func (m *MinuteSeries) Handle(r trace.Record) {
	bits := float64(r.Wire() * 8)
	if r.Dir == trace.In {
		m.BitsIn.Add(r.T, bits)
		m.PktsIn.Add(r.T, 1)
	} else {
		m.BitsOut.Add(r.T, bits)
		m.PktsOut.Add(r.T, 1)
	}
}

// HandleBatch implements trace.BatchHandler. A block spans a handful of
// ticks at most, so nearly every record lands in the same minute: per-minute
// runs accumulate into locals and flush once per direction per run.
func (m *MinuteSeries) HandleBatch(rs []trace.Record) {
	var runT time.Duration = -1
	var bitsIn, bitsOut, pktsIn, pktsOut float64
	flush := func(t time.Duration) {
		if pktsIn > 0 {
			m.BitsIn.Add(t, bitsIn)
			m.PktsIn.Add(t, pktsIn)
			bitsIn, pktsIn = 0, 0
		}
		if pktsOut > 0 {
			m.BitsOut.Add(t, bitsOut)
			m.PktsOut.Add(t, pktsOut)
			bitsOut, pktsOut = 0, 0
		}
	}
	for _, r := range rs {
		min := r.T / time.Minute
		if min != runT {
			if runT >= 0 {
				flush(runT * time.Minute)
			}
			runT = min
		}
		bits := float64(r.Wire() * 8)
		if r.Dir == trace.In {
			bitsIn += bits
			pktsIn++
		} else {
			bitsOut += bits
			pktsOut++
		}
	}
	if runT >= 0 {
		flush(runT * time.Minute)
	}
}

// PadTo extends all four series through t.
func (m *MinuteSeries) PadTo(t time.Duration) {
	m.BitsIn.PadTo(t)
	m.BitsOut.PadTo(t)
	m.PktsIn.PadTo(t)
	m.PktsOut.PadTo(t)
}

// KbsIn returns the per-minute inbound bandwidth in kbs (Fig 4a).
func (m *MinuteSeries) KbsIn() []float64 { return scale(m.BitsIn.Rates(), 1e-3) }

// KbsOut returns the per-minute outbound bandwidth in kbs (Fig 4b).
func (m *MinuteSeries) KbsOut() []float64 { return scale(m.BitsOut.Rates(), 1e-3) }

// KbsTotal returns the per-minute total bandwidth in kbs (Fig 1).
func (m *MinuteSeries) KbsTotal() []float64 {
	return sum2(m.KbsIn(), m.KbsOut())
}

// PPSIn returns per-minute inbound packet rates (Fig 4c).
func (m *MinuteSeries) PPSIn() []float64 { return m.PktsIn.Rates() }

// PPSOut returns per-minute outbound packet rates (Fig 4d).
func (m *MinuteSeries) PPSOut() []float64 { return m.PktsOut.Rates() }

// PPSTotal returns per-minute total packet rates (Fig 2).
func (m *MinuteSeries) PPSTotal() []float64 { return sum2(m.PPSIn(), m.PPSOut()) }

func scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

func sum2(a, b []float64) []float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(a) {
			out[i] += a[i]
		}
		if i < len(b) {
			out[i] += b[i]
		}
	}
	return out
}

// IntervalWindow collects the first N bins of the packet-load process at a
// chosen interval size — the paper's Figs 6-10 ("the first 200 intervals").
//
// A window covers only the head of the trace (2 s for the 10 ms figure),
// but the naive sweep still pays a 64-bit division per record for the whole
// trace. Once the stream has moved safely past the window's end — "safely"
// meaning beyond any bounded disorder a generator or merge can produce —
// the collector latches done and whole blocks skip with two comparisons.
type IntervalWindow struct {
	interval              time.Duration
	n                     int
	total, inBins, outBin []float64
	end                   time.Duration // interval * n
	done                  bool
}

// windowDoneSlack is how far past the window's end the stream must have
// moved before blocks are skipped wholesale. Stream disorder is bounded by
// one server tick (≤ 100 ms) for generated streams and by the sorting slack
// (200 ms) for merged ones; 10 s is beyond anything the pipeline produces.
const windowDoneSlack = 10 * time.Second

// NewIntervalWindow creates a window of n bins of the given width.
func NewIntervalWindow(interval time.Duration, n int) *IntervalWindow {
	return &IntervalWindow{
		interval: interval,
		n:        n,
		total:    make([]float64, n),
		inBins:   make([]float64, n),
		outBin:   make([]float64, n),
		end:      interval * time.Duration(n),
	}
}

// Handle implements trace.Handler.
func (w *IntervalWindow) Handle(r trace.Record) {
	if w.done || r.T >= w.end {
		if !w.done && r.T >= w.end+windowDoneSlack {
			w.done = true
		}
		return
	}
	i := int(r.T / w.interval)
	if i < 0 {
		return
	}
	w.total[i]++
	if r.Dir == trace.In {
		w.inBins[i]++
	} else {
		w.outBin[i]++
	}
}

// HandleBatch implements trace.BatchHandler.
func (w *IntervalWindow) HandleBatch(rs []trace.Record) {
	if w.done {
		return
	}
	if len(rs) > 0 && rs[0].T >= w.end+windowDoneSlack {
		// Streams are time-ordered up to bounded disorder, so once a
		// block starts this far past the window nothing can land in it.
		w.done = true
		return
	}
	total, in, out := w.total, w.inBins, w.outBin
	interval, n := w.interval, w.n
	// Bin cache: consecutive records usually share a bin (always, for the
	// second-scale windows), so a bounds comparison replaces the division.
	cached := -1
	var lo, hi time.Duration
	for _, r := range rs {
		i := cached
		if i < 0 || r.T < lo || r.T >= hi {
			i = int(r.T / interval)
			cached = i
			lo = time.Duration(i) * interval
			hi = lo + interval
		}
		if i < 0 || i >= n {
			continue
		}
		total[i]++
		if r.Dir == trace.In {
			in[i]++
		} else {
			out[i]++
		}
	}
}

// Interval returns the bin width.
func (w *IntervalWindow) Interval() time.Duration { return w.interval }

// TotalPPS returns the per-bin total packet rate.
func (w *IntervalWindow) TotalPPS() []float64 { return scale(w.total, 1/w.interval.Seconds()) }

// InPPS returns the per-bin inbound packet rate.
func (w *IntervalWindow) InPPS() []float64 { return scale(w.inBins, 1/w.interval.Seconds()) }

// OutPPS returns the per-bin outbound packet rate.
func (w *IntervalWindow) OutPPS() []float64 { return scale(w.outBin, 1/w.interval.Seconds()) }
