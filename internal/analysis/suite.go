package analysis

import (
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/trace"
)

// SuiteConfig sizes the full collector suite.
type SuiteConfig struct {
	// Duration is the nominal trace length (used for padding and rates).
	Duration time.Duration
	// VarTimeBase is the base interval of the variance-time analysis
	// (paper: 10 ms).
	VarTimeBase time.Duration
	// VarTimeLevels is the number of dyadic aggregation levels.
	VarTimeLevels int
	// MaxPayload bounds the size histograms.
	MaxPayload int
	// Windows configures the small-scale interval plots to collect
	// (Figs 6-10). Nil selects the paper's set.
	Windows []WindowSpec
	// SortedInput declares that records arrive in non-decreasing time
	// order, so the order-sensitive collectors (Interarrival, Periodicity)
	// are fed directly instead of through the suite's internal SortBuffer —
	// the single most expensive stage of an unsorted sweep. The generator
	// emits sorted streams and the binary trace format stores them sorted;
	// only cross-server merges (scenario aggregates) still need the buffer.
	// Feeding a sorted suite out-of-order records corrupts only those two
	// collectors' results; everything else is order-insensitive.
	SortedInput bool
}

// WindowSpec asks for the first N bins at a given interval size.
type WindowSpec struct {
	Interval time.Duration
	N        int
}

// PaperWindows returns the interval windows shown in the paper's Figs 6-10.
func PaperWindows() []WindowSpec {
	return []WindowSpec{
		{Interval: 10 * time.Millisecond, N: 200}, // Figs 6, 7
		{Interval: 50 * time.Millisecond, N: 200}, // Fig 8
		{Interval: time.Second, N: 18000},         // Fig 9
		{Interval: 30 * time.Minute, N: 200},      // Fig 10
	}
}

// DefaultSuiteConfig returns the paper's analysis configuration for a trace
// of the given length.
func DefaultSuiteConfig(duration time.Duration) SuiteConfig {
	// Enough dyadic levels that the top block comfortably exceeds the map
	// rotation period but still leaves ≥2 blocks in the trace.
	levels := 1
	base := 10 * time.Millisecond
	for (int64(1)<<uint(levels))*int64(base) <= int64(duration)/2 && levels < 40 {
		levels++
	}
	return SuiteConfig{
		Duration:      duration,
		VarTimeBase:   base,
		VarTimeLevels: levels,
		MaxPayload:    1500,
		Windows:       PaperWindows(),
	}
}

// Suite runs every collector needed for the paper's tables and figures in a
// single streaming pass. Dispatch is by concrete type — one virtual call per
// record for the whole suite, which matters at half a billion records.
type Suite struct {
	cfg     SuiteConfig
	Count   Counters
	Sizes   *SizeDist
	Minutes *MinuteSeries
	Flows   *FlowBandwidth
	VT      *VarTime
	Windows []*IntervalWindow
	Players *PlayerSeries
	Kinds   *KindBreakdown
	Gaps    *Interarrival
	Tick    *Periodicity
	// sorted feeds the order-sensitive collectors (Gaps, Tick) when the
	// input stream's order is not guaranteed (cross-server merges). It is
	// nil with cfg.SortedInput, where Gaps and Tick are fed directly; in
	// sharded mode its downstream is orderOut, which Shard can rewire to
	// fan the sorted stream out to dedicated Gaps/Tick workers.
	sorted   *trace.SortBuffer
	orderOut *switchHandler
	closed   bool
}

// switchHandler is a mutable indirection point in a handler chain: Shard
// swaps its target to split a stage's downstream onto worker goroutines.
type switchHandler struct {
	h trace.Handler
}

func (sw *switchHandler) Handle(r trace.Record) { sw.h.Handle(r) }

func (sw *switchHandler) HandleBatch(rs []trace.Record) { trace.Dispatch(sw.h, rs) }

// NewSuite builds a suite.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = 1500
	}
	if cfg.VarTimeBase <= 0 {
		cfg.VarTimeBase = 10 * time.Millisecond
	}
	if cfg.VarTimeLevels <= 0 {
		cfg.VarTimeLevels = 20
	}
	if cfg.Windows == nil {
		cfg.Windows = PaperWindows()
	}
	vt, err := NewVarTime(cfg.VarTimeBase, cfg.VarTimeLevels)
	if err != nil {
		return nil, err
	}
	s := &Suite{
		cfg:     cfg,
		Sizes:   NewSizeDist(cfg.MaxPayload),
		Minutes: NewMinuteSeries(),
		Flows:   NewFlowBandwidth(),
		VT:      vt,
		Players: NewPlayerSeries(),
		Kinds:   NewKindBreakdown(),
		Gaps:    NewInterarrival(),
		Tick:    NewPeriodicity(trace.Out, cfg.VarTimeBase, 30),
	}
	if !cfg.SortedInput {
		s.orderOut = &switchHandler{h: trace.Tee(s.Gaps, s.Tick)}
		s.sorted = trace.NewSortBuffer(200*time.Millisecond, s.orderOut)
	}
	for _, w := range cfg.Windows {
		s.Windows = append(s.Windows, NewIntervalWindow(w.Interval, w.N))
	}
	return s, nil
}

// Handle implements trace.Handler (the legacy per-record path).
func (s *Suite) Handle(r trace.Record) {
	s.Count.Handle(r)
	s.Sizes.Handle(r)
	s.Minutes.Handle(r)
	s.Flows.Handle(r)
	s.VT.Handle(r)
	s.Kinds.Handle(r)
	if s.sorted != nil {
		s.sorted.Handle(r)
	} else {
		s.Gaps.Handle(r)
		s.Tick.Handle(r)
	}
	for _, w := range s.Windows {
		w.Handle(r)
	}
}

// HandleBatch implements trace.BatchHandler: each collector sweeps the whole
// block in a tight loop instead of being re-entered once per record.
func (s *Suite) HandleBatch(rs []trace.Record) {
	s.Count.HandleBatch(rs)
	s.Sizes.HandleBatch(rs)
	s.Minutes.HandleBatch(rs)
	s.Flows.HandleBatch(rs)
	s.VT.HandleBatch(rs)
	s.Kinds.HandleBatch(rs)
	if s.sorted != nil {
		s.sorted.HandleBatch(rs)
	} else {
		s.Gaps.HandleBatch(rs)
		s.Tick.HandleBatch(rs)
	}
	for _, w := range s.Windows {
		w.HandleBatch(rs)
	}
}

// Observe consumes session events (for the player series).
func (s *Suite) Observe(ev gamesim.SessionEvent) { s.Players.Observe(ev) }

// Close finalizes streaming state. Call once after the last record.
func (s *Suite) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.VT.Close(s.cfg.Duration)
	s.Minutes.PadTo(s.cfg.Duration)
	s.Players.Finish(s.cfg.Duration)
	if s.sorted != nil {
		s.sorted.Flush()
	}
	s.Tick.Flush()
}

// Duration returns the nominal trace duration.
func (s *Suite) Duration() time.Duration { return s.cfg.Duration }

// Window returns the collected interval window matching the given interval,
// or nil.
func (s *Suite) Window(interval time.Duration) *IntervalWindow {
	for _, w := range s.Windows {
		if w.Interval() == interval {
			return w
		}
	}
	return nil
}

// TableI is the paper's general trace information summary.
type TableI struct {
	TotalTime          time.Duration
	MapsPlayed         int
	Established        int
	UniqueEstablishing int
	Attempted          int
	UniqueAttempting   int
	MeanSessionSec     float64
	MeanPlayers        float64
}

// TableIFromStats derives Table I from generator statistics.
func TableIFromStats(st gamesim.Stats) TableI {
	return TableI{
		TotalTime:          st.Duration,
		MapsPlayed:         st.MapsPlayed,
		Established:        st.Established,
		UniqueEstablishing: st.UniqueEstablishing,
		Attempted:          st.Attempts,
		UniqueAttempting:   st.UniqueAttempting,
		MeanSessionSec:     st.MeanSessionSec(),
		MeanPlayers:        st.MeanPlayers(),
	}
}

// PerSlotKbs returns the paper's headline per-slot figure: mean server
// bandwidth divided by the slot count (≈40 kbs for a 22-slot server, the
// modem saturation observation).
func PerSlotKbs(t TableII, slots int) float64 {
	if slots <= 0 {
		return 0
	}
	return t.MeanBW.Kbs() / float64(slots)
}

var (
	_ trace.Handler      = (*Suite)(nil)
	_ trace.BatchHandler = (*Suite)(nil)
)
