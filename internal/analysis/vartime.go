package analysis

import (
	"time"

	"cstrace/internal/hurst"
	"cstrace/internal/trace"
)

// VarTime streams the total packet-count process, binned at a base interval
// (the paper uses m = 10 ms), into a dyadic variance-time ladder — the
// machinery behind Fig 5 and the Hurst estimates.
//
// Record streams from the generator are time-ordered only up to one server
// tick of slack (per-client schedules interleave within a tick window), so
// VarTime keeps a small ring of open bins and flushes them to the ladder
// once the stream has safely moved past.
type VarTime struct {
	base    time.Duration
	ladder  *hurst.Dyadic
	ring    []float64
	head    int64 // index of the oldest unflushed bin
	maxIdx  int64 // highest bin index seen
	started bool
}

// ringSlack is how many base bins of reordering the collector tolerates
// (64 × 10 ms = 640 ms, far beyond the one-tick disorder bound).
const ringSlack = 64

// NewVarTime creates the collector. levels is the number of dyadic
// aggregation levels (m up to 2^(levels-1) base bins).
func NewVarTime(base time.Duration, levels int) (*VarTime, error) {
	d, err := hurst.NewDyadic(levels)
	if err != nil {
		return nil, err
	}
	return &VarTime{base: base, ladder: d, ring: make([]float64, ringSlack)}, nil
}

// Handle implements trace.Handler.
func (v *VarTime) Handle(r trace.Record) {
	idx := int64(r.T / v.base)
	if !v.started {
		v.started = true
	}
	if idx < v.head {
		// Deep reordering beyond the slack window: account the packet to
		// the oldest open bin rather than losing it.
		idx = v.head
	}
	for idx >= v.head+int64(len(v.ring)) {
		v.flushOne()
	}
	v.ring[idx%int64(len(v.ring))]++
	if idx > v.maxIdx {
		v.maxIdx = idx
	}
}

// HandleBatch implements trace.BatchHandler. The bin index is cached
// across the sweep: consecutive records usually share a 10 ms bin (a
// broadcast burst lands in one), and a bounds comparison replaces the
// 64-bit division for every record of a run.
func (v *VarTime) HandleBatch(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	v.started = true
	ring := v.ring
	n := int64(len(ring))
	base := v.base
	head, maxIdx := v.head, v.maxIdx
	cached := int64(-1)
	var lo, hi time.Duration
	for _, r := range rs {
		var idx int64
		if cached >= 0 && r.T >= lo && r.T < hi {
			idx = cached
		} else {
			idx = int64(r.T / base)
			cached = idx
			lo = time.Duration(idx) * base
			hi = lo + base
		}
		if idx < head {
			idx = head
		}
		for idx >= head+n {
			v.flushOne()
			head = v.head
		}
		ring[idx%n]++
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	v.maxIdx = maxIdx
}

func (v *VarTime) flushOne() {
	slot := v.head % int64(len(v.ring))
	v.ladder.Add(v.ring[slot])
	v.ring[slot] = 0
	v.head++
}

// Close flushes bins through the end of the trace (pass the nominal trace
// duration so trailing silence is represented as empty bins; zero flushes
// only through the last packet seen).
func (v *VarTime) Close(duration time.Duration) {
	end := v.maxIdx + 1
	if !v.started {
		end = 0 // nothing ever arrived; only the duration defines bins
	}
	if duration > 0 {
		if n := int64(duration / v.base); n > end {
			end = n
		}
	}
	for v.head < end {
		v.flushOne()
	}
}

// Points returns the variance-time points accumulated so far (call Close
// first for exact results).
func (v *VarTime) Points() []hurst.Point { return v.ladder.Points() }

// Base returns the base interval.
func (v *VarTime) Base() time.Duration { return v.base }

// RegionEstimates fits the Hurst parameter in the paper's three regions:
// below the server tick (m < tick), the plateau between the tick and the map
// rotation period, and beyond the map period.
type RegionEstimates struct {
	SubTick  hurst.Estimate // m < 50 ms: paper sees H < 1/2
	Plateau  hurst.Estimate // 50 ms – 30 min: high remaining variability
	LongTerm hurst.Estimate // > 30 min: H ≈ 1/2
}

// Regions fits the three regions given the tick and map-rotation periods.
func Regions(points []hurst.Point, base, tick, mapPeriod time.Duration) RegionEstimates {
	tickM := int(tick / base)
	mapM := int(mapPeriod / base)
	var out RegionEstimates
	if e, err := hurst.EstimateFromPoints(points, 1, tickM); err == nil {
		out.SubTick = e
	}
	if e, err := hurst.EstimateFromPoints(points, tickM+1, mapM); err == nil {
		out.Plateau = e
	}
	if e, err := hurst.EstimateFromPoints(points, mapM+1, 1<<62); err == nil {
		out.LongTerm = e
	}
	return out
}
