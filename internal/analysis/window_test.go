package analysis

import (
	"testing"
	"time"

	"cstrace/internal/trace"
	"cstrace/internal/units"
)

func windowRecords() []trace.Record {
	// Three one-minute windows worth of records, with a gap: minute 0,
	// minute 1 empty, minute 2, and a final partial at minute 3.
	return []trace.Record{
		{T: 0, Dir: trace.In, Kind: trace.KindGame, Client: 1, App: 40},
		{T: 10 * time.Second, Dir: trace.Out, Kind: trace.KindGame, Client: 1, App: 120},
		{T: 59 * time.Second, Dir: trace.Out, Kind: trace.KindGame, Client: 2, App: 80},
		// T exactly on the minute-2 boundary belongs to window 2.
		{T: 2 * time.Minute, Dir: trace.In, Kind: trace.KindHandshake, Client: 3, App: 20},
		{T: 2*time.Minute + 30*time.Second, Dir: trace.Out, Kind: trace.KindGame, Client: 3, App: 200},
		{T: 3*time.Minute + 5*time.Second, Dir: trace.Out, Kind: trace.KindGame, Client: 1, App: 64},
	}
}

func TestRollingWindowBounds(t *testing.T) {
	var got []WindowStats
	rw := NewRollingWindow(time.Minute, func(w WindowStats) { got = append(got, w) })
	rw.HandleBatch(windowRecords())
	rw.Close()

	if len(got) != 3 {
		t.Fatalf("windows emitted = %d, want 3 (empty minute skipped)", len(got))
	}
	w0, w2, w3 := got[0], got[1], got[2]

	if w0.Index != 0 || w0.Start != 0 || w0.End != time.Minute {
		t.Errorf("window 0 bounds = (%d, %v, %v)", w0.Index, w0.Start, w0.End)
	}
	if w0.Records != 3 || w0.PacketsIn != 1 || w0.PacketsOut != 2 {
		t.Errorf("window 0 counts = %+v", w0)
	}
	if w0.AppBytesIn != 40 || w0.AppBytesOut != 200 {
		t.Errorf("window 0 bytes = in %d out %d", w0.AppBytesIn, w0.AppBytesOut)
	}
	wantWire := int64(40 + 200 + 3*units.WireOverhead)
	if w0.WireBytes != wantWire {
		t.Errorf("window 0 wire bytes = %d, want %d", w0.WireBytes, wantWire)
	}
	if want := float64(8*wantWire) / 60 / 1e3; w0.MeanKbs != want {
		t.Errorf("window 0 kbs = %v, want %v", w0.MeanKbs, want)
	}
	if w0.Final {
		t.Errorf("window 0 marked final")
	}

	// The boundary record opened window 2, not window 1.
	if w2.Index != 2 || w2.Start != 2*time.Minute || w2.Records != 2 {
		t.Errorf("window 2 = %+v", w2)
	}
	if w3.Index != 3 || !w3.Final || w3.Records != 1 {
		t.Errorf("final window = %+v", w3)
	}
}

func TestRollingWindowHashDeterminism(t *testing.T) {
	collect := func(rs []trace.Record, batch int) []WindowStats {
		var got []WindowStats
		rw := NewRollingWindow(time.Minute, func(w WindowStats) { got = append(got, w) })
		for len(rs) > 0 {
			n := batch
			if n > len(rs) {
				n = len(rs)
			}
			rw.HandleBatch(rs[:n])
			rs = rs[n:]
		}
		rw.Close()
		return got
	}

	a := collect(windowRecords(), 100)
	b := collect(windowRecords(), 1)
	if len(a) != len(b) {
		t.Fatalf("window count differs across batch sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("window %d differs across batch sizes:\n  %+v\n  %+v", i, a[i], b[i])
		}
		if a[i].Hash == "" {
			t.Errorf("window %d has empty hash", i)
		}
	}

	// Perturbing one record's content must change that window's hash only.
	rs := windowRecords()
	rs[0].App++
	c := collect(rs, 100)
	if c[0].Hash == a[0].Hash {
		t.Errorf("window 0 hash unchanged after content change")
	}
	if c[1].Hash != a[1].Hash || c[2].Hash != a[2].Hash {
		t.Errorf("later window hashes changed by an earlier window's content")
	}
}

func TestRollingWindowCloseLatches(t *testing.T) {
	var n int
	rw := NewRollingWindow(time.Minute, func(WindowStats) { n++ })
	rw.Handle(trace.Record{T: time.Second, App: 10})
	rw.Close()
	rw.Close()
	rw.Handle(trace.Record{T: 2 * time.Second, App: 10})
	rw.Close()
	if n != 1 {
		t.Fatalf("emitted %d windows, want 1 (close latches)", n)
	}
}
