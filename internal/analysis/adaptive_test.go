package analysis

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
)

// TestAdaptiveMatchesStatic is the adaptive determinism contract: the same
// workload through ShardAdaptive — with epochs short enough that the
// rebalancer really fires mid-run — yields exactly the collector state of a
// single-threaded run, at every worker count. Run with -race to exercise
// the quiesce barrier.
func TestAdaptiveMatchesStatic(t *testing.T) {
	cfg := shardWorkload(t)
	sc := DefaultSuiteConfig(cfg.Duration)

	newSuite := func() *Suite {
		s, err := NewSuite(sc)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	ref := newSuite()
	if _, err := gamesim.Run(cfg, ref, ref.Observe); err != nil {
		t.Fatal(err)
	}
	ref.Close()
	want := suiteFingerprint(ref)

	for _, workers := range []int{2, 3, 4, 5} {
		s := newSuite()
		sh := ShardAdaptive(s, workers)
		sh.epochLen = 8 // fast epochs: give the rebalancer many boundaries
		if _, err := gamesim.Run(cfg, sh, sh.Observe); err != nil {
			t.Fatal(err)
		}
		sh.Close()
		if got := suiteFingerprint(s); !reflect.DeepEqual(want, got) {
			t.Errorf("adaptive %d workers (%d rebalances): suite diverges from single-threaded",
				workers, len(sh.Rebalances()))
			diffFingerprint(t, want, got)
		}
		for _, d := range sh.Depths() {
			if d.Blocks == 0 {
				t.Errorf("adaptive %d workers: group %q saw no blocks", workers, d.Name)
			}
		}
	}
}

// TestRebalanceMovesWorkOffStraggler injects a synthetic straggler unit —
// a collector stub that sleeps on every block — and asserts the feedback
// loop does its one job: the straggler's worker sheds its other unit at an
// epoch boundary, the move is recorded, Depths' final assignment names
// reflect it, and every unit still saw every record exactly once (the
// results match what a static assignment computes).
func TestRebalanceMovesWorkOffStraggler(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Duration: time.Hour, SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	var slowN, lightN, f1N, f2N atomic.Int64
	count := func(n *atomic.Int64) func(*shardBlock) {
		return func(b *shardBlock) { n.Add(int64(len(b.recs))) }
	}
	slowSweep := count(&slowN)
	units := []*shardUnit{
		{name: "slow", sweep: func(b *shardBlock) {
			time.Sleep(200 * time.Microsecond)
			slowSweep(b)
		}},
		{name: "light", sweep: count(&lightN)},
		{name: "f1", sweep: count(&f1N)},
		{name: "f2", sweep: count(&f2N)},
	}
	// Split(4, 2) seats [slow light] on worker 0, [f1 f2] on worker 1.
	sh := newAdaptive(s, units, 2)
	sh.epochLen = 4

	const blocks = 120
	recs := make([]trace.Record, trace.BlockSize)
	for i := range recs {
		recs[i] = trace.Record{T: time.Duration(i) * time.Microsecond, Kind: trace.KindGame}
	}
	for b := 0; b < blocks; b++ {
		sh.HandleBatch(recs) // exactly one fanned block per call
	}
	sh.Close()

	rebs := sh.Rebalances()
	if len(rebs) == 0 {
		t.Fatal("no rebalance fired: the straggler was never shed")
	}
	first := rebs[0]
	if first.From != 0 || first.To != 1 || first.Unit != "light" {
		t.Errorf("first rebalance = %+v, want unit \"light\" moving 0 -> 1", first)
	}
	if first.Block%sh.epochLen != 0 {
		t.Errorf("rebalance at block %d, not an epoch boundary (epoch %d)", first.Block, sh.epochLen)
	}

	// Depths reports the post-move assignment by name, and the straggler's
	// queue is measurably the deep one.
	ds := sh.Depths()
	if len(ds) != 2 {
		t.Fatalf("Depths returned %d groups, want 2", len(ds))
	}
	if ds[0].Name != "slow" {
		t.Errorf("worker 0 final assignment %q, want the bare straggler \"slow\"", ds[0].Name)
	}
	if ds[1].Name != "f1+f2+light" {
		t.Errorf("worker 1 final assignment %q, want \"f1+f2+light\"", ds[1].Name)
	}
	if ds[0].MeanDepth() <= ds[1].MeanDepth() {
		t.Errorf("straggler mean depth %.2f not above light worker's %.2f",
			ds[0].MeanDepth(), ds[1].MeanDepth())
	}
	for _, d := range ds {
		if d.Blocks != blocks {
			t.Errorf("group %q enqueued %d blocks, want %d (every worker sees every block)",
				d.Name, d.Blocks, blocks)
		}
	}

	// The migration never changed what any unit saw: all records, once.
	want := int64(blocks) * int64(trace.BlockSize)
	for name, got := range map[string]int64{
		"slow": slowN.Load(), "light": lightN.Load(), "f1": f1N.Load(), "f2": f2N.Load(),
	} {
		if got != want {
			t.Errorf("unit %q swept %d records, want %d", name, got, want)
		}
	}
}

// TestRebalanceQuietWhenBalanced: with even synthetic load there is no
// straggler, so the adaptive shard must not churn assignments.
func TestRebalanceQuietWhenBalanced(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Duration: time.Hour, SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	var a, b atomic.Int64
	units := []*shardUnit{
		{name: "a", sweep: func(blk *shardBlock) { a.Add(int64(len(blk.recs))) }},
		{name: "b", sweep: func(blk *shardBlock) { b.Add(int64(len(blk.recs))) }},
	}
	sh := newAdaptive(s, units, 2)
	sh.epochLen = 4
	recs := make([]trace.Record, trace.BlockSize)
	for i := range recs {
		recs[i] = trace.Record{T: time.Duration(i) * time.Microsecond, Kind: trace.KindGame}
	}
	for blk := 0; blk < 64; blk++ {
		sh.HandleBatch(recs)
	}
	sh.Close()
	if rebs := sh.Rebalances(); len(rebs) != 0 {
		t.Errorf("balanced load still rebalanced: %+v", rebs)
	}
}

// TestSinkAutoFollowsBudget: Sink(sched.Auto) must resolve to a plain
// serial suite when the budget is one core (the CI box contract: auto
// equals hand-tuned serial) and to an adaptive shard when cores are free —
// releasing its budget share at close either way.
func TestSinkAutoFollowsBudget(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	s, err := NewSuite(SuiteConfig{Duration: time.Hour, SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	h, closeSink := s.Sink(sched.Auto)
	if _, sharded := h.(*ShardedSuite); sharded {
		t.Error("one-core budget: Sink(Auto) must be the serial suite")
	}
	closeSink()

	runtime.GOMAXPROCS(4)
	s2, err := NewSuite(SuiteConfig{Duration: time.Hour, SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	h2, closeSink2 := s2.Sink(sched.Auto)
	sh, sharded := h2.(*ShardedSuite)
	if !sharded || !sh.adaptive {
		t.Fatalf("four-core budget: Sink(Auto) = %T (adaptive=%v), want adaptive ShardedSuite", h2, sharded && sh.adaptive)
	}
	if free := sched.Default().Free(); free != 4-len(sh.ingest)-len(sh.down) {
		t.Errorf("budget free %d while the auto sink holds %d workers of 4",
			free, len(sh.ingest)+len(sh.down))
	}
	closeSink2()
	if free := sched.Default().Free(); free != 4 {
		t.Errorf("budget free %d after close, want 4 (lease leaked)", free)
	}
}
