package analysis

import (
	"sync"
	"time"

	"cstrace/internal/sched"
)

// Adaptive sharding: the feedback loop that makes "-parallel auto" match a
// hand-tuned static assignment. The static Shard splits the suite's
// collectors into fixed cost-profile groups; the adaptive variant starts
// from (a finer version of) that split and then uses the channel-depth
// statistics the static mode only reports — each group's queue length at
// enqueue, the measurement that names the straggler — to migrate collector
// units between worker goroutines while the run is in flight.
//
// Determinism is structural, not statistical. A unit is a closed set of
// collectors swept together; every worker's channel receives every block,
// and a worker sweeps exactly its assigned units over each block it
// receives. Moving a unit between workers therefore never changes what the
// unit's collectors see — every block, in stream order — as long as no
// block is in flight during the move. Rebalancing happens only at epoch
// boundaries behind a quiesce barrier: the enqueuer stops, a barrier block
// drains through every channel, workers park, the assignment mutates, and
// the stream resumes. Reports are byte-identical to the static assignment
// (and to a single-threaded run) at every setting; measured depths and
// sweep times steer only *where* work runs, never *what* it computes.
//
// The rebalance decision is two measurements deep:
//
//   - which worker: epoch-windowed mean channel depth. The straggler is
//     the worker whose queue the enqueuer keeps finding full; the target
//     is the one whose queue is empty.
//   - which unit: per-unit sweep time, accumulated by each worker between
//     quiesces (reading them is safe exactly because the barrier is a
//     happens-before edge). The unit moved is the one that brings the two
//     workers' measured loads closest to level.

const (
	// shardEpochBlocks is the rebalance cadence: every this many fanned
	// blocks the enqueuer compares epoch depth means and may quiesce.
	// At the 4096-record block size one epoch is ~256k records — long
	// enough to smooth scheduling noise, short enough that a straggler
	// costs at most a few epochs before the load follows it.
	shardEpochBlocks = 64

	// rebalanceMinGap is the minimum straggler-vs-lightest difference in
	// epoch mean depth (in blocks, against the ShardChanDepth bound)
	// before a quiesce is worth its pipeline stall.
	rebalanceMinGap = 2.0

	// maxAutoShardWorkers caps budget grants for an auto-sharded suite:
	// beyond the collector units' natural split the extra workers would
	// idle.
	maxAutoShardWorkers = 5
)

// shardUnit is one movable set of collectors: the granularity at which the
// adaptive shard reassigns work. cost is owned by whichever worker
// currently runs the unit and read by the enqueuer only across a quiesce
// barrier.
type shardUnit struct {
	name  string
	sweep func(*shardBlock)
	cost  time.Duration // cumulative sweep time since the last rebalance
}

// Rebalance records one unit migration performed by an adaptive shard.
type Rebalance struct {
	// Block is the fan-out block count at which the move fired.
	Block int64
	// Unit is the migrated collector unit's name.
	Unit string
	// From and To are ingest worker indices (the order Depths reports).
	From, To int
}

// adaptiveUnits splits the suite's collectors into movable units. The
// split is finer than the static groups — every collector that can stand
// alone does — so the rebalancer has real freedom; the initial assignment
// in newAdaptive recovers the static grouping's shape by contiguous
// chunking.
func adaptiveUnits(s *Suite) []*shardUnit {
	units := []*shardUnit{
		{name: "count", sweep: func(b *shardBlock) { s.Count.HandleBatch(b.recs) }},
		{name: "sizes", sweep: func(b *shardBlock) {
			if b.cols != nil {
				s.Sizes.HandleColumns(b.cols)
			} else {
				s.Sizes.HandleBatch(b.recs)
			}
		}},
		{name: "flows", sweep: func(b *shardBlock) { s.Flows.HandleBatch(b.recs) }},
		{name: "kinds", sweep: func(b *shardBlock) { s.Kinds.HandleBatch(b.recs) }},
		{name: "minutes", sweep: func(b *shardBlock) { s.Minutes.HandleBatch(b.recs) }},
		{name: "vt", sweep: func(b *shardBlock) { s.VT.HandleBatch(b.recs) }},
		{name: "windows", sweep: func(b *shardBlock) {
			for _, w := range s.Windows {
				w.HandleBatch(b.recs)
			}
		}},
	}
	if s.sorted != nil {
		// Unsorted input: the sort stage is one indivisible unit. Its
		// downstream (Gaps, Tick) is either inline behind the SortBuffer
		// or split onto dedicated down workers by newAdaptive — in both
		// cases it is not independently movable, because its blocks come
		// from whichever worker runs the sort, not from the enqueuer.
		units = append(units, &shardUnit{name: "order", sweep: func(b *shardBlock) { s.sorted.HandleBatch(b.recs) }})
	} else {
		units = append(units,
			&shardUnit{name: "gaps", sweep: func(b *shardBlock) {
				if b.cols != nil {
					s.Gaps.HandleColumns(b.cols)
				} else {
					s.Gaps.HandleBatch(b.recs)
				}
			}},
			&shardUnit{name: "tick", sweep: func(b *shardBlock) { s.Tick.HandleBatch(b.recs) }})
	}
	return units
}

// ShardAdaptive wraps a freshly built Suite in adaptive sharded mode with
// up to workers goroutines (clamped to the movable units; values below 2
// still shard with 2). Results are byte-identical to Shard and to the
// plain Suite at every setting — the adaptive layer re-homes collector
// units between workers at quiesced epoch boundaries, it never changes
// what a collector sees. The caller must not feed the inner Suite directly
// afterwards.
func ShardAdaptive(s *Suite, workers int) *ShardedSuite {
	return newAdaptive(s, adaptiveUnits(s), workers)
}

// newAdaptive assembles the adaptive engine over an explicit unit list
// (tests inject synthetic units here).
func newAdaptive(s *Suite, units []*shardUnit, workers int) *ShardedSuite {
	sh := &ShardedSuite{Suite: s, pending: getShardBlock(), adaptive: true, epochLen: shardEpochBlocks}

	// With an unsorted suite and enough workers, split the sort stage's
	// downstream onto dedicated down workers exactly as the static shard
	// does; those workers are not part of the adaptive set (their feed is
	// the sort worker's output, not the enqueuer's fan-out).
	if s.sorted != nil && workers >= 4 {
		gaps := func(b *shardBlock) {
			if b.cols != nil {
				s.Gaps.HandleColumns(b.cols)
			} else {
				s.Gaps.HandleBatch(b.recs)
			}
		}
		tick := func(b *shardBlock) { s.Tick.HandleBatch(b.recs) }
		if workers >= 5 {
			sh.down = []*shardWorker{
				newShardWorker("gaps", gaps),
				newShardWorker("tick", tick),
			}
		} else {
			sh.down = []*shardWorker{newShardWorker("gaps+tick", gaps, tick)}
		}
		workers -= len(sh.down)
		s.orderOut.h = &sortedFan{down: sh.down}
		for _, w := range sh.down {
			sh.downWg.Add(1)
			go w.run(&sh.downWg)
		}
	}

	if workers < 2 {
		workers = 2
	}
	if workers > len(units) {
		workers = len(units)
	}
	// Initial assignment: contiguous even chunks. The unit list is ordered
	// by the static cost-profile grouping, so the chunks start close to
	// the hand-tuned split and the feedback loop refines from there.
	counts := sched.Split(len(units), workers)
	next := 0
	for w := 0; w < workers; w++ {
		wk := newShardWorker("")
		wk.units = append(wk.units, units[next:next+counts[w]]...)
		next += counts[w]
		sh.ingest = append(sh.ingest, wk)
	}
	for _, w := range sh.ingest {
		sh.wg.Add(1)
		go w.run(&sh.wg)
	}
	sh.snapshotDepths()
	return sh
}

// fanned is the adaptive hook on the enqueue path: every fanned block
// advances the epoch clock, and epoch boundaries run the rebalance check.
// It runs on the (single logical) enqueuer.
func (sh *ShardedSuite) fanned() {
	if !sh.adaptive {
		return
	}
	sh.blocks++
	if sh.blocks%sh.epochLen == 0 {
		sh.maybeRebalance()
	}
}

// snapshotDepths marks the start of a new depth-measurement epoch.
func (sh *ShardedSuite) snapshotDepths() {
	if len(sh.lastEpoch) != len(sh.ingest) {
		sh.lastEpoch = make([]GroupDepth, len(sh.ingest))
	}
	for i, w := range sh.ingest {
		sh.lastEpoch[i] = w.depth
	}
}

// quiesce drains every ingest worker: a barrier block through each channel,
// then a wait until all workers have parked. On return no block is in
// flight, the workers' accumulated unit costs are visible to the caller
// (the barrier is the happens-before edge), and the assignment may mutate.
func (sh *ShardedSuite) quiesce() {
	var wg sync.WaitGroup
	wg.Add(len(sh.ingest))
	bar := &shardBlock{barrier: &wg}
	for _, w := range sh.ingest {
		w.ch <- bar
	}
	wg.Wait()
}

// maybeRebalance compares the epoch's per-worker mean channel depths and,
// when one worker is measurably the straggler, quiesces the pipeline and
// migrates the unit that best levels the two workers' measured sweep
// costs. Runs on the enqueuer at an epoch boundary.
func (sh *ShardedSuite) maybeRebalance() {
	defer sh.snapshotDepths()
	strag, light := -1, -1
	var stragMean, lightMean float64
	for i, w := range sh.ingest {
		blocks := w.depth.Blocks - sh.lastEpoch[i].Blocks
		if blocks == 0 {
			continue
		}
		mean := float64(w.depth.SumDepth-sh.lastEpoch[i].SumDepth) / float64(blocks)
		if strag == -1 || mean > stragMean {
			strag, stragMean = i, mean
		}
		if light == -1 || mean < lightMean {
			light, lightMean = i, mean
		}
	}
	if strag == -1 || strag == light || stragMean-lightMean < rebalanceMinGap {
		return
	}
	src, dst := sh.ingest[strag], sh.ingest[light]
	if len(src.units) < 2 {
		return // an indivisible straggler: nothing to shed
	}

	sh.quiesce()

	// Costs are quiesce-fresh: pick the move that most levels the pair.
	var srcSum, dstSum time.Duration
	for _, u := range src.units {
		srcSum += u.cost
	}
	for _, u := range dst.units {
		dstSum += u.cost
	}
	abs := func(d time.Duration) time.Duration {
		if d < 0 {
			return -d
		}
		return d
	}
	best, bestGap := -1, abs(srcSum-dstSum)
	for i, u := range src.units {
		if gap := abs((srcSum - u.cost) - (dstSum + u.cost)); gap < bestGap {
			best, bestGap = i, gap
		}
	}
	if best >= 0 {
		u := src.units[best]
		src.units = append(src.units[:best], src.units[best+1:]...)
		dst.units = append(dst.units, u)
		sh.rebalances = append(sh.rebalances, Rebalance{
			Block: sh.blocks, Unit: u.name, From: strag, To: light,
		})
	}
	// New epoch, fresh cost window. Safe to touch worker-owned counters:
	// the workers are parked until the next (post-mutation) send.
	for _, w := range sh.ingest {
		for _, u := range w.units {
			u.cost = 0
		}
	}
}

// Rebalances returns the unit migrations an adaptive shard performed, in
// order. Nil for static shards. Valid after Close.
func (sh *ShardedSuite) Rebalances() []Rebalance { return sh.rebalances }

// unitNames renders a worker's current unit assignment for Depths.
func unitNames(units []*shardUnit) string {
	var s string
	for i, u := range units {
		if i > 0 {
			s += "+"
		}
		s += u.name
	}
	return s
}
