package analysis

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"time"

	"cstrace/internal/trace"
	"cstrace/internal/units"
)

// WindowStats is one completed trace-time window of a RollingWindow: the
// cheap provisioning counters over [Start, End), plus a content hash of the
// window's records so a store can dedupe windows the way it dedupes whole
// traces. Rates are computed over the nominal window width, so windows are
// directly comparable to each other (a final partial window is marked).
type WindowStats struct {
	// Index is the window ordinal: Start / width. Empty windows are never
	// emitted, so indices may skip.
	Index int64
	// Start (inclusive) and End (exclusive) bound the window in trace time.
	Start, End time.Duration
	// Final marks a window flushed by Close before its nominal bound
	// elapsed; its rates still use the full width.
	Final bool

	Records     int64
	PacketsIn   int64
	PacketsOut  int64
	AppBytesIn  int64
	AppBytesOut int64
	// WireBytes uses the paper's accounting (payload + framing overhead).
	WireBytes int64
	// MeanKbs and MeanPPS are rates over the nominal window width.
	MeanKbs float64
	MeanPPS float64

	// Hash is the hex SHA-256 of the window's records (16-byte
	// little-endian encoding per record, stream order): the window's
	// content address.
	Hash string
}

// RollingWindow slices a non-decreasing record stream into fixed-width
// trace-time windows and emits WindowStats for each window as soon as the
// stream crosses its upper bound; Close flushes the in-progress window. It
// is the daemon's incremental collector: unlike the one-shot suite it never
// needs the whole trace, and its per-window content hashes make recording
// windows into the metrics store idempotent.
//
// The collector is single-goroutine (feed it from one logical enqueuer,
// e.g. alongside a sharded suite's dispatch). Records must arrive in
// non-decreasing timestamp order — the same contract as the sorted analyzer
// pipeline. A record with T exactly on a boundary opens the next window.
type RollingWindow struct {
	width  time.Duration
	emit   func(WindowStats)
	cur    WindowStats
	open   bool
	closed bool
	h      hash.Hash
	buf    []byte
}

// NewRollingWindow creates a windowed collector. width must be positive;
// emit receives each completed window synchronously (keep it fast, or hand
// off). A nil emit discards windows (useful for benchmarks).
func NewRollingWindow(width time.Duration, emit func(WindowStats)) *RollingWindow {
	if width <= 0 {
		width = time.Minute
	}
	if emit == nil {
		emit = func(WindowStats) {}
	}
	return &RollingWindow{width: width, emit: emit, h: sha256.New()}
}

// Width returns the window width.
func (rw *RollingWindow) Width() time.Duration { return rw.width }

// Handle implements trace.Handler.
func (rw *RollingWindow) Handle(r trace.Record) {
	rw.HandleBatch([]trace.Record{r})
}

// HandleBatch implements trace.BatchHandler.
func (rw *RollingWindow) HandleBatch(rs []trace.Record) {
	if rw.closed {
		return
	}
	for _, r := range rs {
		if !rw.open {
			rw.openAt(r.T)
		} else if r.T >= rw.cur.End {
			rw.flush(false)
			rw.openAt(r.T)
		}
		rw.add(r)
	}
	rw.drainBuf()
}

// Close flushes the in-progress partial window (marked Final) and latches
// the collector; further records are ignored.
func (rw *RollingWindow) Close() {
	if rw.closed {
		return
	}
	if rw.open {
		rw.flush(true)
	}
	rw.closed = true
}

func (rw *RollingWindow) openAt(t time.Duration) {
	start := t - t%rw.width
	rw.cur = WindowStats{
		Index: int64(start / rw.width),
		Start: start,
		End:   start + rw.width,
	}
	rw.open = true
}

func (rw *RollingWindow) add(r trace.Record) {
	rw.cur.Records++
	if r.Dir == trace.In {
		rw.cur.PacketsIn++
		rw.cur.AppBytesIn += int64(r.App)
	} else {
		rw.cur.PacketsOut++
		rw.cur.AppBytesOut += int64(r.App)
	}
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(r.T))
	rec[8] = byte(r.Dir)
	rec[9] = byte(r.Kind)
	binary.LittleEndian.PutUint32(rec[10:], r.Client)
	binary.LittleEndian.PutUint16(rec[14:], r.App)
	rw.buf = append(rw.buf, rec[:]...)
	if len(rw.buf) >= 1<<14 {
		rw.drainBuf()
	}
}

func (rw *RollingWindow) drainBuf() {
	if len(rw.buf) > 0 {
		rw.h.Write(rw.buf)
		rw.buf = rw.buf[:0]
	}
}

func (rw *RollingWindow) flush(final bool) {
	rw.drainBuf()
	w := rw.cur
	w.Final = final
	w.WireBytes = w.AppBytesIn + w.AppBytesOut +
		(w.PacketsIn+w.PacketsOut)*units.WireOverhead
	sec := rw.width.Seconds()
	w.MeanKbs = float64(8*w.WireBytes) / sec / 1e3
	w.MeanPPS = float64(w.Records) / sec
	w.Hash = hex.EncodeToString(rw.h.Sum(nil))
	rw.h.Reset()
	rw.open = false
	rw.emit(w)
}

var (
	_ trace.Handler      = (*RollingWindow)(nil)
	_ trace.BatchHandler = (*RollingWindow)(nil)
)
