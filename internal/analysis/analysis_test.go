package analysis

import (
	"math"
	"testing"
	"time"

	"cstrace/internal/trace"
	"cstrace/internal/units"
)

func rec(t time.Duration, dir trace.Direction, client uint32, app uint16) trace.Record {
	return trace.Record{T: t, Dir: dir, Client: client, App: app}
}

func TestCountersTables(t *testing.T) {
	var c Counters
	c.Handle(rec(0, trace.In, 1, 40))
	c.Handle(rec(time.Second, trace.In, 1, 44))
	c.Handle(rec(2*time.Second, trace.Out, 1, 130))

	if c.Packets() != 3 || c.PacketsIn != 2 || c.PacketsOut != 1 {
		t.Fatalf("counts: %+v", c)
	}
	wantInWire := int64(40 + 44 + 2*units.WireOverhead)
	if c.WireBytesIn() != wantInWire {
		t.Errorf("WireBytesIn = %d, want %d", c.WireBytesIn(), wantInWire)
	}

	t2 := c.TableII(10 * time.Second)
	if float64(t2.MeanPPS) != 0.3 {
		t.Errorf("MeanPPS = %v", t2.MeanPPS)
	}
	wantBW := float64(40+44+130+3*units.WireOverhead) * 8 / 10
	if math.Abs(float64(t2.MeanBW)-wantBW) > 1e-9 {
		t.Errorf("MeanBW = %v, want %v", t2.MeanBW, wantBW)
	}

	t3 := c.TableIII()
	if t3.MeanIn != 42 {
		t.Errorf("MeanIn = %v", t3.MeanIn)
	}
	if t3.MeanOut != 130 {
		t.Errorf("MeanOut = %v", t3.MeanOut)
	}
	if math.Abs(t3.MeanSize-(40.0+44+130)/3) > 1e-9 {
		t.Errorf("MeanSize = %v", t3.MeanSize)
	}
}

func TestCountersZeroDurationFallsBack(t *testing.T) {
	var c Counters
	c.Handle(rec(5*time.Second, trace.In, 1, 40))
	t2 := c.TableII(0)
	if t2.MeanPPS == 0 {
		t.Error("zero duration should fall back to last timestamp")
	}
}

func TestCountersEmpty(t *testing.T) {
	var c Counters
	t3 := c.TableIII()
	if t3.MeanSize != 0 || t3.MeanIn != 0 || t3.MeanOut != 0 {
		t.Error("empty counters should report zero means")
	}
}

func TestSizeDist(t *testing.T) {
	s := NewSizeDist(500)
	s.Handle(rec(0, trace.In, 1, 40))
	s.Handle(rec(0, trace.In, 1, 40))
	s.Handle(rec(0, trace.Out, 1, 130))
	if s.In.Total() != 2 || s.Out.Total() != 1 || s.Total().Total() != 3 {
		t.Fatal("totals")
	}
	if s.In.Count(40) != 2 || s.Out.Count(130) != 1 {
		t.Error("counts")
	}
	if s.In.Mean() != 40 {
		t.Error("mean")
	}
	cdf := s.Total().CDF()
	if cdf[39] != 0 || math.Abs(cdf[40]-2.0/3) > 1e-12 || cdf[130] != 1 {
		t.Errorf("cdf: %v %v %v", cdf[39], cdf[40], cdf[130])
	}
}

func TestMinuteSeries(t *testing.T) {
	m := NewMinuteSeries()
	m.Handle(rec(30*time.Second, trace.In, 1, 42))   // minute 0
	m.Handle(rec(90*time.Second, trace.Out, 1, 142)) // minute 1
	m.Handle(rec(61*time.Second, trace.Out, 1, 42))  // minute 1
	m.PadTo(4 * time.Minute)

	in := m.KbsIn()
	out := m.KbsOut()
	if len(in) != 4 || len(out) != 4 {
		t.Fatalf("series lengths: %d, %d", len(in), len(out))
	}
	wantIn0 := float64(42+units.WireOverhead) * 8 / 60 / 1e3
	if math.Abs(in[0]-wantIn0) > 1e-12 {
		t.Errorf("in[0] = %v, want %v", in[0], wantIn0)
	}
	if in[1] != 0 || out[0] != 0 {
		t.Error("cross-direction leakage")
	}
	pps := m.PPSTotal()
	if math.Abs(pps[1]-2.0/60) > 1e-12 {
		t.Errorf("pps[1] = %v", pps[1])
	}
	tot := m.KbsTotal()
	if math.Abs(tot[0]-in[0]) > 1e-12 {
		t.Error("total should equal in for minute 0")
	}
}

func TestIntervalWindow(t *testing.T) {
	w := NewIntervalWindow(10*time.Millisecond, 5)
	w.Handle(rec(0, trace.Out, 1, 100))
	w.Handle(rec(5*time.Millisecond, trace.Out, 1, 100))
	w.Handle(rec(12*time.Millisecond, trace.In, 1, 40))
	w.Handle(rec(49*time.Millisecond, trace.In, 1, 40))
	w.Handle(rec(60*time.Millisecond, trace.In, 1, 40)) // beyond window: dropped
	tot := w.TotalPPS()
	if len(tot) != 5 {
		t.Fatal("window length")
	}
	if tot[0] != 200 || tot[1] != 100 || tot[4] != 100 {
		t.Errorf("total pps = %v", tot)
	}
	if w.OutPPS()[0] != 200 || w.InPPS()[1] != 100 {
		t.Error("direction split")
	}
}

func TestFlowBandwidth(t *testing.T) {
	fb := NewFlowBandwidth()
	// Session 1: 100 seconds, 10 packets of 100 B wire-ish.
	for i := 0; i <= 100; i += 10 {
		fb.Handle(rec(time.Duration(i)*time.Second, trace.Out, 1, 100-uint16(units.WireOverhead)))
	}
	// Session 2: too short to qualify.
	fb.Handle(rec(0, trace.In, 2, 40))
	fb.Handle(rec(time.Second, trace.In, 2, 40))
	// Handshake traffic (client 0) ignored.
	fb.Handle(rec(0, trace.In, 0, 42))

	if fb.NumFlows() != 2 {
		t.Fatalf("flows = %d", fb.NumFlows())
	}
	qual := fb.Flows(30 * time.Second)
	if len(qual) != 1 || qual[0].Client != 1 {
		t.Fatalf("qualifying flows: %+v", qual)
	}
	// 11 packets x 100 B over 100 s = 88 bits/s.
	wantBps := 11.0 * 100 * 8 / 100
	if math.Abs(qual[0].MeanKbs()*1e3-wantBps) > 1e-9 {
		t.Errorf("MeanKbs = %v, want %v bps", qual[0].MeanKbs()*1e3, wantBps)
	}
	h := fb.Histogram(30*time.Second, 150e3, 75)
	if h.Total() != 1 {
		t.Errorf("histogram total = %d", h.Total())
	}
	if fb.FractionBelow(30*time.Second, 56e3) != 1 {
		t.Error("FractionBelow")
	}
}

func TestVarTimePeriodicProcess(t *testing.T) {
	// A perfectly periodic burst process at 50 ms: at m=1 (10 ms bins) high
	// variance, at m >= 5 every block holds exactly one burst => variance 0.
	vt, err := NewVarTime(10*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		vt.Handle(rec(time.Duration(i)*50*time.Millisecond, trace.Out, 1, 100))
	}
	vt.Close(4000 * 50 * time.Millisecond)
	pts := vt.Points()
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	var v1, v8 float64 = -1, -1
	for _, p := range pts {
		if p.M == 1 {
			v1 = p.NormVar
		}
		if p.M == 8 {
			v8 = p.NormVar
		}
	}
	if v1 != 1 {
		t.Errorf("normalized variance at m=1 must be 1, got %v", v1)
	}
	// At m=8 (80 ms) blocks hold 1 or 2 bursts: variance far below m=1
	// after normalization per the sub-tick smoothing the paper observes.
	if v8 > 0.05 {
		t.Errorf("m=8 normalized variance = %v, want << 1", v8)
	}
}

func TestVarTimeHandlesDisorder(t *testing.T) {
	// Two interleaved client streams with ~50 ms of mutual disorder must
	// produce the same ladder as the sorted stream.
	mk := func(shuffle bool) []hurst_pointlike {
		vt, _ := NewVarTime(10*time.Millisecond, 6)
		var recs []trace.Record
		for i := 0; i < 2000; i++ {
			recs = append(recs, rec(time.Duration(i)*25*time.Millisecond, trace.In, 1, 40))
		}
		if shuffle {
			// Swap adjacent pairs: bounded disorder of 25 ms.
			for i := 0; i+1 < len(recs); i += 2 {
				recs[i], recs[i+1] = recs[i+1], recs[i]
			}
		}
		for _, r := range recs {
			vt.Handle(r)
		}
		vt.Close(0)
		var out []hurst_pointlike
		for _, p := range vt.Points() {
			out = append(out, hurst_pointlike{p.M, p.NormVar})
		}
		return out
	}
	a, b := mk(false), mk(true)
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].m != b[i].m || math.Abs(a[i].v-b[i].v) > 1e-9 {
			t.Errorf("disorder changed ladder at m=%d: %v vs %v", a[i].m, a[i].v, b[i].v)
		}
	}
}

type hurst_pointlike struct {
	m int
	v float64
}

func TestVarTimeCloseWithTrailingSilence(t *testing.T) {
	vt, _ := NewVarTime(10*time.Millisecond, 4)
	vt.Handle(rec(0, trace.In, 1, 40))
	vt.Close(time.Second) // 100 bins total, 99 empty
	if got := vt.Points()[0].BlockCount; got != 100 {
		t.Errorf("base blocks = %d, want 100", got)
	}
	// Empty collector with a duration still flushes empty bins.
	vt2, _ := NewVarTime(10*time.Millisecond, 4)
	vt2.Close(500 * time.Millisecond)
	if got := vt2.Points()[0].BlockCount; got != 50 {
		t.Errorf("empty trace base blocks = %d, want 50", got)
	}
}
