package analysis

import (
	"math"
	"testing"
	"time"

	"cstrace/internal/gamesim"
	"cstrace/internal/hurst"
	"cstrace/internal/stats"
	"cstrace/internal/trace"
)

func TestPlayerSeries(t *testing.T) {
	p := NewPlayerSeries()
	ev := func(tm time.Duration, typ gamesim.EventType) {
		p.Observe(gamesim.SessionEvent{T: tm, Type: typ})
	}
	ev(10*time.Second, gamesim.EventConnect) // minute 0: 1 distinct
	ev(20*time.Second, gamesim.EventConnect) // minute 0: 2 distinct
	ev(70*time.Second, gamesim.EventDisconnect)
	ev(80*time.Second, gamesim.EventConnect) // minute 1
	p.Finish(4 * time.Minute)

	c := p.Counts()
	if len(c) != 4 {
		t.Fatalf("series = %v", c)
	}
	if c[0] != 2 {
		t.Errorf("minute 0 = %v, want 2", c[0])
	}
	// Minute 1 starts with 2 connected, sees 1 more connect => 3 distinct.
	if c[1] != 3 {
		t.Errorf("minute 1 = %v, want 3", c[1])
	}
	// Minute 2 and 3: 2 players connected throughout.
	if c[2] != 2 || c[3] != 2 {
		t.Errorf("tail = %v", c[2:])
	}
	if p.Max() != 3 {
		t.Errorf("Max = %v", p.Max())
	}
}

func TestPlayerSeriesCanExceedSlots(t *testing.T) {
	// The paper notes Fig 3 "sometimes exceeds the maximum number of slots
	// of 22 as multiple clients can come and go during an interval".
	p := NewPlayerSeries()
	// 22 players at minute start, one leaves and another joins within the
	// minute: 23 distinct players seen.
	for i := 0; i < 22; i++ {
		p.Observe(gamesim.SessionEvent{T: 0, Type: gamesim.EventConnect})
	}
	p.Observe(gamesim.SessionEvent{T: 90 * time.Second, Type: gamesim.EventDisconnect})
	p.Observe(gamesim.SessionEvent{T: 100 * time.Second, Type: gamesim.EventConnect})
	p.Finish(3 * time.Minute)
	if p.Counts()[1] != 23 {
		t.Errorf("minute 1 = %v, want 23 (churn exceeds slots)", p.Counts()[1])
	}
}

func TestRegions(t *testing.T) {
	// Build a synthetic variance-time curve: slope -1.6 below the tick,
	// -0.3 in the plateau, -1.0 beyond the map period.
	var pts []hurstPoint
	base := 10 * time.Millisecond
	for k := 0; k < 24; k++ {
		m := 1 << k
		logM := math.Log10(float64(m))
		var logV float64
		switch {
		case m <= 4:
			logV = -1.6 * logM
		case m <= 1<<17:
			logV = -1.6*math.Log10(4) - 0.3*(logM-math.Log10(4))
		default:
			knee := -1.6*math.Log10(4) - 0.3*(math.Log10(float64(int(1)<<17))-math.Log10(4))
			logV = knee - 1.0*(logM-math.Log10(float64(int(1)<<17)))
		}
		pts = append(pts, hurstPoint{m: m, logM: logM, logV: logV})
	}
	hp := toHurst(pts)
	re := Regions(hp, base, 50*time.Millisecond, 30*time.Minute)
	if re.SubTick.H > 0.3 {
		t.Errorf("sub-tick H = %.2f, want < 0.3", re.SubTick.H)
	}
	if re.Plateau.H < 0.75 {
		t.Errorf("plateau H = %.2f, want > 0.75", re.Plateau.H)
	}
	if math.Abs(re.LongTerm.H-0.5) > 0.1 {
		t.Errorf("long-term H = %.2f, want ~0.5", re.LongTerm.H)
	}
}

type hurstPoint struct {
	m    int
	logM float64
	logV float64
}

func toHurst(ps []hurstPoint) []hurst.Point {
	out := make([]hurst.Point, len(ps))
	for i, p := range ps {
		out[i] = hurst.Point{M: p.m, Log10M: p.logM, NormVar: math.Pow(10, p.logV), Log10Var: p.logV, BlockCount: 10}
	}
	return out
}

func TestSuiteEndToEnd(t *testing.T) {
	// A one-hour paper-config run through the full suite must reproduce the
	// qualitative shape of every figure.
	cfg := gamesim.PaperConfig(99)
	cfg.Duration = time.Hour
	cfg.Outages = nil
	// A one-hour window from a cold start at the diurnal trough would sit
	// far below the week-long average load; saturate arrivals so the hour
	// reflects the busy server the paper measured.
	cfg.AttemptRate = 0.2
	cfg.DiurnalAmp = 0
	cfg.Warmup = 10 * time.Minute

	sc := DefaultSuiteConfig(cfg.Duration)
	suite, err := NewSuite(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := gamesim.Run(cfg, suite, suite.Observe)
	if err != nil {
		t.Fatal(err)
	}
	suite.Close()

	// Tables II/III shape.
	t2 := suite.Count.TableII(cfg.Duration)
	if t2.PacketsIn <= t2.PacketsOut {
		t.Error("inbound packet count must exceed outbound (paper Table II)")
	}
	if t2.MeanBWOut <= t2.MeanBWIn {
		t.Error("outbound bandwidth must exceed inbound (paper Table II)")
	}
	t3 := suite.Count.TableIII()
	if !(t3.MeanOut > 3*t3.MeanIn) {
		t.Errorf("outgoing mean (%.1f) should be >3x incoming (%.1f)", t3.MeanOut, t3.MeanIn)
	}

	// Fig 12: inbound sizes narrow around 40 B, outbound wide.
	if f := suite.Sizes.In.FractionBelow(60); f < 0.95 {
		t.Errorf("inbound packets <60B = %.2f, want >0.95 (Fig 13)", f)
	}
	outCDF := suite.Sizes.Out.CDF()
	if spread := outCDF[300] - outCDF[20]; spread < 0.8 {
		t.Errorf("outbound sizes should spread over 20-300B, got %.2f of mass", spread)
	}

	// Fig 6/7: at 10 ms the out process is bursty and periodic, in is not.
	w10 := suite.Window(10 * time.Millisecond)
	if w10 == nil {
		t.Fatal("missing 10ms window")
	}
	outPeak := peakToMean(w10.OutPPS())
	inPeak := peakToMean(w10.InPPS())
	if outPeak < 2*inPeak {
		t.Errorf("out burstiness (peak/mean %.1f) should far exceed in (%.1f)", outPeak, inPeak)
	}

	// Fig 8: 50 ms aggregation smooths the total load substantially.
	w50 := suite.Window(50 * time.Millisecond)
	if cv(w50.TotalPPS()) > cv(w10.TotalPPS())/1.5 {
		t.Errorf("50ms bins should be far smoother: cv10=%.2f cv50=%.2f",
			cv(w10.TotalPPS()), cv(w50.TotalPPS()))
	}

	// Fig 5 regions: sub-tick smoothing means H < 1/2 below 50 ms.
	re := Regions(suite.VT.Points(), sc.VarTimeBase, 50*time.Millisecond, 30*time.Minute)
	if re.SubTick.H >= 0.5 {
		t.Errorf("sub-tick H = %.2f, want < 0.5", re.SubTick.H)
	}

	// Fig 11: most sessions below the modem barrier.
	if fr := suite.Flows.FractionBelow(30*time.Second, 56e3); fr < 0.9 {
		t.Errorf("fraction below 56kbs = %.2f", fr)
	}

	// Fig 3 series exists and respects slot bound + churn.
	if suite.Players.Max() > float64(cfg.Slots)+5 {
		t.Errorf("player series max %.0f implausibly high", suite.Players.Max())
	}
	if got := len(suite.Players.Counts()); got != 60 {
		t.Errorf("player series has %d minutes, want 60", got)
	}

	// Table I linkage.
	t1 := TableIFromStats(st)
	if t1.Established == 0 || t1.Attempted < t1.Established {
		t.Errorf("TableI = %+v", t1)
	}
	if k := PerSlotKbs(t2, cfg.Slots); k < 25 || k > 55 {
		t.Errorf("per-slot bandwidth %.1f kbs implausible", k)
	}
}

func peakToMean(xs []float64) float64 {
	var sum, peak float64
	for _, x := range xs {
		sum += x
		if x > peak {
			peak = x
		}
	}
	if sum == 0 {
		return 0
	}
	return peak / (sum / float64(len(xs)))
}

func cv(xs []float64) float64 {
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	return stats.StdDev(xs) / m
}

func TestSuiteWindowLookup(t *testing.T) {
	suite, err := NewSuite(DefaultSuiteConfig(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if suite.Window(10*time.Millisecond) == nil {
		t.Error("10ms window missing")
	}
	if suite.Window(7*time.Millisecond) != nil {
		t.Error("unexpected window")
	}
	suite.Close()
	suite.Close() // idempotent
}

func TestDefaultSuiteConfigLevels(t *testing.T) {
	sc := DefaultSuiteConfig(626477 * time.Second)
	top := (int64(1) << uint(sc.VarTimeLevels-1)) * int64(sc.VarTimeBase)
	if time.Duration(top) < 30*time.Minute {
		t.Errorf("top aggregation %v must exceed the 30min map period", time.Duration(top))
	}
	if time.Duration(top) > 626477*time.Second {
		t.Errorf("top aggregation %v exceeds the trace", time.Duration(top))
	}
}

var _ trace.Handler = (*Suite)(nil)
