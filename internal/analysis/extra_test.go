package analysis

import (
	"testing"
	"time"

	"cstrace/internal/trace"
)

func TestInterarrivalMeanAndCV(t *testing.T) {
	ia := NewInterarrival()
	// Inbound: perfectly regular 10 ms spacing → CV ≈ 0.
	for i := 0; i < 1000; i++ {
		ia.Handle(trace.Record{T: time.Duration(i) * 10 * time.Millisecond, Dir: trace.In})
	}
	// Outbound: bursts of 5 back-to-back (1 µs apart) every 50 ms → CV ≫ 1.
	for tick := 0; tick < 200; tick++ {
		base := time.Duration(tick) * 50 * time.Millisecond
		for j := 0; j < 5; j++ {
			ia.Handle(trace.Record{T: base + time.Duration(j)*time.Microsecond, Dir: trace.Out})
		}
	}

	if m := ia.Mean(trace.In); m < 0.0099 || m > 0.0101 {
		t.Errorf("inbound mean = %f, want ~0.010", m)
	}
	if cv := ia.CV(trace.In); cv > 0.01 {
		t.Errorf("inbound CV = %f, want ~0", cv)
	}
	if cv := ia.CV(trace.Out); cv < 1.5 {
		t.Errorf("outbound CV = %f, want ≫ 1 (bursty)", cv)
	}
	// Outbound median is a within-burst gap; the 90th percentile is the
	// tick gap.
	if q := ia.Quantile(trace.Out, 0.5); q > time.Millisecond {
		t.Errorf("outbound median %v, want sub-millisecond (within burst)", q)
	}
	if q := ia.Quantile(trace.Out, 0.9); q < 30*time.Millisecond {
		t.Errorf("outbound p90 %v, want ≈ tick scale", q)
	}
}

func TestInterarrivalHistogramTotals(t *testing.T) {
	ia := NewInterarrival()
	for i := 0; i < 100; i++ {
		ia.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: trace.In})
	}
	_, counts := ia.Histogram(trace.In)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 99 { // n packets → n−1 gaps
		t.Errorf("histogram total = %d, want 99", sum)
	}
}

func TestInterarrivalEmpty(t *testing.T) {
	ia := NewInterarrival()
	if ia.Mean(trace.In) != 0 || ia.CV(trace.Out) != 0 {
		t.Error("empty collector must report zeros")
	}
	if q := ia.Quantile(trace.In, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestKindBreakdown(t *testing.T) {
	kb := NewKindBreakdown()
	for i := 0; i < 90; i++ {
		kb.Handle(trace.Record{Kind: trace.KindGame, App: 100})
	}
	for i := 0; i < 8; i++ {
		kb.Handle(trace.Record{Kind: trace.KindDownload, App: 500})
	}
	for i := 0; i < 2; i++ {
		kb.Handle(trace.Record{Kind: trace.KindHandshake, App: 20})
	}
	rows := kb.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Kind != trace.KindGame || rows[0].Packets != 90 {
		t.Errorf("top row = %+v", rows[0])
	}
	if rows[0].AppBytes != 9000 {
		t.Errorf("game app bytes = %d", rows[0].AppBytes)
	}
	if rows[0].WireBytes != 90*(100+58) {
		t.Errorf("game wire bytes = %d", rows[0].WireBytes)
	}
	if s := kb.Share(trace.KindGame); s != 0.9 {
		t.Errorf("game share = %f", s)
	}
	if s := kb.Share(trace.KindVoice); s != 0 {
		t.Errorf("voice share = %f", s)
	}
}

func TestPeriodicityDetectsTick(t *testing.T) {
	// Outbound bursts of 20 packets every 50 ms, binned at 10 ms: the
	// autocorrelation must peak at lag 5.
	p := NewPeriodicity(trace.Out, 10*time.Millisecond, 20)
	for tick := 0; tick < 2000; tick++ {
		base := time.Duration(tick) * 50 * time.Millisecond
		for j := 0; j < 20; j++ {
			p.Handle(trace.Record{T: base + time.Duration(j)*100*time.Microsecond, Dir: trace.Out})
		}
		// Inbound noise must be ignored by the Out detector.
		p.Handle(trace.Record{T: base + 7*time.Millisecond, Dir: trace.In})
	}
	p.Flush()
	tick, corr := p.Tick()
	if tick != 50*time.Millisecond {
		t.Errorf("tick = %v, want 50ms (corr %.3f)", tick, corr)
	}
	if corr < 0.5 {
		t.Errorf("peak correlation = %.3f, want strong", corr)
	}
}

func TestPeriodicityNoSignal(t *testing.T) {
	// A constant-rate stream has no positive autocorrelation peak after
	// mean removal: every bin identical → zero variance → no tick.
	p := NewPeriodicity(trace.In, 10*time.Millisecond, 20)
	for i := 0; i < 5000; i++ {
		p.Handle(trace.Record{T: time.Duration(i) * time.Millisecond, Dir: trace.In})
	}
	p.Flush()
	if tick, corr := p.Tick(); tick != 0 {
		t.Errorf("detected spurious tick %v (corr %.3f)", tick, corr)
	}
}

func TestPeriodicityEmptyAndTiny(t *testing.T) {
	p := NewPeriodicity(trace.Out, 10*time.Millisecond, 10)
	if ac := p.Autocorrelation(); ac != nil {
		t.Error("empty detector returned autocorrelation")
	}
	p.Handle(trace.Record{T: 0, Dir: trace.Out})
	p.Flush()
	if tick, _ := p.Tick(); tick != 0 {
		t.Errorf("single-bin detector found tick %v", tick)
	}
}

func TestPeriodicityOnGeneratedTraffic(t *testing.T) {
	// End-to-end: the generator's outbound stream must reveal its own
	// tick. Build a tiny synthetic broadcast pattern mimicking gamesim
	// output shape (jittered burst offsets) to keep the test fast.
	p := NewPeriodicity(trace.Out, 10*time.Millisecond, 30)
	for tick := 0; tick < 3000; tick++ {
		base := time.Duration(tick) * 50 * time.Millisecond
		for j := 0; j < 18; j++ {
			off := time.Duration(j) * 120 * time.Microsecond
			p.Handle(trace.Record{T: base + off, Dir: trace.Out, App: 130})
		}
	}
	p.Flush()
	tick, _ := p.Tick()
	if tick != 50*time.Millisecond {
		t.Errorf("tick = %v, want 50ms", tick)
	}
}
