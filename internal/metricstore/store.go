package metricstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store file layout:
//
//	offset 0: "CSMS" magic, 1 version byte, 3 reserved zero bytes
//	then per row: u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// payload is the JSON encoding of a Run. The log is append-only and rows
// are immutable; a row whose length or CRC does not check out marks the end
// of the valid prefix (a torn append from a crash), and Open truncates it
// away. Everything is little-endian.
const (
	storeMagic   = "CSMS"
	storeVersion = 1
	headerLen    = 8
	// maxRowLen bounds a single row against absurd length prefixes from a
	// corrupt file; real rows are a few KB.
	maxRowLen = 16 << 20
)

// ErrNotFound reports a run lookup that matched nothing.
var ErrNotFound = errors.New("metricstore: run not found")

// Store is an open metrics database. All methods are safe for concurrent
// use; the file is kept open for appends.
type Store struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	runs   []*Run // insertion (Seq) order
	byHash map[string]*Run
}

// Open opens (creating if missing) the store at path and replays the log.
// A torn final row — the signature of a crashed writer — is truncated away
// so the store reopens clean; rows before it are unaffected.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st := &Store{f: f, path: path, byHash: make(map[string]*Run)}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if size == 0 {
		var hdr [headerLen]byte
		copy(hdr[:], storeMagic)
		hdr[4] = storeVersion
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return st, nil
	}
	if err := st.replay(size); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// replay loads every valid row and truncates the file to the valid prefix.
func (s *Store) replay(size int64) error {
	var hdr [headerLen]byte
	if size < headerLen {
		return fmt.Errorf("metricstore: %s: %d bytes is smaller than a store header", s.path, size)
	}
	if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if string(hdr[:4]) != storeMagic {
		return fmt.Errorf("metricstore: %s is not a metrics store (bad magic)", s.path)
	}
	if hdr[4] != storeVersion {
		return fmt.Errorf("metricstore: %s: unsupported store version %d", s.path, hdr[4])
	}
	off := int64(headerLen)
	for {
		var frame [8]byte
		if n, err := s.f.ReadAt(frame[:], off); err != nil {
			if n == 0 && err == io.EOF && off == size {
				break // clean end
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn frame header
			}
			return err
		}
		plen := int64(binary.LittleEndian.Uint32(frame[0:]))
		want := binary.LittleEndian.Uint32(frame[4:])
		if plen == 0 || plen > maxRowLen || off+8+plen > size {
			break // implausible or torn row
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+8); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt row: end of trusted prefix
		}
		var run Run
		if err := json.Unmarshal(payload, &run); err != nil {
			break
		}
		s.attach(&run)
		off += 8 + plen
	}
	if off < size {
		// Crash-only repair: drop the torn tail so the next append starts
		// at a row boundary.
		if err := s.f.Truncate(off); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// attach registers a replayed or freshly ingested row in memory. Duplicate
// hashes (possible only from a hand-edited file) keep the first row, mirroring
// Ingest's semantics.
func (s *Store) attach(run *Run) {
	if _, dup := s.byHash[run.Hash]; dup {
		return
	}
	s.runs = append(s.runs, run)
	s.byHash[run.Hash] = run
}

// Close closes the store file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Path returns the store file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of stored runs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Runs returns the stored runs in insertion order. The slice is a copy;
// the rows are shared and must be treated as immutable.
func (s *Store) Runs() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Run(nil), s.runs...)
}

// ByHash returns the run with the exact content hash, or nil.
func (s *Store) ByHash(hash string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byHash[strings.ToLower(hash)]
}

// Find resolves a run by ID, full hash, or unique hash prefix.
func (s *Store) Find(idOrPrefix string) (*Run, error) {
	q := strings.ToLower(strings.TrimSpace(idOrPrefix))
	if q == "" {
		return nil, fmt.Errorf("%w: empty run id", ErrNotFound)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byHash[q]; ok {
		return r, nil
	}
	var matches []*Run
	for _, r := range s.runs {
		if strings.HasPrefix(r.Hash, q) {
			matches = append(matches, r)
		}
	}
	switch len(matches) {
	case 0:
		return nil, fmt.Errorf("%w: %q", ErrNotFound, idOrPrefix)
	case 1:
		return matches[0], nil
	}
	ids := make([]string, len(matches))
	for i, m := range matches {
		ids[i] = m.ID
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("metricstore: run id %q is ambiguous (%s)", idOrPrefix, strings.Join(ids, ", "))
}

// Ingest appends run to the store unless a row with the same content hash
// already exists. It returns the canonical row — the existing one on a
// dedupe — and whether a new row was added. The append is CRC-framed and
// fsynced before Ingest returns; a crash mid-append leaves a torn tail the
// next Open truncates, never a half-visible row.
func (s *Store) Ingest(run *Run) (*Run, bool, error) {
	if err := run.normalize(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.byHash[run.Hash]; ok {
		return existing, false, nil
	}
	run.Seq = int64(len(s.runs)) + 1
	if run.IngestedAt.IsZero() {
		run.IngestedAt = time.Now().UTC()
	} else {
		run.IngestedAt = run.IngestedAt.UTC()
	}
	payload, err := json.Marshal(run)
	if err != nil {
		return nil, false, err
	}
	end, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, false, err
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := s.f.Write(frame); err != nil {
		// Roll back a partial append so in-memory and on-disk state agree.
		s.f.Truncate(end)
		return nil, false, err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Truncate(end)
		return nil, false, err
	}
	s.attach(run)
	return run, true, nil
}
