package metricstore

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// A metricFn extracts one comparable number from a run; ok=false means the
// run does not carry that metric (e.g. per-slot figures on a plain trace
// row) and is skipped by Trend.
type metricFn struct {
	help string
	get  func(*Run) (float64, bool)
}

var metrics = map[string]metricFn{
	"meankbs": {"mean wire bandwidth (kbs)", func(r *Run) (float64, bool) {
		return r.Summary.MeanKbs, r.Records > 0
	}},
	"p50kbs": {"p50 of per-minute bandwidth (kbs)", minuteKbs(func(r *Run) float64 { return r.Summary.MinuteKbs.P50 })},
	"p90kbs": {"p90 of per-minute bandwidth (kbs)", minuteKbs(func(r *Run) float64 { return r.Summary.MinuteKbs.P90 })},
	"p95kbs": {"p95 of per-minute bandwidth (kbs)", minuteKbs(func(r *Run) float64 { return r.Summary.MinuteKbs.P95 })},
	"p99kbs": {"p99 of per-minute bandwidth (kbs)", minuteKbs(func(r *Run) float64 { return r.Summary.MinuteKbs.P99 })},
	"maxkbs": {"busiest minute (kbs)", minuteKbs(func(r *Run) float64 { return r.Summary.MinuteKbs.Max })},
	"pps": {"mean packet rate (packets/s)", func(r *Run) (float64, bool) {
		return r.Summary.MeanPPS, r.Records > 0
	}},
	"records": {"record count", func(r *Run) (float64, bool) {
		return float64(r.Records), true
	}},
	"bprecord": {"on-disk bytes per record", func(r *Run) (float64, bool) {
		v := r.BytesPerRecord()
		return v, v > 0
	}},
	"ia-in-p50us": {"inbound interarrival p50 (µs)", func(r *Run) (float64, bool) {
		return float64(r.Summary.IAInP50Micros), r.Summary.IAInP50Micros > 0
	}},
	"ia-out-p50us": {"outbound interarrival p50 (µs)", func(r *Run) (float64, bool) {
		return float64(r.Summary.IAOutP50Micros), r.Summary.IAOutP50Micros > 0
	}},
	"perslotkbs":    {"mean bandwidth per slot (kbs, scenario runs)", perSlot(func(r *Run) float64 { return r.Summary.MeanKbs })},
	"p95perslotkbs": {"p95 minute bandwidth per slot (kbs, scenario runs)", perSlot(func(r *Run) float64 { return r.Summary.MinuteKbs.P95 })},
}

func minuteKbs(get func(*Run) float64) func(*Run) (float64, bool) {
	return func(r *Run) (float64, bool) {
		// A run with no minute series (window rows) has an all-zero
		// percentile block; skip it rather than flatten the trend.
		z := r.Summary.MinuteKbs
		if z.Max == 0 && z.P50 == 0 {
			return 0, false
		}
		return get(r), true
	}
}

func perSlot(get func(*Run) float64) func(*Run) (float64, bool) {
	return func(r *Run) (float64, bool) {
		slots := r.TotalSlots()
		if slots <= 0 {
			return 0, false
		}
		return get(r) / float64(slots), true
	}
}

// Metrics lists the trendable metric names with a one-line description,
// sorted by name.
func Metrics() []string {
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%-14s %s", name, metrics[name].help)
	}
	return out
}

// TrendPoint is one run's value of a trended metric.
type TrendPoint struct {
	Seq        int64
	ID         string
	Kind       string
	Label      string `json:",omitempty"`
	IngestedAt time.Time
	Value      float64
}

// Trend extracts metric across stored runs in insertion order, keeping the
// last n points (n <= 0 keeps all). kinds, when non-empty, restricts the
// runs considered (e.g. only "scenario" rows for per-slot trends). Runs
// not carrying the metric are skipped before the last-n cut.
func Trend(st *Store, metric string, n int, kinds ...string) ([]TrendPoint, error) {
	m, ok := metrics[metric]
	if !ok {
		return nil, fmt.Errorf("metricstore: unknown metric %q (see `cstrace -mode trend -metric help`)", metric)
	}
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		if k != "" {
			want[k] = true
		}
	}
	var pts []TrendPoint
	for _, r := range st.Runs() {
		if len(want) > 0 && !want[r.Kind] {
			continue
		}
		v, ok := m.get(r)
		if !ok {
			continue
		}
		pts = append(pts, TrendPoint{
			Seq:        r.Seq,
			ID:         r.ID,
			Kind:       r.Kind,
			Label:      r.Label,
			IngestedAt: r.IngestedAt,
			Value:      v,
		})
	}
	if n > 0 && len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	return pts, nil
}

// WriteTrend renders a trend as a text table with a normalized bar per
// point — the terminal version of the provisioning curve over time.
func WriteTrend(w io.Writer, metric string, pts []TrendPoint) {
	fmt.Fprintf(w, "trend %s (%d runs)\n", metric, len(pts))
	if len(pts) == 0 {
		return
	}
	max := pts[0].Value
	for _, p := range pts {
		if p.Value > max {
			max = p.Value
		}
	}
	for _, p := range pts {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(p.Value/max*30+0.5))
		}
		label := p.Label
		if label != "" {
			label = " " + label
		}
		fmt.Fprintf(w, "  %4d  %s  %-8s %14.2f  %s%s\n", p.Seq, p.ID, p.Kind, p.Value, bar, label)
	}
}
