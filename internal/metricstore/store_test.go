package metricstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/gamesim"
	"cstrace/internal/scenario"
	"cstrace/internal/trace"
)

// testTrace writes a small v4 (or v1) trace file and returns its path.
func testTrace(t *testing.T, name string, v1 bool, count int, gap time.Duration) string {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if v1 {
		w = trace.NewWriterV1(&buf)
	}
	w.SegmentPayload = 512 // several segments even for small counts
	for i := 0; i < count; i++ {
		if err := w.Write(trace.Record{
			T:      time.Duration(i) * gap,
			Dir:    trace.Direction(i & 1),
			Kind:   trace.KindGame,
			Client: uint32(i%10 + 1),
			App:    uint16(40 + i%80),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func openStore(t *testing.T, path string) *Store {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestIngestIdempotent(t *testing.T) {
	path := testTrace(t, "a.cst", false, 4000, time.Millisecond)
	st := openStore(t, filepath.Join(t.TempDir(), "m.csms"))

	run1, added, err := IngestTraceFile(st, path, IngestOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("first ingest reported added=false")
	}
	if run1.Records != 4000 || run1.Kind != KindTrace || run1.Warning != "" {
		t.Fatalf("run = %+v", run1)
	}

	run2, added, err := IngestTraceFile(st, path, IngestOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("re-ingest of identical content reported added=true")
	}
	if st.Len() != 1 {
		t.Fatalf("store rows = %d, want 1", st.Len())
	}

	// Byte-identical show output across the dedupe.
	var b1, b2 bytes.Buffer
	run1.WriteText(&b1)
	run2.WriteText(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("show output differs after re-ingest:\n%s\n----\n%s", b1.String(), b2.String())
	}

	// A byte-identical copy under another name still dedupes (content
	// addressing, not path addressing).
	copyPath := filepath.Join(filepath.Dir(path), "copy.cst")
	data, _ := os.ReadFile(path)
	os.WriteFile(copyPath, data, 0o644)
	_, added, err = IngestTraceFile(st, copyPath, IngestOptions{})
	if err != nil || added {
		t.Fatalf("copy ingest: added=%v err=%v, want dedupe", added, err)
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "m.csms")
	p1 := testTrace(t, "a.cst", false, 1000, time.Millisecond)
	p2 := testTrace(t, "b.cst", true, 500, 2*time.Millisecond)

	st := openStore(t, spath)
	r1, _, err := IngestTraceFile(st, p1, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := IngestTraceFile(st, p2, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.TraceVersion != 1 || r1.TraceVersion != 4 {
		t.Fatalf("trace versions = %d, %d", r1.TraceVersion, r2.TraceVersion)
	}
	var before bytes.Buffer
	r1.WriteText(&before)
	r2.WriteText(&before)
	st.Close()

	st2 := openStore(t, spath)
	if st2.Len() != 2 {
		t.Fatalf("reopened store rows = %d, want 2", st2.Len())
	}
	var after bytes.Buffer
	g1, err := st2.Find(r1.ID)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := st2.Find(r2.Hash)
	if err != nil {
		t.Fatal(err)
	}
	g1.WriteText(&after)
	g2.WriteText(&after)
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("rows changed across reopen:\n%s\n----\n%s", before.String(), after.String())
	}

	if _, err := st2.Find("deadbeef0000"); err == nil {
		t.Fatal("Find of unknown id succeeded")
	}
}

func TestStoreTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "m.csms")
	p1 := testTrace(t, "a.cst", false, 800, time.Millisecond)

	st := openStore(t, spath)
	if _, _, err := IngestTraceFile(st, p1, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: garbage past the last valid row.
	f, err := os.OpenFile(spath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x55, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02})
	f.Close()
	torn, _ := os.Stat(spath)

	st2 := openStore(t, spath)
	if st2.Len() != 1 {
		t.Fatalf("rows after torn tail = %d, want 1", st2.Len())
	}
	repaired, _ := os.Stat(spath)
	if repaired.Size() >= torn.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", torn.Size(), repaired.Size())
	}

	// The repaired store accepts further appends.
	p2 := testTrace(t, "b.cst", false, 900, time.Millisecond)
	if _, added, err := IngestTraceFile(st2, p2, IngestOptions{}); err != nil || !added {
		t.Fatalf("append after repair: added=%v err=%v", added, err)
	}
	st2.Close()
	if st3 := openStore(t, spath); st3.Len() != 2 {
		t.Fatalf("rows after repair+append = %d, want 2", st3.Len())
	}
}

func TestIngestSalvagesCrashedCapture(t *testing.T) {
	path := testTrace(t, "crash.cst", false, 6000, time.Millisecond)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-segment: no footer, no index, torn final frame.
	if err := os.WriteFile(path, data[:len(data)*6/10], 0o644); err != nil {
		t.Fatal(err)
	}
	st := openStore(t, filepath.Join(t.TempDir(), "m.csms"))
	run, added, err := IngestTraceFile(st, path, IngestOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("salvaged ingest not added")
	}
	if run.Warning == "" {
		t.Fatal("salvaged ingest carries no warning")
	}
	if run.Records == 0 || run.Records >= 6000 {
		t.Fatalf("salvaged records = %d, want 0 < n < 6000", run.Records)
	}
}

func TestRecordWindowAndTrend(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "m.csms"))
	var wins []analysis.WindowStats
	rw := analysis.NewRollingWindow(time.Minute, func(w analysis.WindowStats) { wins = append(wins, w) })
	for i := 0; i < 5000; i++ {
		rw.Handle(trace.Record{
			T:   time.Duration(i) * 50 * time.Millisecond, // ~4 minutes
			Dir: trace.Direction(i & 1),
			App: uint16(60 + i%40),
		})
	}
	rw.Close()
	if len(wins) < 3 {
		t.Fatalf("windows = %d, want several", len(wins))
	}
	for _, w := range wins {
		if _, _, err := RecordWindow(st, w, "test", "", time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	// Re-recording the same windows dedupes on the window content hash.
	for _, w := range wins {
		if _, added, err := RecordWindow(st, w, "test", "", time.Time{}); err != nil || added {
			t.Fatalf("window re-record: added=%v err=%v", added, err)
		}
	}
	if st.Len() != len(wins) {
		t.Fatalf("store rows = %d, want %d", st.Len(), len(wins))
	}

	pts, err := Trend(st, "meankbs", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("trend points = %d, want 2 (last-n cut)", len(pts))
	}
	if pts[0].Value <= 0 || pts[1].Value <= 0 {
		t.Fatalf("trend values = %+v", pts)
	}
	if _, err := Trend(st, "nosuchmetric", 0); err == nil {
		t.Fatal("unknown metric accepted")
	}
	// Window rows carry no minute series: percentile metrics skip them.
	if pts, err := Trend(st, "p95kbs", 0); err != nil || len(pts) != 0 {
		t.Fatalf("p95kbs over window rows = %d points, err %v; want 0, nil", len(pts), err)
	}
}

func TestRecordScenarioSlotClasses(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "m.csms"))
	suite, err := analysis.NewSuite(analysis.SuiteConfig{SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	suite.HandleBatch([]trace.Record{
		{T: time.Second, Dir: trace.In, App: 40},
		{T: 2 * time.Second, Dir: trace.Out, App: 200},
	})
	servers := []scenario.ServerResult{
		{Name: "s0", Game: gamesim.Config{Slots: 22}, Stats: gamesim.Stats{
			Duration: time.Hour, PacketsIn: 100, PacketsOut: 200, AppBytesIn: 4000, AppBytesOut: 40000, Established: 5,
		}},
		{Name: "s1", Game: gamesim.Config{Slots: 22}, Stats: gamesim.Stats{
			Duration: time.Hour, PacketsIn: 120, PacketsOut: 240, AppBytesIn: 5000, AppBytesOut: 50000, Established: 6,
		}},
		{Name: "s2", Game: gamesim.Config{Slots: 32}, Stats: gamesim.Stats{
			Duration: time.Hour, PacketsIn: 300, PacketsOut: 600, AppBytesIn: 9000, AppBytesOut: 90000, Established: 9,
		}},
	}
	hasher := NewStreamHasher()
	hasher.HandleBatch([]trace.Record{{T: time.Second, App: 40}})
	run, added, err := RecordScenario(st, ScenarioInfo{
		Hash:    hasher.Sum(),
		Source:  "test-spec",
		Label:   "launch",
		Horizon: time.Hour,
		Suite:   suite,
		Servers: servers,
	})
	if err != nil || !added {
		t.Fatalf("record scenario: added=%v err=%v", added, err)
	}
	if len(run.Servers) != 3 || run.TotalSlots() != 76 {
		t.Fatalf("servers = %+v", run.Servers)
	}
	if len(run.SlotClasses) != 2 {
		t.Fatalf("slot classes = %+v", run.SlotClasses)
	}
	if run.SlotClasses[0].Slots != 22 || run.SlotClasses[0].Servers != 2 {
		t.Fatalf("slot class 0 = %+v", run.SlotClasses[0])
	}
	if run.SlotClasses[1].Slots != 32 || run.SlotClasses[1].Servers != 1 {
		t.Fatalf("slot class 1 = %+v", run.SlotClasses[1])
	}
	// Per-slot trend picks up scenario rows only.
	pts, err := Trend(st, "perslotkbs", 0)
	if err != nil || len(pts) != 1 {
		t.Fatalf("perslotkbs trend = %v, %v", pts, err)
	}

	// show mentions the label and the classes.
	var buf bytes.Buffer
	run.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"launch", "slot class", "22-slot", "32-slot"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}
}

func TestIngestRejectsBadHash(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "m.csms"))
	if _, _, err := st.Ingest(&Run{Hash: "short"}); err == nil {
		t.Fatal("short hash accepted")
	}
	if _, _, err := st.Ingest(&Run{Hash: "ZZZZZZZZZZZZZZZZ"}); err == nil {
		t.Fatal("non-hex hash accepted")
	}
}
