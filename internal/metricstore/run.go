// Package metricstore is the durable side of the analysis pipeline: a
// portable single-file database of per-run analysis results, content-
// addressed by the SHA-256 of the ingested records so re-ingesting the same
// trace is a no-op. One-shot cstrace runs evaporate when the process exits;
// the store turns them into a provisioning history that `list`, `show` and
// `trend` can query across runs ("how did p95 bandwidth per slot move
// across the last 20 launch-day scenarios?").
//
// The file format is a crash-tolerant append-only log: a fixed header
// followed by length-prefixed, CRC-checked JSON rows. Open validates the
// log and silently truncates a torn tail — the same crash-only posture as
// the trace format — so a store written by a killed daemon reopens clean.
package metricstore

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cstrace/internal/analysis"
)

// Run kinds stored in Run.Kind.
const (
	// KindTrace is a one-shot ingest of a trace file.
	KindTrace = "trace"
	// KindScenario is a recorded fleet scenario run, carrying per-server
	// and per-slot-class metrics alongside the aggregate summary.
	KindScenario = "scenario"
	// KindWindow is one completed trace-time window recorded by the
	// analysis daemon.
	KindWindow = "window"
	// KindService is the daemon's cumulative end-of-session summary over
	// everything it ingested.
	KindService = "service"
)

// IDLen is the length of the short run ID (a Hash prefix).
const IDLen = 12

// Run is one row of the store: the serializable result of analyzing one
// unit of traffic (a trace file, a scenario, a daemon window, or a daemon
// session). Rows are immutable once ingested; the Hash is the row's
// content address and dedupe key.
type Run struct {
	// ID is the short run identifier: the first 12 hex digits of Hash.
	ID string
	// Hash is the hex SHA-256 content address of the ingested records
	// (for files: the file bytes; for streams: the canonical record
	// encoding; for service rows: the chain of ingested run hashes).
	Hash string
	// Seq is the 1-based insertion order in this store file.
	Seq int64
	// Kind is one of KindTrace, KindScenario, KindWindow, KindService.
	Kind string
	// Source says where the records came from (file path, spool entry,
	// scenario spec); Label is a free-form operator tag (-label).
	Source string
	Label  string `json:",omitempty"`
	// IngestedAt is the wall-clock ingest time (UTC).
	IngestedAt time.Time
	// TraceVersion is the trace format version for file ingests (0 when
	// not applicable).
	TraceVersion int `json:",omitempty"`
	// FileBytes is the on-disk trace size for file ingests; with Records
	// it gives the B/record storage figure.
	FileBytes int64 `json:",omitempty"`
	// Records is the analyzed record count.
	Records int64
	// Warning carries the reader's degradation note when the ingest
	// salvaged a damaged capture; empty for clean ingests.
	Warning string `json:",omitempty"`
	// Summary is the serializable collector digest.
	Summary analysis.Summary
	// Window is set on KindWindow rows.
	Window *analysis.WindowStats `json:",omitempty"`
	// Servers and SlotClasses are set on KindScenario rows.
	Servers     []ServerMetrics    `json:",omitempty"`
	SlotClasses []SlotClassMetrics `json:",omitempty"`
}

// ServerMetrics is one server's row of a scenario run.
type ServerMetrics struct {
	Name        string
	Slots       int
	TickMillis  float64
	Packets     int64
	WireBytes   int64
	MeanKbs     float64
	KbsPerSlot  float64
	Established int
	MeanPlayers float64
}

// SlotClassMetrics aggregates a scenario's servers sharing a slot count —
// the paper's per-slot provisioning figure, tracked per capacity class.
type SlotClassMetrics struct {
	Slots      int
	Servers    int
	Packets    int64
	MeanKbs    float64 // mean per-server bandwidth in the class
	KbsPerSlot float64
}

// TotalSlots sums the slot capacity across a scenario run's servers.
func (r *Run) TotalSlots() int {
	var n int
	for _, s := range r.Servers {
		n += s.Slots
	}
	return n
}

// BytesPerRecord returns the on-disk storage cost per record, or 0 when
// unknown (non-file rows).
func (r *Run) BytesPerRecord() float64 {
	if r.FileBytes <= 0 || r.Records <= 0 {
		return 0
	}
	return float64(r.FileBytes) / float64(r.Records)
}

// normalize derives ID from Hash and fills defaults; it is called by
// Store.Ingest before the row is written.
func (r *Run) normalize() error {
	r.Hash = strings.ToLower(strings.TrimSpace(r.Hash))
	if len(r.Hash) < IDLen {
		return fmt.Errorf("metricstore: run hash %q is too short (need >= %d hex digits)", r.Hash, IDLen)
	}
	for _, c := range r.Hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("metricstore: run hash %q is not lowercase hex", r.Hash)
		}
	}
	r.ID = r.Hash[:IDLen]
	if r.Kind == "" {
		r.Kind = KindTrace
	}
	return nil
}

// WriteText renders the row for `show`: a stable, human-readable dump.
// The output is a pure function of the stored row, so showing the same run
// twice — or after a re-ingest that deduped to this row — is byte-identical.
func (r *Run) WriteText(w io.Writer) {
	fmt.Fprintf(w, "run %s  (%s)\n", r.ID, r.Kind)
	fmt.Fprintf(w, "  hash         %s\n", r.Hash)
	fmt.Fprintf(w, "  seq          %d\n", r.Seq)
	if r.Source != "" {
		fmt.Fprintf(w, "  source       %s\n", r.Source)
	}
	if r.Label != "" {
		fmt.Fprintf(w, "  label        %s\n", r.Label)
	}
	fmt.Fprintf(w, "  ingested     %s\n", r.IngestedAt.UTC().Format(time.RFC3339Nano))
	if r.TraceVersion != 0 {
		fmt.Fprintf(w, "  trace        v%d, %d bytes (%.2f B/record)\n",
			r.TraceVersion, r.FileBytes, r.BytesPerRecord())
	}
	if r.Warning != "" {
		fmt.Fprintf(w, "  warning      %s\n", r.Warning)
	}
	s := &r.Summary
	fmt.Fprintf(w, "  records      %d over %.1fs\n", r.Records, s.SpanSeconds)
	fmt.Fprintf(w, "  packets      %d in / %d out\n", s.PacketsIn, s.PacketsOut)
	fmt.Fprintf(w, "  app bytes    %d in / %d out (mean %.1f / %.1f B/pkt)\n",
		s.AppBytesIn, s.AppBytesOut, s.MeanAppIn, s.MeanAppOut)
	fmt.Fprintf(w, "  bandwidth    %.1f kbs mean (%.1f in / %.1f out), %.1f pps\n",
		s.MeanKbs, s.MeanKbsIn, s.MeanKbsOut, s.MeanPPS)
	fmt.Fprintf(w, "  minute kbs   p50 %.1f  p90 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
		s.MinuteKbs.P50, s.MinuteKbs.P90, s.MinuteKbs.P95, s.MinuteKbs.P99, s.MinuteKbs.Max)
	if s.IAInP50Micros > 0 || s.IAOutP50Micros > 0 {
		fmt.Fprintf(w, "  interarrival p50 %dus in (cv %.2f) / %dus out (cv %.2f)\n",
			s.IAInP50Micros, s.IAInCV, s.IAOutP50Micros, s.IAOutCV)
	}
	for _, k := range s.Kinds {
		fmt.Fprintf(w, "  kind         %-10s %12d pkts %14d app bytes\n", k.Kind, k.Packets, k.AppBytes)
	}
	if r.Window != nil {
		win := r.Window
		fmt.Fprintf(w, "  window       #%d [%s, %s) final=%v\n", win.Index, win.Start, win.End, win.Final)
	}
	if len(r.Servers) > 0 {
		fmt.Fprintf(w, "  servers      %d (%d slots)\n", len(r.Servers), r.TotalSlots())
		for _, sv := range r.Servers {
			fmt.Fprintf(w, "    %-8s %3d slots %12d pkts %10.1f kbs %8.1f kbs/slot  estab %d\n",
				sv.Name, sv.Slots, sv.Packets, sv.MeanKbs, sv.KbsPerSlot, sv.Established)
		}
	}
	if len(r.SlotClasses) > 0 {
		for _, sc := range r.SlotClasses {
			fmt.Fprintf(w, "  slot class   %2d-slot x%-3d %12d pkts %10.1f kbs %8.1f kbs/slot\n",
				sc.Slots, sc.Servers, sc.Packets, sc.MeanKbs, sc.KbsPerSlot)
		}
	}
}
