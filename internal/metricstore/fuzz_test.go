package metricstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cstrace/internal/trace"
)

// fuzzSeed builds a small sealed trace of the given version for seeding.
func fuzzSeed(version int, count int) []byte {
	var buf bytes.Buffer
	var w *trace.Writer
	switch version {
	case 1:
		w = trace.NewWriterV1(&buf)
	case 2:
		w = trace.NewWriterV2(&buf)
	case 3:
		w = trace.NewWriterV3(&buf)
	default:
		w = trace.NewWriter(&buf)
	}
	w.SegmentPayload = 256
	for i := 0; i < count; i++ {
		w.Write(trace.Record{
			T:      time.Duration(i) * time.Millisecond,
			Dir:    trace.Direction(i & 1),
			Kind:   trace.Kind(i % 3),
			Client: uint32(i%7 + 1),
			App:    uint16(40 + i%60),
		})
	}
	w.Flush()
	return buf.Bytes()
}

// FuzzIngest feeds arbitrary bytes through the store's trace-file ingest
// path. Whatever the bytes are — valid v1-v4 traces, truncated captures,
// bit-flipped segments, garbage — ingest must never panic, must never
// create two rows for the same content hash, and must always leave the
// store readable (list and show still work, and the file reopens).
func FuzzIngest(f *testing.F) {
	for _, ver := range []int{1, 2, 3, 4} {
		clean := fuzzSeed(ver, 300)
		f.Add(clean)
		f.Add(clean[:len(clean)*2/3]) // torn capture
		damaged := append([]byte(nil), clean...)
		damaged[len(damaged)/2] ^= 0x40 // bit flip mid-file
		f.Add(damaged)
	}
	f.Add([]byte{})
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		tracePath := filepath.Join(dir, "in.cst")
		if err := os.WriteFile(tracePath, data, 0o600); err != nil {
			t.Fatal(err)
		}
		storePath := filepath.Join(dir, "m.csms")
		st, err := Open(storePath)
		if err != nil {
			t.Fatalf("open fresh store: %v", err)
		}

		run1, added1, err1 := IngestTraceFile(st, tracePath, IngestOptions{})
		run2, added2, err2 := IngestTraceFile(st, tracePath, IngestOptions{})

		if err1 == nil {
			if !added1 {
				t.Fatal("first successful ingest reported added=false")
			}
			if err2 != nil {
				t.Fatalf("re-ingest of ingested content failed: %v", err2)
			}
			if added2 {
				t.Fatal("same content hash inserted twice")
			}
			if run1.Hash != run2.Hash || run1.Seq != run2.Seq {
				t.Fatalf("dedupe returned a different row: %+v vs %+v", run1, run2)
			}
			if st.Len() != 1 {
				t.Fatalf("store rows = %d, want 1", st.Len())
			}
		} else if st.Len() != 0 {
			t.Fatalf("failed ingest left %d rows", st.Len())
		}

		// list/show must work regardless of ingest outcome.
		for _, r := range st.Runs() {
			var buf bytes.Buffer
			r.WriteText(&buf)
			if buf.Len() == 0 {
				t.Fatal("show produced no output")
			}
			if got, err := st.Find(r.ID); err != nil || got != r {
				t.Fatalf("Find(%q) = %v, %v", r.ID, got, err)
			}
		}
		before := st.Len()
		st.Close()

		// The store file must reopen cleanly with the same rows.
		st2, err := Open(storePath)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer st2.Close()
		if st2.Len() != before {
			t.Fatalf("rows changed across reopen: %d -> %d", before, st2.Len())
		}
	})
}
