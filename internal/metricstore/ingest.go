package metricstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"sort"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/scenario"
	"cstrace/internal/sched"
	"cstrace/internal/trace"
)

// HashReader content-addresses a byte stream: hex SHA-256 plus length.
func HashReader(r io.Reader) (string, int64, error) {
	h := sha256.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// HashFile content-addresses a file's bytes.
func HashFile(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	return HashReader(f)
}

// IngestOptions tunes a trace-file ingest.
type IngestOptions struct {
	// Parallelism is the collector/decode parallelism, exactly as
	// cstrace's -parallel flag: 0/1 serial, n>1 sharded, sched.Auto
	// budget-granted.
	Parallelism int
	// Source overrides the recorded source (defaults to the file path);
	// Label is the operator tag.
	Source string
	Label  string
	// Now overrides the recorded ingest time (tests); zero means now.
	Now time.Time
	// Extra, when non-nil, receives the decoded record stream in order
	// alongside the analysis suite — the daemon tees its cumulative
	// collectors and rolling window here so one decode pass serves both
	// the per-file row and the service-wide state. The tee forgoes the
	// zero-copy block hand-off (the fan-out is not a BlockIngester), so
	// leave it nil for plain one-shot ingests.
	Extra trace.Handler
}

// IngestTraceFile analyzes one trace file through the sharded-suite path
// and records the result. The file's SHA-256 is its content address: if
// the store already holds it, the file is not even opened for analysis and
// the existing row is returned with added=false.
//
// Damaged captures still ingest: the reader runs in Salvage mode, so a
// crashed v2+ capture is recovered via the rebuilt segment index and a
// damaged v1 stream degrades to the records-before-error serial scan. In
// both cases the degradation note lands in the run row's Warning.
func IngestTraceFile(st *Store, path string, opts IngestOptions) (*Run, bool, error) {
	hashHex, size, err := HashFile(path)
	if err != nil {
		return nil, false, err
	}
	if existing := st.ByHash(hashHex); existing != nil {
		return existing, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()

	suite, err := analysis.NewSuite(analysis.SuiteConfig{SortedInput: true})
	if err != nil {
		return nil, false, err
	}
	rd := trace.NewReader(f)
	rd.Salvage = true
	sink, closeSink := suite.Sink(opts.Parallelism)
	h := sink
	if opts.Extra != nil {
		h = trace.Tee(sink, opts.Extra)
	}
	decodePar := opts.Parallelism
	if opts.Parallelism == sched.Auto {
		lease := sched.Default().Acquire(sched.Default().Total())
		decodePar = lease.Workers()
		defer lease.Release()
	}
	n, rerr := rd.ReadAllSharded(h, decodePar)
	closeSink()
	warning := rd.Warning()
	if rerr != nil {
		// Salvage covers indexed traces; a damaged v1 stream (or damage
		// past what salvage could repair) surfaces here. Keep the records
		// scanned before the damage — that is the whole point of ingesting
		// crashed captures — but only when there are any.
		if n == 0 || !(errors.Is(rerr, trace.ErrCorrupt) || errors.Is(rerr, io.ErrUnexpectedEOF)) {
			return nil, false, fmt.Errorf("metricstore: analyzing %s: %w", path, rerr)
		}
		if warning == "" {
			warning = fmt.Sprintf("scan stopped after %d records: %v", n, rerr)
		} else {
			warning = fmt.Sprintf("%s; scan stopped after %d records: %v", warning, n, rerr)
		}
	}
	source := opts.Source
	if source == "" {
		source = path
	}
	run := &Run{
		Hash:         hashHex,
		Kind:         KindTrace,
		Source:       source,
		Label:        opts.Label,
		IngestedAt:   opts.Now,
		TraceVersion: rd.Version(),
		FileBytes:    size,
		Records:      n,
		Warning:      warning,
		Summary:      analysis.Summarize(suite, 0),
	}
	return st.Ingest(run)
}

// StreamHasher content-addresses a live record stream (no file required):
// a trace.Handler hashing each record's canonical 16-byte encoding in
// stream order. Tee it alongside the real consumer, then Sum.
type StreamHasher struct {
	h   hash.Hash
	n   int64
	buf []byte
}

// NewStreamHasher creates a stream hasher.
func NewStreamHasher() *StreamHasher {
	return &StreamHasher{h: sha256.New()}
}

// Handle implements trace.Handler.
func (sh *StreamHasher) Handle(r trace.Record) { sh.HandleBatch([]trace.Record{r}) }

// HandleBatch implements trace.BatchHandler.
func (sh *StreamHasher) HandleBatch(rs []trace.Record) {
	for _, r := range rs {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(r.T))
		rec[8] = byte(r.Dir)
		rec[9] = byte(r.Kind)
		binary.LittleEndian.PutUint32(rec[10:], r.Client)
		binary.LittleEndian.PutUint16(rec[14:], r.App)
		sh.buf = append(sh.buf, rec[:]...)
		if len(sh.buf) >= 1<<14 {
			sh.h.Write(sh.buf)
			sh.buf = sh.buf[:0]
		}
	}
	sh.n += int64(len(rs))
}

// Records returns how many records were hashed.
func (sh *StreamHasher) Records() int64 { return sh.n }

// Sum returns the hex digest of everything hashed so far.
func (sh *StreamHasher) Sum() string {
	if len(sh.buf) > 0 {
		sh.h.Write(sh.buf)
		sh.buf = sh.buf[:0]
	}
	// Sum does not consume the hash state, so Sum may be called again
	// after more records.
	return hex.EncodeToString(sh.h.Sum(nil))
}

// ScenarioInfo describes a completed fleet scenario for RecordScenario.
type ScenarioInfo struct {
	// Hash is the run's content address — typically a StreamHasher's Sum
	// over the merged fleet stream.
	Hash   string
	Source string
	Label  string
	// Horizon is the fleet trace length (the Summary's rate denominator).
	Horizon time.Duration
	// Suite is the closed aggregate suite over the merged stream.
	Suite *analysis.Suite
	// Servers carries the per-server results.
	Servers []scenario.ServerResult
	// Now overrides the recorded ingest time (tests); zero means now.
	Now time.Time
}

// RecordScenario stores a scenario run: the aggregate summary plus
// per-server and per-slot-class provisioning metrics. Content addressing
// works as for files — re-recording an identical run (same seed, same
// spec) dedupes to the existing row.
func RecordScenario(st *Store, info ScenarioInfo) (*Run, bool, error) {
	if info.Suite == nil {
		return nil, false, errors.New("metricstore: RecordScenario needs the aggregate suite")
	}
	sum := analysis.Summarize(info.Suite, info.Horizon)
	run := &Run{
		Hash:       info.Hash,
		Kind:       KindScenario,
		Source:     info.Source,
		Label:      info.Label,
		IngestedAt: info.Now,
		Records:    sum.Records,
		Summary:    sum,
	}
	classes := make(map[int]*SlotClassMetrics)
	for _, sr := range info.Servers {
		st := sr.Stats
		slots := sr.Game.Slots
		kbs := sr.MeanKbs()
		perSlot := 0.0
		if slots > 0 {
			perSlot = kbs / float64(slots)
		}
		run.Servers = append(run.Servers, ServerMetrics{
			Name:        sr.Name,
			Slots:       slots,
			TickMillis:  float64(sr.Game.TickInterval) / 1e6,
			Packets:     st.PacketsIn + st.PacketsOut,
			WireBytes:   sr.WireBytes(),
			MeanKbs:     kbs,
			KbsPerSlot:  perSlot,
			Established: st.Established,
			MeanPlayers: st.MeanPlayers(),
		})
		c := classes[slots]
		if c == nil {
			c = &SlotClassMetrics{Slots: slots}
			classes[slots] = c
		}
		c.Servers++
		c.Packets += st.PacketsIn + st.PacketsOut
		c.MeanKbs += kbs
	}
	slotKeys := make([]int, 0, len(classes))
	for k := range classes {
		slotKeys = append(slotKeys, k)
	}
	sort.Ints(slotKeys)
	for _, k := range slotKeys {
		c := classes[k]
		c.MeanKbs /= float64(c.Servers)
		if c.Slots > 0 {
			c.KbsPerSlot = c.MeanKbs / float64(c.Slots)
		}
		run.SlotClasses = append(run.SlotClasses, *c)
	}
	return st.Ingest(run)
}

// RecordWindow stores one completed daemon window. The window's own
// content hash is the dedupe key, so replaying a spool through a fresh
// daemon against the same store re-creates no rows.
func RecordWindow(st *Store, w analysis.WindowStats, source, label string, now time.Time) (*Run, bool, error) {
	span := (w.End - w.Start).Seconds()
	sum := analysis.Summary{
		Records:     w.Records,
		SpanSeconds: span,
		PacketsIn:   w.PacketsIn,
		PacketsOut:  w.PacketsOut,
		AppBytesIn:  w.AppBytesIn,
		AppBytesOut: w.AppBytesOut,
		WireBytes:   w.WireBytes,
		MeanKbs:     w.MeanKbs,
		MeanPPS:     w.MeanPPS,
	}
	if w.PacketsIn > 0 {
		sum.MeanAppIn = float64(w.AppBytesIn) / float64(w.PacketsIn)
	}
	if w.PacketsOut > 0 {
		sum.MeanAppOut = float64(w.AppBytesOut) / float64(w.PacketsOut)
	}
	win := w
	run := &Run{
		Hash:       w.Hash,
		Kind:       KindWindow,
		Source:     source,
		Label:      label,
		IngestedAt: now,
		Records:    w.Records,
		Summary:    sum,
		Window:     &win,
	}
	return st.Ingest(run)
}
