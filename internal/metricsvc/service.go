// Package metricsvc is the continuous-analysis daemon behind
// `cstrace -mode serve` and cmd/csmetricsd: it watches a spool directory
// for trace files, ingests each new file through the metricstore path
// (content-addressed, so re-delivery is free), and threads every record
// through service-wide state — a cumulative analysis suite and a rolling
// trace-time window — recording completed windows and, on shutdown, a
// whole-service run into the same store the per-file rows land in.
//
// Files are stitched onto one service-wide timeline by rebasing: each
// file's records are shifted by the running offset, and the offset then
// advances by that file's span. Feeding the files of a spool through the
// engine is therefore equivalent — collector state and all — to analyzing
// their concatenation in one shot, which is what the golden-equality test
// in this package proves against cstrace's AnalyzeTrace.
package metricsvc

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cstrace/internal/analysis"
	"cstrace/internal/metricstore"
	"cstrace/internal/trace"
)

// TraceSuffix is the spool file extension the sweep considers; anything
// else in the directory (reports, partial uploads under another name) is
// ignored.
const TraceSuffix = ".cst"

// Config describes a service engine.
type Config struct {
	// Store receives per-file, per-window and service rows. Required.
	Store *metricstore.Store
	// Spool is the directory swept for *.cst files. Required for Run;
	// IngestFile works without it.
	Spool string
	// Poll is the sweep cadence (default 2s). Reports are emitted after
	// every sweep that ingested something, and at ReportEvery otherwise.
	Poll time.Duration
	// ReportEvery is the rolling-report cadence (default 30s; <0 disables
	// idle reports).
	ReportEvery time.Duration
	// Window is the rolling trace-time window width (default 1m).
	Window time.Duration
	// Parallelism follows cstrace's -parallel flag: 0/1 serial, n>1
	// sharded collectors, sched.Auto budget-granted.
	Parallelism int
	// Label tags every row this engine records.
	Label string
	// Report, when non-nil, receives one k=v line per report tick.
	Report io.Writer
	// Logf, when non-nil, receives progress lines (one per ingested file).
	Logf func(format string, args ...any)
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Engine is the continuous-analysis service. It is single-goroutine: call
// IngestFile/Sweep/Run/Close from one goroutine only (the collector
// parallelism behind the cumulative sink is internal).
type Engine struct {
	cfg       Config
	suite     *analysis.Suite
	sink      trace.Handler
	closeSink func()
	win       *analysis.RollingWindow

	offset     time.Duration // service-timeline rebase for the next file
	fileHashes []string      // content hash of every spool file seen, in order
	seen       map[string]bool

	files, dedups, records, windows int64
	lastWin                         *analysis.WindowStats
	emitErr                         error
	closed                          bool
	final                           analysis.Summary
	serviceRun                      *metricstore.Run
}

// New builds an engine. Close must be called to flush the partial window
// and record the service row.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, errors.New("metricsvc: Config.Store is required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.ReportEvery == 0 {
		cfg.ReportEvery = 30 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	suite, err := analysis.NewSuite(analysis.SuiteConfig{SortedInput: true})
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, suite: suite, seen: make(map[string]bool)}
	e.sink, e.closeSink = suite.Sink(cfg.Parallelism)
	e.win = analysis.NewRollingWindow(cfg.Window, e.recordWindow)
	return e, nil
}

func (e *Engine) recordWindow(w analysis.WindowStats) {
	e.windows++
	cp := w
	e.lastWin = &cp
	_, _, err := metricstore.RecordWindow(e.cfg.Store, w,
		"service:"+e.cfg.Spool, e.cfg.Label, e.cfg.Now().UTC())
	if err != nil && e.emitErr == nil {
		e.emitErr = err
	}
}

// rebase shifts each file's records onto the service timeline and fans
// them to the cumulative sink and the rolling window. It is the
// IngestOptions.Extra handler for one file: end tracks the file's own span
// so the engine can advance the offset afterwards.
type rebase struct {
	e       *Engine
	end     time.Duration
	scratch trace.Block
}

func (f *rebase) Handle(r trace.Record) { f.HandleBatch([]trace.Record{r}) }

func (f *rebase) HandleBatch(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	f.scratch = append(f.scratch[:0], rs...)
	off := f.e.offset
	for i := range f.scratch {
		if f.scratch[i].T > f.end {
			f.end = f.scratch[i].T
		}
		f.scratch[i].T += off
	}
	trace.Dispatch(f.e.sink, f.scratch)
	f.e.win.HandleBatch(f.scratch)
}

// IngestFile feeds one trace file through the service: the per-file run
// row is recorded exactly as a one-shot ingest would (salvage mode, same
// Summary), and — when the file is new to the store — its records also
// flow, rebased onto the service timeline, into the cumulative suite and
// the rolling window. A file the store already holds is deduplicated
// without being opened; it still counts toward the service row's content
// hash, so replaying a whole spool against a warm store changes nothing.
func (e *Engine) IngestFile(path string) (*metricstore.Run, bool, error) {
	if e.closed {
		return nil, false, errors.New("metricsvc: engine is closed")
	}
	fan := &rebase{e: e}
	run, added, err := metricstore.IngestTraceFile(e.cfg.Store, path, metricstore.IngestOptions{
		Parallelism: e.cfg.Parallelism,
		Label:       e.cfg.Label,
		Now:         e.cfg.Now().UTC(),
		Extra:       fan,
	})
	if err != nil {
		return nil, false, err
	}
	e.fileHashes = append(e.fileHashes, run.Hash)
	if !added {
		e.dedups++
		return run, false, nil
	}
	e.files++
	e.records += run.Records
	e.offset += fan.end
	if e.cfg.Logf != nil {
		e.cfg.Logf("ingested %s: run %s, %d records, v%d%s",
			path, run.ID, run.Records, run.TraceVersion, warnNote(run.Warning))
	}
	if e.emitErr != nil {
		return run, true, e.emitErr
	}
	return run, true, nil
}

func warnNote(w string) string {
	if w == "" {
		return ""
	}
	return " (salvaged: " + w + ")"
}

// Sweep ingests, in name order, every spool file not yet seen by this
// engine. It returns how many files were newly analyzed (store
// deduplicates don't count).
func (e *Engine) Sweep() (int, error) {
	entries, err := os.ReadDir(e.cfg.Spool)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != TraceSuffix {
			continue
		}
		if !e.seen[ent.Name()] {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	added := 0
	for _, name := range names {
		_, fresh, err := e.IngestFile(filepath.Join(e.cfg.Spool, name))
		if err != nil {
			return added, fmt.Errorf("metricsvc: ingesting %s: %w", name, err)
		}
		e.seen[name] = true
		if fresh {
			added++
		}
	}
	return added, nil
}

// report writes one k=v status line. It reads only engine-owned state, so
// it is safe mid-stream even with a sharded cumulative sink (the suite's
// collectors may still be sweeping in their workers).
func (e *Engine) report() {
	if e.cfg.Report == nil {
		return
	}
	line := fmt.Sprintf("report t=%s files=%d dedup=%d records=%d windows=%d",
		e.cfg.Now().UTC().Format(time.RFC3339), e.files, e.dedups, e.records, e.windows)
	if e.lastWin != nil {
		line += fmt.Sprintf(" win=%d win_kbs=%.1f win_pps=%.1f",
			e.lastWin.Index, e.lastWin.MeanKbs, e.lastWin.MeanPPS)
	}
	fmt.Fprintln(e.cfg.Report, line)
}

// Run sweeps the spool at the configured cadence until ctx is done, then
// returns ctx's cause. Close is still the caller's job (a daemon typically
// defers it): Run stopping only pauses ingestion.
func (e *Engine) Run(ctx context.Context) error {
	tick := time.NewTicker(e.cfg.Poll)
	defer tick.Stop()
	lastReport := e.cfg.Now()
	for {
		n, err := e.Sweep()
		if err != nil {
			return err
		}
		if n > 0 || (e.cfg.ReportEvery > 0 && e.cfg.Now().Sub(lastReport) >= e.cfg.ReportEvery) {
			e.report()
			lastReport = e.cfg.Now()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close flushes the partial rolling window, finalizes the cumulative
// suite, and records the whole-service run row — content-addressed by the
// ordered per-file hashes, so rerunning the same spool into the same store
// dedupes to the existing service row. It returns that row (nil when the
// engine saw no files). Close is idempotent.
func (e *Engine) Close() (*metricstore.Run, error) {
	if e.closed {
		return e.serviceRun, e.emitErr
	}
	e.closed = true
	e.win.Close()
	e.closeSink()
	e.final = analysis.Summarize(e.suite, 0)
	e.report()
	if len(e.fileHashes) == 0 {
		return nil, e.emitErr
	}
	h := sha256.New()
	for _, fh := range e.fileHashes {
		h.Write([]byte(fh))
	}
	run := &metricstore.Run{
		Hash:       hex.EncodeToString(h.Sum(nil)),
		Kind:       metricstore.KindService,
		Source:     "spool:" + e.cfg.Spool,
		Label:      e.cfg.Label,
		IngestedAt: e.cfg.Now().UTC(),
		Records:    e.records,
		Summary:    e.final,
	}
	stored, _, err := e.cfg.Store.Ingest(run)
	if err == nil {
		e.serviceRun = stored
		err = e.emitErr
	}
	return e.serviceRun, err
}

// FinalSummary returns the cumulative suite's summary over everything the
// engine analyzed. Only valid after Close.
func (e *Engine) FinalSummary() analysis.Summary { return e.final }

// Suite exposes the cumulative suite for table rendering after Close.
func (e *Engine) Suite() *analysis.Suite { return e.suite }

// Windows returns how many completed windows the engine recorded.
func (e *Engine) Windows() int64 { return e.windows }
