package metricsvc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	cstrace "cstrace"
	"cstrace/internal/analysis"
	"cstrace/internal/metricstore"
	"cstrace/internal/metricsvc"
	"cstrace/internal/trace"
)

// spoolRecords builds one spool file's worth of records: deterministic,
// multi-kind, both directions, ending exactly at span.
func spoolRecords(seed, count int, span time.Duration) []trace.Record {
	kinds := []trace.Kind{trace.KindGame, trace.KindGame, trace.KindGame,
		trace.KindHandshake, trace.KindText, trace.KindVoice}
	recs := make([]trace.Record, count)
	for i := range recs {
		recs[i] = trace.Record{
			T:      span * time.Duration(i) / time.Duration(count-1),
			Dir:    trace.Direction((i + seed) & 1),
			Kind:   kinds[(i*7+seed)%len(kinds)],
			Client: uint32((i*3+seed)%17 + 1),
			App:    uint16(30 + (i*11+seed*5)%200),
		}
	}
	return recs
}

func writeSpoolFile(t *testing.T, dir, name string, recs []trace.Record) {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.SegmentPayload = 512
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func fixedClock() func() time.Time {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return base }
}

// TestServiceMatchesOneShotAnalysis is the golden-equality check the
// package doc promises: a spool of traces fed through the engine must
// leave the cumulative suite in exactly the state one-shot AnalyzeTrace
// reaches on the concatenation of those traces rebased onto one timeline.
func TestServiceMatchesOneShotAnalysis(t *testing.T) {
	spool := t.TempDir()
	files := [][]trace.Record{
		spoolRecords(1, 3000, 150*time.Second),
		spoolRecords(2, 2000, 100*time.Second),
		spoolRecords(3, 2500, 130*time.Second),
	}
	for i, recs := range files {
		writeSpoolFile(t, spool, string(rune('a'+i))+".cst", recs)
	}

	// Golden: the concatenation, each file shifted by the running offset.
	var concat bytes.Buffer
	cw := trace.NewWriter(&concat)
	var offset time.Duration
	for _, recs := range files {
		var end time.Duration
		for _, r := range recs {
			if r.T > end {
				end = r.T
			}
			r.T += offset
			if err := cw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		offset += end
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	ta, err := cstrace.AnalyzeTrace(bytes.NewReader(concat.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.Summarize(ta.Suite, 0)

	st, err := metricstore.Open(filepath.Join(t.TempDir(), "m.csms"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng, err := metricsvc.New(metricsvc.Config{
		Store:       st,
		Spool:       spool,
		Window:      time.Minute,
		Parallelism: 4,
		Label:       "golden",
		Now:         fixedClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := eng.Sweep(); err != nil || n != 3 {
		t.Fatalf("Sweep = %d, %v; want 3, nil", n, err)
	}
	svc, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := eng.FinalSummary()

	if !reflect.DeepEqual(got, want) {
		t.Errorf("service summary diverges from one-shot analysis:\n got %+v\nwant %+v", got, want)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Errorf("summary JSON diverges:\n got %s\nwant %s", gj, wj)
	}

	if svc == nil || svc.Kind != metricstore.KindService {
		t.Fatalf("service row = %+v", svc)
	}
	if svc.Records != 7500 {
		t.Errorf("service row records = %d, want 7500", svc.Records)
	}
	// 380s of rebased trace time at 1-minute windows: windows 0..6, the
	// last flushed partial on Close.
	if eng.Windows() != 7 {
		t.Errorf("windows = %d, want 7", eng.Windows())
	}
	var traces, wins, svcs int
	for _, r := range st.Runs() {
		switch r.Kind {
		case metricstore.KindTrace:
			traces++
		case metricstore.KindWindow:
			wins++
		case metricstore.KindService:
			svcs++
		}
	}
	if traces != 3 || wins != 7 || svcs != 1 {
		t.Errorf("store rows: %d traces, %d windows, %d service; want 3, 7, 1",
			traces, wins, svcs)
	}
}

// TestServiceReplayIsIdempotent re-runs a fresh engine over the same spool
// and store: every file row, window row, and the service row must dedupe
// on content hash, leaving the store byte-for-byte unchanged.
func TestServiceReplayIsIdempotent(t *testing.T) {
	spool := t.TempDir()
	writeSpoolFile(t, spool, "a.cst", spoolRecords(1, 2000, 90*time.Second))
	writeSpoolFile(t, spool, "b.cst", spoolRecords(2, 1500, 70*time.Second))
	storePath := filepath.Join(t.TempDir(), "m.csms")

	runOnce := func() *metricstore.Run {
		st, err := metricstore.Open(storePath)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		eng, err := metricsvc.New(metricsvc.Config{
			Store: st, Spool: spool, Window: time.Minute,
			Parallelism: 2, Now: fixedClock(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Sweep(); err != nil {
			t.Fatal(err)
		}
		svc, err := eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}

	svc1 := runOnce()
	before, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := runOnce()
	after, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("store file changed on replay: %d -> %d bytes", len(before), len(after))
	}
	if svc1 == nil || svc2 == nil || svc1.Hash != svc2.Hash || svc1.Seq != svc2.Seq {
		t.Errorf("service rows differ across replay: %+v vs %+v", svc1, svc2)
	}
}

// TestServiceRunLoop drives the polling loop itself: files dropped into
// the spool while Run is live are picked up, and cancellation stops it.
func TestServiceRunLoop(t *testing.T) {
	spool := t.TempDir()
	writeSpoolFile(t, spool, "a.cst", spoolRecords(1, 1000, 30*time.Second))

	st, err := metricstore.Open(filepath.Join(t.TempDir(), "m.csms"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var report strings.Builder
	eng, err := metricsvc.New(metricsvc.Config{
		Store: st, Spool: spool, Poll: 5 * time.Millisecond,
		Window: time.Minute, Report: &report, Now: fixedClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx) }()

	deadline := time.After(5 * time.Second)
	for st.Len() < 1 {
		select {
		case <-deadline:
			t.Fatal("first file never ingested")
		case <-time.After(5 * time.Millisecond):
		}
	}
	writeSpoolFile(t, spool, "b.cst", spoolRecords(2, 1000, 30*time.Second))
	for st.Len() < 2 {
		select {
		case <-deadline:
			t.Fatal("second file never ingested")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "files=") {
		t.Errorf("no report lines emitted: %q", report.String())
	}
}
